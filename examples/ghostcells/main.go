// Ghost cells: the paper's motivating application pattern. A 2D
// spatial domain is decomposed over a grid of MPI processes whose
// subdomains overlap at their borders (ghost cells). Every iteration,
// all ranks concurrently dump their halo-extended subdomain into one
// shared file under MPI atomic mode, and the example verifies that
// each resulting snapshot is equivalent to some serial order of the
// dumps (no ghost-zone interleaving).
//
// Run with:
//
//	go run ./examples/ghostcells
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/datatype"
	"repro/internal/extent"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/verify"
	"repro/internal/workload"
)

func main() {
	spec := workload.HaloSpec{
		PX: 4, PY: 2, // 8 MPI processes
		CoreX: 64, CoreY: 64, // 64x64 cells owned per process
		Halo:        2, // 2 ghost cells shared with each neighbour
		ElementSize: 8, // one float64 per cell
	}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}
	dw, dh := spec.DomainDims()
	fmt.Printf("domain %dx%d cells, %d ranks, halo %d\n", dw, dh, spec.Ranks(), spec.Halo)

	store, err := repro.NewStore(repro.Options{
		Span:      int64(dw) * int64(dh) * spec.ElementSize,
		ChunkSize: 16 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	drv := &mpiio.VersioningDriver{Backend: store.Backend()}

	const iterations = 3
	err = mpi.Run(spec.Ranks(), func(c *mpi.Comm) error {
		f := mpiio.Open(c, drv)
		f.SetAtomicity(true) // MPI atomic mode: the whole dump is one transaction
		view := mpiio.View{Disp: 0, Etype: datatype.Byte, Filetype: spec.Subarray(c.Rank())}
		if err := f.SetView(view); err != nil {
			return err
		}
		buf := make([]byte, spec.BytesPerRank(c.Rank()))
		for it := 0; it < iterations; it++ {
			// Each iteration stamps a distinct ID so the verifier can
			// attribute every byte (IDs must be unique per call).
			id := byte(it*spec.Ranks() + c.Rank() + 1)
			for i := range buf {
				buf[i] = id
			}
			if err := f.WriteAt(0, buf); err != nil {
				return err
			}
			c.Barrier() // end of simulation step
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify every snapshot against MPI atomicity. Calls within one
	// iteration overlap in the ghost zones; serializability must hold.
	latest, err := store.Latest()
	if err != nil {
		log.Fatal(err)
	}
	checked := 0
	for it := 0; it < iterations; it++ {
		var calls []verify.Call
		for r := 0; r < spec.Ranks(); r++ {
			calls = append(calls, verify.Call{
				ID:      it*spec.Ranks() + r + 1,
				Extents: spec.ExtentsFor(r),
			})
		}
		// The snapshot at the end of iteration it reflects all calls
		// up to and including that iteration; verify the final state
		// of each iteration window using all calls so far.
		var all []verify.Call
		for i := 0; i <= it; i++ {
			for r := 0; r < spec.Ranks(); r++ {
				all = append(all, verify.Call{
					ID:      i*spec.Ranks() + r + 1,
					Extents: spec.ExtentsFor(r),
				})
			}
		}
		v := repro.Version((it + 1) * spec.Ranks())
		if err := verify.CheckCalls(snapshotReader{store: store, v: v}, all); err != nil {
			log.Fatalf("iteration %d: %v", it, err)
		}
		checked++
	}
	fmt.Printf("verified MPI atomicity of %d iteration snapshots (latest v%d)\n", checked, latest)

	// Show a slice through a ghost zone: bytes there must all carry a
	// single writer's stamp per overlap region.
	x := spec.CoreX // first vertical ghost boundary
	row := int64(10)
	off := (row*int64(dw) + int64(x-spec.Halo)) * spec.ElementSize
	span := int64(2*spec.Halo) * spec.ElementSize
	data, _, err := store.ReadList(extent.List{{Offset: off, Length: span}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ghost zone bytes at row %d: %v\n", row, data)
}

// snapshotReader adapts a specific store snapshot to the verifier.
type snapshotReader struct {
	store *repro.Store
	v     repro.Version
}

func (r snapshotReader) ReadList(q extent.List, _ bool) ([]byte, error) {
	return r.store.ReadListAt(r.v, q)
}
