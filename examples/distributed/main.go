// Distributed deployment: runs the storage service as three separate
// TCP server nodes (version manager, metadata provider, data provider)
// and drives atomic non-contiguous writes from multiple clients over
// real sockets — the deployment shape of the BlobSeer-based prototype.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	"repro/internal/blob"
	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/provider"
	"repro/internal/remote"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

func main() {
	// --- Service side: three independent nodes on loopback TCP ---
	vmNode, err := remote.Listen("127.0.0.1:0", remote.Roles{
		VM: vmanager.New(iosim.CostModel{}),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer vmNode.Close()

	metaNode, err := remote.Listen("127.0.0.1:0", remote.Roles{
		Meta: metadata.NewStore(8, iosim.CostModel{}),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer metaNode.Close()

	pool, _ := provider.NewPool(4, iosim.CostModel{})
	dataNode, err := remote.Listen("127.0.0.1:0", remote.Roles{
		Data: provider.NewRouter(pool),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer dataNode.Close()

	ep := remote.Endpoints{VM: vmNode.Addr(), Meta: metaNode.Addr(), Data: dataNode.Addr()}
	fmt.Printf("version manager  %s\nmetadata node    %s\ndata node        %s\n",
		ep.VM, ep.Meta, ep.Data)

	// --- Admin client creates the blob ---
	admin, err := remote.Dial(ep)
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	adminBlob, err := blob.Create(admin.Services(), 1, segtree.Geometry{Capacity: 1 << 22, Page: 16 << 10})
	if err != nil {
		log.Fatal(err)
	}

	// --- Writer clients: each its own TCP connections, all writing
	// the same overlapping non-contiguous pattern concurrently ---
	pattern := extent.List{
		{Offset: 0, Length: 20 << 10},
		{Offset: 1 << 20, Length: 20 << 10},
		{Offset: 3 << 20, Length: 20 << 10},
	}
	const writers = 6
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli, err := remote.Dial(ep)
			if err != nil {
				log.Fatalf("writer %d: %v", w, err)
			}
			defer cli.Close()
			b, err := blob.Open(cli.Services(), 1)
			if err != nil {
				log.Fatalf("writer %d: %v", w, err)
			}
			buf := bytes.Repeat([]byte{byte(w + 1)}, int(pattern.TotalLength()))
			vec, err := extent.NewVec(pattern, buf)
			if err != nil {
				log.Fatalf("writer %d: %v", w, err)
			}
			v, err := b.WriteList(vec, blob.WriteOptions{})
			if err != nil {
				log.Fatalf("writer %d: %v", w, err)
			}
			fmt.Printf("writer %d published snapshot v%d\n", w, v)
		}(w)
	}
	wg.Wait()

	// --- Check the final state over the wire ---
	info, err := adminBlob.Latest()
	if err != nil {
		log.Fatal(err)
	}
	data, err := adminBlob.ReadList(info.Version, pattern)
	if err != nil {
		log.Fatal(err)
	}
	stamp := data[0]
	for i, b := range data {
		if b != stamp {
			log.Fatalf("MPI atomicity violated at byte %d", i)
		}
	}
	fmt.Printf("final snapshot v%d holds writer %d's data everywhere: atomicity holds over TCP\n",
		info.Version, stamp-1)

	versions, _ := adminBlob.Versions()
	fmt.Printf("%d snapshots retained on the service\n", len(versions))
}
