// Producer/consumer: the paper's future-work scenario made concrete.
// A simulation (producer) keeps writing new timesteps into the shared
// file while a visualization pipeline (consumer) concurrently reads
// complete, consistent timesteps — with zero synchronization between
// them, because the consumer pins a published snapshot version and
// snapshots are immutable. This is "exposing the versioning interface
// at application level" from the paper's conclusions.
//
// Run with:
//
//	go run ./examples/producer_consumer
package main

import (
	"fmt"
	"log"
	"sync"

	"repro"
)

const (
	gridCells   = 4096
	cellSize    = 8
	timesteps   = 12
	regionCount = 16 // producer writes each step as non-contiguous pieces
)

func main() {
	store, err := repro.NewStore(repro.Options{Span: gridCells * cellSize})
	if err != nil {
		log.Fatal(err)
	}

	// Versions produced per timestep, announced to the consumer.
	announce := make(chan repro.Version, timesteps)

	var wg sync.WaitGroup
	wg.Add(2)

	// Producer: each timestep overwrites the whole grid as one atomic
	// non-contiguous write (pieces deliberately interleaved).
	go func() {
		defer wg.Done()
		defer close(announce)
		for step := 1; step <= timesteps; step++ {
			l := make(repro.ExtentList, 0, regionCount)
			pieceBytes := int64(gridCells * cellSize / regionCount)
			for r := 0; r < regionCount; r++ {
				l = append(l, repro.Extent{Offset: int64(r) * pieceBytes, Length: pieceBytes})
			}
			buf := make([]byte, gridCells*cellSize)
			for i := range buf {
				buf[i] = byte(step)
			}
			v, err := store.WriteList(repro.MustVec(l, buf))
			if err != nil {
				log.Fatalf("producer step %d: %v", step, err)
			}
			announce <- v
		}
	}()

	// Consumer: for every announced version, read the ENTIRE grid from
	// that immutable snapshot — even while the producer is already
	// writing the next steps — and check it is internally consistent
	// (a torn timestep would mix two step stamps).
	var inspected int
	go func() {
		defer wg.Done()
		for v := range announce {
			data, err := store.ReadAt(v, 0, gridCells*cellSize)
			if err != nil {
				log.Fatalf("consumer at v%d: %v", v, err)
			}
			stamp := data[0]
			for i, b := range data {
				if b != stamp {
					log.Fatalf("torn timestep at v%d: byte %d is %d, expected %d", v, i, b, stamp)
				}
			}
			inspected++
			fmt.Printf("consumer: snapshot v%-2d is a complete timestep (stamp %d)\n", v, stamp)
		}
	}()

	wg.Wait()

	versions, err := store.Versions()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nproducer wrote %d timesteps; consumer verified %d consistent snapshots\n",
		timesteps, inspected)
	fmt.Printf("store retains %d versions; any of them remains readable forever\n", len(versions))

	// Bonus: time travel — read timestep 3 after everything finished.
	old, err := store.ReadAt(3, 0, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timestep 3 revisited: %v\n", old)
}
