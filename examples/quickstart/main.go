// Quickstart: boot the versioning storage backend in-process, perform
// an atomic non-contiguous write, read it back from the snapshot it
// produced, and show that snapshots are immutable.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// An in-process deployment: 8 data providers, 8 metadata shards,
	// 64 KiB stripes. Simulate:false runs at memory speed.
	store, err := repro.NewStore(repro.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// One atomic write of three non-contiguous regions — the access
	// pattern a domain-decomposed simulation produces when dumping a
	// subdomain into the shared file.
	pattern := repro.ExtentList{
		{Offset: 0, Length: 11},
		{Offset: 4096, Length: 7},
		{Offset: 1 << 20, Length: 8},
	}
	payload := []byte("hello world" + "mpi-io!" + "snapshot")
	v1, err := store.WriteList(repro.MustVec(pattern, payload))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bytes across %d regions -> snapshot v%d\n",
		len(payload), len(pattern), v1)

	// Overwrite part of the middle region; this creates a NEW snapshot
	// and leaves v1 untouched.
	v2, err := store.Write(4096, []byte("ATOMIC!"))
	if err != nil {
		log.Fatal(err)
	}

	middle := repro.ExtentList{{Offset: 4096, Length: 7}}
	old, err := store.ReadListAt(v1, middle)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := store.ReadListAt(v2, middle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("middle region at v%d: %q\n", v1, old)
	fmt.Printf("middle region at v%d: %q\n", v2, cur)

	versions, err := store.Versions()
	if err != nil {
		log.Fatal(err)
	}
	size, err := store.Size()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file size %d bytes, %d snapshots retained\n", size, len(versions))
}
