// Root benchmark suite: one testing.B benchmark per experiment in
// EXPERIMENTS.md (E1–E6). Each benchmark iteration runs one complete
// experiment cell on the metered (simulated-hardware) environment and
// reports aggregated throughput as the custom metric MB/s — the
// quantity the paper's evaluation plots. Run with:
//
//	go test -bench=. -benchmem
//
// cmd/benchall runs the same experiments over the full parameter
// matrix and renders the EXPERIMENTS.md tables.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/workload"
)

// overlapSpec is the standard E1 workload cell scaled for bench runs.
func overlapSpec(clients int) workload.OverlapSpec {
	return workload.OverlapSpec{
		Clients:         clients,
		Regions:         32,
		RegionSize:      64 << 10,
		OverlapFraction: 0.75,
	}
}

func reportOverlap(b *testing.B, kind bench.SystemKind, env cluster.Env, spec workload.OverlapSpec) {
	b.Helper()
	var mbps float64
	var bytes int64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunOverlap(kind, env, spec, bench.OverlapOptions{Iterations: 2, Warmup: 1})
		if err != nil {
			b.Fatal(err)
		}
		mbps += res.MBps
		bytes += res.Bytes
	}
	b.SetBytes(bytes / int64(b.N))
	b.ReportMetric(mbps/float64(b.N), "MB/s")
}

// BenchmarkE1AtomicScalability reproduces the paper's first experiment:
// aggregated throughput of concurrent atomic overlapped non-contiguous
// writes, versioning vs the locking baselines.
func BenchmarkE1AtomicScalability(b *testing.B) {
	for _, clients := range []int{1, 8, 32} {
		for _, kind := range []bench.SystemKind{bench.Versioning, bench.LockBounding, bench.LockWholeFile} {
			b.Run(fmt.Sprintf("clients=%d/%s", clients, kind), func(b *testing.B) {
				reportOverlap(b, kind, cluster.Metered(), overlapSpec(clients))
			})
		}
	}
}

// BenchmarkE2MPITileIO reproduces the paper's second experiment: the
// MPI-tile-IO benchmark with overlapping tiles under atomic mode.
func BenchmarkE2MPITileIO(b *testing.B) {
	spec := workload.TileSpec{
		TilesX: 4, TilesY: 4,
		TileX: 64, TileY: 64,
		ElementSize: 32,
		OverlapX:    16, OverlapY: 16,
	}
	for _, collective := range []bool{false, true} {
		mode := "independent"
		if collective {
			mode = "collective"
		}
		for _, kind := range []bench.SystemKind{bench.Versioning, bench.LockBounding} {
			b.Run(fmt.Sprintf("%s/%s", mode, kind), func(b *testing.B) {
				var mbps float64
				var bytes int64
				for i := 0; i < b.N; i++ {
					res, err := bench.RunTile(kind, cluster.Metered(), spec, bench.TileOptions{
						Collective: collective,
						Iterations: 2,
						Warmup:     1,
					})
					if err != nil {
						b.Fatal(err)
					}
					mbps += res.MBps
					bytes += res.Bytes
				}
				b.SetBytes(bytes / int64(b.N))
				b.ReportMetric(mbps/float64(b.N), "MB/s")
			})
		}
	}
}

// BenchmarkE3RegionsSweep measures the cost of growing the number of
// non-contiguous regions per call (locking cost grows; versioning is
// insensitive).
func BenchmarkE3RegionsSweep(b *testing.B) {
	for _, regions := range []int{4, 64} {
		for _, kind := range []bench.SystemKind{bench.Versioning, bench.LockBounding, bench.LockList} {
			b.Run(fmt.Sprintf("regions=%d/%s", regions, kind), func(b *testing.B) {
				spec := workload.OverlapSpec{
					Clients:         16,
					Regions:         regions,
					RegionSize:      16 << 10,
					OverlapFraction: 0.75,
				}
				reportOverlap(b, kind, cluster.Metered(), spec)
			})
		}
	}
}

// BenchmarkE4OverlapSweep measures sensitivity to the overlap fraction
// (conflict detection wins at zero overlap, loses under full overlap;
// versioning is flat).
func BenchmarkE4OverlapSweep(b *testing.B) {
	for _, f := range []float64{0, 1} {
		for _, kind := range []bench.SystemKind{bench.Versioning, bench.LockBounding, bench.LockConflictDetect} {
			b.Run(fmt.Sprintf("overlap=%.0f%%/%s", f*100, kind), func(b *testing.B) {
				spec := workload.OverlapSpec{
					Clients:         16,
					Regions:         32,
					RegionSize:      64 << 10,
					OverlapFraction: f,
				}
				reportOverlap(b, kind, cluster.Metered(), spec)
			})
		}
	}
}

// BenchmarkE5StripingSweep measures the effect of the striping width
// (the paper's data-striping design principle).
func BenchmarkE5StripingSweep(b *testing.B) {
	for _, providers := range []int{1, 4, 16} {
		for _, kind := range []bench.SystemKind{bench.Versioning, bench.LockBounding} {
			b.Run(fmt.Sprintf("providers=%d/%s", providers, kind), func(b *testing.B) {
				env := cluster.Metered()
				env.Providers = providers
				reportOverlap(b, kind, env, overlapSpec(16))
			})
		}
	}
}

// BenchmarkE6HeadlineRatio reports the headline number: the ratio of
// versioning to lock-bounding aggregated throughput at 32 clients.
// The paper claims 3.5x-10x across its setups.
func BenchmarkE6HeadlineRatio(b *testing.B) {
	spec := overlapSpec(32)
	var ratio float64
	for i := 0; i < b.N; i++ {
		v, err := bench.RunOverlap(bench.Versioning, cluster.Metered(), spec, bench.OverlapOptions{Iterations: 2, Warmup: 1})
		if err != nil {
			b.Fatal(err)
		}
		l, err := bench.RunOverlap(bench.LockBounding, cluster.Metered(), spec, bench.OverlapOptions{Iterations: 2, Warmup: 1})
		if err != nil {
			b.Fatal(err)
		}
		ratio += bench.Ratio(v.MBps, l.MBps)
	}
	b.ReportMetric(ratio/float64(b.N), "x-speedup")
}

// BenchmarkE7ProducerConsumer measures concurrent writers + full-file
// readers: versioning readers pin snapshots and are unaffected by the
// write storm; locking readers queue behind exclusive writer locks
// (the paper's future-work argument for application-level versioning).
func BenchmarkE7ProducerConsumer(b *testing.B) {
	spec := bench.MixedSpec{
		Writers: 8, Readers: 4,
		WriteCalls: 2, ReadCalls: 2,
		Pattern: workload.OverlapSpec{
			Regions: 32, RegionSize: 64 << 10, OverlapFraction: 0.75,
		},
	}
	for _, kind := range []bench.SystemKind{bench.Versioning, bench.LockBounding} {
		b.Run(kind.String(), func(b *testing.B) {
			var readMBps, writeMBps, readLatMs float64
			for i := 0; i < b.N; i++ {
				res, err := bench.RunMixed(kind, cluster.Metered(), spec)
				if err != nil {
					b.Fatal(err)
				}
				readMBps += res.ReadMBps
				writeMBps += res.WriteMBps
				readLatMs += float64(res.MeanReadLatency.Microseconds()) / 1000
			}
			b.ReportMetric(readMBps/float64(b.N), "read-MB/s")
			b.ReportMetric(writeMBps/float64(b.N), "write-MB/s")
			b.ReportMetric(readLatMs/float64(b.N), "read-lat-ms")
		})
	}
}

// BenchmarkHaloDump measures the motivating ghost-cell application
// pattern end to end through the MPI-I/O layer.
func BenchmarkHaloDump(b *testing.B) {
	spec := workload.HaloSpec{PX: 4, PY: 2, CoreX: 128, CoreY: 128, Halo: 2, ElementSize: 8}
	for _, kind := range []bench.SystemKind{bench.Versioning, bench.LockBounding} {
		b.Run(kind.String(), func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				res, err := bench.RunHalo(kind, cluster.Metered(), spec, 1)
				if err != nil {
					b.Fatal(err)
				}
				mbps += res.MBps
			}
			b.ReportMetric(mbps/float64(b.N), "MB/s")
		})
	}
}
