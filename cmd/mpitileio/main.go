// Command mpitileio is a port of the MPI-tile-IO benchmark used in the
// paper's second experiment: a grid of MPI processes each writes one
// tile of a dense 2D array into a shared file, with tiles overlapping
// by a configurable number of elements, under MPI atomic mode. Flags
// mirror the original benchmark's parameters.
//
// Example:
//
//	mpitileio -nr_tiles_x 4 -nr_tiles_y 4 -sz_tile_x 64 -sz_tile_y 64 \
//	          -sz_element 32 -overlap_x 16 -overlap_y 16 -collective
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/workload"
)

func main() {
	var (
		tilesX    = flag.Int("nr_tiles_x", 4, "tiles in X")
		tilesY    = flag.Int("nr_tiles_y", 4, "tiles in Y")
		tileX     = flag.Int("sz_tile_x", 64, "tile width in elements")
		tileY     = flag.Int("sz_tile_y", 64, "tile height in elements")
		elemSize  = flag.Int64("sz_element", 32, "element size in bytes")
		overlapX  = flag.Int("overlap_x", 16, "element overlap in X")
		overlapY  = flag.Int("overlap_y", 16, "element overlap in Y")
		iters     = flag.Int("iters", 2, "array dumps per run")
		collect   = flag.Bool("collective", false, "use collective (two-phase) I/O")
		nonAtomic = flag.Bool("noatomic", false, "disable MPI atomic mode")
		providers = flag.Int("providers", 8, "data providers / OSTs")
		chunk     = flag.Int64("chunk", 64<<10, "chunk / stripe size")
		fast      = flag.Bool("fast", false, "disable simulated cost models")
		system    = flag.String("system", "versioning,lock-bounding", "comma-separated systems")
	)
	flag.Parse()

	spec := workload.TileSpec{
		TilesX: *tilesX, TilesY: *tilesY,
		TileX: *tileX, TileY: *tileY,
		ElementSize: *elemSize,
		OverlapX:    *overlapX, OverlapY: *overlapY,
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	env := cluster.Metered()
	if *fast {
		env = cluster.Default()
	}
	env.Providers = *providers
	env.ChunkSize = *chunk

	w, h := spec.ArrayDims()
	mode := "independent"
	if *collect {
		mode = "collective"
	}
	tbl := bench.NewTable(
		fmt.Sprintf("E2 MPI-tile-IO %dx%d tiles (%dx%d elem x %dB, overlap %d,%d; array %dx%d; %s, atomic=%v)",
			*tilesX, *tilesY, *tileX, *tileY, *elemSize, *overlapX, *overlapY, w, h, mode, !*nonAtomic),
		bench.StandardHeader()...)
	for _, name := range splitList(*system) {
		kind, ok := systemByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown system %q\n", name)
			os.Exit(2)
		}
		res, err := bench.RunTile(kind, env, spec, bench.TileOptions{
			Collective: *collect,
			Iterations: *iters,
			NonAtomic:  *nonAtomic,
			Warmup:     1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tbl.AddResult(res)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func systemByName(name string) (bench.SystemKind, bool) {
	for _, k := range append(bench.AllAtomicSystems(), bench.PosixNoAtomic) {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}
