package main

import (
	"testing"

	"repro/internal/bench"
)

func TestSplitList(t *testing.T) {
	got := splitList("a,b,,c")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("splitList = %v", got)
	}
	if got := splitList(""); len(got) != 0 {
		t.Fatalf("splitList(empty) = %v", got)
	}
}

func TestSystemByName(t *testing.T) {
	k, ok := systemByName("versioning")
	if !ok || k != bench.Versioning {
		t.Fatalf("versioning lookup = %v %v", k, ok)
	}
	if _, ok := systemByName("bogus"); ok {
		t.Fatal("bogus must not resolve")
	}
	for _, kind := range bench.AllAtomicSystems() {
		if got, ok := systemByName(kind.String()); !ok || got != kind {
			t.Fatalf("round trip of %v failed", kind)
		}
	}
}
