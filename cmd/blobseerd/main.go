// Command blobseerd runs one storage-service node over TCP. A node can
// host any subset of the three roles of the versioning service:
//
//	blobseerd -listen :4000 -roles vm,meta,data
//	blobseerd -listen :4001 -roles data -providers 16 -replicas 3
//	blobseerd -listen :4002 -roles vm -batch 32 -batch-delay 200us
//	blobseerd -listen :4008 -roles vm -vm-shards 4 -batch 32
//	blobseerd -listen :4003 -roles data -replicas 3 -self-heal -scrub-interval 50ms
//	blobseerd -listen :4004 -roles vm,meta,data -replicas 2 -retain 8 -gc-rate 8
//	blobseerd -listen :4005 -roles data -providers 16 -replicas 3 -domains 4
//	blobseerd -listen :4006 -roles data -replicas 2 -domains rackA,rackB,rackC
//	blobseerd -listen :4007 -roles data -replicas 2 -domains 4 -domain zone0 -read-cache 67108864
//	blobseerd -listen :4009 -roles data -providers 16 -store disk:///var/blobseer/chunks
//	blobseerd -listen :4010 -roles data -providers 8 -coding rs-4+2 -domains 6
//
// Clients (cmd/bsctl, examples/distributed) connect with the endpoints
// of the three roles, which may be the same node or different nodes.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/metrics"
	"repro/internal/provider"
	"repro/internal/remote"
	"repro/internal/vmanager"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:4000", "listen address")
		rolesFlag  = flag.String("roles", "vm,meta,data", "roles to host: vm, meta, data")
		providers  = flag.Int("providers", 8, "data providers behind this node (data role)")
		replicas   = flag.Int("replicas", 1, "copies stored per chunk, on distinct providers (data role)")
		coding     = flag.String("coding", "", "erasure-coded placement instead of replication: rs-k+m (e.g. rs-4+2) stripes each chunk into k data + m parity fragments on k+m distinct providers; mutually exclusive with -replicas > 1 (data role)")
		quorum     = flag.Int("quorum", 0, "copies (or coded fragments) that must land for a write to commit (0 = replicas-1 min 1, coded k+m-1 min k)")
		domains    = flag.String("domains", "", "failure domains to rack the providers into: a count (\"4\" -> zone0..zone3) or comma-separated labels; replicas then spread across distinct domains (data role)")
		storeURL   = flag.String("store", "mem://", "chunk store backend URL: mem://, disk:///path (one subdirectory per provider), or null:// (discard payloads, bench-only) (data role)")
		shards     = flag.Int("shards", 8, "metadata shards (meta role)")
		simulate   = flag.Bool("simulate", false, "charge the synthetic cost models")
		batch      = flag.Int("batch", 1, "version manager group-commit size (vm role; 1 disables)")
		batchDelay = flag.Duration("batch-delay", 200*time.Microsecond, "max time a group leader lingers for the group to fill")
		vmShards   = flag.Int("vm-shards", 1, "version manager shards: blobs spread across this many independent control servers by stable blob-ID hash (vm role; 1 = unsharded)")

		selfHeal      = flag.Bool("self-heal", false, "run the autonomous repair loop: error-driven failure detection, background scrubber, read-repair (data role)")
		failThreshold = flag.Int("fail-threshold", 3, "consecutive store errors before a provider is marked down (self-heal)")
		probation     = flag.Duration("probation", 2*time.Second, "down time before health probes may revive a provider (self-heal)")
		scrubInterval = flag.Duration("scrub-interval", 100*time.Millisecond, "background healer tick period (self-heal)")
		scrubRate     = flag.Int("scrub-rate", 64, "chunk replica verifications per healer tick (self-heal)")
		repairRate    = flag.Int("repair-rate", 4, "re-replications per healer tick (self-heal)")
		repairQueue   = flag.Int("repair-queue", 256, "bounded repair queue depth (self-heal)")
		scrubOrder    = flag.String("scrub-order", "oldest", "scrub walk order over versions: oldest (default) or newest first (self-heal)")

		gcEnable   = flag.Bool("gc", false, "run the version-lifecycle garbage collector (requires vm,meta,data roles on this node)")
		retain     = flag.Int("retain", 0, "automatic retention policy: keep the newest N versions of every blob, drop the rest (implies -gc; 0 = manual drops only)")
		gcRate     = flag.Int("gc-rate", 4, "chunk deletions per reaper tick (gc)")
		gcInterval = flag.Duration("gc-interval", 200*time.Millisecond, "background reaper tick period (gc)")
		gcQueue    = flag.Int("gc-queue", 256, "bounded delete queue depth (gc)")

		localDomain = flag.String("domain", "", "failure domain this node's readers sit in: same-domain replicas are tried first and cross-domain bytes avoided are counted (data role)")
		readCache   = flag.Int64("read-cache", 0, "bounded read-through cache size in bytes; repeated chunk reads and replica-set hints are served from memory, invalidated on placement changes (data role; 0 = off)")
		cacheShards = flag.Int("cache-shards", 0, "read cache shard count, rounded up to a power of two (read-cache; 0 = default 16)")
	)
	flag.Parse()
	if *retain > 0 {
		*gcEnable = true
	}

	dataModel, metaModel, ctrlModel := iosim.CostModel{}, iosim.CostModel{}, iosim.CostModel{}
	if *simulate {
		dataModel = iosim.DefaultNetwork()
		metaModel = iosim.DefaultMetadata()
		ctrlModel = iosim.DefaultMetadata()
	}

	// One registry spans every role this process hosts; the Node RPC
	// service exposes it (bsctl metrics) and the server codec counts
	// inbound RPCs into it.
	reg := metrics.NewRegistry()

	var roles remote.Roles
	roles.Metrics = reg
	for _, role := range strings.Split(*rolesFlag, ",") {
		switch strings.TrimSpace(role) {
		case "vm":
			if *vmShards < 1 {
				fmt.Fprintf(os.Stderr, "-vm-shards %d must be at least 1\n", *vmShards)
				os.Exit(2)
			}
			vm := vmanager.NewSharded(ctrlModel, *vmShards)
			vm.SetBatching(vmanager.BatchConfig{MaxBatch: *batch, MaxDelay: *batchDelay})
			vm.SetMetrics(reg)
			roles.VM = vm
		case "meta":
			roles.Meta = metadata.NewStore(*shards, metaModel)
		case "data":
			if *replicas > *providers {
				fmt.Fprintf(os.Stderr, "-replicas %d exceeds -providers %d\n", *replicas, *providers)
				os.Exit(2)
			}
			codeK, codeM, err := provider.ParseCoding(*coding)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			if *coding != "" {
				if *replicas > 1 {
					fmt.Fprintf(os.Stderr, "-coding %s is mutually exclusive with -replicas %d\n", *coding, *replicas)
					os.Exit(2)
				}
				if codeK+codeM > *providers {
					fmt.Fprintf(os.Stderr, "-coding %s needs %d providers, -providers is %d\n", *coding, codeK+codeM, *providers)
					os.Exit(2)
				}
				if *quorum != 0 && (*quorum < codeK || *quorum > codeK+codeM) {
					fmt.Fprintf(os.Stderr, "-quorum %d outside [%d, %d] for -coding %s\n", *quorum, codeK, codeK+codeM, *coding)
					os.Exit(2)
				}
			} else if r := max(*replicas, 1); *quorum > r {
				fmt.Fprintf(os.Stderr, "-quorum %d exceeds -replicas %d\n", *quorum, r)
				os.Exit(2)
			}
			labels, err := domainLabels(*domains, *providers)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			pool, _, err := provider.NewURLPoolInDomains(*storeURL, *providers, 0, dataModel, false)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			for i, label := range labels {
				if label == "" {
					continue // flat default; SetDomain refuses untagging
				}
				if err := pool.SetDomain(provider.ID(i), label); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
			}
			roles.Data = provider.NewRouter(pool)
			roles.Data.SetMetrics(reg)
			roles.Data.SetReplicas(*replicas)
			if *coding != "" {
				if err := roles.Data.SetCoding(codeK, codeM); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
			}
			roles.Data.SetWriteQuorum(*quorum)
			if *localDomain != "" {
				roles.Data.SetLocalDomain(*localDomain)
			}
			if *readCache > 0 {
				cache := provider.NewReadCache(provider.ReadCacheConfig{
					Shards:   *cacheShards,
					MaxBytes: *readCache,
				})
				cache.SetMetrics(reg)
				roles.Data.SetReadCache(cache)
			}
			if *selfHeal {
				order := core.OldestFirst
				switch *scrubOrder {
				case "oldest":
				case "newest":
					order = core.NewestFirst
				default:
					fmt.Fprintf(os.Stderr, "unknown -scrub-order %q (want oldest or newest)\n", *scrubOrder)
					os.Exit(2)
				}
				roles.Health = provider.NewHealthMonitor(pool, provider.HealthConfig{
					Threshold: *failThreshold,
					Probation: *probation,
				})
				roles.Data.SetHealthMonitor(roles.Health)
				// A data-only daemon holds no blob handles; the healer
				// scrubs the router's placement map directly.
				roles.Healer = core.NewHealer(roles.Data, roles.Health, core.HealerConfig{
					ScrubChunksPerTick: *scrubRate,
					RepairsPerTick:     *repairRate,
					QueueDepth:         *repairQueue,
					Interval:           *scrubInterval,
					Order:              order,
				})
				roles.Healer.SetMetrics(reg)
				roles.Data.SetDegradedHandler(roles.Healer.EnqueueRepair)
			}
		case "":
		default:
			fmt.Fprintf(os.Stderr, "unknown role %q (want vm, meta, data)\n", role)
			os.Exit(2)
		}
	}

	if *gcEnable {
		// The reaper walks blob metadata and talks to the version
		// manager, so it needs every role in-process.
		if roles.VM == nil || roles.Meta == nil || roles.Data == nil {
			fmt.Fprintln(os.Stderr, "-gc/-retain require the vm, meta and data roles on this node")
			os.Exit(2)
		}
		roles.Reaper = core.NewReaper(roles.Data, core.ReaperConfig{
			RetainLast:     *retain,
			DeletesPerTick: *gcRate,
			QueueDepth:     *gcQueue,
			Interval:       *gcInterval,
		})
		// Blobs are created by clients over RPC; the reaper discovers
		// them from the version manager at each pass start.
		roles.Reaper.SetMetrics(reg)
		roles.Reaper.SetCatalog(blob.Services{VM: roles.VM, Meta: roles.Meta, Data: roles.Data}, roles.VM)
		if c := roles.Data.ReadCache(); c != nil {
			// The reaper's hint walk then repairs hint rot: stale
			// metadata hints get the current placement rewritten into
			// the cache instead of merely being counted.
			roles.Reaper.SetReadCache(c)
		}
	}

	node, err := remote.Listen(*listen, roles)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer node.Close()
	if roles.Healer != nil {
		roles.Healer.Run()
		defer roles.Healer.Stop()
		fmt.Printf("self-heal: threshold %d, probation %s, scrub %d chunks (%s first) / repair %d chunks per %s tick\n",
			*failThreshold, *probation, *scrubRate, *scrubOrder, *repairRate, *scrubInterval)
	}
	if roles.Reaper != nil {
		roles.Reaper.Run()
		defer roles.Reaper.Stop()
		fmt.Printf("gc: retain %d, %d deletes per %s tick, queue %d\n",
			*retain, *gcRate, *gcInterval, *gcQueue)
	}
	if roles.Data != nil && *domains != "" {
		dm := roles.Data.DomainMap()
		if len(dm) > 1 {
			var parts []string
			for label, ids := range dm {
				parts = append(parts, fmt.Sprintf("%s=%d", label, len(ids)))
			}
			sort.Strings(parts)
			fmt.Printf("failure domains: %s (replicas spread across distinct domains)\n", strings.Join(parts, " "))
		} else {
			// One domain is a flat pool: claiming spread here would
			// promise a correlated-loss guarantee that does not exist.
			fmt.Println("failure domains: 1 (flat placement — spreading needs at least 2 domains)")
		}
	}
	if roles.Data != nil && *coding != "" {
		k, m, _ := roles.Data.Coding()
		fmt.Printf("erasure coding: %s (%d data + %d parity fragments per chunk, any %d losses survivable, %.2fx storage)\n",
			*coding, k, m, m, float64(k+m)/float64(k))
	}
	if roles.Data != nil && *storeURL != "mem://" {
		fmt.Printf("chunk store: %s (one backend per provider)\n", *storeURL)
	}
	if roles.Data != nil && (*localDomain != "" || *readCache > 0) {
		parts := []string{}
		if *localDomain != "" {
			parts = append(parts, fmt.Sprintf("zone-local reads from %s", *localDomain))
		}
		if *readCache > 0 {
			parts = append(parts, fmt.Sprintf("read cache %d bytes", *readCache))
		}
		fmt.Printf("read tier: %s\n", strings.Join(parts, ", "))
	}
	if roles.VM != nil && *vmShards > 1 {
		fmt.Printf("control plane: %d vmanager shards (stable blob-ID hash)\n", *vmShards)
	}
	fmt.Printf("blobseerd serving %s on %s\n", *rolesFlag, node.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}

// domainLabels resolves the -domains flag into one failure-domain
// label per provider: a bare count carves the pool into that many
// contiguous zoneN blocks, a comma-separated list assigns the named
// domains as contiguous blocks in order, and the empty flag keeps the
// flat single-domain pool.
func domainLabels(spec string, n int) ([]string, error) {
	labels := make([]string, n)
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return labels, nil
	}
	if count, err := strconv.Atoi(spec); err == nil {
		if count < 1 || count > n {
			return nil, fmt.Errorf("-domains %d out of range (1..%d providers)", count, n)
		}
		for i := range labels {
			labels[i] = provider.DomainLabel(i, n, count)
		}
		return labels, nil
	}
	var names []string
	seen := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("-domains %q contains an empty label", spec)
		}
		if seen[name] {
			// A silently collapsed domain would co-locate replicas on
			// machines that fail together while claiming spread.
			return nil, fmt.Errorf("-domains %q names %s twice", spec, name)
		}
		seen[name] = true
		names = append(names, name)
	}
	if len(names) > n {
		return nil, fmt.Errorf("-domains names %d domains for %d providers", len(names), n)
	}
	for i := range labels {
		labels[i] = names[i*len(names)/n]
	}
	return labels, nil
}
