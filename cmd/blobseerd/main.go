// Command blobseerd runs one storage-service node over TCP. A node can
// host any subset of the three roles of the versioning service:
//
//	blobseerd -listen :4000 -roles vm,meta,data
//	blobseerd -listen :4001 -roles data -providers 16 -replicas 3
//	blobseerd -listen :4002 -roles vm -batch 32 -batch-delay 200us
//
// Clients (cmd/bsctl, examples/distributed) connect with the endpoints
// of the three roles, which may be the same node or different nodes.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/provider"
	"repro/internal/remote"
	"repro/internal/vmanager"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:4000", "listen address")
		rolesFlag  = flag.String("roles", "vm,meta,data", "roles to host: vm, meta, data")
		providers  = flag.Int("providers", 8, "data providers behind this node (data role)")
		replicas   = flag.Int("replicas", 1, "copies stored per chunk, on distinct providers (data role)")
		quorum     = flag.Int("quorum", 0, "copies that must land for a write to commit (0 = replicas-1, min 1)")
		shards     = flag.Int("shards", 8, "metadata shards (meta role)")
		simulate   = flag.Bool("simulate", false, "charge the synthetic cost models")
		batch      = flag.Int("batch", 1, "version manager group-commit size (vm role; 1 disables)")
		batchDelay = flag.Duration("batch-delay", 200*time.Microsecond, "max time a group leader lingers for the group to fill")
	)
	flag.Parse()

	dataModel, metaModel, ctrlModel := iosim.CostModel{}, iosim.CostModel{}, iosim.CostModel{}
	if *simulate {
		dataModel = iosim.DefaultNetwork()
		metaModel = iosim.DefaultMetadata()
		ctrlModel = iosim.DefaultMetadata()
	}

	var roles remote.Roles
	for _, role := range strings.Split(*rolesFlag, ",") {
		switch strings.TrimSpace(role) {
		case "vm":
			roles.VM = vmanager.New(ctrlModel)
			roles.VM.SetBatching(vmanager.BatchConfig{MaxBatch: *batch, MaxDelay: *batchDelay})
		case "meta":
			roles.Meta = metadata.NewStore(*shards, metaModel)
		case "data":
			if *replicas > *providers {
				fmt.Fprintf(os.Stderr, "-replicas %d exceeds -providers %d\n", *replicas, *providers)
				os.Exit(2)
			}
			if r := max(*replicas, 1); *quorum > r {
				fmt.Fprintf(os.Stderr, "-quorum %d exceeds -replicas %d\n", *quorum, r)
				os.Exit(2)
			}
			pool, _ := provider.NewPool(*providers, dataModel)
			roles.Data = provider.NewRouter(pool)
			roles.Data.SetReplicas(*replicas)
			roles.Data.SetWriteQuorum(*quorum)
		case "":
		default:
			fmt.Fprintf(os.Stderr, "unknown role %q (want vm, meta, data)\n", role)
			os.Exit(2)
		}
	}

	node, err := remote.Listen(*listen, roles)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer node.Close()
	fmt.Printf("blobseerd serving %s on %s\n", *rolesFlag, node.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}
