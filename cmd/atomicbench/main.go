// Command atomicbench reproduces the paper's first experiment: the
// scalability of aggregated throughput when an increasing number of
// clients concurrently write overlapping non-contiguous regions to the
// same file under MPI atomicity, comparing the versioning backend
// against the locking baselines.
//
// Example:
//
//	atomicbench -clients 1,2,4,8,16,32 -regions 32 -size 65536 -overlap 0.75
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/workload"
)

func main() {
	var (
		clientsFlag = flag.String("clients", "1,2,4,8,16,32", "comma-separated client counts")
		regions     = flag.Int("regions", 32, "non-contiguous regions per write call")
		size        = flag.Int64("size", 64<<10, "bytes per region")
		overlap     = flag.Float64("overlap", 0.75, "overlap fraction between neighbouring clients [0,1]")
		iters       = flag.Int("iters", 2, "write calls per client")
		providers   = flag.Int("providers", 8, "data providers / OSTs")
		shards      = flag.Int("shards", 8, "metadata shards (versioning)")
		chunk       = flag.Int64("chunk", 64<<10, "chunk / stripe size in bytes")
		systemsFlag = flag.String("systems", "versioning,lock-bounding,lock-wholefile,conflict-detect", "systems to compare")
		fast        = flag.Bool("fast", false, "disable the simulated cost models (correctness only)")
		verifyFlag  = flag.Bool("verify", false, "verify MPI atomicity after each run (needs clients*iters <= 255)")
	)
	flag.Parse()

	env := cluster.Metered()
	if *fast {
		env = cluster.Default()
	}
	env.Providers = *providers
	env.MetaShards = *shards
	env.ChunkSize = *chunk

	systems, err := parseSystems(*systemsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	clients, err := parseInts(*clientsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	warmup := 1
	if *verifyFlag {
		warmup = 0
	}

	tbl := bench.NewTable(
		fmt.Sprintf("E1 atomic non-contiguous write scalability (regions=%d size=%d overlap=%.2f iters=%d providers=%d)",
			*regions, *size, *overlap, *iters, *providers),
		append([]string{}, append(bench.StandardHeader(), "verified")...)...)
	for _, n := range clients {
		spec := workload.OverlapSpec{
			Clients:         n,
			Regions:         *regions,
			RegionSize:      *size,
			OverlapFraction: *overlap,
		}
		for _, kind := range systems {
			res, err := bench.RunOverlap(kind, env, spec, bench.OverlapOptions{
				Iterations: *iters,
				Verify:     *verifyFlag,
				Warmup:     warmup,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s clients=%d: %v\n", kind, n, err)
				os.Exit(1)
			}
			verified := "-"
			if *verifyFlag {
				verified = "yes"
				if !res.Verified {
					verified = "VIOLATED"
				}
			}
			tbl.AddRow(
				res.System.String(),
				strconv.Itoa(res.Clients),
				fmt.Sprintf("%.1f", res.MBps),
				fmt.Sprintf("%.3fs", res.Elapsed.Seconds()),
				fmt.Sprintf("%.3fs", res.LockWait.Seconds()),
				verified,
			)
		}
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("atomicbench: bad client count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseSystems(s string) ([]bench.SystemKind, error) {
	byName := map[string]bench.SystemKind{}
	for _, k := range append(bench.AllAtomicSystems(), bench.PosixNoAtomic) {
		byName[k.String()] = k
	}
	var out []bench.SystemKind
	for _, part := range strings.Split(s, ",") {
		k, ok := byName[strings.TrimSpace(part)]
		if !ok {
			return nil, fmt.Errorf("atomicbench: unknown system %q (known: versioning, lock-wholefile, lock-bounding, lock-list, conflict-detect, posix-noatomic)", part)
		}
		out = append(out, k)
	}
	return out, nil
}
