package main

import (
	"testing"

	"repro/internal/bench"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,16")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 16 {
		t.Fatalf("parsed = %v", got)
	}
	for _, bad := range []string{"", "x", "0", "-3", "1,,2"} {
		if _, err := parseInts(bad); err == nil {
			t.Fatalf("%q must fail", bad)
		}
	}
}

func TestParseSystems(t *testing.T) {
	got, err := parseSystems("versioning, lock-bounding")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != bench.Versioning || got[1] != bench.LockBounding {
		t.Fatalf("parsed = %v", got)
	}
	if _, err := parseSystems("nonsense"); err == nil {
		t.Fatal("unknown system must fail")
	}
	// Every known system must round-trip through its name.
	for _, k := range append(bench.AllAtomicSystems(), bench.PosixNoAtomic) {
		got, err := parseSystems(k.String())
		if err != nil || len(got) != 1 || got[0] != k {
			t.Fatalf("round trip of %v failed: %v %v", k, got, err)
		}
	}
}
