// Command bsctl is the client CLI for a running storage service
// (cmd/blobseerd): create blobs, write and read (possibly
// non-contiguous) byte ranges, and inspect versions.
//
//	bsctl -vm :4000 -meta :4000 -data :4000 create -blob 1 -capacity 1073741824 -page 65536
//	bsctl write -blob 1 -extents 0:5,100:5 -data "helloworld"
//	bsctl read -blob 1 -extents 0:5,100:5 [-version 3]
//	bsctl versions -blob 1
//	bsctl down -provider 2        # mark a data provider dead
//	bsctl up -provider 2          # revive it
//	bsctl domain -provider 2 -name rackB   # register a provider's failure domain
//	bsctl repair                  # re-replicate chunks that lost copies
//	bsctl health                  # failure-detector state, grouped by domain, plus the spread audit
//	bsctl status                  # control-plane shard table: per-shard state, blobs, tickets, published
//	bsctl scrub [-sync]           # healer stats; -sync forces a full pass
//	bsctl retain -blob 1 -keep 8  # drop all but the newest 8 versions
//	bsctl drop -blob 1 -version 3 # drop one version
//	bsctl pin -blob 1 -version 3  # protect a version from retention
//	bsctl unpin -blob 1 -version 3
//	bsctl gc [-sync]              # reaper stats; -sync forces a full pass
//	bsctl usage                   # per-provider chunk count / bytes stored
//	bsctl readtier                # zone-local read locality and read-cache counters
//	bsctl metrics                 # full metrics registry, Prometheus text exposition
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/blob"
	"repro/internal/extent"
	"repro/internal/provider"
	"repro/internal/remote"
	"repro/internal/segtree"
)

func main() {
	var (
		vmAddr   = flag.String("vm", "127.0.0.1:4000", "version manager address")
		metaAddr = flag.String("meta", "127.0.0.1:4000", "metadata address")
		dataAddr = flag.String("data", "127.0.0.1:4000", "data provider address")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	cmd := flag.Arg(0)
	sub := flag.NewFlagSet(cmd, flag.ExitOnError)
	blobID := sub.Uint64("blob", 1, "blob id")
	capacity := sub.Int64("capacity", 1<<30, "blob capacity (create)")
	page := sub.Int64("page", 64<<10, "page/chunk size (create)")
	extents := sub.String("extents", "", "comma-separated off:len pairs")
	data := sub.String("data", "", "payload for write (repeated/truncated to fit)")
	version := sub.Uint64("version", 0, "snapshot version for read (0 = latest)")
	providerID := sub.Int("provider", -1, "data provider id (down/up/domain)")
	domainName := sub.String("name", "", "failure-domain label (domain)")
	syncScrub := sub.Bool("sync", false, "run a full pass before reporting (scrub/gc)")
	keep := sub.Int("keep", 0, "versions to retain (retain)")
	if err := sub.Parse(flag.Args()[1:]); err != nil {
		os.Exit(2)
	}

	cli, err := remote.Dial(remote.Endpoints{VM: *vmAddr, Meta: *metaAddr, Data: *dataAddr})
	if err != nil {
		fail(err)
	}
	defer cli.Close()
	svc := cli.Services()

	switch cmd {
	case "create":
		_, err := blob.Create(svc, *blobID, segtree.Geometry{Capacity: *capacity, Page: *page})
		if err != nil {
			fail(err)
		}
		fmt.Printf("created blob %d (capacity %d, page %d)\n", *blobID, *capacity, *page)

	case "write":
		b, err := blob.Open(svc, *blobID)
		if err != nil {
			fail(err)
		}
		l, err := parseExtents(*extents)
		if err != nil {
			fail(err)
		}
		buf := fill([]byte(*data), l.TotalLength())
		vec, err := extent.NewVec(l, buf)
		if err != nil {
			fail(err)
		}
		v, err := b.WriteList(vec, blob.WriteOptions{})
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d bytes across %d extents -> snapshot v%d\n", len(buf), len(l), v)

	case "read":
		b, err := blob.Open(svc, *blobID)
		if err != nil {
			fail(err)
		}
		l, err := parseExtents(*extents)
		if err != nil {
			fail(err)
		}
		v := *version
		if v == 0 {
			info, err := b.Latest()
			if err != nil {
				fail(err)
			}
			v = info.Version
		}
		out, err := b.ReadList(v, l)
		if err != nil {
			fail(err)
		}
		fmt.Printf("v%d: %q\n", v, out)

	case "versions":
		b, err := blob.Open(svc, *blobID)
		if err != nil {
			fail(err)
		}
		vs, err := b.Versions()
		if err != nil {
			fail(err)
		}
		for _, v := range vs {
			sz, err := b.Size(v)
			if err != nil {
				fail(err)
			}
			fmt.Printf("v%-4d size %d\n", v, sz)
		}

	case "repair":
		st, err := cli.Repair()
		if err != nil {
			fail(err)
		}
		fmt.Printf("repair: scanned %d, degraded %d, copied %d, repaired %d, lost %d, failed %d\n",
			st.Scanned, st.Degraded, st.Copied, st.Repaired, st.Lost, st.Failed)

	case "health":
		sts, err := cli.Health()
		if err != nil {
			fail(err)
		}
		// Placement mode first: it sets the durability promise the rest
		// of the report is judged against.
		if mode, err := cli.Coding(); err == nil {
			if mode.Coded {
				fmt.Printf("placement: erasure coded rs-%d+%d (any %d fragment losses survivable, %.2fx storage), write quorum %d/%d\n",
					mode.K, mode.M, mode.M, float64(mode.K+mode.M)/float64(mode.K), mode.Quorum, mode.K+mode.M)
			} else {
				fmt.Printf("placement: %d-way replication, write quorum %d\n", max(mode.Replicas, 1), mode.Quorum)
			}
		}
		// Group by failure domain: a domain losing machines together is
		// the loss unit the spread placement defends against.
		var domains []string
		byDomain := map[string][]provider.HealthStatus{}
		for _, st := range sts {
			if _, ok := byDomain[st.Domain]; !ok {
				domains = append(domains, st.Domain)
			}
			byDomain[st.Domain] = append(byDomain[st.Domain], st)
		}
		sort.Strings(domains)
		for _, d := range domains {
			group := byDomain[d]
			live := 0
			for _, st := range group {
				if st.State == provider.Live || st.State == provider.Suspect {
					live++
				}
			}
			label := d
			if label == "" {
				label = "(flat)"
			}
			fmt.Printf("domain %-8s %d/%d live\n", label, live, len(group))
			for _, st := range group {
				line := fmt.Sprintf("  provider %-3d %-10s fail %-6d ok %-6d consec %d",
					st.Provider, st.State, st.Failures, st.Successes, st.Consec)
				if st.State == provider.Down || st.State == provider.Probation {
					line += fmt.Sprintf("  down since %s", st.DownSince.Format("15:04:05.000"))
				}
				fmt.Println(line)
			}
		}
		// Spread audit: chunks whose live replicas share one failure
		// domain are one correlated loss from being gone. On a flat or
		// partially tagged pool the audit is inert — say so rather
		// than claiming a guarantee that was never checked.
		tagged := len(sts) > 0
		for _, st := range sts {
			if st.Domain == "" {
				tagged = false
				break
			}
		}
		if !tagged || len(byDomain) < 2 {
			fmt.Println("spread audit: n/a (flat or partially tagged pool — domain spread inactive)")
			break
		}
		violations, err := cli.SpreadAudit()
		if err != nil {
			fail(err)
		}
		if len(violations) == 0 {
			fmt.Println("spread audit: clean (no chunk's live replicas share a failure domain)")
		} else {
			fmt.Printf("spread audit: %d chunks EXPOSED to a single-domain loss:\n", len(violations))
			for i, key := range violations {
				if i == 10 {
					fmt.Printf("  ... and %d more\n", len(violations)-i)
					break
				}
				fmt.Printf("  %s\n", key)
			}
		}

	case "status":
		shards, err := cli.ShardStatus()
		if err != nil {
			fail(err)
		}
		fmt.Printf("control plane: %d shard(s)\n", len(shards))
		var blobs int
		var tickets, published uint64
		for _, sh := range shards {
			state := "up"
			if sh.Down {
				state = "DOWN"
			}
			fmt.Printf("shard %-3d %-5s %6d blobs %10d tickets %10d published\n",
				sh.Index, state, sh.Blobs, sh.Tickets, sh.Published)
			blobs += sh.Blobs
			tickets += sh.Tickets
			published += sh.Published
		}
		if len(shards) > 1 {
			fmt.Printf("total     %6d blobs %10d tickets %10d published\n", blobs, tickets, published)
		}

	case "scrub":
		st, err := cli.Scrub(*syncScrub)
		if err != nil {
			fail(err)
		}
		fmt.Printf("scrub: ticks %d, passes %d, verified %d chunks (%d errors)\n",
			st.Ticks, st.ScrubPasses, st.ScrubbedChunks, st.ScrubErrors)
		fmt.Printf("queue: enqueued %d, dup %d, dropped %d, depth %d\n",
			st.Enqueued, st.Duplicates, st.Dropped, st.QueueLen)
		fmt.Printf("repair: restored %d, healthy %d, failed %d, lost %d\n",
			st.Repaired, st.RepairHealthy, st.RepairFailed, st.Lost)

	case "retain":
		if *keep < 1 {
			fail(fmt.Errorf("bsctl: retain requires -keep >= 1"))
		}
		dropped, err := cli.Retain(*blobID, *keep)
		if err != nil {
			fail(err)
		}
		fmt.Printf("retained newest %d versions of blob %d; dropped %d: %v\n", *keep, *blobID, len(dropped), dropped)

	case "drop":
		if *version == 0 {
			fail(fmt.Errorf("bsctl: drop requires -version"))
		}
		if err := cli.DropVersion(*blobID, *version); err != nil {
			fail(err)
		}
		fmt.Printf("dropped blob %d v%d (pending reclamation)\n", *blobID, *version)

	case "pin", "unpin":
		if *version == 0 {
			fail(fmt.Errorf("bsctl: %s requires -version", cmd))
		}
		var err error
		if cmd == "pin" {
			err = cli.Pin(*blobID, *version)
		} else {
			err = cli.Unpin(*blobID, *version)
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("blob %d v%d %sned\n", *blobID, *version, cmd)

	case "gc":
		st, err := cli.GC(*syncScrub)
		if err != nil {
			fail(err)
		}
		fmt.Printf("gc: ticks %d, passes %d, auto-dropped %d versions, reclaimed %d versions\n",
			st.Ticks, st.Passes, st.AutoDropped, st.Reclaimed)
		fmt.Printf("walk: %d refs (%d stale hints, %d errors), %d pending versions diffed\n",
			st.WalkedRefs, st.StaleHints, st.WalkErrors, st.PendingSeen)
		fmt.Printf("delete: %d chunks / %d replicas / %d bytes reclaimed (%d failed, %d deferred to repair)\n",
			st.Deleted, st.ReplicasRemoved, st.DeletedBytes, st.DeleteFailed, st.DeferredBusy)
		fmt.Printf("queue: enqueued %d, dup %d, dropped %d, depth %d\n",
			st.Enqueued, st.Duplicates, st.Dropped, st.QueueLen)

	case "usage":
		us, err := cli.Usage()
		if err != nil {
			fail(err)
		}
		var domains []string
		byDomain := map[string][]provider.ProviderUsage{}
		for _, u := range us {
			if _, ok := byDomain[u.Domain]; !ok {
				domains = append(domains, u.Domain)
			}
			byDomain[u.Domain] = append(byDomain[u.Domain], u)
		}
		sort.Strings(domains)
		var chunks int
		var bytes int64
		for _, d := range domains {
			var dChunks int
			var dBytes int64
			for _, u := range byDomain[d] {
				state := "live"
				if u.Down {
					state = "down"
				}
				label := u.Domain
				if label == "" {
					label = "-"
				}
				fmt.Printf("provider %-3d %-8s %-5s %6d chunks %12d bytes\n", u.Provider, label, state, u.Chunks, u.Bytes)
				if !u.Down {
					dChunks += u.Chunks
					dBytes += u.Bytes
				}
			}
			if len(domains) > 1 {
				label := d
				if label == "" {
					label = "-"
				}
				fmt.Printf("domain %-8s (live)  %6d chunks %12d bytes\n", label, dChunks, dBytes)
			}
			chunks += dChunks
			bytes += dBytes
		}
		fmt.Printf("total (live)            %6d chunks %12d bytes\n", chunks, bytes)

	case "readtier":
		rt, err := cli.ReadTier()
		if err != nil {
			fail(err)
		}
		domain := rt.LocalDomain
		if domain == "" {
			domain = "(none — flat replica rotation)"
		}
		fmt.Printf("reader domain: %s\n", domain)
		loc := rt.Locality
		fmt.Printf("locality: %d local / %d remote reads, %d local / %d remote bytes (cross-domain fraction %.3f)\n",
			loc.LocalReads, loc.RemoteReads, loc.LocalBytes, loc.RemoteBytes, loc.CrossFraction())
		if !rt.CacheEnabled {
			fmt.Println("read cache: off (enable with blobseerd -read-cache)")
			break
		}
		cs := rt.Cache
		fmt.Printf("read cache: %d entries / %d bytes, hit rate %.3f (%d hits, %d misses)\n",
			cs.Entries, cs.Bytes, cs.HitRate(), cs.Hits, cs.Misses)
		fmt.Printf("hints: %d hits, %d misses, %d fills\n", cs.HintHits, cs.HintMisses, cs.HintFills)
		fmt.Printf("churn: %d fills, %d evictions, %d invalidations\n", cs.Fills, cs.Evictions, cs.Invalidations)

	case "metrics":
		text, err := cli.Metrics()
		if err != nil {
			fail(err)
		}
		fmt.Print(text)

	case "down", "up":
		if *providerID < 0 {
			fail(fmt.Errorf("bsctl: %s requires -provider", cmd))
		}
		if err := cli.SetProviderDown(provider.ID(*providerID), cmd == "down"); err != nil {
			fail(err)
		}
		fmt.Printf("provider %d marked %s\n", *providerID, cmd)

	case "domain":
		if *providerID < 0 || *domainName == "" {
			fail(fmt.Errorf("bsctl: domain requires -provider and -name"))
		}
		if err := cli.SetProviderDomain(provider.ID(*providerID), *domainName); err != nil {
			fail(err)
		}
		fmt.Printf("provider %d registered in failure domain %s\n", *providerID, *domainName)

	default:
		usage()
	}
}

func parseExtents(s string) (extent.List, error) {
	if s == "" {
		return nil, fmt.Errorf("bsctl: -extents required (off:len,off:len,...)")
	}
	var l extent.List
	for _, pair := range strings.Split(s, ",") {
		parts := strings.SplitN(pair, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bsctl: bad extent %q", pair)
		}
		off, err1 := strconv.ParseInt(parts[0], 10, 64)
		length, err2 := strconv.ParseInt(parts[1], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bsctl: bad extent %q", pair)
		}
		l = append(l, extent.Extent{Offset: off, Length: length})
	}
	return l, nil
}

// fill repeats src until the buffer reaches n bytes (zeros if empty).
func fill(src []byte, n int64) []byte {
	out := make([]byte, n)
	if len(src) == 0 {
		return out
	}
	for i := range out {
		out[i] = src[i%len(src)]
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bsctl [-vm addr] [-meta addr] [-data addr] create|write|read|versions|retain|drop|pin|unpin|gc|usage|readtier|status|metrics|repair|health|scrub|down|up|domain [flags]")
	os.Exit(2)
}
