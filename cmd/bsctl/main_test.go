package main

import (
	"testing"

	"repro/internal/extent"
)

func TestParseExtents(t *testing.T) {
	l, err := parseExtents("0:5,100:5")
	if err != nil {
		t.Fatal(err)
	}
	want := extent.List{{Offset: 0, Length: 5}, {Offset: 100, Length: 5}}
	if !l.Equal(want) {
		t.Fatalf("parsed = %v", l)
	}
}

func TestParseExtentsErrors(t *testing.T) {
	for _, bad := range []string{"", "5", "a:b", "1:2:3extra,", "1:", ":2"} {
		if _, err := parseExtents(bad); err == nil {
			t.Fatalf("%q must fail", bad)
		}
	}
}

func TestFill(t *testing.T) {
	out := fill([]byte("ab"), 5)
	if string(out) != "ababa" {
		t.Fatalf("fill = %q", out)
	}
	zero := fill(nil, 3)
	if len(zero) != 3 || zero[0] != 0 {
		t.Fatalf("empty fill = %v", zero)
	}
}
