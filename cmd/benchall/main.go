// Command benchall regenerates every experiment in EXPERIMENTS.md:
// the full E1–E6 matrix of the paper's evaluation (scalability of
// atomic overlapped non-contiguous writes, MPI-tile-IO, region-count
// sweep, overlap sweep, striping sweep, and the headline throughput
// ratio) plus the follow-on scenarios: E7 producer/consumer, E8 group
// commit, E9 chunk replication (write overhead of R copies and
// degraded-read throughput with a provider killed mid-run), and E10
// self-healing (time from an undetected provider-store loss to full
// re-replication, with and without read-repair), E11 space
// reclamation (bytes reclaimed by version GC against the drop
// schedule's exclusive set, the reclamation rate at the configured
// delete budget, and the foreground write-latency impact of a GC
// storm), E12 correlated loss (durability and repair time when a
// whole failure domain dies at once, domain-spread placement vs the
// flat control), and E13 the hot-path read tier (cross-domain read
// fraction and cache hit rate of skewed re-reads under flat rotation,
// zone-local replica selection, and the bounded read-through cache),
// and E14 the checkpoint blaster (N ranks checkpoint a strided N-1
// file epoch after epoch while restore readers pin old epochs, the
// reaper chews the retention backlog and a provider dies mid-run;
// reported from the metrics registry as per-stage latency
// histograms: ticket, commit, publish, pipe write, chunk put/get,
// repair, reap), and E16 control-plane sharding (E8's workload with
// one blob per client rerun at 1/2/4/8 vmanager shards — publish
// throughput scaling as the serialized control path is partitioned),
// and E17 the streaming data plane (wall-clock MB/s of one client
// writing and reading a large object through a live TCP node, across
// data-plane transport gob vs framed, write mode buffered vs
// streamed, and chunk backend mem/disk/null, plus a size sweep of
// the winning combination), and E18 erasure-coded stripes (the same
// domain-racked pool and workload run under rs-4+2 coding vs the R=3
// replicated control: storage overhead, write bandwidth, and read
// throughput healthy and with one whole failure domain dead —
// equivalent domain-kill durability at 1.5x storage instead of 3x).
// Expect a full run to take a few minutes; -quick shrinks the matrix
// for smoke runs; -only E14 (comma-separated names) selects a subset.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/vmanager"
	"repro/internal/workload"
)

// experiments maps the -only selector names onto their runners.
var experiments = map[string]func(bool){
	"E1": runE1, "E2": runE2, "E3": runE3, "E4": runE4, "E5": runE5,
	"E6": runE6, "E7": runE7, "E8": runE8, "E9": runE9, "E10": runE10,
	"E11": runE11, "E12": runE12, "E13": runE13, "E14": runE14,
	"E16": runE16, "E17": runE17, "E18": runE18,
}

func main() {
	quick := flag.Bool("quick", false, "smaller matrix for a fast smoke run")
	headline := flag.Bool("headline", false, "run only E6 (headline ratio)")
	only := flag.String("only", "", "comma-separated experiment names to run (e.g. E14 or E1,E6); empty = all")
	flag.Parse()

	start := time.Now()
	switch {
	case *only != "":
		runners, err := selectRunners(*only)
		if err != nil {
			die(err)
		}
		for _, run := range runners {
			run(*quick)
		}
	case *headline:
		runE6(*quick)
	default:
		runE1(*quick)
		runE2(*quick)
		runE3(*quick)
		runE4(*quick)
		runE5(*quick)
		runE7(*quick)
		runE8(*quick)
		runE9(*quick)
		runE10(*quick)
		runE11(*quick)
		runE12(*quick)
		runE13(*quick)
		runE14(*quick)
		runE16(*quick)
		runE17(*quick)
		runE18(*quick)
		runE6(*quick)
	}
	fmt.Printf("\ntotal benchmark wall time: %.1fs\n", time.Since(start).Seconds())
}

// selectRunners resolves a -only selector into runners, validating
// every name before any experiment runs: a typo fails fast with the
// full list of valid names instead of silently skipping (or worse,
// failing only after the experiments named before it already ran).
func selectRunners(only string) ([]func(bool), error) {
	var runners []func(bool)
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		run, ok := experiments[name]
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (valid: %s)", name, strings.Join(experimentNames(), ", "))
		}
		runners = append(runners, run)
	}
	return runners, nil
}

// experimentNames lists the valid -only names in numeric order,
// derived from the experiments map so the error message can never
// drift from what actually runs.
func experimentNames() []string {
	names := make([]string, 0, len(experiments))
	for name := range experiments {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		ni, _ := strconv.Atoi(strings.TrimPrefix(names[i], "E"))
		nj, _ := strconv.Atoi(strings.TrimPrefix(names[j], "E"))
		return ni < nj
	})
	return names
}

func env() cluster.Env { return cluster.Metered() }

func die(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// E1: aggregated throughput vs number of clients.
func runE1(quick bool) {
	clients := []int{1, 2, 4, 8, 16, 32, 64}
	systems := []bench.SystemKind{bench.Versioning, bench.LockBounding, bench.LockWholeFile, bench.LockConflictDetect}
	iters := 2
	if quick {
		clients = []int{1, 4, 16}
		iters = 1
	}
	tbl := bench.NewTable("E1: atomic overlapped non-contiguous writes, throughput vs clients (32 regions x 64 KiB, overlap 0.75)",
		bench.StandardHeader()...)
	for _, n := range clients {
		spec := workload.OverlapSpec{Clients: n, Regions: 32, RegionSize: 64 << 10, OverlapFraction: 0.75}
		for _, kind := range systems {
			res, err := bench.RunOverlap(kind, env(), spec, bench.OverlapOptions{Iterations: iters, Warmup: 1})
			if err != nil {
				die(err)
			}
			tbl.AddResult(res)
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

// E2: MPI-tile-IO, independent and collective.
func runE2(quick bool) {
	grids := []int{2, 4, 6, 8}
	if quick {
		grids = []int{2, 4}
	}
	for _, collective := range []bool{false, true} {
		mode := "independent"
		if collective {
			mode = "collective"
		}
		tbl := bench.NewTable(
			fmt.Sprintf("E2: MPI-tile-IO (%s I/O, 64x64 tiles of 32B elements, overlap 16)", mode),
			bench.StandardHeader()...)
		for _, g := range grids {
			spec := workload.TileSpec{
				TilesX: g, TilesY: g,
				TileX: 64, TileY: 64,
				ElementSize: 32,
				OverlapX:    16, OverlapY: 16,
			}
			for _, kind := range []bench.SystemKind{bench.Versioning, bench.LockBounding} {
				res, err := bench.RunTile(kind, env(), spec, bench.TileOptions{Collective: collective, Iterations: 2, Warmup: 1})
				if err != nil {
					die(err)
				}
				tbl.AddResult(res)
			}
		}
		tbl.Render(os.Stdout)
		fmt.Println()
	}
}

// E3: sensitivity to the number of non-contiguous regions per call.
func runE3(quick bool) {
	regions := []int{1, 4, 16, 64, 256}
	if quick {
		regions = []int{4, 64}
	}
	tbl := bench.NewTable("E3: throughput vs regions per call (16 clients, 16 KiB regions, overlap 0.75)",
		append([]string{"regions"}, bench.StandardHeader()...)...)
	for _, r := range regions {
		spec := workload.OverlapSpec{Clients: 16, Regions: r, RegionSize: 16 << 10, OverlapFraction: 0.75}
		for _, kind := range []bench.SystemKind{bench.Versioning, bench.LockBounding, bench.LockList, bench.LockDataSieve} {
			res, err := bench.RunOverlap(kind, env(), spec, bench.OverlapOptions{Iterations: 2, Warmup: 1})
			if err != nil {
				die(err)
			}
			tbl.AddRow(append([]string{fmt.Sprintf("%d", r)}, resultCells(res)...)...)
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

// E4: overlap-fraction sweep (where conflict detection wins and loses).
func runE4(quick bool) {
	fractions := []float64{0, 0.25, 0.5, 0.75, 1}
	if quick {
		fractions = []float64{0, 1}
	}
	tbl := bench.NewTable("E4: throughput vs overlap fraction (16 clients, 32 regions x 64 KiB)",
		append([]string{"overlap"}, bench.StandardHeader()...)...)
	for _, f := range fractions {
		spec := workload.OverlapSpec{Clients: 16, Regions: 32, RegionSize: 64 << 10, OverlapFraction: f}
		for _, kind := range []bench.SystemKind{bench.Versioning, bench.LockBounding, bench.LockConflictDetect} {
			res, err := bench.RunOverlap(kind, env(), spec, bench.OverlapOptions{Iterations: 2, Warmup: 1})
			if err != nil {
				die(err)
			}
			tbl.AddRow(append([]string{fmt.Sprintf("%.2f", f)}, resultCells(res)...)...)
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

// E5: striping sweep (providers/OSTs).
func runE5(quick bool) {
	providers := []int{1, 2, 4, 8, 16}
	if quick {
		providers = []int{2, 8}
	}
	tbl := bench.NewTable("E5: throughput vs striping width (16 clients, 32 regions x 64 KiB, overlap 0.75)",
		append([]string{"providers"}, bench.StandardHeader()...)...)
	for _, p := range providers {
		e := env()
		e.Providers = p
		spec := workload.OverlapSpec{Clients: 16, Regions: 32, RegionSize: 64 << 10, OverlapFraction: 0.75}
		for _, kind := range []bench.SystemKind{bench.Versioning, bench.LockBounding} {
			res, err := bench.RunOverlap(kind, e, spec, bench.OverlapOptions{Iterations: 2, Warmup: 1})
			if err != nil {
				die(err)
			}
			tbl.AddRow(append([]string{fmt.Sprintf("%d", p)}, resultCells(res)...)...)
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

// E6: the headline claim — aggregated-throughput ratio range of
// versioning over the Lustre-style locking baseline.
func runE6(quick bool) {
	clients := []int{8, 16, 32, 64}
	if quick {
		clients = []int{8, 16}
	}
	tbl := bench.NewTable("E6: headline ratio versioning / lock-bounding (paper claims 3.5x-10x)",
		"clients", "versioning MB/s", "lock-bounding MB/s", "ratio")
	lo, hi := 0.0, 0.0
	for _, n := range clients {
		spec := workload.OverlapSpec{Clients: n, Regions: 32, RegionSize: 64 << 10, OverlapFraction: 0.75}
		v, err := bench.RunOverlap(bench.Versioning, env(), spec, bench.OverlapOptions{Iterations: 2, Warmup: 1})
		if err != nil {
			die(err)
		}
		l, err := bench.RunOverlap(bench.LockBounding, env(), spec, bench.OverlapOptions{Iterations: 2, Warmup: 1})
		if err != nil {
			die(err)
		}
		ratio := bench.Ratio(v.MBps, l.MBps)
		if lo == 0 || ratio < lo {
			lo = ratio
		}
		if ratio > hi {
			hi = ratio
		}
		tbl.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.1f", v.MBps), fmt.Sprintf("%.1f", l.MBps), fmt.Sprintf("%.2fx", ratio))
	}
	tbl.Render(os.Stdout)
	fmt.Printf("observed ratio band: %.2fx - %.2fx (paper: 3.5x - 10x)\n", lo, hi)
}

// E7: producer/consumer concurrency — the paper's future-work claim
// that versioning avoids synchronization between simulation output and
// visualization input.
func runE7(quick bool) {
	readers := []int{1, 4, 8}
	if quick {
		readers = []int{4}
	}
	tbl := bench.NewTable("E7: concurrent producers+consumers (8 writers x 4 calls; readers scan the full file under atomicity)",
		"system", "readers", "write MB/s", "read MB/s", "mean read lat", "max read lat")
	for _, nr := range readers {
		spec := bench.MixedSpec{
			Writers: 8, Readers: nr,
			WriteCalls: 4, ReadCalls: 4,
			Pattern: workload.OverlapSpec{
				Regions: 32, RegionSize: 64 << 10, OverlapFraction: 0.75,
			},
		}
		for _, kind := range []bench.SystemKind{bench.Versioning, bench.LockBounding} {
			res, err := bench.RunMixed(kind, env(), spec)
			if err != nil {
				die(err)
			}
			tbl.AddRow(
				res.System.String(),
				fmt.Sprintf("%d", nr),
				fmt.Sprintf("%.1f", res.WriteMBps),
				fmt.Sprintf("%.1f", res.ReadMBps),
				fmt.Sprintf("%.1fms", float64(res.MeanReadLatency.Microseconds())/1000),
				fmt.Sprintf("%.1fms", float64(res.MaxReadLatency.Microseconds())/1000),
			)
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

// E8: group commit — overlapped small writes through write pipes, with
// the version manager's group-commit pipeline at increasing batch
// sizes. Small calls make the per-call control round trips (ticket
// grant + publish) the bottleneck; group commit amortizes them.
func runE8(quick bool) {
	clients := []int{8, 16, 32}
	iters := 16
	if quick {
		clients = []int{16}
		iters = 8
	}
	batches := []int{1, 8, 64}
	tbl := bench.NewTable("E8: group-commit write pipeline (4 regions x 4 KiB per call, overlap 0.75, pipe depth 4)",
		"clients", "batch", "MB/s", "elapsed", "speedup vs batch=1")
	for _, n := range clients {
		spec := workload.OverlapSpec{Clients: n, Regions: 4, RegionSize: 4 << 10, OverlapFraction: 0.75}
		var base float64
		for _, mb := range batches {
			cfg := vmanager.BatchConfig{MaxBatch: mb, MaxDelay: 50 * time.Microsecond}
			res, err := bench.RunSmallWrites(env(), spec, bench.SmallWriteOptions{
				Iterations: iters, Batch: cfg, PipeDepth: 4,
			})
			if err != nil {
				die(err)
			}
			if mb == 1 {
				base = res.MBps
			}
			tbl.AddRow(
				fmt.Sprintf("%d", n),
				bench.BatchLabel(cfg),
				fmt.Sprintf("%.1f", res.MBps),
				fmt.Sprintf("%.3fs", res.Elapsed.Seconds()),
				fmt.Sprintf("%.2fx", bench.Ratio(res.MBps, base)),
			)
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

// E9: chunk replication — the write overhead of storing R copies on
// distinct providers, and what one provider dying mid-run costs: with
// R >= 2 reads fail over to surviving replicas (throughput dips, data
// survives, repair restores R); with R = 1 the degraded phase loses
// data outright.
func runE9(quick bool) {
	clients := []int{8, 16}
	iters := 2
	if quick {
		clients = []int{8}
		iters = 1
	}
	tbl := bench.NewTable("E9: replication (32 regions x 64 KiB, overlap 0.75; one provider killed mid-run)",
		"clients", "R", "write MB/s", "write overhead", "read MB/s", "degraded MB/s", "repair", "repaired")
	for _, n := range clients {
		spec := workload.OverlapSpec{Clients: n, Regions: 32, RegionSize: 64 << 10, OverlapFraction: 0.75}
		var base float64
		for _, r := range []int{1, 2, 3} {
			res, err := bench.RunReplicated(env(), spec, bench.ReplicatedOptions{Replicas: r, Iterations: iters})
			if err != nil {
				die(err)
			}
			if r == 1 {
				base = res.WriteMBps
			}
			degraded := fmt.Sprintf("%.1f", res.DegradedMBps)
			if res.DegradedErr != nil {
				degraded = "data lost"
			}
			tbl.AddRow(
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", r),
				fmt.Sprintf("%.1f", res.WriteMBps),
				fmt.Sprintf("%.2fx", bench.Ratio(base, res.WriteMBps)),
				fmt.Sprintf("%.1f", res.ReadMBps),
				degraded,
				fmt.Sprintf("%.1fms", float64(res.RepairElapsed.Microseconds())/1000),
				fmt.Sprintf("%d", res.Repair.Repaired),
			)
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

// E10: self-healing — after a provider's store dies (no SetDown, no
// repair command), how long until the error-driven detector notices
// and the rate-limited scrubber/repair loop restores full replication,
// with and without the read path feeding the repair queue. Ticks are
// healer control-loop iterations; time is metered wall clock.
func runE10(quick bool) {
	clients := []int{8, 16}
	if quick {
		clients = []int{8}
	}
	tbl := bench.NewTable("E10: self-healing (32 regions x 64 KiB, overlap 0.75; one provider store killed, zero operator action)",
		"clients", "R", "mode", "chunks", "degraded", "detect@tick", "heal ticks", "heal time", "repaired")
	for _, n := range clients {
		spec := workload.OverlapSpec{Clients: n, Regions: 32, RegionSize: 64 << 10, OverlapFraction: 0.75}
		for _, r := range []int{2, 3} {
			for _, rr := range []bool{false, true} {
				res, err := bench.RunSelfHeal(env(), spec, bench.SelfHealOptions{Replicas: r, ReadRepair: rr})
				if err != nil {
					die(err)
				}
				mode := "scrub only"
				if rr {
					mode = "+read-repair"
				}
				tbl.AddRow(
					fmt.Sprintf("%d", n),
					fmt.Sprintf("%d", r),
					mode,
					fmt.Sprintf("%d", res.Chunks),
					fmt.Sprintf("%d", res.Degraded),
					fmt.Sprintf("%d", res.DetectTicks),
					fmt.Sprintf("%d", res.HealTicks),
					fmt.Sprintf("%.1fms", float64(res.HealElapsed.Microseconds())/1000),
					fmt.Sprintf("%d", res.Stats.Repaired),
				)
			}
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

// E11: space reclamation — the retention policy drops all but the
// newest versions and the rate-limited reaper deletes their exclusive
// chunks from every replica. Reported per cell: bytes actually freed
// against the drop schedule's independently computed exclusive set
// (RunGC fails if reclaimed < expected), the reclamation rate, and how
// much a GC storm inflates concurrent foreground write latency — the
// same starvation guard E10 applies to repair.
func runE11(quick bool) {
	clients := []int{8, 16}
	rounds := 6
	if quick {
		clients = []int{8}
		rounds = 4
	}
	tbl := bench.NewTable("E11: version GC (16 regions x 32 KiB, overlap 0.75; keep newest 2 versions, reap the rest)",
		"clients", "R", "gc-rate", "versions", "dropped", "reclaimed MB", "expected MB", "reclaim MB/s", "fg latency impact")
	for _, n := range clients {
		spec := workload.OverlapSpec{Clients: n, Regions: 16, RegionSize: 32 << 10, OverlapFraction: 0.75}
		for _, r := range []int{2, 3} {
			for _, rate := range []int{4, 16} {
				res, err := bench.RunGC(env(), spec, bench.GCOptions{
					Replicas: r, Rounds: rounds, KeepLast: 2, GCRate: rate,
				})
				if err != nil {
					die(err)
				}
				tbl.AddRow(
					fmt.Sprintf("%d", n),
					fmt.Sprintf("%d", r),
					fmt.Sprintf("%d", rate),
					fmt.Sprintf("%d", res.Versions),
					fmt.Sprintf("%d", res.Dropped),
					fmt.Sprintf("%.1f", float64(res.DeletedBytes)/(1<<20)),
					fmt.Sprintf("%.1f", float64(res.ExpectedBytes)/(1<<20)),
					fmt.Sprintf("%.1f", res.ReclaimMBps),
					fmt.Sprintf("%.2fx", res.Impact),
				)
			}
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

// E12: correlated loss — every provider of one failure domain dies at
// once (store level, zero operator action). Domain-spread placement
// keeps the loss to at most one copy per chunk (100% survival) and the
// healer re-replicates into the surviving domains, restoring the
// distinct-domain spread; the flat control shows the same kill losing
// the chunks whose copies happened to be racked together. Durability
// is free: both modes store exactly R copies.
func runE12(quick bool) {
	clients := []int{8, 16}
	if quick {
		clients = []int{8}
	}
	tbl := bench.NewTable("E12: correlated domain loss (32 regions x 64 KiB, overlap 0.75; 8 providers in 4 domains, one whole domain store-killed)",
		"clients", "R", "placement", "chunks", "killed", "degraded", "lost", "survived", "detect@tick", "heal ticks", "heal time")
	for _, n := range clients {
		spec := workload.OverlapSpec{Clients: n, Regions: 32, RegionSize: 64 << 10, OverlapFraction: 0.75}
		for _, r := range []int{2, 3} {
			for _, spread := range []bool{false, true} {
				res, err := bench.RunDomainLoss(env(), spec, bench.DomainLossOptions{Replicas: r, Domains: 4, Spread: spread})
				if err != nil {
					die(err)
				}
				mode := "flat"
				if spread {
					mode = "domain-spread"
				}
				heal, healTime, detect := "-", "data lost", "-"
				if res.HealTicks >= 0 {
					heal = fmt.Sprintf("%d", res.HealTicks)
					healTime = fmt.Sprintf("%.1fms", float64(res.HealElapsed.Microseconds())/1000)
					detect = fmt.Sprintf("%d", res.DetectTicks)
				}
				tbl.AddRow(
					fmt.Sprintf("%d", n),
					fmt.Sprintf("%d", r),
					mode,
					fmt.Sprintf("%d", res.Chunks),
					fmt.Sprintf("%d", res.Killed),
					fmt.Sprintf("%d", res.Degraded),
					fmt.Sprintf("%d", res.Lost),
					fmt.Sprintf("%.1f%%", res.SurvivedPct),
					detect,
					heal,
					healTime,
				)
			}
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

// E13: the hot-path read tier — readers racked in one failure domain
// re-read a replicated file with a 90/10 hot/cold skew. The flat
// rotation fetches roughly (R-1)/R of its bytes from other domains;
// zone-local replica selection collapses that to the chunks with no
// local copy; the bounded read-through cache serves the hot set from
// memory (hit rate reported) and shrinks replica traffic outright.
// Same stored bytes, same durability — the tier only reorders and
// remembers reads.
func runE13(quick bool) {
	readers := []int{8, 16}
	reads := 400
	if quick {
		readers = []int{8}
		reads = 200
	}
	tbl := bench.NewTable("E13: read tier (64-chunk file, 90/10 hot/cold skew, readers in zone0 of 4 domains)",
		"readers", "R", "mode", "reads", "read MB/s", "local bytes", "remote bytes", "cross-domain", "cache hits")
	for _, n := range readers {
		for _, r := range []int{2, 3} {
			for _, mode := range []bench.ReadTierMode{bench.ReadFlat, bench.ReadZoneLocal, bench.ReadZoneLocalCached} {
				res, err := bench.RunReadTier(env(), bench.ReadTierOptions{
					Replicas: r, Domains: 4, Mode: mode,
					Readers: n, ReadsPerReader: reads, Seed: 13,
				})
				if err != nil {
					die(err)
				}
				hits := "-"
				if res.CacheOn {
					hits = fmt.Sprintf("%.1f%%", 100*res.Cache.HitRate())
				}
				tbl.AddRow(
					fmt.Sprintf("%d", n),
					fmt.Sprintf("%d", r),
					mode.String(),
					fmt.Sprintf("%d", res.Reads),
					fmt.Sprintf("%.1f", res.ReadMBps),
					fmt.Sprintf("%d", res.Locality.LocalBytes),
					fmt.Sprintf("%d", res.Locality.RemoteBytes),
					fmt.Sprintf("%.1f%%", 100*res.CrossFraction),
					hits,
				)
			}
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

// E14: the checkpoint blaster — every rank checkpoints the strided
// N-1 pattern epoch after epoch through write pipes while restore
// readers pin and re-read old epochs, retention feeds the reaper, a
// provider store dies mid-run for the self-heal loop to absorb, and
// the metrics registry times every stage. The table is the registry's
// own per-stage latency histograms; a second table reports the
// run-level counters.
func runE14(quick bool) {
	ranks, epochs := 8, 6
	if quick {
		ranks, epochs = 4, 4
	}
	spec := workload.CheckpointSpec{Ranks: ranks, Segments: 8, SegmentSize: 32 << 10}
	res, err := bench.RunCheckpointBlaster(env(), spec, bench.CheckpointOptions{
		Replicas: 2, Epochs: epochs, KeepLast: 2, Readers: 2, Kill: true,
	})
	if err != nil {
		die(err)
	}
	fmt.Printf("E14: checkpoint blaster (%d ranks x %d segments x 32 KiB, %d epochs, keep 2, kill mid-run)\n",
		ranks, spec.Segments, epochs)
	fmt.Printf("written %.1f MiB at %.1f MB/s; %d restores, %d chunks repaired, %d versions reclaimed\n",
		float64(res.WrittenBytes)/(1<<20), res.WriteMBps, res.Restores, res.Repaired, res.Reclaimed)
	tbl := bench.NewTable("E14: per-stage latency histograms (from the metrics registry)",
		"stage", "count", "p50", "p95", "p99")
	for _, s := range res.Stages {
		tbl.AddRow(
			s.Stage,
			fmt.Sprintf("%d", s.Count),
			fmt.Sprintf("%.3fms", float64(s.P50.Microseconds())/1000),
			fmt.Sprintf("%.3fms", float64(s.P95.Microseconds())/1000),
			fmt.Sprintf("%.3fms", float64(s.P99.Microseconds())/1000),
		)
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

// E16: control-plane sharding — E8's overlapped-small-write pipeline
// with one blob per client, rerun at increasing vmanager shard counts.
// Small calls make the serialized control round trips (ticket grant +
// publish) the ceiling; partitioning blobs across shards splits that
// serialization N ways, so publish throughput should scale near
// linearly until the data path takes over. shards=1 is the control: it
// must reproduce E8's single-manager numbers within noise.
func runE16(quick bool) {
	clients := 16
	iters := 16
	if quick {
		iters = 8
	}
	shardCounts := []int{1, 2, 4, 8}
	batches := []int{1, 8}
	// A wide data plane (providers and metadata shards already scale
	// out) keeps the bottleneck on the one path this experiment
	// varies: the control plane.
	e := env()
	e.Providers = 32
	e.MetaShards = 16
	// "ctrl publishes/s" is calls divided by the busiest shard's
	// metered service time — the control plane's sustainable rate in
	// the simulation's own currency. Wall time is also shown but on a
	// small host it is bound by the clients' real CPU work, not by the
	// modeled control servers this experiment varies.
	tbl := bench.NewTable("E16: control-plane sharding (16 clients x 4 own blobs, 4 regions x 4 KiB per call, overlap 0.75, pipe depth 4, 32 providers)",
		"shards", "batch", "ctrl publishes/s", "ctrl busy", "wall", "wall MB/s", "speedup vs shards=1")
	for _, mb := range batches {
		cfg := vmanager.BatchConfig{MaxBatch: mb, MaxDelay: 50 * time.Microsecond}
		var base float64
		for _, shards := range shardCounts {
			spec := workload.OverlapSpec{Clients: clients, Regions: 4, RegionSize: 4 << 10, OverlapFraction: 0.75}
			res, err := bench.RunShardedPublish(e, spec, bench.ShardedPublishOptions{
				Shards: shards, Iterations: iters, Batch: cfg, PipeDepth: 4, BlobsPerClient: 4,
			})
			if err != nil {
				die(err)
			}
			pubRate := float64(res.Calls) / res.CtrlBusy.Seconds()
			if shards == 1 {
				base = pubRate
			}
			tbl.AddRow(
				fmt.Sprintf("%d", shards),
				bench.BatchLabel(cfg),
				fmt.Sprintf("%.0f", pubRate),
				fmt.Sprintf("%.1fms", res.CtrlBusy.Seconds()*1e3),
				fmt.Sprintf("%.3fs", res.Elapsed.Seconds()),
				fmt.Sprintf("%.1f", res.MBps),
				fmt.Sprintf("%.2fx", bench.Ratio(pubRate, base)),
			)
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

// E17: the streaming data plane — wall-clock MB/s of one client
// writing a large object through a live TCP loopback node and reading
// the published version back, across the three axes this PR added:
// data-plane transport (gob RPC vs framed binary), write mode
// (buffered: store all chunks, then build the tree; streamed: chunk
// upload pipelined against the tree build), and chunk backend (mem,
// disk, null). Unlike the simulated experiments, E17 is real I/O —
// the numbers are host-dependent, the ratios are the result. The full
// run adds a size sweep of framed+streamed on disk, where the
// pipelining headroom is largest.
func runE17(quick bool) {
	size := int64(256 << 20)
	chunkSize := int64(1 << 20)
	if quick {
		size = 8 << 20
		chunkSize = 256 << 10
	}
	dir, err := os.MkdirTemp("", "e17-")
	if err != nil {
		die(err)
	}
	defer os.RemoveAll(dir)

	// One discarded warm-up cell: the first cell of a fresh process
	// otherwise pays the heap's growth to steady state on its own
	// clock, which consistently penalizes whatever case runs first.
	if _, err := bench.RunLargeObject(bench.LargeObjectCase{StoreURL: "mem://"},
		bench.LargeObjectOptions{Size: size, ChunkSize: chunkSize, Rounds: 1}); err != nil {
		die(err)
	}

	tbl := bench.NewTable(fmt.Sprintf("E17: streaming data plane (%d MiB object, %d KiB chunks, TCP loopback)",
		size>>20, chunkSize>>10),
		"case", "write MB/s", "read MB/s", "write wall", "read wall", "write speedup vs gob+buffered")
	cell := 0
	for _, backend := range []string{"mem", "disk", "null"} {
		var base float64
		for _, combo := range []struct{ framed, pipelined bool }{
			{false, false}, {false, true}, {true, false}, {true, true},
		} {
			c := bench.LargeObjectCase{Framed: combo.framed, Pipelined: combo.pipelined, StoreURL: backend + "://"}
			var cellDir string
			if backend == "disk" {
				// Every cell writes the same chunk keys; a shared
				// directory would hit them with duplicate-put errors.
				cellDir = fmt.Sprintf("%s/cell%d", dir, cell)
				c.StoreURL = "disk://" + cellDir
			}
			cell++
			res, err := bench.RunLargeObject(c, bench.LargeObjectOptions{Size: size, ChunkSize: chunkSize})
			if err != nil {
				die(err)
			}
			if cellDir != "" {
				// Deleting the cell's files before the kernel writes them
				// back cancels the pending IO; otherwise each disk cell
				// runs against the previous cells' accumulated writeback
				// and the later cases in the table pay for the earlier.
				os.RemoveAll(cellDir)
			}
			if !combo.framed && !combo.pipelined {
				base = res.WriteMBps
			}
			tbl.AddRow(
				c.Name(),
				fmt.Sprintf("%.0f", res.WriteMBps),
				fmt.Sprintf("%.0f", res.ReadMBps),
				fmt.Sprintf("%.3fs", res.WriteElapsed.Seconds()),
				fmt.Sprintf("%.3fs", res.ReadElapsed.Seconds()),
				fmt.Sprintf("%.2fx", bench.Ratio(res.WriteMBps, base)),
			)
		}
	}
	tbl.Render(os.Stdout)
	fmt.Println()

	if quick {
		return
	}
	sweep := bench.NewTable("E17: size sweep, framed+streamed on disk",
		"size", "write MB/s", "read MB/s", "write wall", "read wall")
	for i, s := range []int64{64 << 20, 256 << 20, 1 << 30} {
		sweepDir := fmt.Sprintf("%s/sweep%d", dir, i)
		c := bench.LargeObjectCase{Framed: true, Pipelined: true, StoreURL: "disk://" + sweepDir}
		res, err := bench.RunLargeObject(c, bench.LargeObjectOptions{Size: s, ChunkSize: chunkSize})
		if err != nil {
			die(err)
		}
		os.RemoveAll(sweepDir)
		sweep.AddRow(
			fmt.Sprintf("%d MiB", s>>20),
			fmt.Sprintf("%.0f", res.WriteMBps),
			fmt.Sprintf("%.0f", res.ReadMBps),
			fmt.Sprintf("%.3fs", res.WriteElapsed.Seconds()),
			fmt.Sprintf("%.3fs", res.ReadElapsed.Seconds()),
		)
	}
	sweep.Render(os.Stdout)
	fmt.Println()
}

// E18: erasure-coded stripes — the same domain-racked pool and
// overlapped workload run under rs-4+2 coding and under the R=3
// replicated control. Both tolerate the loss of any two fragment/copy
// holders; the storage column is what that tolerance costs each mode
// (1.5x vs 3x), and the degraded column is what reconstruction costs
// reads when one whole failure domain is dead.
func runE18(quick bool) {
	clients, iters := 8, 4
	if quick {
		clients, iters = 4, 2
	}
	e := env()
	e.Providers = 12
	spec := workload.OverlapSpec{Clients: clients, Regions: 4, RegionSize: 64 << 10, OverlapFraction: 0.5}
	tbl := bench.NewTable(
		fmt.Sprintf("E18: erasure-coded stripes vs replication (%d clients x 4 regions x 64 KiB, 12 providers / 6 domains, domain zone0 killed)", clients),
		"mode", "storage", "write MB/s", "read MB/s", "degraded MB/s", "lost", "repair")
	for _, opts := range []bench.CodedOptions{
		{Replicas: 3, Domains: 6, Iterations: iters},
		{Coding: "rs-4+2", Domains: 6, Iterations: iters},
	} {
		res, err := bench.RunCoded(e, spec, opts)
		if err != nil {
			die(err)
		}
		tbl.AddRow(
			res.Mode,
			fmt.Sprintf("%.2fx", res.StorageX),
			fmt.Sprintf("%.1f", res.WriteMBps),
			fmt.Sprintf("%.1f", res.ReadMBps),
			fmt.Sprintf("%.1f", res.DegradedMBps),
			fmt.Sprintf("%d", res.Lost),
			fmt.Sprintf("%.3fs", res.RepairElapsed.Seconds()),
		)
	}
	tbl.Render(os.Stdout)
	fmt.Println()
}

func resultCells(r bench.Result) []string {
	return []string{
		r.System.String(),
		fmt.Sprintf("%d", r.Clients),
		fmt.Sprintf("%.1f", r.MBps),
		fmt.Sprintf("%.3fs", r.Elapsed.Seconds()),
		fmt.Sprintf("%.3fs", r.LockWait.Seconds()),
	}
}
