package main

import (
	"sort"
	"strconv"
	"strings"
	"testing"
)

// An unknown -only name must fail before anything runs, and the error
// must teach the valid names (derived from the experiments map, so
// E16 is in and the never-assigned E15 is out).
func TestSelectRunnersUnknownFailsFast(t *testing.T) {
	runners, err := selectRunners("E1,E99,E14")
	if err == nil {
		t.Fatal("selectRunners accepted unknown experiment E99")
	}
	if runners != nil {
		t.Fatalf("selectRunners returned %d runners alongside the error; want none", len(runners))
	}
	msg := err.Error()
	if !strings.Contains(msg, "E99") {
		t.Errorf("error %q does not name the offending experiment", msg)
	}
	for _, want := range []string{"E1", "E14", "E16"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not list valid name %s", msg, want)
		}
	}
	if strings.Contains(msg, "E15") {
		t.Errorf("error %q lists E15, which is not an experiment", msg)
	}
}

func TestSelectRunnersValid(t *testing.T) {
	runners, err := selectRunners("E16, E1")
	if err != nil {
		t.Fatalf("selectRunners: %v", err)
	}
	if len(runners) != 2 {
		t.Fatalf("selected %d runners, want 2", len(runners))
	}
}

func TestExperimentNamesSortedNumerically(t *testing.T) {
	names := experimentNames()
	if len(names) != len(experiments) {
		t.Fatalf("experimentNames returned %d names for %d experiments", len(names), len(experiments))
	}
	nums := make([]int, 0, len(names))
	for _, n := range names {
		v, err := strconv.Atoi(strings.TrimPrefix(n, "E"))
		if err != nil {
			t.Fatalf("name %q is not E<number>", n)
		}
		nums = append(nums, v)
	}
	if !sort.IntsAreSorted(nums) {
		t.Errorf("names not in numeric order: %v", names)
	}
}
