package repro_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro"
)

func TestStoreQuickPath(t *testing.T) {
	store, err := repro.NewStore(repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := store.Write(100, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.ReadAt(v, 100, 5)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read = %q, %v", got, err)
	}
	sz, err := store.Size()
	if err != nil || sz != 105 {
		t.Fatalf("size = %d, %v", sz, err)
	}
}

func TestStoreWriteListAtomicSnapshot(t *testing.T) {
	store, err := repro.NewStore(repro.Options{Providers: 4, ChunkSize: 4096, Span: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	l := repro.ExtentList{{Offset: 0, Length: 4}, {Offset: 8192, Length: 4}}
	v1, err := store.WriteList(repro.MustVec(l, []byte("aaaabbbb")))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := store.WriteList(repro.MustVec(l, []byte("ccccdddd")))
	if err != nil {
		t.Fatal(err)
	}
	old, err := store.ReadListAt(v1, l)
	if err != nil || !bytes.Equal(old, []byte("aaaabbbb")) {
		t.Fatalf("old snapshot = %q, %v", old, err)
	}
	cur, _, err := store.ReadList(l)
	if err != nil || !bytes.Equal(cur, []byte("ccccdddd")) {
		t.Fatalf("latest = %q, %v", cur, err)
	}
	if latest, _ := store.Latest(); latest != v2 {
		t.Fatalf("latest version = %d, want %d", latest, v2)
	}
	vs, err := store.Versions()
	if err != nil || len(vs) != 3 {
		t.Fatalf("versions = %v, %v", vs, err)
	}
}

func TestStoreConcurrentWritersAtomic(t *testing.T) {
	store, err := repro.NewStore(repro.Options{Providers: 4, ChunkSize: 2048, Span: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	l := repro.ExtentList{{Offset: 0, Length: 512}, {Offset: 65536, Length: 512}}
	const writers = 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte(w + 1)}, 1024)
			if _, err := store.WriteList(repro.MustVec(l, buf)); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	got, _, err := store.ReadList(l)
	if err != nil {
		t.Fatal(err)
	}
	first := got[0]
	for i, b := range got {
		if b != first {
			t.Fatalf("interleaving at byte %d", i)
		}
	}
}

func TestMustVecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustVec must panic on bad input")
		}
	}()
	repro.MustVec(repro.ExtentList{{Offset: 0, Length: 4}}, []byte("toolongbuffer"))
}

func TestOptionsValidationPropagates(t *testing.T) {
	if _, err := repro.NewStore(repro.Options{ChunkSize: -5}); err == nil {
		t.Fatal("negative chunk size must fail")
	}
}

func ExampleStore() {
	store, _ := repro.NewStore(repro.Options{})
	l := repro.ExtentList{{Offset: 0, Length: 2}, {Offset: 10, Length: 2}}
	v, _ := store.WriteList(repro.MustVec(l, []byte("abcd")))
	data, _ := store.ReadListAt(v, l)
	fmt.Printf("v%d %q\n", v, data)
	// Output: v1 "abcd"
}
