// Package repro is the public facade of this reproduction of
// "Towards a storage backend optimized for atomic MPI-I/O for parallel
// scientific applications" (Tran, IPDPSW/PhD Forum 2011): a
// versioning-based storage backend providing native MPI-atomic
// non-contiguous (List I/O) reads and writes, together with the full
// substrate stack the paper depends on (BlobSeer-equivalent versioning
// service, MPI runtime, MPI-I/O layer, Lustre-like locking baseline).
//
// The quickest way in:
//
//	store, _ := repro.NewStore(repro.Options{})
//	v, _ := store.WriteList(repro.MustVec(
//		repro.ExtentList{{Offset: 0, Length: 4}, {Offset: 1024, Length: 4}},
//		[]byte("abcdwxyz")))
//	data, _ := store.ReadListAt(v, repro.ExtentList{{Offset: 1024, Length: 4}})
//
// WriteList applies the whole vector as one atomic transaction: under
// any concurrency, overlapping bytes of two calls never interleave and
// every snapshot equals some serial order of whole calls — MPI atomic
// mode semantics, provided without locks.
package repro

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/extent"
)

// Re-exported core types; see the internal packages for full
// documentation.
type (
	// Extent is a byte range [Offset, Offset+Length) in the file.
	Extent = extent.Extent
	// ExtentList is an ordered set of extents (a List I/O pattern).
	ExtentList = extent.List
	// Vec pairs an extent list with its flat data buffer.
	Vec = extent.Vec
	// Version identifies one published snapshot.
	Version = core.Version
	// Backend is the storage-backend interface (see internal/core).
	Backend = core.Backend
)

// NewVec validates and builds a write/read vector.
func NewVec(l ExtentList, buf []byte) (Vec, error) { return extent.NewVec(l, buf) }

// MustVec is NewVec for statically correct inputs; it panics on error.
func MustVec(l ExtentList, buf []byte) Vec {
	v, err := extent.NewVec(l, buf)
	if err != nil {
		panic(err)
	}
	return v
}

// Options configures an in-process Store deployment.
type Options struct {
	// Providers is the number of data providers the file is striped
	// over (default 8).
	Providers int
	// MetaShards is the number of metadata providers (default 8).
	MetaShards int
	// ChunkSize is the stripe unit in bytes (default 64 KiB).
	ChunkSize int64
	// Span is the largest file offset the store must address
	// (default 1 GiB). The address space is rounded up to a
	// power-of-two multiple of ChunkSize.
	Span int64
	// Simulate enables the synthetic network/disk cost models used by
	// the experiments. Off by default: the store runs at memory speed.
	Simulate bool
}

func (o Options) withDefaults() Options {
	if o.Providers == 0 {
		o.Providers = 8
	}
	if o.MetaShards == 0 {
		o.MetaShards = 8
	}
	if o.ChunkSize == 0 {
		o.ChunkSize = 64 << 10
	}
	if o.Span == 0 {
		o.Span = 1 << 30
	}
	return o
}

// Store is a ready-to-use instance of the paper's storage backend with
// all services running in-process. All methods are safe for concurrent
// use; concurrency is the point.
type Store struct {
	backend *core.VersioningBackend
}

// NewStore boots the versioning service and creates one blob (the
// shared file).
func NewStore(opts Options) (*Store, error) {
	opts = opts.withDefaults()
	env := cluster.Default()
	if opts.Simulate {
		env = cluster.Metered()
	}
	env.Providers = opts.Providers
	env.MetaShards = opts.MetaShards
	env.ChunkSize = opts.ChunkSize
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	be, err := svc.Backend(1, opts.Span)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return &Store{backend: be}, nil
}

// Backend exposes the underlying core.Backend (for use with the
// MPI-I/O layer or the benchmark harness).
func (s *Store) Backend() *core.VersioningBackend { return s.backend }

// WriteList atomically writes a non-contiguous vector and returns the
// snapshot version it produced.
func (s *Store) WriteList(v Vec) (Version, error) { return s.backend.WriteList(v) }

// Write is the contiguous convenience form of WriteList.
func (s *Store) Write(off int64, data []byte) (Version, error) {
	v, err := NewVec(ExtentList{{Offset: off, Length: int64(len(data))}}, data)
	if err != nil {
		return 0, err
	}
	return s.backend.WriteList(v)
}

// ReadList atomically reads from the newest published snapshot.
func (s *Store) ReadList(q ExtentList) ([]byte, Version, error) { return s.backend.ReadList(q) }

// ReadListAt reads from a specific published snapshot; snapshots are
// immutable, so this is stable against concurrent writers.
func (s *Store) ReadListAt(v Version, q ExtentList) ([]byte, error) {
	return s.backend.ReadListAt(v, q)
}

// ReadAt is the contiguous convenience form of ReadListAt.
func (s *Store) ReadAt(v Version, off, length int64) ([]byte, error) {
	return s.backend.ReadListAt(v, ExtentList{{Offset: off, Length: length}})
}

// Latest returns the newest published snapshot version.
func (s *Store) Latest() (Version, error) { return s.backend.Latest() }

// Versions enumerates all published snapshots (0 is the empty one).
func (s *Store) Versions() ([]Version, error) { return s.backend.Versions() }

// Size returns the current file size.
func (s *Store) Size() (int64, error) { return s.backend.Size() }

// Diff returns the byte ranges that may differ between two published
// snapshots. The cost is proportional to the metadata that changed,
// not to the file size, so consumers (e.g. visualization of simulation
// output) can fetch exactly what a new timestep touched.
func (s *Store) Diff(a, b Version) (ExtentList, error) { return s.backend.Diff(a, b) }
