package remote

import (
	"strings"
	"testing"

	"repro/internal/extent"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

// One RPC round trip must carry a whole batch of ticket grants, with
// per-item failures (gob-encoded as strings) that leave the good
// requests intact and contiguous.
func TestBatchTicketRPCRoundTrip(t *testing.T) {
	_, ep := startNode(t)
	c := dialClient(t, ep)

	if err := c.CreateBlob(7, segtree.Geometry{Capacity: 1 << 20, Page: 1 << 12}); err != nil {
		t.Fatal(err)
	}
	res, err := c.AssignTicketBatch([]vmanager.TicketRequest{
		{Blob: 7, Extents: extent.List{{Offset: 0, Length: 4096}}},
		{Blob: 99, Extents: extent.List{{Offset: 0, Length: 10}}}, // unknown blob
		{Blob: 7, Extents: extent.List{{Offset: 2048, Length: 4096}}},
		{Blob: 7, Extents: nil}, // empty write
	})
	if err != nil {
		t.Fatalf("AssignTicketBatch transport error: %v", err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	if res[0].Err != nil || res[2].Err != nil {
		t.Fatalf("good requests failed: %v, %v", res[0].Err, res[2].Err)
	}
	if res[0].Ticket.Version != 1 || res[2].Ticket.Version != 2 {
		t.Fatalf("good requests got versions %d, %d; want contiguous 1, 2",
			res[0].Ticket.Version, res[2].Ticket.Version)
	}
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "unknown blob") {
		t.Fatalf("unknown blob item: %v", res[1].Err)
	}
	if res[3].Err == nil || !strings.Contains(res[3].Err.Error(), "empty extent list") {
		t.Fatalf("empty write item: %v", res[3].Err)
	}
	// Borrow answers must survive gob: request 2 overlaps request 1's
	// pages, so it must have borrowed version 1 somewhere.
	var sawBorrow bool
	for _, v := range res[2].Ticket.Borrows {
		if v == 1 {
			sawBorrow = true
		}
	}
	if !sawBorrow {
		t.Fatalf("borrow answers lost in transit: %v", res[2].Ticket.Borrows)
	}
}

// CompleteBatch must publish the batch in ticket order with per-item
// partial-failure reporting, and the published snapshots must be
// observable through the regular single-call API.
func TestBatchCompleteRPCPartialFailure(t *testing.T) {
	_, ep := startNode(t)
	c := dialClient(t, ep)

	if err := c.CreateBlob(7, segtree.Geometry{Capacity: 1 << 20, Page: 1 << 12}); err != nil {
		t.Fatal(err)
	}
	res, err := c.AssignTicketBatch([]vmanager.TicketRequest{
		{Blob: 7, Extents: extent.List{{Offset: 0, Length: 4096}}},
		{Blob: 7, Extents: extent.List{{Offset: 4096, Length: 4096}}},
		{Blob: 7, Extents: extent.List{{Offset: 8192, Length: 4096}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	errs, err := c.CompleteBatch([]vmanager.PublishRequest{
		{Blob: 7, Version: res[0].Ticket.Version, Root: segtree.NodeKey{Version: 1}},
		{Blob: 7, Version: 42}, // unassigned version
		{Blob: 7, Version: res[1].Ticket.Version, Abort: true},
		{Blob: 7, Version: res[2].Ticket.Version, Root: segtree.NodeKey{Version: 3}},
	})
	if err != nil {
		t.Fatalf("CompleteBatch transport error: %v", err)
	}
	if errs[0] != nil || errs[2] != nil || errs[3] != nil {
		t.Fatalf("good items failed: %v", errs)
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "unassigned") {
		t.Fatalf("unassigned item: %v", errs[1])
	}
	// All three tickets resolved (one aborted), so everything publishes.
	if err := c.WaitPublished(7, res[2].Ticket.Version); err != nil {
		t.Fatalf("WaitPublished: %v", err)
	}
	info, err := c.LatestPublished(7)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != res[2].Ticket.Version {
		t.Fatalf("latest published %d, want %d", info.Version, res[2].Ticket.Version)
	}
	// The aborted version shares its predecessor's root (empty snapshot).
	s1, err := c.Snapshot(7, res[0].Ticket.Version)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Snapshot(7, res[1].Ticket.Version)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Root != s1.Root {
		t.Fatalf("aborted snapshot root %v, want predecessor's %v", s2.Root, s1.Root)
	}
}

// Empty batches must round-trip without tripping length validation.
func TestBatchRPCEmpty(t *testing.T) {
	_, ep := startNode(t)
	c := dialClient(t, ep)
	res, err := c.AssignTicketBatch(nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty ticket batch = (%v, %v)", res, err)
	}
	errs, err := c.CompleteBatch(nil)
	if err != nil || len(errs) != 0 {
		t.Fatalf("empty publish batch = (%v, %v)", errs, err)
	}
}
