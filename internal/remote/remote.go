// Package remote exposes the storage services over TCP using the
// standard library's net/rpc with gob encoding, so the
// BlobSeer-equivalent service can run as real distributed processes
// (cmd/blobseerd) while clients use the same blob.Services interfaces
// as the in-process wiring. One server process can host any subset of
// the three roles: version manager, metadata provider, data provider.
package remote

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"strings"
	"sync"

	"repro/internal/blob"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/metadata"
	"repro/internal/metrics"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

// Service names registered with net/rpc.
const (
	vmService   = "VM"
	metaService = "Meta"
	dataService = "Data"
	nodeService = "Node"
)

// --- Version manager service ---

// VMBackend is what a version-manager node serves: the client-facing
// VersionService plus the batch entry points the group-commit RPCs use,
// the blob catalog the reaper walks, and the shard-status report.
// Implemented by both *vmanager.Manager (single control server) and
// *vmanager.Sharded (partitioned control plane) — the RPC surface is
// identical either way, so clients never know how many shards serve
// them.
type VMBackend interface {
	blob.VersionService
	AssignTicketBatch(reqs []vmanager.TicketRequest) []vmanager.TicketResult
	CompleteBatch(reqs []vmanager.PublishRequest) []error
	Blobs() []uint64
	ShardStatuses() []vmanager.ShardStatus
}

var (
	_ VMBackend = (*vmanager.Manager)(nil)
	_ VMBackend = (*vmanager.Sharded)(nil)
)

// VMServer exposes a version-manager backend over RPC.
type VMServer struct {
	M VMBackend
}

// CreateBlobArgs carries blob creation parameters.
type CreateBlobArgs struct {
	Blob uint64
	Geo  segtree.Geometry
}

// CreateBlob RPC.
func (s *VMServer) CreateBlob(a *CreateBlobArgs, _ *struct{}) error {
	return s.M.CreateBlob(a.Blob, a.Geo)
}

// GeometryArgs selects a blob.
type GeometryArgs struct{ Blob uint64 }

// Geometry RPC.
func (s *VMServer) Geometry(a *GeometryArgs, reply *segtree.Geometry) error {
	g, err := s.M.Geometry(a.Blob)
	if err != nil {
		return err
	}
	*reply = g
	return nil
}

// TicketArgs requests a write ticket.
type TicketArgs struct {
	Blob    uint64
	Extents extent.List
}

// AssignTicket RPC.
func (s *VMServer) AssignTicket(a *TicketArgs, reply *vmanager.Ticket) error {
	tk, err := s.M.AssignTicket(a.Blob, a.Extents)
	if err != nil {
		return err
	}
	*reply = tk
	return nil
}

// CompleteArgs reports a finished snapshot.
type CompleteArgs struct {
	Blob    uint64
	Version uint64
	Root    segtree.NodeKey
}

// Complete RPC.
func (s *VMServer) Complete(a *CompleteArgs, _ *struct{}) error {
	return s.M.Complete(a.Blob, a.Version, a.Root)
}

// Abort RPC.
func (s *VMServer) Abort(a *CompleteArgs, _ *struct{}) error {
	return s.M.Abort(a.Blob, a.Version)
}

// WaitArgs blocks for publication.
type WaitArgs struct {
	Blob    uint64
	Version uint64
}

// WaitPublished RPC.
func (s *VMServer) WaitPublished(a *WaitArgs, _ *struct{}) error {
	return s.M.WaitPublished(a.Blob, a.Version)
}

// LatestPublished RPC.
func (s *VMServer) LatestPublished(a *GeometryArgs, reply *vmanager.SnapshotInfo) error {
	info, err := s.M.LatestPublished(a.Blob)
	if err != nil {
		return err
	}
	*reply = info
	return nil
}

// SnapshotArgs selects a published version.
type SnapshotArgs struct {
	Blob    uint64
	Version uint64
}

// Snapshot RPC.
func (s *VMServer) Snapshot(a *SnapshotArgs, reply *vmanager.SnapshotInfo) error {
	info, err := s.M.Snapshot(a.Blob, a.Version)
	if err != nil {
		return err
	}
	*reply = info
	return nil
}

// Versions RPC.
func (s *VMServer) Versions(a *GeometryArgs, reply *[]uint64) error {
	vs, err := s.M.Versions(a.Blob)
	if err != nil {
		return err
	}
	*reply = vs
	return nil
}

// RetainArgs applies the retention policy to one blob.
type RetainArgs struct {
	Blob     uint64
	KeepLast int
}

// Retain RPC: drop every version older than the newest KeepLast
// (pinned versions skipped); the reply lists the versions newly
// dropped.
func (s *VMServer) Retain(a *RetainArgs, reply *[]uint64) error {
	dropped, err := s.M.Retain(a.Blob, a.KeepLast)
	if err != nil {
		return err
	}
	*reply = dropped
	return nil
}

// DropVersion RPC: remove one published version from the readable set
// and queue it for chunk reclamation.
func (s *VMServer) DropVersion(a *SnapshotArgs, _ *struct{}) error {
	return s.M.DropVersion(a.Blob, a.Version)
}

// Pin RPC: protect a version from retention (reader holding it open).
func (s *VMServer) Pin(a *SnapshotArgs, _ *struct{}) error {
	return s.M.Pin(a.Blob, a.Version)
}

// Unpin RPC: release one Pin.
func (s *VMServer) Unpin(a *SnapshotArgs, _ *struct{}) error {
	return s.M.Unpin(a.Blob, a.Version)
}

// GCInfo RPC: the version-lifecycle snapshot a collector pass plans
// from.
func (s *VMServer) GCInfo(a *GeometryArgs, reply *vmanager.GCInfo) error {
	info, err := s.M.GCInfo(a.Blob)
	if err != nil {
		return err
	}
	*reply = info
	return nil
}

// MarkReclaimed RPC: record that a pending version's exclusive chunks
// were deleted.
func (s *VMServer) MarkReclaimed(a *SnapshotArgs, _ *struct{}) error {
	return s.M.MarkReclaimed(a.Blob, a.Version)
}

// ShardStatusArgs selects the control-plane shard report.
type ShardStatusArgs struct{}

// ShardStatusReply lists every control-plane shard's status, in shard
// order (a single unsharded manager reports one shard).
type ShardStatusReply struct {
	Shards []vmanager.ShardStatus
}

// ShardStatus RPC: the per-shard control-plane report (bsctl status).
func (s *VMServer) ShardStatus(_ *ShardStatusArgs, reply *ShardStatusReply) error {
	reply.Shards = s.M.ShardStatuses()
	return nil
}

// --- Metadata service ---

// MetaServer exposes a metadata.Store over RPC.
type MetaServer struct {
	S *metadata.Store
}

// NodeArgs addresses one metadata node.
type NodeArgs struct {
	Blob uint64
	Key  segtree.NodeKey
	Node *segtree.Node // for puts
}

// NodeReply returns a node and whether it exists.
type NodeReply struct {
	Node  *segtree.Node
	Found bool
}

// PutNode RPC.
func (s *MetaServer) PutNode(a *NodeArgs, _ *struct{}) error {
	return s.S.PutNode(a.Blob, a.Key, a.Node)
}

// GetNode RPC.
func (s *MetaServer) GetNode(a *NodeArgs, reply *NodeReply) error {
	n, err := s.S.GetNode(a.Blob, a.Key)
	if err != nil {
		return err
	}
	reply.Node = n
	reply.Found = true
	return nil
}

// TryGetNode RPC.
func (s *MetaServer) TryGetNode(a *NodeArgs, reply *NodeReply) error {
	n, ok, err := s.S.TryGetNode(a.Blob, a.Key)
	if err != nil {
		return err
	}
	reply.Node = n
	reply.Found = ok
	return nil
}

// --- Data service ---

// DataServer exposes a provider.Router over RPC, plus — when the node
// runs the self-healing loop — its health monitor and healer, and —
// when it runs the garbage collector — its reaper.
type DataServer struct {
	R *provider.Router
	H *provider.HealthMonitor // nil unless self-heal enabled
	E *core.Healer            // nil unless self-heal enabled
	G *core.Reaper            // nil unless GC enabled
}

// PutChunkArgs stores one chunk.
type PutChunkArgs struct {
	Key  chunk.Key
	Data []byte
}

// PutChunk RPC. The reply is the replica set: the providers that hold
// a copy after the quorum write.
func (s *DataServer) PutChunk(a *PutChunkArgs, reply *[]provider.ID) error {
	ids, err := s.R.Put(a.Key, a.Data)
	if err != nil {
		return err
	}
	*reply = ids
	return nil
}

// GetChunkArgs reads a chunk sub-range. Replicas, when non-empty, is
// the write-time replica hint from metadata: the server tries those
// copies first and fails over before consulting its placement map.
type GetChunkArgs struct {
	Key         chunk.Key
	Off, Length int64
	Replicas    []provider.ID
}

// GetChunkReply carries the data plus, when the caller's replica hint
// was stale, the current replica set so the client can cache it.
type GetChunkReply struct {
	Data  []byte
	Fresh []provider.ID
}

// GetChunk RPC.
func (s *DataServer) GetChunk(a *GetChunkArgs, reply *GetChunkReply) error {
	if len(a.Replicas) > 0 {
		data, fresh, err := s.R.GetFrom(a.Replicas, a.Key, a.Off, a.Length)
		if err != nil {
			return err
		}
		reply.Data, reply.Fresh = data, fresh
		return nil
	}
	data, err := s.R.Get(a.Key, a.Off, a.Length)
	if err != nil {
		return err
	}
	reply.Data = data
	return nil
}

// RepairArgs triggers a re-replication pass.
type RepairArgs struct{}

// Repair RPC: scan placement for chunks below the replication degree
// and re-replicate them from surviving copies (bsctl repair).
func (s *DataServer) Repair(_ *RepairArgs, reply *provider.RepairStats) error {
	*reply = s.R.Repair()
	return nil
}

// SetDownArgs marks one provider dead or revived.
type SetDownArgs struct {
	Provider provider.ID
	Down     bool
}

// SetProviderDown RPC: administrative kill switch used to drain a
// machine or to model its loss (bsctl down/up).
func (s *DataServer) SetProviderDown(a *SetDownArgs, _ *struct{}) error {
	return s.R.SetDown(a.Provider, a.Down)
}

// SetDomainArgs registers one provider's failure-domain label.
type SetDomainArgs struct {
	Provider provider.ID
	Domain   string
}

// SetProviderDomain RPC: register a provider with a failure domain
// (rack/zone) after the fact — retagging the topology (bsctl domain).
// Placement spreads subsequent replicas across the registered domains;
// the scrubber's spread audit re-finds chunks the new topology leaves
// co-located and repair re-spreads them.
func (s *DataServer) SetProviderDomain(a *SetDomainArgs, _ *struct{}) error {
	return s.R.SetDomain(a.Provider, a.Domain)
}

// SpreadAuditArgs selects the correlated-loss exposure report.
type SpreadAuditArgs struct{}

// SpreadAuditReply lists the chunks whose live replicas violate the
// domain-spread invariant (co-located in fewer domains than the pool
// could spread them over).
type SpreadAuditReply struct {
	Violations []chunk.Key
}

// SpreadAudit RPC: scan placement for chunks exposed to a correlated
// single-domain loss (bsctl health). Empty on a flat pool.
func (s *DataServer) SpreadAudit(_ *SpreadAuditArgs, reply *SpreadAuditReply) error {
	reply.Violations = s.R.SpreadAudit()
	return nil
}

// HealthArgs selects the health snapshot.
type HealthArgs struct{}

// Health RPC: the per-provider health states of the error-driven
// failure detector (bsctl health). Fails when the node does not run
// the self-healing loop.
func (s *DataServer) Health(_ *HealthArgs, reply *[]provider.HealthStatus) error {
	if s.H == nil {
		return errors.New("remote: self-heal not enabled on this node (blobseerd -self-heal)")
	}
	*reply = s.H.Snapshot()
	return nil
}

// ScrubArgs selects the scrub operation.
type ScrubArgs struct {
	// Sync, when set, runs a full scrub pass (and drains the repair
	// queue) before replying; otherwise the current counters return.
	Sync bool
}

// Scrub RPC: background-healer statistics, optionally after forcing a
// full synchronous scrub+repair pass (bsctl scrub [-sync]). Fails when
// the node does not run the self-healing loop.
func (s *DataServer) Scrub(a *ScrubArgs, reply *core.HealerStats) error {
	if s.E == nil {
		return errors.New("remote: self-heal not enabled on this node (blobseerd -self-heal)")
	}
	if a.Sync {
		*reply = s.E.Pass()
	} else {
		*reply = s.E.Stats()
	}
	return nil
}

// CodingArgs selects the placement-mode report.
type CodingArgs struct{}

// CodingReply reports the node's chunk placement mode: erasure coding
// (K data + M parity fragments) when Coded, R-way replication
// otherwise.
type CodingReply struct {
	Coded    bool
	K, M     int
	Replicas int
	Quorum   int
}

// Coding RPC: the data node's placement mode (bsctl health shows it so
// operators know what durability the pool promises).
func (s *DataServer) Coding(_ *CodingArgs, reply *CodingReply) error {
	k, m, on := s.R.Coding()
	reply.Coded, reply.K, reply.M = on, k, m
	reply.Replicas = s.R.Replicas()
	reply.Quorum = s.R.WriteQuorum()
	return nil
}

// UsageArgs selects the space-accounting snapshot.
type UsageArgs struct{}

// Usage RPC: per-provider chunk counts and stored bytes (bsctl usage)
// — the operator's space view and the reclamation verification feed.
func (s *DataServer) Usage(_ *UsageArgs, reply *[]provider.ProviderUsage) error {
	*reply = s.R.Usage()
	return nil
}

// ReadTierArgs selects the read-tier snapshot.
type ReadTierArgs struct{}

// ReadTierReply reports the node's hot-path read-tier state: the
// configured reader domain with its locality counters, and — when the
// bounded read-through cache is enabled — the cache counters.
type ReadTierReply struct {
	LocalDomain  string
	Locality     provider.ReadLocalityStats
	CacheEnabled bool
	Cache        provider.ReadCacheStats
}

// ReadTier RPC: zone-local read statistics and cache counters
// (bsctl readtier). Always answers; the reply's fields report which
// parts of the tier (locality, cache) this node has enabled.
func (s *DataServer) ReadTier(_ *ReadTierArgs, reply *ReadTierReply) error {
	reply.LocalDomain = s.R.LocalDomain()
	reply.Locality = s.R.ReadLocality()
	if c := s.R.ReadCache(); c != nil {
		reply.CacheEnabled = true
		reply.Cache = c.Stats()
	}
	return nil
}

// GCArgs selects the garbage-collection operation.
type GCArgs struct {
	// Sync, when set, runs a full collection pass (retention, diff
	// walk, deletions) before replying; otherwise the current counters
	// return.
	Sync bool
}

// GC RPC: reaper statistics, optionally after forcing a synchronous
// collection pass (bsctl gc [-sync]). Fails when the node does not run
// the garbage collector.
func (s *DataServer) GC(a *GCArgs, reply *core.ReaperStats) error {
	if s.G == nil {
		return errors.New("remote: GC not enabled on this node (blobseerd -gc)")
	}
	if a.Sync {
		*reply = s.G.Pass()
	} else {
		*reply = s.G.Stats()
	}
	return nil
}

// --- Node introspection service ---

// NodeServer exposes process-level introspection: the node's metrics
// registry in Prometheus text exposition (bsctl metrics).
type NodeServer struct {
	Reg *metrics.Registry
}

// MetricsArgs selects the metrics exposition.
type MetricsArgs struct{}

// Metrics RPC: the node's full metrics registry rendered in Prometheus
// text exposition format.
func (s *NodeServer) Metrics(_ *MetricsArgs, reply *string) error {
	var buf strings.Builder
	if err := s.Reg.WritePrometheus(&buf); err != nil {
		return err
	}
	*reply = buf.String()
	return nil
}

// --- Node (server process) ---

// Roles selects which services a node hosts. Health and Healer ride
// along with the data role when the node runs the self-healing loop;
// Reaper rides along when it runs the version-lifecycle garbage
// collector.
type Roles struct {
	VM     VMBackend
	Meta   *metadata.Store
	Data   *provider.Router
	Health *provider.HealthMonitor
	Healer *core.Healer
	Reaper *core.Reaper

	// Metrics, when non-nil, registers the Node introspection service
	// (Prometheus exposition via bsctl metrics) and counts every inbound
	// RPC into bs_rpc_requests_total{method="..."}.
	Metrics *metrics.Registry
}

// Node is one running storage-service process.
type Node struct {
	lis net.Listener
	srv *rpc.Server
	reg *metrics.Registry // nil when the node has no metrics role
	fr  *framedServer     // nil unless the node hosts the data role

	// conns tracks accepted connections so Close terminates them along
	// with the listener — a closed Node behaves like a dead process,
	// which is what clients (and their connection pools) must handle.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Listen starts serving the given roles on addr (e.g. "127.0.0.1:0").
func Listen(addr string, roles Roles) (*Node, error) {
	if roles.VM == nil && roles.Meta == nil && roles.Data == nil {
		return nil, errors.New("remote: node must host at least one role")
	}
	srv := rpc.NewServer()
	if roles.VM != nil {
		if err := srv.RegisterName(vmService, &VMServer{M: roles.VM}); err != nil {
			return nil, err
		}
	}
	if roles.Meta != nil {
		if err := srv.RegisterName(metaService, &MetaServer{S: roles.Meta}); err != nil {
			return nil, err
		}
	}
	if roles.Data != nil {
		if err := srv.RegisterName(dataService, &DataServer{R: roles.Data, H: roles.Health, E: roles.Healer, G: roles.Reaper}); err != nil {
			return nil, err
		}
	}
	if roles.Metrics != nil {
		if err := srv.RegisterName(nodeService, &NodeServer{Reg: roles.Metrics}); err != nil {
			return nil, err
		}
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: listen %s: %w", addr, err)
	}
	n := &Node{lis: lis, srv: srv, reg: roles.Metrics, conns: make(map[net.Conn]struct{})}
	if roles.Data != nil {
		n.fr = newFramedServer(roles.Data, roles.Metrics)
	}
	go n.acceptLoop()
	return n, nil
}

func (n *Node) acceptLoop() {
	for {
		conn, err := n.lis.Accept()
		if err != nil {
			return // listener closed
		}
		go n.handleConn(conn)
	}
}

// handleConn negotiates the connection's protocol by peeking its first
// bytes: the framed data plane announces itself with a 4-byte magic,
// everything else is a gob RPC client. The peek happens off the accept
// loop because it blocks until the client's first write.
func (n *Node) handleConn(conn net.Conn) {
	n.connMu.Lock()
	if n.closed {
		n.connMu.Unlock()
		conn.Close()
		return
	}
	n.conns[conn] = struct{}{}
	n.connMu.Unlock()
	defer func() {
		n.connMu.Lock()
		delete(n.conns, conn)
		n.connMu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	head, err := br.Peek(len(framedMagic))
	if err != nil {
		conn.Close()
		return
	}
	if string(head) == framedMagic {
		if n.fr == nil {
			conn.Close() // framed client on a node with no data role
			return
		}
		br.Discard(len(framedMagic))
		n.fr.serve(conn, br)
		return
	}
	// Gob fallthrough: the peeked bytes stay in br, so the RPC codec
	// must read through it.
	bc := &bufferedConn{Conn: conn, r: br}
	if n.reg != nil {
		n.srv.ServeCodec(newCountingServerCodec(bc, n.reg))
	} else {
		n.srv.ServeConn(bc)
	}
}

// bufferedConn splices a peeked bufio.Reader back onto its connection.
type bufferedConn struct {
	net.Conn
	r *bufio.Reader
}

func (b *bufferedConn) Read(p []byte) (int, error) { return b.r.Read(p) }

// countingServerCodec is the stdlib gob server codec with one addition:
// every decoded request header counts into
// bs_rpc_requests_total{method="Service.Method"}, giving the per-node
// RPC traffic breakdown without touching any service implementation.
type countingServerCodec struct {
	rwc    io.ReadWriteCloser
	dec    *gob.Decoder
	enc    *gob.Encoder
	encBuf *bufio.Writer
	reg    *metrics.Registry
	closed bool
}

func newCountingServerCodec(conn io.ReadWriteCloser, reg *metrics.Registry) rpc.ServerCodec {
	buf := bufio.NewWriter(conn)
	return &countingServerCodec{
		rwc:    conn,
		dec:    gob.NewDecoder(conn),
		enc:    gob.NewEncoder(buf),
		encBuf: buf,
		reg:    reg,
	}
}

func (c *countingServerCodec) ReadRequestHeader(r *rpc.Request) error {
	if err := c.dec.Decode(r); err != nil {
		return err
	}
	c.reg.Counter("bs_rpc_requests_total", metrics.Label{Key: "method", Value: r.ServiceMethod}).Inc()
	return nil
}

func (c *countingServerCodec) ReadRequestBody(body any) error {
	return c.dec.Decode(body)
}

func (c *countingServerCodec) WriteResponse(r *rpc.Response, body any) (err error) {
	if err = c.enc.Encode(r); err != nil {
		if c.encBuf.Flush() == nil {
			// Gob couldn't encode the header; the connection is beyond
			// recovery.
			c.Close()
		}
		return
	}
	if err = c.enc.Encode(body); err != nil {
		if c.encBuf.Flush() == nil {
			c.Close()
		}
		return
	}
	return c.encBuf.Flush()
}

func (c *countingServerCodec) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.rwc.Close()
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.lis.Addr().String() }

// Close stops the node: the listener stops accepting and every served
// connection is torn down, so a closed Node is indistinguishable from
// a killed process to its clients.
func (n *Node) Close() error {
	err := n.lis.Close()
	n.connMu.Lock()
	n.closed = true
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.connMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return err
}

// --- Client ---

// Client talks to remote service nodes and implements the client-side
// service interfaces (blob.VersionService, segtree.NodeStore,
// blob.DataService).
type Client struct {
	vm   *rpc.Client
	meta *rpc.Client
	data *rpc.Client

	// pool, when non-nil (DialFramed), carries PutChunk/GetChunk over
	// the framed data plane on a pool of dedicated connections; control
	// RPCs stay on the gob connections above.
	pool *framedPool
}

// Endpoints names the service addresses a client needs. Any subset may
// point at the same node.
type Endpoints struct {
	VM   string
	Meta string
	Data string
}

// Dial connects to all three endpoints.
func Dial(ep Endpoints) (*Client, error) {
	c := &Client{}
	var err error
	if c.vm, err = rpc.Dial("tcp", ep.VM); err != nil {
		return nil, fmt.Errorf("remote: dial vm %s: %w", ep.VM, err)
	}
	if c.meta, err = rpc.Dial("tcp", ep.Meta); err != nil {
		c.vm.Close()
		return nil, fmt.Errorf("remote: dial meta %s: %w", ep.Meta, err)
	}
	if c.data, err = rpc.Dial("tcp", ep.Data); err != nil {
		c.vm.Close()
		c.meta.Close()
		return nil, fmt.Errorf("remote: dial data %s: %w", ep.Data, err)
	}
	return c, nil
}

// DialFramed connects like Dial but moves the chunk data path onto the
// framed wire protocol: Put/Get/GetFrom stream payloads in frames over
// a pool of dedicated data connections (so concurrent transfers
// pipeline instead of serializing on one gob stream), while every
// control RPC stays gob. The server negotiates per connection, so
// framed and gob clients coexist against the same node.
func DialFramed(ep Endpoints) (*Client, error) {
	c, err := Dial(ep)
	if err != nil {
		return nil, err
	}
	c.pool = newFramedPool(ep.Data)
	return c, nil
}

// Close terminates all connections.
func (c *Client) Close() error {
	if c.pool != nil {
		c.pool.close()
	}
	return errors.Join(c.vm.Close(), c.meta.Close(), c.data.Close())
}

// Services assembles the blob.Services facade over this client.
func (c *Client) Services() blob.Services {
	return blob.Services{VM: c, Meta: c, Data: c}
}

var (
	_ blob.VersionService = (*Client)(nil)
	_ segtree.NodeStore   = (*Client)(nil)
	_ blob.DataService    = (*Client)(nil)
)

// CreateBlob implements blob.VersionService.
func (c *Client) CreateBlob(blobID uint64, geo segtree.Geometry) error {
	return c.vm.Call(vmService+".CreateBlob", &CreateBlobArgs{Blob: blobID, Geo: geo}, &struct{}{})
}

// Geometry implements blob.VersionService.
func (c *Client) Geometry(blobID uint64) (segtree.Geometry, error) {
	var g segtree.Geometry
	err := c.vm.Call(vmService+".Geometry", &GeometryArgs{Blob: blobID}, &g)
	return g, err
}

// AssignTicket implements blob.VersionService.
func (c *Client) AssignTicket(blobID uint64, e extent.List) (vmanager.Ticket, error) {
	var tk vmanager.Ticket
	err := c.vm.Call(vmService+".AssignTicket", &TicketArgs{Blob: blobID, Extents: e}, &tk)
	return tk, err
}

// Complete implements blob.VersionService.
func (c *Client) Complete(blobID, v uint64, root segtree.NodeKey) error {
	return c.vm.Call(vmService+".Complete", &CompleteArgs{Blob: blobID, Version: v, Root: root}, &struct{}{})
}

// Abort implements blob.VersionService.
func (c *Client) Abort(blobID, v uint64) error {
	return c.vm.Call(vmService+".Abort", &CompleteArgs{Blob: blobID, Version: v}, &struct{}{})
}

// WaitPublished implements blob.VersionService.
func (c *Client) WaitPublished(blobID, v uint64) error {
	return c.vm.Call(vmService+".WaitPublished", &WaitArgs{Blob: blobID, Version: v}, &struct{}{})
}

// LatestPublished implements blob.VersionService.
func (c *Client) LatestPublished(blobID uint64) (vmanager.SnapshotInfo, error) {
	var info vmanager.SnapshotInfo
	err := c.vm.Call(vmService+".LatestPublished", &GeometryArgs{Blob: blobID}, &info)
	return info, err
}

// Snapshot implements blob.VersionService.
func (c *Client) Snapshot(blobID, v uint64) (vmanager.SnapshotInfo, error) {
	var info vmanager.SnapshotInfo
	err := c.vm.Call(vmService+".Snapshot", &SnapshotArgs{Blob: blobID, Version: v}, &info)
	return info, err
}

// Versions implements blob.VersionService.
func (c *Client) Versions(blobID uint64) ([]uint64, error) {
	var vs []uint64
	err := c.vm.Call(vmService+".Versions", &GeometryArgs{Blob: blobID}, &vs)
	return vs, err
}

// Retain implements blob.VersionService.
func (c *Client) Retain(blobID uint64, keepLast int) ([]uint64, error) {
	var dropped []uint64
	err := c.vm.Call(vmService+".Retain", &RetainArgs{Blob: blobID, KeepLast: keepLast}, &dropped)
	return dropped, err
}

// DropVersion implements blob.VersionService.
func (c *Client) DropVersion(blobID, v uint64) error {
	return c.vm.Call(vmService+".DropVersion", &SnapshotArgs{Blob: blobID, Version: v}, &struct{}{})
}

// Pin implements blob.VersionService.
func (c *Client) Pin(blobID, v uint64) error {
	return c.vm.Call(vmService+".Pin", &SnapshotArgs{Blob: blobID, Version: v}, &struct{}{})
}

// Unpin implements blob.VersionService.
func (c *Client) Unpin(blobID, v uint64) error {
	return c.vm.Call(vmService+".Unpin", &SnapshotArgs{Blob: blobID, Version: v}, &struct{}{})
}

// GCInfo implements blob.VersionService.
func (c *Client) GCInfo(blobID uint64) (vmanager.GCInfo, error) {
	var info vmanager.GCInfo
	err := c.vm.Call(vmService+".GCInfo", &GeometryArgs{Blob: blobID}, &info)
	return info, err
}

// MarkReclaimed implements blob.VersionService.
func (c *Client) MarkReclaimed(blobID, v uint64) error {
	return c.vm.Call(vmService+".MarkReclaimed", &SnapshotArgs{Blob: blobID, Version: v}, &struct{}{})
}

// PutNode implements segtree.NodeStore.
func (c *Client) PutNode(blobID uint64, key segtree.NodeKey, n *segtree.Node) error {
	return c.meta.Call(metaService+".PutNode", &NodeArgs{Blob: blobID, Key: key, Node: n}, &struct{}{})
}

// GetNode implements segtree.NodeStore.
func (c *Client) GetNode(blobID uint64, key segtree.NodeKey) (*segtree.Node, error) {
	var reply NodeReply
	if err := c.meta.Call(metaService+".GetNode", &NodeArgs{Blob: blobID, Key: key}, &reply); err != nil {
		return nil, err
	}
	return reply.Node, nil
}

// TryGetNode implements segtree.NodeStore.
func (c *Client) TryGetNode(blobID uint64, key segtree.NodeKey) (*segtree.Node, bool, error) {
	var reply NodeReply
	if err := c.meta.Call(metaService+".TryGetNode", &NodeArgs{Blob: blobID, Key: key}, &reply); err != nil {
		return nil, false, err
	}
	return reply.Node, reply.Found, nil
}

// Put implements blob.DataService, over the framed plane when the
// client dialed with DialFramed.
func (c *Client) Put(key chunk.Key, data []byte) ([]provider.ID, error) {
	if c.pool != nil {
		return c.pool.put(key, data)
	}
	var ids []provider.ID
	err := c.data.Call(dataService+".PutChunk", &PutChunkArgs{Key: key, Data: data}, &ids)
	return ids, err
}

// Get implements blob.DataService, over the framed plane when the
// client dialed with DialFramed.
func (c *Client) Get(key chunk.Key, off, length int64) ([]byte, error) {
	if c.pool != nil {
		data, _, err := c.pool.get(nil, key, off, length)
		return data, err
	}
	var reply GetChunkReply
	err := c.data.Call(dataService+".GetChunk", &GetChunkArgs{Key: key, Off: off, Length: length}, &reply)
	return reply.Data, err
}

// GetFrom implements blob.DataService: a read carrying the replica
// hint recorded in metadata, served with server-side failover. A
// non-nil fresh replica set means the hint was stale and the caller
// should cache the returned set.
func (c *Client) GetFrom(replicas []provider.ID, key chunk.Key, off, length int64) ([]byte, []provider.ID, error) {
	if c.pool != nil {
		return c.pool.get(replicas, key, off, length)
	}
	var reply GetChunkReply
	err := c.data.Call(dataService+".GetChunk", &GetChunkArgs{Key: key, Off: off, Length: length, Replicas: replicas}, &reply)
	return reply.Data, reply.Fresh, err
}

// Repair runs a re-replication pass on the data node and returns its
// statistics.
func (c *Client) Repair() (provider.RepairStats, error) {
	var st provider.RepairStats
	err := c.data.Call(dataService+".Repair", &RepairArgs{}, &st)
	return st, err
}

// SetProviderDown marks one provider on the data node dead (or revives
// it).
func (c *Client) SetProviderDown(id provider.ID, down bool) error {
	return c.data.Call(dataService+".SetProviderDown", &SetDownArgs{Provider: id, Down: down}, &struct{}{})
}

// SetProviderDomain registers one provider's failure-domain label on
// the data node.
func (c *Client) SetProviderDomain(id provider.ID, domain string) error {
	return c.data.Call(dataService+".SetProviderDomain", &SetDomainArgs{Provider: id, Domain: domain}, &struct{}{})
}

// SpreadAudit returns the chunks on the data node whose live replicas
// violate the domain-spread invariant.
func (c *Client) SpreadAudit() ([]chunk.Key, error) {
	var reply SpreadAuditReply
	err := c.data.Call(dataService+".SpreadAudit", &SpreadAuditArgs{}, &reply)
	return reply.Violations, err
}

// Health returns the data node's per-provider health snapshot (errors
// when the node does not run the self-healing loop).
func (c *Client) Health() ([]provider.HealthStatus, error) {
	var st []provider.HealthStatus
	err := c.data.Call(dataService+".Health", &HealthArgs{}, &st)
	return st, err
}

// Scrub returns the data node's healer statistics; with sync it first
// forces a full scrub pass and drains the repair queue.
func (c *Client) Scrub(sync bool) (core.HealerStats, error) {
	var st core.HealerStats
	err := c.data.Call(dataService+".Scrub", &ScrubArgs{Sync: sync}, &st)
	return st, err
}

// Usage returns the data node's per-provider space accounting.
// Coding reports the data node's chunk placement mode (erasure coding
// vs replication) and effective write quorum.
func (c *Client) Coding() (CodingReply, error) {
	var rep CodingReply
	err := c.data.Call(dataService+".Coding", &CodingArgs{}, &rep)
	return rep, err
}

func (c *Client) Usage() ([]provider.ProviderUsage, error) {
	var us []provider.ProviderUsage
	err := c.data.Call(dataService+".Usage", &UsageArgs{}, &us)
	return us, err
}

// GC returns the node's garbage-collector statistics; with sync it
// first forces a full collection pass (errors when the node does not
// run the reaper).
func (c *Client) GC(sync bool) (core.ReaperStats, error) {
	var st core.ReaperStats
	err := c.data.Call(dataService+".GC", &GCArgs{Sync: sync}, &st)
	return st, err
}

// ReadTier returns the data node's read-tier snapshot: reader domain,
// locality counters, and cache statistics when the cache is enabled.
func (c *Client) ReadTier() (ReadTierReply, error) {
	var reply ReadTierReply
	err := c.data.Call(dataService+".ReadTier", &ReadTierArgs{}, &reply)
	return reply, err
}

// Metrics returns the data node's metrics registry in Prometheus text
// exposition format (errors when the node has no metrics role).
func (c *Client) Metrics() (string, error) {
	var text string
	err := c.data.Call(nodeService+".Metrics", &MetricsArgs{}, &text)
	return text, err
}

// ShardStatus returns the version-manager node's per-shard
// control-plane report.
func (c *Client) ShardStatus() ([]vmanager.ShardStatus, error) {
	var reply ShardStatusReply
	err := c.vm.Call(vmService+".ShardStatus", &ShardStatusArgs{}, &reply)
	return reply.Shards, err
}
