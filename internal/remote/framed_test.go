package remote

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/blob"
	"repro/internal/chunk"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/metrics"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

func dialFramedClient(t *testing.T, ep Endpoints) *Client {
	t.Helper()
	c, err := DialFramed(ep)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestFramedChunkRoundTrip drives Put/Get/GetFrom over the framed wire
// against a live node and checks payload fidelity for both a
// sub-frame-sized chunk and one spanning several frames.
func TestFramedChunkRoundTrip(t *testing.T) {
	_, ep := startNode(t)
	c := dialFramedClient(t, ep)

	for i, size := range []int{100, maxFrame*2 + 7777} {
		key := chunk.Key{Blob: 1, Version: 1, Index: uint32(i)}
		data := make([]byte, size)
		for j := range data {
			data[j] = byte(j*13 + i)
		}
		ids, err := c.Put(key, data)
		if err != nil {
			t.Fatalf("framed Put(%d bytes): %v", size, err)
		}
		if len(ids) == 0 {
			t.Fatal("framed Put returned no replica set")
		}
		got, err := c.Get(key, 0, int64(size))
		if err != nil {
			t.Fatalf("framed Get(%d bytes): %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("framed Get(%d bytes): payload mismatch", size)
		}
		// Ranged read through the hint path.
		part, fresh, err := c.GetFrom(ids, key, int64(size)/2, int64(size)/4)
		if err != nil {
			t.Fatalf("framed GetFrom: %v", err)
		}
		if fresh != nil {
			t.Fatalf("fresh set on a correct hint: %v", fresh)
		}
		if !bytes.Equal(part, data[size/2:size/2+size/4]) {
			t.Fatal("framed GetFrom: payload mismatch")
		}
	}
}

// TestFramedErrorsKeepConnection checks that server-reported errors
// (double put, missing chunk) travel the wire without poisoning the
// pooled connection: the next operation on the same client succeeds.
func TestFramedErrorsKeepConnection(t *testing.T) {
	// One provider, so the duplicate put lands on the same store and
	// surfaces the ErrExists protocol violation.
	mgr, _ := provider.NewPool(1, iosim.CostModel{})
	node, err := Listen("127.0.0.1:0", Roles{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(2, iosim.CostModel{}),
		Data: provider.NewRouter(mgr),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	ep := Endpoints{VM: node.Addr(), Meta: node.Addr(), Data: node.Addr()}
	c := dialFramedClient(t, ep)

	key := chunk.Key{Blob: 2, Version: 1, Index: 0}
	data := bytes.Repeat([]byte("x"), 4096)
	if _, err := c.Put(key, data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(key, data); err == nil || !strings.Contains(err.Error(), "exists") {
		t.Fatalf("double put: got %v, want exists error", err)
	}
	if _, err := c.Get(chunk.Key{Blob: 99}, 0, 1); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("missing get: got %v, want not-found error", err)
	}
	// The connection survived both errors.
	got, err := c.Get(key, 0, int64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get after errors: %v", err)
	}
}

// TestFramedAndGobCoexist pins the negotiation: a gob client and a
// framed client share one node, and a full blob write/read cycle works
// through each.
func TestFramedAndGobCoexist(t *testing.T) {
	_, ep := startNode(t)
	gobC := dialClient(t, ep)
	frC := dialFramedClient(t, ep)

	for i, c := range []*Client{gobC, frC} {
		b, err := blob.Create(c.Services(), uint64(i+1), segtree.Geometry{Capacity: 1 << 20, Page: 4096})
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{byte(i + 1)}, 64<<10)
		v, err := b.Write(0, data, blob.WriteOptions{})
		if err != nil {
			t.Fatalf("client %d write: %v", i, err)
		}
		got, err := b.ReadAt(v, 0, int64(len(data)))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("client %d read: %v", i, err)
		}
	}
	// Cross-visibility: the framed client reads the blob the gob client
	// wrote.
	b, err := blob.Open(frC.Services(), 1)
	if err != nil {
		t.Fatal(err)
	}
	info, err := b.Latest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadAt(info.Version, 0, 64<<10)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{1}, 64<<10)) {
		t.Fatalf("cross-protocol read: %v", err)
	}
}

// TestFramedMetrics checks the data-plane counters advance on a node
// with a metrics role.
func TestFramedMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	mgr, _ := provider.NewPool(3, iosim.CostModel{})
	node, err := Listen("127.0.0.1:0", Roles{
		VM:      vmanager.New(iosim.CostModel{}),
		Meta:    metadata.NewStore(2, iosim.CostModel{}),
		Data:    provider.NewRouter(mgr),
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	ep := Endpoints{VM: node.Addr(), Meta: node.Addr(), Data: node.Addr()}
	c := dialFramedClient(t, ep)

	key := chunk.Key{Blob: 3, Version: 1, Index: 0}
	data := make([]byte, maxFrame+1000) // two frames up, two frames back
	if _, err := c.Put(key, data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(key, 0, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "bs_data_frames_total 4") {
		t.Fatalf("want 4 data frames, got:\n%s", text)
	}
	want := int64(2 * (maxFrame + 1000))
	if !strings.Contains(text, "bs_data_stream_bytes_total "+itoa(want)) {
		t.Fatalf("want %d stream bytes, got:\n%s", want, text)
	}
}

func itoa(v int64) string {
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
