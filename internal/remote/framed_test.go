package remote

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/chunk"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/metrics"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

func dialFramedClient(t *testing.T, ep Endpoints) *Client {
	t.Helper()
	c, err := DialFramed(ep)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestFramedChunkRoundTrip drives Put/Get/GetFrom over the framed wire
// against a live node and checks payload fidelity for both a
// sub-frame-sized chunk and one spanning several frames.
func TestFramedChunkRoundTrip(t *testing.T) {
	_, ep := startNode(t)
	c := dialFramedClient(t, ep)

	for i, size := range []int{100, maxFrame*2 + 7777} {
		key := chunk.Key{Blob: 1, Version: 1, Index: uint32(i)}
		data := make([]byte, size)
		for j := range data {
			data[j] = byte(j*13 + i)
		}
		ids, err := c.Put(key, data)
		if err != nil {
			t.Fatalf("framed Put(%d bytes): %v", size, err)
		}
		if len(ids) == 0 {
			t.Fatal("framed Put returned no replica set")
		}
		got, err := c.Get(key, 0, int64(size))
		if err != nil {
			t.Fatalf("framed Get(%d bytes): %v", size, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("framed Get(%d bytes): payload mismatch", size)
		}
		// Ranged read through the hint path.
		part, fresh, err := c.GetFrom(ids, key, int64(size)/2, int64(size)/4)
		if err != nil {
			t.Fatalf("framed GetFrom: %v", err)
		}
		if fresh != nil {
			t.Fatalf("fresh set on a correct hint: %v", fresh)
		}
		if !bytes.Equal(part, data[size/2:size/2+size/4]) {
			t.Fatal("framed GetFrom: payload mismatch")
		}
	}
}

// TestFramedErrorsKeepConnection checks that server-reported errors
// (double put, missing chunk) travel the wire without poisoning the
// pooled connection: the next operation on the same client succeeds.
func TestFramedErrorsKeepConnection(t *testing.T) {
	// One provider, so the duplicate put lands on the same store and
	// surfaces the ErrExists protocol violation.
	mgr, _ := provider.NewPool(1, iosim.CostModel{})
	node, err := Listen("127.0.0.1:0", Roles{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(2, iosim.CostModel{}),
		Data: provider.NewRouter(mgr),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	ep := Endpoints{VM: node.Addr(), Meta: node.Addr(), Data: node.Addr()}
	c := dialFramedClient(t, ep)

	key := chunk.Key{Blob: 2, Version: 1, Index: 0}
	data := bytes.Repeat([]byte("x"), 4096)
	if _, err := c.Put(key, data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(key, data); err == nil || !strings.Contains(err.Error(), "exists") {
		t.Fatalf("double put: got %v, want exists error", err)
	}
	if _, err := c.Get(chunk.Key{Blob: 99}, 0, 1); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("missing get: got %v, want not-found error", err)
	}
	// The connection survived both errors.
	got, err := c.Get(key, 0, int64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get after errors: %v", err)
	}
}

// TestFramedAndGobCoexist pins the negotiation: a gob client and a
// framed client share one node, and a full blob write/read cycle works
// through each.
func TestFramedAndGobCoexist(t *testing.T) {
	_, ep := startNode(t)
	gobC := dialClient(t, ep)
	frC := dialFramedClient(t, ep)

	for i, c := range []*Client{gobC, frC} {
		b, err := blob.Create(c.Services(), uint64(i+1), segtree.Geometry{Capacity: 1 << 20, Page: 4096})
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{byte(i + 1)}, 64<<10)
		v, err := b.Write(0, data, blob.WriteOptions{})
		if err != nil {
			t.Fatalf("client %d write: %v", i, err)
		}
		got, err := b.ReadAt(v, 0, int64(len(data)))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("client %d read: %v", i, err)
		}
	}
	// Cross-visibility: the framed client reads the blob the gob client
	// wrote.
	b, err := blob.Open(frC.Services(), 1)
	if err != nil {
		t.Fatal(err)
	}
	info, err := b.Latest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadAt(info.Version, 0, 64<<10)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{1}, 64<<10)) {
		t.Fatalf("cross-protocol read: %v", err)
	}
}

// TestFramedMetrics checks the data-plane counters advance on a node
// with a metrics role.
func TestFramedMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	mgr, _ := provider.NewPool(3, iosim.CostModel{})
	node, err := Listen("127.0.0.1:0", Roles{
		VM:      vmanager.New(iosim.CostModel{}),
		Meta:    metadata.NewStore(2, iosim.CostModel{}),
		Data:    provider.NewRouter(mgr),
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	ep := Endpoints{VM: node.Addr(), Meta: node.Addr(), Data: node.Addr()}
	c := dialFramedClient(t, ep)

	key := chunk.Key{Blob: 3, Version: 1, Index: 0}
	data := make([]byte, maxFrame+1000) // two frames up, two frames back
	if _, err := c.Put(key, data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(key, 0, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "bs_data_frames_total 4") {
		t.Fatalf("want 4 data frames, got:\n%s", text)
	}
	want := int64(2 * (maxFrame + 1000))
	if !strings.Contains(text, "bs_data_stream_bytes_total "+itoa(want)) {
		t.Fatalf("want %d stream bytes, got:\n%s", want, text)
	}
}

// TestFramedPoolSurvivesNodeRestart is the regression test for the
// never-validated connection pool: after a data-node restart every
// pooled socket is dead, and the first op on each used to surface a
// transport error to the caller. The pool must instead detect the
// stale socket, flush its idle list, and transparently retry the op on
// a fresh dial.
func TestFramedPoolSurvivesNodeRestart(t *testing.T) {
	mgr, _ := provider.NewPool(1, iosim.CostModel{})
	roles := Roles{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(2, iosim.CostModel{}),
		Data: provider.NewRouter(mgr),
	}
	node, err := Listen("127.0.0.1:0", roles)
	if err != nil {
		t.Fatal(err)
	}
	addr := node.Addr()
	ep := Endpoints{VM: addr, Meta: addr, Data: addr}
	c := dialFramedClient(t, ep)

	key1 := chunk.Key{Blob: 1, Version: 1, Index: 0}
	data := bytes.Repeat([]byte("durable"), 1000)
	if _, err := c.Put(key1, data); err != nil {
		t.Fatal(err)
	}
	// The put's connection is now idle in the pool. Restart the node on
	// the same address with the same stores — the pooled socket is dead.
	node.Close()
	node2, err := listenRetry(addr, roles)
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()

	key2 := chunk.Key{Blob: 1, Version: 1, Index: 1}
	if _, err := c.Put(key2, data); err != nil {
		t.Fatalf("put after node restart: %v", err)
	}
	got, err := c.Get(key1, 0, int64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get after node restart: %v", err)
	}
	// Reads retry too, and repeated ops keep working (the flushed pool
	// refilled with live connections).
	for i := 0; i < 4; i++ {
		if _, err := c.Get(key2, 0, int64(len(data))); err != nil {
			t.Fatalf("get %d after restart: %v", i, err)
		}
	}
	// A genuinely dead peer still fails: kill the node for good and the
	// fresh-dial retry must surface the dial error, not loop.
	node2.Close()
	if _, err := c.Put(chunk.Key{Blob: 1, Version: 1, Index: 2}, data); err == nil {
		t.Fatal("put against a dead node must fail")
	}
}

// listenRetry re-binds an exact address, retrying briefly while the
// kernel releases the old listener's port.
func listenRetry(addr string, roles Roles) (node *Node, err error) {
	for i := 0; i < 100; i++ {
		if node, err = Listen(addr, roles); err == nil {
			return node, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil, err
}

// TestFramedServerRejectsOversizedPut speaks the raw wire protocol and
// forges a put header declaring a 2 GiB payload: the server must answer
// with the typed size-bound error — BEFORE the router sees the request,
// and without desyncing the connection.
func TestFramedServerRejectsOversizedPut(t *testing.T) {
	_, ep := startNode(t)
	conn, err := net.Dial("tcp", ep.Data)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if _, err := conn.Write([]byte(framedMagic)); err != nil {
		t.Fatal(err)
	}

	forge := func(length int64, body []byte) {
		t.Helper()
		hdr := make([]byte, frameHeaderLen)
		hdr[0] = opPut
		binary.LittleEndian.PutUint64(hdr[8:], 42) // blob
		binary.LittleEndian.PutUint64(hdr[32:], uint64(length))
		if _, err := conn.Write(hdr); err != nil {
			t.Fatal(err)
		}
		if len(body) > 0 {
			var word [4]byte
			binary.LittleEndian.PutUint32(word[:], uint32(len(body)))
			conn.Write(word[:])
			conn.Write(body)
		}
		conn.Write([]byte{0, 0, 0, 0}) // terminator
	}

	forge(1<<31, nil)
	status, err := br.ReadByte()
	if err != nil {
		t.Fatal(err)
	}
	if status != 1 {
		t.Fatalf("oversized put status = %d, want error status 1", status)
	}
	msg, err := readErrString(br)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "max chunk size") {
		t.Fatalf("oversized put error = %q, want the size-bound error", msg)
	}

	// The rejection drained the body: the same connection still serves
	// a well-formed put.
	forge(5, []byte("hello"))
	if status, err = br.ReadByte(); err != nil || status != 0 {
		t.Fatalf("put after rejection: status %d, %v", status, err)
	}
	if ids, err := readIDs(br); err != nil || len(ids) == 0 {
		t.Fatalf("put after rejection: ids %v, %v", ids, err)
	}
}

// TestFramedCodedRoundTrip drives the framed wire against a router in
// rs-4+2 mode: fragments place over the wire-invisible coded path, and
// the Coding RPC reports the mode to operators.
func TestFramedCodedRoundTrip(t *testing.T) {
	mgr, _ := provider.NewPool(6, iosim.CostModel{})
	r := provider.NewRouter(mgr)
	if err := r.SetCoding(4, 2); err != nil {
		t.Fatal(err)
	}
	node, err := Listen("127.0.0.1:0", Roles{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(2, iosim.CostModel{}),
		Data: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	ep := Endpoints{VM: node.Addr(), Meta: node.Addr(), Data: node.Addr()}
	c := dialFramedClient(t, ep)

	key := chunk.Key{Blob: 5, Version: 1, Index: 0}
	data := make([]byte, maxFrame+12345)
	for i := range data {
		data[i] = byte(i * 7)
	}
	ids, err := c.Put(key, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 6 {
		t.Fatalf("coded put returned %d fragment positions, want 6", len(ids))
	}
	got, err := c.Get(key, 0, int64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("coded framed Get: %v", err)
	}
	// Hinted read: the positional hint matches placement, so no refresh.
	part, fresh, err := c.GetFrom(ids, key, 100, 5000)
	if err != nil || !bytes.Equal(part, data[100:5100]) {
		t.Fatalf("coded framed GetFrom: %v", err)
	}
	if fresh != nil {
		t.Fatalf("fresh set on an up-to-date coded hint: %v", fresh)
	}
	rep, err := c.Coding()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Coded || rep.K != 4 || rep.M != 2 || rep.Quorum != 5 {
		t.Fatalf("Coding RPC = %+v", rep)
	}
	// An oversized put travels the framed client path as a server-side
	// error that keeps the connection pooled.
	r.SetMaxChunkSize(1024)
	if _, err := c.Put(chunk.Key{Blob: 6}, make([]byte, 4096)); err == nil || !strings.Contains(err.Error(), "max chunk size") {
		t.Fatalf("oversized framed put = %v, want size-bound error", err)
	}
	if _, err := c.Get(key, 0, 10); err != nil {
		t.Fatalf("get after oversized put: %v", err)
	}
}

func itoa(v int64) string {
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
