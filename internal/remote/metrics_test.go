package remote

import (
	"strings"
	"testing"

	"repro/internal/blob"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/metrics"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

// A node hosting the metrics role must answer the Node.Metrics RPC
// with a Prometheus exposition covering both the instrumented
// components and the per-method RPC counters the counting codec adds.
func TestMetricsOverRPC(t *testing.T) {
	reg := metrics.NewRegistry()
	vm := vmanager.New(iosim.CostModel{})
	vm.SetMetrics(reg)
	mgr, _ := provider.NewPool(3, iosim.CostModel{})
	router := provider.NewRouter(mgr)
	router.SetMetrics(reg)
	node, err := Listen("127.0.0.1:0", Roles{
		VM:      vm,
		Meta:    metadata.NewStore(2, iosim.CostModel{}),
		Data:    router,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	addr := node.Addr()
	c := dialClient(t, Endpoints{VM: addr, Meta: addr, Data: addr})

	b, err := blob.Create(c.Services(), 1, segtree.Geometry{Capacity: 1 << 16, Page: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(0, []byte("count me"), blob.WriteOptions{}); err != nil {
		t.Fatal(err)
	}

	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE bs_rpc_requests_total counter",
		`bs_rpc_requests_total{method="VM.AssignTicket"}`,
		`bs_rpc_requests_total{method="Data.PutChunk"}`,
		"bs_vm_ticket_total 1",
		"bs_chunk_put_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
}

// Without a metrics role the Node service is absent and the RPC fails
// with a server-side error instead of hanging or panicking.
func TestMetricsRPCRequiresRole(t *testing.T) {
	_, ep := startNode(t)
	c := dialClient(t, ep)
	if _, err := c.Metrics(); err == nil {
		t.Fatal("Metrics RPC on a node without the metrics role must fail")
	}
}
