package remote

import (
	"testing"

	"repro/internal/chunk"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/provider"
	"repro/internal/vmanager"
)

// TestDomainRPCs covers the register-with-domain path end to end over
// TCP: SetProviderDomain retags providers, Health and Usage replies
// carry the domain labels for client-side grouping, SpreadAudit
// reports the chunks the retagged topology leaves co-located, and a
// repair pass re-spreads them until the audit is clean.
func TestDomainRPCs(t *testing.T) {
	mgr, _ := provider.NewPool(4, iosim.CostModel{})
	router := provider.NewRouter(mgr)
	router.SetReplicas(2)
	health := provider.NewHealthMonitor(mgr, provider.HealthConfig{})
	router.SetHealthMonitor(health)
	node, err := Listen("127.0.0.1:0", Roles{
		VM:     vmanager.New(iosim.CostModel{}),
		Meta:   metadata.NewStore(2, iosim.CostModel{}),
		Data:   router,
		Health: health,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	addr := node.Addr()
	cli := dialClient(t, Endpoints{VM: addr, Meta: addr, Data: addr})

	// A chunk written on the flat pool: replicas land on providers
	// 0 and 1 (the consecutive window).
	key := chunk.Key{Blob: 1, Version: 1}
	ids, err := cli.Put(key, []byte("racked together"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("stored %d copies, want 2", len(ids))
	}
	if audit, err := cli.SpreadAudit(); err != nil || len(audit) != 0 {
		t.Fatalf("flat pool audit = %v, %v, want clean", audit, err)
	}

	// Register the topology after the fact: the write's two replicas
	// share rackA, the other providers form rackB.
	for _, p := range mgr.Providers() {
		name := "rackB"
		if p.ID() == ids[0] || p.ID() == ids[1] {
			name = "rackA"
		}
		if err := cli.SetProviderDomain(p.ID(), name); err != nil {
			t.Fatal(err)
		}
	}
	sts, err := cli.Health()
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sts {
		if st.Domain != "rackA" && st.Domain != "rackB" {
			t.Fatalf("health reply lost the domain label: %+v", st)
		}
	}
	us, err := cli.Usage()
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range us {
		if u.Domain == "" {
			t.Fatalf("usage reply lost the domain label: %+v", u)
		}
	}

	// The audit sees the exposure the retag created, and a repair pass
	// clears it by re-spreading.
	audit, err := cli.SpreadAudit()
	if err != nil {
		t.Fatal(err)
	}
	if len(audit) != 1 || audit[0] != key {
		t.Fatalf("audit = %v, want [%s]", audit, key)
	}
	if _, err := cli.Repair(); err != nil {
		t.Fatal(err)
	}
	if audit, err := cli.SpreadAudit(); err != nil || len(audit) != 0 {
		t.Fatalf("audit after repair = %v, %v, want clean", audit, err)
	}
	if got, err := cli.Get(key, 0, 15); err != nil || string(got) != "racked together" {
		t.Fatalf("read after re-spread = %q, %v", got, err)
	}
}
