package remote

import (
	"errors"

	"repro/internal/segtree"
	"repro/internal/vmanager"
)

// Batch RPC endpoints: one round trip carries a whole group of ticket
// grants or publishes, mirroring the version manager's group-commit
// pipeline across the wire. Failures are per-item (encoded as strings,
// since net/rpc's gob stream cannot carry error values); the RPC itself
// only fails on transport problems, so one bad request never poisons
// its batch peers.

// TicketBatchArgs carries several ticket requests.
type TicketBatchArgs struct {
	Reqs []TicketArgs
}

// TicketBatchItem is one per-request outcome.
type TicketBatchItem struct {
	Ticket vmanager.Ticket
	Err    string // empty on success
}

// TicketBatchReply carries the per-request outcomes, in request order.
type TicketBatchReply struct {
	Items []TicketBatchItem
}

// AssignTicketBatch RPC: assigns the whole batch under one manager lock
// acquisition (contiguous versions for same-blob requests).
func (s *VMServer) AssignTicketBatch(a *TicketBatchArgs, reply *TicketBatchReply) error {
	reqs := make([]vmanager.TicketRequest, len(a.Reqs))
	for i, r := range a.Reqs {
		reqs[i] = vmanager.TicketRequest{Blob: r.Blob, Extents: r.Extents}
	}
	res := s.M.AssignTicketBatch(reqs)
	reply.Items = make([]TicketBatchItem, len(res))
	for i, r := range res {
		reply.Items[i].Ticket = r.Ticket
		if r.Err != nil {
			reply.Items[i].Err = r.Err.Error()
		}
	}
	return nil
}

// PublishBatchArgs carries several Complete/Abort requests.
type PublishBatchArgs struct {
	Reqs []PublishItem
}

// PublishItem is one Complete (or, with Abort set, Abort) request.
type PublishItem struct {
	Blob    uint64
	Version uint64
	Root    segtree.NodeKey
	Abort   bool
}

// PublishBatchReply carries per-request error strings, in request
// order; empty string means success.
type PublishBatchReply struct {
	Errs []string
}

// CompleteBatch RPC: applies the whole batch under one manager lock
// acquisition and publishes with one broadcast per blob.
func (s *VMServer) CompleteBatch(a *PublishBatchArgs, reply *PublishBatchReply) error {
	reqs := make([]vmanager.PublishRequest, len(a.Reqs))
	for i, r := range a.Reqs {
		reqs[i] = vmanager.PublishRequest{Blob: r.Blob, Version: r.Version, Root: r.Root, Abort: r.Abort}
	}
	errs := s.M.CompleteBatch(reqs)
	reply.Errs = make([]string, len(errs))
	for i, err := range errs {
		if err != nil {
			reply.Errs[i] = err.Error()
		}
	}
	return nil
}

// AssignTicketBatch sends a whole batch of ticket requests in one round
// trip and returns per-request results in request order.
func (c *Client) AssignTicketBatch(reqs []vmanager.TicketRequest) ([]vmanager.TicketResult, error) {
	args := TicketBatchArgs{Reqs: make([]TicketArgs, len(reqs))}
	for i, r := range reqs {
		args.Reqs[i] = TicketArgs{Blob: r.Blob, Extents: r.Extents}
	}
	var reply TicketBatchReply
	if err := c.vm.Call(vmService+".AssignTicketBatch", &args, &reply); err != nil {
		return nil, err
	}
	if len(reply.Items) != len(reqs) {
		return nil, errors.New("remote: ticket batch reply length mismatch")
	}
	out := make([]vmanager.TicketResult, len(reply.Items))
	for i, it := range reply.Items {
		out[i].Ticket = it.Ticket
		if it.Err != "" {
			out[i].Err = errors.New(it.Err)
		}
	}
	return out, nil
}

// CompleteBatch sends a whole batch of Complete/Abort requests in one
// round trip and returns per-request errors in request order.
func (c *Client) CompleteBatch(reqs []vmanager.PublishRequest) ([]error, error) {
	args := PublishBatchArgs{Reqs: make([]PublishItem, len(reqs))}
	for i, r := range reqs {
		args.Reqs[i] = PublishItem{Blob: r.Blob, Version: r.Version, Root: r.Root, Abort: r.Abort}
	}
	var reply PublishBatchReply
	if err := c.vm.Call(vmService+".CompleteBatch", &args, &reply); err != nil {
		return nil, err
	}
	if len(reply.Errs) != len(reqs) {
		return nil, errors.New("remote: publish batch reply length mismatch")
	}
	out := make([]error, len(reply.Errs))
	for i, e := range reply.Errs {
		if e != "" {
			out[i] = errors.New(e)
		}
	}
	return out, nil
}
