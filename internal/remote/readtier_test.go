package remote

import (
	"bytes"
	"testing"

	"repro/internal/blob"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

// TestReadTierOverRPC: a data node serving zone-local reads with the
// bounded cache reports its reader domain, locality counters and cache
// counters through the ReadTier RPC; a plain node reports the tier off.
func TestReadTierOverRPC(t *testing.T) {
	mgr, _ := provider.NewPoolInDomains(4, 2, iosim.CostModel{})
	router := provider.NewRouter(mgr)
	router.SetReplicas(2)
	router.SetLocalDomain("zone0")
	router.SetReadCache(provider.NewReadCache(provider.ReadCacheConfig{Shards: 4, MaxBytes: 1 << 20}))
	node, err := Listen("127.0.0.1:0", Roles{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(2, iosim.CostModel{}),
		Data: router,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	addr := node.Addr()
	c := dialClient(t, Endpoints{VM: addr, Meta: addr, Data: addr})

	b, err := blob.Create(c.Services(), 1, segtree.Geometry{Capacity: 1 << 16, Page: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("tier"), 1024)
	v, err := b.Write(0, payload, blob.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Read twice: the first fills the server-side cache, the second
	// hits it.
	for i := 0; i < 2; i++ {
		got, err := b.ReadAt(v, 0, int64(len(payload)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("read %d corrupt", i)
		}
	}

	rt, err := c.ReadTier()
	if err != nil {
		t.Fatal(err)
	}
	if rt.LocalDomain != "zone0" {
		t.Fatalf("reader domain %q, want zone0", rt.LocalDomain)
	}
	if !rt.CacheEnabled {
		t.Fatal("cache reported off")
	}
	if rt.Cache.Fills == 0 || rt.Cache.Hits == 0 {
		t.Fatalf("cache counters empty after a repeat read: %+v", rt.Cache)
	}
	if got := rt.Locality.LocalReads + rt.Locality.RemoteReads; got == 0 {
		t.Fatal("locality counted no replica reads")
	}

	// A node without the tier answers too, reporting it off.
	_, ep := startNode(t)
	plain := dialClient(t, ep)
	rt2, err := plain.ReadTier()
	if err != nil {
		t.Fatal(err)
	}
	if rt2.LocalDomain != "" || rt2.CacheEnabled {
		t.Fatalf("plain node reports tier on: %+v", rt2)
	}
}
