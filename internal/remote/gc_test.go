package remote

import (
	"strings"
	"testing"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

// startGCNode boots a combined node running the garbage collector,
// exactly as `blobseerd -gc` wires it.
func startGCNode(t *testing.T, retainLast int) (Endpoints, *core.Reaper) {
	t.Helper()
	vm := vmanager.New(iosim.CostModel{})
	meta := metadata.NewStore(2, iosim.CostModel{})
	mgr, _ := provider.NewPool(3, iosim.CostModel{})
	router := provider.NewRouter(mgr)
	router.SetReplicas(2)
	reaper := core.NewReaper(router, core.ReaperConfig{RetainLast: retainLast, DeletesPerTick: 8})
	reaper.SetCatalog(blob.Services{VM: vm, Meta: meta, Data: router}, vm)
	node, err := Listen("127.0.0.1:0", Roles{VM: vm, Meta: meta, Data: router, Reaper: reaper})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	addr := node.Addr()
	return Endpoints{VM: addr, Meta: addr, Data: addr}, reaper
}

func TestLifecycleAndGCOverRPC(t *testing.T) {
	ep, _ := startGCNode(t, 0)
	c := dialClient(t, ep)
	b, err := blob.Create(c.Services(), 1, segtree.Geometry{Capacity: 1 << 20, Page: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		vec, err := extent.NewVec(extent.List{{Offset: 0, Length: 4096}}, make([]byte, 4096))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.WriteList(vec, blob.WriteOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Pin over RPC, retention skips the pin, drop refuses it.
	if err := c.Pin(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.DropVersion(1, 2); !strings.Contains(err.Error(), "pinned") {
		t.Fatalf("drop pinned over RPC = %v", err)
	}
	dropped, err := c.Retain(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 2 { // v1, v3; v2 pinned, v4 latest
		t.Fatalf("retain dropped %v", dropped)
	}
	if err := c.Unpin(1, 2); err != nil {
		t.Fatal(err)
	}
	info, err := c.GCInfo(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Pending) != 2 || info.Published != 4 {
		t.Fatalf("gc info over RPC = %+v", info)
	}

	// Usage before and after a synchronous GC pass.
	before, err := c.Usage()
	if err != nil {
		t.Fatal(err)
	}
	var bytesBefore int64
	for _, u := range before {
		bytesBefore += u.Bytes
	}
	st, err := c.GC(true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Passes == 0 || st.Reclaimed != 2 || st.Deleted == 0 {
		t.Fatalf("gc pass over RPC = %+v", st)
	}
	after, err := c.Usage()
	if err != nil {
		t.Fatal(err)
	}
	var bytesAfter int64
	for _, u := range after {
		bytesAfter += u.Bytes
	}
	if bytesAfter >= bytesBefore {
		t.Fatalf("usage did not shrink: %d -> %d", bytesBefore, bytesAfter)
	}
	// Dropped versions are unreadable; the survivors read fine.
	if _, err := b.ReadAt(1, 0, 16); err == nil {
		t.Fatal("dropped version readable over RPC")
	}
	if _, err := b.ReadAt(4, 0, 4096); err != nil {
		t.Fatal(err)
	}
	// net/rpc flattens errors to strings, so only non-nil-ness and the
	// message are checkable across the wire.
	if err := c.MarkReclaimed(1, 4); err == nil || !strings.Contains(err.Error(), "not pending") {
		t.Fatalf("MarkReclaimed of retained version = %v", err)
	}
}

func TestGCRPCRequiresReaper(t *testing.T) {
	_, ep := startNode(t)
	c := dialClient(t, ep)
	if _, err := c.GC(false); err == nil || !strings.Contains(err.Error(), "-gc") {
		t.Fatalf("GC on non-gc node = %v", err)
	}
	// Usage works on any data node.
	if _, err := c.Usage(); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonStyleAutoRetention(t *testing.T) {
	ep, reaper := startGCNode(t, 2)
	c := dialClient(t, ep)
	// The client creates the blob over RPC; the reaper must discover
	// it through its catalog at pass start.
	b, err := blob.Create(c.Services(), 9, segtree.Geometry{Capacity: 1 << 20, Page: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		vec, err := extent.NewVec(extent.List{{Offset: 0, Length: 4096}}, make([]byte, 4096))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.WriteList(vec, blob.WriteOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	st := reaper.Pass()
	if st.AutoDropped != 3 || st.Reclaimed != 3 {
		t.Fatalf("auto retention over catalog = %+v", st)
	}
	vs, err := b.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 { // 0 + newest 2
		t.Fatalf("versions after auto retention = %v", vs)
	}
}
