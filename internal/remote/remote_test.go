package remote

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/blob"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

// startNode boots a single node hosting all roles on a loopback port.
func startNode(t *testing.T) (*Node, Endpoints) {
	t.Helper()
	mgr, _ := provider.NewPool(3, iosim.CostModel{})
	node, err := Listen("127.0.0.1:0", Roles{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(2, iosim.CostModel{}),
		Data: provider.NewRouter(mgr),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	addr := node.Addr()
	return node, Endpoints{VM: addr, Meta: addr, Data: addr}
}

func dialClient(t *testing.T, ep Endpoints) *Client {
	t.Helper()
	c, err := Dial(ep)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestListenValidation(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", Roles{}); err == nil {
		t.Fatal("empty roles must fail")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial(Endpoints{VM: "127.0.0.1:1", Meta: "127.0.0.1:1", Data: "127.0.0.1:1"}); err == nil {
		t.Fatal("dialing a closed port must fail")
	}
}

func TestRemoteBlobRoundTrip(t *testing.T) {
	_, ep := startNode(t)
	c := dialClient(t, ep)
	b, err := blob.Create(c.Services(), 1, segtree.Geometry{Capacity: 1 << 16, Page: 512})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("bytes over tcp")
	v, err := b.Write(1000, data, blob.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadAt(v, 1000, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read = %q", got)
	}
}

func TestRemoteNonContiguousAtomicWrite(t *testing.T) {
	_, ep := startNode(t)
	c := dialClient(t, ep)
	b, err := blob.Create(c.Services(), 1, segtree.Geometry{Capacity: 1 << 16, Page: 512})
	if err != nil {
		t.Fatal(err)
	}
	l := extent.List{{Offset: 0, Length: 300}, {Offset: 4096, Length: 300}}
	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer uses its own connection, like a real client.
			cw, err := Dial(ep)
			if err != nil {
				t.Error(err)
				return
			}
			defer cw.Close()
			bw, err := blob.Open(cw.Services(), 1)
			if err != nil {
				t.Error(err)
				return
			}
			buf := bytes.Repeat([]byte{byte(w + 1)}, int(l.TotalLength()))
			vec, _ := extent.NewVec(l, buf)
			if _, err := bw.WriteList(vec, blob.WriteOptions{}); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	got, _, err := b.ReadLatest(l)
	if err != nil {
		t.Fatal(err)
	}
	first := got[0]
	for i, x := range got {
		if x != first {
			t.Fatalf("atomicity violated over RPC: byte %d = %d, want %d", i, x, first)
		}
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	_, ep := startNode(t)
	c := dialClient(t, ep)
	// Reading an unknown blob must surface the server-side error text.
	_, err := c.LatestPublished(42)
	if err == nil || !strings.Contains(err.Error(), "unknown blob") {
		t.Fatalf("err = %v", err)
	}
	// Unknown chunk.
	_, err = c.Get(chunk.Key{Blob: 9}, 0, 1)
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("chunk err = %v", err)
	}
}

func TestRemoteMetadataNodes(t *testing.T) {
	_, ep := startNode(t)
	c := dialClient(t, ep)
	key := segtree.NodeKey{Version: 1, Offset: 0, Size: 512}
	n := &segtree.Node{Leaf: true, Frags: []segtree.Fragment{{
		Ext: extent.Extent{Offset: 0, Length: 8},
		Ref: chunk.Ref{Key: chunk.Key{Blob: 1, Version: 1}, Length: 8},
	}}}
	if err := c.PutNode(1, key, n); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetNode(1, key)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Leaf || len(got.Frags) != 1 || got.Frags[0].Ext.Length != 8 {
		t.Fatalf("node = %+v", got)
	}
	_, found, err := c.TryGetNode(1, segtree.NodeKey{Version: 99, Size: 512})
	if err != nil || found {
		t.Fatalf("TryGetNode = %v %v", found, err)
	}
}

func TestSplitRoleNodes(t *testing.T) {
	// Version manager, metadata and data on three separate processes.
	vmNode, err := Listen("127.0.0.1:0", Roles{VM: vmanager.New(iosim.CostModel{})})
	if err != nil {
		t.Fatal(err)
	}
	defer vmNode.Close()
	metaNode, err := Listen("127.0.0.1:0", Roles{Meta: metadata.NewStore(4, iosim.CostModel{})})
	if err != nil {
		t.Fatal(err)
	}
	defer metaNode.Close()
	mgr, _ := provider.NewPool(2, iosim.CostModel{})
	dataNode, err := Listen("127.0.0.1:0", Roles{Data: provider.NewRouter(mgr)})
	if err != nil {
		t.Fatal(err)
	}
	defer dataNode.Close()

	c, err := Dial(Endpoints{VM: vmNode.Addr(), Meta: metaNode.Addr(), Data: dataNode.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b, err := blob.Create(c.Services(), 1, segtree.Geometry{Capacity: 1 << 14, Page: 256})
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.Write(0, []byte("split roles"), blob.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadAt(v, 0, 11)
	if err != nil || string(got) != "split roles" {
		t.Fatalf("read = %q, %v", got, err)
	}
}

func TestVersionsOverRPC(t *testing.T) {
	_, ep := startNode(t)
	c := dialClient(t, ep)
	b, err := blob.Create(c.Services(), 1, segtree.Geometry{Capacity: 1 << 14, Page: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := b.Write(int64(i*100), []byte{byte(i)}, blob.WriteOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	vs, err := b.Versions()
	if err != nil || len(vs) != 4 {
		t.Fatalf("versions = %v, %v", vs, err)
	}
	geo, err := c.Geometry(1)
	if err != nil || geo.Page != 256 {
		t.Fatalf("geometry = %+v, %v", geo, err)
	}
}

func TestReplicatedDataNodeOverRPC(t *testing.T) {
	// A data node with R=2: writes return replica sets, a provider
	// killed over RPC leaves every version readable via failover, and
	// the repair RPC restores full degree so a second loss is survivable.
	mgr, _ := provider.NewPool(4, iosim.CostModel{})
	router := provider.NewRouter(mgr)
	router.SetReplicas(2)
	node, err := Listen("127.0.0.1:0", Roles{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(2, iosim.CostModel{}),
		Data: router,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	addr := node.Addr()
	c := dialClient(t, Endpoints{VM: addr, Meta: addr, Data: addr})

	ids, err := c.Put(chunk.Key{Blob: 7}, []byte("two copies"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] == ids[1] {
		t.Fatalf("replica set over RPC = %v", ids)
	}

	b, err := blob.Create(c.Services(), 1, segtree.Geometry{Capacity: 1 << 16, Page: 512})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("r"), 2000)
	var versions []uint64
	for i := 0; i < 4; i++ {
		v, err := b.Write(int64(i)*1500, payload, blob.WriteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, v)
	}

	if err := c.SetProviderDown(0, true); err != nil {
		t.Fatal(err)
	}
	for _, v := range versions {
		got, err := b.ReadAt(v, int64(v-1)*1500, 2000)
		if err != nil {
			t.Fatalf("degraded read of v%d: %v", v, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("degraded read of v%d corrupt", v)
		}
	}

	st, err := c.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded == 0 || st.Repaired != st.Degraded || st.Lost != 0 {
		t.Fatalf("repair over RPC: %+v", st)
	}
	// Full degree is restored: losing a second provider still leaves
	// every version readable.
	if err := c.SetProviderDown(1, true); err != nil {
		t.Fatal(err)
	}
	for _, v := range versions {
		if _, err := b.ReadAt(v, int64(v-1)*1500, 2000); err != nil {
			t.Fatalf("read of v%d after repair + second loss: %v", v, err)
		}
	}
	// Unknown provider id surfaces the server-side error.
	if err := c.SetProviderDown(99, true); err == nil {
		t.Fatal("SetProviderDown(99) must fail")
	}
}

func TestAbortOverRPC(t *testing.T) {
	_, ep := startNode(t)
	c := dialClient(t, ep)
	if err := c.CreateBlob(1, segtree.Geometry{Capacity: 1 << 14, Page: 256}); err != nil {
		t.Fatal(err)
	}
	tk, err := c.AssignTicket(1, extent.List{{Offset: 0, Length: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Abort(1, tk.Version); err != nil {
		t.Fatal(err)
	}
	info, err := c.LatestPublished(1)
	if err != nil || info.Version != tk.Version {
		t.Fatalf("aborted version not published: %+v, %v", info, err)
	}
	// Aborting twice must surface the server-side error.
	if err := c.Abort(1, tk.Version); err == nil {
		t.Fatal("double abort must fail")
	}
}

func TestSelfHealNodeOverRPC(t *testing.T) {
	// A data node running the self-healing loop: health and scrub RPCs
	// report the error-driven detector's state, and a synchronous scrub
	// pass repairs a lost provider with no repair RPC ever issued.
	mgr, faults := provider.NewFaultPool(4, iosim.CostModel{})
	router := provider.NewRouter(mgr)
	router.SetReplicas(2)
	health := provider.NewHealthMonitor(mgr, provider.HealthConfig{Threshold: 2})
	router.SetHealthMonitor(health)
	healer := core.NewHealer(router, health, core.HealerConfig{})
	router.SetDegradedHandler(healer.EnqueueRepair)

	node, err := Listen("127.0.0.1:0", Roles{
		VM:     vmanager.New(iosim.CostModel{}),
		Meta:   metadata.NewStore(2, iosim.CostModel{}),
		Data:   router,
		Health: health,
		Healer: healer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	addr := node.Addr()
	c := dialClient(t, Endpoints{VM: addr, Meta: addr, Data: addr})

	b, err := blob.Create(c.Services(), 1, segtree.Geometry{Capacity: 1 << 16, Page: 512})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("h"), 1500)
	var versions []uint64
	for i := 0; i < 4; i++ {
		v, err := b.Write(int64(i)*1500, payload, blob.WriteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, v)
	}

	sts, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 4 || sts[0].State != provider.Live {
		t.Fatalf("health snapshot = %+v", sts)
	}

	// Kill a store behind the node's back, then force a synchronous
	// scrub pass over RPC: detection and re-replication both happen
	// server-side.
	faults[2].SetDown(true)
	scrub, err := c.Scrub(true)
	if err != nil {
		t.Fatal(err)
	}
	if scrub.ScrubPasses == 0 || scrub.Repaired == 0 || scrub.QueueLen != 0 {
		t.Fatalf("sync scrub over RPC: %+v", scrub)
	}
	if router.UnderReplicated() != 0 {
		t.Fatalf("%d chunks still degraded after RPC scrub", router.UnderReplicated())
	}
	sts, err = c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if sts[2].State != provider.Down {
		t.Fatalf("store-level kill not detected over RPC: %+v", sts[2])
	}
	// Async form just reports counters.
	again, err := c.Scrub(false)
	if err != nil {
		t.Fatal(err)
	}
	if again.ScrubbedChunks < scrub.ScrubbedChunks {
		t.Fatalf("async scrub stats went backward: %+v then %+v", scrub, again)
	}
	// Every version remains readable after the autonomous repair.
	for _, v := range versions {
		if _, err := b.ReadAt(v, int64(v-1)*1500, 1500); err != nil {
			t.Fatalf("read v%d after self-heal: %v", v, err)
		}
	}
}

func TestSelfHealRPCsRequireHealer(t *testing.T) {
	mgr, _ := provider.NewPool(2, iosim.CostModel{})
	node, err := Listen("127.0.0.1:0", Roles{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(2, iosim.CostModel{}),
		Data: provider.NewRouter(mgr),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	addr := node.Addr()
	c := dialClient(t, Endpoints{VM: addr, Meta: addr, Data: addr})
	if _, err := c.Health(); err == nil {
		t.Fatal("Health RPC on a non-self-heal node must fail")
	}
	if _, err := c.Scrub(false); err == nil {
		t.Fatal("Scrub RPC on a non-self-heal node must fail")
	}
}
