// Framed data plane: a binary wire protocol for PutChunk/GetChunk that
// streams chunk payloads in length-prefixed frames instead of encoding
// them as one gob []byte. Control RPCs (tickets, metadata, admin) stay
// on gob — only the bulk-byte path changes, because that is where
// serialization cost and the lack of pipelining dominate large-object
// throughput.
//
// Negotiation is per-connection: a framed client opens its data
// connection by sending the 4-byte magic "BSD1"; the server peeks the
// first bytes of every accepted connection and routes magic-led ones to
// the framed loop, everything else to the gob RPC server. Old clients
// never see a difference.
//
// Wire format (all integers little-endian, matching chunk.Ref):
//
//	request header (40 bytes + hints):
//	  op u8 (1=put, 2=get), flags u8 (reserved), hintCount u8, pad u8,
//	  index u32, blob u64, version u64, off i64, length i64,
//	  hintCount * u32 replica IDs
//	put body:   frames of u32 size (1..maxFrame) + payload, then a u32 0
//	            terminator; the sentinel 0xFFFFFFFF aborts the stream.
//	put reply:  status u8; ok → u8 count + count*u32 replica IDs,
//	            err → u32 len + message
//	get reply:  status u8; ok → u8 freshCount (+IDs) then data frames
//	            ending in the 0 terminator; err → u32 len + message.
//	            A store failure mid-frame closes the connection — the
//	            frame word already promised bytes that cannot arrive,
//	            so there is no in-band way to abort without desyncing
//	            the stream. Open-time errors keep the connection.
package remote

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/chunk"
	"repro/internal/metrics"
	"repro/internal/provider"
)

// framedMagic is the 4-byte connection preamble that selects the
// framed data plane. Gob's own stream never starts with these bytes
// (a gob type definition begins with a small length byte), so the peek
// is unambiguous.
const framedMagic = "BSD1"

const (
	opPut = 1
	opGet = 2

	// maxFrame bounds one frame's payload; large enough that disk
	// reads amortize syscalls, small enough to bound per-frame buffers.
	maxFrame = 256 << 10

	// frameAbort is the sentinel frame size that aborts an in-flight
	// body: the sender died or hit an error mid-stream.
	frameAbort = 0xFFFFFFFF

	frameHeaderLen = 40
)

var errAborted = errors.New("remote: stream aborted by peer")

// frameHeader is the fixed request header of one data-plane operation.
type frameHeader struct {
	op       byte
	key      chunk.Key
	off      int64
	length   int64 // put: total payload size; get: read length
	replicas []provider.ID
}

func writeHeader(w io.Writer, h frameHeader) error {
	if len(h.replicas) > 255 {
		h.replicas = h.replicas[:255]
	}
	buf := make([]byte, frameHeaderLen+4*len(h.replicas))
	buf[0] = h.op
	buf[2] = byte(len(h.replicas))
	binary.LittleEndian.PutUint32(buf[4:], h.key.Index)
	binary.LittleEndian.PutUint64(buf[8:], h.key.Blob)
	binary.LittleEndian.PutUint64(buf[16:], h.key.Version)
	binary.LittleEndian.PutUint64(buf[24:], uint64(h.off))
	binary.LittleEndian.PutUint64(buf[32:], uint64(h.length))
	for i, id := range h.replicas {
		binary.LittleEndian.PutUint32(buf[frameHeaderLen+4*i:], uint32(id))
	}
	_, err := w.Write(buf)
	return err
}

func readHeader(r io.Reader) (frameHeader, error) {
	var buf [frameHeaderLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return frameHeader{}, err
	}
	h := frameHeader{
		op: buf[0],
		key: chunk.Key{
			Index:   binary.LittleEndian.Uint32(buf[4:]),
			Blob:    binary.LittleEndian.Uint64(buf[8:]),
			Version: binary.LittleEndian.Uint64(buf[16:]),
		},
		off:    int64(binary.LittleEndian.Uint64(buf[24:])),
		length: int64(binary.LittleEndian.Uint64(buf[32:])),
	}
	if n := int(buf[2]); n > 0 {
		ids := make([]byte, 4*n)
		if _, err := io.ReadFull(r, ids); err != nil {
			return frameHeader{}, err
		}
		h.replicas = make([]provider.ID, n)
		for i := 0; i < n; i++ {
			h.replicas[i] = provider.ID(binary.LittleEndian.Uint32(ids[4*i:]))
		}
	}
	return h, nil
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeErrString(w io.Writer, err error) error {
	msg := []byte(err.Error())
	if err := writeU32(w, uint32(len(msg))); err != nil {
		return err
	}
	_, werr := w.Write(msg)
	return werr
}

func readErrString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("remote: oversized error message (%d bytes)", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(r, msg); err != nil {
		return "", err
	}
	return string(msg), nil
}

func writeIDs(w io.Writer, ids []provider.ID) error {
	if len(ids) > 255 {
		ids = ids[:255]
	}
	buf := make([]byte, 1+4*len(ids))
	buf[0] = byte(len(ids))
	for i, id := range ids {
		binary.LittleEndian.PutUint32(buf[1+4*i:], uint32(id))
	}
	_, err := w.Write(buf)
	return err
}

func readIDs(r io.Reader) ([]provider.ID, error) {
	var c [1]byte
	if _, err := io.ReadFull(r, c[:]); err != nil {
		return nil, err
	}
	if c[0] == 0 {
		return nil, nil
	}
	buf := make([]byte, 4*int(c[0]))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	ids := make([]provider.ID, c[0])
	for i := range ids {
		ids[i] = provider.ID(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return ids, nil
}

// frameBodyReader adapts a framed put body to io.Reader, so the store's
// PutFromReader consumes payload bytes straight off the connection —
// the zero-copy path: socket buffer → store writer, no gob
// materialization in between. It also feeds the per-frame metrics.
type frameBodyReader struct {
	r       *bufio.Reader
	left    uint32 // bytes remaining in the current frame
	done    bool
	aborted bool
	frames  *metrics.Counter
	bytes   *metrics.Counter
}

func (fr *frameBodyReader) Read(p []byte) (int, error) {
	for fr.left == 0 {
		if fr.done || fr.aborted {
			return 0, io.EOF
		}
		n, err := readU32(fr.r)
		if err != nil {
			return 0, err
		}
		switch {
		case n == 0:
			fr.done = true
			return 0, io.EOF
		case n == frameAbort:
			fr.aborted = true
			return 0, errAborted
		case n > maxFrame:
			return 0, fmt.Errorf("remote: oversized frame (%d bytes)", n)
		}
		fr.left = n
		fr.frames.Inc()
	}
	if uint32(len(p)) > fr.left {
		p = p[:fr.left]
	}
	n, err := fr.r.Read(p)
	fr.left -= uint32(n)
	fr.bytes.Add(int64(n))
	return n, err
}

// drain consumes the rest of the body after an error, keeping the
// connection usable for the next request.
func (fr *frameBodyReader) drain() error {
	buf := make([]byte, 32<<10)
	for {
		_, err := fr.Read(buf)
		if err == io.EOF {
			return nil
		}
		if err == errAborted {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// framedServer serves the framed data plane of one node.
type framedServer struct {
	r      *provider.Router
	frames *metrics.Counter // bs_data_frames_total, nil-tolerant
	bytes  *metrics.Counter // bs_data_stream_bytes_total, nil-tolerant
}

func newFramedServer(r *provider.Router, reg *metrics.Registry) *framedServer {
	s := &framedServer{r: r}
	if reg != nil {
		s.frames = reg.Counter("bs_data_frames_total")
		s.bytes = reg.Counter("bs_data_stream_bytes_total")
	}
	return s
}

// serve handles one framed connection until EOF or a protocol error.
// Requests are processed in order — pipelining across requests comes
// from the client's connection pool, not from interleaving on one
// connection.
func (s *framedServer) serve(conn net.Conn, br *bufio.Reader) {
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		h, err := readHeader(br)
		if err != nil {
			return // EOF or dead peer
		}
		switch h.op {
		case opPut:
			err = s.servePut(br, bw, h)
		case opGet:
			err = s.serveGet(conn, bw, h)
		default:
			return // protocol violation
		}
		if err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func (s *framedServer) servePut(br *bufio.Reader, bw *bufio.Writer, h frameHeader) error {
	body := &frameBodyReader{r: br, frames: s.frames, bytes: s.bytes}
	if max := s.r.MaxChunkSize(); h.length < 0 || h.length > max {
		// The declared size comes straight off the wire; reject it here
		// before the router can act on it (PutStream checks again, but
		// the server must not trust the router to be its input filter).
		// The body still drains so the connection stays aligned.
		err := error(&provider.ChunkTooLargeError{Size: h.length, Max: max})
		if derr := body.drain(); derr != nil {
			return derr
		}
		if werr := bw.WriteByte(1); werr != nil {
			return werr
		}
		return writeErrString(bw, err)
	}
	ids, err := s.r.PutStream(h.key, h.length, body)
	// Whatever happened, the body must be consumed to keep the
	// connection aligned on the next header. A short store error (say
	// ErrExists) leaves unread frames behind.
	if derr := body.drain(); derr != nil {
		return derr
	}
	if body.aborted && err == nil {
		// The client aborted after the store already consumed exactly
		// length bytes — cannot happen with a well-formed abort, but
		// never report success for an aborted upload.
		err = errAborted
	}
	if err != nil {
		if werr := bw.WriteByte(1); werr != nil {
			return werr
		}
		return writeErrString(bw, err)
	}
	if werr := bw.WriteByte(0); werr != nil {
		return werr
	}
	return writeIDs(bw, ids)
}

func (s *framedServer) serveGet(conn net.Conn, bw *bufio.Writer, h frameHeader) error {
	var (
		rc    io.ReadCloser
		fresh []provider.ID
		err   error
	)
	if len(h.replicas) > 0 {
		rc, fresh, err = s.r.OpenFrom(h.replicas, h.key, h.off, h.length)
	} else {
		rc, err = s.r.OpenReader(h.key, h.off, h.length)
	}
	if err != nil {
		if werr := bw.WriteByte(1); werr != nil {
			return werr
		}
		return writeErrString(bw, err)
	}
	defer rc.Close()
	if werr := bw.WriteByte(0); werr != nil {
		return werr
	}
	if werr := writeIDs(bw, fresh); werr != nil {
		return werr
	}
	left := h.length
	for left > 0 {
		n := int64(maxFrame)
		if n > left {
			n = left
		}
		if werr := writeU32(bw, uint32(n)); werr != nil {
			return werr
		}
		// Flush the frame word, then move the payload straight from the
		// store reader to the socket: for disk stores rc is the chunk
		// file itself, so the kernel sendfiles page cache → socket with
		// no user-space copy at all. A payload error here is fatal by
		// construction — the frame word already promised n bytes — so
		// it propagates up and closes the connection.
		if werr := bw.Flush(); werr != nil {
			return werr
		}
		if _, cerr := io.CopyN(conn, rc, n); cerr != nil {
			return cerr
		}
		s.frames.Inc()
		s.bytes.Add(n)
		left -= n
	}
	return writeU32(bw, 0)
}

// --- client side ---

// framedConn is one pooled client connection to a data node's framed
// plane.
type framedConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// framedPool hands out exclusive connections to one data endpoint,
// dialing on demand. Pooling is what pipelines the data plane: N
// concurrent chunk transfers ride N connections instead of serializing
// on net/rpc's single gob stream.
type framedPool struct {
	addr string
	mu   sync.Mutex
	idle []*framedConn
	// maxIdle bounds retained connections; extras close on release.
	maxIdle int
}

func newFramedPool(addr string) *framedPool {
	// Deep enough that a pipelined large-object write (window 64) keeps
	// its connections across waves instead of redialing every chunk.
	return &framedPool{addr: addr, maxIdle: 64}
}

// acquire hands out an idle connection when one exists (pooled=true)
// or dials a fresh one. Idle connections are never validated here —
// only their first use can prove them dead — so op-level callers go
// through withConn, which retries once on a fresh dial when a POOLED
// connection fails.
func (p *framedPool) acquire() (fc *framedConn, pooled bool, err error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		fc := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return fc, true, nil
	}
	p.mu.Unlock()
	c, err := net.Dial("tcp", p.addr)
	if err != nil {
		return nil, false, fmt.Errorf("remote: dial framed %s: %w", p.addr, err)
	}
	fc = &framedConn{c: c, br: bufio.NewReaderSize(c, 64<<10), bw: bufio.NewWriterSize(c, 64<<10)}
	if _, err := fc.bw.WriteString(framedMagic); err != nil {
		c.Close()
		return nil, false, err
	}
	return fc, false, nil
}

// flushIdle closes every idle connection. Called after a pooled
// connection turned out dead: the usual cause is a data-node restart,
// which killed every socket the pool is holding — keeping them would
// make the next maxIdle ops each pay the same discover-retry cycle.
func (p *framedPool) flushIdle() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, fc := range idle {
		fc.c.Close()
	}
}

// withConn runs one framed op on a pool connection. A fatal
// (transport-level) failure on a POOLED connection is indistinguishable
// from a stale socket left by a peer restart, so the op retries once on
// a freshly dialed connection after flushing the rest of the idle list;
// a failure on a fresh dial is a real peer problem and surfaces as-is.
// Retried puts are safe: the chunk store is immutable, so the worst a
// half-delivered first attempt yields is chunk.ErrExists on the retry.
func (p *framedPool) withConn(op func(fc *framedConn) (err error, fatal bool)) error {
	fc, pooled, err := p.acquire()
	if err != nil {
		return err
	}
	err, fatal := op(fc)
	if !fatal {
		p.release(fc)
		return err
	}
	fc.c.Close()
	if !pooled {
		return err
	}
	p.flushIdle()
	fc, _, derr := p.acquire()
	if derr != nil {
		return derr
	}
	err, fatal = op(fc)
	if fatal {
		fc.c.Close()
	} else {
		p.release(fc)
	}
	return err
}

// release returns a healthy connection to the pool.
func (p *framedPool) release(fc *framedConn) {
	p.mu.Lock()
	if len(p.idle) < p.maxIdle {
		p.idle = append(p.idle, fc)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	fc.c.Close()
}

func (p *framedPool) close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, fc := range idle {
		fc.c.Close()
	}
}

// put performs one framed chunk store. A transport error closes the
// connection (retrying once on a fresh dial if it was pooled — see
// withConn); a server-reported error keeps it pooled.
func (p *framedPool) put(key chunk.Key, data []byte) (ids []provider.ID, err error) {
	err = p.withConn(func(fc *framedConn) (error, bool) {
		var oerr error
		var fatal bool
		ids, oerr, fatal = fc.put(key, data)
		return oerr, fatal
	})
	return ids, err
}

func (fc *framedConn) put(key chunk.Key, data []byte) (ids []provider.ID, err error, fatal bool) {
	h := frameHeader{op: opPut, key: key, length: int64(len(data))}
	if err := writeHeader(fc.bw, h); err != nil {
		return nil, err, true
	}
	if err := fc.bw.Flush(); err != nil {
		return nil, err, true
	}
	// Scatter-gather the body: frame words and payload slices go out in
	// one writev batch, so the payload is never copied into a staging
	// buffer — the zero-copy half of the put path.
	nframes := (len(data) + maxFrame - 1) / maxFrame
	words := make([]byte, 4*(nframes+1))
	bufs := make(net.Buffers, 0, 2*nframes+1)
	for i, off := 0, 0; off < len(data); i, off = i+1, off+maxFrame {
		end := off + maxFrame
		if end > len(data) {
			end = len(data)
		}
		w := words[4*i : 4*i+4]
		binary.LittleEndian.PutUint32(w, uint32(end-off))
		bufs = append(bufs, w, data[off:end])
	}
	bufs = append(bufs, words[4*nframes:]) // zero terminator
	if _, err := bufs.WriteTo(fc.c); err != nil {
		return nil, err, true
	}
	status, err := fc.br.ReadByte()
	if err != nil {
		return nil, err, true
	}
	if status != 0 {
		msg, rerr := readErrString(fc.br)
		if rerr != nil {
			return nil, rerr, true
		}
		return nil, errors.New(msg), false
	}
	ids, err = readIDs(fc.br)
	if err != nil {
		return nil, err, true
	}
	return ids, nil, false
}

// get performs one framed chunk read with an optional replica hint,
// returning the data and — when the hint was stale — the fresh set.
// Reads are idempotent, so the stale-pooled-connection retry in
// withConn is unconditionally safe here.
func (p *framedPool) get(replicas []provider.ID, key chunk.Key, off, length int64) (data []byte, fresh []provider.ID, err error) {
	err = p.withConn(func(fc *framedConn) (error, bool) {
		var oerr error
		var fatal bool
		data, fresh, oerr, fatal = fc.get(replicas, key, off, length)
		return oerr, fatal
	})
	return data, fresh, err
}

func (fc *framedConn) get(replicas []provider.ID, key chunk.Key, off, length int64) (data []byte, fresh []provider.ID, err error, fatal bool) {
	h := frameHeader{op: opGet, key: key, off: off, length: length, replicas: replicas}
	if err := writeHeader(fc.bw, h); err != nil {
		return nil, nil, err, true
	}
	if err := fc.bw.Flush(); err != nil {
		return nil, nil, err, true
	}
	status, err := fc.br.ReadByte()
	if err != nil {
		return nil, nil, err, true
	}
	if status != 0 {
		msg, rerr := readErrString(fc.br)
		if rerr != nil {
			return nil, nil, rerr, true
		}
		return nil, nil, errors.New(msg), false
	}
	fresh, err = readIDs(fc.br)
	if err != nil {
		return nil, nil, err, true
	}
	data = make([]byte, 0, length)
	for {
		n, rerr := readU32(fc.br)
		if rerr != nil {
			return nil, nil, rerr, true
		}
		if n == 0 {
			return data, fresh, nil, false
		}
		if n == frameAbort {
			msg, rerr := readErrString(fc.br)
			if rerr != nil {
				return nil, nil, rerr, true
			}
			return nil, nil, errors.New(msg), false
		}
		if n > maxFrame {
			return nil, nil, fmt.Errorf("remote: oversized frame (%d bytes)", n), true
		}
		cur := len(data)
		data = append(data, make([]byte, n)...)
		if _, rerr := io.ReadFull(fc.br, data[cur:]); rerr != nil {
			return nil, nil, rerr, true
		}
	}
}
