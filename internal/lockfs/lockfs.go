// Package lockfs simulates the locking-based parallel file system the
// paper compares against (Lustre): a shared file striped round-robin
// across object storage targets (OSTs) with finite per-OST bandwidth,
// and a distributed lock manager providing POSIX atomicity for
// contiguous operations via byte-range extent locks.
//
// POSIX atomicity is exactly what the paper argues is insufficient:
// a contiguous WriteAt is atomic, but a non-contiguous MPI write must
// be assembled from several WriteAt calls, and making the *set* atomic
// requires additional locking at the MPI-I/O layer (see
// internal/mpiio's atomicity strategies, which drive this package).
package lockfs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/lockmgr"
)

// ErrNotFound is returned when opening an unknown file.
var ErrNotFound = errors.New("lockfs: file not found")

// ErrExists is returned when creating a file twice.
var ErrExists = errors.New("lockfs: file already exists")

type stripeKey struct {
	file   uint64
	stripe int64
}

// ost is one object storage target: bounded-bandwidth storage for the
// stripes assigned to it.
type ost struct {
	mu      sync.Mutex
	stripes map[stripeKey][]byte
	meter   *iosim.Meter
}

// FS is the simulated parallel file system.
type FS struct {
	stripeSize int64
	osts       []*ost

	mu     sync.Mutex
	files  map[string]*File
	nextID uint64

	lockModel iosim.CostModel
}

// Config sets up a file system instance.
type Config struct {
	OSTs       int             // number of object storage targets (>=1)
	StripeSize int64           // stripe unit in bytes (>0)
	OSTModel   iosim.CostModel // per-OST service cost
	LockModel  iosim.CostModel // lock manager RPC cost
}

// New creates a file system.
func New(cfg Config) (*FS, error) {
	if cfg.OSTs < 1 {
		return nil, fmt.Errorf("lockfs: need at least one OST, got %d", cfg.OSTs)
	}
	if cfg.StripeSize <= 0 {
		return nil, fmt.Errorf("lockfs: stripe size %d must be positive", cfg.StripeSize)
	}
	fs := &FS{
		stripeSize: cfg.StripeSize,
		files:      make(map[string]*File),
		lockModel:  cfg.LockModel,
	}
	for i := 0; i < cfg.OSTs; i++ {
		fs.osts = append(fs.osts, &ost{
			stripes: make(map[stripeKey][]byte),
			meter:   iosim.NewMeter(cfg.OSTModel, true),
		})
	}
	return fs, nil
}

// StripeSize returns the stripe unit.
func (fs *FS) StripeSize() int64 { return fs.stripeSize }

// OSTCount returns the number of OSTs.
func (fs *FS) OSTCount() int { return len(fs.osts) }

// OSTMeters returns the per-OST meters for inspection.
func (fs *FS) OSTMeters() []*iosim.Meter {
	out := make([]*iosim.Meter, len(fs.osts))
	for i, o := range fs.osts {
		out[i] = o.meter
	}
	return out
}

// Create creates a new file.
func (fs *FS) Create(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, dup := fs.files[name]; dup {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	fs.nextID++
	f := &File{
		fs:   fs,
		name: name,
		id:   fs.nextID,
		lm:   lockmgr.New(fs.lockModel),
	}
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return f, nil
}

// File is a handle to one striped file. All methods are safe for
// concurrent use.
type File struct {
	fs   *FS
	name string
	id   uint64
	lm   *lockmgr.Manager
	size atomic.Int64
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the current file size.
func (f *File) Size() int64 { return f.size.Load() }

// LockManager exposes the file's distributed lock manager; the MPI-I/O
// layer uses it to implement atomicity strategies (whole-file and
// bounding-range locks live in the same lock space as the POSIX
// per-call locks, as with fcntl on a real parallel file system).
func (f *File) LockManager() *lockmgr.Manager { return f.lm }

// WriteAt performs a POSIX-atomic contiguous write: it takes an
// exclusive extent lock covering the range, writes the stripes, and
// releases the lock.
func (f *File) WriteAt(off int64, data []byte) error {
	g := f.lm.Acquire(extent.Extent{Offset: off, Length: int64(len(data))}, lockmgr.Exclusive)
	defer g.Release()
	return f.WriteAtLocked(off, data)
}

// ReadAt performs a POSIX-atomic contiguous read under a shared lock.
func (f *File) ReadAt(off, length int64) ([]byte, error) {
	g := f.lm.Acquire(extent.Extent{Offset: off, Length: length}, lockmgr.Shared)
	defer g.Release()
	return f.ReadAtLocked(off, length)
}

// WriteAtLocked writes without taking locks; the caller must already
// hold an exclusive lock covering the range (e.g. the MPI-I/O layer's
// whole-file or bounding-range lock).
func (f *File) WriteAtLocked(off int64, data []byte) error {
	if off < 0 {
		return fmt.Errorf("lockfs: negative offset %d", off)
	}
	if len(data) == 0 {
		return nil
	}
	// Split into stripe-aligned pieces and write them to their OSTs in
	// parallel (the Lustre client writes to multiple OSTs at once).
	pieces := extent.List{{Offset: off, Length: int64(len(data))}}.SplitAt(f.fs.stripeSize)
	var wg sync.WaitGroup
	var start int64
	for _, p := range pieces {
		chunkData := data[start : start+p.Length]
		start += p.Length
		wg.Add(1)
		go func(p extent.Extent, chunkData []byte) {
			defer wg.Done()
			f.writeStripePiece(p, chunkData)
		}(p, chunkData)
	}
	wg.Wait()
	// Advance the file size watermark.
	end := off + int64(len(data))
	for {
		cur := f.size.Load()
		if end <= cur || f.size.CompareAndSwap(cur, end) {
			break
		}
	}
	return nil
}

// ReadAtLocked reads without taking locks; the caller must hold a
// covering lock. Unwritten bytes read as zero.
func (f *File) ReadAtLocked(off, length int64) ([]byte, error) {
	if off < 0 || length < 0 {
		return nil, fmt.Errorf("lockfs: invalid range [%d,%d)", off, off+length)
	}
	out := make([]byte, length)
	if length == 0 {
		return out, nil
	}
	pieces := extent.List{{Offset: off, Length: length}}.SplitAt(f.fs.stripeSize)
	var wg sync.WaitGroup
	var start int64
	for _, p := range pieces {
		dst := out[start : start+p.Length]
		start += p.Length
		wg.Add(1)
		go func(p extent.Extent, dst []byte) {
			defer wg.Done()
			f.readStripePiece(p, dst)
		}(p, dst)
	}
	wg.Wait()
	return out, nil
}

// ostFor maps a stripe index to its OST (round-robin layout).
func (f *File) ostFor(stripe int64) *ost {
	return f.fs.osts[stripe%int64(len(f.fs.osts))]
}

func (f *File) writeStripePiece(p extent.Extent, data []byte) {
	stripe := p.Offset / f.fs.stripeSize
	o := f.ostFor(stripe)
	key := stripeKey{file: f.id, stripe: stripe}
	inner := p.Offset - stripe*f.fs.stripeSize
	o.mu.Lock()
	page, ok := o.stripes[key]
	if !ok {
		page = make([]byte, f.fs.stripeSize)
		o.stripes[key] = page
	}
	copy(page[inner:], data)
	o.mu.Unlock()
	// Charge the OST's bandwidth outside the map lock; the meter's own
	// exclusivity models the OST's single service channel.
	o.meter.Charge(int64(len(data)))
}

func (f *File) readStripePiece(p extent.Extent, dst []byte) {
	stripe := p.Offset / f.fs.stripeSize
	o := f.ostFor(stripe)
	key := stripeKey{file: f.id, stripe: stripe}
	inner := p.Offset - stripe*f.fs.stripeSize
	o.mu.Lock()
	if page, ok := o.stripes[key]; ok {
		copy(dst, page[inner:inner+int64(len(dst))])
	}
	o.mu.Unlock()
	o.meter.Charge(int64(len(dst)))
}

// Stats aggregates per-file observability data.
type Stats struct {
	LockStats lockmgr.Stats
	Size      int64
}

// Stats returns the file's lock and size statistics.
func (f *File) Stats() Stats {
	return Stats{LockStats: f.lm.Stats(), Size: f.size.Load()}
}
