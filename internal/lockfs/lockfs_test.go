package lockfs

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/lockmgr"
)

func testFS(t *testing.T, osts int) *FS {
	t.Helper()
	fs, err := New(Config{OSTs: osts, StripeSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{OSTs: 0, StripeSize: 64}); err == nil {
		t.Fatal("zero OSTs must fail")
	}
	if _, err := New(Config{OSTs: 1, StripeSize: 0}); err == nil {
		t.Fatal("zero stripe must fail")
	}
}

func TestCreateOpen(t *testing.T) {
	fs := testFS(t, 2)
	f, err := fs.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "a" {
		t.Fatalf("name = %q", f.Name())
	}
	if _, err := fs.Create("a"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create err = %v", err)
	}
	f2, err := fs.Open("a")
	if err != nil || f2 != f {
		t.Fatalf("Open = %v, %v", f2, err)
	}
	if _, err := fs.Open("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing open err = %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := testFS(t, 4)
	f, _ := fs.Create("f")
	data := []byte("hello striped world, crossing several stripe boundaries here")
	if err := f.WriteAt(10, data); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAt(10, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read = %q", got)
	}
	if f.Size() != 10+int64(len(data)) {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	fs := testFS(t, 2)
	f, _ := fs.Create("f")
	if err := f.WriteAt(100, []byte{1}); err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadAt(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %d", i, b)
		}
	}
}

func TestEmptyAndInvalidRanges(t *testing.T) {
	fs := testFS(t, 2)
	f, _ := fs.Create("f")
	if err := f.WriteAt(0, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt(-1, []byte{1}); err == nil {
		t.Fatal("negative offset must fail")
	}
	if _, err := f.ReadAt(-1, 5); err == nil {
		t.Fatal("negative read offset must fail")
	}
	if _, err := f.ReadAt(0, -5); err == nil {
		t.Fatal("negative length must fail")
	}
	got, err := f.ReadAt(5, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("zero-length read = %v, %v", got, err)
	}
}

func TestStripingUsesAllOSTs(t *testing.T) {
	fs := testFS(t, 4)
	f, _ := fs.Create("f")
	// 8 stripes of data: every OST must see 2 stripes.
	if err := f.WriteAt(0, make([]byte, 8*64)); err != nil {
		t.Fatal(err)
	}
	for i, m := range fs.OSTMeters() {
		st := m.Stats()
		if st.Bytes != 2*64 {
			t.Fatalf("OST %d got %d bytes, want %d", i, st.Bytes, 2*64)
		}
	}
}

func TestSizeWatermarkMonotonic(t *testing.T) {
	fs := testFS(t, 2)
	f, _ := fs.Create("f")
	f.WriteAt(100, []byte{1})
	f.WriteAt(0, []byte{1})
	if f.Size() != 101 {
		t.Fatalf("size = %d, want 101", f.Size())
	}
}

// TestConcurrentContiguousWritesAtomic verifies POSIX atomicity: two
// overlapping contiguous writes must not interleave within a single
// call's range.
func TestConcurrentContiguousWritesAtomic(t *testing.T) {
	fs := testFS(t, 2)
	f, _ := fs.Create("f")
	const n = 200 // spans 4 stripes
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = byte(w + 1)
			}
			for rep := 0; rep < 10; rep++ {
				if err := f.WriteAt(0, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got, err := f.ReadAt(0, n)
	if err != nil {
		t.Fatal(err)
	}
	first := got[0]
	for i, b := range got {
		if b != first {
			t.Fatalf("interleaved write: byte %d = %d, byte 0 = %d", i, b, first)
		}
	}
}

// TestLockedVariantsSkipLocking ensures WriteAtLocked can run under an
// externally held lock without self-deadlock (the MPI-layer pattern).
func TestLockedVariantsSkipLocking(t *testing.T) {
	fs := testFS(t, 2)
	f, _ := fs.Create("f")
	g := f.LockManager().Acquire(lockmgr.WholeFile, lockmgr.Exclusive)
	defer g.Release()
	done := make(chan error, 1)
	go func() {
		done <- f.WriteAtLocked(0, []byte{1, 2, 3})
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	data, err := f.ReadAtLocked(0, 3)
	if err != nil || !bytes.Equal(data, []byte{1, 2, 3}) {
		t.Fatalf("read = %v, %v", data, err)
	}
}

func TestFilesAreIsolated(t *testing.T) {
	fs := testFS(t, 2)
	a, _ := fs.Create("a")
	b, _ := fs.Create("b")
	a.WriteAt(0, []byte{0xAA})
	b.WriteAt(0, []byte{0xBB})
	ga, _ := a.ReadAt(0, 1)
	gb, _ := b.ReadAt(0, 1)
	if ga[0] != 0xAA || gb[0] != 0xBB {
		t.Fatalf("cross-file contamination: %x %x", ga[0], gb[0])
	}
}

func TestStatsExposeLockWait(t *testing.T) {
	fs := testFS(t, 2)
	f, _ := fs.Create("f")
	f.WriteAt(0, []byte{1})
	st := f.Stats()
	if st.LockStats.Acquires != 1 {
		t.Fatalf("acquires = %d", st.LockStats.Acquires)
	}
	if st.Size != 1 {
		t.Fatalf("size = %d", st.Size)
	}
}

// TestPropRandomWritesMatchOracle compares the striped file against a
// flat byte-array oracle under a random sequence of serial writes.
func TestPropRandomWritesMatchOracle(t *testing.T) {
	const space = 1024
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fs, err := New(Config{OSTs: 3, StripeSize: 32})
		if err != nil {
			return false
		}
		file, err := fs.Create("f")
		if err != nil {
			return false
		}
		oracle := make([]byte, space)
		for i := 0; i < 20; i++ {
			off := int64(r.Intn(space - 1))
			length := r.Intn(space-int(off)-1) + 1
			data := make([]byte, length)
			r.Read(data)
			if err := file.WriteAt(off, data); err != nil {
				return false
			}
			copy(oracle[off:], data)
		}
		got, err := file.ReadAt(0, space)
		if err != nil {
			return false
		}
		return bytes.Equal(got, oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteAtStripes(b *testing.B) {
	fs, _ := New(Config{OSTs: 8, StripeSize: 4096})
	f, _ := fs.Create("bench")
	data := make([]byte, 64<<10)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.WriteAt(int64(i%16)*int64(len(data)), data); err != nil {
			b.Fatal(err)
		}
	}
}
