// Package datatype implements the subset of MPI derived datatypes the
// paper's workloads need — contiguous, vector, indexed and subarray
// constructors over elementary types — together with flattening:
// converting one instance of a datatype into the ordered list of byte
// ranges it occupies. Flattened datatypes are what the MPI-I/O layer
// hands to the storage backend as List I/O requests (following the
// List I/O proposal of Ching et al. that the paper's access interface
// mirrors).
package datatype

import (
	"fmt"

	"repro/internal/extent"
)

// Datatype describes a typed memory/file layout.
//
// Size is the number of payload bytes in one instance; Extent is the
// span the instance covers (stride footprint, >= Size); Flatten
// returns the payload byte ranges relative to the instance start, in
// type-map order. For all constructors in this package the type map is
// monotonically increasing, so Flatten output is sorted and disjoint.
type Datatype interface {
	Size() int64
	Extent() int64
	Flatten() extent.List
}

// Elementary is a basic type of fixed width (MPI_BYTE, MPI_INT, ...).
type Elementary struct {
	Width int64
}

// Common elementary types.
var (
	Byte    = Elementary{Width: 1}
	Int32   = Elementary{Width: 4}
	Int64   = Elementary{Width: 8}
	Float32 = Elementary{Width: 4}
	Float64 = Elementary{Width: 8}
)

// Size implements Datatype.
func (e Elementary) Size() int64 { return e.Width }

// Extent implements Datatype.
func (e Elementary) Extent() int64 { return e.Width }

// Flatten implements Datatype.
func (e Elementary) Flatten() extent.List {
	return extent.List{{Offset: 0, Length: e.Width}}
}

// Contiguous repeats Base Count times back to back (MPI_Type_contiguous).
type Contiguous struct {
	Count int
	Base  Datatype
}

// Size implements Datatype.
func (c Contiguous) Size() int64 { return int64(c.Count) * c.Base.Size() }

// Extent implements Datatype.
func (c Contiguous) Extent() int64 { return int64(c.Count) * c.Base.Extent() }

// Flatten implements Datatype.
func (c Contiguous) Flatten() extent.List {
	base := c.Base.Flatten()
	stride := c.Base.Extent()
	out := make(extent.List, 0, c.Count*len(base))
	for i := 0; i < c.Count; i++ {
		for _, e := range base {
			out = append(out, e.Shift(int64(i)*stride))
		}
	}
	return mergeAdjacent(out)
}

// Vector is Count blocks of BlockLen base elements, spaced Stride base
// elements apart (MPI_Type_vector).
type Vector struct {
	Count    int
	BlockLen int
	Stride   int
	Base     Datatype
}

// Size implements Datatype.
func (v Vector) Size() int64 { return int64(v.Count) * int64(v.BlockLen) * v.Base.Size() }

// Extent implements Datatype.
func (v Vector) Extent() int64 {
	if v.Count == 0 {
		return 0
	}
	return (int64(v.Count-1)*int64(v.Stride) + int64(v.BlockLen)) * v.Base.Extent()
}

// Flatten implements Datatype.
func (v Vector) Flatten() extent.List {
	be := v.Base.Extent()
	block := Contiguous{Count: v.BlockLen, Base: v.Base}.Flatten()
	out := make(extent.List, 0, v.Count*len(block))
	for i := 0; i < v.Count; i++ {
		for _, e := range block {
			out = append(out, e.Shift(int64(i)*int64(v.Stride)*be))
		}
	}
	return mergeAdjacent(out)
}

// Indexed places blocks of base elements at explicit displacements, in
// the given order (MPI_Type_indexed). Displacements are in base-extent
// units and must be non-decreasing with non-overlapping blocks.
type Indexed struct {
	BlockLens []int
	Displs    []int64
	Base      Datatype
}

// Validate checks the structural invariants.
func (x Indexed) Validate() error {
	if len(x.BlockLens) != len(x.Displs) {
		return fmt.Errorf("datatype: indexed: %d block lengths vs %d displacements", len(x.BlockLens), len(x.Displs))
	}
	for i := 1; i < len(x.Displs); i++ {
		if x.Displs[i] < x.Displs[i-1]+int64(x.BlockLens[i-1]) {
			return fmt.Errorf("datatype: indexed: block %d overlaps or precedes block %d", i, i-1)
		}
	}
	return nil
}

// Size implements Datatype.
func (x Indexed) Size() int64 {
	var n int64
	for _, b := range x.BlockLens {
		n += int64(b)
	}
	return n * x.Base.Size()
}

// Extent implements Datatype.
func (x Indexed) Extent() int64 {
	if len(x.Displs) == 0 {
		return 0
	}
	last := len(x.Displs) - 1
	return (x.Displs[last] + int64(x.BlockLens[last])) * x.Base.Extent()
}

// Flatten implements Datatype.
func (x Indexed) Flatten() extent.List {
	be := x.Base.Extent()
	var out extent.List
	for i, d := range x.Displs {
		block := Contiguous{Count: x.BlockLens[i], Base: x.Base}.Flatten()
		for _, e := range block {
			out = append(out, e.Shift(d*be))
		}
	}
	return mergeAdjacent(out)
}

// Subarray selects a rectangular sub-block of an N-dimensional array
// stored in row-major (C) order (MPI_Type_create_subarray). All
// coordinates are in elements of Elem.
type Subarray struct {
	Sizes    []int // full array dimensions, slowest first
	Subsizes []int // selected block dimensions
	Starts   []int // block origin
	Elem     Datatype
}

// Validate checks the coordinate invariants.
func (s Subarray) Validate() error {
	n := len(s.Sizes)
	if n == 0 || len(s.Subsizes) != n || len(s.Starts) != n {
		return fmt.Errorf("datatype: subarray: dimension mismatch (%d/%d/%d)", len(s.Sizes), len(s.Subsizes), len(s.Starts))
	}
	for d := 0; d < n; d++ {
		if s.Sizes[d] <= 0 || s.Subsizes[d] <= 0 {
			return fmt.Errorf("datatype: subarray: non-positive size in dim %d", d)
		}
		if s.Starts[d] < 0 || s.Starts[d]+s.Subsizes[d] > s.Sizes[d] {
			return fmt.Errorf("datatype: subarray: block [%d,%d) exceeds size %d in dim %d",
				s.Starts[d], s.Starts[d]+s.Subsizes[d], s.Sizes[d], d)
		}
	}
	return nil
}

// Size implements Datatype.
func (s Subarray) Size() int64 {
	n := int64(1)
	for _, d := range s.Subsizes {
		n *= int64(d)
	}
	return n * s.Elem.Size()
}

// Extent implements Datatype. A subarray's extent is the full array,
// which is what makes tiling file views with it line up.
func (s Subarray) Extent() int64 {
	n := int64(1)
	for _, d := range s.Sizes {
		n *= int64(d)
	}
	return n * s.Elem.Extent()
}

// Flatten implements Datatype: one extent per contiguous row segment
// of the selected block.
func (s Subarray) Flatten() extent.List {
	n := len(s.Sizes)
	ew := s.Elem.Extent()
	rowLen := int64(s.Subsizes[n-1]) * ew

	// Iterate over all index combinations of the outer n-1 dimensions.
	idx := make([]int, n-1)
	var out extent.List
	for {
		// Linear element offset of the row start.
		var off int64
		for d := 0; d < n-1; d++ {
			off = off*int64(s.Sizes[d]) + int64(s.Starts[d]+idx[d])
		}
		off = off*int64(s.Sizes[n-1]) + int64(s.Starts[n-1])
		out = append(out, extent.Extent{Offset: off * ew, Length: rowLen})
		// Advance the odometer.
		d := n - 2
		for ; d >= 0; d-- {
			idx[d]++
			if idx[d] < s.Subsizes[d] {
				break
			}
			idx[d] = 0
		}
		if d < 0 {
			break
		}
	}
	return mergeAdjacent(out)
}

// mergeAdjacent coalesces touching extents without reordering; inputs
// from this package's constructors are already sorted.
func mergeAdjacent(l extent.List) extent.List {
	out := l[:0]
	for _, e := range l {
		if e.Empty() {
			continue
		}
		if n := len(out); n > 0 && out[n-1].End() == e.Offset {
			out[n-1].Length += e.Length
			continue
		}
		out = append(out, e)
	}
	return out
}
