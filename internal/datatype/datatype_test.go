package datatype

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/extent"
)

func TestElementary(t *testing.T) {
	if Byte.Size() != 1 || Int32.Size() != 4 || Int64.Size() != 8 || Float32.Size() != 4 || Float64.Size() != 8 {
		t.Fatal("elementary widths wrong")
	}
	fl := Float64.Flatten()
	if len(fl) != 1 || fl[0] != (extent.Extent{Offset: 0, Length: 8}) {
		t.Fatalf("Flatten = %v", fl)
	}
}

func TestContiguous(t *testing.T) {
	c := Contiguous{Count: 5, Base: Int32}
	if c.Size() != 20 || c.Extent() != 20 {
		t.Fatalf("size/extent = %d/%d", c.Size(), c.Extent())
	}
	fl := c.Flatten()
	// Adjacent elements must merge into a single extent.
	if len(fl) != 1 || fl[0] != (extent.Extent{Offset: 0, Length: 20}) {
		t.Fatalf("Flatten = %v", fl)
	}
}

func TestVector(t *testing.T) {
	// 3 blocks of 2 int32, stride 4 elements: |XX..|XX..|XX|
	v := Vector{Count: 3, BlockLen: 2, Stride: 4, Base: Int32}
	if v.Size() != 24 {
		t.Fatalf("Size = %d", v.Size())
	}
	if v.Extent() != (2*4+2)*4 {
		t.Fatalf("Extent = %d", v.Extent())
	}
	fl := v.Flatten()
	want := extent.List{
		{Offset: 0, Length: 8},
		{Offset: 16, Length: 8},
		{Offset: 32, Length: 8},
	}
	if !fl.Equal(want) {
		t.Fatalf("Flatten = %v, want %v", fl, want)
	}
}

func TestVectorDegenerate(t *testing.T) {
	v := Vector{Count: 0, BlockLen: 2, Stride: 4, Base: Byte}
	if v.Extent() != 0 || v.Size() != 0 || len(v.Flatten()) != 0 {
		t.Fatal("empty vector should be empty")
	}
	// Stride == BlockLen means contiguous.
	v2 := Vector{Count: 3, BlockLen: 2, Stride: 2, Base: Byte}
	fl := v2.Flatten()
	if len(fl) != 1 || fl[0].Length != 6 {
		t.Fatalf("contiguous vector Flatten = %v", fl)
	}
}

func TestIndexed(t *testing.T) {
	x := Indexed{
		BlockLens: []int{2, 1, 3},
		Displs:    []int64{0, 4, 8},
		Base:      Byte,
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if x.Size() != 6 {
		t.Fatalf("Size = %d", x.Size())
	}
	if x.Extent() != 11 {
		t.Fatalf("Extent = %d", x.Extent())
	}
	want := extent.List{
		{Offset: 0, Length: 2},
		{Offset: 4, Length: 1},
		{Offset: 8, Length: 3},
	}
	if !x.Flatten().Equal(want) {
		t.Fatalf("Flatten = %v", x.Flatten())
	}
}

func TestIndexedValidate(t *testing.T) {
	bad := Indexed{BlockLens: []int{2}, Displs: []int64{0, 1}, Base: Byte}
	if bad.Validate() == nil {
		t.Fatal("length mismatch must fail")
	}
	overlap := Indexed{BlockLens: []int{4, 1}, Displs: []int64{0, 2}, Base: Byte}
	if overlap.Validate() == nil {
		t.Fatal("overlapping blocks must fail")
	}
}

func TestSubarray2D(t *testing.T) {
	// 4x6 array of bytes; select rows 1-2, cols 2-4.
	s := Subarray{
		Sizes:    []int{4, 6},
		Subsizes: []int{2, 3},
		Starts:   []int{1, 2},
		Elem:     Byte,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 6 {
		t.Fatalf("Size = %d", s.Size())
	}
	if s.Extent() != 24 {
		t.Fatalf("Extent = %d", s.Extent())
	}
	want := extent.List{
		{Offset: 8, Length: 3},  // row 1: 1*6+2 = 8
		{Offset: 14, Length: 3}, // row 2: 2*6+2 = 14
	}
	if !s.Flatten().Equal(want) {
		t.Fatalf("Flatten = %v, want %v", s.Flatten(), want)
	}
}

func TestSubarray2DWithElemWidth(t *testing.T) {
	s := Subarray{
		Sizes:    []int{3, 4},
		Subsizes: []int{2, 2},
		Starts:   []int{0, 1},
		Elem:     Float64,
	}
	want := extent.List{
		{Offset: 8, Length: 16},  // (0*4+1)*8
		{Offset: 40, Length: 16}, // (1*4+1)*8
	}
	if !s.Flatten().Equal(want) {
		t.Fatalf("Flatten = %v, want %v", s.Flatten(), want)
	}
}

func TestSubarray1D(t *testing.T) {
	s := Subarray{Sizes: []int{10}, Subsizes: []int{4}, Starts: []int{3}, Elem: Byte}
	want := extent.List{{Offset: 3, Length: 4}}
	if !s.Flatten().Equal(want) {
		t.Fatalf("Flatten = %v", s.Flatten())
	}
}

func TestSubarray3D(t *testing.T) {
	s := Subarray{
		Sizes:    []int{2, 3, 4},
		Subsizes: []int{2, 2, 2},
		Starts:   []int{0, 1, 1},
		Elem:     Byte,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Rows at (z,y): (0,1)=0*12+1*4+1=5, (0,2)=9, (1,1)=17, (1,2)=21.
	want := extent.List{
		{Offset: 5, Length: 2},
		{Offset: 9, Length: 2},
		{Offset: 17, Length: 2},
		{Offset: 21, Length: 2},
	}
	if !s.Flatten().Equal(want) {
		t.Fatalf("Flatten = %v, want %v", s.Flatten(), want)
	}
}

func TestSubarrayFullWidthRowsMerge(t *testing.T) {
	// Selecting entire rows must merge into one extent.
	s := Subarray{
		Sizes:    []int{4, 8},
		Subsizes: []int{2, 8},
		Starts:   []int{1, 0},
		Elem:     Byte,
	}
	fl := s.Flatten()
	if len(fl) != 1 || fl[0] != (extent.Extent{Offset: 8, Length: 16}) {
		t.Fatalf("Flatten = %v", fl)
	}
}

func TestSubarrayValidate(t *testing.T) {
	cases := []Subarray{
		{Sizes: []int{}, Subsizes: []int{}, Starts: []int{}, Elem: Byte},
		{Sizes: []int{4}, Subsizes: []int{4, 4}, Starts: []int{0}, Elem: Byte},
		{Sizes: []int{4}, Subsizes: []int{5}, Starts: []int{0}, Elem: Byte},
		{Sizes: []int{4}, Subsizes: []int{2}, Starts: []int{3}, Elem: Byte},
		{Sizes: []int{4}, Subsizes: []int{0}, Starts: []int{0}, Elem: Byte},
	}
	for i, s := range cases {
		if s.Validate() == nil {
			t.Fatalf("case %d must fail validation", i)
		}
	}
}

// TestPropFlattenSizeConsistency: for any valid datatype, the total
// flattened length must equal Size(), all extents must lie within
// [0, Extent()), and the list must be sorted and disjoint.
func TestPropFlattenSizeConsistency(t *testing.T) {
	check := func(d Datatype) bool {
		fl := d.Flatten()
		if fl.TotalLength() != d.Size() {
			return false
		}
		if !fl.IsNormalized() {
			return false
		}
		if len(fl) > 0 && fl[len(fl)-1].End() > d.Extent() {
			return false
		}
		return true
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		elem := []Datatype{Byte, Int32, Float64}[r.Intn(3)]
		switch r.Intn(4) {
		case 0:
			return check(Contiguous{Count: r.Intn(10) + 1, Base: elem})
		case 1:
			bl := r.Intn(5) + 1
			return check(Vector{Count: r.Intn(8) + 1, BlockLen: bl, Stride: bl + r.Intn(5), Base: elem})
		case 2:
			n := r.Intn(4) + 1
			lens := make([]int, n)
			displs := make([]int64, n)
			pos := int64(0)
			for i := 0; i < n; i++ {
				displs[i] = pos + int64(r.Intn(3))
				lens[i] = r.Intn(4) + 1
				pos = displs[i] + int64(lens[i])
			}
			x := Indexed{BlockLens: lens, Displs: displs, Base: elem}
			if x.Validate() != nil {
				return false
			}
			return check(x)
		default:
			dims := r.Intn(3) + 1
			sizes := make([]int, dims)
			subs := make([]int, dims)
			starts := make([]int, dims)
			for d := 0; d < dims; d++ {
				sizes[d] = r.Intn(6) + 2
				subs[d] = r.Intn(sizes[d]) + 1
				starts[d] = r.Intn(sizes[d] - subs[d] + 1)
			}
			s := Subarray{Sizes: sizes, Subsizes: subs, Starts: starts, Elem: elem}
			if s.Validate() != nil {
				return false
			}
			return check(s)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNestedTypes(t *testing.T) {
	// A vector of contiguous pairs: nesting must compose.
	pair := Contiguous{Count: 2, Base: Int32}
	v := Vector{Count: 2, BlockLen: 1, Stride: 2, Base: pair}
	fl := v.Flatten()
	want := extent.List{
		{Offset: 0, Length: 8},
		{Offset: 16, Length: 8},
	}
	if !fl.Equal(want) {
		t.Fatalf("Flatten = %v, want %v", fl, want)
	}
	if v.Size() != 16 {
		t.Fatalf("Size = %d", v.Size())
	}
}
