package extent

import "fmt"

// Vec pairs an extent list with a single flat memory buffer laid out in
// list order, mirroring the List I/O convention: the first l[0].Length
// bytes of Buf belong to l[0], the next l[1].Length bytes to l[1], and
// so on. This is the unit of a non-contiguous read or write request.
type Vec struct {
	Extents List
	Buf     []byte
}

// NewVec validates that the buffer length matches the total extent
// length and returns the vector.
func NewVec(extents List, buf []byte) (Vec, error) {
	if err := extents.Validate(); err != nil {
		return Vec{}, err
	}
	if got, want := int64(len(buf)), extents.TotalLength(); got != want {
		return Vec{}, fmt.Errorf("extent: buffer length %d does not match extent total %d", got, want)
	}
	return Vec{Extents: extents, Buf: buf}, nil
}

// Slice returns the sub-buffer of Buf corresponding to extent index i.
func (v Vec) Slice(i int) []byte {
	var start int64
	for j := 0; j < i; j++ {
		start += v.Extents[j].Length
	}
	return v.Buf[start : start+v.Extents[i].Length]
}

// ForEach invokes fn for every (extent, sub-buffer) pair in order.
// Iteration stops at the first error.
func (v Vec) ForEach(fn func(e Extent, b []byte) error) error {
	var start int64
	for _, e := range v.Extents {
		if err := fn(e, v.Buf[start:start+e.Length]); err != nil {
			return err
		}
		start += e.Length
	}
	return nil
}

// ScatterInto copies the vector's data into a flat image buffer that
// represents the file contents starting at base. Bytes outside the image
// are ignored. Used by tests and the verifier to materialize expected
// file states.
func (v Vec) ScatterInto(image []byte, base int64) {
	var start int64
	for _, e := range v.Extents {
		src := v.Buf[start : start+e.Length]
		start += e.Length
		lo := e.Offset - base
		for i, b := range src {
			p := lo + int64(i)
			if p >= 0 && p < int64(len(image)) {
				image[p] = b
			}
		}
	}
}

// GatherFrom fills the vector's buffer from a flat image representing
// file contents starting at base. Bytes outside the image read as zero.
func (v Vec) GatherFrom(image []byte, base int64) {
	var start int64
	for _, e := range v.Extents {
		dst := v.Buf[start : start+e.Length]
		start += e.Length
		lo := e.Offset - base
		for i := range dst {
			p := lo + int64(i)
			if p >= 0 && p < int64(len(image)) {
				dst[i] = image[p]
			} else {
				dst[i] = 0
			}
		}
	}
}
