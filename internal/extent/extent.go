// Package extent provides byte-range primitives used throughout the
// storage stack: single extents, normalized extent lists, and the set
// operations (merge, intersect, subtract, overlap detection) needed to
// implement List I/O-style non-contiguous accesses.
//
// An Extent is a half-open interval [Offset, Offset+Length) in a flat
// byte address space. An extent with Length == 0 is empty and is removed
// by normalization.
package extent

import (
	"errors"
	"fmt"
	"sort"
)

// Extent is a half-open byte range [Offset, Offset+Length).
type Extent struct {
	Offset int64
	Length int64
}

// End returns the exclusive end offset of the extent.
func (e Extent) End() int64 { return e.Offset + e.Length }

// Empty reports whether the extent covers no bytes.
func (e Extent) Empty() bool { return e.Length <= 0 }

// Contains reports whether off lies inside the extent.
func (e Extent) Contains(off int64) bool {
	return off >= e.Offset && off < e.End()
}

// Overlaps reports whether the two extents share at least one byte.
func (e Extent) Overlaps(o Extent) bool {
	return e.Offset < o.End() && o.Offset < e.End() && !e.Empty() && !o.Empty()
}

// Intersect returns the overlapping part of two extents. The returned
// extent is empty if they do not overlap.
func (e Extent) Intersect(o Extent) Extent {
	off := max64(e.Offset, o.Offset)
	end := min64(e.End(), o.End())
	if end <= off {
		return Extent{}
	}
	return Extent{Offset: off, Length: end - off}
}

// Union returns the smallest extent covering both inputs. It is only
// meaningful when the extents overlap or touch; callers wanting exact set
// union should use List operations.
func (e Extent) Union(o Extent) Extent {
	if e.Empty() {
		return o
	}
	if o.Empty() {
		return e
	}
	off := min64(e.Offset, o.Offset)
	end := max64(e.End(), o.End())
	return Extent{Offset: off, Length: end - off}
}

// Shift returns the extent translated by delta bytes.
func (e Extent) Shift(delta int64) Extent {
	return Extent{Offset: e.Offset + delta, Length: e.Length}
}

func (e Extent) String() string {
	return fmt.Sprintf("[%d,%d)", e.Offset, e.End())
}

// Validate reports an error for negative offsets or lengths.
func (e Extent) Validate() error {
	if e.Offset < 0 {
		return fmt.Errorf("extent: negative offset %d", e.Offset)
	}
	if e.Length < 0 {
		return fmt.Errorf("extent: negative length %d", e.Length)
	}
	return nil
}

// ErrUnsorted is returned by strict constructors when input extents are
// not sorted or overlap each other.
var ErrUnsorted = errors.New("extent: list not sorted/disjoint")

// List is a sequence of extents. A normalized list is sorted by offset,
// contains no empty extents, and adjacent or overlapping extents are
// coalesced. Most consumers require normalized lists; use Normalize.
type List []Extent

// Clone returns a deep copy of the list.
func (l List) Clone() List {
	if l == nil {
		return nil
	}
	out := make(List, len(l))
	copy(out, l)
	return out
}

// TotalLength returns the sum of the lengths of all extents. For a
// normalized list this equals the number of distinct bytes covered.
func (l List) TotalLength() int64 {
	var n int64
	for _, e := range l {
		n += e.Length
	}
	return n
}

// Validate checks every extent for negative fields.
func (l List) Validate() error {
	for i, e := range l {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("extent %d: %w", i, err)
		}
	}
	return nil
}

// IsNormalized reports whether the list is sorted, gapless-coalesced and
// free of empty extents.
func (l List) IsNormalized() bool {
	for i, e := range l {
		if e.Empty() {
			return false
		}
		if i > 0 && l[i-1].End() >= e.Offset {
			return false
		}
	}
	return true
}

// Normalize returns a sorted copy with empty extents dropped and
// overlapping or adjacent extents merged.
func (l List) Normalize() List {
	tmp := make(List, 0, len(l))
	for _, e := range l {
		if !e.Empty() {
			tmp = append(tmp, e)
		}
	}
	sort.Slice(tmp, func(i, j int) bool {
		if tmp[i].Offset != tmp[j].Offset {
			return tmp[i].Offset < tmp[j].Offset
		}
		return tmp[i].Length < tmp[j].Length
	})
	out := make(List, 0, len(tmp))
	for _, e := range tmp {
		if n := len(out); n > 0 && out[n-1].End() >= e.Offset {
			if e.End() > out[n-1].End() {
				out[n-1].Length = e.End() - out[n-1].Offset
			}
			continue
		}
		out = append(out, e)
	}
	return out
}

// Bounding returns the smallest single extent covering every extent in
// the list, i.e. the byte range a bounding-range lock must cover. The
// zero extent is returned for an empty list.
func (l List) Bounding() Extent {
	first := true
	var lo, hi int64
	for _, e := range l {
		if e.Empty() {
			continue
		}
		if first {
			lo, hi = e.Offset, e.End()
			first = false
			continue
		}
		lo = min64(lo, e.Offset)
		hi = max64(hi, e.End())
	}
	if first {
		return Extent{}
	}
	return Extent{Offset: lo, Length: hi - lo}
}

// Overlaps reports whether any byte is covered by both lists. Both lists
// may be un-normalized; the check is performed on normalized copies.
func (l List) Overlaps(o List) bool {
	a, b := l, o
	if !a.IsNormalized() {
		a = a.Normalize()
	}
	if !b.IsNormalized() {
		b = b.Normalize()
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Overlaps(b[j]) {
			return true
		}
		if a[i].End() <= b[j].End() {
			i++
		} else {
			j++
		}
	}
	return false
}

// IntersectsExtent reports whether the normalized list covers any byte
// of e, using binary search. The receiver must be normalized.
func (l List) IntersectsExtent(e Extent) bool {
	if e.Empty() || len(l) == 0 {
		return false
	}
	// First extent whose end is beyond e.Offset.
	i := sort.Search(len(l), func(i int) bool { return l[i].End() > e.Offset })
	return i < len(l) && l[i].Offset < e.End()
}

// Intersect returns the normalized set intersection of two lists.
func (l List) Intersect(o List) List {
	a := l.Normalize()
	b := o.Normalize()
	var out List
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if x := a[i].Intersect(b[j]); !x.Empty() {
			out = append(out, x)
		}
		if a[i].End() <= b[j].End() {
			i++
		} else {
			j++
		}
	}
	return out
}

// Subtract returns the normalized set difference l − o.
func (l List) Subtract(o List) List {
	a := l.Normalize()
	b := o.Normalize()
	var out List
	j := 0
	for _, e := range a {
		cur := e
		for j < len(b) && b[j].End() <= cur.Offset {
			j++
		}
		k := j
		for k < len(b) && b[k].Offset < cur.End() {
			x := cur.Intersect(b[k])
			if x.Empty() {
				k++
				continue
			}
			if x.Offset > cur.Offset {
				out = append(out, Extent{Offset: cur.Offset, Length: x.Offset - cur.Offset})
			}
			if x.End() >= cur.End() {
				cur = Extent{}
				break
			}
			cur = Extent{Offset: x.End(), Length: cur.End() - x.End()}
			k++
		}
		if !cur.Empty() {
			out = append(out, cur)
		}
	}
	return out
}

// Union returns the normalized set union of two lists.
func (l List) Union(o List) List {
	joined := make(List, 0, len(l)+len(o))
	joined = append(joined, l...)
	joined = append(joined, o...)
	return joined.Normalize()
}

// CoveredBy reports whether every byte of l is also covered by o.
func (l List) CoveredBy(o List) bool {
	return len(l.Subtract(o)) == 0
}

// Equal reports whether two normalized lists cover exactly the same byte
// set. Inputs are normalized defensively.
func (l List) Equal(o List) bool {
	a := l.Normalize()
	b := o.Normalize()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SplitAt cuts every extent of the (normalized) list at the given
// boundary interval size, producing extents that never cross a multiple
// of stride. Used to map extents onto fixed-size pages or stripes.
func (l List) SplitAt(stride int64) List {
	if stride <= 0 {
		return l.Clone()
	}
	var out List
	for _, e := range l {
		off := e.Offset
		remaining := e.Length
		for remaining > 0 {
			boundary := (off/stride + 1) * stride
			n := min64(remaining, boundary-off)
			out = append(out, Extent{Offset: off, Length: n})
			off += n
			remaining -= n
		}
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
