package extent

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExtentBasics(t *testing.T) {
	e := Extent{Offset: 10, Length: 5}
	if got := e.End(); got != 15 {
		t.Fatalf("End() = %d, want 15", got)
	}
	if e.Empty() {
		t.Fatal("extent should not be empty")
	}
	if !e.Contains(10) || !e.Contains(14) {
		t.Fatal("Contains should include both boundaries of [10,15)")
	}
	if e.Contains(15) || e.Contains(9) {
		t.Fatal("Contains should exclude 15 and 9")
	}
	if (Extent{Offset: 3}).Empty() != true {
		t.Fatal("zero-length extent must be empty")
	}
}

func TestExtentOverlapIntersect(t *testing.T) {
	cases := []struct {
		a, b    Extent
		overlap bool
		inter   Extent
	}{
		{Extent{0, 10}, Extent{5, 10}, true, Extent{5, 5}},
		{Extent{0, 10}, Extent{10, 5}, false, Extent{}},
		{Extent{0, 10}, Extent{0, 10}, true, Extent{0, 10}},
		{Extent{5, 1}, Extent{0, 100}, true, Extent{5, 1}},
		{Extent{0, 0}, Extent{0, 10}, false, Extent{}},
	}
	for i, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.overlap {
			t.Errorf("case %d: Overlaps = %v, want %v", i, got, c.overlap)
		}
		if got := c.b.Overlaps(c.a); got != c.overlap {
			t.Errorf("case %d: Overlaps not symmetric", i)
		}
		if got := c.a.Intersect(c.b); got != c.inter {
			t.Errorf("case %d: Intersect = %v, want %v", i, got, c.inter)
		}
	}
}

func TestExtentValidate(t *testing.T) {
	if err := (Extent{Offset: -1, Length: 2}).Validate(); err == nil {
		t.Fatal("negative offset must fail validation")
	}
	if err := (Extent{Offset: 1, Length: -2}).Validate(); err == nil {
		t.Fatal("negative length must fail validation")
	}
	if err := (Extent{Offset: 0, Length: 0}).Validate(); err != nil {
		t.Fatalf("empty extent should validate: %v", err)
	}
}

func TestNormalizeMergesAdjacentAndOverlapping(t *testing.T) {
	l := List{{20, 5}, {0, 10}, {10, 5}, {22, 1}, {40, 0}}
	n := l.Normalize()
	want := List{{0, 15}, {20, 5}}
	if !n.Equal(want) {
		t.Fatalf("Normalize = %v, want %v", n, want)
	}
	if !n.IsNormalized() {
		t.Fatal("result of Normalize must be normalized")
	}
}

func TestNormalizeEmpty(t *testing.T) {
	if got := (List{}).Normalize(); len(got) != 0 {
		t.Fatalf("Normalize(empty) = %v", got)
	}
	if got := (List{{0, 0}, {5, 0}}).Normalize(); len(got) != 0 {
		t.Fatalf("Normalize(all-empty) = %v", got)
	}
}

func TestBounding(t *testing.T) {
	l := List{{100, 10}, {5, 2}, {50, 1}}
	if got, want := l.Bounding(), (Extent{5, 105}); got != want {
		t.Fatalf("Bounding = %v, want %v", got, want)
	}
	if got := (List{}).Bounding(); !got.Empty() {
		t.Fatalf("Bounding(empty) = %v, want empty", got)
	}
}

func TestListOverlaps(t *testing.T) {
	a := List{{0, 10}, {20, 10}}
	b := List{{10, 10}, {30, 5}}
	if a.Overlaps(b) {
		t.Fatal("disjoint lists reported overlapping")
	}
	c := List{{25, 1}}
	if !a.Overlaps(c) {
		t.Fatal("overlapping lists reported disjoint")
	}
	if a.Overlaps(List{}) {
		t.Fatal("overlap with empty list")
	}
}

func TestIntersectSubtractUnion(t *testing.T) {
	a := List{{0, 100}}
	b := List{{10, 10}, {50, 10}}
	inter := a.Intersect(b)
	if !inter.Equal(b) {
		t.Fatalf("Intersect = %v, want %v", inter, b)
	}
	diff := a.Subtract(b)
	want := List{{0, 10}, {20, 30}, {60, 40}}
	if !diff.Equal(want) {
		t.Fatalf("Subtract = %v, want %v", diff, want)
	}
	u := diff.Union(b)
	if !u.Equal(a) {
		t.Fatalf("Union = %v, want %v", u, a)
	}
}

func TestSubtractEdges(t *testing.T) {
	a := List{{10, 10}}
	if got := a.Subtract(List{{0, 100}}); len(got) != 0 {
		t.Fatalf("full subtraction = %v, want empty", got)
	}
	if got := a.Subtract(List{}); !got.Equal(a) {
		t.Fatalf("subtract empty = %v, want %v", got, a)
	}
	// Punch a hole in the middle.
	got := a.Subtract(List{{14, 2}})
	want := List{{10, 4}, {16, 4}}
	if !got.Equal(want) {
		t.Fatalf("hole subtraction = %v, want %v", got, want)
	}
}

func TestCoveredBy(t *testing.T) {
	a := List{{5, 5}, {20, 5}}
	if !a.CoveredBy(List{{0, 100}}) {
		t.Fatal("a should be covered by [0,100)")
	}
	if a.CoveredBy(List{{0, 22}}) {
		t.Fatal("a should not be covered by [0,22)")
	}
}

func TestSplitAt(t *testing.T) {
	l := List{{5, 20}}
	got := l.SplitAt(8)
	want := List{{5, 3}, {8, 8}, {16, 8}, {24, 1}}
	if len(got) != len(want) {
		t.Fatalf("SplitAt = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SplitAt[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// No extent may cross a stride boundary.
	for _, e := range got {
		if e.Offset/8 != (e.End()-1)/8 {
			t.Fatalf("extent %v crosses stride boundary", e)
		}
	}
	if got := l.SplitAt(0); !got.Equal(l) {
		t.Fatalf("SplitAt(0) should be identity, got %v", got)
	}
}

func TestTotalLength(t *testing.T) {
	l := List{{0, 3}, {10, 7}}
	if got := l.TotalLength(); got != 10 {
		t.Fatalf("TotalLength = %d, want 10", got)
	}
}

// genList builds a random small extent list for property tests.
func genList(r *rand.Rand) List {
	n := r.Intn(8)
	l := make(List, 0, n)
	for i := 0; i < n; i++ {
		l = append(l, Extent{Offset: int64(r.Intn(200)), Length: int64(r.Intn(40))})
	}
	return l
}

func TestPropNormalizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := genList(r)
		n1 := l.Normalize()
		n2 := n1.Normalize()
		return n1.Equal(n2) && n1.IsNormalized()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropNormalizePreservesCoverage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := genList(r)
		n := l.Normalize()
		// Per-byte coverage must be identical over the probed domain.
		for off := int64(0); off < 250; off++ {
			inL := false
			for _, e := range l {
				if e.Contains(off) {
					inL = true
					break
				}
			}
			inN := false
			for _, e := range n {
				if e.Contains(off) {
					inN = true
					break
				}
			}
			if inL != inN {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSetAlgebra(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genList(r)
		b := genList(r)
		inter := a.Intersect(b)
		diff := a.Subtract(b)
		// (a∩b) ∪ (a−b) == normalized a
		if !inter.Union(diff).Equal(a.Normalize()) {
			return false
		}
		// a−b and b are disjoint.
		if diff.Overlaps(b) {
			return false
		}
		// a∩b is covered by both.
		if !inter.CoveredBy(a) || !inter.CoveredBy(b) {
			return false
		}
		// Overlap symmetry and consistency with intersection.
		if a.Overlaps(b) != (inter.TotalLength() > 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSplitAtPreservesBytes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := genList(r).Normalize()
		stride := int64(r.Intn(16) + 1)
		s := l.SplitAt(stride)
		if s.TotalLength() != l.TotalLength() {
			return false
		}
		return s.Equal(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVecValidation(t *testing.T) {
	_, err := NewVec(List{{0, 4}}, make([]byte, 3))
	if err == nil {
		t.Fatal("mismatched buffer must fail")
	}
	_, err = NewVec(List{{-1, 4}}, make([]byte, 4))
	if err == nil {
		t.Fatal("invalid extent must fail")
	}
	v, err := NewVec(List{{0, 2}, {10, 2}}, []byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Slice(1); got[0] != 3 || got[1] != 4 {
		t.Fatalf("Slice(1) = %v", got)
	}
}

func TestVecScatterGatherRoundTrip(t *testing.T) {
	v, err := NewVec(List{{2, 3}, {8, 2}}, []byte{10, 11, 12, 13, 14})
	if err != nil {
		t.Fatal(err)
	}
	image := make([]byte, 12)
	v.ScatterInto(image, 0)
	want := []byte{0, 0, 10, 11, 12, 0, 0, 0, 13, 14, 0, 0}
	for i := range want {
		if image[i] != want[i] {
			t.Fatalf("image[%d] = %d, want %d", i, image[i], want[i])
		}
	}
	out, _ := NewVec(v.Extents, make([]byte, 5))
	out.GatherFrom(image, 0)
	for i := range v.Buf {
		if out.Buf[i] != v.Buf[i] {
			t.Fatalf("gather mismatch at %d", i)
		}
	}
}

func TestVecForEach(t *testing.T) {
	v, _ := NewVec(List{{0, 1}, {5, 2}}, []byte{9, 7, 8})
	var seen []Extent
	var bytes []byte
	err := v.ForEach(func(e Extent, b []byte) error {
		seen = append(seen, e)
		bytes = append(bytes, b...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != (Extent{0, 1}) || seen[1] != (Extent{5, 2}) {
		t.Fatalf("seen = %v", seen)
	}
	if string(bytes) != string([]byte{9, 7, 8}) {
		t.Fatalf("bytes = %v", bytes)
	}
}

func TestIntersectsExtent(t *testing.T) {
	l := List{{Offset: 10, Length: 10}, {Offset: 40, Length: 5}}
	cases := []struct {
		e    Extent
		want bool
	}{
		{Extent{Offset: 0, Length: 10}, false},
		{Extent{Offset: 0, Length: 11}, true},
		{Extent{Offset: 19, Length: 1}, true},
		{Extent{Offset: 20, Length: 20}, false},
		{Extent{Offset: 44, Length: 100}, true},
		{Extent{Offset: 45, Length: 100}, false},
		{Extent{Offset: 15, Length: 0}, false},
	}
	for i, c := range cases {
		if got := l.IntersectsExtent(c.e); got != c.want {
			t.Fatalf("case %d: IntersectsExtent(%v) = %v, want %v", i, c.e, got, c.want)
		}
	}
	if (List{}).IntersectsExtent(Extent{Offset: 0, Length: 1}) {
		t.Fatal("empty list must not intersect")
	}
}

func TestPropIntersectsExtentMatchesOverlaps(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := genList(r).Normalize()
		e := Extent{Offset: int64(r.Intn(250)), Length: int64(r.Intn(40))}
		return l.IntersectsExtent(e) == l.Overlaps(List{e})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
