// Package cluster wires complete deployments of both storage systems —
// the versioning service (version manager + metadata shards + data
// providers) and the Lustre-like locking file system — either
// unmetered for fast tests or with the synthetic Grid'5000-style cost
// models for experiments. Examples, commands and the benchmark harness
// all build their systems here.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/blob"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/iosim"
	"repro/internal/lockfs"
	"repro/internal/metadata"
	"repro/internal/metrics"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

// Env describes the simulated hardware: storage elements and their
// cost models. The zero value of the model fields means "free"
// (unit-test speed); Metered() fills in the representative Grid'5000
// models.
type Env struct {
	// Providers is the number of data providers (versioning) or OSTs
	// (locking baseline); both systems always get the same number so
	// comparisons are fair.
	Providers int
	// MetaShards is the number of metadata providers (versioning only).
	MetaShards int
	// ChunkSize is the stripe unit: the versioning page size and the
	// locking file system's stripe size.
	ChunkSize int64
	// Replicas is the replication degree R of the versioning data
	// layer: every chunk is stored on R distinct providers. 0 or 1
	// means no replication. Must not exceed Providers.
	Replicas int
	// Domains splits the data providers into that many failure domains
	// (racks/zones): equal contiguous blocks labeled zone0, zone1, ...
	// Replica placement then spreads each chunk's R copies across
	// distinct domains — with Domains >= Replicas the spread is an
	// invariant (writes fail typed rather than co-locate), so losing
	// one whole domain never loses a published byte. 0 or 1 keeps the
	// flat single-domain pool of earlier PRs.
	Domains int
	// WriteQuorum is how many of the R copies (or, with Coding, the
	// k+m fragments) must land for a write to commit. 0 selects the
	// default of R-1 (minimum 1) — with Coding, k+m-1 (minimum k) —
	// which lets a write survive the mid-flight loss of one provider.
	WriteQuorum int
	// Coding selects erasure-coded chunk placement instead of R-way
	// replication: "rs-k+m" (e.g. "rs-4+2") stripes every chunk into k
	// data + m parity fragments on k+m distinct providers, surviving
	// any m fragment losses at a storage overhead of (k+m)/k instead
	// of R. Mutually exclusive with Replicas > 1; requires k+m <=
	// Providers. Empty keeps replication. Boot-time only — a pool
	// written under one mode must not be reopened under the other.
	Coding string

	// SelfHeal enables the autonomous repair loop: an error-driven
	// provider HealthMonitor wired into the router plus a core.Healer
	// (background scrubber + bounded read-repair queue). Off by
	// default: deployments then behave exactly as before, with
	// replication managed administratively (bsctl down/repair).
	SelfHeal bool
	// FailThreshold is the consecutive-error count that marks a
	// provider down (SelfHeal; 0 = default 3).
	FailThreshold int
	// Probation is how long a detected-down provider sits out before
	// health probes may revive it (SelfHeal; 0 = default 2s).
	Probation time.Duration
	// ScrubRate caps chunk replica verifications per healer tick
	// (SelfHeal; 0 = default 64).
	ScrubRate int
	// RepairRate caps re-replications per healer tick (SelfHeal;
	// 0 = default 4).
	RepairRate int
	// RepairQueue bounds the repair queue depth (SelfHeal; 0 = 256).
	RepairQueue int
	// FaultInjection wraps every provider's chunk store in a
	// chunk.FaultStore (exposed as Versioning.Faults) so tests can
	// kill a machine at the store level — the failure the health
	// monitor must detect from errors alone.
	FaultInjection bool
	// ScrubNewestFirst makes the scrubber walk versions newest-first
	// (recently written versions are the most likely under-replicated
	// after a loss); default is the historical oldest-first order.
	ScrubNewestFirst bool

	// GC enables the version-lifecycle garbage collector (core.Reaper):
	// dropped versions' exclusively referenced chunks are deleted from
	// every reachable replica at a bounded rate. Off by default —
	// versions then behave exactly as before (retained forever unless
	// the operator drops them, and even then nothing is reclaimed).
	GC bool
	// RetainLast, with GC, applies the retention policy automatically:
	// each blob keeps its newest RetainLast versions (0 = manual drops
	// only).
	RetainLast int
	// GCRate caps chunk deletions per reaper tick (GC; 0 = default 4).
	GCRate int
	// GCWalkRate caps retained-ref walk steps per reaper tick (GC;
	// 0 = default 64).
	GCWalkRate int
	// GCQueue bounds the delete queue depth (GC; 0 = 256).
	GCQueue int

	// ReadCache enables the hot-path read tier's shared bounded cache:
	// the router serves repeated chunk reads and fresh replica-set
	// hints from it, invalidating on every placement change, blob
	// handles share it for hints, and (with GC on) the reaper's hint
	// walk rewrites stale metadata hints into it. Off by default.
	ReadCache bool
	// CacheBytes bounds the read cache footprint (ReadCache;
	// 0 = default 64 MiB).
	CacheBytes int64
	// CacheShards is the cache's fixed shard count, rounded up to a
	// power of two (ReadCache; 0 = default 16).
	CacheShards int
	// LocalDomain, when set, declares the failure domain this
	// deployment's reads originate from: the router prefers
	// same-domain replicas and counts cross-domain bytes avoided
	// (Router.ReadLocality). Works with or without ReadCache.
	LocalDomain string

	// StoreURL selects the chunk store backend of every data provider
	// via the chunk backend factory: "mem://" (the default when empty),
	// "disk:///path" (one per-provider subdirectory under path),
	// "null://" (discard payloads, bench-only), optionally wrapped with
	// the "fault+" prefix. FaultInjection composes with any backend —
	// the factory's store is wrapped in a chunk.FaultStore and the
	// handles exposed as Versioning.Faults.
	StoreURL string

	DataModel iosim.CostModel // per provider / OST
	MetaModel iosim.CostModel // per metadata shard
	CtrlModel iosim.CostModel // version manager, lock manager, detector RPCs

	// VMBatch configures the version manager's group-commit pipeline
	// (versioning deployments only). The zero value disables batching:
	// one control round trip per request, the pre-batching behavior.
	VMBatch vmanager.BatchConfig
	// VMShards partitions the control plane: blobs are spread across
	// that many independent version-manager shards by a stable hash of
	// the blob ID, each shard its own control server (own lock, own
	// exclusive meter, own group-commit combiners). 0 or 1 keeps the
	// single manager of earlier PRs.
	VMShards int
}

// Default returns the unmetered environment used by tests.
func Default() Env {
	return Env{Providers: 8, MetaShards: 8, ChunkSize: 64 << 10}
}

// Metered returns the experiment environment: every storage server
// charges a per-op latency and sustains finite bandwidth, matching the
// relative magnitudes of a cluster testbed (100µs/op and 1 GiB/s per
// data server, 20µs per metadata/control RPC).
func Metered() Env {
	e := Default()
	e.DataModel = iosim.DefaultNetwork()
	e.MetaModel = iosim.CostModel{PerOp: 20 * time.Microsecond, BytesPerSec: 4 << 30}
	e.CtrlModel = iosim.CostModel{PerOp: 50 * time.Microsecond, BytesPerSec: 16 << 30}
	return e
}

// Validate checks the environment.
func (e Env) Validate() error {
	if e.Providers < 1 {
		return fmt.Errorf("cluster: need at least one provider, got %d", e.Providers)
	}
	if e.MetaShards < 1 {
		return fmt.Errorf("cluster: need at least one metadata shard, got %d", e.MetaShards)
	}
	if e.ChunkSize < 1 {
		return fmt.Errorf("cluster: chunk size %d must be positive", e.ChunkSize)
	}
	if e.Replicas > e.Providers {
		return fmt.Errorf("cluster: %d replicas exceed %d providers", e.Replicas, e.Providers)
	}
	if e.Domains < 0 {
		return fmt.Errorf("cluster: negative domain count %d", e.Domains)
	}
	if e.Domains > e.Providers {
		return fmt.Errorf("cluster: %d domains exceed %d providers", e.Domains, e.Providers)
	}
	if k, m, err := provider.ParseCoding(e.Coding); err != nil {
		return fmt.Errorf("cluster: %w", err)
	} else if e.Coding != "" {
		if e.Replicas > 1 {
			return fmt.Errorf("cluster: coding %q is mutually exclusive with %d replicas", e.Coding, e.Replicas)
		}
		if k+m > e.Providers {
			return fmt.Errorf("cluster: coding %q needs %d providers, have %d", e.Coding, k+m, e.Providers)
		}
		if e.WriteQuorum != 0 && (e.WriteQuorum < k || e.WriteQuorum > k+m) {
			return fmt.Errorf("cluster: write quorum %d outside [%d, %d] for coding %q", e.WriteQuorum, k, k+m, e.Coding)
		}
	} else if r := max(e.Replicas, 1); e.WriteQuorum > r {
		return fmt.Errorf("cluster: write quorum %d exceeds %d replicas", e.WriteQuorum, r)
	}
	if e.VMShards < 0 {
		return fmt.Errorf("cluster: negative vmanager shard count %d", e.VMShards)
	}
	if e.StoreURL != "" {
		if err := chunk.ValidStoreURL(e.StoreURL); err != nil {
			return fmt.Errorf("cluster: %w", err)
		}
	}
	return nil
}

// Versioning is a full in-process deployment of the paper's storage
// service. Health and Healer are non-nil only when Env.SelfHeal is
// set; Faults is non-nil only with Env.FaultInjection.
type Versioning struct {
	VM        *vmanager.Sharded
	Meta      *metadata.Store
	Providers *provider.Manager
	Router    *provider.Router
	Health    *provider.HealthMonitor
	Healer    *core.Healer
	Reaper    *core.Reaper
	Cache     *provider.ReadCache // non-nil only with Env.ReadCache
	Faults    []*chunk.FaultStore
	// Metrics is the deployment-wide registry every component reports
	// into: vmanager ticket/commit/publish, chunk put/get, cache,
	// repair and reap counters plus their latency histograms. Always
	// non-nil.
	Metrics *metrics.Registry
	env     Env
}

// NewVersioning boots the service.
func NewVersioning(env Env) (*Versioning, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	var mgr *provider.Manager
	var faults []*chunk.FaultStore
	switch {
	case env.StoreURL != "":
		var err error
		mgr, faults, err = provider.NewURLPoolInDomains(env.StoreURL, env.Providers, env.Domains, env.DataModel, env.FaultInjection)
		if err != nil {
			return nil, fmt.Errorf("cluster: open store %q: %w", env.StoreURL, err)
		}
	case env.FaultInjection:
		mgr, faults = provider.NewFaultPoolInDomains(env.Providers, env.Domains, env.DataModel)
	default:
		mgr, _ = provider.NewPoolInDomains(env.Providers, env.Domains, env.DataModel)
	}
	reg := metrics.NewRegistry()
	vm := vmanager.NewSharded(env.CtrlModel, max(env.VMShards, 1))
	vm.SetBatching(env.VMBatch)
	vm.SetMetrics(reg)
	router := provider.NewRouter(mgr)
	router.SetMetrics(reg)
	router.SetReplicas(env.Replicas)
	if env.Coding != "" {
		k, m, _ := provider.ParseCoding(env.Coding) // Validate already vetted it
		if err := router.SetCoding(k, m); err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
	}
	router.SetWriteQuorum(env.WriteQuorum)
	if env.LocalDomain != "" {
		router.SetLocalDomain(env.LocalDomain)
	}
	var cache *provider.ReadCache
	if env.ReadCache {
		cache = provider.NewReadCache(provider.ReadCacheConfig{
			Shards:   env.CacheShards,
			MaxBytes: env.CacheBytes,
		})
		cache.SetMetrics(reg)
		router.SetReadCache(cache)
	}
	v := &Versioning{
		VM:        vm,
		Meta:      metadata.NewStore(env.MetaShards, env.MetaModel),
		Providers: mgr,
		Router:    router,
		Cache:     cache,
		Faults:    faults,
		Metrics:   reg,
		env:       env,
	}
	if env.SelfHeal {
		v.Health = provider.NewHealthMonitor(mgr, provider.HealthConfig{
			Threshold: env.FailThreshold,
			Probation: env.Probation,
		})
		router.SetHealthMonitor(v.Health)
		order := core.OldestFirst
		if env.ScrubNewestFirst {
			order = core.NewestFirst
		}
		v.Healer = core.NewHealer(router, v.Health, core.HealerConfig{
			ScrubChunksPerTick: env.ScrubRate,
			RepairsPerTick:     env.RepairRate,
			QueueDepth:         env.RepairQueue,
			Order:              order,
		})
		v.Healer.SetMetrics(reg)
		router.SetDegradedHandler(v.Healer.EnqueueRepair)
	}
	if env.GC {
		v.Reaper = core.NewReaper(router, core.ReaperConfig{
			RetainLast:        env.RetainLast,
			DeletesPerTick:    env.GCRate,
			WalkChunksPerTick: env.GCWalkRate,
			QueueDepth:        env.GCQueue,
		})
		v.Reaper.SetMetrics(reg)
		if cache != nil {
			v.Reaper.SetReadCache(cache)
		}
	}
	return v, nil
}

// Services returns the client-facing service bundle.
func (v *Versioning) Services() blob.Services {
	return blob.Services{VM: v.VM, Meta: v.Meta, Data: v.Router, Cache: v.Cache}
}

// Backend creates a versioning backend over a new blob sized to cover
// span bytes (rounded up to a power-of-two multiple of the chunk size).
// With SelfHeal on, the new blob's published versions join the
// healer's scrub walk; with GC on, they join the reaper's collection
// walk too.
func (v *Versioning) Backend(blobID uint64, span int64) (*core.VersioningBackend, error) {
	geo := segtree.Geometry{Capacity: CapacityFor(span, v.env.ChunkSize), Page: v.env.ChunkSize}
	be, err := core.NewVersioning(v.Services(), blobID, geo)
	if err != nil {
		return nil, err
	}
	be.SetMetrics(v.Metrics)
	if v.Healer != nil {
		v.Healer.RegisterBlob(be.Blob())
	}
	if v.Reaper != nil {
		v.Reaper.RegisterBlob(be.Blob())
	}
	return be, nil
}

// Lustre is a deployment of the locking baseline.
type Lustre struct {
	FS  *lockfs.FS
	env Env
}

// NewLustre boots the locking file system with the same storage
// resources as the versioning deployment would get.
func NewLustre(env Env) (*Lustre, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	fs, err := lockfs.New(lockfs.Config{
		OSTs:       env.Providers,
		StripeSize: env.ChunkSize,
		OSTModel:   env.DataModel,
		LockModel:  env.CtrlModel,
	})
	if err != nil {
		return nil, err
	}
	return &Lustre{FS: fs, env: env}, nil
}

// File creates the shared file.
func (l *Lustre) File(name string) (*lockfs.File, error) {
	return l.FS.Create(name)
}

// CapacityFor rounds span up to the smallest power-of-two multiple of
// page that covers it.
func CapacityFor(span, page int64) int64 {
	if span < page {
		span = page
	}
	pages := (span + page - 1) / page
	p := int64(1)
	for p < pages {
		p <<= 1
	}
	return p * page
}
