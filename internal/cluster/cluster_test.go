package cluster

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/extent"
)

func TestEnvValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Metered().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Env{
		{Providers: 0, MetaShards: 1, ChunkSize: 1},
		{Providers: 1, MetaShards: 0, ChunkSize: 1},
		{Providers: 1, MetaShards: 1, ChunkSize: 0},
		{Providers: 2, MetaShards: 1, ChunkSize: 1, Replicas: 3},
		{Providers: 4, MetaShards: 1, ChunkSize: 1, Replicas: 2, WriteQuorum: 3},
		{Providers: 4, MetaShards: 1, ChunkSize: 1, WriteQuorum: 2}, // quorum without replication
	}
	for i, e := range bad {
		if e.Validate() == nil {
			t.Fatalf("case %d must fail", i)
		}
	}
}

func TestMeteredModelsCharge(t *testing.T) {
	e := Metered()
	if e.DataModel.Zero() || e.MetaModel.Zero() || e.CtrlModel.Zero() {
		t.Fatal("metered env must charge")
	}
	if !Default().DataModel.Zero() {
		t.Fatal("default env must be free")
	}
}

func TestCapacityFor(t *testing.T) {
	cases := []struct {
		span, page, want int64
	}{
		{0, 64, 64},
		{64, 64, 64},
		{65, 64, 128},
		{1000, 64, 1024},
		{1024, 256, 1024},
		{1025, 256, 2048},
	}
	for i, c := range cases {
		if got := CapacityFor(c.span, c.page); got != c.want {
			t.Fatalf("case %d: CapacityFor(%d,%d) = %d, want %d", i, c.span, c.page, got, c.want)
		}
	}
}

func TestVersioningDeployment(t *testing.T) {
	env := Default()
	env.Providers = 3
	svc, err := NewVersioning(env)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Providers.Count() != 3 {
		t.Fatalf("providers = %d", svc.Providers.Count())
	}
	be, err := svc.Backend(1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	vec, _ := extent.NewVec(extent.List{{Offset: 0, Length: 10}}, make([]byte, 10))
	if _, err := be.WriteList(vec); err != nil {
		t.Fatal(err)
	}
	got, _, err := be.ReadList(extent.List{{Offset: 0, Length: 10}})
	if err != nil || len(got) != 10 {
		t.Fatalf("read = %v, %v", got, err)
	}
}

func TestVersioningReplicatedDeployment(t *testing.T) {
	env := Default()
	env.Providers = 4
	env.Replicas = 3
	svc, err := NewVersioning(env)
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Router.Replicas(); got != 3 {
		t.Fatalf("router replicas = %d, want 3", got)
	}
	if got := svc.Router.WriteQuorum(); got != 2 {
		t.Fatalf("default write quorum = %d, want 2", got)
	}
	be, err := svc.Backend(1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	vec, _ := extent.NewVec(extent.List{{Offset: 0, Length: 10}}, make([]byte, 10))
	if _, err := be.WriteList(vec); err != nil {
		t.Fatal(err)
	}
	// One machine down: the snapshot stays readable via failover.
	if err := svc.Providers.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	got, _, err := be.ReadList(extent.List{{Offset: 0, Length: 10}})
	if err != nil || len(got) != 10 {
		t.Fatalf("degraded read = %v, %v", got, err)
	}
}

func TestLustreDeployment(t *testing.T) {
	l, err := NewLustre(Default())
	if err != nil {
		t.Fatal(err)
	}
	f, err := l.File("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if l.FS.OSTCount() != Default().Providers {
		t.Fatalf("OSTs = %d", l.FS.OSTCount())
	}
}

func TestInvalidEnvRejected(t *testing.T) {
	if _, err := NewVersioning(Env{}); err == nil {
		t.Fatal("invalid env must fail")
	}
	if _, err := NewLustre(Env{}); err == nil {
		t.Fatal("invalid env must fail")
	}
}

// Every deployment carries one shared metrics registry wired through
// all layers: a write must show up as ticket/commit/publish and chunk
// puts, a repeated read as cache traffic, and the exposition must
// render. This is the end-to-end check that NewVersioning actually
// connects every component to the registry.
func TestVersioningMetricsWired(t *testing.T) {
	env := Default()
	env.Providers = 4
	env.Replicas = 2
	env.ReadCache = true
	svc, err := NewVersioning(env)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Metrics == nil {
		t.Fatal("deployment has no metrics registry")
	}
	be, err := svc.Backend(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	pipe := be.NewPipe(2)
	vec, _ := extent.NewVec(extent.List{{Offset: 0, Length: 10}}, make([]byte, 10))
	if err := pipe.Submit(vec); err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := be.ReadList(extent.List{{Offset: 0, Length: 10}}); err != nil {
			t.Fatal(err)
		}
	}
	snap := svc.Metrics.Snapshot()
	for name, min := range map[string]float64{
		"bs_vm_ticket_total":          1,
		"bs_vm_commit_total":          1,
		"bs_vm_publish_total":         1,
		"bs_pipe_submit_total":        1,
		"bs_chunk_put_total":          1,
		"bs_chunk_put_bytes_total":    10,
		"bs_cache_hits_total":         1, // reads 2 and 3 hit the cached chunk
		"bs_vm_ticket_seconds_count":  1,
		"bs_pipe_write_seconds_count": 1,
	} {
		if got := snap[name]; got < min {
			t.Errorf("%s = %g, want >= %g", name, got, min)
		}
	}
	if got := snap["bs_pipe_inflight"]; got != 0 {
		t.Errorf("bs_pipe_inflight = %g after flush, want 0", got)
	}
	var buf strings.Builder
	if err := svc.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# TYPE bs_vm_ticket_total counter") {
		t.Fatalf("exposition missing vm family:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `bs_chunk_get_total{locality="flat"}`) {
		t.Fatalf("exposition missing locality-labeled get counter:\n%s", buf.String())
	}
}

// TestVersioningStoreURL boots deployments on every factory backend and
// checks the write path works end to end, that disk deployments isolate
// providers on the filesystem, and that FaultInjection composes with a
// URL-selected backend (the handles still kill writes at store level).
func TestVersioningStoreURL(t *testing.T) {
	dir := t.TempDir()
	for _, url := range []string{"mem://", "disk://" + dir + "/chunks", "null://"} {
		env := Default()
		env.Providers = 3
		env.StoreURL = url
		svc, err := NewVersioning(env)
		if err != nil {
			t.Fatalf("%s: %v", url, err)
		}
		be, err := svc.Backend(1, 100000)
		if err != nil {
			t.Fatal(err)
		}
		vec, _ := extent.NewVec(extent.List{{Offset: 0, Length: 10}}, make([]byte, 10))
		if _, err := be.WriteList(vec); err != nil {
			t.Fatalf("%s: write: %v", url, err)
		}
		// null discards payloads; only real backends must read back.
		if url != "null://" {
			got, _, err := be.ReadList(extent.List{{Offset: 0, Length: 10}})
			if err != nil || len(got) != 10 {
				t.Fatalf("%s: read = %v, %v", url, got, err)
			}
		}
	}
	// Disk providers got their own subdirectories.
	for i := 0; i < 3; i++ {
		if _, err := os.Stat(fmt.Sprintf("%s/chunks/p%d", dir, i)); err != nil {
			t.Fatalf("provider %d disk dir: %v", i, err)
		}
	}

	// Fault injection composes with the factory.
	env := Default()
	env.Providers = 1
	env.StoreURL = "mem://"
	env.FaultInjection = true
	svc, err := NewVersioning(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(svc.Faults) != 1 {
		t.Fatalf("faults = %d, want 1", len(svc.Faults))
	}
	svc.Faults[0].SetDown(true)
	be, err := svc.Backend(2, 100000)
	if err != nil {
		t.Fatal(err)
	}
	vec, _ := extent.NewVec(extent.List{{Offset: 0, Length: 10}}, make([]byte, 10))
	if _, err := be.WriteList(vec); err == nil {
		t.Fatal("write through a downed fault store must fail")
	}
}

func TestEnvValidateStoreURL(t *testing.T) {
	env := Default()
	env.StoreURL = "s3://bucket"
	if err := env.Validate(); err == nil || !strings.Contains(err.Error(), "scheme") {
		t.Fatalf("bad scheme: %v", err)
	}
	env.StoreURL = "disk://"
	if env.Validate() == nil {
		t.Fatal("pathless disk URL must fail validation")
	}
	env.StoreURL = "null://"
	if err := env.Validate(); err != nil {
		t.Fatal(err)
	}
}
