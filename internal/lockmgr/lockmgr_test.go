package lockmgr

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/extent"
	"repro/internal/iosim"
)

func TestAcquireReleaseBasic(t *testing.T) {
	m := New(iosim.CostModel{})
	g := m.Acquire(extent.Extent{Offset: 0, Length: 100}, Exclusive)
	if m.HeldCount() != 1 {
		t.Fatalf("held = %d", m.HeldCount())
	}
	g.Release()
	if m.HeldCount() != 0 {
		t.Fatalf("held after release = %d", m.HeldCount())
	}
	// Double release is a no-op.
	g.Release()
	if got := m.Stats().Acquires; got != 1 {
		t.Fatalf("acquires = %d", got)
	}
}

func TestNonOverlappingProceedConcurrently(t *testing.T) {
	m := New(iosim.CostModel{})
	g1 := m.Acquire(extent.Extent{Offset: 0, Length: 100}, Exclusive)
	done := make(chan struct{})
	go func() {
		g2 := m.Acquire(extent.Extent{Offset: 100, Length: 100}, Exclusive) // disjoint: must not block
		g2.Release()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("disjoint acquire blocked")
	}
	g1.Release()
}

func TestOverlappingBlocks(t *testing.T) {
	m := New(iosim.CostModel{})
	g1 := m.Acquire(extent.Extent{Offset: 0, Length: 100}, Exclusive)
	acquired := make(chan struct{})
	go func() {
		g2 := m.Acquire(extent.Extent{Offset: 50, Length: 100}, Exclusive)
		close(acquired)
		g2.Release()
	}()
	select {
	case <-acquired:
		t.Fatal("overlapping acquire did not block")
	case <-time.After(50 * time.Millisecond):
	}
	g1.Release()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked acquire never granted")
	}
}

func TestMutualExclusionCounter(t *testing.T) {
	m := New(iosim.CostModel{})
	var inCrit atomic.Int32
	var violations atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				g := m.Acquire(extent.Extent{Offset: 40, Length: 20}, Exclusive)
				if inCrit.Add(1) != 1 {
					violations.Add(1)
				}
				inCrit.Add(-1)
				g.Release()
			}
		}()
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations.Load())
	}
}

func TestFIFOFairnessNoStarvation(t *testing.T) {
	m := New(iosim.CostModel{})
	g := m.Acquire(extent.Extent{Offset: 0, Length: 10}, Exclusive)
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gi := m.Acquire(extent.Extent{Offset: 0, Length: 10}, Exclusive)
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			gi.Release()
		}(i)
		time.Sleep(20 * time.Millisecond) // establish queue order
	}
	g.Release()
	wg.Wait()
	for i := range order {
		if order[i] != i {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
}

// TestFIFOBlocksLaterDisjointBehindConflicting pins the fairness rule:
// a later request conflicting with an earlier *queued* request waits,
// preserving FIFO among conflicts.
func TestWaitStatsAccumulate(t *testing.T) {
	m := New(iosim.CostModel{})
	g := m.Acquire(extent.Extent{Offset: 0, Length: 10}, Exclusive)
	done := make(chan struct{})
	go func() {
		g2 := m.Acquire(extent.Extent{Offset: 0, Length: 10}, Exclusive)
		g2.Release()
		close(done)
	}()
	time.Sleep(30 * time.Millisecond)
	g.Release()
	<-done
	st := m.Stats()
	if st.Acquires != 2 {
		t.Fatalf("acquires = %d", st.Acquires)
	}
	if st.TotalWait < 25*time.Millisecond {
		t.Fatalf("wait time %v not recorded", st.TotalWait)
	}
	if st.MaxQueue < 1 {
		t.Fatalf("max queue = %d", st.MaxQueue)
	}
}

func TestAcquireListOrderedNoDeadlock(t *testing.T) {
	m := New(iosim.CostModel{})
	// Two goroutines lock the same two ranges given in opposite order;
	// ordered acquisition must prevent deadlock.
	l1 := extent.List{{Offset: 0, Length: 10}, {Offset: 100, Length: 10}}
	l2 := extent.List{{Offset: 100, Length: 10}, {Offset: 0, Length: 10}}
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			ReleaseAll(m.AcquireList(l1, Exclusive))
		}()
		go func() {
			defer wg.Done()
			ReleaseAll(m.AcquireList(l2, Exclusive))
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("AcquireList deadlocked")
	}
	if m.HeldCount() != 0 {
		t.Fatalf("leaked %d locks", m.HeldCount())
	}
}

func TestWholeFileLockSerializesEverything(t *testing.T) {
	m := New(iosim.CostModel{})
	g := m.Acquire(WholeFile, Exclusive)
	blocked := make(chan struct{})
	go func() {
		g2 := m.Acquire(extent.Extent{Offset: 1 << 40, Length: 10}, Exclusive)
		close(blocked)
		g2.Release()
	}()
	select {
	case <-blocked:
		t.Fatal("whole-file lock did not cover far offset")
	case <-time.After(50 * time.Millisecond):
	}
	g.Release()
	<-blocked
}

func TestMeterCharged(t *testing.T) {
	m := New(iosim.CostModel{})
	g := m.Acquire(extent.Extent{Offset: 0, Length: 1}, Exclusive)
	g.Release()
	if got := m.Meter().Stats().Ops; got != 2 { // acquire + release
		t.Fatalf("meter ops = %d, want 2", got)
	}
}

// TestAcquireListCrossingListsNoDeadlock pins the deadlock the
// atomicity torture suite found in the incremental AcquireList: with
// FIFO fairness, writer A holding X1 and queueing for X2 behind B's
// pending request deadlocks when B's request waits on X1. Atomic
// (all-or-nothing) list granting must survive crossing lists under
// heavy concurrency.
func TestAcquireListCrossingListsNoDeadlock(t *testing.T) {
	m := New(iosim.CostModel{})
	// Interlocking lists: A's second range overlaps B's first, B's
	// second overlaps A's first — the hold-and-wait cycle shape.
	la := extent.List{{Offset: 0, Length: 20}, {Offset: 40, Length: 20}}
	lb := extent.List{{Offset: 10, Length: 40}}
	lc := extent.List{{Offset: 30, Length: 20}, {Offset: 70, Length: 10}}
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		for _, l := range []extent.List{la, lb, lc} {
			wg.Add(1)
			go func(l extent.List) {
				defer wg.Done()
				ReleaseAll(m.AcquireList(l, Exclusive))
			}(l)
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("crossing AcquireList deadlocked")
	}
	if m.HeldCount() != 0 {
		t.Fatalf("leaked %d locks", m.HeldCount())
	}
}

// An AcquireList grant must be atomic: while any range of the list is
// held, no conflicting single acquire may slip in between the list's
// ranges.
func TestAcquireListGrantsAtomically(t *testing.T) {
	m := New(iosim.CostModel{})
	grants := m.AcquireList(extent.List{{Offset: 0, Length: 10}, {Offset: 50, Length: 10}}, Exclusive)
	acquired := make(chan struct{})
	go func() {
		g := m.Acquire(extent.Extent{Offset: 55, Length: 2}, Exclusive)
		close(acquired)
		g.Release()
	}()
	select {
	case <-acquired:
		t.Fatal("conflicting acquire succeeded while list grant held")
	case <-time.After(50 * time.Millisecond):
	}
	ReleaseAll(grants)
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("acquire never granted after list release")
	}
	if len(grants) == 0 {
		t.Fatal("empty grant slice for non-empty list")
	}
}
