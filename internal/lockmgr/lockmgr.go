// Package lockmgr implements the distributed lock manager used by the
// locking-based baselines: byte-range (extent) locks with FIFO
// fairness, as provided by parallel file systems such as Lustre's LDLM
// or GPFS's token manager. The paper's Related Work section describes
// three ways MPI-I/O layers use such locks to implement atomicity —
// whole-file locking, bounding-range locking, and conflict-detection —
// all of which are built on this manager (see internal/mpiio).
//
// Every acquire and release is charged a simulated RPC cost, and the
// manager records how long requests wait; lock wait time is the
// quantity the paper's versioning design eliminates.
package lockmgr

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/extent"
	"repro/internal/iosim"
)

// WholeFile is the extent that covers any possible byte range; locking
// it serializes all access to the file.
var WholeFile = extent.Extent{Offset: 0, Length: math.MaxInt64}

// Mode distinguishes shared (read) from exclusive (write) locks. Two
// shared locks on overlapping ranges are compatible; any pairing
// involving an exclusive lock conflicts.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "shared"
	}
	return "exclusive"
}

// Manager is a byte-range lock manager for one shared resource (one
// file). It grants locks in FIFO order among conflicting requests,
// preventing starvation. Safe for concurrent use.
type Manager struct {
	mu      sync.Mutex
	cond    *sync.Cond
	held    map[uint64]*waiter // grant id → locked range and mode
	pending []*waiter
	nextID  uint64

	meter *iosim.Meter

	acquires  atomic.Int64
	waitNanos atomic.Int64
	maxQueue  atomic.Int64
}

type waiter struct {
	id   uint64
	e    extent.Extent
	mode Mode
}

// conflicts reports whether two requests are incompatible.
func conflicts(a, b *waiter) bool {
	if !a.e.Overlaps(b.e) {
		return false
	}
	return a.mode == Exclusive || b.mode == Exclusive
}

// New builds a manager whose acquire/release requests are charged the
// given cost model (zero model for unit tests).
func New(model iosim.CostModel) *Manager {
	m := &Manager{held: make(map[uint64]*waiter)}
	m.cond = sync.NewCond(&m.mu)
	m.meter = iosim.NewMeter(model, false)
	return m
}

// Meter exposes the request meter.
func (m *Manager) Meter() *iosim.Meter { return m.meter }

// Grant represents a held lock; Release returns it.
type Grant struct {
	m  *Manager
	id uint64

	released bool
}

// Acquire blocks until the byte range can be locked in the given mode
// and returns the grant. Requests are served FIFO among conflicting
// requests.
func (m *Manager) Acquire(e extent.Extent, mode Mode) *Grant {
	m.meter.Charge(0) // lock-request RPC
	start := time.Now()
	m.mu.Lock()
	w := &waiter{id: m.nextID, e: e, mode: mode}
	m.nextID++
	m.pending = append(m.pending, w)
	if q := int64(len(m.pending)); q > m.maxQueue.Load() {
		m.maxQueue.Store(q)
	}
	for !m.grantable(w) {
		m.cond.Wait()
	}
	// Remove w from pending, move to held.
	for i, p := range m.pending {
		if p == w {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			break
		}
	}
	m.held[w.id] = w
	m.mu.Unlock()
	m.acquires.Add(1)
	m.waitNanos.Add(int64(time.Since(start)))
	return &Grant{m: m, id: w.id}
}

// AcquireList locks every extent of the (normalized) list, acquiring in
// ascending offset order so concurrent list acquisitions cannot
// deadlock (two-phase locking with ordered acquisition). The returned
// grants must all be released.
func (m *Manager) AcquireList(l extent.List, mode Mode) []*Grant {
	norm := l.Normalize()
	grants := make([]*Grant, 0, len(norm))
	for _, e := range norm {
		grants = append(grants, m.Acquire(e, mode))
	}
	return grants
}

// grantable reports whether w conflicts with no held lock and no
// earlier pending request. Callers hold m.mu.
func (m *Manager) grantable(w *waiter) bool {
	for _, h := range m.held {
		if conflicts(h, w) {
			return false
		}
	}
	for _, p := range m.pending {
		if p.id >= w.id {
			continue
		}
		if conflicts(p, w) {
			return false
		}
	}
	return true
}

// Release frees the grant. Releasing twice is a no-op.
func (g *Grant) Release() {
	if g.released {
		return
	}
	g.released = true
	g.m.meter.Charge(0) // unlock RPC
	g.m.mu.Lock()
	delete(g.m.held, g.id)
	g.m.cond.Broadcast()
	g.m.mu.Unlock()
}

// ReleaseAll releases a slice of grants (in reverse order, as 2PL
// convention suggests, though order does not matter for correctness).
func ReleaseAll(grants []*Grant) {
	for i := len(grants) - 1; i >= 0; i-- {
		grants[i].Release()
	}
}

// Stats is a snapshot of lock-manager counters.
type Stats struct {
	Acquires  int64
	TotalWait time.Duration
	MaxQueue  int64
}

// Stats returns cumulative counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Acquires:  m.acquires.Load(),
		TotalWait: time.Duration(m.waitNanos.Load()),
		MaxQueue:  m.maxQueue.Load(),
	}
}

// HeldCount returns the number of currently held locks (for tests).
func (m *Manager) HeldCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held)
}
