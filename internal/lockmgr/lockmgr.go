// Package lockmgr implements the distributed lock manager used by the
// locking-based baselines: byte-range (extent) locks with FIFO
// fairness, as provided by parallel file systems such as Lustre's LDLM
// or GPFS's token manager. The paper's Related Work section describes
// three ways MPI-I/O layers use such locks to implement atomicity —
// whole-file locking, bounding-range locking, and conflict-detection —
// all of which are built on this manager (see internal/mpiio).
//
// Every acquire and release is charged a simulated RPC cost, and the
// manager records how long requests wait; lock wait time is the
// quantity the paper's versioning design eliminates.
package lockmgr

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/extent"
	"repro/internal/iosim"
)

// WholeFile is the extent that covers any possible byte range; locking
// it serializes all access to the file.
var WholeFile = extent.Extent{Offset: 0, Length: math.MaxInt64}

// Mode distinguishes shared (read) from exclusive (write) locks. Two
// shared locks on overlapping ranges are compatible; any pairing
// involving an exclusive lock conflicts.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "shared"
	}
	return "exclusive"
}

// Manager is a byte-range lock manager for one shared resource (one
// file). It grants locks in FIFO order among conflicting requests,
// preventing starvation. Safe for concurrent use.
type Manager struct {
	mu      sync.Mutex
	cond    *sync.Cond
	held    map[uint64]*waiter // grant id → locked range and mode
	pending []*waiter
	nextID  uint64

	meter *iosim.Meter

	acquires  atomic.Int64
	waitNanos atomic.Int64
	maxQueue  atomic.Int64
}

type waiter struct {
	id   uint64
	l    extent.List // one or more disjoint ranges, granted atomically
	mode Mode
}

// conflicts reports whether two requests are incompatible.
func conflicts(a, b *waiter) bool {
	if !a.l.Overlaps(b.l) {
		return false
	}
	return a.mode == Exclusive || b.mode == Exclusive
}

// New builds a manager whose acquire/release requests are charged the
// given cost model (zero model for unit tests).
func New(model iosim.CostModel) *Manager {
	m := &Manager{held: make(map[uint64]*waiter)}
	m.cond = sync.NewCond(&m.mu)
	m.meter = iosim.NewMeter(model, false)
	return m
}

// Meter exposes the request meter.
func (m *Manager) Meter() *iosim.Meter { return m.meter }

// Grant represents a held lock; Release returns it. A grant covering a
// multi-range list charges one unlock RPC per range on release,
// mirroring the per-extent charges of its acquisition.
type Grant struct {
	m     *Manager
	id    uint64
	units int // ranges covered; one unlock RPC each

	released bool
}

// Acquire blocks until the byte range can be locked in the given mode
// and returns the grant. Requests are served FIFO among conflicting
// requests.
func (m *Manager) Acquire(e extent.Extent, mode Mode) *Grant {
	m.meter.Charge(0) // lock-request RPC
	return m.acquire(extent.List{e}, mode)
}

// acquire queues one (possibly multi-range) waiter and blocks until the
// whole request is grantable at once; the caller has already charged
// the request RPCs.
func (m *Manager) acquire(l extent.List, mode Mode) *Grant {
	start := time.Now()
	m.mu.Lock()
	w := &waiter{id: m.nextID, l: l, mode: mode}
	m.nextID++
	m.pending = append(m.pending, w)
	if q := int64(len(m.pending)); q > m.maxQueue.Load() {
		m.maxQueue.Store(q)
	}
	for !m.grantable(w) {
		m.cond.Wait()
	}
	// Remove w from pending, move to held.
	for i, p := range m.pending {
		if p == w {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			break
		}
	}
	m.held[w.id] = w
	m.mu.Unlock()
	m.acquires.Add(1)
	m.waitNanos.Add(int64(time.Since(start)))
	return &Grant{m: m, id: w.id, units: len(l)}
}

// AcquireList locks every extent of the (normalized) list, charging one
// lock-request RPC per extent but granting the list atomically: the
// request waits until every range is free and then takes them all at
// once. All-or-nothing granting is what makes concurrent list
// acquisitions deadlock-free — incremental acquisition (even in
// ascending order) deadlocks against this manager's FIFO fairness,
// because a request queued behind a conflicting pending request waits
// on a waiter, not a holder: writer A holding X1 and queueing for X2
// behind B's pending request deadlocks when B's request waits on X1.
// The returned grants must all be released.
func (m *Manager) AcquireList(l extent.List, mode Mode) []*Grant {
	norm := l.Normalize()
	if len(norm) == 0 {
		return nil
	}
	for range norm {
		m.meter.Charge(0) // one lock-request RPC per extent
	}
	return []*Grant{m.acquire(norm, mode)}
}

// grantable reports whether w conflicts with no held lock and no
// earlier pending request. Callers hold m.mu.
func (m *Manager) grantable(w *waiter) bool {
	for _, h := range m.held {
		if conflicts(h, w) {
			return false
		}
	}
	for _, p := range m.pending {
		if p.id >= w.id {
			continue
		}
		if conflicts(p, w) {
			return false
		}
	}
	return true
}

// Release frees the grant. Releasing twice is a no-op.
func (g *Grant) Release() {
	if g.released {
		return
	}
	g.released = true
	for i := 0; i < g.units; i++ {
		g.m.meter.Charge(0) // unlock RPC per locked range
	}
	g.m.mu.Lock()
	delete(g.m.held, g.id)
	g.m.cond.Broadcast()
	g.m.mu.Unlock()
}

// ReleaseAll releases a slice of grants (in reverse order, as 2PL
// convention suggests, though order does not matter for correctness).
func ReleaseAll(grants []*Grant) {
	for i := len(grants) - 1; i >= 0; i-- {
		grants[i].Release()
	}
}

// Stats is a snapshot of lock-manager counters.
type Stats struct {
	Acquires  int64
	TotalWait time.Duration
	MaxQueue  int64
}

// Stats returns cumulative counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Acquires:  m.acquires.Load(),
		TotalWait: time.Duration(m.waitNanos.Load()),
		MaxQueue:  m.maxQueue.Load(),
	}
}

// HeldCount returns the number of currently held locks (for tests).
func (m *Manager) HeldCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held)
}
