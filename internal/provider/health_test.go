package provider

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/iosim"
)

// healthRig is a monitor over a small pool with a manual clock and a
// scriptable probe.
type healthRig struct {
	m       *Manager
	h       *HealthMonitor
	now     time.Time
	probeOK map[ID]bool
}

func newHealthRig(t *testing.T, providers int, cfg HealthConfig) *healthRig {
	t.Helper()
	m, _ := NewPool(providers, iosim.CostModel{})
	rig := &healthRig{
		m:       m,
		h:       NewHealthMonitor(m, cfg),
		now:     time.Unix(0, 0),
		probeOK: make(map[ID]bool),
	}
	rig.h.SetClock(func() time.Time { return rig.now })
	rig.h.SetProbe(func(id ID) error {
		if rig.probeOK[id] {
			return nil
		}
		return chunk.ErrDown
	})
	return rig
}

func (r *healthRig) advance(d time.Duration) { r.now = r.now.Add(d) }

// TestHealthThresholdProperty: across random ok/fail sequences, a
// provider is never marked down with fewer than Threshold CONSECUTIVE
// failures, and always marked down once they occur.
func TestHealthThresholdProperty(t *testing.T) {
	for _, threshold := range []int{1, 2, 3, 5} {
		t.Run(fmt.Sprintf("threshold=%d", threshold), func(t *testing.T) {
			for seed := int64(1); seed <= 20; seed++ {
				rig := newHealthRig(t, 1, HealthConfig{Threshold: threshold})
				rng := rand.New(rand.NewSource(seed))
				consec := 0
				for step := 0; step < 200; step++ {
					if rng.Intn(2) == 0 {
						rig.h.ReportSuccess(0)
						consec = 0
					} else {
						rig.h.ReportFailure(0)
						consec++
					}
					down := rig.h.State(0) == Down
					if down && consec < threshold {
						t.Fatalf("seed %d step %d: down after %d consecutive failures (threshold %d)",
							seed, step, consec, threshold)
					}
					if !down && consec >= threshold {
						t.Fatalf("seed %d step %d: still %s after %d consecutive failures (threshold %d)",
							seed, step, rig.h.State(0), consec, threshold)
					}
					if down {
						break // Down is absorbing for the report stream
					}
				}
			}
		})
	}
}

// TestHealthFlappingNeverTrips: strict alternation ok/fail — the
// classic flapping provider — must never reach Down for any threshold
// >= 2, because a success decays the consecutive-failure count.
func TestHealthFlappingNeverTrips(t *testing.T) {
	rig := newHealthRig(t, 1, HealthConfig{Threshold: 2})
	for i := 0; i < 1000; i++ {
		rig.h.ReportFailure(0)
		if st := rig.h.State(0); st == Down {
			t.Fatalf("iteration %d: flapping provider marked down", i)
		}
		rig.h.ReportSuccess(0)
	}
	if st := rig.h.State(0); st != Live {
		t.Fatalf("flapping provider ended %s, want live", st)
	}
}

// TestHealthProbationTiming: a down provider is re-probed only after
// the probation interval, every time, and revives only after
// ProbeSuccesses consecutive good probes — so down/live oscillation is
// rate-limited by the probation clock.
func TestHealthProbationTiming(t *testing.T) {
	cfg := HealthConfig{Threshold: 2, Probation: 10 * time.Second, ProbeSuccesses: 2}
	rig := newHealthRig(t, 1, cfg)
	rig.h.ReportFailure(0)
	rig.h.ReportFailure(0)
	if st := rig.h.State(0); st != Down {
		t.Fatalf("state after threshold failures = %s", st)
	}
	if !rig.m.Providers()[0].Down() {
		t.Fatal("monitor did not flip the manager's down flag")
	}

	// Before probation elapses, ticks must not probe (store would
	// answer — it is only flag-down, not store-down — so an early probe
	// would start reviving).
	rig.probeOK[0] = true
	for i := 0; i < 9; i++ {
		rig.advance(time.Second)
		rig.h.Tick()
		if st := rig.h.State(0); st != Down {
			t.Fatalf("probed %ds into a %s probation (state %s)", i+1, cfg.Probation, st)
		}
	}
	// Probation elapses: first good probe moves to Probation, second
	// revives.
	rig.advance(time.Second)
	rig.h.Tick()
	if st := rig.h.State(0); st != Probation {
		t.Fatalf("state after first post-probation probe = %s, want probation", st)
	}
	rig.h.Tick()
	if st := rig.h.State(0); st != Live {
		t.Fatalf("state after %d good probes = %s, want live", cfg.ProbeSuccesses, st)
	}
	if rig.m.Providers()[0].Down() {
		t.Fatal("revival did not clear the manager's down flag")
	}
}

// TestHealthFailedProbeRestartsProbation: a failed probe sends the
// provider back to Down and restarts the full probation interval — the
// oscillation rate limit. A provider that keeps failing probes is
// probed at most once per probation interval.
func TestHealthFailedProbeRestartsProbation(t *testing.T) {
	cfg := HealthConfig{Threshold: 1, Probation: 10 * time.Second, ProbeSuccesses: 1}
	rig := newHealthRig(t, 1, cfg)
	probes := 0
	rig.h.SetProbe(func(ID) error { probes++; return chunk.ErrDown })
	rig.h.ReportFailure(0)

	// 100 virtual seconds of ticking at 1s: exactly 10 probes fit.
	for i := 0; i < 100; i++ {
		rig.advance(time.Second)
		rig.h.Tick()
	}
	if probes != 10 {
		t.Fatalf("%d probes in 100s with a 10s probation, want exactly 10", probes)
	}
	if st := rig.h.State(0); st != Down {
		t.Fatalf("state = %s, want down", st)
	}
}

// TestHealthMinOscillation: even with traffic actively flapping between
// heavy failure bursts and recoveries, two consecutive down->live
// transitions are separated by at least the probation interval.
func TestHealthMinOscillation(t *testing.T) {
	cfg := HealthConfig{Threshold: 2, Probation: 5 * time.Second, ProbeSuccesses: 1}
	rig := newHealthRig(t, 1, cfg)
	rig.probeOK[0] = true
	rng := rand.New(rand.NewSource(42))
	var lastLive time.Time
	var revivals []time.Time
	wasDown := false
	for step := 0; step < 3000; step++ {
		rig.advance(250 * time.Millisecond)
		// Random traffic outcomes, heavily failure-biased so the
		// provider keeps getting knocked down.
		if rng.Intn(4) == 0 {
			rig.h.ReportSuccess(0)
		} else {
			rig.h.ReportFailure(0)
		}
		rig.h.Tick()
		down := rig.h.State(0) == Down || rig.h.State(0) == Probation
		if wasDown && !down {
			revivals = append(revivals, rig.now)
			if !lastLive.IsZero() && rig.now.Sub(lastLive) < cfg.Probation {
				t.Fatalf("step %d: revived %s after going down at %s — faster than probation %s",
					step, rig.now, lastLive, cfg.Probation)
			}
		}
		if !down {
			lastLive = rig.now
		}
		wasDown = down
	}
	if len(revivals) == 0 {
		t.Fatal("workload never produced a down->live transition; oscillation property untested")
	}
}

// TestHealthErrorClassification: not-found and already-exists are live
// answers, not machine failures.
func TestHealthErrorClassification(t *testing.T) {
	if CountsAsFailure(nil) {
		t.Fatal("nil error counted as failure")
	}
	for _, benign := range []error{chunk.ErrNotFound, fmt.Errorf("wrap: %w", chunk.ErrExists)} {
		if CountsAsFailure(benign) {
			t.Fatalf("%v counted as failure", benign)
		}
	}
	for _, fatal := range []error{chunk.ErrDown, chunk.ErrInjected, errors.New("connection refused")} {
		if !CountsAsFailure(fatal) {
			t.Fatalf("%v not counted as failure", fatal)
		}
	}
}

// TestHealthSnapshotAdminDown: an administratively downed provider
// (bsctl down) must show as down in the health snapshot even though
// the monitor does not own the transition — and the monitor must not
// revive it.
func TestHealthSnapshotAdminDown(t *testing.T) {
	rig := newHealthRig(t, 2, HealthConfig{Probation: time.Second})
	if err := rig.m.SetDown(1, true); err != nil {
		t.Fatal(err)
	}
	sts := rig.h.Snapshot()
	if len(sts) != 2 || sts[1].State != Down {
		t.Fatalf("snapshot = %+v, want provider 1 down", sts)
	}
	// Ticks far past probation: the monitor never saw provider 1 go
	// down, so it must leave the admin decision alone.
	rig.probeOK[1] = true
	for i := 0; i < 10; i++ {
		rig.advance(time.Minute)
		rig.h.Tick()
	}
	if !rig.m.Providers()[1].Down() {
		t.Fatal("monitor revived an administratively downed provider")
	}
}

// TestHealthAdminDownFirstNeverClaimed: when the operator downs a
// provider BEFORE the monitor's threshold trips (in-flight errors keep
// reporting), the monitor must not claim the flag — and must never
// revive it, even though probes would succeed.
func TestHealthAdminDownFirstNeverClaimed(t *testing.T) {
	cfg := HealthConfig{Threshold: 3, Probation: time.Second, ProbeSuccesses: 1}
	rig := newHealthRig(t, 1, cfg)
	rig.probeOK[0] = true
	rig.h.ReportFailure(0)
	rig.h.ReportFailure(0)
	// Operator drains the machine just before the threshold-th report.
	if err := rig.m.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	rig.h.ReportFailure(0) // would have been the claiming transition
	for i := 0; i < 10; i++ {
		rig.advance(time.Minute)
		rig.h.Tick()
	}
	if !rig.m.Providers()[0].Down() {
		t.Fatal("monitor revived a provider the operator downed first")
	}
	if sts := rig.h.Snapshot(); sts[0].State != Down {
		t.Fatalf("snapshot must still show the admin-downed provider down: %+v", sts[0])
	}
}
