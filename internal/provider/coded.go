package provider

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/chunk"
)

// This file is the Router's erasure-coded placement mode: instead of R
// full copies, each chunk is Reed-Solomon encoded into k data + m
// parity fragments placed on k+m distinct providers (domain-spread by
// the same allocator replication uses). Any k fragments reconstruct
// the chunk, so durability matches m-loss replication at (k+m)/k
// storage overhead instead of R.
//
// # Coded placement contract
//
//   - Placement is POSITIONAL: the i-th entry of a coded chunk's
//     replica set is the provider holding fragment i (0..k-1 data,
//     k..k+m-1 parity). Every placement entry has exactly k+m
//     positions; a position whose provider lost (or never stored) its
//     fragment is detected by store probes, not by a sentinel.
//   - Fragment content is a pure function of (chunk bytes, position),
//     so a provider that ever held position i holds bytes valid for
//     position i forever (chunks are immutable). Repair therefore
//     NEVER tolerates chunk.ErrExists on a new target: an existing key
//     there is some other position's orphan, and recording it would
//     serve wrong bytes.
//   - Reads serve the requested sub-range straight from the data
//     fragments it touches (no decode); any fragment failure falls
//     back to degraded reconstruction from any k fragments.
//   - Repair re-encodes: it reads any k surviving fragments, rebuilds
//     the missing positions, and writes each one to a fresh provider
//     in-position, preferring failure domains the survivors do not
//     cover. Fewer than k survivors is data loss (RepairLost).
//   - Replica-set hints are refreshed but never trusted for reads:
//     positions may have moved since the hint was recorded, and a
//     positional misread cannot always be detected. Placement is the
//     only read authority; a hint that differs from it (ordered
//     compare — position matters) returns a fresh set.
//
// Mode selection is boot-time configuration: switching a router with
// recorded placement between replicated and coded modes is not
// supported (existing entries would be misread under the other mode's
// semantics).

// ParseCoding parses an "rs-<k>+<m>" coding spec ("rs-4+2"). The empty
// string means coding off (k=0, m=0, nil error).
func ParseCoding(s string) (k, m int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	rest, ok := strings.CutPrefix(s, "rs-")
	if !ok {
		return 0, 0, fmt.Errorf("provider: coding spec %q: want rs-<k>+<m>", s)
	}
	if _, err := fmt.Sscanf(rest, "%d+%d", &k, &m); err != nil {
		return 0, 0, fmt.Errorf("provider: coding spec %q: want rs-<k>+<m>", s)
	}
	if _, err := chunk.NewRSCode(k, m); err != nil {
		return 0, 0, err
	}
	return k, m, nil
}

// SetCoding switches the router to erasure-coded placement with k data
// and m parity fragments per chunk. SetCoding(0, 0) turns coding off
// (back to replication). Coded mode supersedes SetReplicas: the
// effective placement degree becomes k+m. Configure before storing any
// chunks — see the mode-selection note above.
func (r *Router) SetCoding(k, m int) error {
	if k == 0 && m == 0 {
		r.cfg.Lock()
		r.codeK, r.codeM, r.code = 0, 0, nil
		r.cfg.Unlock()
		return nil
	}
	code, err := chunk.NewRSCode(k, m)
	if err != nil {
		return err
	}
	r.cfg.Lock()
	r.codeK, r.codeM, r.code = k, m, code
	r.cfg.Unlock()
	return nil
}

// Coding reports the configured erasure code (on=false means the
// router replicates).
func (r *Router) Coding() (k, m int, on bool) {
	r.cfg.RLock()
	defer r.cfg.RUnlock()
	return r.codeK, r.codeM, r.code != nil
}

// codeState returns the active code, nil when the router replicates.
func (r *Router) codeState() *chunk.RSCode {
	r.cfg.RLock()
	defer r.cfg.RUnlock()
	return r.code
}

// degree is the number of placement positions every chunk should have:
// k+m fragments in coded mode, R copies otherwise. Health, scrub and
// convergence checks all compare against it.
func (r *Router) degree() int {
	r.cfg.RLock()
	coded := r.code != nil
	n := r.codeK + r.codeM
	r.cfg.RUnlock()
	if coded {
		return n
	}
	return r.Replicas()
}

// sameIDList reports whether two ID slices are identical INCLUDING
// order — the comparison coded placement needs, where the i-th entry
// is fragment i's home and a permutation is a different placement.
func sameIDList(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// putCoded encodes the chunk into k+m fragments and stores fragment i
// on the i-th of k+m distinct allocated providers in parallel. The put
// succeeds once the write quorum of fragments landed (default k+m-1,
// never below k); placement records ALL k+m positions — positions
// whose store failed are found by the probe-based repair path, which
// re-encodes them onto fresh providers.
func (r *Router) putCoded(code *chunk.RSCode, key chunk.Key, data []byte) ([]ID, error) {
	n := code.K + code.M
	quorum := r.WriteQuorum()
	// An empty non-nil have selects allocateSpread's water-fill mode:
	// fragments still land one-per-domain while enough domains are
	// live, but a stripe as wide as the domain count must not refuse
	// every write during a single domain outage — it doubles up in the
	// survivors and the spread audit re-spreads once the domain
	// returns. (Replicated fresh allocation keeps the strict promise:
	// R is normally far below the domain count, so a refusal there
	// signals misconfiguration, not an outage.)
	targets, err := r.allocateSpread(n, nil, map[string]int{})
	if err != nil {
		return nil, err
	}
	shards := code.Encode(data)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, p := range targets {
		wg.Add(1)
		go func(i int, p *Provider) {
			defer wg.Done()
			errs[i] = r.putOne(p, key, shards[i])
		}(i, p)
	}
	wg.Wait()
	stored := make([]ID, n)
	landed := 0
	var failures []error
	for i, p := range targets {
		stored[i] = p.ID()
		if errs[i] == nil {
			landed++
		} else {
			failures = append(failures, fmt.Errorf("provider %d (fragment %d): %w", p.ID(), i, errs[i]))
		}
	}
	if landed < quorum {
		return nil, fmt.Errorf("provider: write quorum not met (%d/%d fragments, need %d): %w",
			landed, n, quorum, errors.Join(failures...))
	}
	r.place.mu.Lock()
	r.place.m[key] = stored
	r.place.mu.Unlock()
	if landed < n {
		// Quorum-committed with missing fragments: born degraded, hand
		// it to read-repair now.
		r.noteDegraded(key)
	}
	return stored, nil
}

// readCoded serves one coded sub-range read from the positional set
// ids. The direct path reads only the data fragments the range
// touches; any failure there falls back to degraded reconstruction
// from any k full fragments. degraded reports whether the direct path
// failed (the repair signal). Every real store attempt feeds the
// health monitor.
func (r *Router) readCoded(code *chunk.RSCode, ids []ID, key chunk.Key, off, length int64) (data []byte, degraded bool, err error) {
	n := code.K + code.M
	if len(ids) != n {
		return nil, false, fmt.Errorf("provider: coded placement of %s has %d positions, want %d", key, len(ids), n)
	}
	if off < 0 || length < 0 {
		return nil, false, fmt.Errorf("provider: invalid coded read [%d, %d) of %s", off, off+length, key)
	}
	if length == 0 {
		return []byte{}, false, nil
	}
	// Fragment size: all k+m fragments of a chunk are equal by
	// construction, so the first live fragment's Len is authoritative.
	ss := int64(-1)
	var lastErr error
	for _, id := range ids {
		p := r.byID(id)
		if p == nil || p.Down() {
			continue
		}
		sz, lerr := p.Store().Len(key)
		r.reportError(id, lerr)
		if lerr != nil {
			lastErr = lerr
			continue
		}
		ss = sz
		break
	}
	if ss < 0 {
		if lastErr == nil {
			lastErr = ErrProviderDown
		}
		return nil, true, fmt.Errorf("provider: no readable fragment of %s: %w", key, lastErr)
	}
	if off+length > int64(code.K)*ss {
		return nil, false, fmt.Errorf("provider: coded read [%d, %d) of %s exceeds chunk bound %d", off, off+length, key, int64(code.K)*ss)
	}
	lo, hi := int(off/ss), int((off+length-1)/ss)
	out := make([]byte, 0, length)
	direct := true
	for i := lo; i <= hi; i++ {
		flo := off - int64(i)*ss
		if flo < 0 {
			flo = 0
		}
		fhi := off + length - int64(i)*ss
		if fhi > ss {
			fhi = ss
		}
		p := r.byID(ids[i])
		if p == nil || p.Down() {
			direct = false
			break
		}
		frag, gerr := p.Store().Get(key, flo, fhi-flo)
		r.reportError(ids[i], gerr)
		if gerr != nil {
			direct = false
			break
		}
		out = append(out, frag...)
	}
	if direct {
		return out, false, nil
	}
	// Degraded: collect any k full fragments and reconstruct.
	shards := make([][]byte, n)
	got := 0
	for i, id := range ids {
		if got >= code.K {
			break
		}
		p := r.byID(id)
		if p == nil || p.Down() {
			continue
		}
		frag, gerr := p.Store().Get(key, 0, ss)
		r.reportError(id, gerr)
		if gerr != nil {
			lastErr = gerr
			continue
		}
		if int64(len(frag)) != ss {
			continue
		}
		shards[i] = frag
		got++
	}
	if got < code.K {
		if lastErr == nil {
			lastErr = ErrProviderDown
		}
		return nil, true, fmt.Errorf("provider: only %d of %d fragments of %s readable, need %d: %w",
			got, n, key, code.K, lastErr)
	}
	if rerr := code.Reconstruct(shards); rerr != nil {
		return nil, true, rerr
	}
	out = out[:0]
	for i := lo; i <= hi; i++ {
		flo := off - int64(i)*ss
		if flo < 0 {
			flo = 0
		}
		fhi := off + length - int64(i)*ss
		if fhi > ss {
			fhi = ss
		}
		out = append(out, shards[i][flo:fhi]...)
	}
	return out, true, nil
}

// getCoded is the coded Get: read-through cache, then readCoded from
// authoritative placement. Degraded reads feed the repair queue. Coded
// reads count as locality-flat — fragments are spread across domains
// by design, so a "local read" of one chunk does not exist.
func (r *Router) getCoded(code *chunk.RSCode, key chunk.Key, off, length int64) ([]byte, error) {
	cache := r.ReadCache()
	if cache != nil {
		if data, ok := cache.GetData(key, off, length); ok {
			return data, nil
		}
	}
	var start time.Time
	if r.met.getSec != nil {
		start = time.Now()
	}
	ids, ok := r.Locate(key)
	if !ok {
		return nil, fmt.Errorf("%w: %s", chunk.ErrNotFound, key)
	}
	data, degraded, err := r.readCoded(code, ids, key, off, length)
	if err != nil {
		return nil, err
	}
	if degraded {
		r.noteDegraded(key)
	}
	r.met.getFlat.Inc()
	if r.met.getSec != nil {
		r.met.getSec.ObserveSince(start)
	}
	r.fillData(cache, key, data, off)
	return data, nil
}

// getFromCoded is the coded GetFrom. Unlike the replicated path, the
// caller's hint is never read through (see the coded placement
// contract: positions move, and a positional misread is undetectable),
// but it IS refreshed: when authoritative placement differs from the
// hint in any position, the fresh set returns for the caller to cache.
func (r *Router) getFromCoded(code *chunk.RSCode, hint []ID, key chunk.Key, off, length int64) (data []byte, fresh []ID, err error) {
	cache := r.ReadCache()
	if cache != nil {
		if data, ok := cache.GetData(key, off, length); ok {
			if h, ok2 := cache.Hint(key); ok2 && !sameIDList(h, hint) {
				return data, h, nil
			}
			return data, nil, nil
		}
	}
	var start time.Time
	if r.met.getSec != nil {
		start = time.Now()
	}
	ids, ok := r.Locate(key)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", chunk.ErrNotFound, key)
	}
	data, degraded, err := r.readCoded(code, ids, key, off, length)
	if err != nil {
		return nil, nil, err
	}
	if degraded {
		r.noteDegraded(key)
	}
	r.met.getFlat.Inc()
	if r.met.getSec != nil {
		r.met.getSec.ObserveSince(start)
	}
	r.fillData(cache, key, data, off)
	if !sameIDList(ids, hint) {
		r.fillHint(cache, key, ids)
		return data, ids, nil
	}
	return data, nil, nil
}

// openCoded materializes a coded sub-range read behind an
// io.ReadCloser. Coded streaming reads cannot splice a single store
// file to the socket anyway (the range spans fragments), so the
// streaming plane shares the buffered read path.
func (r *Router) openCoded(code *chunk.RSCode, key chunk.Key, off, length int64) (io.ReadCloser, error) {
	data, err := r.getCoded(code, key, off, length)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// openFromCoded is openCoded with the hint-refresh semantics of
// getFromCoded.
func (r *Router) openFromCoded(code *chunk.RSCode, hint []ID, key chunk.Key, off, length int64) (io.ReadCloser, []ID, error) {
	data, fresh, err := r.getFromCoded(code, hint, key, off, length)
	if err != nil {
		return nil, nil, err
	}
	return io.NopCloser(bytes.NewReader(data)), fresh, nil
}

// repairCoded restores a coded chunk to k+m live fragments: probe
// every position, read any k surviving fragments, re-encode, and write
// each missing position onto a fresh provider (excluding every
// recorded member, preferring uncovered failure domains). A chunk at
// full degree whose fragments co-locate while a spare live domain
// exists gets one fragment relocated instead. Caller holds the
// chunk's in-flight claim.
func (r *Router) repairCoded(code *chunk.RSCode, key chunk.Key) (outcome RepairOutcome, copied int, err error) {
	n := code.K + code.M
	ids, ok := r.Locate(key)
	if !ok {
		return RepairHealthy, 0, nil
	}
	if len(ids) != n {
		return RepairPartial, 0, fmt.Errorf("provider: coded repair of %s: placement has %d positions, want %d (stored under a different mode?)", key, len(ids), n)
	}
	liveAt := make([]bool, n)
	live := 0
	for i, id := range ids {
		p := r.byID(id)
		if p == nil || p.Down() {
			continue
		}
		_, lerr := p.Store().Len(key)
		r.reportError(id, lerr)
		if lerr == nil {
			liveAt[i] = true
			live++
		}
	}
	if live == n {
		if r.spreadViolatedSet(ids) {
			if moved, merr := r.improveSpreadCoded(key, ids); merr != nil {
				return RepairPartial, 0, merr
			} else if moved {
				return RepairRepaired, 1, nil
			}
		}
		return RepairHealthy, 0, nil
	}
	if live < code.K {
		return RepairLost, 0, fmt.Errorf("provider: chunk %s has %d of %d fragments, need %d to reconstruct", key, live, n, code.K)
	}
	// Read any k surviving fragments; a fragment that fails the read
	// despite the probe is demoted to missing.
	shards := make([][]byte, n)
	got := 0
	var lastErr error
	for i, id := range ids {
		if !liveAt[i] || got >= code.K {
			continue
		}
		p := r.byID(id)
		sz, lerr := p.Store().Len(key)
		if lerr == nil {
			var frag []byte
			frag, lerr = p.Store().Get(key, 0, sz)
			r.reportError(id, lerr)
			if lerr == nil {
				shards[i] = frag
				got++
				continue
			}
		}
		lastErr = lerr
		liveAt[i] = false
		live--
	}
	if got < code.K {
		if live < code.K {
			return RepairLost, 0, fmt.Errorf("provider: chunk %s has %d of %d readable fragments, need %d: %w", key, got, n, code.K, lastErr)
		}
		return RepairPartial, 0, lastErr
	}
	if rerr := code.Reconstruct(shards); rerr != nil {
		return RepairPartial, 0, rerr
	}
	exclude := make(map[ID]bool, n)
	have := make(map[string]int)
	for i, id := range ids {
		exclude[id] = true
		if liveAt[i] {
			have[r.DomainOf(id)]++
		}
	}
	newIDs := append([]ID(nil), ids...)
	var failures []error
	allocFailed := false
	for i := 0; i < n && !allocFailed; i++ {
		if liveAt[i] {
			continue
		}
		// A target whose store rejects the fragment (including
		// ErrExists — an orphan of some other position, see the
		// contract) is excluded and allocation retried, so one repair
		// call converges past flag-lagging losses. Rejections along the
		// way only count as failures if the fragment never lands.
		var fragErrs []error
		for {
			targets, aerr := r.allocateSpread(1, exclude, have)
			if aerr != nil {
				failures = append(failures, append(fragErrs, aerr)...)
				allocFailed = true
				break
			}
			p := targets[0]
			exclude[p.ID()] = true
			if werr := r.putOne(p, key, shards[i]); werr != nil {
				fragErrs = append(fragErrs, fmt.Errorf("provider %d (fragment %d): %w", p.ID(), i, werr))
				continue
			}
			newIDs[i] = p.ID()
			have[p.Domain()]++
			copied++
			break
		}
	}
	if copied > 0 {
		r.setPlacement(key, newIDs)
	}
	if ferr := errors.Join(failures...); ferr != nil {
		return RepairPartial, copied, ferr
	}
	return RepairRepaired, copied, nil
}

// improveSpreadCoded relocates one fragment of a full-degree coded
// chunk from its most crowded failure domain into an uncovered one:
// copy the fragment to a fresh provider there, delete the old copy
// (best effort — a failed delete leaves an orphan fragment outside
// placement, which blocks nothing: repair never reuses a provider
// already holding the key), and swap the position's entry. moved is
// false when no uncovered live domain has a spare provider. Caller
// holds the chunk's in-flight claim.
func (r *Router) improveSpreadCoded(key chunk.Key, ids []ID) (moved bool, err error) {
	exclude := make(map[ID]bool, len(ids))
	have := make(map[string]int, len(ids))
	for _, id := range ids {
		exclude[id] = true
		have[r.DomainOf(id)]++
	}
	targets, aerr := r.allocateSpread(1, exclude, have)
	if aerr != nil {
		return false, nil // no spare provider at all; degree is intact
	}
	target := targets[0]
	if have[target.Domain()] > 0 {
		return false, nil // every uncovered domain is down or exhausted
	}
	idx := -1
	for i := len(ids) - 1; i >= 0; i-- {
		if have[r.DomainOf(ids[i])] >= 2 {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false, nil
	}
	p := r.byID(ids[idx])
	if p == nil || p.Down() {
		return false, nil
	}
	sz, err := p.Store().Len(key)
	if err != nil {
		return false, err
	}
	frag, err := p.Store().Get(key, 0, sz)
	r.reportError(ids[idx], err)
	if err != nil {
		return false, err
	}
	if werr := r.putOne(target, key, frag); werr != nil {
		return false, werr
	}
	derr := p.Store().Delete(key)
	r.reportError(ids[idx], derr)
	newIDs := append([]ID(nil), ids...)
	newIDs[idx] = target.ID()
	r.setPlacement(key, newIDs)
	return true, nil
}
