package provider

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/iosim"
)

// cachedRouter is a domain router with the read cache wired.
func cachedRouter(t *testing.T, n, domains, replicas int) (*Router, *ReadCache) {
	t.Helper()
	mgr, _ := NewPoolInDomains(n, domains, iosim.CostModel{})
	r := NewRouter(mgr)
	r.SetReplicas(replicas)
	cache := NewReadCache(ReadCacheConfig{Shards: 4, MaxBytes: 1 << 20})
	r.SetReadCache(cache)
	return r, cache
}

// TestZoneLocalReplicaOrder: with a local domain set, every rotation of
// the replica set tries same-domain replicas first, and the remote
// replicas stay in the order as failover targets — the set is
// reordered, never narrowed.
func TestZoneLocalReplicaOrder(t *testing.T) {
	// 6 providers, 3 domains: zone0={0,1}, zone1={2,3}, zone2={4,5}.
	mgr, _ := NewPoolInDomains(6, 3, iosim.CostModel{})
	r := NewRouter(mgr)
	r.SetLocalDomain("zone1")
	if got := r.LocalDomain(); got != "zone1" {
		t.Fatalf("LocalDomain = %q", got)
	}
	ids := []ID{0, 2, 4, 3}
	for trial := 0; trial < 16; trial++ {
		order := r.replicaOrder(ids, "zone1", true)
		if len(order) != len(ids) {
			t.Fatalf("order %v narrowed the set %v", order, ids)
		}
		if d0, d1 := r.DomainOf(order[0]), r.DomainOf(order[1]); d0 != "zone1" || d1 != "zone1" {
			t.Fatalf("trial %d: local replicas not first: %v", trial, order)
		}
		seen := map[ID]bool{}
		for _, id := range order {
			seen[id] = true
		}
		for _, id := range ids {
			if !seen[id] {
				t.Fatalf("trial %d: order %v dropped replica %d", trial, order, id)
			}
		}
	}
	// Without preference (or without a domain) the rotation is returned
	// untouched: first elements must vary across calls.
	firsts := map[ID]bool{}
	for trial := 0; trial < 32; trial++ {
		firsts[r.replicaOrder(ids, "zone1", false)[0]] = true
	}
	if len(firsts) < 2 {
		t.Fatalf("measure-only mode pinned the rotation: firsts = %v", firsts)
	}
}

// TestZoneLocalReadsStayLocal: zone-local selection serves every read
// from the reader's domain while a local copy is live, and the locality
// counters record it.
func TestZoneLocalReadsStayLocal(t *testing.T) {
	r, _ := cachedRouter(t, 6, 3, 2)
	r.SetReadCache(nil) // count provider reads, not cache hits
	r.SetLocalDomain("zone0")
	data := []byte("stay local")
	// Write chunks until one has a zone0 replica (R=2 over 3 domains —
	// most do).
	var key chunk.Key
	found := false
	for i := 0; i < 8 && !found; i++ {
		key = chunk.Key{Blob: 1, Version: 1, Index: uint32(i)}
		ids, err := r.Put(key, data)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			if r.DomainOf(id) == "zone0" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no chunk landed a zone0 replica in 8 writes")
	}
	before := r.ReadLocality()
	for i := 0; i < 10; i++ {
		if _, err := r.Get(key, 0, int64(len(data))); err != nil {
			t.Fatal(err)
		}
	}
	st := r.ReadLocality()
	if got := st.LocalReads - before.LocalReads; got != 10 {
		t.Fatalf("%d of 10 reads local (stats %+v)", got, st)
	}
	if st.RemoteReads != before.RemoteReads {
		t.Fatalf("zone-local read went remote: %+v", st)
	}
	if st.CrossFraction() != 0 {
		t.Fatalf("CrossFraction = %v with only local reads", st.CrossFraction())
	}
	// Kill the zone0 copy: the read must fail over remotely, not fail.
	ids, _ := r.Locate(key)
	for _, id := range ids {
		if r.DomainOf(id) == "zone0" {
			if err := r.SetDown(id, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := r.Get(key, 0, int64(len(data))); err != nil {
		t.Fatalf("read with dead local copy failed: %v", err)
	}
	if got := r.ReadLocality(); got.RemoteReads == st.RemoteReads {
		t.Fatalf("failover read not counted remote: %+v", got)
	}
}

// TestRouterGetReadThrough: the first Get fills the cache, later Gets
// (including sub-ranges of the cached prefix) are served from it.
func TestRouterGetReadThrough(t *testing.T) {
	r, cache := cachedRouter(t, 4, 2, 2)
	key := chunk.Key{Blob: 1, Version: 1}
	data := []byte("hot chunk bytes")
	if _, err := r.Put(key, data); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get(key, 0, int64(len(data)))
	if err != nil || string(got) != string(data) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	st := cache.Stats()
	if st.Fills != 1 || st.Hits != 0 {
		t.Fatalf("first read should fill, not hit: %+v", st)
	}
	// Served from cache now — even with every provider down.
	for _, p := range r.Providers() {
		if err := r.SetDown(p.ID(), true); err != nil {
			t.Fatal(err)
		}
	}
	got, err = r.Get(key, 4, 5)
	if err != nil || string(got) != "chunk" {
		t.Fatalf("cached sub-range = %q, %v", got, err)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Fatalf("second read should hit: %+v", st)
	}
}

// TestGetFromCacheLifecycle walks the full hint lifecycle through the
// shared cache: a stale hint falls back and caches the served set, a
// later read is served from cache with the fresher hint attached, and a
// placement change drops the entry.
func TestGetFromCacheLifecycle(t *testing.T) {
	r, cache := cachedRouter(t, 4, 2, 2)
	key := chunk.Key{Blob: 7, Version: 1}
	data := []byte("lifecycle")
	orig, err := r.Put(key, data)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the original replicas one at a time, repairing between the
	// losses (killing both at once would genuinely lose the data):
	// placement ends up fully moved.
	for _, id := range orig {
		if err := r.SetDown(id, true); err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.RepairChunk(key); err != nil {
			t.Fatal(err)
		}
	}
	moved, _ := r.Locate(key)
	if sameIDSet(moved, orig) {
		t.Fatalf("repair did not move placement: %v", moved)
	}
	// Read with the now-dead hint: fallback serves, fresh = the set
	// that served, and both data and hint land in the cache.
	got, fresh, err := r.GetFrom(orig, key, 0, int64(len(data)))
	if err != nil || string(got) != string(data) {
		t.Fatalf("stale-hint read = %q, %v", got, err)
	}
	if !sameIDSet(fresh, moved) {
		t.Fatalf("fresh = %v, want the serving set %v", fresh, moved)
	}
	// Same stale hint again: cache data serves it, cached hint rides
	// along as fresh — no provider involved.
	got, fresh, err = r.GetFrom(orig, key, 0, int64(len(data)))
	if err != nil || string(got) != string(data) {
		t.Fatalf("cached read = %q, %v", got, err)
	}
	if !sameIDSet(fresh, moved) {
		t.Fatalf("cached fresh = %v, want %v", fresh, moved)
	}
	if st := cache.Stats(); st.Hits == 0 || st.HintHits == 0 {
		t.Fatalf("cache not consulted: %+v", st)
	}
	// A read carrying the CURRENT set gets fresh == nil (nothing to
	// correct).
	if _, fresh, err = r.GetFrom(moved, key, 0, int64(len(data))); err != nil || fresh != nil {
		t.Fatalf("up-to-date hint returned fresh %v, err %v", fresh, err)
	}
	// Placement changes invalidate: revive the originals, kill one
	// current holder, repair — the cached entry must be gone.
	for _, id := range orig {
		if err := r.SetDown(id, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.SetDown(moved[0], true); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.RepairChunk(key); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Invalidations == 0 {
		t.Fatalf("repair did not invalidate: %+v", st)
	}
	if _, ok := cache.GetData(key, 0, 1); ok {
		t.Fatal("cached data survived the placement change")
	}
	if _, ok := cache.Hint(key); ok {
		t.Fatal("cached hint survived the placement change")
	}
	// And the next read through the stale cache state still succeeds.
	if got, _, err := r.GetFrom(orig, key, 0, int64(len(data))); err != nil || string(got) != string(data) {
		t.Fatalf("read after invalidation = %q, %v", got, err)
	}
}

// TestDeleteReplicasInvalidatesCache: version GC deleting a chunk drops
// its cache entry, so a cached copy cannot outlive the data.
func TestDeleteReplicasInvalidatesCache(t *testing.T) {
	r, cache := cachedRouter(t, 4, 2, 2)
	key := chunk.Key{Blob: 9, Version: 3}
	if _, err := r.Put(key, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(key, 0, 6); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.GetData(key, 0, 6); !ok {
		t.Fatal("read did not fill the cache")
	}
	if _, _, err := r.DeleteReplicas(key); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.GetData(key, 0, 6); ok {
		t.Fatal("cache served a GC'd chunk")
	}
	if _, err := r.Get(key, 0, 6); !errors.Is(err, chunk.ErrNotFound) {
		t.Fatalf("read after delete = %v, want ErrNotFound", err)
	}
}

// TestGetFromFallbackFreshMatchesServingSet is the regression for the
// two-acquisition fallback: the fresh set returned must be the snapshot
// the read was served from, taken in the same Locate call.
func TestGetFromFallbackFreshMatchesServingSet(t *testing.T) {
	r, _ := replicatedRouter(t, 4, 2)
	key := chunk.Key{Blob: 3, Version: 1}
	data := []byte("served set")
	if _, err := r.Put(key, data); err != nil {
		t.Fatal(err)
	}
	want, _ := r.Locate(key)
	// A hint naming no real provider forces the fallback.
	got, fresh, err := r.GetFrom([]ID{97, 98}, key, 0, int64(len(data)))
	if err != nil || string(got) != string(data) {
		t.Fatalf("fallback read = %q, %v", got, err)
	}
	if !sameIDSet(fresh, want) {
		t.Fatalf("fresh = %v, want serving set %v", fresh, want)
	}
}

// TestReadTierRace exercises cache fills racing RepairChunk and
// DeleteReplicas invalidation — run under -race, this is the memory-
// model check for the whole read tier. Stale cache state may cost a
// failover but must never fail a read before the chunk is deleted.
func TestReadTierRace(t *testing.T) {
	r, cache := cachedRouter(t, 6, 3, 2)
	r.SetLocalDomain("zone0")
	const chunks = 8
	data := []byte("racing bytes")
	keys := make([]chunk.Key, chunks)
	hints := make([][]ID, chunks)
	for i := range keys {
		keys[i] = chunk.Key{Blob: 1, Version: 1, Index: uint32(i)}
		ids, err := r.Put(keys[i], data)
		if err != nil {
			t.Fatal(err)
		}
		hints[i] = ids
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := (g + i) % chunks
				var got []byte
				var err error
				if i%2 == 0 {
					got, err = r.Get(keys[k], 0, int64(len(data)))
				} else {
					got, _, err = r.GetFrom(hints[k], keys[k], 0, int64(len(data)))
				}
				if err != nil {
					t.Errorf("read of %v failed mid-churn: %v", keys[k], err)
					return
				}
				if string(got) != string(data) {
					t.Errorf("read of %v = %q", keys[k], got)
					return
				}
			}
		}(g)
	}
	// Churn placement concurrently with the readers: flip providers
	// down/up and repair everything, so setPlacement invalidations
	// race the fills above.
	for round := 0; round < 6; round++ {
		victim := ID(round % 6)
		if err := r.SetDown(victim, true); err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if _, _, err := r.RepairChunk(k); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.SetDown(victim, false); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if st := cache.Stats(); st.Fills == 0 {
		t.Fatalf("readers filled nothing: %+v", st)
	}
	// Now delete under concurrent-read-free conditions and confirm the
	// cache does not resurrect anything. The Get before each delete
	// re-fills the entry, so every delete exercises invalidation.
	for _, k := range keys {
		if _, err := r.Get(k, 0, int64(len(data))); err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.DeleteReplicas(k); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Get(k, 0, 1); !errors.Is(err, chunk.ErrNotFound) {
			t.Fatalf("chunk %v readable after delete: %v", k, err)
		}
	}
	if st := cache.Stats(); st.Invalidations < chunks {
		t.Fatalf("deletes produced %d invalidations, want >= %d: %+v", st.Invalidations, chunks, st)
	}
}
