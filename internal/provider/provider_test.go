package provider

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/iosim"
)

func TestAllocateRoundRobin(t *testing.T) {
	m := NewManager()
	for i := 0; i < 3; i++ {
		m.Register(New(ID(i), chunk.NewMemStore(nil)))
	}
	var seq []ID
	for i := 0; i < 6; i++ {
		p, err := m.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, p.ID())
	}
	want := []ID{0, 1, 2, 0, 1, 2}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("allocation order %v, want %v", seq, want)
		}
	}
}

func TestAllocateEmpty(t *testing.T) {
	m := NewManager()
	if _, err := m.Allocate(); !errors.Is(err, ErrNoProviders) {
		t.Fatalf("err = %v, want ErrNoProviders", err)
	}
	if _, err := m.AllocateN(3); !errors.Is(err, ErrNoProviders) {
		t.Fatalf("AllocateN err = %v", err)
	}
}

func TestAllocateSkipsDownProviders(t *testing.T) {
	m, _ := NewPool(3, iosim.CostModel{})
	if err := m.SetDown(1, true); err != nil {
		t.Fatal(err)
	}
	if m.Live() != 2 || m.Count() != 3 {
		t.Fatalf("Live = %d, Count = %d", m.Live(), m.Count())
	}
	for i := 0; i < 12; i++ {
		p, err := m.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if p.ID() == 1 {
			t.Fatal("allocated to a down provider")
		}
	}
	if err := m.SetDown(1, false); err != nil {
		t.Fatal(err)
	}
	if m.Live() != 3 {
		t.Fatalf("Live after revival = %d", m.Live())
	}
	if err := m.SetDown(99, true); err == nil {
		t.Fatal("SetDown of unknown provider must fail")
	}
}

// Property: AllocateN always returns n distinct providers, never a
// down one — the invariant that makes replicas of one chunk survive a
// single machine loss.
func TestPropAllocateNDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		pool := 1 + rng.Intn(8)
		m, _ := NewPool(pool, iosim.CostModel{})
		down := map[ID]bool{}
		for id := 0; id < pool; id++ {
			if rng.Intn(3) == 0 {
				down[ID(id)] = true
				if err := m.SetDown(ID(id), true); err != nil {
					t.Fatal(err)
				}
			}
		}
		live := pool - len(down)
		if live == 0 {
			continue
		}
		n := 1 + rng.Intn(live)
		ps, err := m.AllocateN(n)
		if err != nil {
			t.Fatalf("trial %d: AllocateN(%d) with %d live: %v", trial, n, live, err)
		}
		seen := map[ID]bool{}
		for _, p := range ps {
			if seen[p.ID()] {
				t.Fatalf("trial %d: duplicate replica target %d in %d picks", trial, p.ID(), n)
			}
			if down[p.ID()] {
				t.Fatalf("trial %d: down provider %d allocated", trial, p.ID())
			}
			seen[p.ID()] = true
		}
	}
}

// Property: consecutive AllocateN calls stay round-robin balanced —
// per-provider allocation counts never drift apart by more than one.
func TestPropAllocateNBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		pool := 2 + rng.Intn(7)
		m, _ := NewPool(pool, iosim.CostModel{})
		r := 1 + rng.Intn(pool)
		calls := 20 + rng.Intn(100)
		for i := 0; i < calls; i++ {
			if _, err := m.AllocateN(r); err != nil {
				t.Fatal(err)
			}
		}
		lo, hi := int64(1<<62), int64(0)
		for _, p := range m.Providers() {
			c := p.Allocated()
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if hi-lo > 1 {
			t.Fatalf("trial %d: pool=%d R=%d calls=%d imbalance %d..%d", trial, pool, r, calls, lo, hi)
		}
	}
}

// AllocateN must fail with the typed error when the replication degree
// exceeds the live provider count.
func TestAllocateNInsufficientProviders(t *testing.T) {
	m, _ := NewPool(4, iosim.CostModel{})
	if err := m.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	if err := m.SetDown(3, true); err != nil {
		t.Fatal(err)
	}
	_, err := m.AllocateN(3)
	if !errors.Is(err, ErrInsufficientProviders) {
		t.Fatalf("err = %v, want ErrInsufficientProviders", err)
	}
	var typed *InsufficientProvidersError
	if !errors.As(err, &typed) {
		t.Fatalf("err %v is not *InsufficientProvidersError", err)
	}
	if typed.Want != 3 || typed.Live != 2 {
		t.Fatalf("typed error = %+v, want Want=3 Live=2", typed)
	}
	// Enough live providers again: succeeds.
	if err := m.SetDown(0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocateN(3); err != nil {
		t.Fatalf("AllocateN after revival: %v", err)
	}
}

func TestConcurrentAllocationBalance(t *testing.T) {
	const providers = 8
	const rounds = 100
	m, _ := NewPool(providers, iosim.CostModel{})
	var wg sync.WaitGroup
	for g := 0; g < providers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := m.Allocate(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Round-robin under concurrency must stay perfectly balanced.
	for _, p := range m.Providers() {
		if p.Allocated() != rounds {
			t.Fatalf("provider %d Allocated = %d, want %d", p.ID(), p.Allocated(), rounds)
		}
	}
}

func TestRouterPutGet(t *testing.T) {
	m, _ := NewPool(3, iosim.CostModel{})
	r := NewRouter(m)
	key := chunk.Key{Blob: 1, Version: 5, Index: 0}
	ids, err := r.Put(key, []byte("routed data"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("unreplicated Put stored %d copies", len(ids))
	}
	gotIDs, ok := r.Locate(key)
	if !ok || len(gotIDs) != 1 || gotIDs[0] != ids[0] {
		t.Fatalf("Locate = %v,%v want %v", gotIDs, ok, ids)
	}
	data, err := r.Get(key, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "data" {
		t.Fatalf("Get = %q", data)
	}
}

func TestRouterGetUnknown(t *testing.T) {
	r := NewRouter(NewManager())
	if _, err := r.Get(chunk.Key{Blob: 1}, 0, 1); !errors.Is(err, chunk.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestRouterDistributesChunks(t *testing.T) {
	m, _ := NewPool(4, iosim.CostModel{})
	r := NewRouter(m)
	for i := 0; i < 16; i++ {
		key := chunk.Key{Blob: 1, Version: 1, Index: uint32(i)}
		if _, err := r.Put(key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range m.Providers() {
		if got := p.Store().Count(); got != 4 {
			t.Fatalf("provider %d holds %d chunks, want 4", p.ID(), got)
		}
	}
	// Every chunk must still be readable through the router.
	for i := 0; i < 16; i++ {
		key := chunk.Key{Blob: 1, Version: 1, Index: uint32(i)}
		got, err := r.Get(key, 0, 1)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("chunk %d: %v %v", i, got, err)
		}
	}
}

func TestRouterReplicatedPut(t *testing.T) {
	m, _ := NewPool(4, iosim.CostModel{})
	r := NewRouter(m)
	r.SetReplicas(3)
	key := chunk.Key{Blob: 1, Version: 1, Index: 0}
	ids, err := r.Put(key, []byte("replicated"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("stored %d copies, want 3", len(ids))
	}
	seen := map[ID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("replica set %v has duplicates", ids)
		}
		seen[id] = true
		p := m.byID(id)
		if p == nil {
			t.Fatalf("unknown provider %d in replica set", id)
		}
		if _, err := p.Store().Get(key, 0, 10); err != nil {
			t.Fatalf("replica on provider %d unreadable: %v", id, err)
		}
	}
}

func TestRouterFailoverRead(t *testing.T) {
	m, _ := NewPool(3, iosim.CostModel{})
	r := NewRouter(m)
	r.SetReplicas(2)
	key := chunk.Key{Blob: 1, Version: 1, Index: 0}
	ids, err := r.Put(key, []byte("survives"))
	if err != nil {
		t.Fatal(err)
	}
	// Kill one replica holder: reads must fail over to the survivor —
	// every time, regardless of read-rotation state.
	if err := m.SetDown(ids[0], true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		data, err := r.Get(key, 0, 8)
		if err != nil || string(data) != "survives" {
			t.Fatalf("degraded Get = %q, %v", data, err)
		}
	}
	// GetFrom with the write-time hint works the same way; the hint is
	// still the recorded set, so no fresh hint is returned.
	data, fresh, err := r.GetFrom(ids, key, 0, 8)
	if err != nil || string(data) != "survives" {
		t.Fatalf("degraded GetFrom = %q, %v", data, err)
	}
	if fresh != nil {
		t.Fatalf("hint served the read but GetFrom returned fresh set %v", fresh)
	}
	// Kill the second replica too: the read must now fail.
	if err := m.SetDown(ids[1], true); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get(key, 0, 8); !errors.Is(err, ErrProviderDown) {
		t.Fatalf("Get with all replicas down = %v, want ErrProviderDown", err)
	}
}

func TestRouterGetFromStaleHint(t *testing.T) {
	// A hint referencing only dead/unknown providers must fall back to
	// the router's placement map.
	m, _ := NewPool(3, iosim.CostModel{})
	r := NewRouter(m)
	key := chunk.Key{Blob: 1, Version: 1, Index: 0}
	if _, err := r.Put(key, []byte("real")); err != nil {
		t.Fatal(err)
	}
	data, fresh, err := r.GetFrom([]ID{77, 78}, key, 0, 4)
	if err != nil || string(data) != "real" {
		t.Fatalf("stale-hint GetFrom = %q, %v", data, err)
	}
	want, _ := r.Locate(key)
	if fmt.Sprintf("%v", fresh) != fmt.Sprintf("%v", want) {
		t.Fatalf("stale-hint GetFrom returned fresh %v, want placement %v", fresh, want)
	}
}

func TestRouterWriteQuorum(t *testing.T) {
	newRouter := func(replicas, quorum int) (*Router, []*chunk.FaultStore) {
		m := NewManager()
		var faults []*chunk.FaultStore
		for i := 0; i < 3; i++ {
			f := chunk.NewFaultStore(chunk.NewMemStore(nil))
			faults = append(faults, f)
			m.Register(New(ID(i), f))
		}
		r := NewRouter(m)
		r.SetReplicas(replicas)
		r.SetWriteQuorum(quorum)
		return r, faults
	}

	// Default quorum R-1: one failed copy still commits.
	r, faults := newRouter(3, 0)
	if got := r.WriteQuorum(); got != 2 {
		t.Fatalf("default quorum for R=3 is %d, want 2", got)
	}
	faults[1].SetDown(true)
	ids, err := r.Put(chunk.Key{Blob: 1}, []byte("x"))
	if err != nil {
		t.Fatalf("Put with one dead store: %v", err)
	}
	if len(ids) != 2 {
		t.Fatalf("recorded %d replicas, want the 2 that landed", len(ids))
	}

	// Quorum R: any failed copy fails the write.
	r, faults = newRouter(3, 3)
	faults[2].SetDown(true)
	if _, err := r.Put(chunk.Key{Blob: 2}, []byte("x")); !errors.Is(err, chunk.ErrDown) {
		t.Fatalf("strict-quorum Put = %v, want ErrDown", err)
	}

	// Two dead stores beat the default quorum: write fails.
	r, faults = newRouter(3, 0)
	faults[0].SetDown(true)
	faults[1].SetDown(true)
	if _, err := r.Put(chunk.Key{Blob: 3}, []byte("x")); err == nil {
		t.Fatal("Put below quorum must fail")
	}
}

func TestRouterRepair(t *testing.T) {
	m, _ := NewPool(4, iosim.CostModel{})
	r := NewRouter(m)
	r.SetReplicas(2)
	const chunks = 12
	payload := func(i int) []byte { return []byte(fmt.Sprintf("chunk-%02d", i)) }
	for i := 0; i < chunks; i++ {
		if _, err := r.Put(chunk.Key{Blob: 1, Index: uint32(i)}, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.SetDown(2, true); err != nil {
		t.Fatal(err)
	}
	st := r.Repair()
	if st.Scanned != chunks {
		t.Fatalf("scanned %d, want %d", st.Scanned, chunks)
	}
	if st.Degraded == 0 || st.Repaired != st.Degraded || st.Lost != 0 || st.Failed != 0 {
		t.Fatalf("repair stats %+v", st)
	}
	// Every chunk is back at full degree on live distinct providers.
	for i := 0; i < chunks; i++ {
		key := chunk.Key{Blob: 1, Index: uint32(i)}
		ids, ok := r.Locate(key)
		if !ok || len(ids) != 2 {
			t.Fatalf("chunk %d replica set %v after repair", i, ids)
		}
		if ids[0] == ids[1] {
			t.Fatalf("chunk %d repaired onto duplicate provider %v", i, ids)
		}
		for _, id := range ids {
			if id == 2 {
				t.Fatalf("chunk %d still placed on dead provider", i)
			}
		}
		got, err := r.Get(key, 0, int64(len(payload(i))))
		if err != nil || string(got) != string(payload(i)) {
			t.Fatalf("chunk %d after repair: %q, %v", i, got, err)
		}
	}
	// A second pass finds nothing to do.
	st = r.Repair()
	if st.Degraded != 0 || st.Copied != 0 {
		t.Fatalf("second repair pass not idempotent: %+v", st)
	}
}

func TestRouterRepairLost(t *testing.T) {
	// R=1 with the single holder dead: the chunk is lost, counted, and
	// repair does not invent data.
	m, _ := NewPool(2, iosim.CostModel{})
	r := NewRouter(m)
	key := chunk.Key{Blob: 1}
	ids, err := r.Put(key, []byte("only copy"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetDown(ids[0], true); err != nil {
		t.Fatal(err)
	}
	st := r.Repair()
	if st.Lost != 1 || st.Repaired != 0 {
		t.Fatalf("repair stats %+v, want 1 lost", st)
	}
}

func TestNewPoolMeters(t *testing.T) {
	m, meters := NewPool(2, iosim.CostModel{})
	if m.Count() != 2 || len(meters) != 2 {
		t.Fatalf("pool size mismatch: %d providers, %d meters", m.Count(), len(meters))
	}
	r := NewRouter(m)
	if _, err := r.Put(chunk.Key{Blob: 1}, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	total := meters[0].Stats().Bytes + meters[1].Stats().Bytes
	if total != 10 {
		t.Fatalf("metered bytes = %d, want 10", total)
	}
}

func TestPolicyStrings(t *testing.T) {
	if RoundRobin.String() != "roundrobin" || Random.String() != "random" || LeastLoaded.String() != "leastloaded" {
		t.Fatal("policy names wrong")
	}
}

func TestRandomPolicyCoversAllProviders(t *testing.T) {
	m, _ := NewPool(4, iosim.CostModel{})
	m.SetPolicy(Random)
	if m.Policy() != Random {
		t.Fatal("policy not set")
	}
	for i := 0; i < 400; i++ {
		if _, err := m.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range m.Providers() {
		if p.Allocated() == 0 {
			t.Fatalf("provider %d never allocated under random policy", p.ID())
		}
	}
}

func TestNonRoundRobinPoliciesStayDistinct(t *testing.T) {
	for _, pol := range []Policy{Random, LeastLoaded} {
		m, _ := NewPool(4, iosim.CostModel{})
		m.SetPolicy(pol)
		for i := 0; i < 50; i++ {
			ps, err := m.AllocateN(3)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[ID]bool{}
			for _, p := range ps {
				if seen[p.ID()] {
					t.Fatalf("%v: duplicate replica target", pol)
				}
				seen[p.ID()] = true
			}
		}
	}
}

func TestLeastLoadedBalances(t *testing.T) {
	m, _ := NewPool(3, iosim.CostModel{})
	m.SetPolicy(LeastLoaded)
	// Pre-load provider 0 heavily by hand.
	m.Providers()[0].allocated.Store(100)
	for i := 0; i < 60; i++ {
		p, err := m.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if p.ID() == 0 {
			t.Fatal("least-loaded must avoid the overloaded provider")
		}
	}
	// Providers 1 and 2 should have ~30 each.
	if m.Providers()[1].Allocated() < 20 || m.Providers()[2].Allocated() < 20 {
		t.Fatalf("least-loaded imbalance: %d / %d",
			m.Providers()[1].Allocated(), m.Providers()[2].Allocated())
	}
}

// faultPool is NewFaultPool unmetered, for brevity.
func faultPool(n int) (*Manager, []*chunk.FaultStore) {
	return NewFaultPool(n, iosim.CostModel{})
}

// TestRouterReadRepairSignals: a degraded read (failover needed) and a
// quorum-committed short write must both report the exact chunk to the
// degraded handler — the feed of the read-repair queue.
func TestRouterReadRepairSignals(t *testing.T) {
	m, faults := faultPool(3)
	r := NewRouter(m)
	r.SetReplicas(2)
	var mu sync.Mutex
	var degraded []chunk.Key
	r.SetDegradedHandler(func(key chunk.Key) {
		mu.Lock()
		degraded = append(degraded, key)
		mu.Unlock()
	})

	key := chunk.Key{Blob: 1, Version: 1, Index: 0}
	ids, err := r.Put(key, []byte("heal me"))
	if err != nil || len(ids) != 2 {
		t.Fatalf("Put = %v, %v", ids, err)
	}
	mu.Lock()
	if len(degraded) != 0 {
		t.Fatalf("healthy Put reported degraded chunks: %v", degraded)
	}
	mu.Unlock()

	// Kill one holder's STORE (no flags): reads must fail over and
	// report the chunk, every time.
	faults[ids[0]].SetDown(true)
	for i := 0; i < 4; i++ {
		if _, err := r.Get(key, 0, 7); err != nil {
			t.Fatalf("degraded Get: %v", err)
		}
	}
	mu.Lock()
	n := len(degraded)
	mu.Unlock()
	if n == 0 {
		t.Fatal("degraded reads never reported the chunk for read-repair")
	}

	// A write whose quorum commits short of R also self-reports.
	mu.Lock()
	degraded = degraded[:0]
	mu.Unlock()
	key2 := chunk.Key{Blob: 1, Version: 2, Index: 0}
	for i := 0; i < 3; i++ { // round-robin: some allocation hits the dead store
		key2.Index = uint32(i)
		if _, err := r.Put(key2, []byte("short")); err != nil {
			t.Fatalf("Put with one dead store: %v", err)
		}
	}
	mu.Lock()
	n = len(degraded)
	mu.Unlock()
	if n == 0 {
		t.Fatal("under-replicated Put never reported itself")
	}
}

// TestVerifyReplicasProbesStores: VerifyReplicas must catch a replica
// whose provider is flag-live but store-dead — the detection gap
// between a machine dying and the monitor noticing.
func TestVerifyReplicasProbesStores(t *testing.T) {
	m, faults := faultPool(3)
	r := NewRouter(m)
	r.SetReplicas(2)
	key := chunk.Key{Blob: 1, Version: 1, Index: 0}
	ids, err := r.Put(key, []byte("probe"))
	if err != nil {
		t.Fatal(err)
	}
	if live, want, known := r.VerifyReplicas(key); !known || live != 2 || want != 2 {
		t.Fatalf("healthy VerifyReplicas = %d/%d/%v", live, want, known)
	}
	faults[ids[1]].SetDown(true)
	if live, _, _ := r.VerifyReplicas(key); live != 1 {
		t.Fatalf("VerifyReplicas after store kill = %d live, want 1", live)
	}
	// Flag-based health still believes the replica is fine.
	if live, _, _ := r.ReplicaHealth(key); live != 2 {
		t.Fatalf("ReplicaHealth (flags only) = %d live, want 2", live)
	}
	if n := r.UnderReplicated(); n != 1 {
		t.Fatalf("UnderReplicated = %d, want 1", n)
	}
}

// TestRepairChunk: single-chunk repair restores degree, moves
// placement off the dead store, and reports healthy/lost outcomes.
func TestRepairChunk(t *testing.T) {
	m, faults := faultPool(4)
	r := NewRouter(m)
	r.SetReplicas(2)
	key := chunk.Key{Blob: 9, Version: 1, Index: 0}
	ids, err := r.Put(key, []byte("fix me"))
	if err != nil {
		t.Fatal(err)
	}
	if outcome, copied, err := r.RepairChunk(key); outcome != RepairHealthy || copied != 0 || err != nil {
		t.Fatalf("healthy RepairChunk = %v/%d/%v", outcome, copied, err)
	}
	faults[ids[0]].SetDown(true)
	outcome, copied, err := r.RepairChunk(key)
	if outcome != RepairRepaired || copied != 1 || err != nil {
		t.Fatalf("RepairChunk = %v/%d/%v, want repaired/1/nil", outcome, copied, err)
	}
	now, _ := r.Locate(key)
	for _, id := range now {
		if id == ids[0] {
			t.Fatalf("placement %v still references the dead store %d", now, ids[0])
		}
	}
	if data, err := r.Get(key, 0, 6); err != nil || string(data) != "fix me" {
		t.Fatalf("post-repair Get = %q, %v", data, err)
	}
	// Lose every copy: the outcome must be Lost, not a silent success.
	for _, fs := range faults {
		fs.SetDown(true)
	}
	if outcome, _, err := r.RepairChunk(key); outcome != RepairLost || err == nil {
		t.Fatalf("all-dead RepairChunk = %v/%v, want lost/error", outcome, err)
	}
	if outcome, _, err := r.RepairChunk(chunk.Key{Blob: 404}); outcome != RepairHealthy || err != nil {
		t.Fatalf("unknown-key RepairChunk = %v/%v", outcome, err)
	}
}

// TestGetFromRefreshesPartiallyStaleHint: a hint that still WORKS (one
// listed replica serves the read) but names a dead provider must be
// refreshed from placement when placement disagrees — otherwise every
// future read walks the half-dead hint forever.
func TestGetFromRefreshesPartiallyStaleHint(t *testing.T) {
	m, _ := NewPool(4, iosim.CostModel{})
	r := NewRouter(m)
	r.SetReplicas(2)
	key := chunk.Key{Blob: 1, Version: 1, Index: 0}
	ids, err := r.Put(key, []byte("refresh"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetDown(ids[0], true); err != nil {
		t.Fatal(err)
	}
	if st := r.Repair(); st.Repaired != 1 {
		t.Fatalf("repair: %+v", st)
	}
	fresh, _ := r.Locate(key)
	// The stale hint [dead, live]: reads succeed via the survivor but
	// must hand back the repaired placement set.
	var got []ID
	for i := 0; i < 4 && got == nil; i++ { // rotation: some reads start at the live copy
		data, f, err := r.GetFrom(ids, key, 0, 7)
		if err != nil || string(data) != "refresh" {
			t.Fatalf("GetFrom = %q, %v", data, err)
		}
		if f != nil {
			got = f
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(fresh) {
		t.Fatalf("refreshed hint = %v, want placement %v", got, fresh)
	}
}

// TestStaleHintDoesNotSpamRepairQueue: reads through a stale hint that
// skips a long-dead provider must NOT enqueue the chunk once placement
// says it is back at full degree — healthy chunks would crowd real
// work out of the bounded queue.
func TestStaleHintDoesNotSpamRepairQueue(t *testing.T) {
	m, _ := NewPool(4, iosim.CostModel{})
	r := NewRouter(m)
	r.SetReplicas(2)
	var mu sync.Mutex
	enqueued := 0
	r.SetDegradedHandler(func(chunk.Key) { mu.Lock(); enqueued++; mu.Unlock() })
	key := chunk.Key{Blob: 1, Version: 1, Index: 0}
	ids, err := r.Put(key, []byte("quiet"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetDown(ids[0], true); err != nil {
		t.Fatal(err)
	}
	if st := r.Repair(); st.Repaired != 1 {
		t.Fatalf("repair: %+v", st)
	}
	mu.Lock()
	enqueued = 0 // the degraded window before repair may legitimately enqueue
	mu.Unlock()
	for i := 0; i < 8; i++ {
		if _, _, err := r.GetFrom(ids, key, 0, 5); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if enqueued != 0 {
		t.Fatalf("stale-hint reads of a fully replicated chunk enqueued %d repairs", enqueued)
	}
}

// TestRepairCatchesStoreDeadReplica: a full Repair() pass must heal a
// replica whose provider is flag-live but store-dead — manual repair
// cannot depend on the failure detector having tripped first.
func TestRepairCatchesStoreDeadReplica(t *testing.T) {
	m, faults := faultPool(4)
	r := NewRouter(m)
	r.SetReplicas(2)
	key := chunk.Key{Blob: 1, Version: 1, Index: 0}
	ids, err := r.Put(key, []byte("flag-live"))
	if err != nil {
		t.Fatal(err)
	}
	faults[ids[0]].SetDown(true) // store dies; flags say nothing
	st := r.Repair()
	if st.Degraded != 1 || st.Repaired != 1 || st.Lost != 0 {
		t.Fatalf("flag-blind repair pass: %+v", st)
	}
	if live, _, _ := r.VerifyReplicas(key); live != 2 {
		t.Fatalf("chunk still at %d verified copies after repair", live)
	}
}

// TestHealthAdminOverrideNotRevived: if an operator downs a provider
// WHILE the monitor also has it down, probation probes must not revive
// it — the operator's decision wins until the operator reverses it.
func TestHealthAdminOverrideNotRevived(t *testing.T) {
	cfg := HealthConfig{Threshold: 1, Probation: time.Second, ProbeSuccesses: 1}
	rig := newHealthRig(t, 1, cfg)
	rig.probeOK[0] = true // store would answer probes
	rig.h.ReportFailure(0)
	if rig.h.State(0) != Down {
		t.Fatal("monitor did not mark down")
	}
	// Operator drains the machine deliberately (epoch moves).
	if err := rig.m.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rig.advance(time.Minute)
		rig.h.Tick()
	}
	if !rig.m.Providers()[0].Down() {
		t.Fatal("probation probes revived an operator-downed provider")
	}
	// And the reverse: operator revives while the monitor holds it
	// down — the monitor cedes instead of fighting the flag.
	rig2 := newHealthRig(t, 1, cfg)
	rig2.probeOK[0] = true
	rig2.h.ReportFailure(0)
	if err := rig2.m.SetDown(0, false); err != nil {
		t.Fatal(err)
	}
	rig2.advance(time.Minute)
	rig2.h.Tick()
	if rig2.m.Providers()[0].Down() {
		t.Fatal("monitor re-downed an operator-revived provider")
	}
	if st := rig2.h.State(0); st != Live {
		t.Fatalf("monitor state after ceding = %s, want live", st)
	}
}
