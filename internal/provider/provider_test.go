package provider

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/iosim"
)

func TestAllocateRoundRobin(t *testing.T) {
	m := NewManager()
	for i := 0; i < 3; i++ {
		m.Register(New(ID(i), chunk.NewMemStore(nil)))
	}
	var seq []ID
	for i := 0; i < 6; i++ {
		p, err := m.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, p.ID())
	}
	want := []ID{0, 1, 2, 0, 1, 2}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("allocation order %v, want %v", seq, want)
		}
	}
}

func TestAllocateEmpty(t *testing.T) {
	m := NewManager()
	if _, err := m.Allocate(); !errors.Is(err, ErrNoProviders) {
		t.Fatalf("err = %v, want ErrNoProviders", err)
	}
	if _, err := m.AllocateN(3); !errors.Is(err, ErrNoProviders) {
		t.Fatalf("AllocateN err = %v", err)
	}
}

func TestAllocateNBalances(t *testing.T) {
	m, _ := NewPool(4, iosim.CostModel{})
	ps, err := m.AllocateN(8)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[ID]int{}
	for _, p := range ps {
		counts[p.ID()]++
	}
	for id, c := range counts {
		if c != 2 {
			t.Fatalf("provider %d got %d allocations, want 2", id, c)
		}
	}
	for _, p := range m.Providers() {
		if p.Allocated() != 2 {
			t.Fatalf("provider %d Allocated = %d", p.ID(), p.Allocated())
		}
	}
}

func TestConcurrentAllocationBalance(t *testing.T) {
	const providers = 8
	const rounds = 100
	m, _ := NewPool(providers, iosim.CostModel{})
	var wg sync.WaitGroup
	for g := 0; g < providers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := m.Allocate(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Round-robin under concurrency must stay perfectly balanced.
	for _, p := range m.Providers() {
		if p.Allocated() != rounds {
			t.Fatalf("provider %d Allocated = %d, want %d", p.ID(), p.Allocated(), rounds)
		}
	}
}

func TestRouterPutGet(t *testing.T) {
	m, _ := NewPool(3, iosim.CostModel{})
	r := NewRouter(m)
	key := chunk.Key{Blob: 1, Version: 5, Index: 0}
	id, err := r.Put(key, []byte("routed data"))
	if err != nil {
		t.Fatal(err)
	}
	gotID, ok := r.Locate(key)
	if !ok || gotID != id {
		t.Fatalf("Locate = %d,%v want %d", gotID, ok, id)
	}
	data, err := r.Get(key, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "data" {
		t.Fatalf("Get = %q", data)
	}
}

func TestRouterGetUnknown(t *testing.T) {
	r := NewRouter(NewManager())
	if _, err := r.Get(chunk.Key{Blob: 1}, 0, 1); !errors.Is(err, chunk.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestRouterDistributesChunks(t *testing.T) {
	m, _ := NewPool(4, iosim.CostModel{})
	r := NewRouter(m)
	for i := 0; i < 16; i++ {
		key := chunk.Key{Blob: 1, Version: 1, Index: uint32(i)}
		if _, err := r.Put(key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range m.Providers() {
		if got := p.Store().Count(); got != 4 {
			t.Fatalf("provider %d holds %d chunks, want 4", p.ID(), got)
		}
	}
	// Every chunk must still be readable through the router.
	for i := 0; i < 16; i++ {
		key := chunk.Key{Blob: 1, Version: 1, Index: uint32(i)}
		got, err := r.Get(key, 0, 1)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("chunk %d: %v %v", i, got, err)
		}
	}
}

func TestNewPoolMeters(t *testing.T) {
	m, meters := NewPool(2, iosim.CostModel{})
	if m.Count() != 2 || len(meters) != 2 {
		t.Fatalf("pool size mismatch: %d providers, %d meters", m.Count(), len(meters))
	}
	r := NewRouter(m)
	if _, err := r.Put(chunk.Key{Blob: 1}, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	total := meters[0].Stats().Bytes + meters[1].Stats().Bytes
	if total != 10 {
		t.Fatalf("metered bytes = %d, want 10", total)
	}
}

func TestPolicyStrings(t *testing.T) {
	if RoundRobin.String() != "roundrobin" || Random.String() != "random" || LeastLoaded.String() != "leastloaded" {
		t.Fatal("policy names wrong")
	}
}

func TestRandomPolicyCoversAllProviders(t *testing.T) {
	m, _ := NewPool(4, iosim.CostModel{})
	m.SetPolicy(Random)
	if m.Policy() != Random {
		t.Fatal("policy not set")
	}
	for i := 0; i < 400; i++ {
		if _, err := m.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range m.Providers() {
		if p.Allocated() == 0 {
			t.Fatalf("provider %d never allocated under random policy", p.ID())
		}
	}
}

func TestLeastLoadedBalances(t *testing.T) {
	m, _ := NewPool(3, iosim.CostModel{})
	m.SetPolicy(LeastLoaded)
	// Pre-load provider 0 heavily by hand.
	m.Providers()[0].allocated.Store(100)
	for i := 0; i < 60; i++ {
		p, err := m.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if p.ID() == 0 {
			t.Fatal("least-loaded must avoid the overloaded provider")
		}
	}
	// Providers 1 and 2 should have ~30 each.
	if m.Providers()[1].Allocated() < 20 || m.Providers()[2].Allocated() < 20 {
		t.Fatalf("least-loaded imbalance: %d / %d",
			m.Providers()[1].Allocated(), m.Providers()[2].Allocated())
	}
}
