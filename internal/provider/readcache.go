// The bounded sharded read-through cache of the hot-path read tier.
//
// Chunks are immutable: once written, a chunk's BYTES can never change,
// only its PLACEMENT can rot (a repair moves the copies, the collector
// deletes them). That asymmetry makes a read cache almost free
// correctness-wise — cached data never goes stale, and the only
// invalidation signal needed is a placement change, which the router
// funnels through exactly two call sites (RepairChunk and
// DeleteReplicas, both under the per-chunk in-flight claim).
//
// The cache serves two things per chunk key:
//
//   - data: a prefix [0, len) of the chunk's bytes, filled by
//     successful whole-prefix reads (off == 0). Sub-range reads inside
//     the prefix are served without touching any provider.
//   - hint: the freshest replica set observed for the chunk, filled
//     from the fresh-set returns the stale-hint machinery already
//     produces (see GetFrom) and from the reaper's hint-rewrite. A
//     cached hint is advisory: at worst it is stale and costs one
//     failover that refreshes it; it can never fail a read.
//
// Capacity is bounded in bytes, split evenly across a fixed power-of-two
// shard count (one lock per shard, so concurrent readers on different
// chunks never contend). Each shard trims under pressure: inserts that
// push the shard past its budget evict entries in insertion order until
// it fits. Invalidation is best-effort against in-flight fills — a read
// racing a repair may re-install an entry the repair just dropped — but
// that is safe for the same reason the cache exists at all: data is
// immutable and hints self-correct on the next read.
package provider

import (
	"sync"
	"sync/atomic"

	"repro/internal/chunk"
	"repro/internal/metrics"
)

// ReadCacheConfig sizes a ReadCache. Zero fields select defaults.
type ReadCacheConfig struct {
	// Shards is the fixed shard count, rounded up to a power of two
	// (default 16). More shards means less lock contention.
	Shards int
	// MaxBytes bounds the cache's total footprint across all shards —
	// cached chunk bytes plus a nominal cost per hint entry
	// (default 64 MiB).
	MaxBytes int64
}

func (c ReadCacheConfig) withDefaults() ReadCacheConfig {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	return c
}

// ReadCacheStats are cumulative cache counters plus the current
// footprint.
type ReadCacheStats struct {
	Hits          int64 // data lookups served from the cache
	Misses        int64 // data lookups that went to a provider
	HintHits      int64 // hint lookups that found a cached replica set
	HintMisses    int64
	Fills         int64 // data entries installed or grown
	HintFills     int64 // hint entries installed or replaced
	Evictions     int64 // entries trimmed under capacity pressure
	Invalidations int64 // entries dropped by placement changes
	Entries       int   // current entry count
	Bytes         int64 // current footprint
}

// HitRate returns Hits / (Hits + Misses), or 0 with no lookups.
func (s ReadCacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// cacheEntry is one chunk's cached state: a data prefix, a replica-set
// hint, or both.
type cacheEntry struct {
	data []byte // prefix [0, len) of the chunk; nil = hint-only
	hint []ID   // freshest replica set observed; nil = data-only
}

// entryOverhead is the nominal bookkeeping cost charged per entry, so
// a flood of hint-only entries (the old per-handle leak) is bounded by
// MaxBytes too, not just data.
const entryOverhead = 64

func (e *cacheEntry) cost() int64 {
	return int64(len(e.data)) + int64(len(e.hint))*8 + entryOverhead
}

// cacheShard is one lock domain of the cache.
type cacheShard struct {
	mu      sync.Mutex
	entries map[chunk.Key]*cacheEntry
	order   []chunk.Key // insertion order; the trim victim queue
	bytes   int64
}

// ReadCache is the shared bounded read-through cache. Safe for
// concurrent use. See the file comment for the contract.
type ReadCache struct {
	shards   []cacheShard
	mask     uint64
	perShard int64

	hits, misses         atomic.Int64
	hintHits, hintMisses atomic.Int64
	fills, hintFills     atomic.Int64
	evictions            atomic.Int64
	invalidations        atomic.Int64

	// met mirrors the counters above into a metrics registry; handles
	// are nil until SetMetrics, so every mirror call no-ops when the
	// cache is un-wired.
	met struct {
		hits          *metrics.Counter
		misses        *metrics.Counter
		fills         *metrics.Counter
		evictions     *metrics.Counter
		invalidations *metrics.Counter
	}
}

// SetMetrics mirrors the cache's data-path counters (hits, misses,
// fills, evictions, invalidations; hint traffic is visible via Stats)
// into reg. Call before serving traffic; a nil registry leaves metrics
// disabled.
func (c *ReadCache) SetMetrics(reg *metrics.Registry) {
	c.met.hits = reg.Counter("bs_cache_hits_total")
	c.met.misses = reg.Counter("bs_cache_misses_total")
	c.met.fills = reg.Counter("bs_cache_fills_total")
	c.met.evictions = reg.Counter("bs_cache_evictions_total")
	c.met.invalidations = reg.Counter("bs_cache_invalidations_total")
}

// NewReadCache builds a cache with the given (defaulted) configuration.
func NewReadCache(cfg ReadCacheConfig) *ReadCache {
	cfg = cfg.withDefaults()
	c := &ReadCache{
		shards:   make([]cacheShard, cfg.Shards),
		mask:     uint64(cfg.Shards - 1),
		perShard: cfg.MaxBytes / int64(cfg.Shards),
	}
	if c.perShard < 1 {
		c.perShard = 1
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[chunk.Key]*cacheEntry)
	}
	return c
}

// shardFor hashes a chunk key onto its shard (FNV-1a over the key
// fields).
func (c *ReadCache) shardFor(key chunk.Key) *cacheShard {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(key.Blob)
	mix(key.Version)
	mix(uint64(key.Index))
	return &c.shards[h&c.mask]
}

// GetData serves a sub-range read from the cached prefix, if the whole
// requested range lies inside it. The returned slice is a copy.
func (c *ReadCache) GetData(key chunk.Key, off, length int64) ([]byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	e := s.entries[key]
	if e == nil || e.data == nil || off < 0 || length < 0 || off+length > int64(len(e.data)) {
		s.mu.Unlock()
		c.misses.Add(1)
		c.met.misses.Inc()
		return nil, false
	}
	out := make([]byte, length)
	copy(out, e.data[off:off+length])
	s.mu.Unlock()
	c.hits.Add(1)
	c.met.hits.Inc()
	return out, true
}

// Hint returns the cached fresh replica set for a chunk, if any. The
// returned slice is a copy.
func (c *ReadCache) Hint(key chunk.Key) ([]ID, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	e := s.entries[key]
	if e == nil || e.hint == nil {
		s.mu.Unlock()
		c.hintMisses.Add(1)
		return nil, false
	}
	out := make([]ID, len(e.hint))
	copy(out, e.hint)
	s.mu.Unlock()
	c.hintHits.Add(1)
	return out, true
}

// FillData installs (or grows) a chunk's cached prefix. data must be
// the chunk's bytes starting at offset 0; the cache takes ownership of
// the slice. Shorter prefixes than the cached one are ignored.
func (c *ReadCache) FillData(key chunk.Key, data []byte) {
	if len(data) == 0 {
		return
	}
	if c.fill(key, func(e *cacheEntry) bool {
		if len(e.data) >= len(data) {
			return false
		}
		e.data = data
		return true
	}) {
		c.fills.Add(1)
		c.met.fills.Inc()
	}
}

// FillHint installs (or replaces) a chunk's cached replica set. The
// ids slice is copied.
func (c *ReadCache) FillHint(key chunk.Key, ids []ID) {
	if len(ids) == 0 {
		return
	}
	if c.fill(key, func(e *cacheEntry) bool {
		e.hint = append([]ID(nil), ids...)
		return true
	}) {
		c.hintFills.Add(1)
	}
}

// fill applies update to the key's entry (creating it if needed) and
// trims the shard under pressure. update returns false to leave the
// entry untouched; fill reports whether the value was installed.
func (c *ReadCache) fill(key chunk.Key, update func(*cacheEntry) bool) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	fresh := e == nil
	if fresh {
		e = &cacheEntry{}
	}
	before := e.cost()
	if !update(e) {
		return false
	}
	if e.cost() > c.perShard {
		// A single entry over the shard budget would evict everything
		// else and still not fit; refuse it instead.
		if fresh {
			return false
		}
		s.bytes -= before
		delete(s.entries, key)
		c.evictions.Add(1)
		c.met.evictions.Inc()
		return false
	}
	if fresh {
		s.entries[key] = e
		s.order = append(s.order, key)
		s.bytes += e.cost()
	} else {
		s.bytes += e.cost() - before
	}
	// Trim under pressure: evict in insertion order until the shard
	// fits its budget again.
	for s.bytes > c.perShard && len(s.order) > 0 {
		victim := s.order[0]
		s.order = s.order[1:]
		ve := s.entries[victim]
		if ve == nil {
			continue // already invalidated
		}
		if victim == key {
			// Never evict the entry being filled this instant; requeue
			// it behind the others.
			s.order = append(s.order, victim)
			if len(s.order) == 1 {
				break
			}
			continue
		}
		s.bytes -= ve.cost()
		delete(s.entries, victim)
		c.evictions.Add(1)
		c.met.evictions.Inc()
	}
	return true
}

// Invalidate drops everything cached for a chunk — called by the
// router when the chunk's placement changes (repair moved the copies,
// or the collector deleted them).
func (c *ReadCache) Invalidate(key chunk.Key) {
	s := c.shardFor(key)
	s.mu.Lock()
	if e := s.entries[key]; e != nil {
		s.bytes -= e.cost()
		delete(s.entries, key)
		c.invalidations.Add(1)
		c.met.invalidations.Inc()
	}
	s.mu.Unlock()
}

// Len returns the current entry count.
func (c *ReadCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Bytes returns the current footprint.
func (c *ReadCache) Bytes() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the cache counters.
func (c *ReadCache) Stats() ReadCacheStats {
	return ReadCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		HintHits:      c.hintHits.Load(),
		HintMisses:    c.hintMisses.Load(),
		Fills:         c.fills.Load(),
		HintFills:     c.hintFills.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       c.Len(),
		Bytes:         c.Bytes(),
	}
}
