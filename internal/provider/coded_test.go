package provider

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/iosim"
)

// codedRouter builds a fault-injectable router in rs-k+m mode over n
// providers split into the given number of contiguous domains.
func codedRouter(t *testing.T, n, domains, k, m int) (*Router, []*chunk.FaultStore) {
	t.Helper()
	mgr, faults := NewFaultPoolInDomains(n, domains, iosim.CostModel{})
	r := NewRouter(mgr)
	if err := r.SetCoding(k, m); err != nil {
		t.Fatal(err)
	}
	return r, faults
}

func TestParseCoding(t *testing.T) {
	for _, tc := range []struct {
		in   string
		k, m int
		ok   bool
	}{
		{"", 0, 0, true},
		{"rs-4+2", 4, 2, true},
		{"rs-1+1", 1, 1, true},
		{"rs-10+4", 10, 4, true},
		{"rs-0+2", 0, 0, false},
		{"rs-4+0", 0, 0, false},
		{"rs-4-2", 0, 0, false},
		{"rs-", 0, 0, false},
		{"xor-4+2", 0, 0, false},
		{"4+2", 0, 0, false},
		{"rs-200+60", 0, 0, false}, // k+m > 256
	} {
		k, m, err := ParseCoding(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseCoding(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && (k != tc.k || m != tc.m) {
			t.Fatalf("ParseCoding(%q) = %d+%d, want %d+%d", tc.in, k, m, tc.k, tc.m)
		}
	}
}

func TestCodedPutGetRoundTrip(t *testing.T) {
	r, _ := codedRouter(t, 6, 0, 4, 2)
	rng := rand.New(rand.NewSource(11))
	for _, size := range []int{1, 7, 100, 4096, 65537} {
		key := chunk.Key{Blob: 1, Version: 1, Index: uint32(size)}
		data := make([]byte, size)
		rng.Read(data)
		ids, err := r.Put(key, data)
		if err != nil {
			t.Fatalf("size %d: Put: %v", size, err)
		}
		if len(ids) != 6 {
			t.Fatalf("size %d: placement has %d fragments, want k+m=6", size, len(ids))
		}
		seen := map[ID]bool{}
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("size %d: duplicate fragment target in %v", size, ids)
			}
			seen[id] = true
		}
		// Full read and a handful of sub-ranges must all come back
		// byte-identical, off the direct (non-degraded) path.
		got, err := r.Get(key, 0, int64(size))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("size %d: full Get mismatch (%v)", size, err)
		}
		for i := 0; i < 8; i++ {
			off := rng.Intn(size)
			length := 1 + rng.Intn(size-off)
			got, err := r.Get(key, int64(off), int64(length))
			if err != nil || !bytes.Equal(got, data[off:off+length]) {
				t.Fatalf("size %d: Get(%d,%d) mismatch (%v)", size, off, length, err)
			}
		}
	}
}

// TestCodedAllLossPatterns is the durability contract, exhaustively: at
// rs-4+2 EVERY single- and double-fragment loss must reconstruct the
// blob byte-identically, over both the mem and disk chunk backends.
func TestCodedAllLossPatterns(t *testing.T) {
	for _, backend := range []string{"mem", "disk"} {
		t.Run(backend, func(t *testing.T) {
			rawURL := "mem://"
			if backend == "disk" {
				rawURL = "disk://" + t.TempDir()
			}
			mgr, faults, err := NewURLPoolInDomains(rawURL, 6, 0, iosim.CostModel{}, true)
			if err != nil {
				t.Fatal(err)
			}
			r := NewRouter(mgr)
			if err := r.SetCoding(4, 2); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			data := make([]byte, 10000)
			rng.Read(data)
			key := chunk.Key{Blob: 7, Version: 1, Index: 0}
			ids, err := r.Put(key, data)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 6 {
				t.Fatalf("placement %v, want 6 fragments", ids)
			}
			// Every loss pattern {a} and {a,b}: kill those fragment
			// holders at the STORE level, read, compare, revive.
			for a := 0; a < 6; a++ {
				for b := a; b < 6; b++ {
					faults[ids[a]].SetDown(true)
					faults[ids[b]].SetDown(true)
					got, err := r.Get(key, 0, int64(len(data)))
					if err != nil {
						t.Fatalf("loss {%d,%d}: Get: %v", a, b, err)
					}
					if !bytes.Equal(got, data) {
						t.Fatalf("loss {%d,%d}: reconstruction not byte-identical", a, b)
					}
					// Sub-range reads reconstruct too.
					got, err = r.Get(key, 2500, 5000)
					if err != nil || !bytes.Equal(got, data[2500:7500]) {
						t.Fatalf("loss {%d,%d}: sub-range: %v", a, b, err)
					}
					faults[ids[a]].SetDown(false)
					faults[ids[b]].SetDown(false)
				}
			}
			// m+1 = 3 losses is beyond the code's tolerance: the read
			// must FAIL, never fabricate bytes.
			for i := 0; i < 3; i++ {
				faults[ids[i]].SetDown(true)
			}
			if _, err := r.Get(key, 0, int64(len(data))); err == nil {
				t.Fatal("Get with m+1 fragments lost must fail")
			}
		})
	}
}

// TestCodedWriteQuorum: coded mode floors the write quorum at k —
// below k fragments the chunk would be born unreadable.
func TestCodedWriteQuorum(t *testing.T) {
	r, faults := codedRouter(t, 6, 0, 4, 2)
	if q := r.WriteQuorum(); q != 5 {
		t.Fatalf("default coded quorum = %d, want n-1 = 5", q)
	}
	// The floor: an explicit quorum below k clamps up to k.
	r.SetWriteQuorum(2)
	if q := r.WriteQuorum(); q != 4 {
		t.Fatalf("quorum 2 clamps to %d, want floor k = 4", q)
	}
	r.SetWriteQuorum(0)

	// One dead store: 5/6 fragments land, default quorum met, and the
	// placement still records all six positions.
	faults[3].SetDown(true)
	key := chunk.Key{Blob: 1, Version: 1, Index: 0}
	data := bytes.Repeat([]byte("quorum"), 100)
	ids, err := r.Put(key, data)
	if err != nil {
		t.Fatalf("Put with one dead store: %v", err)
	}
	if len(ids) != 6 {
		t.Fatalf("placement records %d positions, want all 6", len(ids))
	}
	if got, err := r.Get(key, 0, int64(len(data))); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("degraded-at-birth Get: %v", err)
	}

	// Two dead stores: 4/6 < default quorum 5 — the write fails.
	faults[4].SetDown(true)
	if _, err := r.Put(chunk.Key{Blob: 2}, data); err == nil {
		t.Fatal("Put below quorum must fail")
	}
	// Relaxed to the floor k: 4/6 commits.
	r.SetWriteQuorum(4)
	if _, err := r.Put(chunk.Key{Blob: 3}, data); err != nil {
		t.Fatalf("Put at floor quorum: %v", err)
	}
}

// TestCodedDegradedReadReporting: a coded read that had to reconstruct
// must feed the degraded handler — it is the read-repair signal.
func TestCodedDegradedReadReporting(t *testing.T) {
	r, faults := codedRouter(t, 6, 0, 4, 2)
	var mu sync.Mutex
	var degraded []chunk.Key
	r.SetDegradedHandler(func(key chunk.Key) {
		mu.Lock()
		degraded = append(degraded, key)
		mu.Unlock()
	})
	key := chunk.Key{Blob: 1, Version: 1, Index: 0}
	data := bytes.Repeat([]byte("signal"), 50)
	ids, err := r.Put(key, data)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(degraded) != 0 {
		t.Fatalf("healthy coded Put reported degraded: %v", degraded)
	}
	mu.Unlock()
	faults[ids[0]].SetDown(true)
	if got, err := r.Get(key, 0, int64(len(data))); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("degraded Get: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(degraded) == 0 {
		t.Fatal("reconstructing read never reported the chunk")
	}
}

// TestCodedRepair: repair re-encodes lost fragments from any k
// survivors onto fresh providers and rewrites the placement.
func TestCodedRepair(t *testing.T) {
	r, faults := codedRouter(t, 8, 0, 4, 2)
	key := chunk.Key{Blob: 9, Version: 1, Index: 0}
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 8192)
	rng.Read(data)
	ids, err := r.Put(key, data)
	if err != nil {
		t.Fatal(err)
	}
	if outcome, copied, err := r.RepairChunk(key); outcome != RepairHealthy || copied != 0 || err != nil {
		t.Fatalf("healthy coded RepairChunk = %v/%d/%v", outcome, copied, err)
	}
	// Kill m = 2 fragment holders at the store level.
	faults[ids[1]].SetDown(true)
	faults[ids[4]].SetDown(true)
	if n := r.UnderReplicated(); n != 1 {
		t.Fatalf("UnderReplicated = %d, want 1", n)
	}
	outcome, copied, err := r.RepairChunk(key)
	if outcome != RepairRepaired || copied != 2 || err != nil {
		t.Fatalf("coded RepairChunk = %v/%d/%v, want repaired/2/nil", outcome, copied, err)
	}
	now, _ := r.Locate(key)
	if len(now) != 6 {
		t.Fatalf("post-repair placement %v, want 6 positions", now)
	}
	for _, id := range now {
		if id == ids[1] || id == ids[4] {
			t.Fatalf("placement %v still references a dead store", now)
		}
	}
	if live, want, _ := r.VerifyReplicas(key); live != 6 || want != 6 {
		t.Fatalf("VerifyReplicas after repair = %d/%d", live, want)
	}
	if got, err := r.Get(key, 0, int64(len(data))); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-repair Get mismatch (%v)", err)
	}
	// And the repaired fragments are real: lose two OTHER positions and
	// reconstruction still works, proving repair wrote position-correct
	// bytes rather than copies of something else.
	faults[now[0]].SetDown(true)
	faults[now[5]].SetDown(true)
	if got, err := r.Get(key, 0, int64(len(data))); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-repair degraded Get mismatch (%v)", err)
	}
	faults[now[0]].SetDown(false)
	faults[now[5]].SetDown(false)

	// Below k survivors the chunk is lost — repair must say so.
	for i := 0; i < 3; i++ {
		faults[now[i]].SetDown(true)
	}
	if outcome, _, err := r.RepairChunk(key); outcome != RepairLost || err == nil {
		t.Fatalf("RepairChunk below k = %v/%v, want lost/error", outcome, err)
	}
}

// TestCodedRepairPassDomainKill: a full Repair() pass after losing an
// entire failure domain heals every chunk back to full degree with the
// domain-spread invariant restored.
func TestCodedRepairPassDomainKill(t *testing.T) {
	// 12 providers in 6 domains of 2: rs-4+2 spreads one fragment per
	// domain; killing one domain costs every chunk exactly one fragment.
	// The kill is flag-level (the detector/operator has noticed), so the
	// spread audit measures against the 5 remaining live domains.
	mgr, _ := NewPoolInDomains(12, 6, iosim.CostModel{})
	r := NewRouter(mgr)
	if err := r.SetCoding(4, 2); err != nil {
		t.Fatal(err)
	}
	const chunks = 10
	rng := rand.New(rand.NewSource(5))
	payloads := make([][]byte, chunks)
	for i := range payloads {
		payloads[i] = make([]byte, 2048)
		rng.Read(payloads[i])
		if _, err := r.Put(chunk.Key{Blob: 1, Index: uint32(i)}, payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Domain zone0 = providers 0 and 1.
	if err := mgr.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	if err := mgr.SetDown(1, true); err != nil {
		t.Fatal(err)
	}
	st := r.Repair()
	if st.Scanned != chunks || st.Lost != 0 || st.Failed != 0 || st.Repaired != st.Degraded {
		t.Fatalf("domain-kill repair stats %+v", st)
	}
	if n := r.UnderReplicated(); n != 0 {
		t.Fatalf("UnderReplicated after repair = %d", n)
	}
	if v := r.SpreadAudit(); len(v) != 0 {
		t.Fatalf("SpreadAudit after repair: %v", v)
	}
	for i := range payloads {
		key := chunk.Key{Blob: 1, Index: uint32(i)}
		got, err := r.Get(key, 0, int64(len(payloads[i])))
		if err != nil || !bytes.Equal(got, payloads[i]) {
			t.Fatalf("chunk %d after domain-kill repair: %v", i, err)
		}
	}
	// Idempotence: a second pass finds nothing.
	if st := r.Repair(); st.Degraded != 0 || st.Copied != 0 {
		t.Fatalf("second repair pass not idempotent: %+v", st)
	}
}

// TestCodedGetFromHint: coded hints are positional, so GetFrom must
// serve from CURRENT placement and refresh the caller whenever the hint
// differs from it in any position or order.
func TestCodedGetFromHint(t *testing.T) {
	r, faults := codedRouter(t, 8, 0, 4, 2)
	key := chunk.Key{Blob: 1, Version: 1, Index: 0}
	data := bytes.Repeat([]byte("hint"), 64)
	ids, err := r.Put(key, data)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh hint: no refresh.
	got, fresh, err := r.GetFrom(ids, key, 0, int64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("GetFrom: %v", err)
	}
	if fresh != nil {
		t.Fatalf("up-to-date hint refreshed to %v", fresh)
	}
	// Repair moves fragments; the old hint must be replaced with the
	// exact new placement (order matters for positional fragments).
	faults[ids[2]].SetDown(true)
	if outcome, _, err := r.RepairChunk(key); outcome != RepairRepaired || err != nil {
		t.Fatalf("repair: %v/%v", outcome, err)
	}
	want, _ := r.Locate(key)
	got, fresh, err = r.GetFrom(ids, key, 0, int64(len(data)))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("stale-hint GetFrom: %v", err)
	}
	if fmt.Sprint(fresh) != fmt.Sprint(want) {
		t.Fatalf("refreshed hint = %v, want placement %v", fresh, want)
	}
}

// TestCodedOpenReader: the streaming read path reconstructs too.
func TestCodedOpenReader(t *testing.T) {
	r, faults := codedRouter(t, 6, 0, 4, 2)
	key := chunk.Key{Blob: 1, Version: 1, Index: 0}
	rng := rand.New(rand.NewSource(9))
	data := make([]byte, 5000)
	rng.Read(data)
	ids, err := r.Put(key, data)
	if err != nil {
		t.Fatal(err)
	}
	check := func(off, length int64) {
		t.Helper()
		rc, err := r.OpenReader(key, off, length)
		if err != nil {
			t.Fatalf("OpenReader(%d,%d): %v", off, length, err)
		}
		defer rc.Close()
		got, err := io.ReadAll(rc)
		if err != nil || !bytes.Equal(got, data[off:off+length]) {
			t.Fatalf("OpenReader(%d,%d) mismatch (%v)", off, length, err)
		}
	}
	check(0, 5000)
	check(1234, 2000)
	faults[ids[1]].SetDown(true)
	faults[ids[5]].SetDown(true)
	check(0, 5000)
	check(1234, 2000)
}

// TestCodedModeExclusions: coding config is validated and the mode is
// all-or-nothing at the router level.
func TestCodedModeExclusions(t *testing.T) {
	m, _ := NewPool(6, iosim.CostModel{})
	r := NewRouter(m)
	if err := r.SetCoding(0, 2); err == nil {
		t.Fatal("SetCoding(0,2) must fail")
	}
	if err := r.SetCoding(4, 2); err != nil {
		t.Fatal(err)
	}
	if k, mm, on := r.Coding(); !on || k != 4 || mm != 2 {
		t.Fatalf("Coding = %d+%d,%v", k, mm, on)
	}
	if err := r.SetCoding(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, on := r.Coding(); on {
		t.Fatal("SetCoding(0,0) must disable coding")
	}
}

// TestPutStreamSizeBound is the regression test for the unchecked
// wire-declared size: at R>1 PutStream used to allocate size bytes
// before reading anything, so a forged 2 GiB header forced a 2 GiB
// allocation. Now the declared size is bounded by MaxChunkSize with a
// typed error BEFORE any allocation.
func TestPutStreamSizeBound(t *testing.T) {
	m, _ := NewPool(3, iosim.CostModel{})
	r := NewRouter(m)
	r.SetReplicas(2)
	key := chunk.Key{Blob: 1, Version: 1, Index: 0}

	// A forged huge size must fail typed, not allocate-and-EOF.
	_, err := r.PutStream(key, 1<<31, bytes.NewReader(nil))
	if !errors.Is(err, ErrChunkTooLarge) {
		t.Fatalf("PutStream(2GiB) = %v, want ErrChunkTooLarge", err)
	}
	var typed *ChunkTooLargeError
	if !errors.As(err, &typed) || typed.Size != 1<<31 || typed.Max != DefaultMaxChunkSize {
		t.Fatalf("typed error = %+v", err)
	}
	if !strings.Contains(err.Error(), "max chunk size") {
		t.Fatalf("error text %q", err)
	}

	// Negative sizes are equally forged.
	if _, err := r.PutStream(key, -1, bytes.NewReader(nil)); !errors.Is(err, ErrChunkTooLarge) {
		t.Fatalf("PutStream(-1) = %v, want ErrChunkTooLarge", err)
	}

	// The bound is configurable and exact: size == max passes, max+1
	// fails. Applies to the R==1 zero-copy path too.
	r.SetMaxChunkSize(16)
	if _, err := r.PutStream(key, 17, bytes.NewReader(make([]byte, 17))); !errors.Is(err, ErrChunkTooLarge) {
		t.Fatalf("PutStream(max+1) = %v, want ErrChunkTooLarge", err)
	}
	if _, err := r.PutStream(key, 16, bytes.NewReader(make([]byte, 16))); err != nil {
		t.Fatalf("PutStream(max): %v", err)
	}
	r2 := NewRouter(m)
	r2.SetMaxChunkSize(8)
	if _, err := r2.PutStream(chunk.Key{Blob: 2}, 9, bytes.NewReader(make([]byte, 9))); !errors.Is(err, ErrChunkTooLarge) {
		t.Fatalf("R=1 PutStream(max+1) = %v, want ErrChunkTooLarge", err)
	}
	// SetMaxChunkSize(0) restores the default.
	r2.SetMaxChunkSize(0)
	if got := r2.MaxChunkSize(); got != DefaultMaxChunkSize {
		t.Fatalf("MaxChunkSize after reset = %d", got)
	}

	// Coded mode materializes the payload too — same bound.
	rc, _ := codedRouter(t, 6, 0, 4, 2)
	rc.SetMaxChunkSize(1024)
	if _, err := rc.PutStream(key, 4096, bytes.NewReader(make([]byte, 4096))); !errors.Is(err, ErrChunkTooLarge) {
		t.Fatalf("coded PutStream over max = %v, want ErrChunkTooLarge", err)
	}
	if _, err := rc.PutStream(key, 1024, bytes.NewReader(make([]byte, 1024))); err != nil {
		t.Fatalf("coded PutStream at max: %v", err)
	}
}

// TestCodedStorageOverhead: the point of the exercise — rs-4+2 stores
// ~1.5x the logical bytes where R=3 stores 3x.
func TestCodedStorageOverhead(t *testing.T) {
	logical := int64(0)
	stored := func(r *Router) int64 {
		var n int64
		for _, u := range r.Usage() {
			n += u.Bytes
		}
		return n
	}
	mgrC, _ := NewPool(6, iosim.CostModel{})
	rc := NewRouter(mgrC)
	if err := rc.SetCoding(4, 2); err != nil {
		t.Fatal(err)
	}
	mgrR, _ := NewPool(6, iosim.CostModel{})
	rr := NewRouter(mgrR)
	rr.SetReplicas(3)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 32; i++ {
		data := make([]byte, 4096+rng.Intn(4096))
		rng.Read(data)
		logical += int64(len(data))
		key := chunk.Key{Blob: 1, Index: uint32(i)}
		if _, err := rc.Put(key, data); err != nil {
			t.Fatal(err)
		}
		if _, err := rr.Put(key, data); err != nil {
			t.Fatal(err)
		}
	}
	codedX := float64(stored(rc)) / float64(logical)
	replX := float64(stored(rr)) / float64(logical)
	if codedX > 1.6 {
		t.Fatalf("coded overhead %.2fx, want <= 1.6x", codedX)
	}
	if replX < 2.9 {
		t.Fatalf("replicated overhead %.2fx, want ~3x", replX)
	}
}
