package provider

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/chunk"
)

// This file is the Router's streaming data plane: chunk writes fed
// from an io.Reader and chunk reads served as an io.ReadCloser, so the
// remote framed transport can move payloads socket→store and
// store→socket without materializing them. Placement, quorum, health
// reporting and degraded-read accounting are shared with the buffered
// Put/Get paths; only the payload transport differs.

// DefaultMaxChunkSize bounds the declared size of a streamed chunk put
// when SetMaxChunkSize was never called. Generous — chunks are
// normally a few MiB — while still refusing the pathological sizes a
// corrupt or hostile wire header can declare.
const DefaultMaxChunkSize = 1 << 30

// ErrChunkTooLarge is the sentinel matched (via errors.Is) by
// ChunkTooLargeError.
var ErrChunkTooLarge = errors.New("provider: chunk exceeds max chunk size")

// ChunkTooLargeError rejects a streamed put whose declared size is
// negative or exceeds the configured bound. The check runs before ANY
// buffer allocation: the replicated and coded PutStream paths
// materialize the payload into a size-sized buffer, and the size comes
// straight from the wire header — an unchecked value would let one
// corrupt frame force an arbitrary allocation.
type ChunkTooLargeError struct {
	Size int64 // declared payload size
	Max  int64 // configured bound
}

// Error implements error.
func (e *ChunkTooLargeError) Error() string {
	return fmt.Sprintf("provider: declared chunk size %d exceeds max chunk size %d", e.Size, e.Max)
}

// Is matches the ErrChunkTooLarge sentinel.
func (e *ChunkTooLargeError) Is(target error) bool { return target == ErrChunkTooLarge }

// SetMaxChunkSize bounds the declared size PutStream accepts; v <= 0
// restores DefaultMaxChunkSize.
func (r *Router) SetMaxChunkSize(v int64) {
	r.cfg.Lock()
	r.maxChunk = v
	r.cfg.Unlock()
}

// MaxChunkSize returns the effective streamed-put size bound.
func (r *Router) MaxChunkSize() int64 {
	r.cfg.RLock()
	defer r.cfg.RUnlock()
	if r.maxChunk <= 0 {
		return DefaultMaxChunkSize
	}
	return r.maxChunk
}

// PutStream stores a chunk whose payload arrives as a stream of
// exactly size bytes. With R == 1 (the default) the stream is handed
// straight to the provider's store — the zero-copy fast path the
// framed transport exists for. With R > 1, and in coded mode, the
// payload must be materialized once anyway to fan out to the targets,
// so the stream is buffered and delegated to the replicated/coded Put
// path (quorum, health and degraded accounting included). The declared
// size is bounded by MaxChunkSize before anything is allocated; an
// oversize or negative size fails with a typed *ChunkTooLargeError.
// Callers must not retry a failed PutStream with the same reader: the
// stream may be partially consumed.
func (r *Router) PutStream(key chunk.Key, size int64, rd io.Reader) ([]ID, error) {
	if max := r.MaxChunkSize(); size < 0 || size > max {
		return nil, &ChunkTooLargeError{Size: size, Max: max}
	}
	if _, _, coded := r.Coding(); coded || r.Replicas() > 1 {
		buf := make([]byte, size)
		if _, err := io.ReadFull(rd, buf); err != nil {
			return nil, fmt.Errorf("provider: stream %s: %w", key, err)
		}
		return r.Put(key, buf)
	}
	var start time.Time
	if r.met.putSec != nil {
		start = time.Now()
	}
	targets, err := r.AllocateN(1)
	if err != nil {
		return nil, err
	}
	p := targets[0]
	if p.Down() {
		return nil, fmt.Errorf("provider: write quorum not met (0/1 copies, need 1): provider %d: %w", p.ID(), ErrProviderDown)
	}
	err = p.Store().PutFromReader(key, size, rd)
	r.reportError(p.ID(), err)
	if err != nil {
		return nil, fmt.Errorf("provider: write quorum not met (0/1 copies, need 1): provider %d: %w", p.ID(), err)
	}
	stored := []ID{p.ID()}
	r.place.mu.Lock()
	r.place.m[key] = stored
	r.place.mu.Unlock()
	r.met.putTotal.Inc()
	r.met.putBytes.Add(size)
	if r.met.putSec != nil {
		r.met.putSec.ObserveSince(start)
	}
	return stored, nil
}

// OpenReader opens a streaming read over a chunk sub-range, failing
// over across replicas at open time exactly like Get (down providers
// skipped, open errors move to the next copy, locality-ordered).
// Unlike Get, failover covers only the open: once a stream is handed
// out, a mid-stream error surfaces to the caller, because bytes may
// already have left for the consumer. The read cache is bypassed —
// streaming reads exist for payloads too large to cache.
func (r *Router) OpenReader(key chunk.Key, off, length int64) (io.ReadCloser, error) {
	if code := r.codeState(); code != nil {
		return r.openCoded(code, key, off, length)
	}
	ids, ok := r.Locate(key)
	if !ok {
		return nil, fmt.Errorf("%w: %s", chunk.ErrNotFound, key)
	}
	rc, skips, storeErrs, err := r.openFromSet(ids, key, off, length)
	if err != nil {
		return nil, err
	}
	if skips+storeErrs > 0 {
		r.maybeNoteDegraded(key, storeErrs)
	}
	return rc, nil
}

// OpenFrom opens a streaming read trying the given replica hint first,
// with the same fallback-to-placement and fresh-set semantics as
// GetFrom (minus the read cache, which streaming bypasses): a non-nil
// fresh return means the hint is stale and the caller should replace
// it.
func (r *Router) OpenFrom(replicas []ID, key chunk.Key, off, length int64) (rc io.ReadCloser, fresh []ID, err error) {
	if code := r.codeState(); code != nil {
		return r.openFromCoded(code, replicas, key, off, length)
	}
	if len(replicas) > 0 {
		rc, skips, storeErrs, err := r.openFromSet(replicas, key, off, length)
		if err == nil {
			if skips+storeErrs > 0 {
				r.maybeNoteDegraded(key, storeErrs)
				if fresh, ok := r.Locate(key); ok && !sameIDSet(fresh, replicas) {
					return rc, fresh, nil
				}
			}
			return rc, nil, nil
		}
	}
	ids, ok := r.Locate(key)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", chunk.ErrNotFound, key)
	}
	rc, skips, storeErrs, oerr := r.openFromSet(ids, key, off, length)
	if oerr != nil {
		return nil, nil, oerr
	}
	if skips+storeErrs > 0 {
		r.maybeNoteDegraded(key, storeErrs)
	}
	return rc, ids, nil
}

// openFromSet is getFromSet's streaming twin: try each replica in
// preference order, return the first successfully opened stream with
// the same failover accounting, feeding the health monitor and
// locality counters.
func (r *Router) openFromSet(ids []ID, key chunk.Key, off, length int64) (rc io.ReadCloser, skips, storeErrs int, err error) {
	if len(ids) == 0 {
		return nil, 0, 0, fmt.Errorf("%w: %s (empty replica set)", chunk.ErrNotFound, key)
	}
	var start time.Time
	if r.met.getSec != nil {
		start = time.Now()
	}
	local, prefer := r.readLocality()
	var lastErr error
	for _, id := range r.replicaOrder(ids, local, prefer) {
		p := r.byID(id)
		if p == nil {
			lastErr = fmt.Errorf("provider: placement references unknown provider %d", id)
			skips++
			continue
		}
		if p.Down() {
			lastErr = fmt.Errorf("provider %d: %w", id, ErrProviderDown)
			skips++
			continue
		}
		rc, err := p.Store().OpenReader(key, off, length)
		r.reportError(id, err)
		if err == nil {
			switch {
			case local == "":
				r.met.getFlat.Inc()
			case p.Domain() == local:
				r.met.getLocal.Inc()
				r.locLocalReads.Add(1)
				r.locLocalBytes.Add(length)
			default:
				r.met.getRemote.Inc()
				r.locRemoteReads.Add(1)
				r.locRemoteBytes.Add(length)
			}
			if r.met.getSec != nil {
				r.met.getSec.ObserveSince(start)
			}
			return rc, skips, storeErrs, nil
		}
		lastErr = fmt.Errorf("provider %d: %w", id, err)
		storeErrs++
	}
	return nil, skips, storeErrs, fmt.Errorf("provider: all %d replicas failed for %s: %w", len(ids), key, lastErr)
}
