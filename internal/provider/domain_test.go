package provider

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/chunk"
	"repro/internal/iosim"
)

// domainPool builds an unmetered manager with the given domain labels,
// one provider per label entry.
func domainPool(labels ...string) *Manager {
	m := NewManager()
	for i, d := range labels {
		m.Register(NewInDomain(ID(i), chunk.NewMemStore(nil), d))
	}
	return m
}

// domainRouter builds a fault-injectable replicated router over n
// providers split into the given number of contiguous domains.
func domainRouter(t *testing.T, n, domains, replicas int) (*Router, []*chunk.FaultStore) {
	t.Helper()
	mgr, faults := NewFaultPoolInDomains(n, domains, iosim.CostModel{})
	r := NewRouter(mgr)
	r.SetReplicas(replicas)
	return r, faults
}

// Property: the domain-spread invariant of AllocateN, over random
// provider/domain/R combinations with random down flags. When at least
// n domains have a live provider, the n replicas land in n DISTINCT
// domains; when the pool was configured with fewer than n domains,
// allocation is best-effort — per-call domain counts balanced within
// one wherever a domain still had spare live providers; and when the
// pool promises n domains but fewer are live, the typed
// insufficient-domains error comes back — never a silent co-location.
func TestPropAllocateNDomainSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		pool := 2 + rng.Intn(10)
		confDomains := 1 + rng.Intn(pool)
		labels := make([]string, pool)
		for i := range labels {
			labels[i] = fmt.Sprintf("d%d", rng.Intn(confDomains))
		}
		m := domainPool(labels...)
		configured := m.configuredDomains()

		down := map[ID]bool{}
		for id := 0; id < pool; id++ {
			if rng.Intn(4) == 0 {
				down[ID(id)] = true
				if err := m.SetDown(ID(id), true); err != nil {
					t.Fatal(err)
				}
			}
		}
		liveByDom := map[string]int{}
		live := 0
		for i, d := range labels {
			if !down[ID(i)] {
				liveByDom[d]++
				live++
			}
		}
		if live == 0 {
			continue
		}
		n := 1 + rng.Intn(live)

		for call := 0; call < 3; call++ {
			ps, err := m.AllocateN(n)
			if err != nil {
				if configured >= n && len(liveByDom) < n {
					if !errors.Is(err, ErrInsufficientDomains) {
						t.Fatalf("trial %d: err = %v, want ErrInsufficientDomains", trial, err)
					}
					var typed *InsufficientDomainsError
					if !errors.As(err, &typed) || typed.Want != n || typed.Live != len(liveByDom) {
						t.Fatalf("trial %d: typed error %+v does not describe the shortage (want %d, live %d)",
							trial, typed, n, len(liveByDom))
					}
					break // every call fails the same way
				}
				t.Fatalf("trial %d: AllocateN(%d) over %d domains (%d live): %v",
					trial, n, configured, len(liveByDom), err)
			}
			if configured >= n && len(liveByDom) < n {
				t.Fatalf("trial %d: silent spread violation: %d live domains < %d wanted, but no error", trial, len(liveByDom), n)
			}
			perDom := map[string]int{}
			for _, p := range ps {
				if down[p.ID()] {
					t.Fatalf("trial %d: down provider %d allocated", trial, p.ID())
				}
				perDom[p.Domain()]++
			}
			if len(liveByDom) >= n {
				// Strict: one replica per domain, no exceptions.
				for d, c := range perDom {
					if c > 1 {
						t.Fatalf("trial %d: %d replicas co-located in domain %s with %d live domains >= n=%d",
							trial, c, d, len(liveByDom), n)
					}
				}
			} else {
				// Best-effort: a domain may exceed another by more than
				// one only when the lighter domain had no spare live
				// provider to take the difference.
				for d1, c1 := range perDom {
					for d2, c2 := range liveByDom {
						used := perDom[d2]
						if c1 > used+1 && used < c2 {
							t.Fatalf("trial %d: domain %s got %d while domain %s sits at %d with %d live providers",
								trial, d1, c1, d2, used, c2)
						}
					}
				}
			}
		}
	}
}

// The typed insufficient-domains error: a pool configured with enough
// domains refuses to co-locate when a domain outage leaves too few
// live, and recovers as soon as the domain returns.
func TestAllocateNInsufficientDomains(t *testing.T) {
	m := domainPool("a", "a", "b", "b", "c", "c")
	if _, err := m.AllocateN(3); err != nil {
		t.Fatalf("healthy 3-domain allocation: %v", err)
	}
	// Domain c goes down entirely: 2 live domains < 3 wanted.
	for _, id := range []ID{4, 5} {
		if err := m.SetDown(id, true); err != nil {
			t.Fatal(err)
		}
	}
	_, err := m.AllocateN(3)
	if !errors.Is(err, ErrInsufficientDomains) {
		t.Fatalf("err = %v, want ErrInsufficientDomains", err)
	}
	// Providers are checked first: a provider shortage reports as such
	// even when domains are short too.
	for _, id := range []ID{1, 2, 3} {
		if err := m.SetDown(id, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.AllocateN(3); !errors.Is(err, ErrInsufficientProviders) {
		t.Fatalf("err = %v, want ErrInsufficientProviders", err)
	}
	// Domain c revives: strict spread is satisfiable again.
	for _, id := range []ID{1, 2, 3, 4, 5} {
		if err := m.SetDown(id, false); err != nil {
			t.Fatal(err)
		}
	}
	ps, err := m.AllocateN(3)
	if err != nil {
		t.Fatal(err)
	}
	doms := map[string]bool{}
	for _, p := range ps {
		doms[p.Domain()] = true
	}
	if len(doms) != 3 {
		t.Fatalf("replicas span %d domains, want 3", len(doms))
	}
}

// A pool configured with fewer domains than R spreads best-effort —
// never the typed error, per-call counts balanced within one — so flat
// and small-domain legacy deployments keep writing.
func TestAllocateNBestEffortBelowDomainCount(t *testing.T) {
	m := domainPool("a", "a", "b", "b")
	for call := 0; call < 8; call++ {
		ps, err := m.AllocateN(3) // 2 domains < R=3: best-effort
		if err != nil {
			t.Fatalf("call %d: %v", call, err)
		}
		perDom := map[string]int{}
		for _, p := range ps {
			perDom[p.Domain()]++
		}
		if perDom["a"]+perDom["b"] != 3 || perDom["a"] < 1 || perDom["b"] < 1 {
			t.Fatalf("call %d: per-domain counts %v not balanced within one", call, perDom)
		}
	}
}

// A PARTIALLY tagged pool (topology in transition: some providers
// still in the "" default domain) stays FLAT: no typed error, no
// spread audit, no funneling of a copy of every chunk onto the tagged
// minority. Domain semantics activate only once every provider is
// tagged.
func TestAllocateNPartialTagStaysFlat(t *testing.T) {
	m := domainPool("", "", "", "zoneX")
	zoneX := int64(0)
	for call := 0; call < 8; call++ {
		ps, err := m.AllocateN(2)
		if err != nil {
			t.Fatalf("call %d: partial tagging must stay flat: %v", call, err)
		}
		if len(ps) != 2 || ps[0].ID() == ps[1].ID() {
			t.Fatalf("call %d: bad set %v", call, ps)
		}
		for _, p := range ps {
			if p.Domain() == "zoneX" {
				zoneX++
			}
		}
	}
	// Flat round-robin gives the tagged provider its fair 1/4 share of
	// 16 picks, not a copy of every chunk (the funneling hazard).
	if zoneX > 5 {
		t.Fatalf("tagged minority received %d of 16 picks — partial tagging funneled data onto it", zoneX)
	}
	// No typed error either, even with the tagged provider down.
	if err := m.SetDown(3, true); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocateN(2); err != nil {
		t.Fatalf("partial tagging with tagged provider down: %v", err)
	}
	// And the audit is inert during the transition.
	r := NewRouter(m)
	r.SetReplicas(2)
	if r.LiveDomains() != 1 {
		t.Fatalf("LiveDomains = %d on a partially tagged pool, want 1 (flat)", r.LiveDomains())
	}
}

// LeastLoaded on a domain pool must still use every domain: the ring
// rotation follows the globally least-loaded provider, so idle domains
// fill first instead of the first-seen domains absorbing everything.
func TestAllocateNLeastLoadedDomainSpread(t *testing.T) {
	m := domainPool("a", "a", "b", "b", "c", "c", "d", "d")
	m.SetPolicy(LeastLoaded)
	for i := 0; i < 32; i++ {
		if _, err := m.AllocateN(2); err != nil {
			t.Fatal(err)
		}
	}
	perDom := map[string]int64{}
	lo, hi := int64(1<<62), int64(0)
	for _, p := range m.Providers() {
		c := p.Allocated()
		perDom[p.Domain()] += c
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	for d, c := range perDom {
		if c == 0 {
			t.Fatalf("domain %s never allocated: %v", d, perDom)
		}
	}
	if hi-lo > 2 {
		t.Fatalf("per-provider imbalance %d..%d under LeastLoaded", lo, hi)
	}
}

// Cross-call balance on a domain pool: per-provider allocation counts
// stay close (within-domain least-loaded pick + rotating domain ring).
func TestAllocateNDomainBalance(t *testing.T) {
	m := domainPool("a", "a", "b", "b", "c", "c")
	for i := 0; i < 60; i++ {
		if _, err := m.AllocateN(3); err != nil {
			t.Fatal(err)
		}
	}
	lo, hi := int64(1<<62), int64(0)
	for _, p := range m.Providers() {
		c := p.Allocated()
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi-lo > 1 {
		t.Fatalf("per-provider imbalance %d..%d after 60 calls", lo, hi)
	}
}

// Regression: RepairChunk restores the domain SPREAD after a loss, not
// just the replica count — the re-replicated copy lands outside the
// surviving replica's domain even when the dead provider's own domain
// still has a live machine.
func TestRepairRestoresDomainSpread(t *testing.T) {
	// 6 providers, 3 domains of 2 (zone0={0,1}, zone1={2,3}, zone2={4,5}).
	r, _ := domainRouter(t, 6, 3, 2)
	key := chunk.Key{Blob: 1, Version: 1}
	ids, err := r.Put(key, make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	if d0, d1 := r.DomainOf(ids[0]), r.DomainOf(ids[1]); d0 == d1 {
		t.Fatalf("fresh write co-located in %s", d0)
	}
	// The whole domain of replica 0 dies (flags down, the correlated
	// loss); its partner machine in that domain is gone too, so repair
	// must pick a third domain — never the survivor's.
	lostDom := r.DomainOf(ids[0])
	for _, p := range r.Providers() {
		if p.Domain() == lostDom {
			if err := r.SetDown(p.ID(), true); err != nil {
				t.Fatal(err)
			}
		}
	}
	outcome, copied, err := r.RepairChunk(key)
	if err != nil || outcome != RepairRepaired || copied != 1 {
		t.Fatalf("repair = %v, %d, %v", outcome, copied, err)
	}
	now, _ := r.Locate(key)
	doms := map[string]bool{}
	for _, id := range now {
		if d := r.DomainOf(id); doms[d] {
			t.Fatalf("repair co-located replicas %v in domain %s", now, d)
		} else {
			doms[d] = true
		}
		if r.DomainOf(id) == lostDom {
			t.Fatalf("repair placed a copy back into the lost domain %s", lostDom)
		}
	}
	if r.SpreadViolated(key) {
		t.Fatalf("spread still violated after repair: %v", now)
	}
}

// Regression: a chunk at FULL count whose replicas co-locate (the
// topology changed under it — retagged domains) is re-spread by
// RepairChunk: one copy moves to an uncovered domain, the co-located
// extra is deleted, and the data stays readable.
func TestRepairRespreadsCoLocatedChunk(t *testing.T) {
	// Flat pool: placement ignores domains entirely.
	r, _ := replicatedRouter(t, 6, 2)
	key := chunk.Key{Blob: 2, Version: 1}
	data := []byte("spread me")
	ids, err := r.Put(key, data)
	if err != nil {
		t.Fatal(err)
	}
	// Retag so both existing replicas share one domain; the rest of
	// the pool forms two more domains.
	var others []ID
	for _, p := range r.Providers() {
		tagged := "zoneA"
		if p.ID() != ids[0] && p.ID() != ids[1] {
			others = append(others, p.ID())
			tagged = fmt.Sprintf("zone%d", len(others)%2)
		}
		if err := r.SetDomain(p.ID(), tagged); err != nil {
			t.Fatal(err)
		}
	}
	if !r.SpreadViolated(key) {
		t.Fatal("co-located chunk not flagged by the audit")
	}
	if audit := r.SpreadAudit(); len(audit) != 1 || audit[0] != key {
		t.Fatalf("SpreadAudit = %v, want [%s]", audit, key)
	}
	outcome, copied, err := r.RepairChunk(key)
	if err != nil || outcome != RepairRepaired || copied != 1 {
		t.Fatalf("re-spread = %v, %d, %v", outcome, copied, err)
	}
	if r.SpreadViolated(key) {
		t.Fatal("still violated after re-spread")
	}
	now, _ := r.Locate(key)
	if len(now) != 2 {
		t.Fatalf("replica count drifted to %d", len(now))
	}
	// The evicted copy is gone from its store; the survivors serve.
	total := 0
	for _, p := range r.Providers() {
		if _, err := p.Store().Len(key); err == nil {
			total++
		}
	}
	if total != 2 {
		t.Fatalf("%d stores hold a copy, want exactly 2", total)
	}
	got, err := r.Get(key, 0, int64(len(data)))
	if err != nil || string(got) != string(data) {
		t.Fatalf("read after re-spread = %q, %v", got, err)
	}
	// Converged: another repair is a no-op.
	if outcome, copied, err := r.RepairChunk(key); outcome != RepairHealthy || copied != 0 || err != nil {
		t.Fatalf("second repair = %v, %d, %v", outcome, copied, err)
	}
}

// Regression: a replica set ABOVE the replication degree (what a
// spread move leaves when its eviction fails) is trimmed back to R by
// the next RepairChunk — the extra copy's storage is reclaimed, not
// leaked until version GC.
func TestRepairTrimsExcessCopies(t *testing.T) {
	r, _ := domainRouter(t, 6, 3, 2)
	key := chunk.Key{Blob: 5, Version: 1}
	data := []byte("one too many")
	ids, err := r.Put(key, data)
	if err != nil {
		t.Fatal(err)
	}
	// Manufacture the failed-eviction aftermath: a third copy exists
	// and placement records it.
	var extra *Provider
	covered := map[string]bool{}
	for _, id := range ids {
		covered[r.DomainOf(id)] = true
	}
	for _, p := range r.Providers() {
		if !covered[p.Domain()] {
			extra = p
			break
		}
	}
	if err := extra.Store().Put(key, data); err != nil {
		t.Fatal(err)
	}
	r.place.mu.Lock()
	r.place.m[key] = append(append([]ID(nil), ids...), extra.ID())
	r.place.mu.Unlock()

	if outcome, copied, err := r.RepairChunk(key); outcome != RepairHealthy || copied != 0 || err != nil {
		t.Fatalf("repair over-degree = %v, %d, %v", outcome, copied, err)
	}
	now, _ := r.Locate(key)
	if len(now) != 2 {
		t.Fatalf("placement still holds %d replicas, want 2", len(now))
	}
	holders := 0
	for _, p := range r.Providers() {
		if _, err := p.Store().Len(key); err == nil {
			holders++
		}
	}
	if holders != 2 {
		t.Fatalf("%d stores hold a copy after trim, want 2", holders)
	}
	if r.SpreadViolated(key) {
		t.Fatalf("trim broke the spread: %v", now)
	}
	if got, err := r.Get(key, 0, int64(len(data))); err != nil || string(got) != string(data) {
		t.Fatalf("read after trim = %q, %v", got, err)
	}
}

// Regression: a stale placement entry naming a dead provider next to
// a full live set (what a spread move leaves when its eviction races a
// store death) is invisible to the probe-based live count — the
// PlacementSuspect audit flags it and RepairChunk prunes it.
func TestRepairPrunesStaleDeadEntry(t *testing.T) {
	r, faults := domainRouter(t, 6, 3, 2)
	key := chunk.Key{Blob: 6, Version: 1}
	ids, err := r.Put(key, make([]byte, 24))
	if err != nil {
		t.Fatal(err)
	}
	// A third recorded replica whose store is dead: live count stays 2.
	var extra ID = -1
	used := map[ID]bool{ids[0]: true, ids[1]: true}
	for _, p := range r.Providers() {
		if !used[p.ID()] {
			extra = p.ID()
			break
		}
	}
	faults[extra].SetDown(true)
	r.place.mu.Lock()
	r.place.m[key] = append(append([]ID(nil), ids...), extra)
	r.place.mu.Unlock()

	if !r.PlacementSuspect(key, r.LiveDomains()) {
		t.Fatal("stale dead entry not flagged by PlacementSuspect")
	}
	if outcome, _, err := r.RepairChunk(key); outcome != RepairRepaired || err != nil {
		t.Fatalf("repair of stale placement = %v, %v", outcome, err)
	}
	now, _ := r.Locate(key)
	if len(now) != 2 {
		t.Fatalf("placement still holds %d entries, want 2", len(now))
	}
	for _, id := range now {
		if id == extra {
			t.Fatalf("stale dead entry %d survived repair: %v", extra, now)
		}
	}
	if r.PlacementSuspect(key, r.LiveDomains()) {
		t.Fatalf("placement still suspect after prune: %v", now)
	}
}

// Repair/delete mutual exclusion (PR 4) holds under domain-constrained
// allocation: a claimed chunk refuses deletion with ErrChunkBusy, a
// repair under a delete claim backs off healthy, and a completed
// delete is never resurrected by a domain-spread repair.
func TestDomainRepairDeleteMutualExclusion(t *testing.T) {
	r, _ := domainRouter(t, 6, 3, 2)
	key := chunk.Key{Blob: 3, Version: 1}
	if _, err := r.Put(key, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if !r.claimKey(key) {
		t.Fatal("claim failed")
	}
	if _, _, err := r.DeleteReplicas(key); !errors.Is(err, ErrChunkBusy) {
		t.Fatalf("delete under repair = %v, want ErrChunkBusy", err)
	}
	if outcome, copied, err := r.RepairChunk(key); outcome != RepairHealthy || copied != 0 || err != nil {
		t.Fatalf("repair under delete = %v, %d, %v", outcome, copied, err)
	}
	r.releaseKey(key)
	if _, _, err := r.DeleteReplicas(key); err != nil {
		t.Fatalf("delete after release: %v", err)
	}
	if outcome, _, _ := r.RepairChunk(key); outcome != RepairHealthy {
		t.Fatalf("repair resurrected a deleted chunk: %v", outcome)
	}
	if _, ok := r.Locate(key); ok {
		t.Fatal("placement entry resurrected")
	}
}

// Domain-kill at the store level (flags still live): RepairChunk's
// probes catch the dead copies and re-spread into surviving domains.
func TestRepairDomainKillStoreLevel(t *testing.T) {
	r, faults := domainRouter(t, 8, 4, 2)
	var keys []chunk.Key
	for i := 0; i < 16; i++ {
		key := chunk.Key{Blob: 4, Version: uint64(i + 1)}
		if _, err := r.Put(key, make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	// Kill every store in zone1 ({2,3}); nobody flips a flag.
	for _, p := range r.Providers() {
		if p.Domain() == "zone1" {
			faults[p.ID()].SetDown(true)
		}
	}
	for _, key := range keys {
		if outcome, _, err := r.RepairChunk(key); outcome == RepairLost || outcome == RepairPartial {
			t.Fatalf("chunk %s: %v, %v — a domain kill at R=2 spread must never lose data", key, outcome, err)
		}
	}
	for _, key := range keys {
		ids, _ := r.Locate(key)
		for _, id := range ids {
			if r.DomainOf(id) == "zone1" {
				t.Fatalf("chunk %s still placed in the dead domain: %v", key, ids)
			}
		}
	}
}
