package provider

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/chunk"
)

func cacheKey(i int) chunk.Key {
	return chunk.Key{Blob: 1, Version: 1, Index: uint32(i)}
}

func TestReadCacheDataPrefixSemantics(t *testing.T) {
	c := NewReadCache(ReadCacheConfig{})
	key := cacheKey(0)
	if _, ok := c.GetData(key, 0, 4); ok {
		t.Fatal("hit on an empty cache")
	}
	c.FillData(key, []byte("hello world"))
	got, ok := c.GetData(key, 6, 5)
	if !ok || string(got) != "world" {
		t.Fatalf("GetData = %q,%v want %q", got, ok, "world")
	}
	// Reads past the cached prefix must miss, not truncate.
	if _, ok := c.GetData(key, 6, 6); ok {
		t.Fatal("hit past the cached prefix")
	}
	if _, ok := c.GetData(key, -1, 2); ok {
		t.Fatal("hit on a negative offset")
	}
	// A shorter fill never shrinks the cached prefix.
	c.FillData(key, []byte("hel"))
	if got, ok := c.GetData(key, 0, 11); !ok || string(got) != "hello world" {
		t.Fatalf("prefix shrank: %q,%v", got, ok)
	}
	// The returned slice is a copy: corrupting it must not corrupt the
	// cache.
	got, _ = c.GetData(key, 0, 5)
	got[0] = 'X'
	if again, _ := c.GetData(key, 0, 5); string(again) != "hello" {
		t.Fatalf("caller write leaked into the cache: %q", again)
	}
}

func TestReadCacheHints(t *testing.T) {
	c := NewReadCache(ReadCacheConfig{})
	key := cacheKey(0)
	if _, ok := c.Hint(key); ok {
		t.Fatal("hint hit on an empty cache")
	}
	ids := []ID{3, 1, 4}
	c.FillHint(key, ids)
	got, ok := c.Hint(key)
	if !ok || !sameIDSet(got, ids) {
		t.Fatalf("Hint = %v,%v want %v", got, ok, ids)
	}
	// The stored hint is a copy of the fill argument and the returned
	// hint a copy of the stored one.
	ids[0] = 99
	got[1] = 99
	if again, _ := c.Hint(key); !sameIDSet(again, []ID{3, 1, 4}) {
		t.Fatalf("caller write leaked into the cached hint: %v", again)
	}
	// Data and hint coexist on one entry; Invalidate drops both.
	c.FillData(key, []byte("data"))
	c.Invalidate(key)
	if _, ok := c.GetData(key, 0, 4); ok {
		t.Fatal("data survived Invalidate")
	}
	if _, ok := c.Hint(key); ok {
		t.Fatal("hint survived Invalidate")
	}
	if st := c.Stats(); st.Invalidations != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("post-invalidate stats: %+v", st)
	}
}

// TestReadCacheBounded floods the cache far past its capacity and
// asserts the byte bound holds — the regression guard for the unbounded
// per-handle hint map this cache retired.
func TestReadCacheBounded(t *testing.T) {
	const maxBytes = 64 << 10
	c := NewReadCache(ReadCacheConfig{Shards: 4, MaxBytes: maxBytes})
	payload := make([]byte, 1024)
	for i := 0; i < 4096; i++ {
		c.FillData(cacheKey(i), append([]byte(nil), payload...))
		c.FillHint(cacheKey(i), []ID{ID(i % 7), ID(i % 5)})
	}
	if got := c.Bytes(); got > maxBytes {
		t.Fatalf("cache holds %d bytes after flood, bound is %d", got, maxBytes)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("flood past capacity evicted nothing: %+v", st)
	}
	if st.Entries == 0 {
		t.Fatal("trim evicted everything; recent entries should survive")
	}
	// Hint-only entries are bounded too (they carry entryOverhead).
	c2 := NewReadCache(ReadCacheConfig{Shards: 1, MaxBytes: 8 << 10})
	for i := 0; i < 100000; i++ {
		c2.FillHint(cacheKey(i), []ID{1, 2})
	}
	if got := c2.Bytes(); got > 8<<10 {
		t.Fatalf("hint flood holds %d bytes, bound is %d", got, 8<<10)
	}
}

// TestReadCacheOversizeEntryRefused: a single value larger than a
// shard's budget must not evict the whole shard just to fail to fit.
func TestReadCacheOversizeEntryRefused(t *testing.T) {
	c := NewReadCache(ReadCacheConfig{Shards: 1, MaxBytes: 4 << 10})
	c.FillData(cacheKey(1), make([]byte, 512))
	c.FillData(cacheKey(2), make([]byte, 8<<10)) // over the whole budget
	if _, ok := c.GetData(cacheKey(2), 0, 8<<10); ok {
		t.Fatal("oversize entry was cached")
	}
	if _, ok := c.GetData(cacheKey(1), 0, 512); !ok {
		t.Fatal("oversize refusal evicted an unrelated entry")
	}
	// Growing an existing entry past the budget drops it rather than
	// carrying an over-budget resident.
	c.FillData(cacheKey(1), make([]byte, 8<<10))
	if _, ok := c.GetData(cacheKey(1), 0, 512); ok {
		t.Fatal("entry grown past the budget stayed resident")
	}
	if got := c.Bytes(); got != 0 {
		t.Fatalf("bytes = %d after refusals, want 0", got)
	}
}

func TestReadCacheStatsAndHitRate(t *testing.T) {
	c := NewReadCache(ReadCacheConfig{})
	key := cacheKey(0)
	c.GetData(key, 0, 1) // miss
	c.FillData(key, []byte("abcd"))
	c.GetData(key, 0, 4) // hit
	c.GetData(key, 1, 2) // hit
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("HitRate = %v, want 2/3", got)
	}
	if (ReadCacheStats{}).HitRate() != 0 {
		t.Fatal("empty HitRate not 0")
	}
}

// TestReadCacheConcurrent hammers fills, lookups and invalidations from
// many goroutines — meaningful under -race, and asserts the byte bound
// holds throughout.
func TestReadCacheConcurrent(t *testing.T) {
	const maxBytes = 32 << 10
	c := NewReadCache(ReadCacheConfig{Shards: 4, MaxBytes: maxBytes})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := cacheKey(i % 64)
				switch (g + i) % 4 {
				case 0:
					c.FillData(key, []byte(fmt.Sprintf("payload-%d", i%64)))
				case 1:
					c.FillHint(key, []ID{ID(i % 8), ID((i + 1) % 8)})
				case 2:
					if data, ok := c.GetData(key, 0, 8); ok && string(data) != fmt.Sprintf("payload-%d", i%64)[:8] {
						t.Errorf("corrupt cached data %q for %v", data, key)
					}
					c.Hint(key)
				default:
					c.Invalidate(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Bytes(); got > maxBytes {
		t.Fatalf("cache holds %d bytes after concurrent churn, bound is %d", got, maxBytes)
	}
}
