// Package provider implements the data-provider layer: a set of chunk
// stores (one per storage machine) and the provider manager that
// allocates chunks to providers. The manager implements the paper's
// load-balancing striping strategy: writes are directed to providers in
// round-robin order so the I/O workload distributes itself across the
// aggregate bandwidth of all machines.
package provider

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/chunk"
	"repro/internal/iosim"
)

// ID identifies one data provider.
type ID int

// Provider couples a chunk store with identity and accounting. The
// meter, when present, lives inside the store (see chunk.NewMemStore),
// so Provider itself only tracks allocation counts.
type Provider struct {
	id        ID
	store     chunk.Store
	allocated atomic.Int64
}

// New builds a provider around the given store.
func New(id ID, store chunk.Store) *Provider {
	return &Provider{id: id, store: store}
}

// ID returns the provider's identity.
func (p *Provider) ID() ID { return p.id }

// Store exposes the underlying chunk store.
func (p *Provider) Store() chunk.Store { return p.store }

// Allocated returns how many chunks the manager has routed here.
func (p *Provider) Allocated() int64 { return p.allocated.Load() }

// ErrNoProviders is returned when the manager has no registered
// providers.
var ErrNoProviders = errors.New("provider: no providers registered")

// Policy selects the allocation strategy for new chunks.
type Policy int

// Allocation policies. RoundRobin is the paper's load-balancing
// strategy; the others exist for the striping ablation.
const (
	// RoundRobin cycles through providers, giving a perfectly uniform
	// distribution.
	RoundRobin Policy = iota
	// Random picks a provider uniformly at random per chunk.
	Random
	// LeastLoaded picks the provider with the fewest allocated chunks.
	LeastLoaded
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "roundrobin"
	case Random:
		return "random"
	case LeastLoaded:
		return "leastloaded"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Manager is the provider manager: it tracks live providers and hands
// out allocation targets for new chunks.
type Manager struct {
	mu        sync.RWMutex
	providers []*Provider
	next      atomic.Uint64
	policy    Policy
	rnd       func() uint64
}

// NewManager builds an empty round-robin manager.
func NewManager() *Manager { return &Manager{} }

// SetPolicy switches the allocation policy. Random uses a fast
// xorshift source seeded from the counter so allocation stays
// deterministic per manager instance.
func (m *Manager) SetPolicy(p Policy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.policy = p
	if p == Random && m.rnd == nil {
		var state uint64 = 0x9E3779B97F4A7C15
		var mu sync.Mutex
		m.rnd = func() uint64 {
			mu.Lock()
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			v := state
			mu.Unlock()
			return v
		}
	}
}

// Policy returns the current allocation policy.
func (m *Manager) Policy() Policy {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.policy
}

// NewPool builds a manager with n in-memory providers, each metered by
// its own exclusive meter using the given cost model. It returns the
// manager and the meters for inspection.
func NewPool(n int, model iosim.CostModel) (*Manager, []*iosim.Meter) {
	m := NewManager()
	meters := make([]*iosim.Meter, 0, n)
	for i := 0; i < n; i++ {
		meter := iosim.NewMeter(model, true)
		meters = append(meters, meter)
		m.Register(New(ID(i), chunk.NewMemStore(meter)))
	}
	return m, meters
}

// Register adds a provider to the pool.
func (m *Manager) Register(p *Provider) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.providers = append(m.providers, p)
}

// Count returns the number of registered providers.
func (m *Manager) Count() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.providers)
}

// Providers returns a snapshot of the registered providers.
func (m *Manager) Providers() []*Provider {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Provider, len(m.providers))
	copy(out, m.providers)
	return out
}

// Allocate returns the provider that should store the next chunk,
// according to the configured policy.
func (m *Manager) Allocate() (*Provider, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.providers) == 0 {
		return nil, ErrNoProviders
	}
	var p *Provider
	switch m.policy {
	case Random:
		p = m.providers[m.rnd()%uint64(len(m.providers))]
	case LeastLoaded:
		p = m.providers[0]
		for _, cand := range m.providers[1:] {
			if cand.Allocated() < p.Allocated() {
				p = cand
			}
		}
	default: // RoundRobin
		i := m.next.Add(1) - 1
		p = m.providers[i%uint64(len(m.providers))]
	}
	p.allocated.Add(1)
	return p, nil
}

// AllocateN returns n allocation targets in round-robin order. Useful
// when a writer knows up front how many chunks one update produces.
func (m *Manager) AllocateN(n int) ([]*Provider, error) {
	out := make([]*Provider, 0, n)
	for i := 0; i < n; i++ {
		p, err := m.Allocate()
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// ForKey returns the provider holding the given chunk key. Placement is
// recorded implicitly: writers store through the provider returned by
// Allocate, so readers locate chunks via the placement map maintained
// by Put/Locate below.
type placement struct {
	mu sync.RWMutex
	m  map[chunk.Key]ID
}

// Router pairs a Manager with a placement map so that readers can find
// the provider that holds any chunk. In the real BlobSeer placement is
// embedded in metadata; recording it here keeps metadata nodes compact
// while preserving the lookup path.
type Router struct {
	*Manager
	place placement
}

// NewRouter wraps a manager with a placement map.
func NewRouter(m *Manager) *Router {
	return &Router{Manager: m, place: placement{m: make(map[chunk.Key]ID)}}
}

// Put allocates a provider, stores the chunk there and records
// placement.
func (r *Router) Put(key chunk.Key, data []byte) (ID, error) {
	p, err := r.Allocate()
	if err != nil {
		return 0, err
	}
	if err := p.Store().Put(key, data); err != nil {
		return 0, fmt.Errorf("provider %d: %w", p.ID(), err)
	}
	r.place.mu.Lock()
	r.place.m[key] = p.ID()
	r.place.mu.Unlock()
	return p.ID(), nil
}

// Get reads a chunk sub-range by consulting the placement map.
func (r *Router) Get(key chunk.Key, off, length int64) ([]byte, error) {
	r.place.mu.RLock()
	id, ok := r.place.m[key]
	r.place.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", chunk.ErrNotFound, key)
	}
	m := r.Manager
	m.mu.RLock()
	var p *Provider
	for _, cand := range m.providers {
		if cand.ID() == id {
			p = cand
			break
		}
	}
	m.mu.RUnlock()
	if p == nil {
		return nil, fmt.Errorf("provider: placement references unknown provider %d", id)
	}
	return p.Store().Get(key, off, length)
}

// Locate returns the provider ID that holds the key.
func (r *Router) Locate(key chunk.Key) (ID, bool) {
	r.place.mu.RLock()
	defer r.place.mu.RUnlock()
	id, ok := r.place.m[key]
	return id, ok
}
