// Package provider implements the data-provider layer: a set of chunk
// stores (one per storage machine) and the provider manager that
// allocates chunks to providers. The manager implements the paper's
// load-balancing striping strategy: writes are directed to providers in
// round-robin order so the I/O workload distributes itself across the
// aggregate bandwidth of all machines.
//
// On top of placement the layer implements chunk replication: the
// Router stores every chunk on R distinct providers (Router.SetReplicas)
// in parallel, commits a write once a configurable write quorum of
// copies landed (Router.SetWriteQuorum), fails reads over to surviving
// replicas when a provider is down (Manager.SetDown), and restores the
// replication degree after a provider loss with a re-replication pass
// (Router.Repair). Replication is the durability primitive that lets a
// deployment lose a storage machine without losing any published
// snapshot.
//
// # Contracts
//
// Three contracts introduced by the replication, self-healing and
// failure-domain work are load-bearing for every caller:
//
//   - Manager.AllocateN(n) returns n DISTINCT live providers — on a
//     flat (single-domain) pool a consecutive window of the live ring,
//     so successive calls stay round-robin balanced within one — or
//     fails with a typed *InsufficientProvidersError
//     (errors.Is-matchable against ErrInsufficientProviders) when
//     fewer than n providers are live. It never silently repeats a
//     provider: replica sets are always distinct machines.
//   - Domain spread: every provider carries a failure-domain label
//     (rack, zone; NewInDomain/SetDomain). When the pool is FULLY
//     tagged (no provider left in the "" default domain) with at least
//     n distinct domains, AllocateN(n) returns providers in n DISTINCT
//     domains — correlated loss of one whole domain can never take out
//     every replica of a chunk — or fails with a typed
//     *InsufficientDomainsError (errors.Is-matchable against
//     ErrInsufficientDomains) when fewer than n domains currently have
//     a live provider. It never silently co-locates. When the fully
//     tagged pool has FEWER than n domains, allocation is documented
//     best-effort instead: replicas round-robin across the live
//     domains, per-call domain counts balanced within one wherever
//     capacity allows. A partially tagged pool (topology in
//     transition) stays FLAT — placement, audit and spread repair all
//     ignore domains until the last provider is tagged, so one retag
//     cannot funnel data onto the tagged minority. Repair restores
//     this spread, not just the replica count: re-replication places
//     new copies in domains the survivors do not cover, and a chunk at
//     full degree whose live replicas co-locate while a spare live
//     domain exists is re-spread by moving one copy (RepairChunk).
//   - Router.GetFrom (and every other blob.DataService implementation)
//     returns fresh == nil when the caller's replica hint served the
//     read. A non-nil fresh set means the hint is stale — the read was
//     served from authoritative placement, or placement disagrees with
//     the hint after failover — and the caller should cache fresh in
//     place of the hint.
//   - Read tier: with a local domain set (SetLocalDomain) reads try
//     same-domain replicas first, then rotate the rest — never
//     narrowing the failover set, only reordering it. With a ReadCache
//     wired (SetReadCache) reads are served read-through: chunk data
//     and fresh replica-set hints are cached on success, and because
//     chunks are immutable the ONLY invalidation signal is a placement
//     change — every post-Put placement mutation (RepairChunk,
//     improveSpread, trimExcess, DeleteReplicas) drops the chunk's
//     cache entry. A stale cached hint can never fail a read: at worst
//     it costs one extra failover, which refreshes the entry.
//
// # Space reclamation
//
// The Router is also the deletion point of the version-lifecycle
// garbage collector: DeleteReplicas removes a chunk no retained
// snapshot references from every reachable replica and retires its
// placement entry. Deletion and repair coordinate through a per-chunk
// in-flight claim, so a chunk being re-replicated is never deleted out
// from under the repair (and vice versa: a repair never resurrects a
// chunk the collector is deleting).
package provider

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chunk"
	"repro/internal/iosim"
	"repro/internal/metrics"
)

// ID identifies one data provider.
type ID int

// Provider couples a chunk store with identity and accounting. The
// meter, when present, lives inside the store (see chunk.NewMemStore),
// so Provider itself only tracks allocation counts. downEpoch counts
// SetDown transitions so the health monitor can tell whether an
// administrator touched the flag since the monitor last did. domain is
// the failure-domain label (rack, zone) allocation spreads replicas
// across; the empty label is the single default domain of a flat pool.
type Provider struct {
	id        ID
	store     chunk.Store
	allocated atomic.Int64
	down      atomic.Bool
	downEpoch atomic.Int64

	domainMu sync.RWMutex
	domain   string
}

// New builds a provider around the given store, in the default (flat)
// failure domain.
func New(id ID, store chunk.Store) *Provider {
	return &Provider{id: id, store: store}
}

// NewInDomain builds a provider tagged with a failure-domain label.
func NewInDomain(id ID, store chunk.Store, domain string) *Provider {
	p := New(id, store)
	p.domain = domain
	return p
}

// ID returns the provider's identity.
func (p *Provider) ID() ID { return p.id }

// Domain returns the provider's failure-domain label ("" = the default
// domain of a flat pool).
func (p *Provider) Domain() string {
	p.domainMu.RLock()
	defer p.domainMu.RUnlock()
	return p.domain
}

// setDomain retags the provider (Manager.SetDomain).
func (p *Provider) setDomain(domain string) {
	p.domainMu.Lock()
	p.domain = domain
	p.domainMu.Unlock()
}

// Store exposes the underlying chunk store.
func (p *Provider) Store() chunk.Store { return p.store }

// Allocated returns how many chunks the manager has routed here.
func (p *Provider) Allocated() int64 { return p.allocated.Load() }

// Down reports whether the provider is marked dead (machine loss).
func (p *Provider) Down() bool { return p.down.Load() }

// ErrNoProviders is returned when the manager has no registered
// providers.
var ErrNoProviders = errors.New("provider: no providers registered")

// ErrProviderDown is returned when an operation targets a provider that
// has been marked down via Manager.SetDown.
var ErrProviderDown = errors.New("provider: provider down")

// ErrInsufficientProviders is the sentinel matched (via errors.Is) by
// InsufficientProvidersError.
var ErrInsufficientProviders = errors.New("provider: not enough live providers")

// InsufficientProvidersError is returned by AllocateN when the
// requested replication degree exceeds the number of live providers.
type InsufficientProvidersError struct {
	Want int // distinct providers requested
	Live int // live providers available
}

// Error implements error.
func (e *InsufficientProvidersError) Error() string {
	return fmt.Sprintf("provider: need %d distinct live providers, only %d live", e.Want, e.Live)
}

// Is matches the ErrInsufficientProviders sentinel.
func (e *InsufficientProvidersError) Is(target error) bool {
	return target == ErrInsufficientProviders
}

// ErrInsufficientDomains is the sentinel matched (via errors.Is) by
// InsufficientDomainsError.
var ErrInsufficientDomains = errors.New("provider: not enough live failure domains")

// InsufficientDomainsError is returned by AllocateN when the pool is
// configured with at least Want distinct failure domains — so n-way
// domain spread is this deployment's durability promise — but fewer
// than Want domains currently have a live provider. Allocation fails
// typed rather than silently co-locating replicas in a shared domain.
type InsufficientDomainsError struct {
	Want       int // distinct domains the replica set must span
	Live       int // domains with at least one live provider
	Configured int // distinct domains among all registered providers
}

// Error implements error.
func (e *InsufficientDomainsError) Error() string {
	return fmt.Sprintf("provider: need %d distinct live failure domains, only %d of %d configured domains live",
		e.Want, e.Live, e.Configured)
}

// Is matches the ErrInsufficientDomains sentinel.
func (e *InsufficientDomainsError) Is(target error) bool {
	return target == ErrInsufficientDomains
}

// Policy selects the allocation strategy for new chunks.
type Policy int

// Allocation policies. RoundRobin is the paper's load-balancing
// strategy; the others exist for the striping ablation.
const (
	// RoundRobin cycles through providers, giving a perfectly uniform
	// distribution.
	RoundRobin Policy = iota
	// Random picks a provider uniformly at random per chunk.
	Random
	// LeastLoaded picks the provider with the fewest allocated chunks.
	LeastLoaded
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "roundrobin"
	case Random:
		return "random"
	case LeastLoaded:
		return "leastloaded"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Manager is the provider manager: it tracks live providers and hands
// out allocation targets for new chunks. Providers marked down via
// SetDown are excluded from every allocation decision.
type Manager struct {
	mu        sync.RWMutex
	providers []*Provider
	next      atomic.Uint64
	policy    Policy
	rnd       func() uint64

	// domMu guards the cached domainPromise result, recomputed only
	// when Register/SetDomain change the topology — AllocateN sits on
	// the per-chunk write hot path and must not rescan the pool.
	domMu     sync.Mutex
	domCached bool
	domCount  int
	domFull   bool
}

// NewManager builds an empty round-robin manager.
func NewManager() *Manager { return &Manager{} }

// SetPolicy switches the allocation policy. Random uses a fast
// xorshift source seeded from the counter so allocation stays
// deterministic per manager instance.
func (m *Manager) SetPolicy(p Policy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.policy = p
	if p == Random && m.rnd == nil {
		var state uint64 = 0x9E3779B97F4A7C15
		var mu sync.Mutex
		m.rnd = func() uint64 {
			mu.Lock()
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			v := state
			mu.Unlock()
			return v
		}
	}
}

// Policy returns the current allocation policy.
func (m *Manager) Policy() Policy {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.policy
}

// NewPool builds a manager with n in-memory providers, each metered by
// its own exclusive meter using the given cost model. It returns the
// manager and the meters for inspection.
func NewPool(n int, model iosim.CostModel) (*Manager, []*iosim.Meter) {
	return NewPoolInDomains(n, 0, model)
}

// DomainLabel names the failure domain of provider i in a pool of n
// providers split into the given number of equal contiguous blocks
// ("zone0", "zone1", ...). Fewer than two domains yields the flat
// default domain "".
func DomainLabel(i, n, domains int) string {
	if domains < 2 || n < 1 {
		return ""
	}
	if domains > n {
		domains = n
	}
	return fmt.Sprintf("zone%d", i*domains/n)
}

// NewPoolInDomains is NewPool with the providers split into the given
// number of failure domains — contiguous blocks labeled per
// DomainLabel, modeling machines racked together. domains <= 1 builds
// the flat single-domain pool.
func NewPoolInDomains(n, domains int, model iosim.CostModel) (*Manager, []*iosim.Meter) {
	m := NewManager()
	meters := make([]*iosim.Meter, 0, n)
	for i := 0; i < n; i++ {
		meter := iosim.NewMeter(model, true)
		meters = append(meters, meter)
		m.Register(NewInDomain(ID(i), chunk.NewMemStore(meter), DomainLabel(i, n, domains)))
	}
	return m, meters
}

// NewFaultPool builds the same pool as NewPool with each provider's
// store wrapped in a chunk.FaultStore, so callers can kill a machine
// at the STORE level (every operation errors) — the failure that
// error-driven detection must notice without an administrative
// SetDown. Returns the manager and the fault stores by provider index.
func NewFaultPool(n int, model iosim.CostModel) (*Manager, []*chunk.FaultStore) {
	return NewFaultPoolInDomains(n, 0, model)
}

// NewFaultPoolInDomains is NewFaultPool with the providers split into
// failure domains exactly as NewPoolInDomains does.
func NewFaultPoolInDomains(n, domains int, model iosim.CostModel) (*Manager, []*chunk.FaultStore) {
	m := NewManager()
	faults := make([]*chunk.FaultStore, 0, n)
	for i := 0; i < n; i++ {
		fs := chunk.NewFaultStore(chunk.NewMemStore(iosim.NewMeter(model, true)))
		faults = append(faults, fs)
		m.Register(NewInDomain(ID(i), fs, DomainLabel(i, n, domains)))
	}
	return m, faults
}

// NewURLPoolInDomains builds a pool whose provider stores come from
// the chunk backend factory: the pool-level URL is specialized per
// provider (disk schemes get a /pN subdirectory) and opened with an
// exclusive meter, so -store mem:// matches NewPoolInDomains exactly
// while disk:// and null:// swap the medium without touching placement.
// With faulty set, every store is additionally wrapped in a
// chunk.FaultStore (reusing the wrapper when the URL already carries
// the fault+ prefix) and the handles are returned by provider index.
func NewURLPoolInDomains(rawURL string, n, domains int, model iosim.CostModel, faulty bool) (*Manager, []*chunk.FaultStore, error) {
	m := NewManager()
	var faults []*chunk.FaultStore
	for i := 0; i < n; i++ {
		s, err := chunk.OpenStore(chunk.ForProvider(rawURL, uint32(i)), iosim.NewMeter(model, true))
		if err != nil {
			return nil, nil, fmt.Errorf("provider %d: %w", i, err)
		}
		if faulty {
			fs, ok := s.(*chunk.FaultStore)
			if !ok {
				fs = chunk.NewFaultStore(s)
			}
			faults = append(faults, fs)
			s = fs
		}
		m.Register(NewInDomain(ID(i), s, DomainLabel(i, n, domains)))
	}
	return m, faults, nil
}

// Register adds a provider to the pool.
func (m *Manager) Register(p *Provider) {
	m.mu.Lock()
	m.providers = append(m.providers, p)
	m.mu.Unlock()
	m.invalidateDomains()
}

// invalidateDomains drops the cached domainPromise result after a
// topology change.
func (m *Manager) invalidateDomains() {
	m.domMu.Lock()
	m.domCached = false
	m.domMu.Unlock()
}

// Count returns the number of registered providers.
func (m *Manager) Count() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.providers)
}

// Live returns the number of providers not marked down.
func (m *Manager) Live() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, p := range m.providers {
		if !p.Down() {
			n++
		}
	}
	return n
}

// SetDown marks a provider dead (down=true) or revived (down=false).
// A down provider receives no new allocations, is skipped by read
// failover, and counts as lost for Repair.
func (m *Manager) SetDown(id ID, down bool) error {
	_, err := m.setDown(id, down)
	return err
}

// setDown flips the down flag and returns the new transition epoch —
// the token the health monitor uses to detect administrative
// intervention between its own transitions.
func (m *Manager) setDown(id ID, down bool) (int64, error) {
	p := m.byID(id)
	if p == nil {
		return 0, fmt.Errorf("provider: unknown provider %d", id)
	}
	p.down.Store(down)
	return p.downEpoch.Add(1), nil
}

// claimDown atomically flips a currently-live provider down and
// returns the new epoch. ok is false when the provider was already
// down — someone else (an administrator, or an earlier transition)
// owns the flag and the caller must not claim it.
func (m *Manager) claimDown(id ID) (epoch int64, ok bool, err error) {
	p := m.byID(id)
	if p == nil {
		return 0, false, fmt.Errorf("provider: unknown provider %d", id)
	}
	if !p.down.CompareAndSwap(false, true) {
		return 0, false, nil
	}
	return p.downEpoch.Add(1), true, nil
}

// downEpochOf returns the current transition epoch of id's down flag
// (0 for unknown providers).
func (m *Manager) downEpochOf(id ID) int64 {
	if p := m.byID(id); p != nil {
		return p.downEpoch.Load()
	}
	return 0
}

// SetDomain retags a provider's failure domain — the administrative
// registration path (bsctl domain / the register-with-domain RPC).
// Already-placed chunks keep their placement; the scrubber's spread
// audit re-finds any replica set the new topology leaves co-located
// and repair re-spreads it. The empty label is refused: untagging a
// provider would silently demote the whole pool to flat placement
// (see domainPromise) while operators believe the spread guarantee
// still holds.
func (m *Manager) SetDomain(id ID, domain string) error {
	if domain == "" {
		return errors.New("provider: empty failure-domain label (untagging would silently disable domain spread)")
	}
	p := m.byID(id)
	if p == nil {
		return fmt.Errorf("provider: unknown provider %d", id)
	}
	p.setDomain(domain)
	m.invalidateDomains()
	return nil
}

// DomainOf returns the failure-domain label of id ("" for unknown
// providers and for members of a flat pool).
func (m *Manager) DomainOf(id ID) string {
	if p := m.byID(id); p != nil {
		return p.Domain()
	}
	return ""
}

// DomainMap groups registered provider IDs by failure-domain label, in
// registration order within each domain.
func (m *Manager) DomainMap() map[string][]ID {
	out := make(map[string][]ID)
	for _, p := range m.Providers() {
		d := p.Domain()
		out[d] = append(out[d], p.ID())
	}
	return out
}

// domainPromise reports the deployment's configured spread width: the
// distinct failure domains among ALL registered providers, and whether
// the pool is FULLY tagged (no provider left in the "" default
// domain). Domain semantics — the strict distinct-domain promise, the
// spread audit, spread-restoring repair — activate only on fully
// tagged pools: a partially retagged pool is a topology in transition,
// where treating the untagged majority as one domain would funnel a
// copy of every chunk onto the tagged minority (per-domain balance is
// capacity-blind) and fail all writes the moment it goes down, so the
// pool stays FLAT until the last provider is tagged. The result is
// cached; Register/SetDomain invalidate it.
func (m *Manager) domainPromise() (configured int, full bool) {
	m.domMu.Lock()
	defer m.domMu.Unlock()
	if !m.domCached {
		seen := make(map[string]bool)
		full := true
		for _, p := range m.Providers() {
			d := p.Domain()
			if d == "" {
				full = false
			}
			seen[d] = true
		}
		m.domCount, m.domFull, m.domCached = len(seen), full, true
	}
	return m.domCount, m.domFull
}

// configuredDomains counts the distinct failure domains among all
// registered providers.
func (m *Manager) configuredDomains() int {
	configured, _ := m.domainPromise()
	return configured
}

// byID returns the provider with the given ID, or nil.
func (m *Manager) byID(id ID) *Provider {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, p := range m.providers {
		if p.ID() == id {
			return p
		}
	}
	return nil
}

// Providers returns a snapshot of the registered providers.
func (m *Manager) Providers() []*Provider {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Provider, len(m.providers))
	copy(out, m.providers)
	return out
}

// live returns a snapshot of the providers not marked down, in
// registration order.
func (m *Manager) liveSnapshot() []*Provider {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]*Provider, 0, len(m.providers))
	for _, p := range m.providers {
		if !p.Down() {
			out = append(out, p)
		}
	}
	return out
}

// Allocate returns the provider that should store the next chunk,
// according to the configured policy. Down providers are never
// returned.
func (m *Manager) Allocate() (*Provider, error) {
	m.mu.RLock()
	empty := len(m.providers) == 0
	m.mu.RUnlock()
	if empty {
		return nil, ErrNoProviders
	}
	live := m.liveSnapshot()
	if len(live) == 0 {
		return nil, &InsufficientProvidersError{Want: 1, Live: 0}
	}
	var p *Provider
	switch m.Policy() {
	case Random:
		p = live[m.rnd()%uint64(len(live))]
	case LeastLoaded:
		p = live[0]
		for _, cand := range live[1:] {
			if cand.Allocated() < p.Allocated() {
				p = cand
			}
		}
	default: // RoundRobin
		i := m.next.Add(1) - 1
		p = live[i%uint64(len(live))]
	}
	p.allocated.Add(1)
	return p, nil
}

// AllocateN returns n allocation targets for the n replicas of one
// chunk: always n distinct live providers. On a flat (single-domain)
// pool they are a consecutive window of the live ring so that
// successive calls stay round-robin balanced (every provider's share
// differs by at most one window). On a domain-tagged pool the targets
// additionally spread across failure domains: n DISTINCT domains when
// the pool is fully tagged with at least n of them — or a typed
// *InsufficientDomainsError when fewer than n domains currently have a
// live provider, never a silent co-location — and a best-effort
// round-robin spread (per-call domain counts balanced within one
// wherever capacity allows) when the fully tagged pool has fewer
// domains than n. A partially tagged pool allocates flat (see
// Manager.domainPromise for why a transition topology must not spread).
// When fewer than n providers are live it fails with a
// typed *InsufficientProvidersError. The non-round-robin policies only
// change where the ring rotation starts; distinctness, spread and
// balance hold regardless.
func (m *Manager) AllocateN(n int) ([]*Provider, error) {
	return m.allocateSpread(n, nil, nil)
}

// allocateSpread is AllocateN with two extra constraints used by the
// re-replication path: exclude is the set of provider IDs that must
// not be chosen (the replicas a chunk already has), and have counts
// the failure domains those survivors occupy, so new copies fill the
// domains the chunk does NOT yet cover first. The strict
// distinct-domain promise applies only to fresh allocations (have ==
// nil): repair prefers restoring the replica count over failing on a
// domain shortage — a temporarily unachievable spread is recorded by
// the audit and re-spread once a domain returns.
func (m *Manager) allocateSpread(n int, exclude map[ID]bool, have map[string]int) ([]*Provider, error) {
	if n < 1 {
		return nil, fmt.Errorf("provider: AllocateN needs n >= 1, got %d", n)
	}
	m.mu.RLock()
	empty := len(m.providers) == 0
	m.mu.RUnlock()
	if empty {
		return nil, ErrNoProviders
	}
	live := m.liveSnapshot()
	if len(exclude) > 0 {
		filtered := live[:0:0]
		for _, p := range live {
			if !exclude[p.ID()] {
				filtered = append(filtered, p)
			}
		}
		live = filtered
	}
	if n > len(live) {
		return nil, &InsufficientProvidersError{Want: n, Live: len(live)}
	}
	configured, fullyTagged := m.domainPromise()
	if configured <= 1 || !fullyTagged {
		// Flat, or a topology in transition (see domainPromise): plain
		// window allocation until the tagging is complete.
		return m.allocateWindow(n, live), nil
	}

	// Group the candidates by domain, preserving first-seen order so
	// the ring rotation below is stable.
	var order []string
	byDom := make(map[string][]*Provider)
	for _, p := range live {
		d := p.Domain()
		if _, ok := byDom[d]; !ok {
			order = append(order, d)
		}
		byDom[d] = append(byDom[d], p)
	}
	if have == nil && configured >= n && len(byDom) < n {
		return nil, &InsufficientDomainsError{Want: n, Live: len(byDom), Configured: configured}
	}

	var base uint64
	switch m.Policy() {
	case Random:
		base = m.rnd()
	case LeastLoaded:
		// Start the ring at the domain of the globally least-loaded
		// candidate, so domains with idle providers fill first.
		least := 0
		for i, p := range live {
			if p.Allocated() < live[least].Allocated() {
				least = i
			}
		}
		for i, d := range order {
			if d == live[least].Domain() {
				base = uint64(i)
				break
			}
		}
	default: // RoundRobin
		base = m.next.Add(uint64(n)) - uint64(n)
	}
	// Rotate the domain ring so successive calls start their fill from
	// different domains (cross-call balance).
	if r := int(base % uint64(len(order))); r > 0 {
		order = append(order[r:], order[:r]...)
	}

	// Water-fill: each pick goes to the domain with the fewest copies
	// so far (counting the survivors in have), taking the least-loaded
	// provider within it. With n <= live domains and no prior copies
	// every pick lands in a fresh domain — the distinct-domain
	// invariant; otherwise counts stay within one per domain wherever a
	// domain still has spare providers.
	counts := make(map[string]int, len(order))
	for d, c := range have {
		counts[d] = c
	}
	out := make([]*Provider, 0, n)
	for len(out) < n {
		dom := -1
		for i, d := range order {
			if len(byDom[d]) == 0 {
				continue
			}
			if dom < 0 || counts[d] < counts[order[dom]] {
				dom = i
			}
		}
		if dom < 0 {
			// Unreachable: n <= len(live) guarantees enough candidates.
			return nil, &InsufficientProvidersError{Want: n, Live: len(out)}
		}
		d := order[dom]
		pi := 0
		for j, p := range byDom[d] {
			if p.Allocated() < byDom[d][pi].Allocated() {
				pi = j
			}
		}
		p := byDom[d][pi]
		byDom[d] = append(byDom[d][:pi], byDom[d][pi+1:]...)
		counts[d]++
		p.allocated.Add(1)
		out = append(out, p)
	}
	return out, nil
}

// allocateWindow is the flat-pool allocation: a consecutive window of
// the live ring, round-robin balanced across calls.
func (m *Manager) allocateWindow(n int, live []*Provider) []*Provider {
	var base uint64
	switch m.Policy() {
	case Random:
		base = m.rnd()
	case LeastLoaded:
		least := 0
		for i, p := range live {
			if p.Allocated() < live[least].Allocated() {
				least = i
			}
		}
		base = uint64(least)
	default: // RoundRobin
		// Advance the cursor by n so consecutive calls tile the live
		// ring: every slot in [base, base+n) is used exactly once,
		// which keeps per-provider counts within one of each other.
		base = m.next.Add(uint64(n)) - uint64(n)
	}
	out := make([]*Provider, 0, n)
	for i := 0; i < n; i++ {
		p := live[(base+uint64(i))%uint64(len(live))]
		p.allocated.Add(1)
		out = append(out, p)
	}
	return out
}

// placement records, for every stored chunk, the set of providers
// holding a copy.
type placement struct {
	mu sync.RWMutex
	m  map[chunk.Key][]ID
}

// Router pairs a Manager with a placement map so that readers can find
// the providers that hold any chunk. In the real BlobSeer placement is
// embedded in metadata; recording it here keeps metadata nodes compact
// while preserving the lookup path. The router is where replication
// lives: Put stores R copies on distinct providers and commits on a
// write quorum, Get fails over across surviving replicas, and Repair
// re-replicates chunks that lost copies to a dead provider.
type Router struct {
	*Manager
	place    placement
	cfg      sync.RWMutex // guards replicas/quorum/coding/health/onDegraded/locality/cache
	replicas int          // copies per chunk; 0 or 1 means no replication
	quorum   int          // copies that must land for Put to succeed; 0 = replicas-1 (min 1)
	rdNext   atomic.Uint64

	// codeK/codeM/code select erasure-coded placement (see coded.go);
	// nil code means the router replicates. maxChunk bounds declared
	// streamed-put sizes (see stream.go); 0 means the default.
	codeK, codeM int
	code         *chunk.RSCode
	maxChunk     int64

	// localDomain is the failure domain this router's reads originate
	// from; preferLocal orders same-domain replicas first (see
	// SetReadLocality for the measure-only mode). The loc* atomics
	// count reads served locally vs remotely while a domain is set.
	localDomain                   string
	preferLocal                   bool
	locLocalReads, locRemoteReads atomic.Int64
	locLocalBytes, locRemoteBytes atomic.Int64

	// cache, when set, makes reads read-through: data and fresh hints
	// fill it, placement changes invalidate it.
	cache *ReadCache

	// health, when set, receives the outcome of every replica store
	// attempt — the error stream failure detection is deduced from.
	health *HealthMonitor
	// onDegraded, when set, is told about chunks observed below the
	// replication degree (a read failed over, or a Put quorum-committed
	// short of R copies). The core Healer wires its repair queue here —
	// the read-repair path. Must be cheap and non-blocking.
	onDegraded func(chunk.Key)

	// busy tracks chunks with an in-flight repair or deletion, the
	// mutual exclusion that keeps GC and self-heal from racing on the
	// same chunk.
	busyMu sync.Mutex
	busy   map[chunk.Key]bool

	// met holds nil-tolerant metric handles, nil until SetMetrics.
	met struct {
		putTotal  *metrics.Counter
		putBytes  *metrics.Counter
		putSec    *metrics.Histogram
		getLocal  *metrics.Counter
		getRemote *metrics.Counter
		getFlat   *metrics.Counter
		getSec    *metrics.Histogram
		repairSec *metrics.Histogram
		repairOut [4]*metrics.Counter // indexed by RepairOutcome
	}
}

// SetMetrics wires the router's chunk put/get counters and latency
// histograms (gets split by locality: the reader's own domain, a remote
// domain, or "flat" when no reader domain is set) plus the per-repair
// outcome counters into reg. Call before serving traffic; a nil
// registry leaves metrics disabled.
func (r *Router) SetMetrics(reg *metrics.Registry) {
	r.met.putTotal = reg.Counter("bs_chunk_put_total")
	r.met.putBytes = reg.Counter("bs_chunk_put_bytes_total")
	r.met.putSec = reg.Histogram("bs_chunk_put_seconds", nil)
	r.met.getLocal = reg.Counter("bs_chunk_get_total", metrics.Label{Key: "locality", Value: "local"})
	r.met.getRemote = reg.Counter("bs_chunk_get_total", metrics.Label{Key: "locality", Value: "remote"})
	r.met.getFlat = reg.Counter("bs_chunk_get_total", metrics.Label{Key: "locality", Value: "flat"})
	r.met.getSec = reg.Histogram("bs_chunk_get_seconds", nil)
	r.met.repairSec = reg.Histogram("bs_repair_seconds", nil)
	for o := RepairHealthy; o <= RepairLost; o++ {
		r.met.repairOut[o] = reg.Counter("bs_repair_total", metrics.Label{Key: "outcome", Value: o.String()})
	}
}

// NewRouter wraps a manager with a placement map. The zero
// configuration stores one copy per chunk (no replication).
func NewRouter(m *Manager) *Router {
	return &Router{
		Manager: m,
		place:   placement{m: make(map[chunk.Key][]ID)},
		busy:    make(map[chunk.Key]bool),
	}
}

// claimKey marks a chunk as having an in-flight repair or deletion;
// false means another worker holds the claim.
func (r *Router) claimKey(key chunk.Key) bool {
	r.busyMu.Lock()
	defer r.busyMu.Unlock()
	if r.busy[key] {
		return false
	}
	r.busy[key] = true
	return true
}

// releaseKey drops an in-flight claim.
func (r *Router) releaseKey(key chunk.Key) {
	r.busyMu.Lock()
	delete(r.busy, key)
	r.busyMu.Unlock()
}

// SetHealthMonitor wires a monitor into the router's data path: every
// replica store attempt (Put, Get, repair copy, verification probe)
// reports its outcome, so down-ness is deduced from observed errors
// instead of administrative SetDown.
func (r *Router) SetHealthMonitor(h *HealthMonitor) {
	r.cfg.Lock()
	defer r.cfg.Unlock()
	r.health = h
}

// Health returns the wired monitor (nil when health detection is off).
func (r *Router) Health() *HealthMonitor {
	r.cfg.RLock()
	defer r.cfg.RUnlock()
	return r.health
}

// SetDegradedHandler registers the callback invoked with the key of any
// chunk the data path observed under-replicated. The handler must not
// block (the core Healer's bounded repair queue drops when full).
func (r *Router) SetDegradedHandler(fn func(chunk.Key)) {
	r.cfg.Lock()
	defer r.cfg.Unlock()
	r.onDegraded = fn
}

// reportError feeds one replica-store outcome to the health monitor.
func (r *Router) reportError(id ID, err error) {
	if h := r.Health(); h != nil {
		h.ReportError(id, err)
	}
}

// noteDegraded reports an under-replicated chunk to the repair hook.
func (r *Router) noteDegraded(key chunk.Key) {
	r.cfg.RLock()
	fn := r.onDegraded
	r.cfg.RUnlock()
	if fn != nil {
		fn(key)
	}
}

// SetLocalDomain declares the failure domain this router's reads
// originate from and turns on zone-local replica preference:
// getFromSet tries same-domain replicas first, then the rest in
// rotation. The failover set is never narrowed — a zone whose local
// copies are all dead still reads remotely.
func (r *Router) SetLocalDomain(domain string) { r.SetReadLocality(domain, true) }

// SetReadLocality sets the reader's failure domain and whether to
// PREFER local replicas. prefer=false keeps the blind rotation but
// still counts local/remote reads — the measurement baseline the E13
// bench compares zone-local selection against. An empty domain turns
// locality (ordering and counting) off.
func (r *Router) SetReadLocality(domain string, prefer bool) {
	r.cfg.Lock()
	r.localDomain = domain
	r.preferLocal = prefer
	r.cfg.Unlock()
}

// LocalDomain returns the configured reader domain ("" = unset).
func (r *Router) LocalDomain() string {
	r.cfg.RLock()
	defer r.cfg.RUnlock()
	return r.localDomain
}

// readLocality snapshots the locality configuration.
func (r *Router) readLocality() (domain string, prefer bool) {
	r.cfg.RLock()
	defer r.cfg.RUnlock()
	return r.localDomain, r.preferLocal
}

// ReadLocalityStats counts successful reads served from the reader's
// own failure domain vs a remote one, in calls and bytes. Counted only
// while a reader domain is set.
type ReadLocalityStats struct {
	LocalReads  int64
	RemoteReads int64
	LocalBytes  int64
	RemoteBytes int64
}

// CrossFraction is the fraction of read bytes that crossed a domain
// boundary (0 with no reads) — the quantity zone-local selection
// exists to shrink.
func (s ReadLocalityStats) CrossFraction() float64 {
	total := s.LocalBytes + s.RemoteBytes
	if total == 0 {
		return 0
	}
	return float64(s.RemoteBytes) / float64(total)
}

// ReadLocality returns the cumulative local/remote read counters.
func (r *Router) ReadLocality() ReadLocalityStats {
	return ReadLocalityStats{
		LocalReads:  r.locLocalReads.Load(),
		RemoteReads: r.locRemoteReads.Load(),
		LocalBytes:  r.locLocalBytes.Load(),
		RemoteBytes: r.locRemoteBytes.Load(),
	}
}

// SetReadCache wires the shared bounded read-through cache into the
// read path (nil disables caching). The router is the cache's single
// owner: it fills on successful reads and invalidates on every
// placement change, so callers above (blob) only ever consult it for
// hints.
func (r *Router) SetReadCache(c *ReadCache) {
	r.cfg.Lock()
	r.cache = c
	r.cfg.Unlock()
}

// ReadCache returns the wired cache (nil when caching is off).
func (r *Router) ReadCache() *ReadCache {
	r.cfg.RLock()
	defer r.cfg.RUnlock()
	return r.cache
}

// SetReplicas sets the replication degree R: every subsequent Put
// stores R copies on R distinct providers. r < 1 is normalized to 1.
func (r *Router) SetReplicas(n int) {
	r.cfg.Lock()
	defer r.cfg.Unlock()
	r.replicas = n
}

// Replicas returns the effective replication degree (>= 1).
func (r *Router) Replicas() int {
	r.cfg.RLock()
	defer r.cfg.RUnlock()
	if r.replicas < 1 {
		return 1
	}
	return r.replicas
}

// SetWriteQuorum sets how many of the R copies must be stored for a
// Put to succeed. 0 restores the default of R-1 (minimum 1): a write
// survives the mid-flight loss of one provider, the failure unit this
// layer is built around, while R healthy providers still normally
// yield R copies. Values are clamped to [1, R] at use.
func (r *Router) SetWriteQuorum(q int) {
	r.cfg.Lock()
	defer r.cfg.Unlock()
	r.quorum = q
}

// WriteQuorum returns the effective write quorum for the current
// placement degree. In coded mode the degree is k+m fragments and the
// quorum floor is k — committing with fewer would publish unreadable
// data — with the same default of degree-1 (one mid-flight provider
// loss tolerated).
func (r *Router) WriteQuorum() int {
	r.cfg.RLock()
	q, k, coded := r.quorum, r.codeK, r.code != nil
	r.cfg.RUnlock()
	n := r.degree()
	floor := 1
	if coded {
		floor = k
	}
	if q == 0 {
		q = n - 1
	}
	if q < floor {
		q = floor
	}
	if q > n {
		q = n
	}
	return q
}

// Put allocates R distinct providers, stores the chunk on all of them
// in parallel and records placement. It succeeds — returning the IDs
// of the providers that actually hold a copy — as soon as at least the
// write quorum of copies landed; with fewer it fails and reports the
// replica errors. Copies that landed on a failed Put are orphans: the
// write's ticket is retired by the caller, so no metadata ever
// references them.
func (r *Router) Put(key chunk.Key, data []byte) ([]ID, error) {
	var start time.Time
	if r.met.putSec != nil {
		start = time.Now()
	}
	stored, err := r.put(key, data)
	if err == nil {
		r.met.putTotal.Inc()
		r.met.putBytes.Add(int64(len(data)))
		if r.met.putSec != nil {
			r.met.putSec.ObserveSince(start)
		}
	}
	return stored, err
}

func (r *Router) put(key chunk.Key, data []byte) ([]ID, error) {
	if code := r.codeState(); code != nil {
		return r.putCoded(code, key, data)
	}
	want := r.Replicas()
	quorum := r.WriteQuorum()
	targets, err := r.AllocateN(want)
	if err != nil {
		return nil, err
	}
	if len(targets) == 1 {
		// Unreplicated fast path: no fan-out machinery on the default
		// R=1 write path.
		p := targets[0]
		if err := r.putOne(p, key, data); err != nil {
			return nil, fmt.Errorf("provider: write quorum not met (0/1 copies, need 1): provider %d: %w", p.ID(), err)
		}
		stored := []ID{p.ID()}
		r.place.mu.Lock()
		r.place.m[key] = stored
		r.place.mu.Unlock()
		return stored, nil
	}
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, p := range targets {
		wg.Add(1)
		go func(i int, p *Provider) {
			defer wg.Done()
			errs[i] = r.putOne(p, key, data)
		}(i, p)
	}
	wg.Wait()
	stored := make([]ID, 0, len(targets))
	var failures []error
	for i, p := range targets {
		if errs[i] == nil {
			stored = append(stored, p.ID())
		} else {
			failures = append(failures, fmt.Errorf("provider %d: %w", p.ID(), errs[i]))
		}
	}
	if len(stored) < quorum {
		return nil, fmt.Errorf("provider: write quorum not met (%d/%d copies, need %d): %w",
			len(stored), want, quorum, errors.Join(failures...))
	}
	r.place.mu.Lock()
	r.place.m[key] = stored
	r.place.mu.Unlock()
	if len(stored) < want {
		// Quorum-committed short of R copies: born under-replicated
		// (a provider died mid-flight). Hand it to read-repair now
		// rather than waiting for the scrubber to find it.
		r.noteDegraded(key)
	}
	return stored, nil
}

// putOne stores one copy, treating a down provider as a failed store
// (the machine died between allocation and the write reaching it). The
// outcome of every real store attempt feeds the health monitor.
func (r *Router) putOne(p *Provider, key chunk.Key, data []byte) error {
	if p.Down() {
		return ErrProviderDown
	}
	err := p.Store().Put(key, data)
	r.reportError(p.ID(), err)
	return err
}

// Get reads a chunk sub-range by consulting the read cache and then
// the placement map, failing over across replicas: down providers are
// skipped, and an error from one replica moves on to the next. Reads
// rotate across the replica set so replicated read load spreads over
// all copies (same-domain replicas first when a local domain is set).
// A read that needed failover feeds read-repair via maybeNoteDegraded.
func (r *Router) Get(key chunk.Key, off, length int64) ([]byte, error) {
	if code := r.codeState(); code != nil {
		return r.getCoded(code, key, off, length)
	}
	cache := r.ReadCache()
	if cache != nil {
		if data, ok := cache.GetData(key, off, length); ok {
			return data, nil
		}
	}
	// Locate copies the replica slice under the lock. Reading the map
	// entry directly and iterating after unlock — as this path once
	// did — depends on every writer installing a fresh slice; copying
	// here removes the read path's only use of that invariant.
	ids, ok := r.Locate(key)
	if !ok {
		return nil, fmt.Errorf("%w: %s", chunk.ErrNotFound, key)
	}
	data, skips, storeErrs, err := r.getFromSet(ids, key, off, length)
	if err != nil {
		return nil, err
	}
	if skips+storeErrs > 0 {
		r.maybeNoteDegraded(key, storeErrs)
	}
	r.fillData(cache, key, data, off)
	return data, nil
}

// GetFrom reads like Get but tries the given replica set first — the
// replica hint carried by chunk.Ref in metadata. The read cache is
// consulted before any provider: cached data serves the read outright,
// and a cached fresh set (left by an earlier read that corrected a
// stale hint) supersedes the caller's hint. If every hinted replica
// fails (stale hint after a repair moved the copies), it falls back to
// the router's own placement map, capturing the set that served the
// read in the SAME placement acquisition the read used. A non-nil
// fresh return means the hint is out of date — the fallback served the
// read, a cached set did, or the hint needed failover and placement
// records a different set — and the caller should replace it (blob
// caches it so later reads of the same chunk skip the dead copies).
func (r *Router) GetFrom(replicas []ID, key chunk.Key, off, length int64) (data []byte, fresh []ID, err error) {
	if code := r.codeState(); code != nil {
		return r.getFromCoded(code, replicas, key, off, length)
	}
	cache := r.ReadCache()
	if cache != nil {
		if data, ok := cache.GetData(key, off, length); ok {
			if hint, ok := cache.Hint(key); ok && !sameIDSet(hint, replicas) {
				return data, hint, nil
			}
			return data, nil, nil
		}
		if hint, ok := cache.Hint(key); ok && !sameIDSet(hint, replicas) {
			// The cache holds a fresher set than the caller's hint; a
			// set that fails entirely is dropped (placement moved again)
			// and the normal path below retries from scratch.
			data, skips, storeErrs, herr := r.getFromSet(hint, key, off, length)
			if herr == nil {
				if skips+storeErrs > 0 {
					r.maybeNoteDegraded(key, storeErrs)
				}
				r.fillData(cache, key, data, off)
				return data, hint, nil
			}
			cache.Invalidate(key)
		}
	}
	if len(replicas) > 0 {
		data, skips, storeErrs, err := r.getFromSet(replicas, key, off, length)
		if err == nil {
			r.fillData(cache, key, data, off)
			if skips+storeErrs > 0 {
				r.maybeNoteDegraded(key, storeErrs)
				if fresh, ok := r.Locate(key); ok && !sameIDSet(fresh, replicas) {
					r.fillHint(cache, key, fresh)
					return data, fresh, nil
				}
			}
			return data, nil, nil
		}
	}
	// Fallback: every hinted replica failed. Snapshot the authoritative
	// set ONCE and read from exactly that snapshot, so the fresh set we
	// return is the set that served the read — calling Get and then
	// Locate as two acquisitions (as this path once did) let a repair
	// slip between them and hand the caller a set that never served
	// anything.
	ids, ok := r.Locate(key)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", chunk.ErrNotFound, key)
	}
	data, skips, storeErrs, gerr := r.getFromSet(ids, key, off, length)
	if gerr != nil {
		return nil, nil, gerr
	}
	if skips+storeErrs > 0 {
		r.maybeNoteDegraded(key, storeErrs)
	}
	r.fillData(cache, key, data, off)
	r.fillHint(cache, key, ids)
	return data, ids, nil
}

// fillData caches a successful read's bytes when the read covered a
// prefix of the chunk (off == 0, the common whole-fragment read — the
// cache stores prefixes, see ReadCache).
func (r *Router) fillData(cache *ReadCache, key chunk.Key, data []byte, off int64) {
	if cache == nil || off != 0 || len(data) == 0 {
		return
	}
	cache.FillData(key, append([]byte(nil), data...))
}

// fillHint caches a fresh replica set alongside any cached data.
func (r *Router) fillHint(cache *ReadCache, key chunk.Key, ids []ID) {
	if cache != nil {
		cache.FillHint(key, ids)
	}
}

// getFromSet tries each replica in preference order (see replicaOrder)
// and returns the first successful read, along with failover
// accounting: skips counts replicas bypassed on flags (down or
// unknown), storeErrs counts real store errors observed before the
// success. Every real store attempt reports its outcome to the health
// monitor, and successful reads feed the locality counters when a
// reader domain is set.
func (r *Router) getFromSet(ids []ID, key chunk.Key, off, length int64) (data []byte, skips, storeErrs int, err error) {
	if len(ids) == 0 {
		return nil, 0, 0, fmt.Errorf("%w: %s (empty replica set)", chunk.ErrNotFound, key)
	}
	var start time.Time
	if r.met.getSec != nil {
		start = time.Now()
	}
	local, prefer := r.readLocality()
	var lastErr error
	for _, id := range r.replicaOrder(ids, local, prefer) {
		p := r.byID(id)
		if p == nil {
			lastErr = fmt.Errorf("provider: placement references unknown provider %d", id)
			skips++
			continue
		}
		if p.Down() {
			lastErr = fmt.Errorf("provider %d: %w", id, ErrProviderDown)
			skips++
			continue
		}
		data, err := p.Store().Get(key, off, length)
		r.reportError(id, err)
		if err == nil {
			switch {
			case local == "":
				r.met.getFlat.Inc()
			case p.Domain() == local:
				r.met.getLocal.Inc()
			default:
				r.met.getRemote.Inc()
			}
			if r.met.getSec != nil {
				r.met.getSec.ObserveSince(start)
			}
			if local != "" {
				if p.Domain() == local {
					r.locLocalReads.Add(1)
					r.locLocalBytes.Add(int64(len(data)))
				} else {
					r.locRemoteReads.Add(1)
					r.locRemoteBytes.Add(int64(len(data)))
				}
			}
			return data, skips, storeErrs, nil
		}
		storeErrs++
		lastErr = fmt.Errorf("provider %d: %w", id, err)
	}
	return nil, skips, storeErrs, fmt.Errorf("provider: all %d replicas of %s failed: %w", len(ids), key, lastErr)
}

// replicaOrder returns the order getFromSet tries a replica set in:
// rotated by the shared read cursor so replicated read load spreads
// over all copies, then — when the reader prefers its own domain —
// stably partitioned with same-domain replicas first. Partitioning
// preserves the rotation within each group, so load still balances
// across the local copies; the remote copies remain in the order as
// failover targets, never dropped.
func (r *Router) replicaOrder(ids []ID, local string, prefer bool) []ID {
	start := r.rdNext.Add(1) - 1
	out := make([]ID, 0, len(ids))
	for i := 0; i < len(ids); i++ {
		out = append(out, ids[(start+uint64(i))%uint64(len(ids))])
	}
	if !prefer || local == "" || len(out) < 2 {
		return out
	}
	ordered := make([]ID, 0, len(out))
	for _, id := range out {
		if r.DomainOf(id) == local {
			ordered = append(ordered, id)
		}
	}
	if len(ordered) == 0 || len(ordered) == len(out) {
		return out
	}
	for _, id := range out {
		if r.DomainOf(id) != local {
			ordered = append(ordered, id)
		}
	}
	return ordered
}

// maybeNoteDegraded decides whether a read that needed failover should
// feed the repair queue. A real store error is a strong signal (the
// copy is gone or the machine is dying). A flag-only skip is not by
// itself: a permanently stale metadata hint skips the same long-dead
// provider on every read even after repair restored the chunk, and
// those enqueues would crowd genuinely degraded chunks out of the
// bounded queue — so flag skips enqueue only when placement agrees the
// chunk is below degree.
func (r *Router) maybeNoteDegraded(key chunk.Key, storeErrs int) {
	if storeErrs > 0 {
		r.noteDegraded(key)
		return
	}
	if live, want, known := r.ReplicaHealth(key); known && live < want {
		r.noteDegraded(key)
	}
}

// sameIDSet reports whether two replica sets name the same providers,
// ignoring order.
func sameIDSet(a, b []ID) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[ID]int, len(a))
	for _, id := range a {
		seen[id]++
	}
	for _, id := range b {
		if seen[id] == 0 {
			return false
		}
		seen[id]--
	}
	return true
}

// setPlacement installs a chunk's new replica set and invalidates any
// cached state for it: placement changed, so a cached hint is stale
// (the cached DATA would still be valid — chunks are immutable — but
// dropping the whole entry keeps the invalidation surface trivial).
// Every placement mutation after the initial Put goes through here or
// through DeleteReplicas' retire path; Put installs directly because
// nothing can be cached for a key that was never readable.
func (r *Router) setPlacement(key chunk.Key, ids []ID) {
	r.place.mu.Lock()
	r.place.m[key] = ids
	r.place.mu.Unlock()
	r.invalidateCached(key)
}

// invalidateCached drops a chunk's read-cache entry, if a cache is
// wired. A read racing this may re-fill the entry a moment later;
// that is safe (see the ReadCache contract) because data is immutable
// and a stale re-filled hint self-corrects on its next use.
func (r *Router) invalidateCached(key chunk.Key) {
	if c := r.ReadCache(); c != nil {
		c.Invalidate(key)
	}
}

// Locate returns the replica set recorded for the key.
func (r *Router) Locate(key chunk.Key) ([]ID, bool) {
	r.place.mu.RLock()
	defer r.place.mu.RUnlock()
	ids, ok := r.place.m[key]
	if !ok {
		return nil, false
	}
	out := make([]ID, len(ids))
	copy(out, ids)
	return out, true
}

// RepairStats summarizes one re-replication pass.
type RepairStats struct {
	Scanned  int // chunks examined
	Degraded int // chunks found below the replication degree
	Copied   int // new copies written
	Repaired int // chunks restored to full degree
	Lost     int // chunks with no surviving replica (data loss)
	Failed   int // chunks whose repair attempt failed
}

// Keys returns a snapshot of every chunk key the placement map knows.
// The daemon-side scrubber walks this when it has no blob handles to
// enumerate published versions with.
func (r *Router) Keys() []chunk.Key {
	r.place.mu.RLock()
	defer r.place.mu.RUnlock()
	keys := make([]chunk.Key, 0, len(r.place.m))
	for k := range r.place.m {
		keys = append(keys, k)
	}
	return keys
}

// liveReplicas splits a chunk's recorded replica set into verified-live
// and dead members. A replica is live when its provider is known, not
// flagged down, and — when verify is set — its store answers a Len
// probe for the chunk. Verification is what lets the scrubber and the
// repair path detect a dead machine BEFORE the health monitor has
// flagged it. With report set, probe outcomes feed the monitor (so
// scrub traffic itself trips detection); passive observers like
// UnderReplicated probe silently to avoid acting as detectors.
func (r *Router) liveReplicas(key chunk.Key, ids []ID, verify, report bool) (live []ID) {
	for _, id := range ids {
		p := r.byID(id)
		if p == nil || p.Down() {
			continue
		}
		if verify {
			_, err := p.Store().Len(key)
			if report {
				r.reportError(id, err)
			}
			if err != nil {
				continue
			}
		}
		live = append(live, id)
	}
	return live
}

// ReplicaHealth reports how many of a chunk's recorded replicas (or
// coded fragments) are live (by down flags alone) against the
// configured placement degree.
func (r *Router) ReplicaHealth(key chunk.Key) (live, want int, known bool) {
	ids, ok := r.Locate(key)
	if !ok {
		return 0, r.degree(), false
	}
	return len(r.liveReplicas(key, ids, false, false)), r.degree(), true
}

// VerifyReplicas is the scrubber's per-chunk check: it probes every
// recorded replica's (or fragment's) store — reporting outcomes to the
// health monitor — and returns the verified-live count against the
// placement degree.
func (r *Router) VerifyReplicas(key chunk.Key) (live, want int, known bool) {
	ids, ok := r.Locate(key)
	if !ok {
		return 0, r.degree(), false
	}
	return len(r.liveReplicas(key, ids, true, true)), r.degree(), true
}

// UnderReplicated counts placement entries whose verified-live replica
// (or fragment) count is below the placement degree — the healer's
// convergence metric: zero means every known chunk is back at full
// degree. It is a passive observer: its probes do NOT feed the health
// monitor, so asserting convergence never doubles as failure detection.
func (r *Router) UnderReplicated() int {
	want := r.degree()
	n := 0
	for _, key := range r.Keys() {
		ids, ok := r.Locate(key)
		if !ok {
			continue
		}
		if len(r.liveReplicas(key, ids, true, false)) < want {
			n++
		}
	}
	return n
}

// RepairOutcome classifies one RepairChunk attempt.
type RepairOutcome int

// Repair outcomes.
const (
	// RepairHealthy: the chunk already had R verified-live copies.
	RepairHealthy RepairOutcome = iota
	// RepairRepaired: new copies restored the chunk to full degree.
	RepairRepaired
	// RepairPartial: some copies were written but the chunk is still
	// below degree (allocation or store failures); the scrubber will
	// re-find it next pass.
	RepairPartial
	// RepairLost: no verified-live replica survives — the data is gone.
	RepairLost
)

func (o RepairOutcome) String() string {
	switch o {
	case RepairHealthy:
		return "healthy"
	case RepairRepaired:
		return "repaired"
	case RepairPartial:
		return "partial"
	case RepairLost:
		return "lost"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// RepairChunk re-replicates one chunk: it verifies which recorded
// replicas still hold the data (probing stores, so flag-lagging dead
// machines are caught), copies from a survivor onto enough new distinct
// providers to restore the replication degree — placing the new copies
// in failure domains the survivors do not cover — and updates
// placement. A chunk already at full degree whose live replicas
// co-locate in fewer domains than the pool could spread them over is
// re-spread: one copy moves to an uncovered domain (restoring the
// spread invariant, not just the count). copied reports how many new
// copies were written, moves included. Unknown keys return
// RepairHealthy (nothing recorded to restore), as does a chunk whose
// in-flight claim is held by another worker — a concurrent deletion
// (the chunk is going away; repairing it would resurrect garbage) or
// a concurrent repair (which will restore it itself).
func (r *Router) RepairChunk(key chunk.Key) (outcome RepairOutcome, copied int, err error) {
	var start time.Time
	if r.met.repairSec != nil {
		start = time.Now()
	}
	outcome, copied, err = r.repairChunk(key)
	if outcome >= RepairHealthy && outcome <= RepairLost {
		r.met.repairOut[outcome].Inc()
	}
	if r.met.repairSec != nil {
		r.met.repairSec.ObserveSince(start)
	}
	return outcome, copied, err
}

func (r *Router) repairChunk(key chunk.Key) (outcome RepairOutcome, copied int, err error) {
	if !r.claimKey(key) {
		return RepairHealthy, 0, nil
	}
	defer r.releaseKey(key)
	if code := r.codeState(); code != nil {
		return r.repairCoded(code, key)
	}
	want := r.Replicas()
	ids, ok := r.Locate(key)
	if !ok {
		return RepairHealthy, 0, nil
	}
	live := r.liveReplicas(key, ids, true, true)
	if len(live) == len(ids) && len(live) >= want {
		// Full degree. Restore the domain spread if the set co-locates
		// while a spare live domain exists, then retire any copies
		// ABOVE degree (left behind by a spread move whose eviction
		// failed); otherwise nothing to do.
		if r.spreadViolatedSet(live) {
			if moved, merr := r.improveSpread(key, live); merr != nil {
				return RepairPartial, 0, merr
			} else if moved {
				return RepairRepaired, 1, nil
			}
		}
		if len(live) > want {
			r.trimExcess(key, live, want)
		}
		return RepairHealthy, 0, nil
	}
	if len(live) == 0 {
		return RepairLost, 0, fmt.Errorf("provider: chunk %s has no surviving replica", key)
	}
	newIDs, rerr := r.rereplicate(key, live, want)
	if rerr != nil {
		// Record any copies that DID land before the failure: invisible
		// copies would be orphans — unreadable, re-copied by the next
		// repair, and never reclaimed by DeleteReplicas.
		if len(newIDs) > len(live) {
			copied = len(newIDs) - len(live)
			r.setPlacement(key, newIDs)
		}
		return RepairPartial, copied, rerr
	}
	copied = len(newIDs) - len(live)
	r.setPlacement(key, newIDs)
	if len(newIDs) >= want {
		return RepairRepaired, copied, nil
	}
	return RepairPartial, copied, nil
}

// Repair is the full re-replication pass: it scans the placement map
// for chunks whose live replica count dropped below the replication
// degree (a provider died), copies them from a surviving replica onto
// new distinct providers, and updates placement. Chunks with no
// surviving replica are counted as Lost — with R >= 2 that requires
// losing multiple machines between repairs. Safe to run while writes
// proceed; each chunk is repaired independently. The background healer
// (core.Healer) runs the same repair chunk-by-chunk, rate limited.
func (r *Router) Repair() RepairStats {
	var st RepairStats
	for _, key := range r.Keys() {
		st.Scanned++
		// RepairChunk verifies replicas itself (store probes, so a
		// store-dead but flag-live replica — machine died, detector
		// not yet tripped — still counts as degraded and a manual
		// `bsctl repair` heals it without waiting on the monitor), so
		// the outcome doubles as the degradation classification.
		outcome, copied, _ := r.RepairChunk(key)
		st.Copied += copied
		switch outcome {
		case RepairHealthy:
			// At full degree; not degraded.
		case RepairRepaired:
			st.Degraded++
			st.Repaired++
		case RepairLost:
			st.Degraded++
			st.Lost++
		default:
			st.Degraded++
			st.Failed++
		}
	}
	return st
}

// rereplicate copies one chunk from a surviving replica onto enough new
// providers to restore the replication degree, returning the new
// replica set (live survivors plus new copies). The survivors' failure
// domains are handed to the allocator as already-covered, so new
// copies land in uncovered domains first — a repair after a domain
// loss restores the spread invariant along with the count.
func (r *Router) rereplicate(key chunk.Key, live []ID, want int) ([]ID, error) {
	missing := want - len(live)
	if missing <= 0 {
		return live, nil
	}
	data, err := r.readFull(key, live)
	if err != nil {
		return nil, err
	}
	exclude := make(map[ID]bool, len(live))
	have := make(map[string]int, len(live))
	for _, id := range live {
		exclude[id] = true
		have[r.DomainOf(id)]++
	}
	out := append([]ID(nil), live...)
	var lastErr error
	// A target whose store fails the copy (a dead machine the health
	// monitor has not flagged yet) is excluded and allocation retried,
	// so one repair call converges past flag-lagging losses instead of
	// waiting for detection. The loop terminates: every round either
	// places a copy or grows the exclusion set.
	for missing > 0 {
		targets, aerr := r.allocateSpread(missing, exclude, have)
		if aerr != nil {
			if lastErr == nil {
				lastErr = aerr
			}
			return out, lastErr
		}
		for _, p := range targets {
			exclude[p.ID()] = true
			err := r.putOne(p, key, data)
			// Tolerate ErrExists: an earlier partial repair or a
			// quorum-failed Put may have left a valid copy here.
			if err != nil && !errors.Is(err, chunk.ErrExists) {
				lastErr = fmt.Errorf("provider %d: %w", p.ID(), err)
				continue
			}
			out = append(out, p.ID())
			have[p.Domain()]++
			missing--
		}
	}
	return out, nil
}

// liveDomainCount counts failure domains with at least one flag-live
// provider — the spread width currently achievable. A pool that is
// not fully tagged counts as ONE domain: during a topology transition
// the spread machinery (audit, spread repair, violation checks) stays
// inert, for the same reason allocateSpread stays flat (see
// domainPromise).
func (m *Manager) liveDomainCount() int {
	if _, full := m.domainPromise(); !full {
		return 1
	}
	seen := make(map[string]bool)
	for _, p := range m.Providers() {
		if !p.Down() {
			seen[p.Domain()] = true
		}
	}
	return len(seen)
}

// spreadViolatedSet reports whether a replica set (its flag-live
// members) spans fewer distinct failure domains than it could: the
// invariant is min(R, set size, live domains) distinct domains. A flat
// pool (one domain) never violates.
func (r *Router) spreadViolatedSet(ids []ID) bool {
	return r.spreadViolatedIn(ids, r.liveDomainCount())
}

// spreadViolatedIn is spreadViolatedSet with the live-domain count
// precomputed, so a whole-placement scan walks the provider list once
// instead of once per chunk.
func (r *Router) spreadViolatedIn(ids []ID, liveDoms int) bool {
	if liveDoms <= 1 {
		return false
	}
	covered := make(map[string]bool)
	n := 0
	for _, id := range ids {
		p := r.byID(id)
		if p == nil || p.Down() {
			continue
		}
		n++
		covered[p.Domain()] = true
	}
	achievable := r.degree()
	if n < achievable {
		achievable = n
	}
	if liveDoms < achievable {
		achievable = liveDoms
	}
	return len(covered) < achievable
}

// SpreadViolated reports whether the chunk's recorded replica set
// co-locates in fewer failure domains than the pool could spread it
// over (down flags only, no store probes — the count path catches dead
// copies). The scrubber feeds violations into the repair queue, where
// RepairChunk re-spreads them.
func (r *Router) SpreadViolated(key chunk.Key) bool {
	return r.SpreadViolatedWith(key, r.liveDomainCount())
}

// LiveDomains returns the number of failure domains with at least one
// flag-live provider. Callers checking many chunks (the scrubber)
// compute it once per pass and hand it to SpreadViolatedWith, instead
// of re-walking the provider list per chunk.
func (r *Router) LiveDomains() int { return r.liveDomainCount() }

// SpreadViolatedWith is SpreadViolated with the live-domain count
// precomputed (see LiveDomains).
func (r *Router) SpreadViolatedWith(key chunk.Key, liveDomains int) bool {
	if liveDomains <= 1 {
		return false
	}
	ids, ok := r.Locate(key)
	if !ok {
		return false
	}
	return r.spreadViolatedIn(ids, liveDomains)
}

// PlacementSuspect is the scrubber's placement-quality check for a
// chunk whose LIVE count already matches the degree: true when the
// live replicas violate the domain spread, or when the RECORDED set
// size differs from the degree — an above-degree set left by a failed
// spread-move eviction, or a stale entry naming a dead provider
// alongside a full live set (the probe-based live count cannot see
// either). RepairChunk resolves both: it prunes stale members and
// trims above-degree copies.
func (r *Router) PlacementSuspect(key chunk.Key, liveDomains int) bool {
	if liveDomains <= 1 {
		return false
	}
	ids, ok := r.Locate(key)
	if !ok {
		return false
	}
	if len(ids) != r.degree() {
		return true
	}
	return r.spreadViolatedIn(ids, liveDomains)
}

// SpreadAudit scans the placement map for chunks whose live replicas
// violate the domain-spread invariant — the operator's correlated-loss
// exposure report (bsctl health). Like UnderReplicated it is a passive
// observer: no store probes, no health reports.
func (r *Router) SpreadAudit() []chunk.Key {
	liveDoms := r.liveDomainCount()
	if liveDoms <= 1 {
		return nil
	}
	var out []chunk.Key
	for _, key := range r.Keys() {
		if ids, ok := r.Locate(key); ok && r.spreadViolatedIn(ids, liveDoms) {
			out = append(out, key)
		}
	}
	return out
}

// improveSpread moves one replica of a full-degree chunk into a
// failure domain the set does not cover: copy onto a provider in an
// uncovered domain, then delete one copy from the most crowded domain.
// moved is false when no uncovered live domain has a spare provider.
// A failed delete leaves the extra copy in placement (harmless: one
// copy above degree); the scrubber re-finds above-degree sets and
// RepairChunk retires them via trimExcess. Caller holds the chunk's
// in-flight claim.
func (r *Router) improveSpread(key chunk.Key, live []ID) (moved bool, err error) {
	exclude := make(map[ID]bool, len(live))
	have := make(map[string]int, len(live))
	for _, id := range live {
		exclude[id] = true
		have[r.DomainOf(id)]++
	}
	targets, err := r.allocateSpread(1, exclude, have)
	if err != nil {
		return false, nil // no spare provider at all; count is intact
	}
	target := targets[0]
	if have[target.Domain()] > 0 {
		return false, nil // every uncovered domain is down or exhausted
	}
	data, err := r.readFull(key, live)
	if err != nil {
		return false, err
	}
	if err := r.putOne(target, key, data); err != nil && !errors.Is(err, chunk.ErrExists) {
		return false, err
	}
	// Evict one copy from a crowded domain (>= 2 live copies): the new
	// copy covers a fresh domain, so coverage strictly improves. The
	// LAST such replica goes, keeping the earliest-written copy in
	// place.
	newSet := append([]ID(nil), live...)
	for i := len(newSet) - 1; i >= 0; i-- {
		id := newSet[i]
		if have[r.DomainOf(id)] < 2 {
			continue
		}
		p := r.byID(id)
		if p == nil || p.Down() {
			continue
		}
		derr := p.Store().Delete(key)
		r.reportError(id, derr)
		if derr == nil || errors.Is(derr, chunk.ErrNotFound) {
			newSet = append(newSet[:i], newSet[i+1:]...)
		}
		break
	}
	newSet = append(newSet, target.ID())
	r.setPlacement(key, newSet)
	return true, nil
}

// trimExcess deletes copies above the replication degree — left behind
// when a spread move's eviction failed — keeping coverage by trimming
// the most crowded domains first (the last replica there goes, as in
// improveSpread). A failed delete stops the trim; the copy stays
// recorded and the next scrub pass retries. Caller holds the chunk's
// in-flight claim.
func (r *Router) trimExcess(key chunk.Key, live []ID, want int) {
	out := append([]ID(nil), live...)
	trimmed := false
	for len(out) > want {
		counts := make(map[string]int, len(out))
		for _, id := range out {
			counts[r.DomainOf(id)]++
		}
		idx, best := -1, -1
		for i, id := range out {
			if c := counts[r.DomainOf(id)]; c >= best {
				idx, best = i, c
			}
		}
		p := r.byID(out[idx])
		if p == nil || p.Down() {
			break // unreachable copy; a later pass retries
		}
		derr := p.Store().Delete(key)
		r.reportError(out[idx], derr)
		if derr != nil && !errors.Is(derr, chunk.ErrNotFound) {
			break
		}
		out = append(out[:idx], out[idx+1:]...)
		trimmed = true
	}
	if trimmed {
		r.setPlacement(key, out)
	}
}

// ErrChunkBusy is returned by DeleteReplicas when the chunk has an
// in-flight repair; the collector retries on its next pass.
var ErrChunkBusy = errors.New("provider: chunk has an in-flight repair")

// DeleteReplicas removes a chunk from every reachable replica and
// retires its placement entry — the data-path end of version garbage
// collection. Only chunks the collector proved unreferenced by every
// retained snapshot may be deleted.
//
// Per replica: a provider flagged down is skipped (its copy is
// unreachable; like repair, deletion never talks to dead machines —
// the copy becomes an orphan if the machine revives), a store
// answering ErrNotFound already lost the copy (success), and a store
// error leaves the replica recorded so a later pass retries it; every
// real store attempt reports its outcome to the health monitor, so a
// silently dead machine discovered by GC traffic trips detection too.
// When replicas remain the placement entry shrinks to exactly those
// and a wrapped error reports them; when none remain the entry is
// removed. A chunk currently being repaired fails with ErrChunkBusy.
func (r *Router) DeleteReplicas(key chunk.Key) (removed int, bytes int64, err error) {
	if !r.claimKey(key) {
		return 0, 0, fmt.Errorf("%w: %s", ErrChunkBusy, key)
	}
	defer r.releaseKey(key)
	ids, ok := r.Locate(key)
	if !ok {
		return 0, 0, nil // never stored or already collected
	}
	var remaining []ID
	var failures []error
	for _, id := range ids {
		p := r.byID(id)
		if p == nil || p.Down() {
			continue // unreachable replica: orphaned, not retried
		}
		size, lerr := p.Store().Len(key)
		if lerr != nil {
			size = 0
		}
		derr := p.Store().Delete(key)
		r.reportError(id, derr)
		if derr == nil {
			removed++
			bytes += size
			continue
		}
		if errors.Is(derr, chunk.ErrNotFound) {
			continue // copy already gone
		}
		remaining = append(remaining, id)
		failures = append(failures, fmt.Errorf("provider %d: %w", id, derr))
	}
	r.place.mu.Lock()
	if len(remaining) == 0 {
		delete(r.place.m, key)
	} else {
		r.place.m[key] = remaining
	}
	r.place.mu.Unlock()
	// The chunk's copies moved or vanished either way: drop whatever
	// the read tier cached for it.
	r.invalidateCached(key)
	if len(remaining) > 0 {
		return removed, bytes, fmt.Errorf("provider: %d replicas of %s not deleted: %w",
			len(remaining), key, errors.Join(failures...))
	}
	return removed, bytes, nil
}

// ProviderUsage is one provider's space accounting.
type ProviderUsage struct {
	Provider ID
	Domain   string // failure-domain label ("" on a flat pool)
	Chunks   int
	Bytes    int64
	Down     bool
}

// Usage reports per-provider chunk counts and stored bytes with the
// provider's failure domain, in registration order — the operator's
// view of where space lives (and in which loss unit), and the
// verification feed for reclamation accounting.
func (r *Router) Usage() []ProviderUsage {
	providers := r.Providers()
	out := make([]ProviderUsage, 0, len(providers))
	for _, p := range providers {
		chunks, bytes := p.Store().Usage()
		out = append(out, ProviderUsage{Provider: p.ID(), Domain: p.Domain(), Chunks: chunks, Bytes: bytes, Down: p.Down()})
	}
	return out
}

// readFull reads a whole chunk from the first surviving replica able to
// serve it.
func (r *Router) readFull(key chunk.Key, live []ID) ([]byte, error) {
	var lastErr error
	for _, id := range live {
		p := r.byID(id)
		if p == nil || p.Down() {
			continue
		}
		size, err := p.Store().Len(key)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := p.Store().Get(key, 0, size)
		if err != nil {
			lastErr = err
			continue
		}
		return data, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: %s", chunk.ErrNotFound, key)
	}
	return nil, lastErr
}
