// Health monitoring: deducing provider down-ness from observed store
// errors instead of an operator running `bsctl down`.
//
// The HealthMonitor is a per-provider state machine fed by the Router's
// I/O outcomes (every replica store attempt reports success or failure)
// and by its own probation probes:
//
//	Live ──failure──▶ Suspect ──threshold consecutive failures──▶ Down
//	  ▲                  │success (decay: counter resets)
//	  └──────────────────┘
//	Down ──probation elapsed──▶ Probation ──probe ok ×K──▶ Live
//	                                 │probe fails
//	                                 └──▶ Down (probation restarts)
//
// Two properties keep the machine stable under flapping providers:
// a provider is never declared down by fewer than Threshold
// CONSECUTIVE failures (any success resets the count, so alternating
// ok/fail never trips it), and a down provider can only return to Live
// after sitting out the full Probation interval and then answering
// ProbeSuccesses consecutive probes — so down/live oscillation is rate
// limited by the probation clock, not by traffic.
//
// Time is injectable (SetClock) so torture tests drive the machine in
// virtual ticks; production uses time.Now.
package provider

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/chunk"
)

// HealthState is one provider's position in the detection state machine.
type HealthState int

// Health states. Suspect providers still serve traffic (they have
// failed recently but not often enough to be declared down).
const (
	Live HealthState = iota
	Suspect
	Down
	Probation
)

func (s HealthState) String() string {
	switch s {
	case Live:
		return "live"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	case Probation:
		return "probation"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// HealthConfig tunes the detection state machine. The zero value of
// each field selects its default.
type HealthConfig struct {
	// Threshold is the number of consecutive failures that marks a
	// provider down (default 3). A success resets the count.
	Threshold int
	// Probation is how long a down provider sits out before the monitor
	// probes it again (default 2s on the monitor's clock).
	Probation time.Duration
	// ProbeSuccesses is the number of consecutive successful probes a
	// provider in probation must answer to be marked live (default 2).
	ProbeSuccesses int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Probation <= 0 {
		c.Probation = 2 * time.Second
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 2
	}
	return c
}

// HealthStatus is the externally visible health record of one provider.
type HealthStatus struct {
	Provider  ID
	Domain    string // failure-domain label ("" on a flat pool)
	State     HealthState
	Consec    int   // consecutive failures observed (Live/Suspect)
	Failures  int64 // total failures reported
	Successes int64 // total successes reported
	DownSince time.Time
}

// healthEntry is the per-provider state.
type healthEntry struct {
	state     HealthState
	consec    int // consecutive failures while Live/Suspect
	probeOK   int // consecutive probe successes while in Probation
	failures  int64
	successes int64
	downSince time.Time
	// epoch is the manager's down-flag transition epoch recorded when
	// the monitor marked the provider down. If it has moved since, an
	// administrator touched the flag and the monitor cedes ownership:
	// it must not revive (or keep probing) a provider an operator
	// deliberately downed.
	epoch int64
}

// HealthMonitor deduces provider down-ness from the error stream the
// data path already produces. It owns the down flags it sets: a
// provider it marked down is revived only by its own probation probes,
// while administratively downed providers (Manager.SetDown from bsctl)
// are left alone.
type HealthMonitor struct {
	mgr *Manager
	cfg HealthConfig

	mu      sync.Mutex
	now     func() time.Time
	probe   func(ID) error
	entries map[ID]*healthEntry
}

// NewHealthMonitor attaches a monitor to the manager's provider pool.
func NewHealthMonitor(mgr *Manager, cfg HealthConfig) *HealthMonitor {
	h := &HealthMonitor{
		mgr:     mgr,
		cfg:     cfg.withDefaults(),
		now:     time.Now,
		entries: make(map[ID]*healthEntry),
	}
	h.probe = h.defaultProbe
	return h
}

// Config returns the effective (defaulted) configuration.
func (h *HealthMonitor) Config() HealthConfig { return h.cfg }

// SetClock substitutes the monitor's time source; torture tests use a
// manually advanced virtual clock.
func (h *HealthMonitor) SetClock(now func() time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.now = now
}

// SetProbe substitutes the probe function (tests).
func (h *HealthMonitor) SetProbe(probe func(ID) error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.probe = probe
}

// defaultProbe asks the provider's store for the length of an arbitrary
// key: a dead machine errors (chunk.ErrDown, transport failure), a live
// one answers — chunk.ErrNotFound is a healthy answer.
func (h *HealthMonitor) defaultProbe(id ID) error {
	p := h.mgr.byID(id)
	if p == nil {
		return fmt.Errorf("provider: unknown provider %d", id)
	}
	_, err := p.Store().Len(chunk.Key{})
	if err != nil && !errors.Is(err, chunk.ErrNotFound) {
		return err
	}
	return nil
}

// CountsAsFailure classifies a store error for health accounting: only
// machine-level failures (down, transport, injected faults) count; a
// store that answers "not found" or "already exists" is alive.
func CountsAsFailure(err error) bool {
	if err == nil {
		return false
	}
	return !errors.Is(err, chunk.ErrNotFound) && !errors.Is(err, chunk.ErrExists)
}

// entry returns (creating if needed) the state for id. Caller holds mu.
func (h *HealthMonitor) entry(id ID) *healthEntry {
	e, ok := h.entries[id]
	if !ok {
		e = &healthEntry{state: Live}
		h.entries[id] = e
	}
	return e
}

// ReportSuccess records a successful store operation against id.
func (h *HealthMonitor) ReportSuccess(id ID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.entry(id)
	e.successes++
	switch e.state {
	case Live, Suspect:
		e.consec = 0
		e.state = Live
	case Probation:
		// Traffic reaching a probation provider is probe evidence too.
		h.probeResultLocked(id, e, true)
	case Down:
		// Down providers are skipped by the data path; a stray success
		// (e.g. a racing request issued before the transition) is not
		// enough to revive — probation decides that.
	}
}

// ReportFailure records a failed store operation against id.
func (h *HealthMonitor) ReportFailure(id ID) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.entry(id)
	e.failures++
	switch e.state {
	case Live, Suspect:
		e.consec++
		e.state = Suspect
		if e.consec >= h.cfg.Threshold {
			h.markDownLocked(id, e)
		}
	case Probation:
		h.probeResultLocked(id, e, false)
	case Down:
		// Already down; nothing to learn.
	}
}

// ReportError classifies err (CountsAsFailure) and reports accordingly.
func (h *HealthMonitor) ReportError(id ID, err error) {
	if CountsAsFailure(err) {
		h.ReportFailure(id)
	} else {
		h.ReportSuccess(id)
	}
}

// markDownLocked transitions id to Down by CLAIMING the manager's down
// flag (an atomic live->down flip), removing the provider from
// allocation and read failover and recording the transition epoch so a
// later administrative SetDown is detectable. If the flag is already
// down — an administrator beat the monitor to it — the monitor does
// not claim ownership: the entry resets to Live and the operator's
// flag speaks for itself (Snapshot still reports it down).
func (h *HealthMonitor) markDownLocked(id ID, e *healthEntry) {
	e.consec = 0
	e.probeOK = 0
	epoch, ok, err := h.mgr.claimDown(id)
	if err != nil || !ok {
		e.state = Live
		return
	}
	e.state = Down
	e.downSince = h.now()
	e.epoch = epoch
}

// redownLocked restarts probation for a provider the monitor already
// owns (a failed probe): state returns to Down and the probation clock
// restarts, without re-claiming the flag (it is still set, still ours
// — the caller verified the epoch via cededLocked).
func (h *HealthMonitor) redownLocked(e *healthEntry) {
	e.state = Down
	e.consec = 0
	e.probeOK = 0
	e.downSince = h.now()
}

// cededLocked reports whether the down flag changed hands since the
// monitor set it (an operator ran bsctl down/up). If so, the monitor
// abandons the transition: its entry resets to Live (traffic evidence
// will rebuild it) and the flag is left exactly as the operator set it.
func (h *HealthMonitor) cededLocked(id ID, e *healthEntry) bool {
	if h.mgr.downEpochOf(id) == e.epoch {
		return false
	}
	e.state = Live
	e.consec = 0
	e.probeOK = 0
	return true
}

// probeResultLocked advances the probation state with one probe result.
func (h *HealthMonitor) probeResultLocked(id ID, e *healthEntry, ok bool) {
	if h.cededLocked(id, e) {
		return
	}
	if !ok {
		// Failed probe: back to Down, probation restarts from now — the
		// rate limit on down/live oscillation. The flag is still set
		// and still ours (cededLocked above checked the epoch).
		h.redownLocked(e)
		return
	}
	e.probeOK++
	if e.probeOK >= h.cfg.ProbeSuccesses {
		e.state = Live
		e.consec = 0
		e.probeOK = 0
		if epoch, err := h.mgr.setDown(id, false); err == nil {
			e.epoch = epoch
		}
	}
}

// Tick advances the monitor's clock-driven transitions: every provider
// this monitor marked down whose probation interval has elapsed is
// probed once. Call it periodically (the core Healer does) or per
// virtual-time tick in tests.
func (h *HealthMonitor) Tick() {
	type probeJob struct {
		id ID
		e  *healthEntry
	}
	h.mu.Lock()
	now := h.now()
	probe := h.probe
	var jobs []probeJob
	for id, e := range h.entries {
		switch e.state {
		case Down:
			if h.cededLocked(id, e) {
				continue
			}
			if now.Sub(e.downSince) >= h.cfg.Probation {
				e.state = Probation
				e.probeOK = 0
				jobs = append(jobs, probeJob{id, e})
			}
		case Probation:
			jobs = append(jobs, probeJob{id, e})
		}
	}
	h.mu.Unlock()

	for _, j := range jobs {
		err := probe(j.id)
		h.mu.Lock()
		// Re-check: traffic may have already resolved the probation.
		if e := h.entries[j.id]; e == j.e && e.state == Probation {
			h.probeResultLocked(j.id, e, err == nil)
		}
		h.mu.Unlock()
	}
}

// State returns the current health state of id (Live if never seen).
func (h *HealthMonitor) State(id ID) HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	if e, ok := h.entries[id]; ok {
		return e.state
	}
	return Live
}

// Snapshot reports the health of every registered provider, sorted by
// ID. Providers with no recorded events report Live with zero counters.
func (h *HealthMonitor) Snapshot() []HealthStatus {
	provs := h.mgr.Providers()
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HealthStatus, 0, len(provs))
	for _, p := range provs {
		st := HealthStatus{Provider: p.ID(), Domain: p.Domain(), State: Live}
		if e, ok := h.entries[p.ID()]; ok {
			st.State = e.state
			st.Consec = e.consec
			st.Failures = e.failures
			st.Successes = e.successes
			st.DownSince = e.downSince
		}
		if st.State == Live && p.Down() {
			// Administratively downed (bsctl down): report it as down
			// even though the monitor does not own the transition.
			st.State = Down
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Provider < out[j].Provider })
	return out
}
