package provider

import (
	"errors"
	"testing"

	"repro/internal/chunk"
	"repro/internal/iosim"
)

func replicatedRouter(t *testing.T, n, replicas int) (*Router, []*chunk.FaultStore) {
	t.Helper()
	mgr, faults := NewFaultPool(n, iosim.CostModel{})
	r := NewRouter(mgr)
	r.SetReplicas(replicas)
	return r, faults
}

func TestDeleteReplicasRemovesEveryLiveCopy(t *testing.T) {
	r, _ := replicatedRouter(t, 4, 3)
	key := chunk.Key{Blob: 1, Version: 1}
	ids, err := r.Put(key, make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("stored %d copies", len(ids))
	}
	removed, bytes, err := r.DeleteReplicas(key)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 || bytes != 3*64 {
		t.Fatalf("removed %d copies / %d bytes, want 3 / 192", removed, bytes)
	}
	if _, ok := r.Locate(key); ok {
		t.Fatal("placement entry survives deletion")
	}
	for _, p := range r.Providers() {
		if _, err := p.Store().Len(key); !errors.Is(err, chunk.ErrNotFound) {
			t.Fatalf("provider %d still holds the chunk: %v", p.ID(), err)
		}
	}
	// Deleting an unknown / already-deleted chunk is a no-op.
	if n, b, err := r.DeleteReplicas(key); err != nil || n != 0 || b != 0 {
		t.Fatalf("re-delete = %d, %d, %v", n, b, err)
	}
}

func TestDeleteReplicasSkipsDownAndRetriesErrors(t *testing.T) {
	r, faults := replicatedRouter(t, 4, 3)
	key := chunk.Key{Blob: 1, Version: 2}
	ids, err := r.Put(key, make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}
	// One replica's machine is flagged down: its copy is orphaned, not
	// an error. Another replica's store errors while flag-live: that
	// one must stay recorded for retry.
	downID, errID := ids[0], ids[1]
	if err := r.SetDown(downID, true); err != nil {
		t.Fatal(err)
	}
	faults[errID].SetDown(true) // store-level failure, flag still live

	removed, _, err := r.DeleteReplicas(key)
	if err == nil {
		t.Fatal("delete with an erroring replica must report it")
	}
	if removed != 1 {
		t.Fatalf("removed %d copies, want 1 (the healthy one)", removed)
	}
	left, ok := r.Locate(key)
	if !ok || len(left) != 1 || left[0] != errID {
		t.Fatalf("placement after partial delete = %v (ok=%v), want [%d]", left, ok, errID)
	}
	// The store recovers; the retry completes and retires placement.
	faults[errID].SetDown(false)
	removed, _, err = r.DeleteReplicas(key)
	if err != nil || removed != 1 {
		t.Fatalf("retry = %d, %v", removed, err)
	}
	if _, ok := r.Locate(key); ok {
		t.Fatal("placement survives completed retry")
	}
}

func TestDeleteReplicasBusyWithRepair(t *testing.T) {
	r, _ := replicatedRouter(t, 4, 2)
	key := chunk.Key{Blob: 1, Version: 3}
	if _, err := r.Put(key, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	// Simulate an in-flight repair holding the claim.
	if !r.claimKey(key) {
		t.Fatal("claim failed")
	}
	if _, _, err := r.DeleteReplicas(key); !errors.Is(err, ErrChunkBusy) {
		t.Fatalf("delete under repair = %v, want ErrChunkBusy", err)
	}
	// And the mirror image: a repair of a chunk being deleted backs
	// off as healthy instead of resurrecting it.
	if outcome, copied, err := r.RepairChunk(key); outcome != RepairHealthy || copied != 0 || err != nil {
		t.Fatalf("repair under delete = %v, %d, %v", outcome, copied, err)
	}
	r.releaseKey(key)
	if _, _, err := r.DeleteReplicas(key); err != nil {
		t.Fatalf("delete after release: %v", err)
	}
}

func TestRepairDoesNotResurrectDeletedChunk(t *testing.T) {
	r, _ := replicatedRouter(t, 4, 2)
	key := chunk.Key{Blob: 1, Version: 4}
	if _, err := r.Put(key, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.DeleteReplicas(key); err != nil {
		t.Fatal(err)
	}
	// The healer may still hold the key in its queue from before the
	// drop; repairing it now must be a no-op.
	outcome, copied, err := r.RepairChunk(key)
	if outcome != RepairHealthy || copied != 0 || err != nil {
		t.Fatalf("repair of deleted chunk = %v, %d, %v", outcome, copied, err)
	}
	if _, ok := r.Locate(key); ok {
		t.Fatal("repair resurrected a deleted chunk")
	}
}

func TestRouterUsage(t *testing.T) {
	r, _ := replicatedRouter(t, 3, 2)
	if _, err := r.Put(chunk.Key{Blob: 1, Version: 1}, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put(chunk.Key{Blob: 1, Version: 2}, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if err := r.SetDown(2, true); err != nil {
		t.Fatal(err)
	}
	us := r.Usage()
	if len(us) != 3 {
		t.Fatalf("usage rows = %d", len(us))
	}
	var chunks int
	var bytes int64
	for _, u := range us {
		chunks += u.Chunks
		bytes += u.Bytes
		if u.Provider == 2 && !u.Down {
			t.Fatal("down flag not reported")
		}
	}
	// 2 chunks x 2 replicas each, 220 bytes total across the pool.
	if chunks != 4 || bytes != 220 {
		t.Fatalf("pool usage = %d chunks / %d bytes, want 4 / 220", chunks, bytes)
	}
}
