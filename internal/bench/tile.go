package bench

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/datatype"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/workload"
)

// TileOptions tunes RunTile.
type TileOptions struct {
	// Collective uses MPI_File_write_at_all (two-phase I/O); otherwise
	// each rank writes independently.
	Collective bool
	// Iterations is the number of full-array dumps (default 1).
	Iterations int
	// Atomic enables MPI atomic mode (default true, matching the
	// paper's benchmark configuration for overlapped tiles).
	NonAtomic bool
	// Warmup runs the whole workload this many times untimed first.
	Warmup int
}

// RunTile measures the MPI-tile-IO workload: spec.Ranks() MPI processes
// each write their (overlapping) tile of a dense 2D array into the
// shared file, via a subarray file view.
func RunTile(kind SystemKind, env cluster.Env, spec workload.TileSpec, opts TileOptions) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 1
	}
	sys, err := Build(kind, env, spec.FileBytes())
	if err != nil {
		return Result{}, err
	}

	ranks := spec.Ranks()
	runAll := func() error {
		return mpi.Run(ranks, func(c *mpi.Comm) error {
			f := mpiio.Open(c, sys.Driver)
			f.SetAtomicity(!opts.NonAtomic)
			sub := spec.Subarray(c.Rank())
			if err := f.SetView(mpiio.View{Disp: 0, Etype: datatype.Byte, Filetype: sub}); err != nil {
				return err
			}
			buf := make([]byte, spec.BytesPerRank())
			for i := range buf {
				buf[i] = byte(c.Rank() + 1)
			}
			for it := 0; it < iters; it++ {
				if opts.Collective {
					if err := f.WriteAtAll(0, buf); err != nil {
						return fmt.Errorf("rank %d iter %d: %w", c.Rank(), it, err)
					}
				} else {
					if err := f.WriteAt(0, buf); err != nil {
						return fmt.Errorf("rank %d iter %d: %w", c.Rank(), it, err)
					}
					c.Barrier() // mpi-tile-io synchronizes between dumps
				}
			}
			return nil
		})
	}
	for i := 0; i < opts.Warmup; i++ {
		if err := runAll(); err != nil {
			return Result{}, err
		}
	}
	warmWait := sys.LockWait()
	start := time.Now()
	err = runAll()
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		System:   kind,
		Clients:  ranks,
		Calls:    ranks * iters,
		Bytes:    int64(ranks) * int64(iters) * spec.BytesPerRank(),
		Elapsed:  elapsed,
		LockWait: sys.LockWait() - warmWait,
	}
	res.MBps = float64(res.Bytes) / (1 << 20) / elapsed.Seconds()
	if sys.detector != nil {
		res.Conflicts = sys.detector.Stats().Conflicts
	}
	return res, nil
}

// RunHalo measures the ghost-cell dump workload (the motivating
// application pattern): each rank writes its halo-extended subdomain
// under MPI atomicity.
func RunHalo(kind SystemKind, env cluster.Env, spec workload.HaloSpec, iterations int) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if iterations <= 0 {
		iterations = 1
	}
	dw, dh := spec.DomainDims()
	span := int64(dw) * int64(dh) * spec.ElementSize
	sys, err := Build(kind, env, span)
	if err != nil {
		return Result{}, err
	}
	ranks := spec.Ranks()
	var bytes int64
	start := time.Now()
	err = mpi.Run(ranks, func(c *mpi.Comm) error {
		f := mpiio.Open(c, sys.Driver)
		f.SetAtomicity(true)
		sub := spec.Subarray(c.Rank())
		if err := f.SetView(mpiio.View{Disp: 0, Etype: datatype.Byte, Filetype: sub}); err != nil {
			return err
		}
		buf := make([]byte, spec.BytesPerRank(c.Rank()))
		for i := range buf {
			buf[i] = byte(c.Rank() + 1)
		}
		for it := 0; it < iterations; it++ {
			if err := f.WriteAt(0, buf); err != nil {
				return err
			}
			c.Barrier()
		}
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return Result{}, err
	}
	for r := 0; r < ranks; r++ {
		bytes += spec.BytesPerRank(r)
	}
	bytes *= int64(iterations)
	res := Result{
		System:   kind,
		Clients:  ranks,
		Calls:    ranks * iterations,
		Bytes:    bytes,
		Elapsed:  elapsed,
		LockWait: sys.LockWait(),
	}
	res.MBps = float64(res.Bytes) / (1 << 20) / elapsed.Seconds()
	return res, nil
}
