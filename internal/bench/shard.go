package bench

import (
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/vmanager"
	"repro/internal/workload"
)

// ShardedPublishOptions tunes RunShardedPublish, the control-plane
// scaling scenario: E8's overlapped-small-write workload rerun against
// a sharded version manager. Each client writes its own blob, so with
// N shards the per-call control round trips (ticket grant, publish)
// spread across N independent control servers instead of queueing on
// one — the throughput ceiling sharding exists to remove.
type ShardedPublishOptions struct {
	// Shards is the control-plane shard count (default 1; 1 must
	// reproduce RunSmallWrites within noise — same code path, one
	// manager).
	Shards int
	// Iterations is the number of write calls per client (default 1).
	Iterations int
	// Batch is each shard's group-commit configuration.
	Batch vmanager.BatchConfig
	// PipeDepth is each client's async write-pipe depth; values <= 1
	// submit synchronously.
	PipeDepth int
	// BlobsPerClient is how many blobs each client spreads its calls
	// over, round-robin (default 1). A blob is pinned to one shard, so
	// the blob population — not the client count — bounds how evenly
	// the hash can spread control load; more blobs, better balance.
	BlobsPerClient int
}

// RunShardedPublish measures aggregated small-write throughput with
// the control plane partitioned across opts.Shards version-manager
// shards. The workload is RunSmallWrites' except that each client
// writes its own blobs (BlobsPerClient of them, round-robin): a blob
// is owned by a single shard, so per-blob control traffic cannot be
// spread — the scaling unit is the blob, exactly the contract
// ShardIndex pins down.
func RunShardedPublish(env cluster.Env, spec workload.OverlapSpec, opts ShardedPublishOptions) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 1
	}
	depth := opts.PipeDepth
	if depth <= 1 {
		depth = 1
	}
	bpc := opts.BlobsPerClient
	if bpc <= 0 {
		bpc = 1
	}
	env.VMBatch = opts.Batch
	env.VMShards = max(opts.Shards, 1)
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		return Result{}, err
	}
	backends := make([][]*core.VersioningBackend, spec.Clients)
	for w := 0; w < spec.Clients; w++ {
		backends[w] = make([]*core.VersioningBackend, bpc)
		for k := 0; k < bpc; k++ {
			be, err := svc.Backend(uint64(w*bpc+k+1), spec.FileSpan())
			if err != nil {
				return Result{}, err
			}
			backends[w][k] = be
		}
	}

	// Only the measured phase counts toward the control meters: blob
	// creation above charged them too.
	for i := 0; i < svc.VM.NumShards(); i++ {
		svc.VM.Shard(i).Meter().Reset()
	}

	start := time.Now()
	errs := make([]error, spec.Clients)
	var wg sync.WaitGroup
	for w := 0; w < spec.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			exts := spec.ExtentsFor(w)
			pipes := make([]*core.WritePipe, bpc)
			for k := range pipes {
				pipes[k] = backends[w][k].NewPipe(depth)
			}
			for it := 0; it < iters; it++ {
				buf := make([]byte, exts.TotalLength())
				for i := range buf {
					buf[i] = byte(w + 1)
				}
				vec, err := extent.NewVec(exts, buf)
				if err != nil {
					errs[w] = err
					return
				}
				if err := pipes[it%bpc].Submit(vec); err != nil {
					errs[w] = err
					return
				}
			}
			for _, pipe := range pipes {
				if _, err := pipe.Flush(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	res := Result{
		System:  Versioning,
		Clients: spec.Clients,
		Calls:   spec.Clients * iters,
		Bytes:   int64(spec.Clients) * int64(iters) * spec.BytesPerClient(),
		Elapsed: elapsed,
	}
	res.MBps = float64(res.Bytes) / (1 << 20) / elapsed.Seconds()
	// The control plane's own cost, in the simulation's currency: the
	// makespan of the busiest shard's metered service time. Wall time
	// conflates this with host CPU capacity (on a small machine the
	// clients' real compute dominates); the meters don't.
	for i := 0; i < svc.VM.NumShards(); i++ {
		if b := svc.VM.Shard(i).Meter().Stats().Busy; b > res.CtrlBusy {
			res.CtrlBusy = b
		}
	}
	return res, nil
}
