package bench

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func TestRunGCSmoke(t *testing.T) {
	spec := workload.OverlapSpec{Clients: 4, Regions: 8, RegionSize: 8 << 10, OverlapFraction: 0.75}
	res, err := RunGC(cluster.Default(), spec, GCOptions{Replicas: 2, Rounds: 4, KeepLast: 2, GCRate: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 || res.Reclaimed == 0 {
		t.Fatalf("drop schedule reclaimed nothing: %+v", res)
	}
	if res.DeletedBytes < res.ExpectedBytes || res.ExpectedBytes == 0 {
		t.Fatalf("reclaimed %d bytes, expected at least %d", res.DeletedBytes, res.ExpectedBytes)
	}
	// BytesAfter includes the storm phase's foreground writes, so it
	// can exceed BytesBefore; the reclamation claim is DeletedBytes vs
	// the independently computed exclusive set (checked above).
	if res.BaselineLatency <= 0 || res.StormLatency <= 0 {
		t.Fatalf("latency not measured: %+v", res)
	}
}
