// Package bench is the experiment harness: it builds each system under
// test with identical simulated hardware, drives the paper's workloads
// against it with concurrent clients, and reports aggregated
// throughput, lock wait time and atomicity-verification results. Every
// experiment in EXPERIMENTS.md is produced by one of the Run functions
// here (driven by cmd/benchall, cmd/atomicbench, cmd/mpitileio and the
// root bench_test.go).
package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/lockfs"
	"repro/internal/mpiio"
	"repro/internal/verify"
	"repro/internal/workload"
)

// SystemKind identifies one system under test.
type SystemKind int

// The systems compared in the paper's evaluation.
const (
	// Versioning is the paper's storage backend.
	Versioning SystemKind = iota
	// LockWholeFile is the Lustre baseline with whole-file locking
	// (Ross et al. 2005).
	LockWholeFile
	// LockBounding is the Lustre baseline with bounding-range locking
	// (the default POSIX-file-system scheme the paper describes).
	LockBounding
	// LockList is the Lustre baseline taking one extent lock per
	// region (ordered two-phase locking).
	LockList
	// LockConflictDetect is the Lustre baseline with the
	// conflict-detection protocol (Sehrish et al. 2009).
	LockConflictDetect
	// LockDataSieve is the Lustre baseline with ROMIO-style data
	// sieving: one read-modify-write of the bounding range under its
	// lock.
	LockDataSieve
	// PosixNoAtomic writes each region as an independent POSIX call:
	// fast but without MPI atomicity (the inconsistent strawman).
	PosixNoAtomic
)

// AllAtomicSystems lists every system that claims MPI atomicity, in
// report order.
func AllAtomicSystems() []SystemKind {
	return []SystemKind{Versioning, LockWholeFile, LockBounding, LockList, LockConflictDetect, LockDataSieve}
}

// String names the system for tables.
func (k SystemKind) String() string {
	switch k {
	case Versioning:
		return "versioning"
	case LockWholeFile:
		return "lock-wholefile"
	case LockBounding:
		return "lock-bounding"
	case LockList:
		return "lock-list"
	case LockConflictDetect:
		return "conflict-detect"
	case LockDataSieve:
		return "lock-datasieve"
	case PosixNoAtomic:
		return "posix-noatomic"
	default:
		return fmt.Sprintf("system(%d)", int(k))
	}
}

func (k SystemKind) strategy() (mpiio.Strategy, bool) {
	switch k {
	case LockWholeFile:
		return mpiio.StrategyWholeFile, true
	case LockBounding:
		return mpiio.StrategyBoundingRange, true
	case LockList:
		return mpiio.StrategyListLock, true
	case LockConflictDetect:
		return mpiio.StrategyConflictDetect, true
	case LockDataSieve:
		return mpiio.StrategyDataSieve, true
	case PosixNoAtomic:
		return mpiio.StrategyPOSIX, true
	default:
		return 0, false
	}
}

// System is one instantiated system under test.
type System struct {
	Kind   SystemKind
	Driver mpiio.Driver

	backend  *core.VersioningBackend // non-nil for Versioning
	lockFile *lockfs.File            // non-nil for lock systems
	detector *mpiio.Detector
}

// Build instantiates a system over the given environment, sized for a
// file spanning span bytes.
func Build(kind SystemKind, env cluster.Env, span int64) (*System, error) {
	if kind == Versioning {
		svc, err := cluster.NewVersioning(env)
		if err != nil {
			return nil, err
		}
		be, err := svc.Backend(1, span)
		if err != nil {
			return nil, err
		}
		return &System{Kind: kind, Driver: &mpiio.VersioningDriver{Backend: be}, backend: be}, nil
	}
	strategy, ok := kind.strategy()
	if !ok {
		return nil, fmt.Errorf("bench: unknown system %v", kind)
	}
	fs, err := cluster.NewLustre(env)
	if err != nil {
		return nil, err
	}
	f, err := fs.File("shared")
	if err != nil {
		return nil, err
	}
	det := mpiio.NewDetector(env.CtrlModel)
	// Conflict detection compares against every in-flight operation;
	// charge one control round trip per peer (the cost Sehrish et al.
	// acknowledge for non-conflicting workloads).
	det.ScanPerPeer = env.CtrlModel.PerOp
	return &System{
		Kind:     kind,
		Driver:   &mpiio.LockFSDriver{File: f, Strategy: strategy, Det: det},
		lockFile: f,
		detector: det,
	}, nil
}

// LockWait returns the cumulative lock wait time (zero for systems
// without locks).
func (s *System) LockWait() time.Duration {
	if s.lockFile == nil {
		return 0
	}
	return s.lockFile.Stats().LockStats.TotalWait
}

// Result is one measured experiment cell.
type Result struct {
	System    SystemKind
	Clients   int
	Calls     int           // total write calls issued
	Bytes     int64         // total payload bytes
	Elapsed   time.Duration // wall time for the whole run
	MBps      float64       // aggregated throughput
	LockWait  time.Duration // cumulative lock wait (locking systems)
	CtrlBusy  time.Duration // busiest control shard's metered service time (sharded runs)
	Conflicts int64         // detector conflicts (conflict-detect only)
	Verified  bool          // atomicity verification ran and passed
	VerifyErr error         // non-nil if verification failed
}

// OverlapOptions tunes RunOverlap.
type OverlapOptions struct {
	// Iterations is the number of write calls per client (default 1).
	Iterations int
	// Warmup runs the whole workload this many times untimed before
	// measuring, so heap growth and page faults do not pollute the
	// measured phase. Not compatible with Verify (warm-up writes carry
	// no verification stamps).
	Warmup int
	// Verify re-reads the final state and checks MPI atomicity
	// (serializability). Requires Clients*Iterations <= 255.
	Verify bool
}

// RunOverlap measures Experiment-1-style concurrent overlapped
// non-contiguous writes: every client issues atomic WriteList calls
// with the spec's extent pattern, all clients running concurrently.
func RunOverlap(kind SystemKind, env cluster.Env, spec workload.OverlapSpec, opts OverlapOptions) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 1
	}
	sys, err := Build(kind, env, spec.FileSpan())
	if err != nil {
		return Result{}, err
	}

	type callID struct{ client, iter int }
	ids := func(c callID) int { return c.client*iters + c.iter + 1 }
	var calls []verify.Call
	if opts.Verify {
		if spec.Clients*iters > 255 {
			return Result{}, fmt.Errorf("bench: verify needs clients*iterations <= 255, got %d", spec.Clients*iters)
		}
		for w := 0; w < spec.Clients; w++ {
			for it := 0; it < iters; it++ {
				calls = append(calls, verify.Call{ID: ids(callID{w, it}), Extents: spec.ExtentsFor(w)})
			}
		}
	}

	if opts.Warmup > 0 && opts.Verify {
		return Result{}, fmt.Errorf("bench: Warmup and Verify are mutually exclusive")
	}
	runAll := func(rounds int, stamped bool) error {
		errs := make([]error, spec.Clients)
		var wg sync.WaitGroup
		for w := 0; w < spec.Clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				exts := spec.ExtentsFor(w)
				for it := 0; it < rounds; it++ {
					var buf []byte
					if stamped {
						v, err := verify.MakeVec(verify.Call{ID: ids(callID{w, it}), Extents: exts})
						if err != nil {
							errs[w] = err
							return
						}
						buf = v.Buf
					} else {
						buf = make([]byte, exts.TotalLength())
						for i := range buf {
							buf[i] = byte(w + 1)
						}
					}
					vec, err := extent.NewVec(exts, buf)
					if err != nil {
						errs[w] = err
						return
					}
					if err := sys.Driver.WriteList(vec, true); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	for i := 0; i < opts.Warmup; i++ {
		if err := runAll(iters, false); err != nil {
			return Result{}, err
		}
	}
	warmWait := sys.LockWait()

	start := time.Now()
	if err := runAll(iters, opts.Verify); err != nil {
		return Result{}, err
	}
	elapsed := time.Since(start)

	res := Result{
		System:   kind,
		Clients:  spec.Clients,
		Calls:    spec.Clients * iters,
		Bytes:    int64(spec.Clients) * int64(iters) * spec.BytesPerClient(),
		Elapsed:  elapsed,
		LockWait: sys.LockWait() - warmWait,
	}
	res.MBps = float64(res.Bytes) / (1 << 20) / elapsed.Seconds()
	if sys.detector != nil {
		res.Conflicts = sys.detector.Stats().Conflicts
	}
	if opts.Verify {
		res.VerifyErr = verify.CheckCalls(readerFor(sys), calls)
		res.Verified = res.VerifyErr == nil
	}
	return res, nil
}

// readerFor adapts a system's driver to the verifier interface.
func readerFor(s *System) verify.Reader { return driverReader{s.Driver} }

type driverReader struct{ d mpiio.Driver }

func (r driverReader) ReadList(q extent.List, atomic bool) ([]byte, error) {
	return r.d.ReadList(q, atomic)
}
