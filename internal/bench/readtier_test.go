package bench

import (
	"testing"

	"repro/internal/cluster"
)

// TestRunReadTier smoke-tests E13 unmetered across the three stages:
// the flat rotation pays a substantial cross-domain fraction,
// zone-local selection drops it, and the cache on top serves the hot
// set from memory at a high hit rate without changing what the reads
// return.
func TestRunReadTier(t *testing.T) {
	base := ReadTierOptions{Replicas: 2, Domains: 4, Readers: 4, ReadsPerReader: 200, Seed: 42}

	run := func(mode ReadTierMode) ReadTierResult {
		t.Helper()
		opts := base
		opts.Mode = mode
		res, err := RunReadTier(cluster.Default(), opts)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		return res
	}

	flat := run(ReadFlat)
	local := run(ReadZoneLocal)
	cached := run(ReadZoneLocalCached)

	// The blind rotation at R=2 over 4 domains fetches roughly half its
	// bytes from outside the reader domain.
	if flat.CrossFraction < 0.3 {
		t.Fatalf("flat baseline cross-domain fraction %.3f implausibly low: %+v", flat.CrossFraction, flat.Locality)
	}
	if local.CrossFraction >= flat.CrossFraction {
		t.Fatalf("zone-local selection did not reduce the cross-domain fraction: flat %.3f, local %.3f",
			flat.CrossFraction, local.CrossFraction)
	}
	if cached.CrossFraction >= flat.CrossFraction {
		t.Fatalf("cached mode did not reduce the cross-domain fraction: flat %.3f, cached %.3f",
			flat.CrossFraction, cached.CrossFraction)
	}
	if flat.CacheOn || local.CacheOn {
		t.Fatalf("cache reported on in uncached modes")
	}
	if !cached.CacheOn {
		t.Fatal("cached mode reported no cache")
	}
	// A 90/10 skew over 64 chunks with 800 reads re-reads the hot set
	// constantly; the hit rate must reflect that.
	if hr := cached.Cache.HitRate(); hr < 0.5 {
		t.Fatalf("cache hit rate %.3f too low for a 90/10 skew: %+v", hr, cached.Cache)
	}
	if cached.Cache.Fills == 0 {
		t.Fatalf("cache never filled: %+v", cached.Cache)
	}
}

// TestRunReadTierValidation: locality needs a replica choice to make.
func TestRunReadTierValidation(t *testing.T) {
	if _, err := RunReadTier(cluster.Default(), ReadTierOptions{Replicas: 1}); err == nil {
		t.Fatal("RunReadTier accepted R=1")
	}
}
