package bench

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func TestRunReplicated(t *testing.T) {
	spec := workload.OverlapSpec{Clients: 4, Regions: 8, RegionSize: 8 << 10, OverlapFraction: 0.75}
	res, err := RunReplicated(cluster.Default(), spec, ReplicatedOptions{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicas != 2 || res.Clients != 4 {
		t.Fatalf("result header %+v", res)
	}
	if res.WriteMBps <= 0 || res.ReadMBps <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	// R=2 survives the mid-run kill: degraded reads succeed and repair
	// restores every degraded chunk.
	if res.DegradedErr != nil {
		t.Fatalf("degraded reads failed at R=2: %v", res.DegradedErr)
	}
	if res.DegradedMBps <= 0 {
		t.Fatalf("degraded throughput not measured: %+v", res)
	}
	if res.Repair.Degraded == 0 || res.Repair.Repaired != res.Repair.Degraded || res.Repair.Lost > 0 {
		t.Fatalf("repair stats %+v", res.Repair)
	}
}

func TestRunReplicatedR1LosesData(t *testing.T) {
	spec := workload.OverlapSpec{Clients: 4, Regions: 8, RegionSize: 8 << 10, OverlapFraction: 0.75}
	res, err := RunReplicated(cluster.Default(), spec, ReplicatedOptions{Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Unreplicated, losing a provider loses data: the degraded read
	// phase must fail rather than silently serve holes.
	if res.DegradedErr == nil {
		t.Fatal("R=1 degraded reads succeeded; the kill exercised nothing")
	}
	if res.Repair.Lost == 0 {
		t.Fatalf("R=1 repair found no lost chunks: %+v", res.Repair)
	}
}

func TestRunReplicatedValidation(t *testing.T) {
	if _, err := RunReplicated(cluster.Default(), workload.OverlapSpec{}, ReplicatedOptions{}); err == nil {
		t.Fatal("invalid spec must fail")
	}
	env := cluster.Default()
	env.Providers = 2
	spec := workload.OverlapSpec{Clients: 2, Regions: 2, RegionSize: 1 << 10, OverlapFraction: 0.5}
	if _, err := RunReplicated(env, spec, ReplicatedOptions{Replicas: 5}); err == nil {
		t.Fatal("R above provider count must fail")
	}
}
