package bench

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/provider"
	"repro/internal/remote"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

// LargeObjectCase is one cell of experiment E17: a data-plane
// transport × write-mode × store-backend combination, measured over a
// real TCP loopback deployment (one node hosting all three roles, one
// client process-side). Unlike the simulated experiments, E17 reports
// wall-clock MB/s — the point is the transport and the overlap, not
// the cost model.
type LargeObjectCase struct {
	// Framed selects the framed binary data plane (DialFramed); false
	// runs chunks through the gob RPC codec like any control call.
	Framed bool
	// Pipelined streams the write: chunk upload overlaps the segment
	// tree build, bounded by the in-flight window. False buffers the
	// classic way — all chunks stored, then the tree built.
	Pipelined bool
	// StoreURL selects the provider chunk backend (mem://,
	// disk:///path, null://).
	StoreURL string
}

// Name renders the case as "framed+streamed/disk" for tables.
func (c LargeObjectCase) Name() string {
	return c.Transport() + "+" + c.Mode() + "/" + c.Backend()
}

// Transport names the data-plane wire format of the case.
func (c LargeObjectCase) Transport() string {
	if c.Framed {
		return "framed"
	}
	return "gob"
}

// Mode names the write mode of the case.
func (c LargeObjectCase) Mode() string {
	if c.Pipelined {
		return "streamed"
	}
	return "buffered"
}

// Backend names the chunk store scheme of the case.
func (c LargeObjectCase) Backend() string {
	if i := strings.Index(c.StoreURL, "://"); i >= 0 {
		return strings.TrimPrefix(c.StoreURL[:i], "fault+")
	}
	return c.StoreURL
}

// LargeObjectOptions tunes RunLargeObject.
type LargeObjectOptions struct {
	// Size is the object size in bytes (default 256 MiB).
	Size int64
	// ChunkSize is the stripe unit (default 1 MiB).
	ChunkSize int64
	// Providers is the data-pool size behind the node (default 8).
	Providers int
	// Window bounds the pipelined mode's in-flight chunk uploads
	// (ignored when buffering). The default is 64 — large-object
	// uploads want a deeper pipe than blob.DefaultWindow's
	// general-purpose 8, and at the default 1 MiB chunks that still
	// bounds write-side buffering to 64 MiB.
	Window int
	// Rounds runs the measured write/read cycle that many times and
	// keeps the best of each (default 3): one-shot wall-clock numbers
	// on a shared host are GC- and scheduler-noisy, and E17's product
	// is a ratio between cells.
	Rounds int
}

// LargeObjectResult is one measured E17 cell.
type LargeObjectResult struct {
	Case         LargeObjectCase
	Size         int64
	WriteElapsed time.Duration
	ReadElapsed  time.Duration
	WriteMBps    float64
	ReadMBps     float64
}

// RunLargeObject measures experiment E17: one client writes a large
// object through a live TCP node and reads the published version back,
// end to end — ticket, chunk upload, tree build, publish, then the
// read fan-in. Payload fidelity is verified on every backend that
// keeps bytes (null:// discards them by design, so only the sizes are
// checked there).
func RunLargeObject(c LargeObjectCase, opts LargeObjectOptions) (LargeObjectResult, error) {
	if opts.Size <= 0 {
		opts.Size = 256 << 20
	}
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = 1 << 20
	}
	if opts.Providers <= 0 {
		opts.Providers = 8
	}
	if opts.Window <= 0 {
		opts.Window = 64
	}
	if opts.Rounds <= 0 {
		opts.Rounds = 3
	}
	if c.StoreURL == "" {
		c.StoreURL = "mem://"
	}
	res := LargeObjectResult{Case: c, Size: opts.Size}

	pool, _, err := provider.NewURLPoolInDomains(c.StoreURL, opts.Providers, 0, iosim.CostModel{}, false)
	if err != nil {
		return res, err
	}
	node, err := remote.Listen("127.0.0.1:0", remote.Roles{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(8, iosim.CostModel{}),
		Data: provider.NewRouter(pool),
	})
	if err != nil {
		return res, err
	}
	defer node.Close()
	ep := remote.Endpoints{VM: node.Addr(), Meta: node.Addr(), Data: node.Addr()}
	var client *remote.Client
	if c.Framed {
		client, err = remote.DialFramed(ep)
	} else {
		client, err = remote.Dial(ep)
	}
	if err != nil {
		return res, err
	}
	defer client.Close()

	geo := segtree.Geometry{Capacity: cluster.CapacityFor(opts.Size, opts.ChunkSize), Page: opts.ChunkSize}
	b, err := blob.Create(client.Services(), 1, geo)
	if err != nil {
		return res, err
	}

	// A repeating 4 KiB stamp: cheap to fill, position-dependent enough
	// that swapped or torn chunks cannot verify.
	data := make([]byte, opts.Size)
	stamp := make([]byte, 4096)
	for i := range stamp {
		stamp[i] = byte(i*7 + 13)
	}
	for off := 0; off < len(data); off += len(stamp) {
		copy(data[off:], stamp)
	}

	// Each round writes a fresh version of the same object (chunk keys
	// carry the version, so rounds never collide) and reads it back;
	// the best round of each direction is reported. The explicit GC
	// between timed sections keeps one cell's garbage from being
	// collected on another cell's clock — E17's product is the ratio
	// between cells, so leveling the debt matters more than realism.
	for round := 0; round < opts.Rounds; round++ {
		runtime.GC()
		start := time.Now()
		v, err := b.Write(0, data, blob.WriteOptions{Pipelined: c.Pipelined, Window: opts.Window})
		if err != nil {
			return res, fmt.Errorf("bench: %s write: %w", c.Name(), err)
		}
		wElapsed := time.Since(start)

		runtime.GC()
		start = time.Now()
		got, err := b.ReadAt(v, 0, opts.Size)
		if err != nil {
			return res, fmt.Errorf("bench: %s read: %w", c.Name(), err)
		}
		rElapsed := time.Since(start)
		if int64(len(got)) != opts.Size {
			return res, fmt.Errorf("bench: %s read %d bytes, want %d", c.Name(), len(got), opts.Size)
		}
		if c.Backend() != "null" && !bytes.Equal(got, data) {
			return res, fmt.Errorf("bench: %s payload mismatch after round trip", c.Name())
		}
		if round == 0 || wElapsed < res.WriteElapsed {
			res.WriteElapsed = wElapsed
		}
		if round == 0 || rElapsed < res.ReadElapsed {
			res.ReadElapsed = rElapsed
		}
	}

	mb := float64(opts.Size) / (1 << 20)
	if s := res.WriteElapsed.Seconds(); s > 0 {
		res.WriteMBps = mb / s
	}
	if s := res.ReadElapsed.Seconds(); s > 0 {
		res.ReadMBps = mb / s
	}
	return res, nil
}
