package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/workload"
)

// CheckpointOptions tunes RunCheckpointBlaster.
type CheckpointOptions struct {
	// Replicas is the replication degree R (default 2).
	Replicas int
	// Epochs is how many checkpoint epochs every rank writes
	// (default 6).
	Epochs int
	// KeepLast is the retention window: the reaper reclaims every
	// epoch older than the newest KeepLast (default 2).
	KeepLast int
	// Readers is how many concurrent restore readers page old epochs
	// back in while the blaster writes (default 2).
	Readers int
	// PipeDepth is each rank's write-pipe depth (default 2).
	PipeDepth int
	// Kill, when set, store-kills one provider halfway through the
	// run; the self-heal loop must absorb it with zero failed writes
	// or reads.
	Kill bool
	// Seed feeds the readers' version picks (default 14).
	Seed int64
}

// StageLatency is one pipeline stage's latency distribution, read out
// of the deployment's metrics registry.
type StageLatency struct {
	Stage         string
	Count         uint64
	P50, P95, P99 time.Duration
}

// CheckpointResult is one measured checkpoint-blaster run.
type CheckpointResult struct {
	Ranks, Epochs int
	Replicas      int
	WrittenBytes  int64
	Restores      int   // old-epoch restore reads completed
	Repaired      int64 // chunks re-replicated by the self-heal loop
	Reclaimed     int64 // versions reclaimed by the reaper
	Elapsed       time.Duration
	WriteMBps     float64
	// Stages are the per-stage latency histograms of the write and
	// read paths, in pipeline order.
	Stages []StageLatency
	// Metrics is the final flattened registry snapshot.
	Metrics map[string]float64
}

// stageHistograms names the per-stage latency histograms E14 reports,
// in pipeline order: control path (ticket, commit, publish), data path
// (pipe write, chunk put, chunk get), background loops (repair, reap).
var stageHistograms = []struct{ stage, name string }{
	{"ticket", "bs_vm_ticket_seconds"},
	{"commit", "bs_vm_commit_seconds"},
	{"publish", "bs_vm_publish_seconds"},
	{"pipe write", "bs_pipe_write_seconds"},
	{"chunk put", "bs_chunk_put_seconds"},
	{"chunk get", "bs_chunk_get_seconds"},
	{"repair", "bs_repair_seconds"},
	{"reap pass", "bs_reap_pass_seconds"},
}

// RunCheckpointBlaster measures experiment E14: Ranks processes
// checkpoint the strided N-1 pattern epoch after epoch through write
// pipes, while restore readers pin and page old epochs back in, the
// retention policy feeds the reaper a steady diet of expired epochs,
// and (with Kill) a provider dies mid-run for the self-heal loop to
// absorb. Every write and every read must succeed; the result reports
// the per-stage latency histograms the metrics registry recorded —
// the observability the layer exists for.
func RunCheckpointBlaster(env cluster.Env, spec workload.CheckpointSpec, opts CheckpointOptions) (CheckpointResult, error) {
	if err := spec.Validate(); err != nil {
		return CheckpointResult{}, err
	}
	if opts.Replicas < 1 {
		opts.Replicas = 2
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 6
	}
	if opts.KeepLast <= 0 {
		opts.KeepLast = 2
	}
	if opts.Readers < 0 {
		opts.Readers = 0
	} else if opts.Readers == 0 {
		opts.Readers = 2
	}
	if opts.PipeDepth <= 0 {
		opts.PipeDepth = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 14
	}
	env.Replicas = opts.Replicas
	env.SelfHeal = true
	env.FaultInjection = opts.Kill
	env.GC = true
	env.RetainLast = opts.KeepLast
	env.GCQueue = 4096
	env.RepairQueue = 4096
	env.ReadCache = true
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		return CheckpointResult{}, err
	}
	be, err := svc.Backend(1, spec.FileSpan())
	if err != nil {
		return CheckpointResult{}, err
	}
	res := CheckpointResult{Ranks: spec.Ranks, Epochs: opts.Epochs, Replicas: opts.Replicas}

	// Background driver: the healer and reaper tick concurrently with
	// the blaster, exactly as the daemon runs them.
	stop := make(chan struct{})
	var driver sync.WaitGroup
	driver.Add(1)
	go func() {
		defer driver.Done()
		ticker := time.NewTicker(time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				svc.Healer.Tick()
				svc.Reaper.Tick()
			}
		}
	}()
	fail := func(err error) (CheckpointResult, error) {
		close(stop)
		driver.Wait()
		return res, err
	}

	// Restore readers: each repeatedly pins a retained version, pages
	// its strided extents back in, verifies the constant-byte segment
	// stamp, and unpins. A version raced away by retention between
	// listing and pinning is skipped, never failed.
	var restores sync.WaitGroup
	readersStop := make(chan struct{})
	readErrs := make([]error, opts.Readers)
	var restoreCount int64
	var restoreMu sync.Mutex
	for i := 0; i < opts.Readers; i++ {
		restores.Add(1)
		go func(i int) {
			defer restores.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(i)))
			b := be.Blob()
			for {
				select {
				case <-readersStop:
					return
				default:
				}
				vs, err := b.Versions()
				if err != nil {
					readErrs[i] = err
					return
				}
				if len(vs) == 0 {
					continue
				}
				v := vs[rng.Intn(len(vs))]
				if v == 0 {
					continue // the empty initial snapshot has nothing to restore
				}
				if err := b.Pin(v); err != nil {
					continue // retention raced the pick; pick again
				}
				rank := rng.Intn(spec.Ranks)
				got, err := be.ReadListAt(core.Version(v), spec.ExtentsFor(rank))
				b.Unpin(v)
				if err != nil {
					readErrs[i] = fmt.Errorf("bench: restore of v%d rank %d: %w", v, rank, err)
					return
				}
				seg := spec.SegmentSize
				for s := 0; s < spec.Segments; s++ {
					first := got[int64(s)*seg]
					for _, x := range got[int64(s)*seg : int64(s+1)*seg] {
						if x != first {
							readErrs[i] = fmt.Errorf("bench: restore of v%d rank %d: torn segment %d", v, rank, s)
							return
						}
					}
				}
				restoreMu.Lock()
				restoreCount++
				restoreMu.Unlock()
			}
		}(i)
	}

	// The blaster: every epoch, all ranks submit their strided
	// checkpoint through per-rank pipes and flush. The payload byte
	// encodes (rank, epoch), so a torn segment is detectable.
	pipes := make([]*core.WritePipe, spec.Ranks)
	for r := range pipes {
		pipes[r] = be.NewPipe(opts.PipeDepth)
	}
	start := time.Now()
	for epoch := 1; epoch <= opts.Epochs; epoch++ {
		if opts.Kill && epoch == opts.Epochs/2+1 {
			// Store-level kill: the health monitor must find out from
			// errors alone, and the quorum write path must ride it out.
			svc.Faults[0].SetDown(true)
		}
		errs := make([]error, spec.Ranks)
		var wg sync.WaitGroup
		for r := 0; r < spec.Ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				exts := spec.ExtentsFor(r)
				buf := make([]byte, exts.TotalLength())
				stamp := byte(1 + (r*opts.Epochs+epoch)%250)
				for i := range buf {
					buf[i] = stamp
				}
				vec, err := extent.NewVec(exts, buf)
				if err == nil {
					if err = pipes[r].Submit(vec); err == nil {
						_, err = pipes[r].Flush()
					}
				}
				errs[r] = err
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				close(readersStop)
				restores.Wait()
				return fail(fmt.Errorf("bench: epoch %d rank %d write failed: %w", epoch, r, err))
			}
		}
		res.WrittenBytes += spec.BytesPerRank() * int64(spec.Ranks)
	}
	res.Elapsed = time.Since(start)
	close(readersStop)
	restores.Wait()
	for _, err := range readErrs {
		if err != nil {
			return fail(err)
		}
	}
	close(stop)
	driver.Wait()
	res.Restores = int(restoreCount)
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.WriteMBps = float64(res.WrittenBytes) / (1 << 20) / secs
	}

	// Converge: drain the retention backlog first — dropped versions
	// are no longer published, so the healer will not scrub their
	// chunks, and until the reaper deletes them they sit in placement
	// looking degraded. Then a synchronous scrub pass restores full
	// replication of everything retained.
	for t := 0; t < 5000; t++ {
		info, err := be.Blob().GCInfo()
		if err != nil {
			return res, err
		}
		if len(info.Pending) == 0 {
			break
		}
		svc.Reaper.Tick()
	}
	if opts.Kill {
		svc.Healer.Pass()
		if n := svc.Router.UnderReplicated(); n != 0 {
			return res, fmt.Errorf("bench: %d chunks still under-replicated after heal", n)
		}
	}
	res.Repaired = svc.Healer.Stats().Repaired
	res.Reclaimed = svc.Reaper.Stats().Reclaimed

	// Read the per-stage histograms out of the registry — the same
	// series bsctl metrics exposes from a live daemon.
	for _, sh := range stageHistograms {
		snap := svc.Metrics.Histogram(sh.name, nil).Snapshot()
		res.Stages = append(res.Stages, StageLatency{
			Stage: sh.stage,
			Count: snap.Count,
			P50:   time.Duration(snap.Quantile(0.50) * float64(time.Second)),
			P95:   time.Duration(snap.Quantile(0.95) * float64(time.Second)),
			P99:   time.Duration(snap.Quantile(0.99) * float64(time.Second)),
		})
	}
	res.Metrics = svc.Metrics.Snapshot()
	return res, nil
}
