package bench

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// TestRunCoded smoke-tests E18 unmetered: both placement modes survive
// a whole-domain kill with zero loss, and the storage columns land at
// their analytic values — (k+m)/k for rs-4+2, R for the replicated
// control. The gap between those two numbers is the experiment.
func TestRunCoded(t *testing.T) {
	e := cluster.Default()
	e.Providers = 12
	spec := workload.OverlapSpec{Clients: 4, Regions: 4, RegionSize: 64 << 10, OverlapFraction: 0.5}

	coded, err := RunCoded(e, spec, CodedOptions{Coding: "rs-4+2", Domains: 6})
	if err != nil {
		t.Fatalf("coded: %v", err)
	}
	if coded.Lost != 0 {
		t.Fatalf("coded placement lost data to a single-domain kill: %+v", coded)
	}
	if coded.StorageX > 1.6 || coded.StorageX < 1.4 {
		t.Fatalf("rs-4+2 storage overhead %.2fx, want ~1.5x", coded.StorageX)
	}
	if coded.Repair.Failed > 0 || coded.Repair.Lost > 0 {
		t.Fatalf("coded repair after domain kill: %+v", coded.Repair)
	}

	repl, err := RunCoded(e, spec, CodedOptions{Replicas: 3, Domains: 6})
	if err != nil {
		t.Fatalf("replicated control: %v", err)
	}
	if repl.Lost != 0 {
		t.Fatalf("replicated control lost data: %+v", repl)
	}
	if repl.StorageX < 2.9 {
		t.Fatalf("R=3 storage overhead %.2fx, want ~3x", repl.StorageX)
	}
}

// TestRunCodedValidation: a bad coding spec and a replica-less control
// must both fail typed, before any cluster is built.
func TestRunCodedValidation(t *testing.T) {
	spec := workload.OverlapSpec{Clients: 2, Regions: 4, RegionSize: 4 << 10, OverlapFraction: 0.5}
	if _, err := RunCoded(cluster.Default(), spec, CodedOptions{Coding: "rs-0+2"}); err == nil {
		t.Fatal("RunCoded accepted rs-0+2")
	}
	if _, err := RunCoded(cluster.Default(), spec, CodedOptions{Replicas: 1}); err == nil {
		t.Fatal("RunCoded accepted a replicated control at R=1")
	}
}
