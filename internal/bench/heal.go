package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/mpiio"
	"repro/internal/provider"
	"repro/internal/workload"
)

// SelfHealOptions tunes RunSelfHeal.
type SelfHealOptions struct {
	// Replicas is the replication degree R (>= 2).
	Replicas int
	// ReadRepair runs a degraded read phase after the kill, so
	// failover reads pre-feed the repair queue with the hot working
	// set before the scrubber discovers anything.
	ReadRepair bool
	// ScrubRate / RepairRate bound healer work per tick (defaults 16/4
	// — deliberately modest so discovery, not repair, is the visible
	// bottleneck the read-repair mode removes).
	ScrubRate, RepairRate int
	// MaxTicks bounds the healing loop (default 2000).
	MaxTicks int
}

// SelfHealResult is one measured self-healing cell: how long after a
// provider loss the system takes to notice (detect) and to restore
// full replication (heal), in healer ticks and metered wall time.
type SelfHealResult struct {
	Replicas    int
	Clients     int
	ReadRepair  bool
	Chunks      int   // chunks the placement map tracks
	Degraded    int   // under-replicated chunks right after the kill
	Prefed      int64 // chunks enqueued by read-repair before healing began
	DetectTicks int   // ticks until the victim was marked down (0 = before tick 1)
	HealTicks   int   // ticks until full replication was restored
	HealElapsed time.Duration
	Stats       core.HealerStats
}

// RunSelfHeal measures experiment E10: N clients write an overlapped
// workload at replication degree R, one provider's store dies, and the
// self-healing loop — error-driven detection, scrubber, rate-limited
// repair, optional read-repair — restores full replication with no
// operator action. The with/without-ReadRepair comparison isolates
// what the read path's degraded-chunk feed is worth: detection happens
// on the first failed read instead of the first scrub probe, and the
// hot working set enters the repair queue immediately instead of
// waiting for the scrub cursor to reach it.
func RunSelfHeal(env cluster.Env, spec workload.OverlapSpec, opts SelfHealOptions) (SelfHealResult, error) {
	if err := spec.Validate(); err != nil {
		return SelfHealResult{}, err
	}
	if opts.Replicas < 2 {
		return SelfHealResult{}, fmt.Errorf("bench: self-heal needs R >= 2, got %d", opts.Replicas)
	}
	if opts.ScrubRate <= 0 {
		opts.ScrubRate = 16
	}
	if opts.RepairRate <= 0 {
		opts.RepairRate = 4
	}
	if opts.MaxTicks <= 0 {
		opts.MaxTicks = 2000
	}
	env.Replicas = opts.Replicas
	env.SelfHeal = true
	env.FaultInjection = true
	env.FailThreshold = 2
	env.ScrubRate = opts.ScrubRate
	env.RepairRate = opts.RepairRate
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		return SelfHealResult{}, err
	}
	be, err := svc.Backend(1, spec.FileSpan())
	if err != nil {
		return SelfHealResult{}, err
	}
	d := &mpiio.VersioningDriver{Backend: be}
	res := SelfHealResult{Replicas: opts.Replicas, Clients: spec.Clients, ReadRepair: opts.ReadRepair}

	// Virtual clock for probation timing: one tick = one second.
	var vsec atomic.Int64
	svc.Health.SetClock(func() time.Time { return time.Unix(vsec.Load(), 0) })

	// Write phase: the replicated workload.
	errs := make([]error, spec.Clients)
	var wg sync.WaitGroup
	for w := 0; w < spec.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			exts := spec.ExtentsFor(w)
			buf := make([]byte, exts.TotalLength())
			for i := range buf {
				buf[i] = byte(w + 1)
			}
			vec, err := extent.NewVec(exts, buf)
			if err == nil {
				err = d.WriteList(vec, true)
			}
			errs[w] = err
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}

	// Kill provider 0's STORE — flags stay live, so the system must
	// notice from errors.
	const victim = provider.ID(0)
	svc.Faults[victim].SetDown(true)
	keys := svc.Router.Keys()
	res.Chunks = len(keys)
	// Count degraded chunks from placement records alone — probing the
	// stores here would feed the health monitor and contaminate the
	// detection measurement.
	for _, key := range keys {
		ids, _ := svc.Router.Locate(key)
		for _, id := range ids {
			if id == victim {
				res.Degraded++
				break
			}
		}
	}

	if opts.ReadRepair {
		// Degraded read phase: every client reads the file once;
		// failovers report the exact chunks that lost a copy.
		span := spec.FileSpan()
		var wg sync.WaitGroup
		for w := 0; w < spec.Clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if _, err := d.ReadList(extent.List{{Offset: 0, Length: span}}, true); err != nil {
					errs[w] = err
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return res, fmt.Errorf("bench: degraded read phase: %w", err)
			}
		}
	}
	res.Prefed = svc.Healer.Stats().Enqueued

	// Healing loop: tick until full replication, counting virtual time.
	// DetectTicks 0 means the read phase's error stream already tripped
	// the detector before the first healer tick.
	detect := -1
	if svc.Health.State(victim) == provider.Down {
		detect = 0
	}
	start := time.Now()
	for t := 1; t <= opts.MaxTicks; t++ {
		vsec.Add(1)
		svc.Healer.Tick()
		if detect < 0 && svc.Health.State(victim) == provider.Down {
			detect = t
		}
		if svc.Healer.QueueLen() == 0 && svc.Router.UnderReplicated() == 0 {
			res.HealTicks = t
			break
		}
	}
	res.HealElapsed = time.Since(start)
	res.DetectTicks = detect
	res.Stats = svc.Healer.Stats()
	if res.HealTicks == 0 {
		return res, fmt.Errorf("bench: self-heal did not converge in %d ticks: %+v", opts.MaxTicks, res.Stats)
	}
	// Durability check: every published version must read back.
	if _, err := be.Scrub(); err != nil {
		return res, fmt.Errorf("bench: scrub after self-heal: %w", err)
	}
	return res, nil
}
