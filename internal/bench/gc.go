package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chunk"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/workload"
)

// GCOptions tunes RunGC.
type GCOptions struct {
	// Replicas is the replication degree R (>= 1).
	Replicas int
	// Rounds is how many overlapped write rounds each client performs
	// before retention runs (default 6): every round publishes one
	// version per client.
	Rounds int
	// KeepLast is the retention policy applied after the write phase
	// (default 2).
	KeepLast int
	// GCRate caps chunk deletions per reaper tick (default 4) — the
	// knob whose foreground-latency impact E11 measures.
	GCRate int
	// MaxTicks bounds the reclamation loop (default 5000).
	MaxTicks int
}

// GCResult is one measured space-reclamation cell.
type GCResult struct {
	Clients, Replicas int
	Versions          int   // versions published before retention
	Dropped           int   // versions dropped by the retention policy
	Reclaimed         int64 // versions marked reclaimed
	ExpectedBytes     int64 // exclusive bytes the drop schedule should free (R copies)
	DeletedBytes      int64 // bytes the reaper actually freed
	BytesBefore       int64 // pool bytes before retention
	BytesAfter        int64 // pool bytes after reclamation
	GCTicks           int64 // reaper ticks to drain the drop schedule
	GCElapsed         time.Duration
	ReclaimMBps       float64
	BaselineLatency   time.Duration // foreground write latency, quiet system
	StormLatency      time.Duration // foreground write latency under the GC storm
	Impact            float64       // StormLatency / BaselineLatency
	Stats             core.ReaperStats
}

// RunGC measures experiment E11: N clients publish an overlapped
// version history at replication degree R, the retention policy drops
// everything but the newest KeepLast versions, and the rate-limited
// reaper reclaims the dropped versions' exclusive chunks from every
// replica. Reported: how many bytes come back (against the
// independently computed exclusive set of the drop schedule), how fast
// reclamation proceeds at the configured delete rate, and what the GC
// storm costs concurrent foreground writes (the analogous guard to
// E10's repair-storm bound).
func RunGC(env cluster.Env, spec workload.OverlapSpec, opts GCOptions) (GCResult, error) {
	if err := spec.Validate(); err != nil {
		return GCResult{}, err
	}
	if opts.Replicas < 1 {
		opts.Replicas = 1
	}
	if opts.Rounds <= 0 {
		opts.Rounds = 6
	}
	if opts.KeepLast <= 0 {
		opts.KeepLast = 2
	}
	if opts.GCRate <= 0 {
		opts.GCRate = 4
	}
	if opts.MaxTicks <= 0 {
		opts.MaxTicks = 5000
	}
	env.Replicas = opts.Replicas
	env.GC = true
	env.GCRate = opts.GCRate
	// The bench drains the whole drop schedule; size the queue to it
	// so progress is delete-rate-limited, not queue-retry-limited.
	env.GCQueue = 4096
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		return GCResult{}, err
	}
	be, err := svc.Backend(1, spec.FileSpan())
	if err != nil {
		return GCResult{}, err
	}
	res := GCResult{Clients: spec.Clients, Replicas: opts.Replicas}

	// writeRound publishes one version per client and returns the mean
	// per-call latency.
	writeRound := func() (time.Duration, error) {
		start := time.Now()
		errs := make([]error, spec.Clients)
		var wg sync.WaitGroup
		for w := 0; w < spec.Clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				exts := spec.ExtentsFor(w)
				buf := make([]byte, exts.TotalLength())
				for i := range buf {
					buf[i] = byte(w + 1)
				}
				vec, err := extent.NewVec(exts, buf)
				if err == nil {
					_, err = be.WriteList(vec)
				}
				errs[w] = err
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(spec.Clients), nil
	}

	// Write phase: build the version history, measuring quiet-system
	// latency over the later rounds.
	var quiet time.Duration
	measured := 0
	for r := 0; r < opts.Rounds; r++ {
		lat, err := writeRound()
		if err != nil {
			return res, err
		}
		if r >= opts.Rounds/2 {
			quiet += lat
			measured++
		}
	}
	res.BaselineLatency = quiet / time.Duration(measured)
	latest, err := be.Latest()
	if err != nil {
		return res, err
	}
	res.Versions = int(latest)
	res.BytesBefore = poolBytes(svc)

	// Retention: drop everything but the newest KeepLast versions, and
	// compute the expected reclaim independently of the reaper — the
	// union of the dropped versions' exclusive chunks, at R copies.
	b := be.Blob()
	dropped, err := b.Retain(opts.KeepLast)
	if err != nil {
		return res, err
	}
	res.Dropped = len(dropped)
	expect := make(map[chunk.Key]bool)
	for _, v := range dropped {
		keys, err := b.ExclusiveChunks(v)
		if err != nil {
			return res, err
		}
		for _, k := range keys {
			expect[k] = true
		}
	}
	for key := range expect {
		if ids, ok := svc.Router.Locate(key); ok && len(ids) > 0 {
			if size, err := chunkLen(svc, key); err == nil {
				res.ExpectedBytes += size * int64(len(ids))
			}
		}
	}

	// GC storm: the reaper drains the drop schedule at GCRate deletes
	// per tick while foreground writes continue; the latency ratio is
	// the starvation guard.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				svc.Reaper.Tick()
			}
		}
	}()
	var storm time.Duration
	stormRounds := 4
	start := time.Now()
	for r := 0; r < stormRounds; r++ {
		lat, err := writeRound()
		if err != nil {
			close(stop)
			wg.Wait()
			return res, err
		}
		storm += lat
	}
	res.StormLatency = storm / time.Duration(stormRounds)
	res.Impact = Ratio(float64(res.StormLatency), float64(res.BaselineLatency))
	close(stop)
	wg.Wait()

	// Drive the reaper synchronously until the drop schedule drains —
	// on the metered model each tick pays real (virtual) metadata and
	// store time, so the reclamation rate reflects the configured
	// delete budget, not wall-clock ticker cadence.
	for t := 0; t < opts.MaxTicks; t++ {
		info, err := b.GCInfo()
		if err != nil {
			return res, err
		}
		if len(info.Pending) == 0 {
			break
		}
		svc.Reaper.Tick()
	}
	res.GCElapsed = time.Since(start)
	res.Stats = svc.Reaper.Stats()
	res.GCTicks = res.Stats.Ticks
	res.Reclaimed = res.Stats.Reclaimed
	res.DeletedBytes = res.Stats.DeletedBytes
	res.BytesAfter = poolBytes(svc)
	if secs := res.GCElapsed.Seconds(); secs > 0 {
		res.ReclaimMBps = float64(res.DeletedBytes) / (1 << 20) / secs
	}
	if res.DeletedBytes < res.ExpectedBytes {
		return res, fmt.Errorf("bench: reclaimed %d bytes < expected %d for the drop schedule (stats %+v)",
			res.DeletedBytes, res.ExpectedBytes, res.Stats)
	}
	// Durability: every retained version still scrubs clean.
	if _, err := be.Scrub(); err != nil {
		return res, fmt.Errorf("bench: scrub after GC: %w", err)
	}
	return res, nil
}

func poolBytes(svc *cluster.Versioning) int64 {
	var total int64
	for _, u := range svc.Router.Usage() {
		total += u.Bytes
	}
	return total
}

// chunkLen probes the pool for any replica of the chunk and returns
// its size.
func chunkLen(svc *cluster.Versioning, key chunk.Key) (int64, error) {
	for _, p := range svc.Providers.Providers() {
		if size, err := p.Store().Len(key); err == nil {
			return size, nil
		}
	}
	return 0, fmt.Errorf("bench: no replica of %s", key)
}
