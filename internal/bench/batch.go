package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/extent"
	"repro/internal/vmanager"
	"repro/internal/workload"
)

// SmallWriteOptions tunes RunSmallWrites, the overlapped-small-write
// scenario that exercises the version manager's group-commit pipeline:
// many clients issue trains of small atomic WriteList calls through
// write pipes, so the per-call control round trips (ticket grant,
// publish) dominate unless the manager amortizes them into groups.
type SmallWriteOptions struct {
	// Iterations is the number of write calls per client (default 1).
	Iterations int
	// Batch is the version manager's group-commit configuration; the
	// zero value measures today's one-round-trip-per-call behavior.
	Batch vmanager.BatchConfig
	// PipeDepth is each client's async write-pipe depth; values <= 1
	// submit synchronously.
	PipeDepth int
}

// RunSmallWrites measures aggregated throughput of concurrent
// overlapped small writes against the versioning backend under the
// given group-commit configuration. Comparing Batch.MaxBatch = 1
// against larger groups isolates the group-commit win on the metered
// cost model.
func RunSmallWrites(env cluster.Env, spec workload.OverlapSpec, opts SmallWriteOptions) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 1
	}
	depth := opts.PipeDepth
	if depth <= 1 {
		depth = 1
	}
	env.VMBatch = opts.Batch
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		return Result{}, err
	}
	be, err := svc.Backend(1, spec.FileSpan())
	if err != nil {
		return Result{}, err
	}

	start := time.Now()
	errs := make([]error, spec.Clients)
	var wg sync.WaitGroup
	for w := 0; w < spec.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			exts := spec.ExtentsFor(w)
			pipe := be.NewPipe(depth)
			for it := 0; it < iters; it++ {
				buf := make([]byte, exts.TotalLength())
				for i := range buf {
					buf[i] = byte(w + 1)
				}
				vec, err := extent.NewVec(exts, buf)
				if err != nil {
					errs[w] = err
					return
				}
				if err := pipe.Submit(vec); err != nil {
					errs[w] = err
					return
				}
			}
			if _, err := pipe.Flush(); err != nil {
				errs[w] = err
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	res := Result{
		System:  Versioning,
		Clients: spec.Clients,
		Calls:   spec.Clients * iters,
		Bytes:   int64(spec.Clients) * int64(iters) * spec.BytesPerClient(),
		Elapsed: elapsed,
	}
	res.MBps = float64(res.Bytes) / (1 << 20) / elapsed.Seconds()
	return res, nil
}

// BatchLabel names a group-commit configuration for tables.
func BatchLabel(cfg vmanager.BatchConfig) string {
	if cfg.MaxBatch <= 1 {
		return "batch=1"
	}
	return fmt.Sprintf("batch=%d", cfg.MaxBatch)
}
