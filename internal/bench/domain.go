package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/mpiio"
	"repro/internal/provider"
	"repro/internal/workload"
)

// DomainLossOptions tunes RunDomainLoss.
type DomainLossOptions struct {
	// Replicas is the replication degree R (>= 2).
	Replicas int
	// Domains is the failure-domain count the pool is split into (and
	// the loss unit: the whole first domain dies). Default 4.
	Domains int
	// Spread places replicas domain-aware (cluster.Env.Domains); false
	// is the flat control — same pool, same kill, placement blind to
	// the domain boundaries.
	Spread bool
	// ScrubRate / RepairRate bound healer work per tick (defaults 16/4,
	// matching E10 so repair-time cells are comparable).
	ScrubRate, RepairRate int
	// MaxTicks bounds the healing loop (default 2000).
	MaxTicks int
}

// DomainLossResult is one measured correlated-loss cell: how much
// published data survives the loss of one whole failure domain, and —
// when everything survives — how long the self-healing loop takes to
// restore full replication and full domain spread.
type DomainLossResult struct {
	Replicas int
	Domains  int
	Spread   bool
	Chunks   int // chunks the placement map tracks
	Killed   int // providers lost (the whole first domain)
	Degraded int // chunks that lost at least one copy
	Lost     int // chunks that lost EVERY copy (data loss)
	// SurvivedPct is the fraction of chunks with at least one
	// surviving copy — the durability headline.
	SurvivedPct float64
	DetectTicks int // ticks until every victim was marked down (-1: not healed)
	HealTicks   int // ticks until full count AND spread were restored (-1: data lost, unhealable)
	HealElapsed time.Duration
	SpreadFound int64 // spread violations the scrubber repaired along the way
	Stats       core.HealerStats
}

// RunDomainLoss measures experiment E12: N clients write an overlapped
// workload at replication degree R over a provider pool racked into
// failure domains, then every provider of one domain dies at once
// (store level, zero operator action). With Spread on, placement puts
// each chunk's replicas in distinct domains, so the correlated loss
// costs at most one copy per chunk: nothing is lost and the healer
// re-replicates into the surviving domains. The flat control run shows
// what the same loss does to domain-blind placement: chunks whose
// copies were co-located inside the dead domain are gone — durability
// bought by spread at zero extra storage cost.
func RunDomainLoss(env cluster.Env, spec workload.OverlapSpec, opts DomainLossOptions) (DomainLossResult, error) {
	if err := spec.Validate(); err != nil {
		return DomainLossResult{}, err
	}
	if opts.Replicas < 2 {
		return DomainLossResult{}, fmt.Errorf("bench: domain loss needs R >= 2, got %d", opts.Replicas)
	}
	if opts.Domains <= 0 {
		opts.Domains = 4
	}
	if opts.ScrubRate <= 0 {
		opts.ScrubRate = 16
	}
	if opts.RepairRate <= 0 {
		opts.RepairRate = 4
	}
	if opts.MaxTicks <= 0 {
		opts.MaxTicks = 2000
	}
	env.Replicas = opts.Replicas
	if opts.Spread {
		env.Domains = opts.Domains
	}
	env.SelfHeal = true
	env.FaultInjection = true
	env.FailThreshold = 2
	env.ScrubRate = opts.ScrubRate
	env.RepairRate = opts.RepairRate
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		return DomainLossResult{}, err
	}
	be, err := svc.Backend(1, spec.FileSpan())
	if err != nil {
		return DomainLossResult{}, err
	}
	d := &mpiio.VersioningDriver{Backend: be}
	res := DomainLossResult{Replicas: opts.Replicas, Domains: opts.Domains, Spread: opts.Spread}

	// Virtual clock for probation timing: one tick = one second.
	var vsec atomic.Int64
	svc.Health.SetClock(func() time.Time { return time.Unix(vsec.Load(), 0) })

	// Write phase: the replicated workload.
	errs := make([]error, spec.Clients)
	var wg sync.WaitGroup
	for w := 0; w < spec.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			exts := spec.ExtentsFor(w)
			buf := make([]byte, exts.TotalLength())
			for i := range buf {
				buf[i] = byte(w + 1)
			}
			vec, err := extent.NewVec(exts, buf)
			if err == nil {
				err = d.WriteList(vec, true)
			}
			errs[w] = err
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}

	// Kill every STORE in the first domain block — flags stay live, so
	// the system must notice from errors. The flat control kills the
	// same machines: only placement differs between the modes.
	var victims []provider.ID
	for i := 0; i < env.Providers; i++ {
		if provider.DomainLabel(i, env.Providers, opts.Domains) == "zone0" {
			victims = append(victims, provider.ID(i))
			svc.Faults[i].SetDown(true)
		}
	}
	res.Killed = len(victims)
	dead := make(map[provider.ID]bool, len(victims))
	for _, id := range victims {
		dead[id] = true
	}

	// Durability accounting from placement records alone (probing
	// stores here would feed the detector and contaminate the
	// detection measurement).
	keys := svc.Router.Keys()
	res.Chunks = len(keys)
	for _, key := range keys {
		ids, _ := svc.Router.Locate(key)
		hit, survivors := 0, 0
		for _, id := range ids {
			if dead[id] {
				hit++
			} else {
				survivors++
			}
		}
		if hit > 0 {
			res.Degraded++
		}
		if survivors == 0 {
			res.Lost++
		}
	}
	if res.Chunks > 0 {
		res.SurvivedPct = 100 * float64(res.Chunks-res.Lost) / float64(res.Chunks)
	}
	if res.Lost > 0 {
		// Data is gone; no amount of healing brings it back. The cell
		// reports the exposure instead of a repair time.
		res.DetectTicks, res.HealTicks = -1, -1
		return res, nil
	}

	// Healing loop: tick until every victim is detected, every chunk
	// is back at full degree AND full domain spread, counting virtual
	// time.
	detect := -1
	res.DetectTicks, res.HealTicks = -1, -1
	allDown := func() bool {
		for _, id := range victims {
			if svc.Health.State(id) != provider.Down {
				return false
			}
		}
		return true
	}
	start := time.Now()
	for t := 1; t <= opts.MaxTicks; t++ {
		vsec.Add(1)
		svc.Healer.Tick()
		if detect < 0 && allDown() {
			detect = t
		}
		if svc.Healer.QueueLen() == 0 && svc.Router.UnderReplicated() == 0 && len(svc.Router.SpreadAudit()) == 0 {
			res.HealTicks = t
			break
		}
	}
	res.HealElapsed = time.Since(start)
	res.DetectTicks = detect
	res.Stats = svc.Healer.Stats()
	res.SpreadFound = res.Stats.SpreadFound
	if res.HealTicks < 0 {
		return res, fmt.Errorf("bench: domain loss did not heal in %d ticks (spread=%v): %+v", opts.MaxTicks, opts.Spread, res.Stats)
	}
	// Durability check: every published version must read back.
	if _, err := be.Scrub(); err != nil {
		return res, fmt.Errorf("bench: scrub after domain-loss heal: %w", err)
	}
	return res, nil
}
