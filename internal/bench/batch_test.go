package bench

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/vmanager"
	"repro/internal/workload"
)

// The small-write scenario must run and account correctly on the free
// model for every batch size.
func TestRunSmallWrites(t *testing.T) {
	spec := workload.OverlapSpec{Clients: 4, Regions: 4, RegionSize: 4 << 10, OverlapFraction: 0.75}
	for _, mb := range []int{1, 8, 64} {
		opts := SmallWriteOptions{
			Iterations: 3,
			Batch:      vmanager.BatchConfig{MaxBatch: mb, MaxDelay: 100 * time.Microsecond},
			PipeDepth:  4,
		}
		res, err := RunSmallWrites(cluster.Default(), spec, opts)
		if err != nil {
			t.Fatalf("maxbatch=%d: %v", mb, err)
		}
		if res.Calls != 12 {
			t.Fatalf("maxbatch=%d: calls = %d, want 12", mb, res.Calls)
		}
		if want := int64(12) * spec.BytesPerClient(); res.Bytes != want {
			t.Fatalf("maxbatch=%d: bytes = %d, want %d", mb, res.Bytes, want)
		}
		if res.MBps <= 0 {
			t.Fatalf("maxbatch=%d: non-positive throughput", mb)
		}
	}
}

// On the metered cost model, group commit must beat one control round
// trip per call — the PR's acceptance criterion. The margin is large
// (the control path dominates 4 KiB regions), so the > threshold is
// safe against scheduler noise.
func TestSmallWritesBatchedBeatsUnbatchedMetered(t *testing.T) {
	if testing.Short() {
		t.Skip("metered comparison is wall-clock-bound")
	}
	spec := workload.OverlapSpec{Clients: 16, Regions: 4, RegionSize: 4 << 10, OverlapFraction: 0.75}
	run := func(mb int) float64 {
		res, err := RunSmallWrites(cluster.Metered(), spec, SmallWriteOptions{
			Iterations: 6,
			Batch:      vmanager.BatchConfig{MaxBatch: mb, MaxDelay: 200 * time.Microsecond},
			PipeDepth:  4,
		})
		if err != nil {
			t.Fatalf("maxbatch=%d: %v", mb, err)
		}
		return res.MBps
	}
	unbatched := run(1)
	batched := run(64)
	t.Logf("unbatched %.1f MB/s, batched %.1f MB/s (%.2fx)", unbatched, batched, batched/unbatched)
	if batched <= unbatched {
		t.Fatalf("batched %.1f MB/s not faster than unbatched %.1f MB/s", batched, unbatched)
	}
}
