package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MixedSpec describes the producer/consumer experiment (E7): Writers
// keep producing atomic overlapped non-contiguous updates while
// Readers concurrently read the whole produced region under MPI
// atomicity. On the versioning backend, readers pin published
// snapshots and never interact with writers; on locking backends,
// atomic readers take shared locks that conflict with the writers'
// exclusive locks.
type MixedSpec struct {
	Writers, Readers      int
	WriteCalls, ReadCalls int
	Pattern               workload.OverlapSpec // Clients field is overridden by Writers
}

// MixedResult reports the two sides' aggregated throughputs and the
// reader-visible latency. Raw bandwidth equalizes once the storage
// servers saturate; the quantity versioning improves is read latency —
// a locking reader queues behind every in-flight exclusive writer,
// while a versioning reader serves from an immutable snapshot
// immediately.
type MixedResult struct {
	System     SystemKind
	WriteMBps  float64
	ReadMBps   float64
	Elapsed    time.Duration
	WriteBytes int64
	ReadBytes  int64
	LockWait   time.Duration

	ReadLatency     stats.Summary
	MeanReadLatency time.Duration
	MaxReadLatency  time.Duration
}

// RunMixed runs writers and readers concurrently and measures each
// side's aggregated throughput over the common wall-clock window.
func RunMixed(kind SystemKind, env cluster.Env, spec MixedSpec) (MixedResult, error) {
	p := spec.Pattern
	p.Clients = spec.Writers
	if err := p.Validate(); err != nil {
		return MixedResult{}, err
	}
	if spec.Readers < 1 || spec.WriteCalls < 1 || spec.ReadCalls < 1 {
		return MixedResult{}, fmt.Errorf("bench: mixed spec needs positive readers/calls, got %+v", spec)
	}
	sys, err := Build(kind, env, p.FileSpan())
	if err != nil {
		return MixedResult{}, err
	}

	// Pre-populate so readers have data from the start, and warm up.
	seed := make([]byte, p.FileSpan())
	for i := range seed {
		seed[i] = 0xFF
	}
	seedVec, err := extent.NewVec(extent.List{{Offset: 0, Length: p.FileSpan()}}, seed)
	if err != nil {
		return MixedResult{}, err
	}
	if err := sys.Driver.WriteList(seedVec, true); err != nil {
		return MixedResult{}, err
	}
	warmWait := sys.LockWait()

	readSpan := extent.List{{Offset: 0, Length: p.FileSpan()}}
	errs := make([]error, spec.Writers+spec.Readers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < spec.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			exts := p.ExtentsFor(w)
			buf := make([]byte, exts.TotalLength())
			for i := range buf {
				buf[i] = byte(w + 1)
			}
			vec, err := extent.NewVec(exts, buf)
			if err != nil {
				errs[w] = err
				return
			}
			for it := 0; it < spec.WriteCalls; it++ {
				if err := sys.Driver.WriteList(vec, true); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	readLat := make([]time.Duration, spec.Readers*spec.ReadCalls)
	for r := 0; r < spec.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for it := 0; it < spec.ReadCalls; it++ {
				t0 := time.Now()
				if _, err := sys.Driver.ReadList(readSpan, true); err != nil {
					errs[spec.Writers+r] = err
					return
				}
				readLat[r*spec.ReadCalls+it] = time.Since(t0)
			}
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return MixedResult{}, err
		}
	}

	res := MixedResult{
		System:     kind,
		Elapsed:    elapsed,
		WriteBytes: int64(spec.Writers) * int64(spec.WriteCalls) * p.BytesPerClient(),
		ReadBytes:  int64(spec.Readers) * int64(spec.ReadCalls) * p.FileSpan(),
		LockWait:   sys.LockWait() - warmWait,
	}
	res.WriteMBps = float64(res.WriteBytes) / (1 << 20) / elapsed.Seconds()
	res.ReadMBps = float64(res.ReadBytes) / (1 << 20) / elapsed.Seconds()
	res.ReadLatency = stats.Summarize(readLat)
	res.MeanReadLatency = res.ReadLatency.Mean
	res.MaxReadLatency = res.ReadLatency.Max
	return res, nil
}

// VersionedBackend exposes the versioning backend of a built system,
// or nil for locking systems. Used by tests that need version-aware
// access on top of a harness-built system.
func (s *System) VersionedBackend() *core.VersioningBackend { return s.backend }
