package bench

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// The blaster must survive a mid-run provider kill with zero failed
// writes or reads, converge heal and GC, and hand back per-stage
// histograms whose counts are self-consistent with the work done.
func TestCheckpointBlaster(t *testing.T) {
	spec := workload.CheckpointSpec{Ranks: 4, Segments: 4, SegmentSize: 8 << 10}
	res, err := RunCheckpointBlaster(cluster.Default(), spec, CheckpointOptions{
		Replicas: 2, Epochs: 5, KeepLast: 2, Readers: 2, Kill: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WrittenBytes != spec.BytesPerRank()*int64(spec.Ranks)*5 {
		t.Errorf("written = %d", res.WrittenBytes)
	}
	if res.Repaired == 0 {
		t.Error("kill produced no repairs")
	}
	if res.Reclaimed == 0 {
		t.Error("retention produced no reclaimed versions")
	}
	stages := map[string]StageLatency{}
	for _, s := range res.Stages {
		stages[s.Stage] = s
	}
	// One ticket/commit/publish per epoch per rank.
	want := uint64(5 * spec.Ranks)
	for _, name := range []string{"ticket", "commit", "publish", "pipe write"} {
		if got := stages[name].Count; got != want {
			t.Errorf("stage %q count = %d, want %d", name, got, want)
		}
	}
	for _, name := range []string{"chunk put", "repair", "reap pass"} {
		if stages[name].Count == 0 {
			t.Errorf("stage %q count = 0", name)
		}
	}
	// The flattened snapshot agrees with the stage readout.
	if got := res.Metrics["bs_vm_publish_total"]; got != float64(want) {
		t.Errorf("bs_vm_publish_total = %g, want %d", got, want)
	}
	if res.Metrics["bs_repair_seconds_count"] != float64(stages["repair"].Count) {
		t.Errorf("repair histogram disagrees between snapshot and handle")
	}
}
