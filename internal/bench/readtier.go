package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/extent"
	"repro/internal/mpiio"
	"repro/internal/provider"
	"repro/internal/workload"
)

// ReadTierMode selects which stage of the hot-path read tier a cell
// measures.
type ReadTierMode int

const (
	// ReadFlat is the baseline: replica choice blind to domains (the
	// plain rotation), no cache. Locality is still measured — reads are
	// attributed to the reader's domain — so the cell reports the
	// cross-domain fraction the other modes remove.
	ReadFlat ReadTierMode = iota
	// ReadZoneLocal prefers same-domain replicas, no cache.
	ReadZoneLocal
	// ReadZoneLocalCached prefers same-domain replicas and serves
	// repeats from the bounded read-through cache.
	ReadZoneLocalCached
)

// String names the mode for tables.
func (m ReadTierMode) String() string {
	switch m {
	case ReadFlat:
		return "flat"
	case ReadZoneLocal:
		return "zone-local"
	case ReadZoneLocalCached:
		return "zone-local+cache"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ReadTierOptions tunes RunReadTier.
type ReadTierOptions struct {
	// Replicas is the replication degree R (>= 2: locality needs a
	// choice of replicas to make).
	Replicas int
	// Domains is the failure-domain count (default 4). Readers sit in
	// zone0.
	Domains int
	// Mode selects the read-tier stage under test.
	Mode ReadTierMode
	// Readers is the number of concurrent reader goroutines (default 8).
	Readers int
	// ReadsPerReader is the chunk reads each reader issues (default 400).
	ReadsPerReader int
	// Pattern is the hot/cold skew; the zero value selects the 90/10
	// shape over 64 chunks.
	Pattern workload.HotColdSpec
	// CacheBytes bounds the cache (ReadZoneLocalCached; 0 = 64 MiB).
	CacheBytes int64
	// Seed derives every reader's pick sequence.
	Seed int64
}

// ReadTierResult is one measured read-tier cell.
type ReadTierResult struct {
	Mode     ReadTierMode
	Replicas int
	Readers  int
	Reads    int64 // chunk reads issued
	ReadMBps float64
	Locality provider.ReadLocalityStats
	// CrossFraction is the fraction of replica-fetched bytes that
	// crossed a domain boundary (cache hits fetch nothing and so count
	// in neither bucket — the cache shrinks the denominator too).
	CrossFraction float64
	CacheOn       bool
	Cache         provider.ReadCacheStats
}

// RunReadTier measures experiment E13: concurrent readers in one
// failure domain re-read a replicated file with a 90/10 hot/cold skew,
// under each stage of the hot-path read tier. Flat rotation spreads
// fetches over all domains (cross-domain fraction ~ (D-1)/D at R >= D
// replicas visible, (R-1)/R in general); zone-local selection collapses
// it toward the fraction of chunks with no local replica; the cache
// removes repeat fetches entirely and reports its hit rate. Durability
// is untouched — the tier only reorders and remembers reads.
func RunReadTier(env cluster.Env, opts ReadTierOptions) (ReadTierResult, error) {
	if opts.Replicas < 2 {
		return ReadTierResult{}, fmt.Errorf("bench: read tier needs R >= 2, got %d", opts.Replicas)
	}
	if opts.Domains <= 0 {
		opts.Domains = 4
	}
	if opts.Readers <= 0 {
		opts.Readers = 8
	}
	if opts.ReadsPerReader <= 0 {
		opts.ReadsPerReader = 400
	}
	if opts.Pattern == (workload.HotColdSpec{}) {
		opts.Pattern = workload.HotColdSpec{Chunks: 64, HotFraction: 0.1, HotProb: 0.9}
	}
	if err := opts.Pattern.Validate(); err != nil {
		return ReadTierResult{}, err
	}
	env.Replicas = opts.Replicas
	env.Domains = opts.Domains
	const readerDomain = "zone0"
	if opts.Mode != ReadFlat {
		env.LocalDomain = readerDomain
	}
	if opts.Mode == ReadZoneLocalCached {
		env.ReadCache = true
		env.CacheBytes = opts.CacheBytes
	}
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		return ReadTierResult{}, err
	}
	if opts.Mode == ReadFlat {
		// Measure-only locality: reads are attributed to the reader
		// domain but replica choice stays the blind rotation, so the
		// cell reports the cross-domain traffic the tier removes.
		svc.Router.SetReadLocality(readerDomain, false)
	}
	span := int64(opts.Pattern.Chunks) * env.ChunkSize
	be, err := svc.Backend(1, span)
	if err != nil {
		return ReadTierResult{}, err
	}
	d := &mpiio.VersioningDriver{Backend: be}
	res := ReadTierResult{Mode: opts.Mode, Replicas: opts.Replicas, Readers: opts.Readers}

	// Write phase: one pass over the whole keyspace, so every chunk
	// exists at R copies before the readers start.
	buf := make([]byte, span)
	for i := range buf {
		buf[i] = byte(i)
	}
	vec, err := extent.NewVec(extent.List{{Offset: 0, Length: span}}, buf)
	if err != nil {
		return res, err
	}
	if err := d.WriteList(vec, true); err != nil {
		return res, err
	}

	// Read phase: every reader replays its seeded hot/cold pick
	// sequence as aligned whole-chunk reads.
	start := time.Now()
	errs := make([]error, opts.Readers)
	var wg sync.WaitGroup
	for r := 0; r < opts.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			pick := opts.Pattern.Picker(opts.Seed + int64(r))
			for i := 0; i < opts.ReadsPerReader; i++ {
				off := int64(pick()) * env.ChunkSize
				q := extent.List{{Offset: off, Length: env.ChunkSize}}
				if _, err := d.ReadList(q, true); err != nil {
					errs[r] = err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return res, fmt.Errorf("bench: read tier (%s): %w", opts.Mode, err)
		}
	}
	elapsed := time.Since(start)
	res.Reads = int64(opts.Readers) * int64(opts.ReadsPerReader)
	res.ReadMBps = mbps(res.Reads*env.ChunkSize, elapsed)
	res.Locality = svc.Router.ReadLocality()
	res.CrossFraction = res.Locality.CrossFraction()
	if svc.Cache != nil {
		res.CacheOn = true
		res.Cache = svc.Cache.Stats()
	}
	return res, nil
}
