package bench

import "testing"

// TestRunLargeObject drives every E17 cell at a CI-sized object and
// checks the round trip verifies on byte-keeping backends.
func TestRunLargeObject(t *testing.T) {
	dir := t.TempDir()
	opts := LargeObjectOptions{Size: 4 << 20, ChunkSize: 256 << 10, Providers: 4}
	for _, c := range []LargeObjectCase{
		{Framed: false, Pipelined: false, StoreURL: "mem://"},
		{Framed: true, Pipelined: true, StoreURL: "mem://"},
		{Framed: true, Pipelined: true, StoreURL: "disk://" + dir + "/a"},
		{Framed: true, Pipelined: false, StoreURL: "null://"},
		{Framed: false, Pipelined: true, StoreURL: "disk://" + dir + "/b"},
	} {
		res, err := RunLargeObject(c, opts)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if res.WriteMBps <= 0 || res.ReadMBps <= 0 {
			t.Fatalf("%s: non-positive throughput %+v", c.Name(), res)
		}
	}
}

// TestLargeObjectCaseNames pins the table labels.
func TestLargeObjectCaseNames(t *testing.T) {
	c := LargeObjectCase{Framed: true, Pipelined: true, StoreURL: "fault+disk:///x"}
	if got := c.Name(); got != "framed+streamed/disk" {
		t.Fatalf("Name() = %q", got)
	}
	c = LargeObjectCase{StoreURL: "mem://"}
	if got := c.Name(); got != "gob+buffered/mem" {
		t.Fatalf("Name() = %q", got)
	}
}
