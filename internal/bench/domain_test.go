package bench

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// TestRunDomainLoss smoke-tests E12 unmetered: with domain-spread
// placement the loss of a whole domain loses NOTHING and heals; the
// flat control at R=2 demonstrably loses chunks — the contrast the
// experiment exists to show.
func TestRunDomainLoss(t *testing.T) {
	spec := workload.OverlapSpec{Clients: 4, Regions: 16, RegionSize: 8 << 10, OverlapFraction: 0.5}

	spreadRes, err := RunDomainLoss(cluster.Default(), spec, DomainLossOptions{Replicas: 2, Domains: 4, Spread: true})
	if err != nil {
		t.Fatalf("spread: %v", err)
	}
	if spreadRes.Lost != 0 || spreadRes.SurvivedPct != 100 {
		t.Fatalf("spread placement lost data to a single-domain kill: %+v", spreadRes)
	}
	if spreadRes.Degraded == 0 {
		t.Fatalf("domain kill degraded nothing: %+v", spreadRes)
	}
	if spreadRes.HealTicks <= 0 || spreadRes.DetectTicks <= 0 {
		t.Fatalf("spread mode did not detect+heal: %+v", spreadRes)
	}

	flatRes, err := RunDomainLoss(cluster.Default(), spec, DomainLossOptions{Replicas: 2, Domains: 4, Spread: false})
	if err != nil {
		t.Fatalf("flat: %v", err)
	}
	if flatRes.Lost == 0 {
		t.Fatalf("flat control lost nothing — the exposure E12 contrasts against did not occur: %+v", flatRes)
	}
	if flatRes.HealTicks != -1 {
		t.Fatalf("flat control with lost chunks reported a heal time: %+v", flatRes)
	}
}

// TestRunDomainLossValidation: R=1 has no correlated-loss story.
func TestRunDomainLossValidation(t *testing.T) {
	spec := workload.OverlapSpec{Clients: 2, Regions: 4, RegionSize: 4 << 10, OverlapFraction: 0.5}
	if _, err := RunDomainLoss(cluster.Default(), spec, DomainLossOptions{Replicas: 1}); err == nil {
		t.Fatal("RunDomainLoss accepted R=1")
	}
}
