package bench

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// TestRunSelfHeal smoke-tests E10 unmetered: both modes converge, the
// kill degrades something, and read-repair pre-feeds the queue and
// detects the loss no later than scrub-only does.
func TestRunSelfHeal(t *testing.T) {
	spec := workload.OverlapSpec{Clients: 4, Regions: 16, RegionSize: 8 << 10, OverlapFraction: 0.5}
	var ticks [2]int
	for i, rr := range []bool{false, true} {
		res, err := RunSelfHeal(cluster.Default(), spec, SelfHealOptions{Replicas: 2, ReadRepair: rr})
		if err != nil {
			t.Fatalf("readRepair=%v: %v", rr, err)
		}
		if res.Degraded == 0 {
			t.Fatalf("readRepair=%v: kill degraded nothing: %+v", rr, res)
		}
		if res.HealTicks <= 0 || res.DetectTicks < 0 {
			t.Fatalf("readRepair=%v: no convergence/detection: %+v", rr, res)
		}
		if rr && res.Prefed == 0 {
			t.Fatalf("read-repair phase fed no chunks: %+v", res)
		}
		if !rr && res.Prefed != 0 {
			t.Fatalf("scrub-only mode pre-fed %d chunks", res.Prefed)
		}
		ticks[i] = res.HealTicks
	}
	// Read-repair must never make healing slower.
	if ticks[1] > ticks[0] {
		t.Fatalf("read-repair healed in %d ticks, scrub-only in %d — read-repair made it worse", ticks[1], ticks[0])
	}
}

// TestRunSelfHealValidation: R=1 has nothing to heal from.
func TestRunSelfHealValidation(t *testing.T) {
	spec := workload.OverlapSpec{Clients: 2, Regions: 4, RegionSize: 4 << 10, OverlapFraction: 0.5}
	if _, err := RunSelfHeal(cluster.Default(), spec, SelfHealOptions{Replicas: 1}); err == nil {
		t.Fatal("RunSelfHeal accepted R=1")
	}
}
