package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/extent"
	"repro/internal/mpiio"
	"repro/internal/provider"
	"repro/internal/workload"
)

// CodedOptions tunes RunCoded.
type CodedOptions struct {
	// Coding selects erasure-coded placement ("rs-4+2"); empty runs the
	// replicated control at Replicas instead — same pool, same domains,
	// same workload, only the placement mode differs.
	Coding string
	// Replicas is the replication degree of the control cell (>= 2;
	// ignored when Coding is set).
	Replicas int
	// Domains is the failure-domain count (and the loss unit: the whole
	// first domain dies for the degraded phase). Default 6.
	Domains int
	// Iterations is the number of write calls per client (default 1).
	Iterations int
	// ReadCalls is the number of full-file reads per client in each
	// read phase (default 2).
	ReadCalls int
}

// CodedResult is one measured placement-mode cell: what the durability
// costs in storage and write bandwidth, and what a whole-domain loss
// costs in read performance — the comparison erasure coding exists for.
type CodedResult struct {
	Mode         string // "rs-4+2" or "R=3"
	Clients      int
	WrittenBytes int64
	StoredBytes  int64
	// StorageX is stored bytes over written bytes: (k+m)/k for coded
	// placement, R for replication — the storage price of durability.
	StorageX      float64
	WriteMBps     float64
	ReadMBps      float64 // all domains healthy
	DegradedMBps  float64 // one whole domain down: failover / reconstruct
	Killed        int     // providers lost (the whole first domain)
	Lost          int     // chunks unreadable after the kill (data loss)
	RepairElapsed time.Duration
	Repair        provider.RepairStats
}

// RunCoded measures experiment E18: N clients write an overlapped
// workload under either erasure-coded (rs-k+m) or replicated (R)
// placement over a domain-racked pool, read it back healthy, then one
// whole failure domain dies and the reads repeat — replication fails
// over to surviving copies, coding reconstructs from any k fragments —
// and a repair pass restores full degree. The headline is the storage
// column: rs-4+2 buys two-domain-loss durability at 1.5x storage where
// R=3 pays 3x for the same tolerance.
func RunCoded(env cluster.Env, spec workload.OverlapSpec, opts CodedOptions) (CodedResult, error) {
	if err := spec.Validate(); err != nil {
		return CodedResult{}, err
	}
	if opts.Domains <= 0 {
		opts.Domains = 6
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 1
	}
	reads := opts.ReadCalls
	if reads <= 0 {
		reads = 2
	}
	res := CodedResult{Clients: spec.Clients}
	if opts.Coding != "" {
		env.Coding = opts.Coding
		env.Replicas = 0
		res.Mode = opts.Coding
	} else {
		if opts.Replicas < 2 {
			return CodedResult{}, fmt.Errorf("bench: replicated control needs R >= 2, got %d", opts.Replicas)
		}
		env.Replicas = opts.Replicas
		res.Mode = fmt.Sprintf("R=%d", opts.Replicas)
	}
	env.Domains = opts.Domains
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		return CodedResult{}, err
	}
	be, err := svc.Backend(1, spec.FileSpan())
	if err != nil {
		return CodedResult{}, err
	}
	d := &mpiio.VersioningDriver{Backend: be}

	// Write phase.
	start := time.Now()
	errs := make([]error, spec.Clients)
	var wg sync.WaitGroup
	for w := 0; w < spec.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			exts := spec.ExtentsFor(w)
			buf := make([]byte, exts.TotalLength())
			for i := range buf {
				buf[i] = byte(w + 1)
			}
			for it := 0; it < iters; it++ {
				vec, err := extent.NewVec(exts, buf)
				if err == nil {
					err = d.WriteList(vec, true)
				}
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	elapsed := time.Since(start)
	res.WrittenBytes = int64(spec.Clients) * int64(iters) * spec.BytesPerClient()
	res.WriteMBps = mbps(res.WrittenBytes, elapsed)
	for _, u := range svc.Router.Usage() {
		res.StoredBytes += u.Bytes
	}
	if res.WrittenBytes > 0 {
		res.StorageX = float64(res.StoredBytes) / float64(res.WrittenBytes)
	}

	span := spec.FileSpan()
	readPhase := func() (float64, error) {
		start := time.Now()
		errs := make([]error, spec.Clients)
		var wg sync.WaitGroup
		for w := 0; w < spec.Clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < reads; i++ {
					if _, err := d.ReadList(extent.List{{Offset: 0, Length: span}}, true); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return mbps(int64(spec.Clients)*int64(reads)*span, time.Since(start)), nil
	}
	if res.ReadMBps, err = readPhase(); err != nil {
		return res, fmt.Errorf("bench: healthy read phase: %w", err)
	}

	// Kill the whole first failure domain (flag level — the detector or
	// operator has noticed; E12 measures the detection path).
	for i := 0; i < env.Providers; i++ {
		if provider.DomainLabel(i, env.Providers, opts.Domains) == "zone0" {
			if err := svc.Providers.SetDown(provider.ID(i), true); err != nil {
				return res, err
			}
			res.Killed++
		}
	}

	// Durability accounting: a coded chunk needs k live fragments, a
	// replicated chunk one live copy.
	need := 1
	if k, _, on := svc.Router.Coding(); on {
		need = k
	}
	for _, key := range svc.Router.Keys() {
		if live, _, known := svc.Router.ReplicaHealth(key); known && live < need {
			res.Lost++
		}
	}
	if res.Lost > 0 {
		return res, fmt.Errorf("bench: %s lost %d chunks to a single-domain kill", res.Mode, res.Lost)
	}

	// Degraded reads: replication fails over, coding reconstructs.
	if res.DegradedMBps, err = readPhase(); err != nil {
		return res, fmt.Errorf("bench: degraded read phase: %w", err)
	}

	// Repair restores full degree into the surviving domains.
	start = time.Now()
	res.Repair = svc.Router.Repair()
	res.RepairElapsed = time.Since(start)
	if res.Repair.Lost > 0 || res.Repair.Failed > 0 {
		return res, fmt.Errorf("bench: repair after domain kill: %+v", res.Repair)
	}
	if _, err := be.Scrub(); err != nil {
		return res, fmt.Errorf("bench: scrub after repair: %w", err)
	}
	return res, nil
}
