package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table renders experiment results as an aligned text table, the format
// EXPERIMENTS.md records.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddResult appends a standard result row:
// system, clients, MB/s, elapsed, lock-wait.
func (t *Table) AddResult(r Result) {
	t.AddRow(
		r.System.String(),
		fmt.Sprintf("%d", r.Clients),
		fmt.Sprintf("%.1f", r.MBps),
		fmt.Sprintf("%.3fs", r.Elapsed.Seconds()),
		fmt.Sprintf("%.3fs", r.LockWait.Seconds()),
	)
}

// StandardHeader is the column set AddResult fills.
func StandardHeader() []string {
	return []string{"system", "clients", "MB/s", "elapsed", "lock-wait"}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	rule := make([]string, cols)
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, r := range t.Rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Ratio computes a/b guarding against division by zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
