package bench

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// fastEnv is the unmetered environment: correctness-only runs.
func fastEnv() cluster.Env {
	e := cluster.Default()
	e.Providers = 4
	e.MetaShards = 4
	e.ChunkSize = 4096
	return e
}

func smallSpec(clients int) workload.OverlapSpec {
	return workload.OverlapSpec{
		Clients:         clients,
		Regions:         8,
		RegionSize:      1024,
		OverlapFraction: 0.75,
	}
}

func TestSystemKindStrings(t *testing.T) {
	names := map[string]bool{}
	for _, k := range append(AllAtomicSystems(), PosixNoAtomic) {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "system(") {
			t.Fatalf("kind %d has no name", int(k))
		}
		if names[s] {
			t.Fatalf("duplicate name %q", s)
		}
		names[s] = true
	}
}

func TestBuildUnknownSystem(t *testing.T) {
	if _, err := Build(SystemKind(99), fastEnv(), 1<<20); err == nil {
		t.Fatal("unknown system must fail")
	}
}

func TestRunOverlapAllAtomicSystemsVerify(t *testing.T) {
	// Every atomicity-claiming system must pass the serializability
	// check under heavy overlap.
	for _, kind := range AllAtomicSystems() {
		t.Run(kind.String(), func(t *testing.T) {
			res, err := RunOverlap(kind, fastEnv(), smallSpec(8), OverlapOptions{Iterations: 2, Verify: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatalf("atomicity verification failed: %v", res.VerifyErr)
			}
			if res.Calls != 16 || res.Bytes != 16*8*1024 {
				t.Fatalf("result accounting = %+v", res)
			}
			if res.MBps <= 0 {
				t.Fatalf("throughput = %v", res.MBps)
			}
		})
	}
}

// TestPosixStrategyViolatesAtomicity demonstrates the paper's
// motivating problem: independent POSIX writes of non-contiguous
// regions interleave under concurrency. The violation is
// probabilistic, so the test retries and accepts that the strawman
// occasionally survives a round; what it must never do is fail the
// checker's own machinery.
func TestPosixStrategyMayViolateAtomicity(t *testing.T) {
	violations := 0
	for attempt := 0; attempt < 10 && violations == 0; attempt++ {
		spec := workload.OverlapSpec{
			Clients:         8,
			Regions:         16,
			RegionSize:      512,
			OverlapFraction: 1, // total overlap maximizes interleaving
		}
		res, err := RunOverlap(PosixNoAtomic, fastEnv(), spec, OverlapOptions{Iterations: 2, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			violations++
		}
	}
	t.Logf("observed %d atomicity violations in posix-noatomic (expected >= 0)", violations)
}

func TestRunOverlapValidation(t *testing.T) {
	if _, err := RunOverlap(Versioning, fastEnv(), workload.OverlapSpec{}, OverlapOptions{}); err == nil {
		t.Fatal("invalid spec must fail")
	}
	big := smallSpec(64)
	if _, err := RunOverlap(Versioning, fastEnv(), big, OverlapOptions{Iterations: 5, Verify: true}); err == nil {
		t.Fatal("verify with >255 calls must fail")
	}
}

func TestRunOverlapLockWaitReported(t *testing.T) {
	res, err := RunOverlap(LockWholeFile, fastEnv(), smallSpec(4), OverlapOptions{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	// With whole-file locking and 4 concurrent clients there must be
	// some queueing (wait time strictly positive in practice; we only
	// require the field to be populated without panic).
	_ = res.LockWait
}

func TestRunTileBothModes(t *testing.T) {
	spec := workload.TileSpec{
		TilesX: 2, TilesY: 2,
		TileX: 16, TileY: 16,
		ElementSize: 8,
		OverlapX:    2, OverlapY: 2,
	}
	for _, collective := range []bool{false, true} {
		res, err := RunTile(Versioning, fastEnv(), spec, TileOptions{Collective: collective, Iterations: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Clients != 4 || res.Bytes != 4*2*16*16*8 {
			t.Fatalf("accounting = %+v", res)
		}
	}
}

func TestRunTileLockingBaseline(t *testing.T) {
	spec := workload.TileSpec{
		TilesX: 2, TilesY: 1,
		TileX: 8, TileY: 8,
		ElementSize: 4,
		OverlapX:    2, OverlapY: 0,
	}
	res, err := RunTile(LockBounding, fastEnv(), spec, TileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.MBps <= 0 {
		t.Fatalf("throughput = %v", res.MBps)
	}
}

func TestRunHalo(t *testing.T) {
	spec := workload.HaloSpec{PX: 2, PY: 2, CoreX: 16, CoreY: 16, Halo: 2, ElementSize: 4}
	res, err := RunHalo(Versioning, fastEnv(), spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients != 4 || res.Bytes <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("demo", StandardHeader()...)
	tbl.AddResult(Result{System: Versioning, Clients: 8, MBps: 123.4})
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "system", "versioning", "123.4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestRatio(t *testing.T) {
	if Ratio(10, 2) != 5 {
		t.Fatal("Ratio(10,2) != 5")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio by zero must be 0")
	}
}

func TestRunMixedBothSystems(t *testing.T) {
	spec := MixedSpec{
		Writers: 4, Readers: 2,
		WriteCalls: 3, ReadCalls: 3,
		Pattern: workload.OverlapSpec{
			Regions: 8, RegionSize: 1024, OverlapFraction: 0.5,
		},
	}
	for _, kind := range []SystemKind{Versioning, LockBounding} {
		res, err := RunMixed(kind, fastEnv(), spec)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.WriteBytes <= 0 || res.ReadBytes <= 0 {
			t.Fatalf("%v accounting: %+v", kind, res)
		}
		if res.WriteMBps <= 0 || res.ReadMBps <= 0 {
			t.Fatalf("%v throughput: %+v", kind, res)
		}
	}
}

func TestRunMixedValidation(t *testing.T) {
	if _, err := RunMixed(Versioning, fastEnv(), MixedSpec{}); err == nil {
		t.Fatal("zero spec must fail")
	}
	bad := MixedSpec{Writers: 1, Readers: 0, WriteCalls: 1, ReadCalls: 1,
		Pattern: workload.OverlapSpec{Regions: 1, RegionSize: 1}}
	if _, err := RunMixed(Versioning, fastEnv(), bad); err == nil {
		t.Fatal("zero readers must fail")
	}
}

func TestDataSieveSystemWorks(t *testing.T) {
	res, err := RunOverlap(LockDataSieve, fastEnv(), smallSpec(4), OverlapOptions{Iterations: 2, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("data sieve atomicity: %v", res.VerifyErr)
	}
}
