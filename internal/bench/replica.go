package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/extent"
	"repro/internal/mpiio"
	"repro/internal/provider"
	"repro/internal/workload"
)

// ReplicatedOptions tunes RunReplicated.
type ReplicatedOptions struct {
	// Replicas is the replication degree R under test (>= 1).
	Replicas int
	// Iterations is the number of write calls per client (default 1).
	Iterations int
	// ReadCalls is the number of full-file reads per client in each
	// read phase (default 2).
	ReadCalls int
}

// ReplicatedResult is one measured replication cell: the write cost of
// storing R copies, read throughput healthy and degraded (one provider
// killed mid-run), and the cost of the repair pass that restores R.
type ReplicatedResult struct {
	Replicas      int
	Clients       int
	WriteMBps     float64
	ReadMBps      float64 // all providers healthy
	DegradedMBps  float64 // one provider down, reads fail over
	DegradedErr   error   // non-nil when degraded reads fail (R=1: data loss)
	RepairElapsed time.Duration
	Repair        provider.RepairStats
}

// RunReplicated measures the replication scenario (experiment E9): N
// clients issue atomic overlapped writes at replication degree R, read
// the file back at full health, then a provider is killed mid-run and
// the reads repeat degraded (served via replica failover), and finally
// a repair pass restores the replication degree. R=1 documents the
// baseline: its degraded phase loses data instead of throughput.
func RunReplicated(env cluster.Env, spec workload.OverlapSpec, opts ReplicatedOptions) (ReplicatedResult, error) {
	if err := spec.Validate(); err != nil {
		return ReplicatedResult{}, err
	}
	if opts.Replicas < 1 {
		opts.Replicas = 1
	}
	iters := opts.Iterations
	if iters <= 0 {
		iters = 1
	}
	reads := opts.ReadCalls
	if reads <= 0 {
		reads = 2
	}
	env.Replicas = opts.Replicas
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		return ReplicatedResult{}, err
	}
	be, err := svc.Backend(1, spec.FileSpan())
	if err != nil {
		return ReplicatedResult{}, err
	}
	d := &mpiio.VersioningDriver{Backend: be}
	res := ReplicatedResult{Replicas: opts.Replicas, Clients: spec.Clients}

	// Write phase: every client's extents, concurrently, R copies each.
	start := time.Now()
	errs := make([]error, spec.Clients)
	var wg sync.WaitGroup
	for w := 0; w < spec.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			exts := spec.ExtentsFor(w)
			buf := make([]byte, exts.TotalLength())
			for i := range buf {
				buf[i] = byte(w + 1)
			}
			for it := 0; it < iters; it++ {
				vec, err := extent.NewVec(exts, buf)
				if err == nil {
					err = d.WriteList(vec, true)
				}
				if err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	elapsed := time.Since(start)
	bytes := int64(spec.Clients) * int64(iters) * spec.BytesPerClient()
	res.WriteMBps = mbps(bytes, elapsed)

	span := spec.FileSpan()
	readPhase := func() (float64, error) {
		start := time.Now()
		errs := make([]error, spec.Clients)
		var wg sync.WaitGroup
		for w := 0; w < spec.Clients; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < reads; i++ {
					if _, err := d.ReadList(extent.List{{Offset: 0, Length: span}}, true); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return mbps(int64(spec.Clients)*int64(reads)*span, time.Since(start)), nil
	}

	if res.ReadMBps, err = readPhase(); err != nil {
		return res, fmt.Errorf("bench: healthy read phase: %w", err)
	}

	// Kill one provider mid-run; the remaining reads run degraded.
	if err := svc.Providers.SetDown(0, true); err != nil {
		return res, err
	}
	res.DegradedMBps, res.DegradedErr = readPhase()

	start = time.Now()
	res.Repair = svc.Router.Repair()
	res.RepairElapsed = time.Since(start)
	return res, nil
}

func mbps(bytes int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / elapsed.Seconds()
}
