// Version-lifecycle garbage collection: the background control loop
// that turns dropped versions into reclaimed space.
//
// The Reaper is the Healer's sibling and shares its machinery — the
// same bounded dedup key queue (queue.go), the same per-tick rate
// limits, the same tick/pass/Run drive modes — because it faces the
// same constraint: background traffic must never starve foreground
// writes or repair.
//
// One pass:
//
//  1. Retention: with RetainLast set, each registered blob drops every
//     version older than the newest RetainLast (pinned versions are
//     skipped by the version manager).
//  2. Hint walk: the pass walks every retained version's chunk refs at
//     WalkChunksPerTick refs per tick, comparing each metadata replica
//     hint against authoritative placement and counting stale ones
//     (ReaperStats.StaleHints) — the operator's measure of hint rot
//     left behind by repairs (a full metadata rewrite is future work).
//  3. Exclusive-ref diff: for each version pending reclamation (one
//     version per tick; the walk is metadata I/O), the segment-tree
//     diff walk (blob.ExclusiveChunks) computes the chunks no retained
//     version can reach — the refcount-by-metadata-diff step. Those
//     keys enter the bounded delete queue.
//  4. Deletion: every tick drains at most DeletesPerTick keys through
//     Router.DeleteReplicas, which removes the chunk from every
//     reachable replica and retires placement. A chunk with an
//     in-flight repair returns ErrChunkBusy and is retried next pass —
//     GC never deletes under a running repair.
//  5. Reclamation: when the pass's queue has drained, every pending
//     version whose deletes all succeeded is marked reclaimed at the
//     version manager; versions with failed or deferred deletes stay
//     pending and are re-walked next pass (deletion is idempotent:
//     already-deleted replicas answer ErrNotFound, which is success).
//
// Safety against concurrent writers: a new write's borrow answers only
// ever reference metadata whose chunks are reachable from the latest
// published version, which is always retained, so a chunk the diff
// walk proves exclusive to dropped versions can never be referenced by
// any in-flight or future write.
package core

import (
	"errors"
	"sync"
	"time"

	"repro/internal/blob"
	"repro/internal/chunk"
	"repro/internal/metrics"
	"repro/internal/provider"
	"repro/internal/vmanager"
)

// ReapRouter is the slice of the provider router the reaper drives.
// Implemented by *provider.Router.
type ReapRouter interface {
	DeleteReplicas(key chunk.Key) (removed int, bytes int64, err error)
	Locate(key chunk.Key) ([]provider.ID, bool)
}

var _ ReapRouter = (*provider.Router)(nil)

// BlobLister enumerates the registered blob IDs; implemented by
// *vmanager.Manager and *vmanager.Sharded. The reaper uses it (via
// SetCatalog) to discover blobs it was not explicitly handed — the
// daemon case, where clients create blobs over RPC.
type BlobLister interface {
	Blobs() []uint64
}

// ReaperConfig tunes the collector. Zero fields select defaults.
type ReaperConfig struct {
	// RetainLast, when positive, applies the retention policy at every
	// pass start: keep the newest RetainLast versions of each blob,
	// drop the rest (pins excepted). 0 means drops are manual
	// (DropVersion / Retain calls only).
	RetainLast int
	// WalkChunksPerTick caps retained-ref walk steps per tick
	// (default 64).
	WalkChunksPerTick int
	// DeletesPerTick caps chunk deletions per tick (default 4) — the
	// gc-rate knob bounding reclamation bandwidth so a GC storm cannot
	// starve foreground I/O.
	DeletesPerTick int
	// QueueDepth bounds the delete queue (default 256 distinct chunks).
	QueueDepth int
	// Interval is the background loop period for Run (default 200ms).
	Interval time.Duration
}

func (c ReaperConfig) withDefaults() ReaperConfig {
	if c.WalkChunksPerTick <= 0 {
		c.WalkChunksPerTick = 64
	}
	if c.DeletesPerTick <= 0 {
		c.DeletesPerTick = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Interval <= 0 {
		c.Interval = 200 * time.Millisecond
	}
	return c
}

// ReaperStats are cumulative collector counters.
type ReaperStats struct {
	Ticks           int64 // control-loop iterations
	Passes          int64 // completed retention+walk+delete passes
	AutoDropped     int64 // versions dropped by the RetainLast policy
	WalkedRefs      int64 // retained chunk refs walked (hint verification)
	StaleHints      int64 // refs whose replica hint disagreed with placement
	HintsRewritten  int64 // stale hints rewritten into the shared read cache
	WalkErrors      int64 // versions whose metadata could not be resolved
	PendingSeen     int64 // pending version walks started
	Enqueued        int64 // keys accepted into the delete queue
	Duplicates      int64 // enqueues dropped as already queued
	Dropped         int64 // enqueues dropped on a full queue
	Deleted         int64 // chunks fully deleted
	DeletedBytes    int64 // payload bytes reclaimed
	ReplicasRemoved int64 // individual replica copies removed
	DeleteFailed    int64 // chunks with at least one replica still to delete
	DeferredBusy    int64 // deletions deferred to a repair in flight
	Reclaimed       int64 // versions marked reclaimed
	QueueLen        int   // current delete-queue depth
}

// reapOwner identifies one pending version within a pass.
type reapOwner struct {
	blob    *blob.Blob
	version uint64
}

// reapPass is the in-flight state of one collection pass.
type reapPass struct {
	walkUnits  []scrubUnit         // retained versions still to hint-walk
	walkRefs   []chunk.Ref         // refs of the version being walked
	pendings   []reapOwner         // pending versions still to diff
	owners     map[chunk.Key][]int // queued key -> owner indexes awaiting its delete
	ownerList  []reapOwner         // pending versions seen this pass
	failed     []bool              // per owner: a delete failed or deferred
	remaining  []int               // per owner: keys still in the queue
	enqueued   map[chunk.Key]bool  // keys this pass put in the queue
	failedKeys map[chunk.Key]bool  // keys whose delete failed or was deferred
	walkDone   bool
}

// Reaper is the background garbage collector: retention trigger,
// stale-hint auditor, exclusive-chunk differ and rate-limited delete
// worker in one tickable object, driven exactly like the Healer (Tick
// from virtual-time loops, or Run for wall-clock operation).
type Reaper struct {
	router ReapRouter
	cfg    ReaperConfig
	queue  *keyQueue // bounded dedup delete queue (shared machinery)

	mu        sync.Mutex
	targets   []*blob.Blob
	known     map[uint64]bool
	catalog   func() []*blob.Blob
	pass      *reapPass
	passStart time.Time // wall-clock start of the current pass (metrics only)
	stats     ReaperStats
	cache     *provider.ReadCache // stale-hint rewrite target (optional)

	// met holds nil-tolerant metric handles, nil until SetMetrics.
	met struct {
		queueDepth   *metrics.Gauge
		passSec      *metrics.Histogram
		deleted      *metrics.Counter
		deletedBytes *metrics.Counter
	}

	runMu sync.Mutex
	stop  chan struct{}
	done  chan struct{}
}

// SetMetrics wires the reaper's delete-queue depth gauge (sampled per
// tick), pass duration histogram and reclamation counters into reg.
// Call before the loop runs; a nil registry leaves metrics disabled.
func (r *Reaper) SetMetrics(reg *metrics.Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.met.queueDepth = reg.Gauge("bs_reap_queue_depth")
	r.met.passSec = reg.Histogram("bs_reap_pass_seconds", nil)
	r.met.deleted = reg.Counter("bs_reap_deleted_total")
	r.met.deletedBytes = reg.Counter("bs_reap_deleted_bytes_total")
}

// NewReaper builds a reaper over the given router.
func NewReaper(router ReapRouter, cfg ReaperConfig) *Reaper {
	cfg = cfg.withDefaults()
	return &Reaper{
		router: router,
		cfg:    cfg,
		queue:  newKeyQueue(cfg.QueueDepth),
		known:  make(map[uint64]bool),
	}
}

// Config returns the effective (defaulted) configuration.
func (r *Reaper) Config() ReaperConfig { return r.cfg }

// SetReadCache wires the shared read cache into the hint walk:
// metadata refs are immutable, so a stale hint can never be fixed in
// place — but rewriting the CURRENT placement into the cache gives
// every reader the corrected set without waiting for a read to stumble
// over the stale hint and fail over first. The walk becomes the
// repair path for hint rot, not just its auditor.
func (r *Reaper) SetReadCache(c *provider.ReadCache) {
	r.mu.Lock()
	r.cache = c
	r.mu.Unlock()
}

// RegisterBlob adds a blob to the collection walk.
func (r *Reaper) RegisterBlob(b *blob.Blob) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.known[b.ID()] {
		return
	}
	r.known[b.ID()] = true
	r.targets = append(r.targets, b)
}

// SetCatalog wires blob discovery for deployments where blobs are
// created remotely: at each pass start the reaper opens a handle for
// every blob the version manager knows that it has not seen yet.
func (r *Reaper) SetCatalog(svc blob.Services, vm BlobLister) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.catalog = func() []*blob.Blob {
		var fresh []*blob.Blob
		for _, id := range vm.Blobs() {
			if r.known[id] {
				continue
			}
			b, err := blob.Open(svc, id)
			if err != nil {
				continue // not readable yet; retried next pass
			}
			fresh = append(fresh, b)
		}
		return fresh
	}
}

// Tick runs one bounded collector iteration: drain up to
// DeletesPerTick queued deletions, then advance the walk within its
// per-tick budgets, finalizing the pass when all work has drained.
func (r *Reaper) Tick() {
	r.mu.Lock()
	r.stats.Ticks++
	if r.pass == nil {
		r.startPassLocked()
	}
	r.mu.Unlock()
	r.drainDeletes()
	r.walkStep()
	r.maybeFinishPass()
	r.met.queueDepth.Set(int64(r.queue.len()))
}

// startPassLocked applies retention and snapshots the pass work list.
func (r *Reaper) startPassLocked() {
	if r.met.passSec != nil {
		r.passStart = time.Now()
	}
	if r.catalog != nil {
		for _, b := range r.catalog() {
			if !r.known[b.ID()] {
				r.known[b.ID()] = true
				r.targets = append(r.targets, b)
			}
		}
	}
	p := &reapPass{
		owners:     make(map[chunk.Key][]int),
		enqueued:   make(map[chunk.Key]bool),
		failedKeys: make(map[chunk.Key]bool),
	}
	for _, b := range r.targets {
		if r.cfg.RetainLast > 0 {
			if dropped, err := b.Retain(r.cfg.RetainLast); err == nil {
				r.stats.AutoDropped += int64(len(dropped))
			}
		}
		info, err := b.GCInfo()
		if err != nil {
			r.stats.WalkErrors++
			continue
		}
		for _, v := range info.Retained {
			if v == 0 {
				continue
			}
			p.walkUnits = append(p.walkUnits, scrubUnit{blob: b, version: v})
		}
		for _, pd := range info.Pending {
			p.pendings = append(p.pendings, reapOwner{blob: b, version: pd.Version})
		}
	}
	r.pass = p
}

// walkStep advances the hint walk by its ref budget, then diffs at
// most one pending version into the delete queue.
func (r *Reaper) walkStep() {
	budget := r.cfg.WalkChunksPerTick
	for budget > 0 {
		ref, ok := r.nextWalkRef()
		if !ok {
			break
		}
		budget--
		r.auditHint(ref)
	}
	r.diffOnePending()
}

// nextWalkRef pops the next retained ref of the hint walk, resolving
// one version's metadata at a time.
func (r *Reaper) nextWalkRef() (chunk.Ref, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.pass
	if p == nil {
		return chunk.Ref{}, false
	}
	for {
		if len(p.walkRefs) > 0 {
			ref := p.walkRefs[0]
			p.walkRefs = p.walkRefs[1:]
			return ref, true
		}
		if len(p.walkUnits) == 0 {
			p.walkDone = true
			return chunk.Ref{}, false
		}
		unit := p.walkUnits[0]
		p.walkUnits = p.walkUnits[1:]
		r.mu.Unlock()
		refs, err := unit.blob.ChunkRefs(unit.version)
		r.mu.Lock()
		if r.pass != p {
			return chunk.Ref{}, false // pass reset while unlocked
		}
		if err != nil {
			// Dropped mid-pass (retention raced us) is benign; anything
			// else is a real resolution failure.
			if !errors.Is(err, vmanager.ErrVersionDropped) {
				r.stats.WalkErrors++
			}
			continue
		}
		p.walkRefs = append(p.walkRefs, refs...)
	}
}

// auditHint compares one retained ref's replica hint against
// authoritative placement, counting rot — and, with a read cache
// wired, rewriting the current set into the cache so readers stop
// paying the stale hint's failover.
func (r *Reaper) auditHint(ref chunk.Ref) {
	r.mu.Lock()
	r.stats.WalkedRefs++
	cache := r.cache
	r.mu.Unlock()
	if len(ref.Replicas) == 0 {
		return
	}
	ids, ok := r.router.Locate(ref.Key)
	if !ok {
		return
	}
	if !hintMatches(ref.Replicas, ids) {
		r.mu.Lock()
		r.stats.StaleHints++
		if cache != nil {
			r.stats.HintsRewritten++
		}
		r.mu.Unlock()
		if cache != nil {
			cache.FillHint(ref.Key, ids)
		}
	}
}

// hintMatches reports whether a metadata replica hint names the same
// provider set as authoritative placement, ignoring order.
func hintMatches(hint []uint32, ids []provider.ID) bool {
	if len(hint) != len(ids) {
		return false
	}
	seen := make(map[provider.ID]int, len(ids))
	for _, id := range ids {
		seen[id]++
	}
	for _, h := range hint {
		id := provider.ID(h)
		if seen[id] == 0 {
			return false
		}
		seen[id]--
	}
	return true
}

// diffOnePending runs the exclusive-chunk diff for one pending version
// and enqueues its reclaimable keys.
func (r *Reaper) diffOnePending() {
	r.mu.Lock()
	p := r.pass
	if p == nil || len(p.pendings) == 0 {
		r.mu.Unlock()
		return
	}
	owner := p.pendings[0]
	p.pendings = p.pendings[1:]
	idx := len(p.ownerList)
	p.ownerList = append(p.ownerList, owner)
	p.failed = append(p.failed, false)
	p.remaining = append(p.remaining, 0)
	r.stats.PendingSeen++
	r.mu.Unlock()

	keys, err := owner.blob.ExclusiveChunks(owner.version)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pass != p {
		return // pass reset while unlocked
	}
	if err != nil {
		r.stats.WalkErrors++
		p.failed[idx] = true
		return
	}
	for _, key := range keys {
		if p.enqueued[key] {
			// Shared with an earlier pending version this pass. If the
			// deletion is still queued, co-own it; if it already ran,
			// inherit its outcome (success needs nothing further, a
			// failure means this version must retry next pass too).
			if _, queued := p.owners[key]; queued {
				p.owners[key] = append(p.owners[key], idx)
				p.remaining[idx]++
			} else if p.failedKeys[key] {
				p.failed[idx] = true
			}
			continue
		}
		if !r.queue.push(key) {
			// Queue full: this version cannot complete this pass; the
			// next pass re-diffs it (deletes already done by then will
			// shrink the set).
			p.failed[idx] = true
			continue
		}
		p.enqueued[key] = true
		p.owners[key] = append(p.owners[key], idx)
		p.remaining[idx]++
	}
}

// drainDeletes executes up to DeletesPerTick queued deletions.
func (r *Reaper) drainDeletes() {
	for i := 0; i < r.cfg.DeletesPerTick; i++ {
		key, ok := r.queue.pop()
		if !ok {
			return
		}
		removed, bytes, err := r.router.DeleteReplicas(key)

		r.mu.Lock()
		r.stats.ReplicasRemoved += int64(removed)
		switch {
		case err == nil:
			r.stats.Deleted++
			r.stats.DeletedBytes += bytes
			r.met.deleted.Inc()
			r.met.deletedBytes.Add(bytes)
		case errors.Is(err, provider.ErrChunkBusy):
			r.stats.DeferredBusy++
		default:
			r.stats.DeletedBytes += bytes
			r.stats.DeleteFailed++
		}
		if p := r.pass; p != nil {
			for _, idx := range p.owners[key] {
				p.remaining[idx]--
				if err != nil {
					p.failed[idx] = true
				}
			}
			delete(p.owners, key)
			if err != nil {
				p.failedKeys[key] = true
			}
		}
		r.mu.Unlock()
	}
}

// maybeFinishPass finalizes the pass once the walk, the diffs and the
// delete queue have all drained: versions whose deletes all succeeded
// are marked reclaimed, the rest stay pending for the next pass.
func (r *Reaper) maybeFinishPass() {
	r.mu.Lock()
	p := r.pass
	if p == nil || !p.walkDone || len(p.pendings) > 0 {
		r.mu.Unlock()
		return
	}
	if r.queue.len() > 0 {
		r.mu.Unlock()
		return
	}
	type claim struct {
		blob    *blob.Blob
		version uint64
	}
	var claims []claim
	for idx, owner := range p.ownerList {
		if !p.failed[idx] && p.remaining[idx] == 0 {
			claims = append(claims, claim{blob: owner.blob, version: owner.version})
		}
	}
	r.pass = nil
	r.stats.Passes++
	if r.met.passSec != nil && !r.passStart.IsZero() {
		r.met.passSec.ObserveSince(r.passStart)
		r.passStart = time.Time{}
	}
	r.mu.Unlock()

	for _, c := range claims {
		if err := c.blob.MarkReclaimed(c.version); err == nil {
			r.mu.Lock()
			r.stats.Reclaimed++
			r.mu.Unlock()
		}
	}
}

// Pass runs ticks until one full collection pass completes and its
// deletions drain; the synchronous "collect now" entry point
// (bsctl gc -sync). Returns the stats snapshot afterward.
func (r *Reaper) Pass() ReaperStats {
	r.mu.Lock()
	start := r.stats.Passes
	r.mu.Unlock()
	const maxIters = 100000
	for i := 0; i < maxIters; i++ {
		r.Tick()
		r.mu.Lock()
		done := r.stats.Passes > start
		r.mu.Unlock()
		if done {
			break
		}
	}
	return r.Stats()
}

// Stats returns a snapshot of the collector counters.
func (r *Reaper) Stats() ReaperStats {
	r.mu.Lock()
	st := r.stats
	r.mu.Unlock()
	st.Enqueued, st.Duplicates, st.Dropped = r.queue.counters()
	st.QueueLen = r.queue.len()
	return st
}

// QueueLen returns the current delete-queue depth.
func (r *Reaper) QueueLen() int { return r.queue.len() }

// Run starts the background wall-clock loop, ticking every
// cfg.Interval until Stop. Starting an already running reaper is a
// no-op.
func (r *Reaper) Run() {
	r.runMu.Lock()
	defer r.runMu.Unlock()
	if r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		ticker := time.NewTicker(r.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				r.Tick()
			}
		}
	}(r.stop, r.done)
}

// Stop halts the background loop and waits for it to exit.
func (r *Reaper) Stop() {
	r.runMu.Lock()
	defer r.runMu.Unlock()
	if r.stop == nil {
		return
	}
	close(r.stop)
	<-r.done
	r.stop, r.done = nil, nil
}
