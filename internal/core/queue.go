package core

import (
	"sync"

	"repro/internal/chunk"
)

// keyQueue is the bounded, deduplicating FIFO of chunk keys shared by
// the background workers: the Healer drains one as its repair queue,
// the Reaper as its delete queue. The backpressure contract is
// identical for both — enqueues of already-queued keys drop as
// duplicates, enqueues into a full queue drop and are counted, and
// dropping is safe because each worker's walk re-finds outstanding
// work on its next pass.
type keyQueue struct {
	mu     sync.Mutex
	depth  int
	q      []chunk.Key
	queued map[chunk.Key]bool

	enqueued   int64
	duplicates int64
	dropped    int64
}

func newKeyQueue(depth int) *keyQueue {
	return &keyQueue{depth: depth, queued: make(map[chunk.Key]bool)}
}

// push enqueues a key, reporting whether it was accepted.
func (q *keyQueue) push(key chunk.Key) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.queued[key] {
		q.duplicates++
		return false
	}
	if len(q.q) >= q.depth {
		q.dropped++
		return false
	}
	q.queued[key] = true
	q.q = append(q.q, key)
	q.enqueued++
	return true
}

// pop dequeues the oldest key.
func (q *keyQueue) pop() (chunk.Key, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.q) == 0 {
		return chunk.Key{}, false
	}
	key := q.q[0]
	q.q = q.q[1:]
	delete(q.queued, key)
	return key, true
}

// len returns the current queue depth.
func (q *keyQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.q)
}

// counters returns the cumulative enqueue accounting.
func (q *keyQueue) counters() (enqueued, duplicates, dropped int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.enqueued, q.duplicates, q.dropped
}
