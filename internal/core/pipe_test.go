package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

func batchedBackend(t *testing.T, cfg vmanager.BatchConfig) *VersioningBackend {
	t.Helper()
	vm := vmanager.New(iosim.CostModel{})
	vm.SetBatching(cfg)
	mgr, _ := provider.NewPool(4, iosim.CostModel{})
	svc := blob.Services{VM: vm, Meta: metadata.NewStore(4, iosim.CostModel{}), Data: provider.NewRouter(mgr)}
	be, err := NewVersioning(svc, 1, segtree.Geometry{Capacity: 1 << 20, Page: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return be
}

// A pipe full of writes must land exactly like sequential WriteList
// calls: all versions published, last writer wins per byte in ticket
// order, stats counted.
func TestWritePipeFlushPublishesAll(t *testing.T) {
	for _, mb := range []int{1, 8} {
		t.Run(fmt.Sprintf("maxbatch=%d", mb), func(t *testing.T) {
			be := batchedBackend(t, vmanager.BatchConfig{MaxBatch: mb, MaxDelay: 200 * time.Microsecond})
			pipe := be.NewPipe(4)
			const n = 20
			// Disjoint extents: pipelined writes race for tickets, so
			// only non-overlapping data is order-independent.
			for i := 0; i < n; i++ {
				data := bytes.Repeat([]byte{byte(i + 1)}, 512)
				vec, err := extent.NewVec(extent.List{{Offset: int64(i) * 512, Length: 512}}, data)
				if err != nil {
					t.Fatal(err)
				}
				if err := pipe.Submit(vec); err != nil {
					t.Fatalf("Submit %d: %v", i, err)
				}
			}
			ver, err := pipe.Flush()
			if err != nil {
				t.Fatalf("Flush: %v", err)
			}
			if ver != n {
				t.Fatalf("flushed version %d, want %d", ver, n)
			}
			latest, err := be.Latest()
			if err != nil {
				t.Fatal(err)
			}
			if latest != n {
				t.Fatalf("latest published %d, want %d", latest, n)
			}
			got, _, err := be.ReadList(extent.List{{Offset: 0, Length: n * 512}})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if b := got[i*512+256]; b != byte(i+1) {
					t.Fatalf("byte of write %d = %d, want %d", i, b, i+1)
				}
			}
			if s := be.Stats(); s.Writes != n {
				t.Fatalf("stats writes = %d, want %d", s.Writes, n)
			}
		})
	}
}

// Concurrent submitters sharing one pipe must be safe and all get
// published.
func TestWritePipeConcurrentSubmitters(t *testing.T) {
	be := batchedBackend(t, vmanager.BatchConfig{MaxBatch: 8, MaxDelay: 100 * time.Microsecond})
	pipe := be.NewPipe(8)
	const writers = 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(w + 1)}, 256)
			vec, err := extent.NewVec(extent.List{{Offset: int64(w) * 128, Length: 256}}, data)
			if err != nil {
				t.Error(err)
				return
			}
			if err := pipe.Submit(vec); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}(w)
	}
	wg.Wait()
	ver, err := pipe.Flush()
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if ver != writers {
		t.Fatalf("flushed version %d, want %d", ver, writers)
	}
}

// An empty pipe must flush cleanly, and the pipe must be reusable.
func TestWritePipeEmptyFlushAndReuse(t *testing.T) {
	be := backend(t)
	pipe := be.NewPipe(2)
	if ver, err := pipe.Flush(); err != nil || ver != 0 {
		t.Fatalf("empty Flush = (%d, %v), want (0, nil)", ver, err)
	}
	data := []byte{1, 2, 3, 4}
	vec, _ := extent.NewVec(extent.List{{Offset: 0, Length: 4}}, data)
	if err := pipe.Submit(vec); err != nil {
		t.Fatal(err)
	}
	if ver, err := pipe.Flush(); err != nil || ver != 1 {
		t.Fatalf("Flush = (%d, %v), want (1, nil)", ver, err)
	}
}

// A failing write must surface on Flush, and Flush must clear the error
// for subsequent use.
func TestWritePipeSurfacesErrors(t *testing.T) {
	be := backend(t)
	pipe := be.NewPipe(2)
	// Write beyond capacity: ticket assignment fails.
	huge, _ := extent.NewVec(extent.List{{Offset: 1 << 30, Length: 4}}, []byte{1, 2, 3, 4})
	if err := pipe.Submit(huge); err != nil {
		t.Fatalf("Submit itself should not fail: %v", err)
	}
	if _, err := pipe.Flush(); err == nil {
		t.Fatal("Flush swallowed the write error")
	}
	// Pipe recovers after the failed flush.
	ok, _ := extent.NewVec(extent.List{{Offset: 0, Length: 4}}, []byte{1, 2, 3, 4})
	if err := pipe.Submit(ok); err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Flush(); err != nil {
		t.Fatalf("Flush after recovery: %v", err)
	}
}

// Regression: Flush on error used to return immediately without waiting
// for publication of the train's surviving writes, so a successfully
// committed peer write was in an unknown publication state while the
// caller handled the error. The fault injected here is an older ticket
// held by a concurrent writer (publication is in ticket order, so the
// pipe's committed write cannot publish until that ticket resolves):
// Flush must block until the surviving maxVer is published even though
// another write in the train failed.
func TestWritePipeFlushWaitsOnErrorPath(t *testing.T) {
	vm := vmanager.New(iosim.CostModel{})
	mgr, _ := provider.NewPool(4, iosim.CostModel{})
	svc := blob.Services{VM: vm, Meta: metadata.NewStore(4, iosim.CostModel{}), Data: provider.NewRouter(mgr)}
	be, err := NewVersioning(svc, 1, segtree.Geometry{Capacity: 1 << 20, Page: 1024})
	if err != nil {
		t.Fatal(err)
	}

	// A concurrent writer holds the oldest ticket: nothing newer can
	// publish until it completes or aborts.
	held, err := vm.AssignTicket(1, extent.List{{Offset: 0, Length: 4}})
	if err != nil {
		t.Fatal(err)
	}

	pipe := be.NewPipe(2)
	// Surviving write: commits a version newer than the held ticket.
	ok, _ := extent.NewVec(extent.List{{Offset: 0, Length: 4}}, []byte{1, 2, 3, 4})
	if err := pipe.Submit(ok); err != nil {
		t.Fatal(err)
	}
	// Failing write: beyond capacity, ticket assignment rejects it.
	huge, _ := extent.NewVec(extent.List{{Offset: 1 << 30, Length: 4}}, []byte{1, 2, 3, 4})
	if err := pipe.Submit(huge); err != nil {
		t.Fatalf("Submit itself should not fail: %v", err)
	}

	// Resolve the held ticket only after a clear delay. A Flush that
	// skips the publication wait returns long before this fires.
	released := make(chan struct{})
	go func() {
		time.Sleep(300 * time.Millisecond)
		close(released)
		if err := vm.Abort(1, held.Version); err != nil {
			t.Errorf("abort held ticket: %v", err)
		}
	}()

	ver, err := pipe.Flush()
	if err == nil {
		t.Fatal("Flush swallowed the write error")
	}
	select {
	case <-released:
	default:
		t.Fatal("Flush returned before the blocking ticket resolved: it did not wait for publication of the surviving write")
	}
	if ver == 0 {
		t.Fatal("Flush lost the surviving version")
	}
	info, err := vm.LatestPublished(1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version < uint64(ver) {
		t.Fatalf("surviving write v%d not published at Flush return (latest %d)", ver, info.Version)
	}
}
