// Self-healing replication: the background control loop that turns the
// failure signals the system already produces into automatic repair,
// with no operator in the loop.
//
// Three feeds converge on one bounded repair queue:
//
//   - The Scrub walk: the healer iterates every published version of
//     every registered blob (falling back to the router's placement map
//     when it has no blob handles), verifying each referenced chunk's
//     replica set with store probes — both the replica COUNT and the
//     failure-domain SPREAD (copies co-located in one domain while a
//     spare live domain exists are repair work too). Probe errors feed
//     the provider HealthMonitor, so scrub traffic itself trips failure
//     detection.
//   - Read-repair: a degraded read (failover was needed) or a write
//     that quorum-committed short of R copies reports the exact chunk
//     through the router's degraded handler.
//   - Probation probes: each tick also advances the health monitor, so
//     revived machines return to service.
//
// # Backpressure model
//
// Repair traffic must never starve foreground I/O, so every stage is
// bounded and lossy-but-convergent:
//
//   - The queue holds at most QueueDepth distinct chunks. Enqueues of
//     already-queued chunks are dropped as duplicates; enqueues into a
//     full queue are dropped and counted (Dropped). Dropping is safe
//     because the queue is an accelerator, not the source of truth:
//     the scrub walk re-finds any still-degraded chunk on its next
//     pass, so a dropped key is delayed, never lost.
//   - Each tick verifies at most ScrubChunksPerTick chunk references
//     and executes at most RepairsPerTick re-replications. Repair
//     bandwidth (one full chunk read + missing copies written per
//     repair) is therefore capped per tick, and foreground writes
//     queued on the same provider meters see bounded added service
//     time instead of a repair storm.
//   - A failed repair is not retried in place: the chunk is dropped
//     and picked up again by a later scrub pass, so a provider pool
//     too small to restore R cannot spin the worker.
//
// Convergence: after a provider loss, every chunk that lost a copy is
// found within one full scrub pass (pass length = total refs /
// ScrubChunksPerTick ticks) and repaired within queue-drain time
// (degraded chunks / RepairsPerTick ticks); read-repair short-circuits
// the wait for whatever the foreground workload actually touches.
package core

import (
	"errors"
	"sync"
	"time"

	"repro/internal/blob"
	"repro/internal/chunk"
	"repro/internal/metrics"
	"repro/internal/provider"
	"repro/internal/vmanager"
)

// HealRouter is the slice of the provider router the healer drives:
// replica verification and single-chunk re-replication. Implemented by
// *provider.Router.
type HealRouter interface {
	VerifyReplicas(key chunk.Key) (live, want int, known bool)
	RepairChunk(key chunk.Key) (provider.RepairOutcome, int, error)
	Keys() []chunk.Key
	UnderReplicated() int
}

var _ HealRouter = (*provider.Router)(nil)

// spreadChecker is the optional slice of the router the scrubber uses
// to police placement quality beyond the live count: a chunk at full
// live degree is still enqueued when its copies co-locate in fewer
// failure domains than the pool could spread them over, or when its
// RECORDED set diverges from the degree (stale dead entries,
// above-degree leftovers of a failed spread-move eviction — both
// invisible to the probe-based live count). *provider.Router
// implements it; the check is flag-based and cheap (no store probes),
// with the live-domain count computed once per scrub step rather than
// per chunk.
type spreadChecker interface {
	LiveDomains() int
	PlacementSuspect(key chunk.Key, liveDomains int) bool
}

var _ spreadChecker = (*provider.Router)(nil)

// ScrubOrder selects which end of the version history a scrub pass
// starts from.
type ScrubOrder int

// Scrub orders. OldestFirst is the historical default; NewestFirst
// prioritizes recently written versions, which are the most likely to
// be under-replicated right after a provider loss (their writes may
// have quorum-committed short of R against the dying machine), so the
// vulnerability window for fresh data shrinks.
const (
	OldestFirst ScrubOrder = iota
	NewestFirst
)

func (o ScrubOrder) String() string {
	if o == NewestFirst {
		return "newest"
	}
	return "oldest"
}

// HealerConfig tunes the control loop. Zero fields select defaults.
type HealerConfig struct {
	// ScrubChunksPerTick caps replica verifications per tick (default 64).
	ScrubChunksPerTick int
	// RepairsPerTick caps re-replications per tick (default 4).
	RepairsPerTick int
	// QueueDepth bounds the repair queue (default 256 distinct chunks).
	QueueDepth int
	// Interval is the background loop period for Run (default 100ms).
	Interval time.Duration
	// Order is the scrub walk direction over each blob's versions
	// (default OldestFirst).
	Order ScrubOrder
}

func (c HealerConfig) withDefaults() HealerConfig {
	if c.ScrubChunksPerTick <= 0 {
		c.ScrubChunksPerTick = 64
	}
	if c.RepairsPerTick <= 0 {
		c.RepairsPerTick = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	return c
}

// HealerStats are cumulative control-loop counters.
type HealerStats struct {
	Ticks          int64 // control-loop iterations
	ScrubPasses    int64 // completed walks over every published version
	ScrubbedChunks int64 // replica sets verified
	ScrubErrors    int64 // versions whose metadata could not be resolved
	Enqueued       int64 // chunks accepted into the repair queue
	Duplicates     int64 // enqueues dropped because already queued
	Dropped        int64 // enqueues dropped because the queue was full
	Repaired       int64 // chunks restored to full degree
	RepairFailed   int64 // repair attempts that failed or stayed partial
	RepairHealthy  int64 // queued chunks found already at full degree
	Lost           int64 // chunks with no surviving replica
	SpreadFound    int64 // full-live-count chunks accepted into the queue for a suspect placement (spread violation, stale entry, above-degree set)
	QueueLen       int   // current queue length
}

// scrubUnit is one pending unit of the current scrub pass: a published
// version of a registered blob, or (blob == nil) the raw placement walk.
type scrubUnit struct {
	blob    *blob.Blob
	version uint64
}

// Healer is the background self-healing loop: scrubber, repair queue
// and repair worker in one tickable object. Drive it either with Run
// (wall-clock background goroutine, blobseerd) or by calling Tick from
// a virtual-time loop (tests, benchmarks).
type Healer struct {
	router HealRouter
	health *provider.HealthMonitor // optional
	cfg    HealerConfig

	queue *keyQueue // bounded dedup repair queue (shared machinery, queue.go)

	mu        sync.Mutex
	targets   []*blob.Blob
	pass      []scrubUnit          // remaining units of the current pass
	refs      []chunk.Key          // refs of the unit being scrubbed
	passSeen  map[chunk.Key]string // dedup within one pass (key -> "")
	passStart time.Time            // wall-clock start of the current pass (metrics only)
	stats     HealerStats

	// met holds nil-tolerant metric handles, nil until SetMetrics.
	met struct {
		queueDepth *metrics.Gauge
		passSec    *metrics.Histogram
	}

	runMu sync.Mutex
	stop  chan struct{}
	done  chan struct{}
}

// SetMetrics wires the healer's repair-queue depth gauge (sampled per
// tick) and scrub-pass duration histogram into reg. Call before the
// loop runs; a nil registry leaves metrics disabled.
func (h *Healer) SetMetrics(reg *metrics.Registry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.met.queueDepth = reg.Gauge("bs_heal_queue_depth")
	h.met.passSec = reg.Histogram("bs_heal_pass_seconds", nil)
}

// NewHealer builds a healer over the given router. health may be nil
// (no error-driven detection; scrubbing still works off down flags and
// probes).
func NewHealer(router HealRouter, health *provider.HealthMonitor, cfg HealerConfig) *Healer {
	cfg = cfg.withDefaults()
	return &Healer{
		router: router,
		health: health,
		cfg:    cfg,
		queue:  newKeyQueue(cfg.QueueDepth),
	}
}

// Config returns the effective (defaulted) configuration.
func (h *Healer) Config() HealerConfig { return h.cfg }

// RegisterBlob adds a blob whose published versions the scrub walk
// covers. With no registered blobs the walk falls back to the router's
// placement map (every chunk it knows), which is what a data-only
// daemon uses.
func (h *Healer) RegisterBlob(b *blob.Blob) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.targets = append(h.targets, b)
}

// EnqueueRepair adds one chunk to the bounded repair queue; it is the
// router's degraded handler (read-repair) and the scrubber's sink.
// Never blocks: duplicates and overflow are dropped (and counted) —
// see the backpressure model above.
func (h *Healer) EnqueueRepair(key chunk.Key) {
	h.queue.push(key)
}

// Tick runs one bounded control-loop iteration: advance health
// probation probes, drain up to RepairsPerTick queued repairs, then
// verify up to ScrubChunksPerTick chunk references of the scrub walk.
func (h *Healer) Tick() {
	h.mu.Lock()
	h.stats.Ticks++
	h.mu.Unlock()
	if h.health != nil {
		h.health.Tick()
	}
	h.drainRepairs()
	h.scrubStep()
	h.met.queueDepth.Set(int64(h.queue.len()))
}

// drainRepairs executes up to RepairsPerTick queued re-replications.
func (h *Healer) drainRepairs() {
	for i := 0; i < h.cfg.RepairsPerTick; i++ {
		key, ok := h.queue.pop()
		if !ok {
			return
		}

		outcome, _, _ := h.router.RepairChunk(key)

		h.mu.Lock()
		switch outcome {
		case provider.RepairRepaired:
			h.stats.Repaired++
		case provider.RepairHealthy:
			h.stats.RepairHealthy++
		case provider.RepairLost:
			h.stats.Lost++
		default:
			// Partial/failed: do not requeue — the next scrub pass
			// re-finds it, so a shrunken pool cannot spin the worker.
			h.stats.RepairFailed++
		}
		h.mu.Unlock()
	}
}

// scrubStep verifies up to ScrubChunksPerTick chunk refs, refilling the
// pass work list as needed. Beyond the replica count, a chunk whose
// copies co-locate in one failure domain while a spare domain exists
// is enqueued too — repair restores the spread invariant, not just the
// degree.
func (h *Healer) scrubStep() {
	liveDoms := 0
	spread, _ := h.router.(spreadChecker)
	if spread != nil {
		liveDoms = spread.LiveDomains()
	}
	budget := h.cfg.ScrubChunksPerTick
	for budget > 0 {
		key, ok := h.nextRef()
		if !ok {
			return // pass exhausted this tick; next tick starts a new one
		}
		budget--
		live, want, known := h.router.VerifyReplicas(key)
		h.mu.Lock()
		h.stats.ScrubbedChunks++
		h.mu.Unlock()
		if !known {
			continue
		}
		if live != want {
			// Below degree: lost copies to restore. Above degree: an
			// extra copy left by a spread move whose eviction failed,
			// for RepairChunk to trim.
			h.queue.push(key)
			continue
		}
		if liveDoms > 1 && spread.PlacementSuspect(key, liveDoms) && h.queue.push(key) {
			h.mu.Lock()
			h.stats.SpreadFound++
			h.mu.Unlock()
		}
	}
}

// nextRef pops the next chunk key of the scrub walk, resolving one
// version's metadata at a time and deduplicating within the pass. ok is
// false when the current pass just ended (the next call starts a new
// pass — callers stop for this tick so pass boundaries are visible in
// virtual time).
func (h *Healer) nextRef() (chunk.Key, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if len(h.refs) > 0 {
			key := h.refs[0]
			h.refs = h.refs[1:]
			return key, true
		}
		if len(h.pass) == 0 {
			if h.passSeen != nil {
				// A pass was in progress and is now complete.
				h.completePassLocked()
				return chunk.Key{}, false
			}
			h.startPassLocked()
			if len(h.pass) == 0 && len(h.refs) == 0 {
				// Nothing to scrub: an empty walk still counts as a
				// completed pass, so Pass() terminates promptly on an
				// empty deployment.
				h.completePassLocked()
				return chunk.Key{}, false
			}
			continue
		}
		unit := h.pass[0]
		h.pass = h.pass[1:]
		h.loadUnitLocked(unit)
	}
}

// completePassLocked counts one finished scrub pass and observes its
// wall-clock duration.
func (h *Healer) completePassLocked() {
	h.stats.ScrubPasses++
	h.passSeen = nil
	if h.met.passSec != nil && !h.passStart.IsZero() {
		h.met.passSec.ObserveSince(h.passStart)
		h.passStart = time.Time{}
	}
}

// startPassLocked snapshots the work list for a new scrub pass.
func (h *Healer) startPassLocked() {
	if h.met.passSec != nil {
		h.passStart = time.Now()
	}
	h.passSeen = make(map[chunk.Key]string)
	h.pass = h.pass[:0]
	if len(h.targets) == 0 {
		// Data-only deployment: walk the placement map directly.
		h.refs = append(h.refs[:0], h.router.Keys()...)
		return
	}
	for _, b := range h.targets {
		versions, err := b.Versions()
		if err != nil {
			h.stats.ScrubErrors++
			continue
		}
		if h.cfg.Order == NewestFirst {
			for i := len(versions) - 1; i >= 0; i-- {
				h.pass = append(h.pass, scrubUnit{blob: b, version: versions[i]})
			}
		} else {
			for _, v := range versions {
				h.pass = append(h.pass, scrubUnit{blob: b, version: v})
			}
		}
	}
}

// loadUnitLocked resolves one version's chunk refs into the ref buffer,
// skipping keys already verified this pass. Resolution drops the lock
// (metadata I/O can be metered and slow), so the pass may have been
// reset meanwhile (Pass() restarts the walk); the refs then belong to
// an abandoned pass and are discarded.
func (h *Healer) loadUnitLocked(unit scrubUnit) {
	h.mu.Unlock()
	refs, err := unit.blob.ChunkRefs(unit.version)
	h.mu.Lock()
	if err != nil {
		// A version dropped by the retention policy between pass
		// snapshot and resolution is not an error: the lifecycle
		// removed it from the scrub set on purpose.
		if !errors.Is(err, vmanager.ErrVersionDropped) {
			h.stats.ScrubErrors++
		}
		return
	}
	if h.passSeen == nil {
		return // pass was reset while unlocked
	}
	for _, ref := range refs {
		if _, seen := h.passSeen[ref.Key]; seen {
			continue
		}
		h.passSeen[ref.Key] = ""
		h.refs = append(h.refs, ref.Key)
	}
}

// Pass runs ticks until one full scrub pass completes AND the repair
// queue is drained; it is the synchronous "scrub now" entry point
// (bsctl scrub -sync). A chunk that cannot currently be repaired
// (lost, or no spare provider) is re-found and re-enqueued by every
// pass, so "queue drained" may be unreachable — after three full
// passes Pass stops anyway and returns what it saw, leaving the
// unrepairable remainder to the background loop. Returns the stats
// snapshot afterward.
func (h *Healer) Pass() HealerStats {
	h.mu.Lock()
	start := h.stats.ScrubPasses
	// Restart cleanly so the pass covers everything from now.
	h.pass = nil
	h.refs = nil
	h.passSeen = nil
	h.mu.Unlock()
	const maxIters = 100000
	for i := 0; i < maxIters; i++ {
		h.Tick()
		h.mu.Lock()
		passes := h.stats.ScrubPasses - start
		h.mu.Unlock()
		if (passes >= 1 && h.queue.len() == 0) || passes >= 3 {
			break
		}
	}
	return h.Stats()
}

// Stats returns a snapshot of the control-loop counters.
func (h *Healer) Stats() HealerStats {
	h.mu.Lock()
	st := h.stats
	h.mu.Unlock()
	st.Enqueued, st.Duplicates, st.Dropped = h.queue.counters()
	st.QueueLen = h.queue.len()
	return st
}

// QueueLen returns the current repair-queue depth.
func (h *Healer) QueueLen() int { return h.queue.len() }

// Run starts the background wall-clock loop, ticking every
// cfg.Interval until Stop. Starting an already running healer is a
// no-op.
func (h *Healer) Run() {
	h.runMu.Lock()
	defer h.runMu.Unlock()
	if h.stop != nil {
		return
	}
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		ticker := time.NewTicker(h.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				h.Tick()
			}
		}
	}(h.stop, h.done)
}

// Stop halts the background loop and waits for it to exit.
func (h *Healer) Stop() {
	h.runMu.Lock()
	defer h.runMu.Unlock()
	if h.stop == nil {
		return
	}
	close(h.stop)
	<-h.done
	h.stop, h.done = nil, nil
}
