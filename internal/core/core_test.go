package core

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/blob"
	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

func services() blob.Services {
	mgr, _ := provider.NewPool(4, iosim.CostModel{})
	return blob.Services{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(4, iosim.CostModel{}),
		Data: provider.NewRouter(mgr),
	}
}

func backend(t *testing.T) *VersioningBackend {
	t.Helper()
	be, err := NewVersioning(services(), 1, segtree.Geometry{Capacity: 1 << 20, Page: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return be
}

func TestNameAndInterfaces(t *testing.T) {
	be := backend(t)
	if be.Name() != "versioning" {
		t.Fatalf("name = %q", be.Name())
	}
	var _ Backend = be
	var _ Versioned = be
}

func TestWriteListReadListRoundTrip(t *testing.T) {
	be := backend(t)
	l := extent.List{{Offset: 10, Length: 100}, {Offset: 5000, Length: 50}}
	buf := bytes.Repeat([]byte{0xEE}, int(l.TotalLength()))
	vec, _ := extent.NewVec(l, buf)
	v, err := be.WriteList(vec)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("version = %d", v)
	}
	got, ver, err := be.ReadList(l)
	if err != nil || ver != 1 {
		t.Fatalf("ReadList ver=%d err=%v", ver, err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("data mismatch")
	}
}

func TestReadListAtHistoricalSnapshots(t *testing.T) {
	be := backend(t)
	l := extent.List{{Offset: 0, Length: 8}}
	for round := 1; round <= 3; round++ {
		buf := bytes.Repeat([]byte{byte(round)}, 8)
		vec, _ := extent.NewVec(l, buf)
		if _, err := be.WriteList(vec); err != nil {
			t.Fatal(err)
		}
	}
	for v := Version(1); v <= 3; v++ {
		got, err := be.ReadListAt(v, l)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(v) {
			t.Fatalf("snapshot %d data = %d", v, got[0])
		}
	}
	latest, err := be.Latest()
	if err != nil || latest != 3 {
		t.Fatalf("latest = %d, %v", latest, err)
	}
	vs, err := be.Versions()
	if err != nil || len(vs) != 4 {
		t.Fatalf("versions = %v, %v", vs, err)
	}
}

func TestSizeAndStats(t *testing.T) {
	be := backend(t)
	vec, _ := extent.NewVec(extent.List{{Offset: 100, Length: 20}}, make([]byte, 20))
	if _, err := be.WriteList(vec); err != nil {
		t.Fatal(err)
	}
	sz, err := be.Size()
	if err != nil || sz != 120 {
		t.Fatalf("size = %d, %v", sz, err)
	}
	if _, _, err := be.ReadList(extent.List{{Offset: 0, Length: 10}}); err != nil {
		t.Fatal(err)
	}
	st := be.Stats()
	if st.Writes != 1 || st.BytesWritten != 20 || st.Reads != 1 || st.BytesRead != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOpenVersioning(t *testing.T) {
	svc := services()
	if _, err := NewVersioning(svc, 7, segtree.Geometry{Capacity: 1 << 14, Page: 256}); err != nil {
		t.Fatal(err)
	}
	be, err := OpenVersioning(svc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Latest(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenVersioning(svc, 99); err == nil {
		t.Fatal("open unknown blob must fail")
	}
	if _, err := NewVersioning(svc, 7, segtree.Geometry{Capacity: 1 << 14, Page: 256}); err == nil {
		t.Fatal("duplicate create must fail")
	}
}

func TestSetNoWait(t *testing.T) {
	be := backend(t)
	be.SetNoWait(true)
	vec, _ := extent.NewVec(extent.List{{Offset: 0, Length: 4}}, []byte{1, 2, 3, 4})
	if _, err := be.WriteList(vec); err != nil {
		t.Fatal(err)
	}
	be.SetNoWait(false)
	if _, err := be.WriteList(vec); err != nil {
		t.Fatal(err)
	}
	if v, _ := be.Latest(); v != 2 {
		t.Fatalf("latest = %d", v)
	}
}

// TestConcurrentAtomicSemantics pins the Backend contract: overlapping
// concurrent WriteList calls never interleave.
func TestConcurrentAtomicSemantics(t *testing.T) {
	be := backend(t)
	l := extent.List{{Offset: 0, Length: 256}, {Offset: 4096, Length: 256}}
	const writers = 12
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte(w + 1)}, int(l.TotalLength()))
			vec, _ := extent.NewVec(l, buf)
			if _, err := be.WriteList(vec); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	// Every published snapshot must be single-valued over l.
	latest, _ := be.Latest()
	for v := Version(1); v <= latest; v++ {
		got, err := be.ReadListAt(v, l)
		if err != nil {
			t.Fatal(err)
		}
		first := got[0]
		for i, b := range got {
			if b != first {
				t.Fatalf("snapshot %d interleaved at byte %d", v, i)
			}
		}
	}
}

func TestScrub(t *testing.T) {
	mgr, _ := provider.NewPool(4, iosim.CostModel{})
	router := provider.NewRouter(mgr)
	router.SetReplicas(2)
	svc := blob.Services{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(4, iosim.CostModel{}),
		Data: router,
	}
	be, err := NewVersioning(svc, 1, segtree.Geometry{Capacity: 1 << 20, Page: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		buf := bytes.Repeat([]byte{byte(i + 1)}, 2000)
		vec, _ := extent.NewVec(extent.List{{Offset: int64(i) * 1500, Length: 2000}}, buf)
		if _, err := be.WriteList(vec); err != nil {
			t.Fatal(err)
		}
	}
	// Healthy scrub covers the initial empty snapshot plus 3 writes.
	n, err := be.Scrub()
	if err != nil || n != 4 {
		t.Fatalf("Scrub = %d, %v", n, err)
	}
	// One provider down: replicated snapshots still scrub clean.
	if err := mgr.SetDown(1, true); err != nil {
		t.Fatal(err)
	}
	n, err = be.Scrub()
	if err != nil || n != 4 {
		t.Fatalf("degraded Scrub = %d, %v", n, err)
	}
	// Both holders of a replica pair down beats R=2: the scrub must
	// report the loss (round-robin placement pairs 0 with 1).
	if err := mgr.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	if _, err := be.Scrub(); err == nil {
		t.Fatal("scrub with two providers down at R=2 must fail")
	}
}
