package core_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/chunk"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/provider"
	"repro/internal/workload"
)

// fakeHealRouter scripts replica health for queue/rate-limit tests.
type fakeHealRouter struct {
	mu          sync.Mutex
	keys        []chunk.Key
	degraded    map[chunk.Key]bool
	verifyCalls int
	repairCalls []chunk.Key
}

func (f *fakeHealRouter) VerifyReplicas(key chunk.Key) (int, int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.verifyCalls++
	if f.degraded[key] {
		return 1, 2, true
	}
	return 2, 2, true
}

func (f *fakeHealRouter) RepairChunk(key chunk.Key) (provider.RepairOutcome, int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.repairCalls = append(f.repairCalls, key)
	delete(f.degraded, key)
	return provider.RepairRepaired, 1, nil
}

func (f *fakeHealRouter) Keys() []chunk.Key {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]chunk.Key(nil), f.keys...)
}

func (f *fakeHealRouter) UnderReplicated() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.degraded)
}

func fakeKeys(n int) []chunk.Key {
	keys := make([]chunk.Key, n)
	for i := range keys {
		keys[i] = chunk.Key{Blob: 1, Version: uint64(i + 1)}
	}
	return keys
}

// TestRepairQueueBounds: the queue holds at most QueueDepth distinct
// chunks; duplicates and overflow are dropped and counted, never
// blocking the caller.
func TestRepairQueueBounds(t *testing.T) {
	h := core.NewHealer(&fakeHealRouter{}, nil, core.HealerConfig{QueueDepth: 4})
	keys := fakeKeys(10)
	for _, k := range keys {
		h.EnqueueRepair(k)
	}
	h.EnqueueRepair(keys[0]) // already queued
	st := h.Stats()
	if st.Enqueued != 4 || st.Dropped != 6 || st.Duplicates != 1 || st.QueueLen != 4 {
		t.Fatalf("queue stats = %+v, want 4 enqueued / 6 dropped / 1 duplicate", st)
	}
}

// TestRepairRateLimit: each tick drains at most RepairsPerTick queued
// chunks — the deterministic half of the repair-storm guard.
func TestRepairRateLimit(t *testing.T) {
	f := &fakeHealRouter{degraded: make(map[chunk.Key]bool)}
	h := core.NewHealer(f, nil, core.HealerConfig{RepairsPerTick: 3, QueueDepth: 100, ScrubChunksPerTick: 1})
	for _, k := range fakeKeys(10) {
		f.degraded[k] = true
		h.EnqueueRepair(k)
	}
	for tick := 1; tick <= 4; tick++ {
		h.Tick()
		want := 3 * tick
		if want > 10 {
			want = 10
		}
		f.mu.Lock()
		got := len(f.repairCalls)
		f.mu.Unlock()
		if got != want {
			t.Fatalf("after tick %d: %d repairs executed, want %d", tick, got, want)
		}
	}
	if st := h.Stats(); st.Repaired != 10 || st.QueueLen != 0 {
		t.Fatalf("final stats = %+v", st)
	}
}

// TestScrubRateAndPasses: the placement-walk scrub verifies at most
// ScrubChunksPerTick chunks per tick, finds exactly the degraded ones,
// and counts completed passes.
func TestScrubRateAndPasses(t *testing.T) {
	f := &fakeHealRouter{keys: fakeKeys(25), degraded: make(map[chunk.Key]bool)}
	f.degraded[f.keys[3]] = true
	f.degraded[f.keys[17]] = true
	h := core.NewHealer(f, nil, core.HealerConfig{ScrubChunksPerTick: 10, RepairsPerTick: 1, QueueDepth: 16})

	h.Tick() // verifies 10
	f.mu.Lock()
	calls := f.verifyCalls
	f.mu.Unlock()
	// The repair worker may also verify (RepairChunk is scripted, not
	// counted); scrub verification alone is capped at 10.
	if calls > 10 {
		t.Fatalf("tick 1 verified %d chunks, cap is 10", calls)
	}
	for i := 0; i < 6; i++ {
		h.Tick()
	}
	st := h.Stats()
	if st.ScrubPasses == 0 {
		t.Fatalf("no completed scrub pass after 7 ticks over 25 keys at rate 10: %+v", st)
	}
	if st.Enqueued != 2 {
		t.Fatalf("scrub enqueued %d chunks, want exactly the 2 degraded ones", st.Enqueued)
	}
	if f.UnderReplicated() != 0 {
		t.Fatalf("%d chunks still degraded after the pass", f.UnderReplicated())
	}
}

// TestHealerScrubWalksPublishedVersions: with a registered blob the
// scrub walk resolves published versions' metadata, verifies every
// referenced chunk once per pass, and heals a store-level kill
// end-to-end on a real deployment.
func TestHealerScrubWalksPublishedVersions(t *testing.T) {
	env := cluster.Default()
	env.Replicas = 2
	env.SelfHeal = true
	env.FaultInjection = true
	env.FailThreshold = 2
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		t.Fatal(err)
	}
	be, err := svc.Backend(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32<<10)
	for i := 0; i < 8; i++ {
		for j := range buf {
			buf[j] = byte(i + 1)
		}
		if _, err := be.WriteList(mustVec(t, int64(i)*(32<<10), buf)); err != nil {
			t.Fatal(err)
		}
	}
	svc.Faults[0].SetDown(true)
	for i := 0; i < 200 && svc.Router.UnderReplicated() > 0; i++ {
		svc.Healer.Tick()
	}
	if n := svc.Router.UnderReplicated(); n != 0 {
		t.Fatalf("%d chunks under-replicated after healing: %+v", n, svc.Healer.Stats())
	}
	st := svc.Healer.Stats()
	if st.ScrubbedChunks == 0 || st.Repaired == 0 {
		t.Fatalf("healer did no work: %+v", st)
	}
	if svc.Health.State(0) != provider.Down {
		t.Fatalf("store-level kill not detected: provider 0 is %s", svc.Health.State(0))
	}
	if _, err := be.Scrub(); err != nil {
		t.Fatalf("scrub after self-heal: %v", err)
	}
}

func mustVec(t *testing.T, off int64, data []byte) extent.Vec {
	t.Helper()
	vec, err := extent.NewVec(extent.List{{Offset: off, Length: int64(len(data))}}, data)
	if err != nil {
		t.Fatal(err)
	}
	return vec
}

// TestRepairStormLatencyGuard is the backpressure acceptance test:
// with a provider lost and a full repair backlog draining at the
// configured rate, concurrent foreground WriteList latency (on the
// metered virtual-time model) must degrade by less than the configured
// bound. This is what "repair cannot starve foreground writes" means
// operationally.
func TestRepairStormLatencyGuard(t *testing.T) {
	const latencyBound = 4.0 // storm-mean / healthy-mean must stay under this

	env := cluster.Default()
	env.Providers = 8
	env.Replicas = 2
	env.SelfHeal = true
	env.FaultInjection = true
	env.FailThreshold = 2
	env.ScrubRate = 16
	env.RepairRate = 2 // the knob under test: repair trickles, writes flow
	// A deliberately slow cost model: per-op virtual time two orders
	// above scheduler/instrumentation noise, so the measured ratio
	// reflects metered service time, not -race overhead.
	env.DataModel = iosim.CostModel{PerOp: 200 * time.Microsecond, BytesPerSec: 256 << 20}
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.OverlapSpec{Clients: 4, Regions: 16, RegionSize: 16 << 10, OverlapFraction: 0.5}
	be, err := svc.Backend(1, spec.FileSpan())
	if err != nil {
		t.Fatal(err)
	}

	writePhase := func(rounds int) time.Duration {
		start := time.Now()
		n := 0
		for r := 0; r < rounds; r++ {
			for c := 0; c < spec.Clients; c++ {
				exts := spec.ExtentsFor(c)
				vec, err := extent.NewVec(exts[:1], make([]byte, exts[0].Length))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := be.WriteList(vec); err != nil {
					t.Fatal(err)
				}
				n++
			}
		}
		return time.Since(start) / time.Duration(n)
	}

	// Populate, then measure healthy baseline latency.
	writePhase(4)
	healthy := writePhase(8)

	// Kill a provider and FLOOD the repair queue: every chunk the
	// router knows is enqueued at once (far more than are degraded).
	// The healer drains it at RepairsPerTick per tick, one tick every
	// 2ms — the rate limit is (repairs x chunk I/O) / interval, which
	// is what keeps repair bandwidth off the foreground meters.
	svc.Faults[2].SetDown(true)
	for _, key := range svc.Router.Keys() {
		svc.Healer.EnqueueRepair(key)
	}
	flooded := svc.Healer.QueueLen()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				svc.Healer.Tick()
			}
		}
	}()
	storm := writePhase(8)
	close(stop)
	wg.Wait()

	ratio := float64(storm) / float64(healthy)
	t.Logf("healthy %v, under repair storm %v (%.2fx, bound %.1fx); flooded %d; healer %+v",
		healthy, storm, ratio, latencyBound, flooded, svc.Healer.Stats())
	if ratio > latencyBound {
		t.Fatalf("foreground write latency degraded %.2fx under repair storm, bound is %.1fx — repair is starving writes",
			ratio, latencyBound)
	}
	if flooded == 0 {
		t.Fatal("flood enqueued nothing — the guard measured an idle healer")
	}
	// Drain the rest so the run also proves the flood converges.
	for i := 0; i < 5000 && svc.Healer.QueueLen() > 0; i++ {
		svc.Healer.Tick()
	}
	if st := svc.Healer.Stats(); st.Repaired == 0 || st.QueueLen != 0 {
		t.Fatalf("flood did not converge: %+v", st)
	}
}

// TestHealerPass: the synchronous Pass covers a full scrub walk and
// drains the queue — the bsctl scrub -sync path.
func TestHealerPass(t *testing.T) {
	f := &fakeHealRouter{keys: fakeKeys(40), degraded: make(map[chunk.Key]bool)}
	for _, k := range f.keys[:7] {
		f.degraded[k] = true
	}
	h := core.NewHealer(f, nil, core.HealerConfig{ScrubChunksPerTick: 4, RepairsPerTick: 2, QueueDepth: 8})
	st := h.Pass()
	if f.UnderReplicated() != 0 {
		t.Fatalf("Pass left %d chunks degraded", f.UnderReplicated())
	}
	if st.QueueLen != 0 || st.ScrubPasses == 0 {
		t.Fatalf("Pass stats = %+v", st)
	}
	if fmt.Sprint(st.Repaired) != "7" {
		t.Fatalf("Pass repaired %d chunks, want 7", st.Repaired)
	}
}

// TestHealerPassEmptyDeployment: a sync scrub pass over a deployment
// with no chunks must terminate promptly (an empty walk is a complete
// pass), not spin to the iteration cap — the bsctl scrub -sync path on
// a fresh daemon.
func TestHealerPassEmptyDeployment(t *testing.T) {
	h := core.NewHealer(&fakeHealRouter{}, nil, core.HealerConfig{})
	done := make(chan core.HealerStats, 1)
	go func() { done <- h.Pass() }()
	select {
	case st := <-done:
		if st.ScrubPasses == 0 {
			t.Fatalf("empty pass not counted: %+v", st)
		}
		if st.Ticks > 10 {
			t.Fatalf("empty Pass burned %d ticks", st.Ticks)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pass() on an empty deployment did not return")
	}
}

// TestHealerPassWithLostChunk: Pass() must terminate promptly even
// when a chunk is permanently unrepairable (no surviving replica) —
// the scrubber re-enqueues it every pass, so "queue drained" alone
// would never hold.
func TestHealerPassWithLostChunk(t *testing.T) {
	mgr, faults := provider.NewFaultPool(3, iosim.CostModel{})
	r := provider.NewRouter(mgr)
	r.SetReplicas(2)
	key := chunk.Key{Blob: 1, Version: 1, Index: 0}
	ids, err := r.Put(key, []byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids { // every copy dies: the chunk is lost
		faults[id].SetDown(true)
	}
	h := core.NewHealer(r, nil, core.HealerConfig{ScrubChunksPerTick: 16, RepairsPerTick: 4})
	done := make(chan core.HealerStats, 1)
	go func() { done <- h.Pass() }()
	select {
	case st := <-done:
		if st.Lost == 0 {
			t.Fatalf("lost chunk not reported: %+v", st)
		}
		if st.Ticks > 100 {
			t.Fatalf("Pass over an unrepairable chunk burned %d ticks", st.Ticks)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Pass() with a lost chunk did not return")
	}
}
