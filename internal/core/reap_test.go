package core_test

import (
	"errors"
	"testing"

	"repro/internal/chunk"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/provider"
)

// gcCluster boots a replicated deployment with the reaper enabled
// (manual retention unless retainLast > 0) and writes n versions, each
// fully overwriting the first page and extending into its own page, so
// old versions have both exclusive chunks (the overwritten page 0
// copies) and shared ones (their private pages stay visible until
// overwritten — they aren't — plus borrowed subtrees).
func gcCluster(t *testing.T, n, retainLast int) (*cluster.Versioning, *core.VersioningBackend) {
	t.Helper()
	env := cluster.Default()
	env.Providers = 4
	env.Replicas = 2
	env.GC = true
	env.RetainLast = retainLast
	env.GCRate = 8
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		t.Fatal(err)
	}
	be, err := svc.Backend(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	page := env.ChunkSize
	for i := 0; i < n; i++ {
		l := extent.List{
			{Offset: 0, Length: page},                     // contested: every version rewrites page 0
			{Offset: int64(i+1) * page, Length: page / 2}, // private page per version
		}
		buf := make([]byte, l.TotalLength())
		for j := range buf {
			buf[j] = byte(i + 1)
		}
		vec, err := extent.NewVec(l, buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := be.WriteList(vec); err != nil {
			t.Fatal(err)
		}
	}
	return svc, be
}

func poolUsage(svc *cluster.Versioning) (chunks int, bytes int64) {
	for _, u := range svc.Router.Usage() {
		if !u.Down {
			chunks += u.Chunks
			bytes += u.Bytes
		}
	}
	return chunks, bytes
}

func TestReaperReclaimsExclusiveChunksOnly(t *testing.T) {
	svc, be := gcCluster(t, 6, 0)
	b := be.Blob()
	dropped, err := b.Retain(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 4 {
		t.Fatalf("dropped %v", dropped)
	}
	// The expected reclaim set, computed independently before any
	// deletion: each dropped version's exclusive chunks.
	expect := make(map[chunk.Key]bool)
	for _, v := range dropped {
		keys, err := b.ExclusiveChunks(v)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			expect[k] = true
		}
	}
	if len(expect) == 0 {
		t.Fatal("drop schedule produced no exclusive chunks — test lost its teeth")
	}
	chunksBefore, bytesBefore := poolUsage(svc)

	st := svc.Reaper.Pass()
	if st.Reclaimed != 4 || st.Deleted != int64(len(expect)) {
		t.Fatalf("pass reclaimed %d versions / %d chunks, want 4 / %d: %+v",
			st.Reclaimed, st.Deleted, len(expect), st)
	}
	info, err := b.GCInfo()
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Pending) != 0 || info.Reclaimed != 4 {
		t.Fatalf("pending %+v, reclaimed %d", info.Pending, info.Reclaimed)
	}

	// Exclusive chunks are gone from EVERY provider store.
	for key := range expect {
		if _, ok := svc.Router.Locate(key); ok {
			t.Fatalf("placement still lists reclaimed chunk %s", key)
		}
		for _, p := range svc.Providers.Providers() {
			if _, err := p.Store().Len(key); !errors.Is(err, chunk.ErrNotFound) {
				t.Fatalf("provider %d still holds reclaimed chunk %s (%v)", p.ID(), key, err)
			}
		}
	}
	// Shared chunks survive: every retained version still reads in
	// full through its metadata.
	if n, err := be.Scrub(); err != nil || n != 3 {
		t.Fatalf("post-GC scrub = %d versions, %v (want 3: v0 + newest 2)", n, err)
	}
	// And the accounting agrees with the stores.
	chunksAfter, bytesAfter := poolUsage(svc)
	if chunksBefore-chunksAfter != 2*len(expect) {
		t.Fatalf("chunk count dropped by %d, want %d (R=2 copies of %d chunks)",
			chunksBefore-chunksAfter, 2*len(expect), len(expect))
	}
	if reclaimed := bytesBefore - bytesAfter; reclaimed != st.DeletedBytes {
		t.Fatalf("usage dropped by %d bytes, stats claim %d", reclaimed, st.DeletedBytes)
	}
}

func TestReaperAutoRetentionAndPins(t *testing.T) {
	svc, be := gcCluster(t, 6, 3)
	b := be.Blob()
	// A reader pins v2 before the reaper ever runs.
	if err := b.Pin(2); err != nil {
		t.Fatal(err)
	}
	before, err := b.ReadAt(2, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	st := svc.Reaper.Pass()
	if st.AutoDropped != 2 {
		t.Fatalf("auto-dropped %d versions, want 2 (v1, v3; v2 pinned)", st.AutoDropped)
	}
	// The pinned version still reads the same bytes after reclamation
	// of its neighbors.
	after, err := b.ReadAt(2, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("pinned version corrupted at byte %d", i)
		}
	}
	// Unpinning releases it to the next retention pass.
	if err := b.Unpin(2); err != nil {
		t.Fatal(err)
	}
	st = svc.Reaper.Pass()
	if st.AutoDropped != 3 {
		t.Fatalf("after unpin: auto-dropped %d total, want 3", st.AutoDropped)
	}
	if _, err := b.ReadAt(2, 0, 1024); err == nil {
		t.Fatal("dropped version still readable")
	}
	if n, err := be.Scrub(); err != nil || n != 4 {
		t.Fatalf("final scrub = %d, %v (want v0 + newest 3)", n, err)
	}
}

// busyOnceRouter defers the first deletion of every key to model an
// in-flight repair; the reaper must keep the version pending and
// complete it on the next pass.
type busyOnceRouter struct {
	*provider.Router
	seen map[chunk.Key]bool
}

func (r *busyOnceRouter) DeleteReplicas(key chunk.Key) (int, int64, error) {
	if r.seen == nil {
		r.seen = make(map[chunk.Key]bool)
	}
	if !r.seen[key] {
		r.seen[key] = true
		return 0, 0, provider.ErrChunkBusy
	}
	return r.Router.DeleteReplicas(key)
}

func TestReaperDefersBusyChunksToNextPass(t *testing.T) {
	svc, be := gcCluster(t, 4, 0)
	b := be.Blob()
	reaper := core.NewReaper(&busyOnceRouter{Router: svc.Router}, core.ReaperConfig{DeletesPerTick: 8})
	reaper.RegisterBlob(b)
	if _, err := b.Retain(1); err != nil {
		t.Fatal(err)
	}
	st := reaper.Pass()
	if st.Reclaimed != 0 || st.DeferredBusy == 0 {
		t.Fatalf("busy pass reclaimed %d (deferred %d), want deferral: %+v", st.Reclaimed, st.DeferredBusy, st)
	}
	info, err := b.GCInfo()
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Pending) != 3 {
		t.Fatalf("pending after busy pass = %+v", info.Pending)
	}
	st = reaper.Pass()
	if st.Reclaimed != 3 {
		t.Fatalf("retry pass reclaimed %d versions, want 3: %+v", st.Reclaimed, st)
	}
}

func TestReaperDeleteRateLimit(t *testing.T) {
	svc, be := gcCluster(t, 6, 0)
	b := be.Blob()
	reaper := core.NewReaper(svc.Router, core.ReaperConfig{DeletesPerTick: 1})
	reaper.RegisterBlob(b)
	if _, err := b.Retain(1); err != nil {
		t.Fatal(err)
	}
	var prev int64
	for i := 0; i < 50; i++ {
		reaper.Tick()
		st := reaper.Stats()
		deleted := st.Deleted + st.DeleteFailed + st.DeferredBusy
		if deleted-prev > 1 {
			t.Fatalf("tick %d deleted %d chunks, rate limit is 1", i, deleted-prev)
		}
		prev = deleted
	}
	if st := reaper.Stats(); st.Deleted == 0 {
		t.Fatalf("nothing deleted under rate limit: %+v", st)
	}
}

// TestReaperSharedKeyAcrossPendingVersions: a chunk exclusive to TWO
// pending versions (v1's page-0 chunk survives into v2's flattened
// leaf, then v3 overwrites the page) must not strand the second
// version when the delete lands before the second version's diff runs
// — both versions reclaim within one pass.
func TestReaperSharedKeyAcrossPendingVersions(t *testing.T) {
	env := cluster.Default()
	env.Providers = 4
	env.Replicas = 2
	env.GC = true
	env.GCRate = 8
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		t.Fatal(err)
	}
	be, err := svc.Backend(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	page := env.ChunkSize
	write := func(off, length int64, fill byte) {
		buf := make([]byte, length)
		for i := range buf {
			buf[i] = fill
		}
		vec, err := extent.NewVec(extent.List{{Offset: off, Length: length}}, buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := be.WriteList(vec); err != nil {
			t.Fatal(err)
		}
	}
	write(0, page, 1)   // v1: full page 0
	write(0, page/2, 2) // v2: half of page 0 (its leaf keeps v1's other half)
	write(0, page, 3)   // v3: full page 0 again (latest, retained)
	b := be.Blob()
	if _, err := b.Retain(1); err != nil {
		t.Fatal(err)
	}
	// v1's chunk is exclusive to BOTH pending versions: reachable from
	// v2's leaf but from no retained version.
	k2, err := b.ExclusiveChunks(2)
	if err != nil {
		t.Fatal(err)
	}
	shared := false
	for _, k := range k2 {
		if k.Version == 1 {
			shared = true
		}
	}
	if !shared {
		t.Fatalf("v2's exclusive set %v does not co-own v1's chunk — scenario not constructed", k2)
	}
	st := svc.Reaper.Pass()
	if st.Passes != 1 || st.Reclaimed != 2 {
		t.Fatalf("one pass reclaimed %d versions over %d passes, want both in one: %+v",
			st.Reclaimed, st.Passes, st)
	}
}

func TestReaperCountsStaleHints(t *testing.T) {
	svc, _ := gcCluster(t, 4, 0)
	// Kill a provider and repair: copies move, metadata hints go stale.
	if err := svc.Providers.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	rst := svc.Router.Repair()
	if rst.Repaired == 0 {
		t.Fatal("repair moved nothing; hint-rot scenario not created")
	}
	st := svc.Reaper.Pass()
	if st.WalkedRefs == 0 || st.StaleHints == 0 {
		t.Fatalf("walk saw %d refs, %d stale hints; want both > 0", st.WalkedRefs, st.StaleHints)
	}
}

// TestReaperRewritesStaleHintsIntoCache: with the shared read cache
// wired in, the reaper's hint walk is a repair path, not just an
// auditor — every stale ref gets the CURRENT placement written into
// the cache, so the next read through that ref starts at the live
// copies instead of walking the dead hint.
func TestReaperRewritesStaleHintsIntoCache(t *testing.T) {
	env := cluster.Default()
	env.Providers = 4
	env.Replicas = 2
	env.GC = true
	env.GCRate = 8
	env.ReadCache = true
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		t.Fatal(err)
	}
	be, err := svc.Backend(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	page := int64(64 << 10)
	for i := 0; i < 3; i++ {
		l := extent.List{{Offset: 0, Length: page}, {Offset: int64(i+1) * page, Length: page / 2}}
		buf := make([]byte, l.TotalLength())
		vec, err := extent.NewVec(l, buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := be.WriteList(vec); err != nil {
			t.Fatal(err)
		}
	}

	// Rot the hints: kill a provider, repair, copies move.
	if err := svc.Providers.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	if rst := svc.Router.Repair(); rst.Repaired == 0 {
		t.Fatal("repair moved nothing; hint-rot scenario not created")
	}

	st := svc.Reaper.Pass()
	if st.StaleHints == 0 {
		t.Fatalf("walk found no stale hints: %+v", st)
	}
	if st.HintsRewritten != st.StaleHints {
		t.Fatalf("rewrote %d of %d stale hints", st.HintsRewritten, st.StaleHints)
	}
	// Every rewritten hint must name the chunk's CURRENT replica set.
	rewritten := 0
	for _, key := range svc.Router.Keys() {
		hint, ok := svc.Cache.Hint(key)
		if !ok {
			continue
		}
		rewritten++
		now, _ := svc.Router.Locate(key)
		if len(hint) != len(now) {
			t.Fatalf("chunk %s: cached hint %v, placement %v", key, hint, now)
		}
		for i := range hint {
			if hint[i] != now[i] {
				t.Fatalf("chunk %s: cached hint %v, placement %v", key, hint, now)
			}
		}
	}
	if rewritten == 0 {
		t.Fatal("no hint landed in the cache")
	}

	// Without the cache wired, the walk stays a pure auditor.
	svc2, _ := gcCluster(t, 2, 0)
	if err := svc2.Providers.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	if rst := svc2.Router.Repair(); rst.Repaired == 0 {
		t.Fatal("repair moved nothing")
	}
	if st2 := svc2.Reaper.Pass(); st2.StaleHints == 0 || st2.HintsRewritten != 0 {
		t.Fatalf("cache-less walk: %d stale, %d rewritten; want >0, 0", st2.StaleHints, st2.HintsRewritten)
	}
}
