package core

import (
	"sync"
	"time"

	"repro/internal/blob"
	"repro/internal/extent"
)

// WritePipe pipelines WriteList calls against a versioning backend: each
// submitted write runs the data path (chunk stores + metadata build +
// Complete) asynchronously without waiting for in-order publication, so
// the chunk I/O of queued calls overlaps both the chunk I/O and the
// publication of earlier calls. Combined with the version manager's
// group commit, a pipe full of small writes turns many per-call control
// round trips into a few per-group ones.
//
// Submit blocks only when Depth writes are already in flight. Flush
// drains the pipe and then waits once for publication of the highest
// version the pipe produced — publication is in ticket order, so that
// single wait covers every submitted write. Each write is still fully
// MPI-atomic; the pipe only relaxes WHEN the submitting goroutine
// observes its durability, exactly like blob.WriteOptions.NoWait.
//
// A WritePipe is safe for concurrent use by multiple goroutines: a
// Flush drains exactly the writes whose Submit returned before the
// Flush began (a Submit racing a concurrent Flush may land on either
// side of it).
type WritePipe struct {
	be     *VersioningBackend
	tokens chan struct{}

	mu       sync.Mutex
	drained  *sync.Cond // signalled when inflight drops
	inflight int
	maxVer   Version
	firstEr  error
}

// NewPipe creates a write pipeline of the given depth (minimum 1).
func (v *VersioningBackend) NewPipe(depth int) *WritePipe {
	if depth < 1 {
		depth = 1
	}
	p := &WritePipe{be: v, tokens: make(chan struct{}, depth)}
	p.drained = sync.NewCond(&p.mu)
	return p
}

// Submit enqueues one atomic WriteList. It blocks while the pipe is
// full, then returns as soon as the write is in flight. Errors of
// in-flight writes surface on Flush (and on the first Submit after the
// failure).
func (p *WritePipe) Submit(vec extent.Vec) error {
	p.mu.Lock()
	err := p.firstEr
	p.mu.Unlock()
	if err != nil {
		return err
	}
	p.tokens <- struct{}{}
	p.mu.Lock()
	p.inflight++
	p.mu.Unlock()
	p.be.met.pipeSubmit.Inc()
	p.be.met.pipeInflight.Add(1)
	start := time.Now()
	go func() {
		ver, err := p.be.b.WriteList(vec, writeNoWait(p.be.opts))
		p.be.met.pipeInflight.Add(-1)
		p.be.met.pipeWriteSec.ObserveSince(start)
		<-p.tokens
		p.mu.Lock()
		defer p.mu.Unlock()
		if err != nil {
			if p.firstEr == nil {
				p.firstEr = err
			}
		} else {
			p.be.writes.Add(1)
			p.be.bytesWr.Add(int64(len(vec.Buf)))
			if Version(ver) > p.maxVer {
				p.maxVer = Version(ver)
			}
		}
		p.inflight--
		p.drained.Broadcast()
	}()
	return nil
}

// Flush waits for every submitted write to finish its data path, then
// waits once for publication of the newest version the pipe produced.
// It returns that version and the first error any write hit. The pipe
// is reusable after Flush.
//
// The publication wait happens even when a write failed: the surviving
// writes of the train committed real versions, and returning while
// their publication state is unknown would let the caller read around
// data it just wrote. Flush therefore always waits on the surviving
// maxVer and then reports the first write error (which takes precedence
// over a wait error).
func (p *WritePipe) Flush() (Version, error) {
	p.mu.Lock()
	for p.inflight > 0 {
		p.drained.Wait()
	}
	ver, err := p.maxVer, p.firstEr
	p.maxVer, p.firstEr = 0, nil
	p.mu.Unlock()
	if ver == 0 {
		return 0, err
	}
	if werr := p.be.b.WaitPublished(uint64(ver)); err == nil {
		err = werr
	}
	return ver, err
}

// writeNoWait copies the backend's write options with publication
// waiting disabled; the pipe waits once at Flush instead.
func writeNoWait(o blob.WriteOptions) blob.WriteOptions {
	o.NoWait = true
	return o
}
