// Package core defines the storage-backend API the paper proposes — a
// dedicated, non-POSIX access interface with native support for
// non-contiguous, MPI-atomic data accesses — and its versioning-based
// implementation built on the BlobSeer-equivalent service.
//
// The central type is Backend: WriteList applies a whole vector of
// byte ranges as one atomic transaction; ReadList observes one
// immutable snapshot. The versioning implementation never locks: the
// paper's claim is that this is what lets aggregated throughput scale
// under heavy overlapped concurrency, where lock-based designs
// serialize. The lock-based designs it is compared against implement
// this same interface in internal/lockfs and internal/mpiio.
//
// For write-intensive small-call workloads the versioning backend also
// offers a pipelined write path (WritePipe, see pipe.go): writes are
// submitted asynchronously with bounded depth, their chunk I/O overlaps
// the publication of earlier calls, and a single Flush waits for the
// train's last version. Pipelining pairs with the version manager's
// group commit (vmanager.BatchConfig): a deep pipe keeps the manager's
// queue full, so tickets and publications are granted in amortized
// groups instead of one control round trip per call.
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/blob"
	"repro/internal/extent"
	"repro/internal/metrics"
	"repro/internal/segtree"
)

// Version identifies a published snapshot of the shared file. Versions
// are dense and increase by one per write; version 0 is the initial
// empty snapshot.
type Version uint64

// Backend is the storage-backend interface for MPI-atomic list I/O.
// All implementations must guarantee:
//
//   - WriteList is atomic: under concurrency, overlapping bytes of two
//     calls never interleave — every overlapped byte range exposes the
//     data of exactly one of the calls, and the outcome is equivalent
//     to some serial order of the calls (MPI atomic mode semantics).
//   - ReadList is atomic: it observes a state produced by whole write
//     calls, never a partial write.
type Backend interface {
	// Name identifies the implementation in benchmark output.
	Name() string
	// WriteList atomically writes a non-contiguous vector and returns
	// the snapshot version it produced (implementations without
	// versioning return 0).
	WriteList(vec extent.Vec) (Version, error)
	// ReadList atomically reads a non-contiguous vector from the
	// current state and returns the data in list order plus the
	// version observed.
	ReadList(q extent.List) ([]byte, Version, error)
	// Size returns the current file size (highest written byte + 1).
	Size() (int64, error)
}

// Versioned is implemented by backends that retain historical
// snapshots and can read them; only the versioning backend does.
type Versioned interface {
	Backend
	// ReadListAt reads from a specific published snapshot.
	ReadListAt(v Version, q extent.List) ([]byte, error)
	// Latest returns the newest published version.
	Latest() (Version, error)
	// Versions enumerates all published snapshot versions.
	Versions() ([]Version, error)
}

// Stats counts backend operations; all fields are cumulative.
type Stats struct {
	Writes       int64
	Reads        int64
	BytesWritten int64
	BytesRead    int64
}

// VersioningBackend is the paper's storage backend: versioning-based
// MPI-atomic list I/O over the BlobSeer-equivalent service.
type VersioningBackend struct {
	b    *blob.Blob
	opts blob.WriteOptions

	writes, reads    atomic.Int64
	bytesWr, bytesRd atomic.Int64

	// met holds nil-tolerant WritePipe metric handles (see SetMetrics);
	// nil until wired.
	met struct {
		pipeInflight *metrics.Gauge
		pipeSubmit   *metrics.Counter
		pipeWriteSec *metrics.Histogram
	}
}

// SetMetrics wires the backend's WritePipe occupancy gauge, submit
// counter and per-write data-path latency histogram into reg. Call
// before creating pipes; a nil registry leaves metrics disabled.
func (v *VersioningBackend) SetMetrics(reg *metrics.Registry) {
	v.met.pipeInflight = reg.Gauge("bs_pipe_inflight")
	v.met.pipeSubmit = reg.Counter("bs_pipe_submit_total")
	v.met.pipeWriteSec = reg.Histogram("bs_pipe_write_seconds", nil)
}

var (
	_ Backend   = (*VersioningBackend)(nil)
	_ Versioned = (*VersioningBackend)(nil)
)

// NewVersioning creates the blob backing a new versioning backend.
func NewVersioning(svc blob.Services, blobID uint64, geo segtree.Geometry) (*VersioningBackend, error) {
	b, err := blob.Create(svc, blobID, geo)
	if err != nil {
		return nil, fmt.Errorf("core: create blob: %w", err)
	}
	return &VersioningBackend{b: b}, nil
}

// OpenVersioning attaches to an existing blob.
func OpenVersioning(svc blob.Services, blobID uint64) (*VersioningBackend, error) {
	b, err := blob.Open(svc, blobID)
	if err != nil {
		return nil, fmt.Errorf("core: open blob: %w", err)
	}
	return &VersioningBackend{b: b}, nil
}

// SetNoWait controls whether writes wait for in-order publication
// before returning (default: they wait, giving read-your-writes).
func (v *VersioningBackend) SetNoWait(noWait bool) { v.opts.NoWait = noWait }

// Blob exposes the underlying blob handle (for version-aware tools).
func (v *VersioningBackend) Blob() *blob.Blob { return v.b }

// Name implements Backend.
func (v *VersioningBackend) Name() string { return "versioning" }

// WriteList implements Backend.
func (v *VersioningBackend) WriteList(vec extent.Vec) (Version, error) {
	ver, err := v.b.WriteList(vec, v.opts)
	if err != nil {
		return 0, err
	}
	v.writes.Add(1)
	v.bytesWr.Add(int64(len(vec.Buf)))
	return Version(ver), nil
}

// ReadList implements Backend.
func (v *VersioningBackend) ReadList(q extent.List) ([]byte, Version, error) {
	data, ver, err := v.b.ReadLatest(q)
	if err != nil {
		return nil, 0, err
	}
	v.reads.Add(1)
	v.bytesRd.Add(int64(len(data)))
	return data, Version(ver), nil
}

// ReadListAt implements Versioned.
func (v *VersioningBackend) ReadListAt(ver Version, q extent.List) ([]byte, error) {
	data, err := v.b.ReadList(uint64(ver), q)
	if err != nil {
		return nil, err
	}
	v.reads.Add(1)
	v.bytesRd.Add(int64(len(data)))
	return data, nil
}

// Latest implements Versioned.
func (v *VersioningBackend) Latest() (Version, error) {
	info, err := v.b.Latest()
	if err != nil {
		return 0, err
	}
	return Version(info.Version), nil
}

// Versions implements Versioned.
func (v *VersioningBackend) Versions() ([]Version, error) {
	vs, err := v.b.Versions()
	if err != nil {
		return nil, err
	}
	out := make([]Version, len(vs))
	for i, x := range vs {
		out[i] = Version(x)
	}
	return out, nil
}

// Diff returns the byte ranges that may differ between two published
// snapshots — the application-level versioning primitive the paper's
// conclusions propose for producer/consumer pipelines.
func (v *VersioningBackend) Diff(a, b Version) (extent.List, error) {
	return v.b.Diff(uint64(a), uint64(b))
}

// Scrub reads every published snapshot in full and returns the number
// of versions verified readable. With replicated data providers this
// is the durability check: after a provider loss every committed
// snapshot must still scrub clean via replica failover. The first
// unreadable version aborts the scrub with an error naming it.
func (v *VersioningBackend) Scrub() (int, error) {
	versions, err := v.b.Versions()
	if err != nil {
		return 0, err
	}
	checked := 0
	for _, ver := range versions {
		size, err := v.b.Size(ver)
		if err != nil {
			return checked, fmt.Errorf("core: scrub v%d: %w", ver, err)
		}
		if size > 0 {
			if _, err := v.b.ReadAt(ver, 0, size); err != nil {
				return checked, fmt.Errorf("core: scrub v%d: %w", ver, err)
			}
		}
		checked++
	}
	return checked, nil
}

// Size implements Backend.
func (v *VersioningBackend) Size() (int64, error) {
	info, err := v.b.Latest()
	if err != nil {
		return 0, err
	}
	return info.Size, nil
}

// Stats returns cumulative operation counters.
func (v *VersioningBackend) Stats() Stats {
	return Stats{
		Writes:       v.writes.Load(),
		Reads:        v.reads.Load(),
		BytesWritten: v.bytesWr.Load(),
		BytesRead:    v.bytesRd.Load(),
	}
}
