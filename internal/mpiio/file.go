package mpiio

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/datatype"
	"repro/internal/extent"
	"repro/internal/mpi"
)

// View is an MPI-I/O file view: a displacement, an elementary type and
// a filetype whose tiling over the file selects the bytes visible to
// this process.
type View struct {
	Disp     int64
	Etype    datatype.Datatype
	Filetype datatype.Datatype
}

// DefaultView exposes the whole file as a flat byte stream.
func DefaultView() View {
	return View{Disp: 0, Etype: datatype.Byte, Filetype: datatype.Byte}
}

// Validate checks the MPI view constraints.
func (v View) Validate() error {
	if v.Disp < 0 {
		return fmt.Errorf("mpiio: negative displacement %d", v.Disp)
	}
	if v.Etype.Size() <= 0 {
		return errors.New("mpiio: etype must have positive size")
	}
	if v.Filetype.Size() <= 0 || v.Filetype.Size()%v.Etype.Size() != 0 {
		return fmt.Errorf("mpiio: filetype size %d not a positive multiple of etype size %d",
			v.Filetype.Size(), v.Etype.Size())
	}
	fl := v.Filetype.Flatten()
	if len(fl) > 0 && fl[len(fl)-1].End() > v.Filetype.Extent() {
		return errors.New("mpiio: filetype payload exceeds its extent")
	}
	return nil
}

// File is an open MPI file handle. Handles are per-process (one per
// rank); processes opening the same file share the driver's underlying
// storage. A File with a nil communicator supports independent
// operations only.
type File struct {
	comm *mpi.Comm
	drv  Driver

	mu         sync.Mutex
	view       View
	atomicMode bool
}

// Open builds a file handle over a driver. comm may be nil for
// non-collective use.
func Open(comm *mpi.Comm, drv Driver) *File {
	return &File{comm: comm, drv: drv, view: DefaultView()}
}

// Driver exposes the underlying ADIO driver.
func (f *File) Driver() Driver { return f.drv }

// SetView installs a new file view (MPI_File_set_view).
func (f *File) SetView(v View) error {
	if err := v.Validate(); err != nil {
		return err
	}
	f.mu.Lock()
	f.view = v
	f.mu.Unlock()
	return nil
}

// View returns the current view.
func (f *File) View() View {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.view
}

// SetAtomicity toggles MPI atomic mode (MPI_File_set_atomicity).
func (f *File) SetAtomicity(on bool) {
	f.mu.Lock()
	f.atomicMode = on
	f.mu.Unlock()
}

// Atomicity reports whether atomic mode is on.
func (f *File) Atomicity() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.atomicMode
}

// Size returns the file size in bytes.
func (f *File) Size() (int64, error) { return f.drv.Size() }

// viewExtents maps the byte range [dataOff, dataOff+length) of the
// view's data space onto file extents, in data order. The returned
// list is sorted and disjoint because filetype payloads are monotone
// within one tile and tiles advance monotonically.
func viewExtents(v View, dataOff, length int64) (extent.List, error) {
	if dataOff < 0 || length < 0 {
		return nil, fmt.Errorf("mpiio: invalid view range [%d,+%d)", dataOff, length)
	}
	if length == 0 {
		return nil, nil
	}
	tileData := v.Filetype.Size()
	tileSpan := v.Filetype.Extent()
	flat := v.Filetype.Flatten()

	var out extent.List
	tile := dataOff / tileData
	posInTile := dataOff % tileData
	remaining := length
	for remaining > 0 {
		base := v.Disp + tile*tileSpan
		var seen int64
		for _, seg := range flat {
			if remaining == 0 {
				break
			}
			segLen := seg.Length
			if posInTile >= seen+segLen {
				seen += segLen
				continue
			}
			skip := int64(0)
			if posInTile > seen {
				skip = posInTile - seen
			}
			n := segLen - skip
			if n > remaining {
				n = remaining
			}
			out = append(out, extent.Extent{Offset: base + seg.Offset + skip, Length: n})
			remaining -= n
			posInTile += n
			seen += segLen
		}
		tile++
		posInTile = 0
	}
	// Coalesce extents that touch across tile boundaries.
	merged := out[:0]
	for _, e := range out {
		if n := len(merged); n > 0 && merged[n-1].End() == e.Offset {
			merged[n-1].Length += e.Length
			continue
		}
		merged = append(merged, e)
	}
	return merged, nil
}

// WriteAt writes buf at the given offset (in etype units) through the
// file view, independently of other ranks (MPI_File_write_at). In
// atomic mode the whole call is one MPI-atomic transaction.
func (f *File) WriteAt(offset int64, buf []byte) error {
	f.mu.Lock()
	v := f.view
	atomicMode := f.atomicMode
	f.mu.Unlock()
	if int64(len(buf))%v.Etype.Size() != 0 {
		return fmt.Errorf("mpiio: buffer length %d not a multiple of etype size %d", len(buf), v.Etype.Size())
	}
	ext, err := viewExtents(v, offset*v.Etype.Size(), int64(len(buf)))
	if err != nil {
		return err
	}
	if len(ext) == 0 {
		return nil
	}
	vec, err := extent.NewVec(ext, buf)
	if err != nil {
		return err
	}
	return f.drv.WriteList(vec, atomicMode)
}

// ReadAt reads length bytes (a multiple of the etype size) at the
// given offset (in etype units) through the view (MPI_File_read_at).
func (f *File) ReadAt(offset int64, length int64) ([]byte, error) {
	f.mu.Lock()
	v := f.view
	atomicMode := f.atomicMode
	f.mu.Unlock()
	if length%v.Etype.Size() != 0 {
		return nil, fmt.Errorf("mpiio: read length %d not a multiple of etype size %d", length, v.Etype.Size())
	}
	ext, err := viewExtents(v, offset*v.Etype.Size(), length)
	if err != nil {
		return nil, err
	}
	if len(ext) == 0 {
		return []byte{}, nil
	}
	return f.drv.ReadList(ext, atomicMode)
}
