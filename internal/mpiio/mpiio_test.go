package mpiio

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/lockfs"
	"repro/internal/metadata"
	"repro/internal/mpi"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

func newVersioningDriver(t *testing.T) *VersioningDriver {
	t.Helper()
	mgr, _ := provider.NewPool(4, iosim.CostModel{})
	svc := blob.Services{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(2, iosim.CostModel{}),
		Data: provider.NewRouter(mgr),
	}
	be, err := core.NewVersioning(svc, 1, segtree.Geometry{Capacity: 1 << 20, Page: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return &VersioningDriver{Backend: be}
}

func newLockFSDriver(t *testing.T, s Strategy) *LockFSDriver {
	t.Helper()
	fs, err := lockfs.New(lockfs.Config{OSTs: 4, StripeSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("shared")
	if err != nil {
		t.Fatal(err)
	}
	return &LockFSDriver{File: f, Strategy: s, Det: NewDetector(iosim.CostModel{})}
}

func allDrivers(t *testing.T) map[string]Driver {
	t.Helper()
	out := map[string]Driver{"versioning": newVersioningDriver(t)}
	for _, s := range append(AtomicStrategies(), StrategyPOSIX) {
		out[s.String()] = newLockFSDriver(t, s)
	}
	return out
}

func TestViewValidate(t *testing.T) {
	if err := DefaultView().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := View{Disp: -1, Etype: datatype.Byte, Filetype: datatype.Byte}
	if bad.Validate() == nil {
		t.Fatal("negative disp must fail")
	}
	// Filetype size not a multiple of etype size.
	bad2 := View{Etype: datatype.Int32, Filetype: datatype.Contiguous{Count: 3, Base: datatype.Byte}}
	if bad2.Validate() == nil {
		t.Fatal("size mismatch must fail")
	}
}

func TestViewExtentsFlatByteView(t *testing.T) {
	got, err := viewExtents(DefaultView(), 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := extent.List{{Offset: 100, Length: 50}}
	if !got.Equal(want) {
		t.Fatalf("viewExtents = %v, want %v", got, want)
	}
}

func TestViewExtentsWithDisp(t *testing.T) {
	v := View{Disp: 1000, Etype: datatype.Byte, Filetype: datatype.Byte}
	got, err := viewExtents(v, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(extent.List{{Offset: 1000, Length: 10}}) {
		t.Fatalf("viewExtents = %v", got)
	}
}

func TestViewExtentsVectorFiletype(t *testing.T) {
	// Filetype: 2 bytes of every 8 visible. Tile span = 10 bytes
	// (extent of the vector), so tiles do not abut.
	ft := datatype.Vector{Count: 2, BlockLen: 1, Stride: 8, Base: datatype.Byte}
	v := View{Disp: 0, Etype: datatype.Byte, Filetype: ft}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	// Data bytes 0..3 map to file 0, 8, 9(+tilespan)... compute:
	// flatten = [0,1), [8,9); extent = 9.
	got, err := viewExtents(v, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := extent.List{
		{Offset: 0, Length: 1},
		{Offset: 8, Length: 2}, // [8,9) then tile1 base=9: [9,10) merges
		{Offset: 17, Length: 1},
	}
	if !got.Equal(want) {
		t.Fatalf("viewExtents = %v, want %v", got, want)
	}
}

func TestViewExtentsMidTileStart(t *testing.T) {
	ft := datatype.Vector{Count: 2, BlockLen: 2, Stride: 4, Base: datatype.Byte}
	// flatten = [0,2), [4,6); size 4, extent 6.
	v := View{Disp: 0, Etype: datatype.Byte, Filetype: ft}
	got, err := viewExtents(v, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Data 3 = second byte of block 2 (file 5), data 4,5 = tile1 block1
	// (file 6,7), data 6 = tile1 block2 first byte (file 10).
	want := extent.List{
		{Offset: 5, Length: 3},
		{Offset: 10, Length: 1},
	}
	if !got.Equal(want) {
		t.Fatalf("viewExtents = %v, want %v", got, want)
	}
}

func TestViewExtentsErrors(t *testing.T) {
	if _, err := viewExtents(DefaultView(), -1, 5); err == nil {
		t.Fatal("negative offset must fail")
	}
	got, err := viewExtents(DefaultView(), 0, 0)
	if err != nil || got != nil {
		t.Fatalf("zero length = %v, %v", got, err)
	}
}

func TestWriteReadAllDrivers(t *testing.T) {
	for name, drv := range allDrivers(t) {
		t.Run(name, func(t *testing.T) {
			f := Open(nil, drv)
			data := []byte("mpi-io independent write")
			if err := f.WriteAt(100, data); err != nil {
				t.Fatal(err)
			}
			got, err := f.ReadAt(100, int64(len(data)))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("read = %q", got)
			}
			sz, err := f.Size()
			if err != nil || sz != 100+int64(len(data)) {
				t.Fatalf("size = %d, %v", sz, err)
			}
		})
	}
}

func TestWriteThroughSubarrayView(t *testing.T) {
	for name, drv := range allDrivers(t) {
		t.Run(name, func(t *testing.T) {
			// 8x8 byte array; this process owns the 4x4 block at (2,2).
			ft := datatype.Subarray{
				Sizes:    []int{8, 8},
				Subsizes: []int{4, 4},
				Starts:   []int{2, 2},
				Elem:     datatype.Byte,
			}
			f := Open(nil, drv)
			if err := f.SetView(View{Disp: 0, Etype: datatype.Byte, Filetype: ft}); err != nil {
				t.Fatal(err)
			}
			buf := bytes.Repeat([]byte{7}, 16)
			if err := f.WriteAt(0, buf); err != nil {
				t.Fatal(err)
			}
			got, err := f.ReadAt(0, 16)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, buf) {
				t.Fatalf("view read = %v", got)
			}
			// Verify raw placement: row 2, cols 2-5.
			raw, err := drv.ReadList(extent.List{{Offset: 2*8 + 2, Length: 4}}, false)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(raw, []byte{7, 7, 7, 7}) {
				t.Fatalf("raw = %v", raw)
			}
			// A cell outside the subarray must be zero.
			raw2, err := drv.ReadList(extent.List{{Offset: 0, Length: 1}}, false)
			if err != nil || raw2[0] != 0 {
				t.Fatalf("outside cell = %v, %v", raw2, err)
			}
		})
	}
}

func TestAtomicModeOverlappingWriters(t *testing.T) {
	// For every atomicity-providing configuration, concurrent writers
	// with identical non-contiguous extent lists must produce a final
	// state that is entirely one writer's data.
	configs := map[string]Driver{"versioning": newVersioningDriver(t)}
	for _, s := range AtomicStrategies() {
		configs[s.String()] = newLockFSDriver(t, s)
	}
	l := extent.List{{Offset: 0, Length: 300}, {Offset: 2000, Length: 300}, {Offset: 7000, Length: 300}}
	for name, drv := range configs {
		t.Run(name, func(t *testing.T) {
			const writers = 8
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					f := Open(nil, drv)
					f.SetAtomicity(true)
					buf := bytes.Repeat([]byte{byte(w + 1)}, int(l.TotalLength()))
					vec, _ := extent.NewVec(l, buf)
					if err := f.Driver().WriteList(vec, true); err != nil {
						t.Error(err)
					}
				}(w)
			}
			wg.Wait()
			f := Open(nil, drv)
			f.SetAtomicity(true)
			got, err := f.Driver().ReadList(l, true)
			if err != nil {
				t.Fatal(err)
			}
			first := got[0]
			if first == 0 {
				t.Fatal("no data written")
			}
			for i, b := range got {
				if b != first {
					t.Fatalf("byte %d = %d, want %d: atomicity violated", i, b, first)
				}
			}
		})
	}
}

func TestDetectorNonOverlappingParallel(t *testing.T) {
	d := NewDetector(iosim.CostModel{})
	id1, c1 := d.Begin(extent.List{{Offset: 0, Length: 10}})
	id2, c2 := d.Begin(extent.List{{Offset: 10, Length: 10}})
	if c1 || c2 {
		t.Fatal("disjoint ops must not conflict")
	}
	d.End(id1)
	d.End(id2)
	st := d.Stats()
	if st.Ops != 2 || st.Conflicts != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDetectorOverlapSerializes(t *testing.T) {
	d := NewDetector(iosim.CostModel{})
	id1, _ := d.Begin(extent.List{{Offset: 0, Length: 10}})
	started := make(chan struct{})
	finished := make(chan bool, 1)
	go func() {
		close(started)
		id2, conflicted := d.Begin(extent.List{{Offset: 5, Length: 10}})
		finished <- conflicted
		d.End(id2)
	}()
	<-started
	select {
	case <-finished:
		t.Fatal("overlapping Begin did not block")
	default:
	}
	d.End(id1)
	if conflicted := <-finished; !conflicted {
		t.Fatal("conflict not reported")
	}
	if d.Stats().Conflicts != 1 {
		t.Fatalf("conflicts = %d", d.Stats().Conflicts)
	}
}

func TestCollectiveWriteTwoPhase(t *testing.T) {
	drv := newVersioningDriver(t)
	const ranks = 4
	const blockLen = 64
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		f := Open(c, drv)
		f.SetAtomicity(true)
		// Interleaved pattern: rank r owns every ranks-th block.
		ft := datatype.Vector{Count: 8, BlockLen: blockLen, Stride: ranks * blockLen, Base: datatype.Byte}
		disp := int64(c.Rank() * blockLen)
		if err := f.SetView(View{Disp: disp, Etype: datatype.Byte, Filetype: ft}); err != nil {
			return err
		}
		buf := bytes.Repeat([]byte{byte(c.Rank() + 1)}, 8*blockLen)
		return f.WriteAtAll(0, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The file must now contain the interleaved ranks pattern.
	f := Open(nil, drv)
	got, err := f.ReadAt(0, ranks*8*blockLen)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		wantRank := byte((i/blockLen)%ranks) + 1
		if b != wantRank {
			t.Fatalf("byte %d = %d, want %d", i, b, wantRank)
		}
	}
}

func TestCollectiveWriteOverlapDeterministic(t *testing.T) {
	drv := newVersioningDriver(t)
	const ranks = 4
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		f := Open(c, drv)
		// All ranks write the same 100 bytes; the overlay rule says the
		// highest rank wins.
		buf := bytes.Repeat([]byte{byte(c.Rank() + 1)}, 100)
		return f.WriteAtAll(0, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(nil, drv).ReadAt(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != ranks {
			t.Fatalf("byte %d = %d, want %d (highest rank)", i, b, ranks)
		}
	}
}

func TestCollectiveEmptyWriters(t *testing.T) {
	drv := newVersioningDriver(t)
	err := mpi.Run(3, func(c *mpi.Comm) error {
		f := Open(c, drv)
		if c.Rank() == 1 {
			return f.WriteAtAll(0, []byte{42})
		}
		return f.WriteAtAll(0, nil) // zero-length participation
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(nil, drv).ReadAt(0, 1)
	if err != nil || got[0] != 42 {
		t.Fatalf("read = %v, %v", got, err)
	}
}

func TestCollectiveAllEmpty(t *testing.T) {
	drv := newVersioningDriver(t)
	err := mpi.Run(3, func(c *mpi.Comm) error {
		f := Open(c, drv)
		return f.WriteAtAll(0, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadAtAll(t *testing.T) {
	drv := newVersioningDriver(t)
	f0 := Open(nil, drv)
	if err := f0.WriteAt(0, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	err := mpi.Run(2, func(c *mpi.Comm) error {
		f := Open(c, drv)
		got, err := f.ReadAtAll(0, 4)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
			t.Errorf("rank %d read %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonAtomicModeStillWrites(t *testing.T) {
	drv := newLockFSDriver(t, StrategyBoundingRange)
	f := Open(nil, drv)
	f.SetAtomicity(false)
	if f.Atomicity() {
		t.Fatal("atomicity should be off")
	}
	l := extent.List{{Offset: 0, Length: 10}, {Offset: 100, Length: 10}}
	vec, _ := extent.NewVec(l, bytes.Repeat([]byte{9}, 20))
	if err := f.Driver().WriteList(vec, false); err != nil {
		t.Fatal(err)
	}
	got, err := f.Driver().ReadList(l, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 9 {
			t.Fatalf("byte %d = %d", i, b)
		}
	}
}

func TestEtypeUnitConversion(t *testing.T) {
	drv := newVersioningDriver(t)
	f := Open(nil, drv)
	if err := f.SetView(View{Disp: 0, Etype: datatype.Int32, Filetype: datatype.Int32}); err != nil {
		t.Fatal(err)
	}
	// Offset 3 in etype units = byte 12.
	if err := f.WriteAt(3, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	raw, err := drv.ReadList(extent.List{{Offset: 12, Length: 4}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, []byte{1, 2, 3, 4}) {
		t.Fatalf("raw = %v", raw)
	}
	// Misaligned buffer must fail.
	if err := f.WriteAt(0, []byte{1, 2, 3}); err == nil {
		t.Fatal("non-multiple buffer must fail")
	}
	if _, err := f.ReadAt(0, 3); err == nil {
		t.Fatal("non-multiple read must fail")
	}
}

func TestDataSieveMovesWholeBoundingRange(t *testing.T) {
	drv := newLockFSDriver(t, StrategyDataSieve)
	// Two sparse extents far apart: the sieve must read+write the whole
	// bounding range but still only expose the written bytes.
	l := extent.List{{Offset: 0, Length: 4}, {Offset: 8192, Length: 4}}
	vec, _ := extent.NewVec(l, []byte("aaaabbbb"))
	if err := drv.WriteList(vec, true); err != nil {
		t.Fatal(err)
	}
	got, err := drv.ReadList(l, true)
	if err != nil || string(got) != "aaaabbbb" {
		t.Fatalf("read = %q, %v", got, err)
	}
	// Bytes in the gap must still read as zero (the sieve writes back
	// the zeros it read, not garbage).
	gap, err := drv.ReadList(extent.List{{Offset: 4096, Length: 8}}, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range gap {
		if b != 0 {
			t.Fatalf("gap byte %d = %d", i, b)
		}
	}
	// A second sieved write must preserve the first write's data.
	l2 := extent.List{{Offset: 100, Length: 4}}
	vec2, _ := extent.NewVec(l2, []byte("cccc"))
	if err := drv.WriteList(vec2, true); err != nil {
		t.Fatal(err)
	}
	again, err := drv.ReadList(l, true)
	if err != nil || string(again) != "aaaabbbb" {
		t.Fatalf("after second sieve: %q, %v", again, err)
	}
}
