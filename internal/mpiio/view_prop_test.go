package mpiio

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datatype"
)

// randomFiletype builds a random valid filetype for property tests.
func randomFiletype(r *rand.Rand) datatype.Datatype {
	switch r.Intn(4) {
	case 0:
		return datatype.Contiguous{Count: r.Intn(6) + 1, Base: datatype.Byte}
	case 1:
		bl := r.Intn(4) + 1
		return datatype.Vector{Count: r.Intn(5) + 1, BlockLen: bl, Stride: bl + r.Intn(4), Base: datatype.Byte}
	case 2:
		n := r.Intn(3) + 1
		lens := make([]int, n)
		displs := make([]int64, n)
		pos := int64(0)
		for i := 0; i < n; i++ {
			displs[i] = pos + int64(r.Intn(3))
			lens[i] = r.Intn(3) + 1
			pos = displs[i] + int64(lens[i])
		}
		return datatype.Indexed{BlockLens: lens, Displs: displs, Base: datatype.Byte}
	default:
		w := r.Intn(5) + 2
		h := r.Intn(5) + 2
		sw := r.Intn(w) + 1
		sh := r.Intn(h) + 1
		return datatype.Subarray{
			Sizes:    []int{h, w},
			Subsizes: []int{sh, sw},
			Starts:   []int{r.Intn(h - sh + 1), r.Intn(w - sw + 1)},
			Elem:     datatype.Byte,
		}
	}
}

// TestPropViewExtentsMatchOracle cross-checks viewExtents against a
// brute-force per-byte enumeration of the tiled filetype.
func TestPropViewExtentsMatchOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ft := randomFiletype(r)
		v := View{Disp: int64(r.Intn(32)), Etype: datatype.Byte, Filetype: ft}
		if v.Validate() != nil {
			return true // skip invalid combinations (none expected)
		}
		dataOff := int64(r.Intn(20))
		length := int64(r.Intn(40))
		got, err := viewExtents(v, dataOff, length)
		if err != nil {
			return false
		}
		// Oracle: enumerate data bytes one by one.
		var oracle []int64
		flat := ft.Flatten()
		tileData := ft.Size()
		tileSpan := ft.Extent()
		for i := int64(0); i < length; i++ {
			pos := dataOff + i
			tile := pos / tileData
			within := pos % tileData
			var fileOff int64
			seen := int64(0)
			for _, seg := range flat {
				if within < seen+seg.Length {
					fileOff = v.Disp + tile*tileSpan + seg.Offset + (within - seen)
					break
				}
				seen += seg.Length
			}
			oracle = append(oracle, fileOff)
		}
		// Compare byte by byte with the returned extents.
		var expanded []int64
		for _, e := range got {
			for o := e.Offset; o < e.End(); o++ {
				expanded = append(expanded, o)
			}
		}
		if len(expanded) != len(oracle) {
			return false
		}
		for i := range oracle {
			if expanded[i] != oracle[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestPropViewWriteReadRoundTrip writes random data through a random
// view and reads it back through the same view.
func TestPropViewWriteReadRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		drv := newVersioningDriver(t)
		ft := randomFiletype(r)
		v := View{Disp: int64(r.Intn(16)), Etype: datatype.Byte, Filetype: ft}
		file := Open(nil, drv)
		if err := file.SetView(v); err != nil {
			return false
		}
		buf := make([]byte, r.Intn(64)+1)
		r.Read(buf)
		// Avoid zero bytes so holes are distinguishable.
		for i := range buf {
			buf[i] |= 1
		}
		off := int64(r.Intn(8))
		if err := file.WriteAt(off, buf); err != nil {
			return false
		}
		got, err := file.ReadAt(off, int64(len(buf)))
		if err != nil {
			return false
		}
		return bytes.Equal(got, buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
