// Package mpiio implements the MPI-I/O layer (the ROMIO role in the
// paper): file views built from derived datatypes, independent and
// collective (two-phase) I/O, MPI atomic mode, and the ADIO-style
// driver abstraction with two backends — the paper's versioning
// storage backend, where MPI atomicity is native, and the Lustre-like
// locking file system, where atomicity must be layered on top with one
// of the locking strategies from the paper's Related Work section.
package mpiio

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/lockfs"
	"repro/internal/lockmgr"
)

// Driver is the ADIO-style backend interface: everything the MPI-I/O
// layer needs from a storage backend, expressed as List I/O.
type Driver interface {
	// Name identifies the driver in benchmark output.
	Name() string
	// WriteList writes a vector of extents; when atomic is set the
	// whole vector must be applied as one MPI-atomic transaction.
	WriteList(vec extent.Vec, atomic bool) error
	// ReadList reads a vector of extents; when atomic is set the read
	// must observe a state produced by whole write calls.
	ReadList(q extent.List, atomic bool) ([]byte, error)
	// Size returns the current file size.
	Size() (int64, error)
}

// VersioningDriver adapts the paper's storage backend (internal/core)
// to the ADIO interface. Because the backend provides MPI atomicity
// natively, no consistency-model translation happens here — exactly
// the point of the paper's "dedicated API" design principle.
type VersioningDriver struct {
	Backend core.Backend
}

var _ Driver = (*VersioningDriver)(nil)

// Name implements Driver.
func (d *VersioningDriver) Name() string { return "versioning" }

// WriteList implements Driver. The backend's writes are always atomic;
// the flag costs nothing either way.
func (d *VersioningDriver) WriteList(vec extent.Vec, _ bool) error {
	_, err := d.Backend.WriteList(vec)
	return err
}

// ReadList implements Driver.
func (d *VersioningDriver) ReadList(q extent.List, _ bool) ([]byte, error) {
	data, _, err := d.Backend.ReadList(q)
	return data, err
}

// Size implements Driver.
func (d *VersioningDriver) Size() (int64, error) { return d.Backend.Size() }

// Strategy selects how the locking driver layers MPI atomicity over
// POSIX semantics. These are the approaches the paper's Related Work
// describes.
type Strategy int

// Strategies.
const (
	// StrategyPOSIX performs no MPI-level coordination: each extent is
	// written as an independent POSIX-atomic call. It does NOT provide
	// MPI atomicity for non-contiguous operations and exists as the
	// inconsistent baseline (and upper bound for locking throughput).
	StrategyPOSIX Strategy = iota
	// StrategyWholeFile locks the entire file for each operation
	// (Ross et al. 2005, "Implementing MPI-IO atomic mode without file
	// system support").
	StrategyWholeFile
	// StrategyBoundingRange locks the smallest contiguous byte range
	// covering all extents of the operation — the default scheme on
	// POSIX parallel file systems such as Lustre/GPFS that the paper
	// describes as locking "unaccessed data that would not need to be
	// locked".
	StrategyBoundingRange
	// StrategyListLock takes one extent lock per accessed range in
	// ascending order (two-phase locking). Precise but pays one lock
	// round trip per extent.
	StrategyListLock
	// StrategyConflictDetect implements Sehrish et al. 2009: operations
	// announce their extent lists to a detector; non-overlapping
	// operations proceed without locks, overlapping ones serialize.
	StrategyConflictDetect
	// StrategyDataSieve is ROMIO's data sieving under a bounding-range
	// lock: read the whole bounding range, scatter the pieces into the
	// buffer, write the whole range back. Two large transfers replace
	// many small ones, at the price of moving (and locking) all the
	// unaccessed bytes in between.
	StrategyDataSieve
)

// String names the strategy for benchmark tables.
func (s Strategy) String() string {
	switch s {
	case StrategyPOSIX:
		return "posix"
	case StrategyWholeFile:
		return "wholefile"
	case StrategyBoundingRange:
		return "boundingrange"
	case StrategyListLock:
		return "listlock"
	case StrategyConflictDetect:
		return "conflictdetect"
	case StrategyDataSieve:
		return "datasieve"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// AtomicStrategies lists every strategy that provides MPI atomicity.
func AtomicStrategies() []Strategy {
	return []Strategy{StrategyWholeFile, StrategyBoundingRange, StrategyListLock, StrategyConflictDetect, StrategyDataSieve}
}

// Detector implements the conflict-detection protocol: an operation
// registers its extent list; if it overlaps any in-flight operation it
// waits for those to drain. Registration alone (without byte-range
// locks) then guarantees exclusion, so non-overlapping workloads run
// fully in parallel at the cost of two detector round trips per
// operation.
type Detector struct {
	mu     sync.Mutex
	cond   *sync.Cond
	active map[uint64]extent.List
	nextID uint64
	meter  *iosim.Meter

	// ScanPerPeer charges each Begin for comparing against every
	// concurrently registered operation, modelling the extent-list
	// exchange the protocol performs among processes (Sehrish et al.
	// gather the access patterns of all concurrent operations). Zero
	// disables the charge.
	ScanPerPeer time.Duration

	ops       atomic.Int64
	conflicts atomic.Int64
}

// NewDetector builds a detector charged per request with the given
// model.
func NewDetector(model iosim.CostModel) *Detector {
	d := &Detector{active: make(map[uint64]extent.List)}
	d.cond = sync.NewCond(&d.mu)
	d.meter = iosim.NewMeter(model, false)
	return d
}

// Begin registers the operation, waiting first for every conflicting
// in-flight operation to end. It returns the registration id and
// whether a conflict was encountered.
func (d *Detector) Begin(l extent.List) (uint64, bool) {
	d.meter.Charge(0)
	if d.ScanPerPeer > 0 {
		d.mu.Lock()
		peers := len(d.active)
		d.mu.Unlock()
		if peers > 0 {
			d.meter.ChargeDuration(time.Duration(peers) * d.ScanPerPeer)
		}
	}
	norm := l.Normalize()
	d.mu.Lock()
	conflicted := false
	for d.overlapsActive(norm) {
		conflicted = true
		d.cond.Wait()
	}
	id := d.nextID
	d.nextID++
	d.active[id] = norm
	d.mu.Unlock()
	d.ops.Add(1)
	if conflicted {
		d.conflicts.Add(1)
	}
	return id, conflicted
}

// End deregisters the operation.
func (d *Detector) End(id uint64) {
	d.meter.Charge(0)
	d.mu.Lock()
	delete(d.active, id)
	d.cond.Broadcast()
	d.mu.Unlock()
}

func (d *Detector) overlapsActive(l extent.List) bool {
	for _, a := range d.active {
		if l.Overlaps(a) {
			return true
		}
	}
	return false
}

// DetectorStats reports detector counters.
type DetectorStats struct {
	Ops       int64
	Conflicts int64
}

// Stats returns cumulative counters.
func (d *Detector) Stats() DetectorStats {
	return DetectorStats{Ops: d.ops.Load(), Conflicts: d.conflicts.Load()}
}

// Meter exposes the request meter.
func (d *Detector) Meter() *iosim.Meter { return d.meter }

// LockFSDriver adapts the Lustre-like file system to the ADIO
// interface, implementing MPI atomicity with the configured locking
// strategy. This is the baseline the paper evaluates against.
type LockFSDriver struct {
	File     *lockfs.File
	Strategy Strategy
	// Det is required for StrategyConflictDetect; one detector is
	// shared by all processes opening the same file.
	Det *Detector
}

var _ Driver = (*LockFSDriver)(nil)

// Name implements Driver.
func (d *LockFSDriver) Name() string { return "lockfs/" + d.Strategy.String() }

// WriteList implements Driver.
func (d *LockFSDriver) WriteList(vec extent.Vec, atomicMode bool) error {
	if !atomicMode {
		// Non-atomic mode: each extent is an independent POSIX write.
		return vec.ForEach(func(e extent.Extent, b []byte) error {
			return d.File.WriteAt(e.Offset, b)
		})
	}
	switch d.Strategy {
	case StrategyPOSIX:
		return vec.ForEach(func(e extent.Extent, b []byte) error {
			return d.File.WriteAt(e.Offset, b)
		})
	case StrategyWholeFile:
		g := d.File.LockManager().Acquire(lockmgr.WholeFile, lockmgr.Exclusive)
		defer g.Release()
		return d.writeLocked(vec)
	case StrategyBoundingRange:
		g := d.File.LockManager().Acquire(vec.Extents.Bounding(), lockmgr.Exclusive)
		defer g.Release()
		return d.writeLocked(vec)
	case StrategyListLock:
		grants := d.File.LockManager().AcquireList(vec.Extents, lockmgr.Exclusive)
		defer lockmgr.ReleaseAll(grants)
		return d.writeLocked(vec)
	case StrategyConflictDetect:
		if d.Det == nil {
			return fmt.Errorf("mpiio: %s requires a detector", d.Strategy)
		}
		id, _ := d.Det.Begin(vec.Extents)
		defer d.Det.End(id)
		return d.writeLocked(vec)
	case StrategyDataSieve:
		g := d.File.LockManager().Acquire(vec.Extents.Bounding(), lockmgr.Exclusive)
		defer g.Release()
		return d.writeSieved(vec)
	default:
		return fmt.Errorf("mpiio: unknown strategy %v", d.Strategy)
	}
}

// writeSieved performs one read-modify-write of the bounding range;
// the caller holds the bounding lock.
func (d *LockFSDriver) writeSieved(vec extent.Vec) error {
	bound := vec.Extents.Bounding()
	if bound.Empty() {
		return nil
	}
	image, err := d.File.ReadAtLocked(bound.Offset, bound.Length)
	if err != nil {
		return err
	}
	vec.ScatterInto(image, bound.Offset)
	return d.File.WriteAtLocked(bound.Offset, image)
}

// writeLocked writes every extent without further locking; the caller
// holds whatever exclusion the strategy mandates.
func (d *LockFSDriver) writeLocked(vec extent.Vec) error {
	return vec.ForEach(func(e extent.Extent, b []byte) error {
		return d.File.WriteAtLocked(e.Offset, b)
	})
}

// ReadList implements Driver.
func (d *LockFSDriver) ReadList(q extent.List, atomicMode bool) ([]byte, error) {
	if !atomicMode || d.Strategy == StrategyPOSIX {
		return d.readEach(q, true)
	}
	switch d.Strategy {
	case StrategyWholeFile:
		g := d.File.LockManager().Acquire(lockmgr.WholeFile, lockmgr.Shared)
		defer g.Release()
		return d.readEach(q, false)
	case StrategyBoundingRange:
		g := d.File.LockManager().Acquire(q.Bounding(), lockmgr.Shared)
		defer g.Release()
		return d.readEach(q, false)
	case StrategyListLock:
		grants := d.File.LockManager().AcquireList(q, lockmgr.Shared)
		defer lockmgr.ReleaseAll(grants)
		return d.readEach(q, false)
	case StrategyConflictDetect:
		if d.Det == nil {
			return nil, fmt.Errorf("mpiio: %s requires a detector", d.Strategy)
		}
		id, _ := d.Det.Begin(q)
		defer d.Det.End(id)
		return d.readEach(q, false)
	case StrategyDataSieve:
		g := d.File.LockManager().Acquire(q.Bounding(), lockmgr.Shared)
		defer g.Release()
		bound := q.Bounding()
		image, err := d.File.ReadAtLocked(bound.Offset, bound.Length)
		if err != nil {
			return nil, err
		}
		out := make([]byte, q.TotalLength())
		gather := extent.Vec{Extents: q, Buf: out}
		gather.GatherFrom(image, bound.Offset)
		return out, nil
	default:
		return nil, fmt.Errorf("mpiio: unknown strategy %v", d.Strategy)
	}
}

// readEach reads every extent; when locked is true each read takes its
// own POSIX lock, otherwise the caller already holds coverage.
func (d *LockFSDriver) readEach(q extent.List, locked bool) ([]byte, error) {
	out := make([]byte, q.TotalLength())
	var start int64
	for _, e := range q {
		var data []byte
		var err error
		if locked {
			data, err = d.File.ReadAt(e.Offset, e.Length)
		} else {
			data, err = d.File.ReadAtLocked(e.Offset, e.Length)
		}
		if err != nil {
			return nil, err
		}
		copy(out[start:], data)
		start += e.Length
	}
	return out, nil
}

// Size implements Driver.
func (d *LockFSDriver) Size() (int64, error) { return d.File.Size(), nil }
