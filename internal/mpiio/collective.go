package mpiio

import (
	"fmt"

	"repro/internal/extent"
)

// Reserved tag space for collective I/O data exchange; high enough not
// to collide with application tags.
const tagTwoPhase = 1 << 20

// exchangeMsg carries one rank's pieces for one aggregator domain.
type exchangeMsg struct {
	Exts extent.List // file extents, sorted, within the domain
	Data []byte      // concatenated data in extent order
}

// WriteAtAll is the collective write (MPI_File_write_at_all). It runs
// two-phase I/O: ranks agree on a partition of the aggregate access
// range into one contiguous file domain per rank (the aggregators),
// ship their pieces to the owning aggregators, and each aggregator
// issues one large List I/O write for its domain. Overlaps between
// ranks within a domain are resolved deterministically in rank order
// (higher rank wins), mirroring ROMIO's collective buffering.
func (f *File) WriteAtAll(offset int64, buf []byte) error {
	if f.comm == nil || f.comm.Size() == 1 {
		return f.WriteAt(offset, buf)
	}
	f.mu.Lock()
	v := f.view
	atomicMode := f.atomicMode
	f.mu.Unlock()
	if int64(len(buf))%v.Etype.Size() != 0 {
		return fmt.Errorf("mpiio: buffer length %d not a multiple of etype size %d", len(buf), v.Etype.Size())
	}
	ext, err := viewExtents(v, offset*v.Etype.Size(), int64(len(buf)))
	if err != nil {
		return err
	}

	comm := f.comm
	size := comm.Size()

	// Phase 0: agree on the aggregate bounding range.
	bounds := comm.Allgather(ext.Bounding())
	var lo, hi int64
	first := true
	for _, b := range bounds {
		be := b.(extent.Extent)
		if be.Empty() {
			continue
		}
		if first {
			lo, hi = be.Offset, be.End()
			first = false
			continue
		}
		if be.Offset < lo {
			lo = be.Offset
		}
		if be.End() > hi {
			hi = be.End()
		}
	}
	if first {
		// Nobody writes anything; still synchronize.
		comm.Barrier()
		return nil
	}

	// Phase 1: ship pieces to their domain owners.
	domLen := (hi - lo + int64(size) - 1) / int64(size)
	domain := func(r int) extent.Extent {
		start := lo + int64(r)*domLen
		end := start + domLen
		if end > hi {
			end = hi
		}
		if start >= end {
			return extent.Extent{}
		}
		return extent.Extent{Offset: start, Length: end - start}
	}
	vec := extent.Vec{Extents: ext, Buf: buf}
	outbound := make([]any, size)
	for r := 0; r < size; r++ {
		outbound[r] = sliceVecToDomain(vec, domain(r))
	}
	inbound, err := comm.Alltoall(outbound)
	if err != nil {
		return err
	}

	// Phase 2: overlay the pieces received for my domain in rank order.
	myDomain := domain(comm.Rank())
	msgs := make([]exchangeMsg, size)
	for r := 0; r < size; r++ {
		msgs[r] = inbound[r].(exchangeMsg)
	}
	merged := overlayMessages(myDomain, msgs)
	if len(merged.Exts) > 0 {
		outVec, err := extent.NewVec(merged.Exts, merged.Data)
		if err != nil {
			return err
		}
		if err := f.drv.WriteList(outVec, atomicMode); err != nil {
			return err
		}
	}
	comm.Barrier()
	return nil
}

// sliceVecToDomain extracts the parts of vec that fall inside dom.
func sliceVecToDomain(vec extent.Vec, dom extent.Extent) exchangeMsg {
	if dom.Empty() {
		return exchangeMsg{}
	}
	var msg exchangeMsg
	var start int64
	for _, e := range vec.Extents {
		data := vec.Buf[start : start+e.Length]
		start += e.Length
		x := e.Intersect(dom)
		if x.Empty() {
			continue
		}
		msg.Exts = append(msg.Exts, x)
		msg.Data = append(msg.Data, data[x.Offset-e.Offset:x.End()-e.Offset]...)
	}
	return msg
}

// overlayMessages merges per-rank pieces over a domain; later ranks
// overwrite earlier ones on overlap, giving a deterministic outcome.
func overlayMessages(dom extent.Extent, msgs []exchangeMsg) exchangeMsg {
	if dom.Empty() {
		return exchangeMsg{}
	}
	image := make([]byte, dom.Length)
	mask := make([]bool, dom.Length)
	for _, m := range msgs {
		var start int64
		for _, e := range m.Exts {
			data := m.Data[start : start+e.Length]
			start += e.Length
			off := e.Offset - dom.Offset
			copy(image[off:], data)
			for i := int64(0); i < e.Length; i++ {
				mask[off+i] = true
			}
		}
	}
	// Extract covered runs.
	var out exchangeMsg
	i := int64(0)
	n := int64(len(mask))
	for i < n {
		if !mask[i] {
			i++
			continue
		}
		j := i
		for j < n && mask[j] {
			j++
		}
		out.Exts = append(out.Exts, extent.Extent{Offset: dom.Offset + i, Length: j - i})
		out.Data = append(out.Data, image[i:j]...)
		i = j
	}
	return out
}

// ReadAtAll is the collective read (MPI_File_read_at_all). Each rank
// reads its own view extents; a barrier provides the collective
// completion semantics. (Two-phase read aggregation would only shuffle
// which process touches which OST; the access pattern is identical for
// the backends modelled here.)
func (f *File) ReadAtAll(offset int64, length int64) ([]byte, error) {
	data, err := f.ReadAt(offset, length)
	if f.comm != nil {
		f.comm.Barrier()
	}
	return data, err
}
