package segtree

import (
	"repro/internal/chunk"
	"repro/internal/extent"
)

// Diff computes the byte ranges whose contents may differ between two
// snapshots, exploiting shadowing: subtrees shared by both versions
// (identical node keys) are skipped without being fetched, so the cost
// is proportional to the metadata that actually changed, not to the
// blob size. This is the primitive behind application-level versioning
// consumers (the paper's future-work direction): a visualization
// pipeline can fetch exactly what changed between two timesteps.
//
// The result is normalized and conservative: every changed byte is
// included; an included byte may compare equal if a writer rewrote it
// with identical data.
func (t *Tree) Diff(a, b NodeKey) (extent.List, error) {
	var out extent.List
	var walk func(a, b NodeKey) error
	walk = func(a, b NodeKey) error {
		if a == b {
			return nil // shared subtree: nothing changed below
		}
		if a.IsZero() || b.IsZero() {
			// Present on one side only: exactly the bytes that side
			// covers may differ (the other side reads them as holes).
			k := a
			if k.IsZero() {
				k = b
			}
			cov, err := t.covered(k)
			if err != nil {
				return err
			}
			out = append(out, cov...)
			return nil
		}
		// Keys differ but cover the same range by construction of the
		// tree; compare children (or fragments for leaves).
		na, err := t.Store.GetNode(t.Blob, a)
		if err != nil {
			return err
		}
		nb, err := t.Store.GetNode(t.Blob, b)
		if err != nil {
			return err
		}
		if na.Leaf || nb.Leaf {
			if !na.Leaf || !nb.Leaf {
				out = append(out, a.Range())
				return nil
			}
			out = append(out, diffLeaves(a.Range(), na, nb)...)
			return nil
		}
		if err := walk(na.Left, nb.Left); err != nil {
			return err
		}
		return walk(na.Right, nb.Right)
	}
	if err := walk(a, b); err != nil {
		return nil, err
	}
	return out.Normalize(), nil
}

// covered returns the byte ranges actually backed by data anywhere in
// the subtree rooted at key (resolving leaf chains).
func (t *Tree) covered(key NodeKey) (extent.List, error) {
	if key.IsZero() {
		return nil, nil
	}
	n, err := t.Store.GetNode(t.Blob, key)
	if err != nil {
		return nil, err
	}
	if n.Leaf {
		cov := coverage(n.Frags)
		for !n.Prev.IsZero() {
			n, err = t.Store.GetNode(t.Blob, n.Prev)
			if err != nil {
				return nil, err
			}
			cov = cov.Union(coverage(n.Frags))
		}
		return cov, nil
	}
	left, err := t.covered(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := t.covered(n.Right)
	if err != nil {
		return nil, err
	}
	return append(left, right...), nil
}

// diffLeaves compares two leaves covering the same page. Fragments
// referencing the same chunk sub-ranges are unchanged; everything else
// is reported. Chained leaves are handled conservatively: if either
// leaf has a chain, the page's covered ranges are compared by
// reference only when both fragment lists are flat.
func diffLeaves(page extent.Extent, a, b *Node) extent.List {
	if !a.Prev.IsZero() || !b.Prev.IsZero() {
		if a.Prev == b.Prev && fragmentsEqual(a.Frags, b.Frags) {
			return nil
		}
		return extent.List{page}
	}
	if fragmentsEqual(a.Frags, b.Frags) {
		return nil
	}
	// Report ranges whose backing reference changed, plus ranges
	// covered on one side only.
	var out extent.List
	ca := coverage(a.Frags)
	cb := coverage(b.Frags)
	// Symmetric difference of coverage changed by definition.
	out = append(out, ca.Subtract(cb)...)
	out = append(out, cb.Subtract(ca)...)
	// Common coverage: changed where the refs disagree byte-for-byte.
	common := ca.Intersect(cb)
	for _, ext := range common {
		for off := ext.Offset; off < ext.End(); {
			ra, la := refAt(a.Frags, off)
			rb, lb := refAt(b.Frags, off)
			n := min64(la, lb)
			if n <= 0 {
				n = 1
			}
			if n > ext.End()-off {
				n = ext.End() - off
			}
			if !ra.EqualData(rb) {
				out = append(out, extent.Extent{Offset: off, Length: n})
			}
			off += n
		}
	}
	return out
}

// coverage returns the byte ranges a fragment list covers.
func coverage(frags []Fragment) extent.List {
	out := make(extent.List, 0, len(frags))
	for _, f := range frags {
		out = append(out, f.Ext)
	}
	return out.Normalize()
}

// refAt resolves which chunk sub-range backs the byte at off and how
// many bytes of that backing remain from off; a zero ref means
// uncovered.
func refAt(frags []Fragment, off int64) (ref chunk.Ref, remaining int64) {
	for _, f := range frags {
		if f.Ext.Contains(off) {
			delta := off - f.Ext.Offset
			return chunk.Ref{Key: f.Ref.Key, Offset: f.Ref.Offset + delta, Length: 1}, f.Ext.End() - off
		}
	}
	return chunk.Ref{}, 0
}

func fragmentsEqual(a, b []Fragment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Ext != b[i].Ext || !a[i].Ref.EqualData(b[i].Ref) {
			return false
		}
	}
	return true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
