// Package segtree implements the versioned segment tree that stores blob
// metadata, following BlobSeer's shadowing design (Rodeh-style
// copy-on-write B-tree adapted to a static binary partition of the blob
// address space).
//
// The blob address space [0, Capacity) is covered by a complete binary
// tree: every inner node covers a power-of-two multiple of the page
// size and splits it in half; every leaf covers exactly one page. A
// node is immutable and keyed by (version, offset, size): a write with
// ticket v creates new nodes only along the paths from the root to the
// pages it touches, and *borrows* every untouched sibling subtree from
// the most recent earlier version that touched it. Snapshots therefore
// share all unmodified metadata, which is what makes per-write
// snapshots affordable.
//
// Leaves hold fragment lists — (byte range → chunk reference) overlays —
// so partially overwritten pages never require read-modify-write of
// data: the new leaf either merges the surviving fragments of its
// predecessor (when the predecessor's metadata is already available) or
// records a back-pointer chain that readers resolve newest-first. This
// is the mechanism that lets concurrent writers of overlapping
// non-contiguous regions proceed with zero synchronization on the data
// path, as required by the paper.
package segtree

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/chunk"
	"repro/internal/extent"
)

// NodeKey identifies one immutable metadata node.
type NodeKey struct {
	Version uint64
	Offset  int64
	Size    int64
}

// IsZero reports whether the key is the hole sentinel (no node).
func (k NodeKey) IsZero() bool { return k.Version == 0 }

// Range returns the byte range the node covers.
func (k NodeKey) Range() extent.Extent { return extent.Extent{Offset: k.Offset, Length: k.Size} }

func (k NodeKey) String() string {
	return fmt.Sprintf("v%d[%d,%d)", k.Version, k.Offset, k.Offset+k.Size)
}

// Fragment maps an absolute byte range of the blob to a sub-range of an
// immutable chunk.
type Fragment struct {
	Ext extent.Extent
	Ref chunk.Ref
}

// Node is one immutable metadata node. Inner nodes carry child keys;
// leaves carry this version's fragments and an optional back-pointer to
// the predecessor leaf (non-zero only when the predecessor could not be
// merged at build time).
type Node struct {
	Leaf  bool
	Left  NodeKey // inner only
	Right NodeKey // inner only

	Frags []Fragment // leaf only; sorted, non-overlapping
	Prev  NodeKey    // leaf only; chain to predecessor leaf
}

// NodeStore is the metadata repository the tree reads and writes.
// Implementations live in internal/metadata.
type NodeStore interface {
	// PutNode stores an immutable node.
	PutNode(blob uint64, key NodeKey, n *Node) error
	// GetNode returns a node or an error if it is missing.
	GetNode(blob uint64, key NodeKey) (*Node, error)
	// TryGetNode returns (node, true) if present, (nil, false) if the
	// node is not (yet) stored. Used for the leaf-flattening
	// optimization; it must never block.
	TryGetNode(blob uint64, key NodeKey) (*Node, bool, error)
}

// Placed pairs an absolute byte range of the write with the chunk
// sub-range that now holds its data.
type Placed struct {
	Ext extent.Extent
	Ref chunk.Ref
}

// Geometry fixes the shape of a blob's tree.
type Geometry struct {
	Capacity int64 // total address space covered by the root; power-of-two multiple of Page
	Page     int64 // leaf size
}

// Validate checks the geometry invariants.
func (g Geometry) Validate() error {
	if g.Page <= 0 {
		return fmt.Errorf("segtree: page size %d must be positive", g.Page)
	}
	if g.Capacity < g.Page {
		return fmt.Errorf("segtree: capacity %d smaller than page %d", g.Capacity, g.Page)
	}
	pages := g.Capacity / g.Page
	if g.Capacity%g.Page != 0 || pages&(pages-1) != 0 {
		return fmt.Errorf("segtree: capacity %d must be a power-of-two multiple of page %d", g.Capacity, g.Page)
	}
	return nil
}

// Root returns the range covered by the root node.
func (g Geometry) Root() extent.Extent { return extent.Extent{Offset: 0, Length: g.Capacity} }

// Borrows lists, for a write covering the normalized extent list e,
// every tree range whose *latest prior version* the writer must learn
// from the version manager: all untouched sibling subtrees along the
// write's paths plus every touched leaf (whose predecessor feeds the
// fragment chain). The version manager answers these at ticket time so
// builders never synchronize with concurrent writers.
func (g Geometry) Borrows(e extent.List) []extent.Extent {
	var out []extent.Extent
	var walk func(off, size int64)
	walk = func(off, size int64) {
		r := extent.Extent{Offset: off, Length: size}
		if !e.IntersectsExtent(r) {
			out = append(out, r)
			return
		}
		if size == g.Page {
			out = append(out, r)
			return
		}
		half := size / 2
		walk(off, half)
		walk(off+half, half)
	}
	if len(e) > 0 {
		walk(0, g.Capacity)
	}
	return out
}

// Tree provides the build (write) and resolve (read) operations over one
// blob's metadata. Tree is stateless and safe for concurrent use; all
// shared state lives in the NodeStore.
type Tree struct {
	Blob  uint64
	Geo   Geometry
	Store NodeStore
}

// ErrOutOfRange is returned when a write or read exceeds the capacity.
var ErrOutOfRange = errors.New("segtree: access beyond blob capacity")

// Build writes the metadata for update ticket v consisting of the given
// placed pieces, using borrow answers from the version manager
// (geometry range → latest prior version, 0 meaning never written).
// It returns the new root key. Pieces must be sorted by offset,
// non-overlapping, and must not cross page boundaries (use SplitPlaced).
func (t *Tree) Build(v uint64, placed []Placed, borrows map[extent.Extent]uint64) (NodeKey, error) {
	if len(placed) == 0 {
		return NodeKey{}, errors.New("segtree: empty update")
	}
	el := make(extent.List, 0, len(placed))
	for i, p := range placed {
		if p.Ext.Offset < 0 || p.Ext.End() > t.Geo.Capacity {
			return NodeKey{}, fmt.Errorf("%w: piece %v", ErrOutOfRange, p.Ext)
		}
		if p.Ext.Offset/t.Geo.Page != (p.Ext.End()-1)/t.Geo.Page {
			return NodeKey{}, fmt.Errorf("segtree: piece %v crosses page boundary", p.Ext)
		}
		if i > 0 && placed[i-1].Ext.End() > p.Ext.Offset {
			return NodeKey{}, fmt.Errorf("segtree: pieces unsorted or overlapping at %d", i)
		}
		el = append(el, p.Ext)
	}
	el = el.Normalize()

	// Phase 1: plan the new tree in memory. Inner-node child keys are
	// known immediately (new key if the child is touched, borrow key
	// otherwise), so only leaves need store access.
	type leafTask struct {
		r      extent.Extent
		pieces []Placed
		prev   uint64
	}
	type pending struct {
		key  NodeKey
		node *Node
	}
	var leaves []leafTask
	var leafKeys []NodeKey
	var inners []pending
	var plan func(off, size int64, pieces []Placed) NodeKey
	plan = func(off, size int64, pieces []Placed) NodeKey {
		r := extent.Extent{Offset: off, Length: size}
		if len(pieces) == 0 {
			w := borrows[r]
			if w == 0 {
				return NodeKey{}
			}
			return NodeKey{Version: w, Offset: off, Size: size}
		}
		key := NodeKey{Version: v, Offset: off, Size: size}
		if size == t.Geo.Page {
			leaves = append(leaves, leafTask{r: r, pieces: pieces, prev: borrows[r]})
			leafKeys = append(leafKeys, key)
			return key
		}
		half := size / 2
		mid := off + half
		split := 0
		for split < len(pieces) && pieces[split].Ext.Offset < mid {
			split++
		}
		lk := plan(off, half, pieces[:split])
		rk := plan(mid, half, pieces[split:])
		inners = append(inners, pending{key: key, node: &Node{Left: lk, Right: rk}})
		return key
	}
	root := plan(0, t.Geo.Capacity, placed)

	// Phase 2: build and store every node in parallel (BlobSeer's
	// metadata is a DHT; node writes are independent and readers only
	// see the tree after publication, so no ordering is required).
	sem := make(chan struct{}, maxMetaParallel)
	errs := make(chan error, len(leaves)+len(inners))
	var wg sync.WaitGroup
	for i := range leaves {
		wg.Add(1)
		go func(task leafTask, key NodeKey) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			n, err := t.buildLeaf(v, task.r, task.pieces, task.prev)
			if err == nil {
				err = t.Store.PutNode(t.Blob, key, n)
			}
			if err != nil {
				errs <- err
			}
		}(leaves[i], leafKeys[i])
	}
	for _, p := range inners {
		wg.Add(1)
		go func(p pending) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := t.Store.PutNode(t.Blob, p.key, p.node); err != nil {
				errs <- err
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return NodeKey{}, err
	}
	return root, nil
}

// maxMetaParallel bounds a single write's in-flight metadata requests,
// mimicking a client with a bounded request window.
const maxMetaParallel = 64

// BuildEmpty writes tombstone metadata for ticket v over the given
// (normalized) extent list: every touched leaf gets an empty overlay
// chained to its predecessor, so the snapshot reads identically to its
// predecessor while still materializing every node that later writers
// may have borrowed by version. This is how a failed write (chunk
// store error after ticket assignment) retires its ticket without
// stalling publication or leaving dangling references.
func (t *Tree) BuildEmpty(v uint64, touched extent.List, borrows map[extent.Extent]uint64) (NodeKey, error) {
	touched = touched.Normalize()
	if len(touched) == 0 {
		return NodeKey{}, errors.New("segtree: empty tombstone")
	}
	if b := touched.Bounding(); b.Offset < 0 || b.End() > t.Geo.Capacity {
		return NodeKey{}, fmt.Errorf("%w: tombstone %v", ErrOutOfRange, b)
	}
	type pending struct {
		key  NodeKey
		node *Node
	}
	var nodes []pending
	var plan func(off, size int64) NodeKey
	plan = func(off, size int64) NodeKey {
		r := extent.Extent{Offset: off, Length: size}
		if !touched.IntersectsExtent(r) {
			w := borrows[r]
			if w == 0 {
				return NodeKey{}
			}
			return NodeKey{Version: w, Offset: off, Size: size}
		}
		key := NodeKey{Version: v, Offset: off, Size: size}
		if size == t.Geo.Page {
			n := &Node{Leaf: true}
			if prev := borrows[r]; prev != 0 {
				n.Prev = NodeKey{Version: prev, Offset: off, Size: size}
			}
			nodes = append(nodes, pending{key: key, node: n})
			return key
		}
		half := size / 2
		lk := plan(off, half)
		rk := plan(off+half, half)
		nodes = append(nodes, pending{key: key, node: &Node{Left: lk, Right: rk}})
		return key
	}
	root := plan(0, t.Geo.Capacity)
	for _, p := range nodes {
		if err := t.Store.PutNode(t.Blob, p.key, p.node); err != nil {
			return NodeKey{}, err
		}
	}
	return root, nil
}

// buildLeaf assembles the new leaf for page r: this write's fragments,
// merged with the predecessor's surviving fragments when the
// predecessor leaf is flat and already stored (the flattening
// optimization); otherwise chained via Prev.
func (t *Tree) buildLeaf(v uint64, r extent.Extent, pieces []Placed, prevVersion uint64) (*Node, error) {
	frags := make([]Fragment, 0, len(pieces))
	covered := make(extent.List, 0, len(pieces))
	for _, p := range pieces {
		frags = append(frags, Fragment{Ext: p.Ext, Ref: p.Ref})
		covered = append(covered, p.Ext)
	}
	covered = covered.Normalize()

	n := &Node{Leaf: true, Frags: frags}
	if prevVersion == 0 {
		return n, nil // first write to this page
	}
	if covered.Equal(extent.List{r}) {
		return n, nil // page fully overwritten; predecessor invisible
	}
	prevKey := NodeKey{Version: prevVersion, Offset: r.Offset, Size: r.Length}
	prev, ok, err := t.Store.TryGetNode(t.Blob, prevKey)
	if err != nil {
		return nil, err
	}
	if !ok || !prev.Prev.IsZero() {
		// Predecessor missing (still in flight) or itself chained:
		// keep the chain; readers resolve it newest-first.
		n.Prev = prevKey
		return n, nil
	}
	// Flatten: survivors are the predecessor fragments minus our
	// coverage.
	merged := overlayFragments(prev.Frags, frags, covered)
	n.Frags = merged
	return n, nil
}

// overlayFragments merges old fragments under new ones: every byte of
// newCovered comes from newFrags, everything else survives from old.
// The result is sorted and non-overlapping.
func overlayFragments(old, newFrags []Fragment, newCovered extent.List) []Fragment {
	out := make([]Fragment, 0, len(old)+len(newFrags))
	for _, f := range old {
		surviving := extent.List{f.Ext}.Subtract(newCovered)
		for _, s := range surviving {
			out = append(out, Fragment{
				Ext: s,
				Ref: chunk.Ref{
					Key:      f.Ref.Key,
					Offset:   f.Ref.Offset + (s.Offset - f.Ext.Offset),
					Length:   s.Length,
					Replicas: f.Ref.Replicas,
				},
			})
		}
	}
	out = append(out, newFrags...)
	sortFragments(out)
	return out
}

func sortFragments(fs []Fragment) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].Ext.Offset < fs[j].Ext.Offset })
}

// Resolve walks the tree from root and maps every requested byte to the
// chunk fragment holding it at that snapshot. Bytes never written are
// returned in holes (and read as zero). The query list must be
// normalized. Sub-tree walks run in parallel (bounded by
// maxMetaParallel) so a wide read pays tree-depth round trips, not
// node-count.
func (t *Tree) Resolve(root NodeKey, query extent.List) (frags []Fragment, holes extent.List, err error) {
	query = query.Normalize()
	for _, q := range query {
		if q.Offset < 0 || q.End() > t.Geo.Capacity {
			return nil, nil, fmt.Errorf("%w: query %v", ErrOutOfRange, q)
		}
	}
	if len(query) == 0 {
		return nil, nil, nil
	}
	if root.IsZero() {
		return nil, query.Clone(), nil
	}

	var mu sync.Mutex // guards frags, holes, firstErr
	var firstErr error
	sem := make(chan struct{}, maxMetaParallel)
	var wg sync.WaitGroup

	addHoles := func(q extent.List) {
		mu.Lock()
		holes = append(holes, q...)
		mu.Unlock()
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	var walk func(key NodeKey, q extent.List)
	walk = func(key NodeKey, q extent.List) {
		if len(q) == 0 {
			return
		}
		if key.IsZero() {
			addHoles(q)
			return
		}
		sem <- struct{}{}
		n, err := t.Store.GetNode(t.Blob, key)
		<-sem
		if err != nil {
			fail(fmt.Errorf("segtree: fetch %s: %w", key, err))
			return
		}
		if n.Leaf {
			var localFrags []Fragment
			var localHoles extent.List
			if err := t.resolveLeaf(n, q, &localFrags, &localHoles); err != nil {
				fail(err)
				return
			}
			mu.Lock()
			frags = append(frags, localFrags...)
			holes = append(holes, localHoles...)
			mu.Unlock()
			return
		}
		half := key.Size / 2
		lr := extent.Extent{Offset: key.Offset, Length: half}
		rr := extent.Extent{Offset: key.Offset + half, Length: half}
		lq := q.Intersect(extent.List{lr})
		rq := q.Intersect(extent.List{rr})
		if len(lq) > 0 && len(rq) > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				walk(n.Left, lq)
			}()
			walk(n.Right, rq)
			return
		}
		if len(lq) > 0 {
			walk(n.Left, lq)
		}
		if len(rq) > 0 {
			walk(n.Right, rq)
		}
	}
	walk(root, query)
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	holes = holes.Normalize()
	sortFragments(frags)
	return frags, holes, nil
}

// resolveLeaf satisfies q from the leaf's fragment chain, newest first.
func (t *Tree) resolveLeaf(n *Node, q extent.List, frags *[]Fragment, holes *extent.List) error {
	remaining := q.Normalize()
	cur := n
	for {
		covered := make(extent.List, 0, len(cur.Frags))
		for _, f := range cur.Frags {
			covered = append(covered, f.Ext)
		}
		covered = covered.Normalize()
		for _, f := range cur.Frags {
			for _, want := range remaining.Intersect(extent.List{f.Ext}) {
				*frags = append(*frags, Fragment{
					Ext: want,
					Ref: chunk.Ref{
						Key:      f.Ref.Key,
						Offset:   f.Ref.Offset + (want.Offset - f.Ext.Offset),
						Length:   want.Length,
						Replicas: f.Ref.Replicas,
					},
				})
			}
		}
		remaining = remaining.Subtract(covered)
		if len(remaining) == 0 || cur.Prev.IsZero() {
			break
		}
		next, err := t.Store.GetNode(t.Blob, cur.Prev)
		if err != nil {
			return fmt.Errorf("segtree: fetch chained leaf %s: %w", cur.Prev, err)
		}
		cur = next
	}
	*holes = append(*holes, remaining...)
	return nil
}

// SplitPlaced splits placed pieces at page boundaries, adjusting chunk
// reference offsets so each output piece stays within one page.
func SplitPlaced(pieces []Placed, page int64) []Placed {
	if page <= 0 {
		return pieces
	}
	var out []Placed
	for _, p := range pieces {
		off := p.Ext.Offset
		refOff := p.Ref.Offset
		remaining := p.Ext.Length
		for remaining > 0 {
			boundary := (off/page + 1) * page
			n := remaining
			if boundary-off < n {
				n = boundary - off
			}
			out = append(out, Placed{
				Ext: extent.Extent{Offset: off, Length: n},
				Ref: chunk.Ref{Key: p.Ref.Key, Offset: refOff, Length: n, Replicas: p.Ref.Replicas},
			})
			off += n
			refOff += n
			remaining -= n
		}
	}
	return out
}
