package segtree_test

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/extent"
	"repro/internal/segtree"
)

// writePipelined is harness.write through the pipelined Builder:
// chunks are stored concurrently and each ref is handed to the builder
// as it lands, mimicking blob.storeChunks' pipelined mode.
func (h *harness) writePipelined(v extent.Vec) uint64 {
	h.t.Helper()
	tk, err := h.mgr.AssignTicket(h.blob, v.Extents)
	if err != nil {
		h.t.Fatal(err)
	}
	// Page-split first: the builder's pieces are the split extents.
	var placed []segtree.Placed
	var start int64
	for _, e := range v.Extents {
		placed = append(placed, segtree.Placed{Ext: e, Ref: chunk.Ref{Offset: start}})
		start += e.Length
	}
	split := segtree.SplitPlaced(placed, h.tree.Geo.Page)
	exts := make([]extent.Extent, len(split))
	for i, p := range split {
		exts[i] = p.Ext
	}
	b, err := h.tree.NewBuilder(tk.Version, exts, tk.Borrows)
	if err != nil {
		h.t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i, p := range split {
		wg.Add(1)
		go func(i int, p segtree.Placed) {
			defer wg.Done()
			// The piece's bytes live at v.Buf[p.Ref.Offset...] (the
			// running offset stashed above).
			data := v.Buf[p.Ref.Offset : p.Ref.Offset+p.Ext.Length]
			key := chunk.Key{Blob: h.blob, Version: tk.Version, Index: uint32(i)}
			if err := h.chunks.Put(key, data); err != nil {
				h.t.Error(err)
				return
			}
			b.SetPiece(i, chunk.Ref{Key: key, Offset: 0, Length: p.Ext.Length})
		}(i, p)
	}
	wg.Wait()
	root, err := b.Finish()
	if err != nil {
		h.t.Fatal(err)
	}
	if err := h.mgr.Complete(h.blob, tk.Version, root); err != nil {
		h.t.Fatal(err)
	}
	return tk.Version
}

// TestBuilderMatchesBuild checks the pipelined builder produces trees
// that read back identically to Build's, across randomized overlapping
// writes interleaving both paths.
func TestBuilderMatchesBuild(t *testing.T) {
	geo := segtree.Geometry{Capacity: 1 << 14, Page: 1 << 10}
	h := newHarness(t, geo)
	ref := newHarness(t, geo)

	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 30; round++ {
		n := 1 + rng.Intn(3)
		var l extent.List
		for i := 0; i < n; i++ {
			length := int64(1 + rng.Intn(3000))
			off := rng.Int63n(geo.Capacity - length + 1)
			l = append(l, extent.Extent{Offset: off, Length: length})
		}
		l = l.Normalize()
		fill := byte(round + 1)
		v := vec(t, l, fill)
		var hv, rv uint64
		if round%2 == 0 {
			hv = h.writePipelined(v)
		} else {
			hv = h.write(v)
		}
		rv = ref.write(v)

		q := extent.List{{Offset: 0, Length: geo.Capacity}}
		if got, want := h.read(hv, q), ref.read(rv, q); !bytes.Equal(got, want) {
			t.Fatalf("round %d: pipelined tree diverges from Build", round)
		}
	}
}

// TestBuilderDirty pins the retirement contract: a builder that stored
// any node reports dirty (inner nodes make it dirty before any piece
// lands on multi-page writes), and a fresh builder over a single page
// stays clean until its first piece.
func TestBuilderDirty(t *testing.T) {
	geo := segtree.Geometry{Capacity: 1 << 14, Page: 1 << 10}
	h := newHarness(t, geo)

	// Multi-page write: inner nodes store immediately → dirty at birth.
	tk, err := h.mgr.AssignTicket(h.blob, extent.List{{Offset: 0, Length: 3000}})
	if err != nil {
		t.Fatal(err)
	}
	exts := []extent.Extent{{Offset: 0, Length: 1024}, {Offset: 1024, Length: 1024}, {Offset: 2048, Length: 952}}
	b, err := h.tree.NewBuilder(tk.Version, exts, tk.Borrows)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Dirty() {
		t.Fatal("multi-page builder must be dirty at birth (inner nodes in flight)")
	}
	if err := h.mgr.Abort(h.blob, tk.Version); err != nil {
		t.Fatal(err)
	}

	// Single-page blob (capacity == page): no inner nodes exist at all
	// → clean until a piece lands.
	h = newHarness(t, segtree.Geometry{Capacity: 1 << 10, Page: 1 << 10})
	tk2, err := h.mgr.AssignTicket(h.blob, extent.List{{Offset: 0, Length: 512}})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := h.tree.NewBuilder(tk2.Version, []extent.Extent{{Offset: 0, Length: 512}}, tk2.Borrows)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Dirty() {
		t.Fatal("single-page builder must be clean before any piece")
	}
	key := chunk.Key{Blob: h.blob, Version: tk2.Version, Index: 0}
	if err := h.chunks.Put(key, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	b2.SetPiece(0, chunk.Ref{Key: key, Length: 512})
	if !b2.Dirty() {
		t.Fatal("builder must be dirty after a leaf store started")
	}
	if _, err := b2.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := h.mgr.Abort(h.blob, tk2.Version); err != nil {
		t.Fatal(err)
	}
}

// TestBuilderValidation pins the planning-time contract checks.
func TestBuilderValidation(t *testing.T) {
	geo := segtree.Geometry{Capacity: 1 << 12, Page: 1 << 10}
	h := newHarness(t, geo)
	for _, bad := range [][]extent.Extent{
		{},
		{{Offset: -1, Length: 10}},
		{{Offset: 0, Length: geo.Capacity + 1}},
		{{Offset: 1000, Length: 100}}, // crosses page boundary
		{{Offset: 512, Length: 10}, {Offset: 0, Length: 10}}, // unsorted
	} {
		if _, err := h.tree.NewBuilder(1, bad, nil); err == nil {
			t.Errorf("NewBuilder(%v): want error", bad)
		}
	}
}
