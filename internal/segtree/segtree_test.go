package segtree_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chunk"
	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

// harness bundles a tree with a chunk store and version manager so
// tests can exercise full write/read cycles at the metadata level.
type harness struct {
	t      testing.TB
	tree   *segtree.Tree
	chunks *chunk.MemStore
	mgr    *vmanager.Manager
	blob   uint64
}

func newHarness(t testing.TB, geo segtree.Geometry) *harness {
	t.Helper()
	mgr := vmanager.New(iosim.CostModel{})
	const blob = 1
	if err := mgr.CreateBlob(blob, geo); err != nil {
		t.Fatal(err)
	}
	return &harness{
		t:      t,
		tree:   &segtree.Tree{Blob: blob, Geo: geo, Store: metadata.NewStore(4, iosim.CostModel{})},
		chunks: chunk.NewMemStore(nil),
		mgr:    mgr,
		blob:   blob,
	}
}

// write performs a complete versioned write of the vector and returns
// the assigned version.
func (h *harness) write(v extent.Vec) uint64 {
	h.t.Helper()
	tk, err := h.mgr.AssignTicket(h.blob, v.Extents)
	if err != nil {
		h.t.Fatal(err)
	}
	var placed []segtree.Placed
	idx := uint32(0)
	var start int64
	for _, e := range v.Extents {
		data := v.Buf[start : start+e.Length]
		start += e.Length
		key := chunk.Key{Blob: h.blob, Version: tk.Version, Index: idx}
		idx++
		if err := h.chunks.Put(key, data); err != nil {
			h.t.Fatal(err)
		}
		placed = append(placed, segtree.Placed{
			Ext: e,
			Ref: chunk.Ref{Key: key, Offset: 0, Length: e.Length},
		})
	}
	placed = segtree.SplitPlaced(placed, h.tree.Geo.Page)
	root, err := h.tree.Build(tk.Version, placed, tk.Borrows)
	if err != nil {
		h.t.Fatal(err)
	}
	if err := h.mgr.Complete(h.blob, tk.Version, root); err != nil {
		h.t.Fatal(err)
	}
	return tk.Version
}

// place stores chunks for the given extents (filled with fill) under
// the version and returns page-split placed pieces, without building
// metadata — used by tests that drive Build directly.
func (h *harness) place(version uint64, l extent.List, fill byte) []segtree.Placed {
	h.t.Helper()
	var placed []segtree.Placed
	for i, e := range l {
		buf := make([]byte, e.Length)
		for j := range buf {
			buf[j] = fill
		}
		key := chunk.Key{Blob: h.blob, Version: version, Index: uint32(i)}
		if err := h.chunks.Put(key, buf); err != nil {
			h.t.Fatal(err)
		}
		placed = append(placed, segtree.Placed{
			Ext: e,
			Ref: chunk.Ref{Key: key, Offset: 0, Length: e.Length},
		})
	}
	return segtree.SplitPlaced(placed, h.tree.Geo.Page)
}

// read materializes the requested extents at the given version.
func (h *harness) read(version uint64, q extent.List) []byte {
	h.t.Helper()
	info, err := h.mgr.Snapshot(h.blob, version)
	if err != nil {
		h.t.Fatal(err)
	}
	frags, holes, err := h.tree.Resolve(info.Root, q)
	if err != nil {
		h.t.Fatal(err)
	}
	image := make([]byte, q.Bounding().End())
	for _, f := range frags {
		data, err := h.chunks.Get(f.Ref.Key, f.Ref.Offset, f.Ref.Length)
		if err != nil {
			h.t.Fatal(err)
		}
		copy(image[f.Ext.Offset:], data)
	}
	_ = holes // holes read as zero, already the case in image
	out := make([]byte, q.TotalLength())
	var start int64
	for _, e := range q {
		copy(out[start:], image[e.Offset:e.End()])
		start += e.Length
	}
	return out
}

func vec(t *testing.T, l extent.List, fill byte) extent.Vec {
	t.Helper()
	buf := make([]byte, l.TotalLength())
	for i := range buf {
		buf[i] = fill
	}
	v, err := extent.NewVec(l, buf)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestGeometryValidate(t *testing.T) {
	good := []segtree.Geometry{
		{Capacity: 64, Page: 64},
		{Capacity: 1024, Page: 64},
		{Capacity: 1 << 30, Page: 4096},
	}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Fatalf("%+v: %v", g, err)
		}
	}
	bad := []segtree.Geometry{
		{Capacity: 0, Page: 64},
		{Capacity: 64, Page: 0},
		{Capacity: 192, Page: 64}, // 3 pages: not a power of two
		{Capacity: 100, Page: 64},
		{Capacity: 32, Page: 64},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Fatalf("%+v must fail validation", g)
		}
	}
}

func TestBorrowsGeometry(t *testing.T) {
	g := segtree.Geometry{Capacity: 256, Page: 64} // 4 pages
	// Touch only page 1 ([64,128)).
	bs := g.Borrows(extent.List{{Offset: 64, Length: 64}})
	want := map[extent.Extent]bool{
		{Offset: 0, Length: 64}:    true, // untouched sibling leaf
		{Offset: 64, Length: 64}:   true, // the touched leaf itself
		{Offset: 128, Length: 128}: true, // untouched right subtree
	}
	if len(bs) != len(want) {
		t.Fatalf("Borrows = %v", bs)
	}
	for _, r := range bs {
		if !want[r] {
			t.Fatalf("unexpected borrow range %v", r)
		}
	}
	if got := g.Borrows(nil); got != nil {
		t.Fatalf("Borrows(empty) = %v", got)
	}
}

func TestWriteReadSingleExtent(t *testing.T) {
	h := newHarness(t, segtree.Geometry{Capacity: 1024, Page: 64})
	v := h.write(vec(t, extent.List{{Offset: 100, Length: 200}}, 0xAB))
	got := h.read(v, extent.List{{Offset: 100, Length: 200}})
	for i, b := range got {
		if b != 0xAB {
			t.Fatalf("byte %d = %x", i, b)
		}
	}
}

func TestReadHolesAreZero(t *testing.T) {
	h := newHarness(t, segtree.Geometry{Capacity: 1024, Page: 64})
	v := h.write(vec(t, extent.List{{Offset: 128, Length: 64}}, 0xFF))
	got := h.read(v, extent.List{{Offset: 0, Length: 256}})
	for i := 0; i < 128; i++ {
		if got[i] != 0 {
			t.Fatalf("hole byte %d = %x", i, got[i])
		}
	}
	for i := 128; i < 192; i++ {
		if got[i] != 0xFF {
			t.Fatalf("data byte %d = %x", i, got[i])
		}
	}
	for i := 192; i < 256; i++ {
		if got[i] != 0 {
			t.Fatalf("hole byte %d = %x", i, got[i])
		}
	}
}

func TestWriteNonContiguous(t *testing.T) {
	h := newHarness(t, segtree.Geometry{Capacity: 1024, Page: 64})
	l := extent.List{{Offset: 10, Length: 20}, {Offset: 300, Length: 40}, {Offset: 900, Length: 24}}
	v := h.write(vec(t, l, 0x7E))
	got := h.read(v, l)
	for i, b := range got {
		if b != 0x7E {
			t.Fatalf("byte %d = %x", i, b)
		}
	}
	// The gaps must be holes.
	gap := h.read(v, extent.List{{Offset: 30, Length: 10}})
	for i, b := range gap {
		if b != 0 {
			t.Fatalf("gap byte %d = %x", i, b)
		}
	}
}

func TestSnapshotsAreImmutable(t *testing.T) {
	h := newHarness(t, segtree.Geometry{Capacity: 1024, Page: 64})
	v1 := h.write(vec(t, extent.List{{Offset: 0, Length: 64}}, 1))
	v2 := h.write(vec(t, extent.List{{Offset: 0, Length: 64}}, 2))
	v3 := h.write(vec(t, extent.List{{Offset: 32, Length: 64}}, 3))
	if got := h.read(v1, extent.List{{Offset: 0, Length: 64}}); got[0] != 1 || got[63] != 1 {
		t.Fatalf("v1 = %v...", got[:4])
	}
	if got := h.read(v2, extent.List{{Offset: 0, Length: 64}}); got[0] != 2 {
		t.Fatalf("v2 = %v...", got[:4])
	}
	got := h.read(v3, extent.List{{Offset: 0, Length: 128}})
	for i := 0; i < 32; i++ {
		if got[i] != 2 {
			t.Fatalf("v3 byte %d = %d, want 2 (from v2)", i, got[i])
		}
	}
	for i := 32; i < 96; i++ {
		if got[i] != 3 {
			t.Fatalf("v3 byte %d = %d, want 3", i, got[i])
		}
	}
	for i := 96; i < 128; i++ {
		if got[i] != 0 {
			t.Fatalf("v3 byte %d = %d, want 0", i, got[i])
		}
	}
}

func TestPartialPageOverwrite(t *testing.T) {
	h := newHarness(t, segtree.Geometry{Capacity: 256, Page: 64})
	h.write(vec(t, extent.List{{Offset: 0, Length: 64}}, 0x11))
	v2 := h.write(vec(t, extent.List{{Offset: 16, Length: 16}}, 0x22))
	got := h.read(v2, extent.List{{Offset: 0, Length: 64}})
	for i := 0; i < 64; i++ {
		want := byte(0x11)
		if i >= 16 && i < 32 {
			want = 0x22
		}
		if got[i] != want {
			t.Fatalf("byte %d = %x, want %x", i, got[i], want)
		}
	}
}

func TestPageCrossingWrite(t *testing.T) {
	h := newHarness(t, segtree.Geometry{Capacity: 256, Page: 64})
	// One extent spanning three pages.
	v := h.write(vec(t, extent.List{{Offset: 32, Length: 160}}, 0x5A))
	got := h.read(v, extent.List{{Offset: 0, Length: 256}})
	for i := 0; i < 256; i++ {
		want := byte(0)
		if i >= 32 && i < 192 {
			want = 0x5A
		}
		if got[i] != want {
			t.Fatalf("byte %d = %x, want %x", i, got[i], want)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	h := newHarness(t, segtree.Geometry{Capacity: 256, Page: 64})
	tree := h.tree
	if _, err := tree.Build(1, nil, nil); err == nil {
		t.Fatal("empty build must fail")
	}
	// Piece crossing a page boundary.
	bad := []segtree.Placed{{Ext: extent.Extent{Offset: 60, Length: 10}, Ref: chunk.Ref{Length: 10}}}
	if _, err := tree.Build(1, bad, nil); err == nil {
		t.Fatal("page-crossing piece must fail")
	}
	// Out of range.
	far := []segtree.Placed{{Ext: extent.Extent{Offset: 300, Length: 10}, Ref: chunk.Ref{Length: 10}}}
	if _, err := tree.Build(1, far, nil); !errors.Is(err, segtree.ErrOutOfRange) {
		t.Fatalf("out-of-range err = %v", err)
	}
	// Unsorted pieces.
	unsorted := []segtree.Placed{
		{Ext: extent.Extent{Offset: 64, Length: 8}},
		{Ext: extent.Extent{Offset: 0, Length: 8}},
	}
	if _, err := tree.Build(1, unsorted, nil); err == nil {
		t.Fatal("unsorted pieces must fail")
	}
}

func TestResolveValidation(t *testing.T) {
	h := newHarness(t, segtree.Geometry{Capacity: 256, Page: 64})
	if _, _, err := h.tree.Resolve(segtree.NodeKey{}, extent.List{{Offset: 300, Length: 10}}); !errors.Is(err, segtree.ErrOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	frags, holes, err := h.tree.Resolve(segtree.NodeKey{}, extent.List{{Offset: 0, Length: 10}})
	if err != nil || len(frags) != 0 || !holes.Equal(extent.List{{Offset: 0, Length: 10}}) {
		t.Fatalf("zero root resolve = %v %v %v", frags, holes, err)
	}
	frags, holes, err = h.tree.Resolve(segtree.NodeKey{}, nil)
	if err != nil || frags != nil || holes != nil {
		t.Fatalf("empty query = %v %v %v", frags, holes, err)
	}
}

func TestSplitPlaced(t *testing.T) {
	in := []segtree.Placed{{
		Ext: extent.Extent{Offset: 50, Length: 100},
		Ref: chunk.Ref{Key: chunk.Key{Blob: 1}, Offset: 8, Length: 100},
	}}
	out := segtree.SplitPlaced(in, 64)
	if len(out) != 3 {
		t.Fatalf("split into %d pieces, want 3: %v", len(out), out)
	}
	wantExt := []extent.Extent{{Offset: 50, Length: 14}, {Offset: 64, Length: 64}, {Offset: 128, Length: 22}}
	wantRefOff := []int64{8, 22, 86}
	for i := range out {
		if out[i].Ext != wantExt[i] {
			t.Fatalf("piece %d ext = %v, want %v", i, out[i].Ext, wantExt[i])
		}
		if out[i].Ref.Offset != wantRefOff[i] || out[i].Ref.Length != wantExt[i].Length {
			t.Fatalf("piece %d ref = %+v", i, out[i].Ref)
		}
	}
}

// TestPropRandomWritesMatchOracle performs a random sequence of
// versioned writes and cross-checks every snapshot against a brute-force
// byte-array oracle.
func TestPropRandomWritesMatchOracle(t *testing.T) {
	const space = 512
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := newHarness(t, segtree.Geometry{Capacity: space, Page: 32})
		oracle := make([][]byte, 1, 12)
		oracle[0] = make([]byte, space)
		for round := 1; round <= 10; round++ {
			// Random non-contiguous extent list.
			var l extent.List
			n := r.Intn(4) + 1
			for i := 0; i < n; i++ {
				off := int64(r.Intn(space - 1))
				length := int64(r.Intn(space-int(off)-1) + 1)
				l = append(l, extent.Extent{Offset: off, Length: length})
			}
			l = l.Normalize()
			buf := make([]byte, l.TotalLength())
			for i := range buf {
				buf[i] = byte(round)
			}
			v, err := extent.NewVec(l, buf)
			if err != nil {
				return false
			}
			h.write(v)
			img := make([]byte, space)
			copy(img, oracle[round-1])
			v.ScatterInto(img, 0)
			oracle = append(oracle, img)
		}
		// Check every version in full.
		for ver := 1; ver <= 10; ver++ {
			got := h.read(uint64(ver), extent.List{{Offset: 0, Length: space}})
			for i := range got {
				if got[i] != oracle[ver][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestMetadataSharingAcrossVersions verifies shadowing: an untouched
// subtree creates no new nodes.
func TestMetadataSharingAcrossVersions(t *testing.T) {
	h := newHarness(t, segtree.Geometry{Capacity: 1024, Page: 64}) // 16 pages, depth 5
	h.write(vec(t, extent.List{{Offset: 0, Length: 1024}}, 1))
	store := h.tree.Store.(*metadata.Store)
	full := store.Count()
	// A one-page write must add at most depth+1 nodes (path only).
	h.write(vec(t, extent.List{{Offset: 0, Length: 64}}, 2))
	added := store.Count() - full
	if added > 5 {
		t.Fatalf("one-page write created %d nodes, want <= 5 (path sharing broken)", added)
	}
}
