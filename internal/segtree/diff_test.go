package segtree_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/extent"
	"repro/internal/metadata"
	"repro/internal/segtree"
)

// diffHarness reuses the write harness and exposes Diff by root keys.
func (h *harness) diff(va, vb uint64) extent.List {
	h.t.Helper()
	ia, err := h.mgr.Snapshot(h.blob, va)
	if err != nil {
		h.t.Fatal(err)
	}
	ib, err := h.mgr.Snapshot(h.blob, vb)
	if err != nil {
		h.t.Fatal(err)
	}
	d, err := h.tree.Diff(ia.Root, ib.Root)
	if err != nil {
		h.t.Fatal(err)
	}
	return d
}

func TestDiffIdenticalVersions(t *testing.T) {
	h := newHarness(t, segtree.Geometry{Capacity: 1024, Page: 64})
	v := h.write(vec(t, extent.List{{Offset: 0, Length: 128}}, 1))
	if d := h.diff(v, v); len(d) != 0 {
		t.Fatalf("diff of a version with itself = %v", d)
	}
}

func TestDiffDisjointWrites(t *testing.T) {
	h := newHarness(t, segtree.Geometry{Capacity: 1024, Page: 64})
	v1 := h.write(vec(t, extent.List{{Offset: 0, Length: 64}}, 1))
	v2 := h.write(vec(t, extent.List{{Offset: 512, Length: 64}}, 2))
	d := h.diff(v1, v2)
	// Only the second write's range may differ.
	want := extent.List{{Offset: 512, Length: 64}}
	if !d.Equal(want) {
		t.Fatalf("diff = %v, want %v", d, want)
	}
}

func TestDiffAgainstEmptySnapshot(t *testing.T) {
	h := newHarness(t, segtree.Geometry{Capacity: 1024, Page: 64})
	v1 := h.write(vec(t, extent.List{{Offset: 100, Length: 50}}, 1))
	d := h.diff(0, v1)
	// Everything the write touched must be reported; the diff may be
	// page-conservative but must cover the write and nothing outside
	// its pages.
	written := extent.List{{Offset: 100, Length: 50}}
	if !written.CoveredBy(d) {
		t.Fatalf("diff %v does not cover write %v", d, written)
	}
	pages := extent.List{{Offset: 64, Length: 128}} // pages 1..2
	if !d.CoveredBy(pages) {
		t.Fatalf("diff %v exceeds touched pages %v", d, pages)
	}
}

func TestDiffOverwriteSameRange(t *testing.T) {
	h := newHarness(t, segtree.Geometry{Capacity: 1024, Page: 64})
	l := extent.List{{Offset: 0, Length: 64}}
	v1 := h.write(vec(t, l, 1))
	v2 := h.write(vec(t, l, 2))
	d := h.diff(v1, v2)
	if !l.CoveredBy(d) {
		t.Fatalf("diff %v must cover the overwritten range", d)
	}
	if !d.CoveredBy(l) {
		t.Fatalf("diff %v reports untouched bytes", d)
	}
}

func TestDiffSharedSubtreesSkipped(t *testing.T) {
	// Write a large region once, then a tiny region; the diff between
	// the two versions must be small even though the file is large.
	h := newHarness(t, segtree.Geometry{Capacity: 1 << 16, Page: 64})
	v1 := h.write(vec(t, extent.List{{Offset: 0, Length: 1 << 16}}, 1))
	v2 := h.write(vec(t, extent.List{{Offset: 4096, Length: 16}}, 2))
	store := h.tree.Store.(*metadata.Store)
	before := store.Meters()[0].Stats().Ops
	for _, m := range store.Meters()[1:] {
		before += m.Stats().Ops
	}
	d := h.diff(v1, v2)
	after := int64(0)
	for _, m := range store.Meters() {
		after += m.Stats().Ops
	}
	want := extent.List{{Offset: 4096, Length: 16}}
	if !want.CoveredBy(d) || !d.CoveredBy(extent.List{{Offset: 4096, Length: 64}}) {
		t.Fatalf("diff = %v", d)
	}
	// The walk must fetch only the changed path, not the whole tree
	// (tree has 1024 leaves; the path is ~11 nodes per version).
	if fetched := after - before; fetched > 64 {
		t.Fatalf("diff fetched %d nodes; shadowing not exploited", fetched)
	}
}

func TestDiffPartialPageOverwrite(t *testing.T) {
	h := newHarness(t, segtree.Geometry{Capacity: 256, Page: 64})
	v1 := h.write(vec(t, extent.List{{Offset: 0, Length: 64}}, 1))
	v2 := h.write(vec(t, extent.List{{Offset: 16, Length: 8}}, 2))
	d := h.diff(v1, v2)
	changed := extent.List{{Offset: 16, Length: 8}}
	if !changed.CoveredBy(d) {
		t.Fatalf("diff %v misses the overwrite", d)
	}
	if !d.CoveredBy(extent.List{{Offset: 0, Length: 64}}) {
		t.Fatalf("diff %v reports bytes outside the touched page", d)
	}
}

// TestPropDiffCoversRealChanges: for random version pairs, every byte
// whose content differs between the snapshots must be inside the diff.
func TestPropDiffCoversRealChanges(t *testing.T) {
	const space = 512
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := newHarness(t, segtree.Geometry{Capacity: space, Page: 32})
		images := [][]byte{make([]byte, space)}
		for round := 1; round <= 8; round++ {
			var l extent.List
			n := r.Intn(3) + 1
			for i := 0; i < n; i++ {
				off := int64(r.Intn(space - 1))
				length := int64(r.Intn(space-int(off)-1) + 1)
				l = append(l, extent.Extent{Offset: off, Length: length})
			}
			l = l.Normalize()
			buf := make([]byte, l.TotalLength())
			for i := range buf {
				buf[i] = byte(round*16 + r.Intn(16))
			}
			v, err := extent.NewVec(l, buf)
			if err != nil {
				return false
			}
			h.write(v)
			img := make([]byte, space)
			copy(img, images[round-1])
			v.ScatterInto(img, 0)
			images = append(images, img)
		}
		va := uint64(r.Intn(9))
		vb := uint64(r.Intn(9))
		d := h.diff(va, vb)
		for off := int64(0); off < space; off++ {
			if images[va][off] != images[vb][off] {
				if !d.IntersectsExtent(extent.Extent{Offset: off, Length: 1}) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLeafChainResolution forces the Prev-chain path: build version 2
// referencing a predecessor leaf that is stored only afterwards, as
// happens when the predecessor's writer is still in flight.
func TestLeafChainResolution(t *testing.T) {
	h := newHarness(t, segtree.Geometry{Capacity: 128, Page: 64})
	// Assign ticket 1 but do NOT complete it yet (simulates in-flight
	// writer); ticket 2 writes a different part of the same page.
	tk1, err := h.mgr.AssignTicket(h.blob, extent.List{{Offset: 0, Length: 16}})
	if err != nil {
		t.Fatal(err)
	}
	tk2, err := h.mgr.AssignTicket(h.blob, extent.List{{Offset: 32, Length: 16}})
	if err != nil {
		t.Fatal(err)
	}
	// Writer 2 builds FIRST: its leaf cannot merge the (missing)
	// predecessor and must chain.
	placed2 := h.place(tk2.Version, extent.List{{Offset: 32, Length: 16}}, 2)
	root2, err := h.tree.Build(tk2.Version, placed2, tk2.Borrows)
	if err != nil {
		t.Fatal(err)
	}
	// Now writer 1 builds and completes.
	placed1 := h.place(tk1.Version, extent.List{{Offset: 0, Length: 16}}, 1)
	root1, err := h.tree.Build(tk1.Version, placed1, tk1.Borrows)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.mgr.Complete(h.blob, tk1.Version, root1); err != nil {
		t.Fatal(err)
	}
	if err := h.mgr.Complete(h.blob, tk2.Version, root2); err != nil {
		t.Fatal(err)
	}
	// Reading snapshot 2 must resolve the chain: bytes from both
	// writers plus zero holes.
	got := h.read(2, extent.List{{Offset: 0, Length: 64}})
	for i := 0; i < 64; i++ {
		want := byte(0)
		switch {
		case i < 16:
			want = 1
		case i >= 32 && i < 48:
			want = 2
		}
		if got[i] != want {
			t.Fatalf("byte %d = %d, want %d (chain resolution broken)", i, got[i], want)
		}
	}
}
