package segtree

import (
	"repro/internal/chunk"
	"repro/internal/extent"
)

// ExclusiveChunks computes which chunk keys become unreferenced when
// the snapshot rooted at drop is dropped while the snapshots rooted at
// keep stay retained: the keys reachable from drop's tree but from
// none of the keepers'. This is the refcount-by-metadata-diff walk the
// garbage collector runs before deleting anything.
//
// Like Diff, the walk exploits shadowing: at every tree range the
// dropped version's node key is compared against the keepers' keys for
// the same range, and a subtree shared with any keeper (identical
// NodeKey) is skipped without being fetched — everything below it is
// reachable from that keeper and therefore not exclusive. The cost is
// proportional to the metadata that distinguishes drop from its
// retained neighbors, not to the blob size.
//
// Reachability is what readers can observe: at each leaf the fragment
// chain is resolved newest-first over the full page, exactly as
// Resolve does, so a chunk buried under a chain but fully covered by
// newer fragments counts as unreachable for that version.
//
// The walk requires the invariant the blob write path maintains: each
// chunk is stored page-split (blob.storeChunks splits pieces at page
// boundaries BEFORE storing), so a chunk key is only ever referenced
// by leaves of the one page it was written to, which makes the
// per-page set difference globally correct. Refs produced by placing
// one chunk across pages (SplitPlaced over a multi-page chunk) violate
// the assumption: a key could then be protected by a keeper at one
// page yet reported exclusive at another.
func (t *Tree) ExclusiveChunks(drop NodeKey, keep []NodeKey) ([]chunk.Key, error) {
	var out []chunk.Key
	seen := make(map[chunk.Key]bool)
	var walk func(off, size int64, drop NodeKey, keep []NodeKey) error
	walk = func(off, size int64, drop NodeKey, keep []NodeKey) error {
		if drop.IsZero() {
			return nil // hole on the dropped side: nothing referenced
		}
		for _, k := range keep {
			if k == drop {
				return nil // shared subtree: every ref below is retained
			}
		}
		if size == t.Geo.Page {
			return t.exclusiveLeaf(off, size, drop, keep, seen, &out)
		}
		dn, err := t.Store.GetNode(t.Blob, drop)
		if err != nil {
			return err
		}
		// Fetch each distinct keeper node once (two keepers may have
		// borrowed the same subtree and carry the same key).
		var kl, kr []NodeKey
		fetched := make(map[NodeKey]bool, len(keep))
		for _, k := range keep {
			if k.IsZero() || fetched[k] {
				continue
			}
			fetched[k] = true
			kn, err := t.Store.GetNode(t.Blob, k)
			if err != nil {
				return err
			}
			kl = append(kl, kn.Left)
			kr = append(kr, kn.Right)
		}
		half := size / 2
		if err := walk(off, half, dn.Left, kl); err != nil {
			return err
		}
		return walk(off+half, half, dn.Right, kr)
	}
	if err := walk(0, t.Geo.Capacity, drop, keep); err != nil {
		return nil, err
	}
	return out, nil
}

// exclusiveLeaf resolves the dropped leaf's reachable refs over its
// whole page and subtracts every chunk key reachable from any keeper
// leaf of the same page.
func (t *Tree) exclusiveLeaf(off, size int64, drop NodeKey, keep []NodeKey, seen map[chunk.Key]bool, out *[]chunk.Key) error {
	dropKeys, err := t.reachableKeys(drop, off, size)
	if err != nil {
		return err
	}
	if len(dropKeys) == 0 {
		return nil
	}
	kept := make(map[chunk.Key]bool)
	fetched := make(map[NodeKey]bool, len(keep))
	for _, k := range keep {
		if k.IsZero() || fetched[k] {
			continue
		}
		fetched[k] = true
		keys, err := t.reachableKeys(k, off, size)
		if err != nil {
			return err
		}
		for _, key := range keys {
			kept[key] = true
		}
	}
	for _, key := range dropKeys {
		if !kept[key] && !seen[key] {
			seen[key] = true
			*out = append(*out, key)
		}
	}
	return nil
}

// reachableKeys lists the distinct chunk keys a reader can reach from
// one leaf over its full page (any sub-range read resolves a subset of
// these, so this is the complete reference set of the leaf).
func (t *Tree) reachableKeys(leaf NodeKey, off, size int64) ([]chunk.Key, error) {
	n, err := t.Store.GetNode(t.Blob, leaf)
	if err != nil {
		return nil, err
	}
	var frags []Fragment
	var holes extent.List
	if err := t.resolveLeaf(n, extent.List{{Offset: off, Length: size}}, &frags, &holes); err != nil {
		return nil, err
	}
	var keys []chunk.Key
	dedup := make(map[chunk.Key]bool, len(frags))
	for _, f := range frags {
		if !dedup[f.Ref.Key] {
			dedup[f.Ref.Key] = true
			keys = append(keys, f.Ref.Key)
		}
	}
	return keys, nil
}
