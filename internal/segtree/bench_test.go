package segtree_test

import (
	"fmt"
	"testing"

	"repro/internal/extent"
	"repro/internal/segtree"
)

// BenchmarkBuild measures metadata construction for one write of n
// non-contiguous regions (unmetered store: pure CPU + allocation).
func BenchmarkBuild(b *testing.B) {
	for _, regions := range []int{8, 64} {
		b.Run(fmt.Sprintf("regions=%d", regions), func(b *testing.B) {
			h := newHarness(b, segtree.Geometry{Capacity: 1 << 24, Page: 64 << 10})
			var l extent.List
			for i := 0; i < regions; i++ {
				l = append(l, extent.Extent{Offset: int64(i) * 128 << 10, Length: 64 << 10})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tk, err := h.mgr.AssignTicket(h.blob, l)
				if err != nil {
					b.Fatal(err)
				}
				placed := h.place(tk.Version, l, byte(i))
				root, err := h.tree.Build(tk.Version, placed, tk.Borrows)
				if err != nil {
					b.Fatal(err)
				}
				if err := h.mgr.Complete(h.blob, tk.Version, root); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkResolve measures read-path metadata resolution over a
// deeply versioned blob.
func BenchmarkResolve(b *testing.B) {
	h := newHarness(b, segtree.Geometry{Capacity: 1 << 22, Page: 16 << 10})
	// Create 64 versions of partially overlapping writes.
	for v := 0; v < 64; v++ {
		l := extent.List{{Offset: int64(v%8) * 256 << 10, Length: 512 << 10}}
		buf := make([]byte, l.TotalLength())
		vec, _ := extent.NewVec(l, buf)
		h.write(vec)
	}
	info, err := h.mgr.LatestPublished(h.blob)
	if err != nil {
		b.Fatal(err)
	}
	query := extent.List{{Offset: 0, Length: 1 << 22}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := h.tree.Resolve(info.Root, query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiff measures snapshot diffing between adjacent versions.
func BenchmarkDiff(b *testing.B) {
	h := newHarness(b, segtree.Geometry{Capacity: 1 << 22, Page: 16 << 10})
	full := extent.List{{Offset: 0, Length: 1 << 22}}
	buf := make([]byte, full.TotalLength())
	vec, _ := extent.NewVec(full, buf)
	h.write(vec)
	small := extent.List{{Offset: 1 << 20, Length: 32 << 10}}
	sbuf := make([]byte, small.TotalLength())
	svec, _ := extent.NewVec(small, sbuf)
	h.write(svec)
	i1, _ := h.mgr.Snapshot(h.blob, 1)
	i2, _ := h.mgr.Snapshot(h.blob, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.tree.Diff(i1.Root, i2.Root); err != nil {
			b.Fatal(err)
		}
	}
}
