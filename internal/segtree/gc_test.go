package segtree_test

import (
	"math/rand"
	"testing"

	"repro/internal/chunk"
	"repro/internal/extent"
	"repro/internal/segtree"
)

// writePaged performs a versioned write that stores one chunk per
// page-split piece, mirroring the real write path (blob.storeChunks):
// ExclusiveChunks requires the chunk-per-page invariant, which the
// generic harness write (one chunk per extent, SplitPlaced across
// pages) does not maintain.
func (h *harness) writePaged(v extent.Vec) uint64 {
	h.t.Helper()
	tk, err := h.mgr.AssignTicket(h.blob, v.Extents)
	if err != nil {
		h.t.Fatal(err)
	}
	page := h.tree.Geo.Page
	var placed []segtree.Placed
	idx := uint32(0)
	var start int64
	for _, e := range v.Extents {
		data := v.Buf[start : start+e.Length]
		start += e.Length
		off := e.Offset
		for len(data) > 0 {
			boundary := (off/page + 1) * page
			n := int64(len(data))
			if boundary-off < n {
				n = boundary - off
			}
			key := chunk.Key{Blob: h.blob, Version: tk.Version, Index: idx}
			idx++
			if err := h.chunks.Put(key, data[:n]); err != nil {
				h.t.Fatal(err)
			}
			placed = append(placed, segtree.Placed{
				Ext: extent.Extent{Offset: off, Length: n},
				Ref: chunk.Ref{Key: key, Offset: 0, Length: n},
			})
			off += n
			data = data[n:]
		}
	}
	root, err := h.tree.Build(tk.Version, placed, tk.Borrows)
	if err != nil {
		h.t.Fatal(err)
	}
	if err := h.mgr.Complete(h.blob, tk.Version, root); err != nil {
		h.t.Fatal(err)
	}
	return tk.Version
}

// reachable returns the distinct chunk keys a reader can observe at
// the version — the brute-force reference set ExclusiveChunks must
// agree with.
func (h *harness) reachable(version uint64) map[chunk.Key]bool {
	h.t.Helper()
	info, err := h.mgr.Snapshot(h.blob, version)
	if err != nil {
		h.t.Fatal(err)
	}
	out := make(map[chunk.Key]bool)
	if info.Root.IsZero() {
		return out
	}
	frags, _, err := h.tree.Resolve(info.Root, extent.List{{Offset: 0, Length: h.tree.Geo.Capacity}})
	if err != nil {
		h.t.Fatal(err)
	}
	for _, f := range frags {
		out[f.Ref.Key] = true
	}
	return out
}

func (h *harness) root(version uint64) segtree.NodeKey {
	h.t.Helper()
	info, err := h.mgr.Snapshot(h.blob, version)
	if err != nil {
		h.t.Fatal(err)
	}
	return info.Root
}

func TestExclusiveChunksOverwrittenVsShared(t *testing.T) {
	geo := segtree.Geometry{Capacity: 8 << 10, Page: 1 << 10}
	h := newHarness(t, geo)
	// v1 writes pages 0-3; v2 fully overwrites pages 0-1 and leaves
	// 2-3 visible.
	v1 := h.writePaged(vec(t, extent.List{{Offset: 0, Length: 4 << 10}}, 0x11))
	v2 := h.writePaged(vec(t, extent.List{{Offset: 0, Length: 2 << 10}}, 0x22))

	keys, err := h.tree.ExclusiveChunks(h.root(v1), []segtree.NodeKey{h.root(v2)})
	if err != nil {
		t.Fatal(err)
	}
	// v1's chunk pieces for pages 0-1 are exclusive; pages 2-3 are
	// still reachable from v2 (borrowed subtree or chain).
	v2Reach := h.reachable(v2)
	if len(keys) == 0 {
		t.Fatal("no exclusive chunks for a half-overwritten version")
	}
	for _, k := range keys {
		if k.Version != v1 {
			t.Fatalf("exclusive key %s not written by v1", k)
		}
		if v2Reach[k] {
			t.Fatalf("exclusive key %s still reachable from v2", k)
		}
	}
	// Every v1 key NOT exclusive must be reachable from v2.
	excl := make(map[chunk.Key]bool, len(keys))
	for _, k := range keys {
		excl[k] = true
	}
	for k := range h.reachable(v1) {
		if !excl[k] && !v2Reach[k] {
			t.Fatalf("key %s neither exclusive nor reachable from keeper", k)
		}
	}
}

func TestExclusiveChunksSharedRootFetchesNothing(t *testing.T) {
	geo := segtree.Geometry{Capacity: 4 << 10, Page: 1 << 10}
	h := newHarness(t, geo)
	v1 := h.writePaged(vec(t, extent.List{{Offset: 0, Length: 4 << 10}}, 0x33))
	root := h.root(v1)
	count := &countingStore{NodeStore: h.tree.Store}
	tree := &segtree.Tree{Blob: h.tree.Blob, Geo: geo, Store: count}
	// Dropping a version whose root a keeper shares (an aborted
	// version publishes its predecessor's root) must do zero metadata
	// I/O: the walk prunes at the shared root.
	keys, err := tree.ExclusiveChunks(root, []segtree.NodeKey{root})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 || count.gets != 0 {
		t.Fatalf("shared-root walk: %d keys, %d fetches; want 0, 0", len(keys), count.gets)
	}
}

type countingStore struct {
	segtree.NodeStore
	gets int
}

func (c *countingStore) GetNode(blob uint64, key segtree.NodeKey) (*segtree.Node, error) {
	c.gets++
	return c.NodeStore.GetNode(blob, key)
}

// TestPropExclusiveChunksMatchBruteForce: for random overlapping write
// histories, ExclusiveChunks(drop, others) must equal the brute-force
// set difference reachable(drop) \ union(reachable(others)) for every
// choice of dropped version.
func TestPropExclusiveChunksMatchBruteForce(t *testing.T) {
	geo := segtree.Geometry{Capacity: 16 << 10, Page: 1 << 10}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		h := newHarness(t, geo)
		n := 3 + rng.Intn(6)
		var versions []uint64
		for i := 0; i < n; i++ {
			var l extent.List
			for e := 0; e < 1+rng.Intn(3); e++ {
				off := rng.Int63n(geo.Capacity - 1)
				length := 1 + rng.Int63n(3<<10)
				if off+length > geo.Capacity {
					length = geo.Capacity - off
				}
				l = append(l, extent.Extent{Offset: off, Length: length})
			}
			l = l.Normalize()
			versions = append(versions, h.writePaged(vec(t, l, byte(i+1))))
		}
		for _, drop := range versions {
			var keep []segtree.NodeKey
			union := make(map[chunk.Key]bool)
			for _, v := range versions {
				if v == drop {
					continue
				}
				if r := h.root(v); !r.IsZero() {
					keep = append(keep, r)
				}
				for k := range h.reachable(v) {
					union[k] = true
				}
			}
			got, err := h.tree.ExclusiveChunks(h.root(drop), keep)
			if err != nil {
				t.Fatal(err)
			}
			want := make(map[chunk.Key]bool)
			for k := range h.reachable(drop) {
				if !union[k] {
					want[k] = true
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d drop v%d: got %d exclusive keys, want %d (%v vs %v)",
					trial, drop, len(got), len(want), got, want)
			}
			for _, k := range got {
				if !want[k] {
					t.Fatalf("trial %d drop v%d: key %s exclusive but reachable from a keeper", trial, drop, k)
				}
			}
		}
	}
}
