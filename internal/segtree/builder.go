package segtree

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/chunk"
	"repro/internal/extent"
)

// Builder is the pipelined counterpart of Build: it plans the new tree
// from the write's extents alone — which are known before any chunk is
// uploaded — stores every inner node immediately (inner nodes reference
// child KEYS, which the plan determines without data), and completes
// each leaf as soon as the chunk refs covering it arrive via SetPiece.
// This overlaps chunk upload with metadata construction: by the time
// the last chunk lands, most of the tree is already stored, and Finish
// only waits for the stragglers.
//
// Ordering guarantee: the version is not visible to any reader until
// the caller publishes the root returned by Finish — node stores need
// no ordering among themselves (metadata is a DHT of immutable nodes),
// so pipelining changes latency, never semantics.
//
// A Builder whose write fails midway may already have stored nodes
// under ticket v; Dirty reports whether any node store was attempted,
// which decides how the caller must retire the ticket (a tombstone
// build would collide with the stored nodes — see blob.retireTicket).
type Builder struct {
	t    *Tree
	v    uint64
	root NodeKey

	mu     sync.Mutex
	pieces []Placed // ref filled in by SetPiece
	leaves []*builderLeaf
	owner  []int // piece index → leaf index

	sem   chan struct{}
	wg    sync.WaitGroup
	errMu sync.Mutex
	err   error

	dirty atomic.Bool
}

// builderLeaf is one planned leaf waiting for its chunk refs.
type builderLeaf struct {
	key       NodeKey
	r         extent.Extent
	prev      uint64
	pieceIdx  []int
	remaining int
}

// NewBuilder validates and plans the update for ticket v over the
// given extents (sorted, non-overlapping, page-bounded — the same
// contract as Build's pieces), stores all inner nodes immediately, and
// returns a builder awaiting the leaves' chunk refs. Extent i of exts
// corresponds to SetPiece(i, ...).
func (t *Tree) NewBuilder(v uint64, exts []extent.Extent, borrows map[extent.Extent]uint64) (*Builder, error) {
	if len(exts) == 0 {
		return nil, errors.New("segtree: empty update")
	}
	for i, e := range exts {
		if e.Offset < 0 || e.End() > t.Geo.Capacity {
			return nil, fmt.Errorf("%w: piece %v", ErrOutOfRange, e)
		}
		if e.Offset/t.Geo.Page != (e.End()-1)/t.Geo.Page {
			return nil, fmt.Errorf("segtree: piece %v crosses page boundary", e)
		}
		if i > 0 && exts[i-1].End() > e.Offset {
			return nil, fmt.Errorf("segtree: pieces unsorted or overlapping at %d", i)
		}
	}

	b := &Builder{
		t:      t,
		v:      v,
		pieces: make([]Placed, len(exts)),
		owner:  make([]int, len(exts)),
		sem:    make(chan struct{}, maxMetaParallel),
	}
	for i, e := range exts {
		b.pieces[i].Ext = e
	}

	// The plan mirrors Build's: recursion over piece index ranges
	// instead of Placed slices, since only extents are known.
	type pending struct {
		key  NodeKey
		node *Node
	}
	var inners []pending
	var plan func(off, size int64, lo, hi int) NodeKey
	plan = func(off, size int64, lo, hi int) NodeKey {
		r := extent.Extent{Offset: off, Length: size}
		if lo == hi {
			w := borrows[r]
			if w == 0 {
				return NodeKey{}
			}
			return NodeKey{Version: w, Offset: off, Size: size}
		}
		key := NodeKey{Version: v, Offset: off, Size: size}
		if size == t.Geo.Page {
			leaf := &builderLeaf{key: key, r: r, prev: borrows[r], remaining: hi - lo}
			for i := lo; i < hi; i++ {
				leaf.pieceIdx = append(leaf.pieceIdx, i)
				b.owner[i] = len(b.leaves)
			}
			b.leaves = append(b.leaves, leaf)
			return key
		}
		half := size / 2
		mid := off + half
		split := lo
		for split < hi && exts[split].Offset < mid {
			split++
		}
		lk := plan(off, half, lo, split)
		rk := plan(mid, half, split, hi)
		inners = append(inners, pending{key: key, node: &Node{Left: lk, Right: rk}})
		return key
	}
	b.root = plan(0, t.Geo.Capacity, 0, len(exts))

	// Inner nodes go out now — the pipelining head start. Every store
	// marks the builder dirty first, so a failure observer never sees
	// dirty=false while a node write is in flight.
	for _, p := range inners {
		b.dirty.Store(true)
		b.wg.Add(1)
		go func(p pending) {
			defer b.wg.Done()
			b.sem <- struct{}{}
			defer func() { <-b.sem }()
			if err := t.Store.PutNode(t.Blob, p.key, p.node); err != nil {
				b.fail(err)
			}
		}(p)
	}
	return b, nil
}

// SetPiece hands the builder the chunk ref now holding piece i's data.
// When the last piece of a leaf arrives, the leaf is built and stored
// in the background. Safe for concurrent use; each piece must be set
// exactly once.
func (b *Builder) SetPiece(i int, ref chunk.Ref) {
	b.mu.Lock()
	b.pieces[i].Ref = ref
	leaf := b.leaves[b.owner[i]]
	leaf.remaining--
	ready := leaf.remaining == 0
	var placed []Placed
	if ready {
		placed = make([]Placed, len(leaf.pieceIdx))
		for j, idx := range leaf.pieceIdx {
			placed[j] = b.pieces[idx]
		}
	}
	b.mu.Unlock()
	if !ready {
		return
	}
	b.dirty.Store(true)
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.sem <- struct{}{}
		defer func() { <-b.sem }()
		n, err := b.t.buildLeaf(b.v, leaf.r, placed, leaf.prev)
		if err == nil {
			err = b.t.Store.PutNode(b.t.Blob, leaf.key, n)
		}
		if err != nil {
			b.fail(err)
		}
	}()
}

// Finish waits for every in-flight node store and returns the new root
// key, or the first error observed. Callers must have SetPiece'd every
// piece (on the success path) before calling Finish; on the failure
// path Finish may be called early to drain in-flight stores.
func (b *Builder) Finish() (NodeKey, error) {
	b.wg.Wait()
	b.errMu.Lock()
	err := b.err
	b.errMu.Unlock()
	if err != nil {
		return NodeKey{}, err
	}
	return b.root, nil
}

// Dirty reports whether the builder attempted to store any node under
// its ticket. A clean builder's ticket can be retired with a tombstone
// build; a dirty one must be aborted instead, because the tombstone's
// node keys would collide with already-stored nodes.
func (b *Builder) Dirty() bool { return b.dirty.Load() }

func (b *Builder) fail(err error) {
	b.errMu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.errMu.Unlock()
}
