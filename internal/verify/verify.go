// Package verify checks MPI atomicity experimentally. Writers stamp
// their data with a unique byte per call; after a concurrent run the
// checker reconstructs which call produced every byte of the final
// file state and decides whether that outcome is equivalent to SOME
// serial order of the calls — the definition of MPI atomic mode.
//
// The decision procedure: for every byte covered by more than one
// call, the observed winner w must be one of the covering calls, and
// every other covering call v must precede w in the serial order
// (edge v → w). The outcome is serializable iff the resulting
// precedence graph is acyclic. The POSIX per-extent strategy produces
// interleaved states that fail this check under overlap, which is the
// paper's motivating inconsistency.
package verify

import (
	"errors"
	"fmt"

	"repro/internal/extent"
)

// Call describes one atomic write call under test.
type Call struct {
	// ID must be unique per call and in [1, 255] so it can be used as
	// the stamp byte.
	ID int
	// Extents is the call's (normalized) file extent list.
	Extents extent.List
}

// StampByte returns the byte value call id writes everywhere.
func StampByte(id int) byte { return byte(id) }

// MakeVec builds the stamped write vector for a call.
func MakeVec(c Call) (extent.Vec, error) {
	if c.ID < 1 || c.ID > 255 {
		return extent.Vec{}, fmt.Errorf("verify: call ID %d out of [1,255]", c.ID)
	}
	buf := make([]byte, c.Extents.TotalLength())
	for i := range buf {
		buf[i] = StampByte(c.ID)
	}
	return extent.NewVec(c.Extents, buf)
}

// ErrNotSerializable reports an outcome no serial order explains.
var ErrNotSerializable = errors.New("verify: outcome not equivalent to any serial order (MPI atomicity violated)")

// ErrForeignData reports bytes whose value matches no covering call.
var ErrForeignData = errors.New("verify: byte not written by any covering call (interleaving or corruption)")

// CheckSerializable validates the final image (file contents starting
// at byte offset base) against the set of calls. Bytes covered by no
// call are ignored.
func CheckSerializable(image []byte, base int64, calls []Call) error {
	byID := make(map[int]*Call, len(calls))
	for i := range calls {
		c := &calls[i]
		if c.ID < 1 || c.ID > 255 {
			return fmt.Errorf("verify: call ID %d out of [1,255]", c.ID)
		}
		if dup := byID[c.ID]; dup != nil {
			return fmt.Errorf("verify: duplicate call ID %d", c.ID)
		}
		byID[c.ID] = c
	}

	// Precedence edges: pred[w] = set of calls that must precede w.
	pred := make(map[int]map[int]bool)
	for off := int64(0); off < int64(len(image)); off++ {
		fileOff := base + off
		var covering []int
		for _, c := range calls {
			if coversByte(c.Extents, fileOff) {
				covering = append(covering, c.ID)
			}
		}
		if len(covering) == 0 {
			continue
		}
		winner := int(image[off])
		found := false
		for _, id := range covering {
			if id == winner {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%w: offset %d holds %d, covering calls %v",
				ErrForeignData, fileOff, winner, covering)
		}
		if len(covering) == 1 {
			continue
		}
		edges := pred[winner]
		if edges == nil {
			edges = make(map[int]bool)
			pred[winner] = edges
		}
		for _, id := range covering {
			if id != winner {
				edges[id] = true
			}
		}
	}
	if cycle := findCycle(pred); cycle != nil {
		return fmt.Errorf("%w: precedence cycle %v", ErrNotSerializable, cycle)
	}
	return nil
}

// coversByte reports whether the normalized list covers the offset.
func coversByte(l extent.List, off int64) bool {
	return l.IntersectsExtent(extent.Extent{Offset: off, Length: 1})
}

// findCycle runs DFS over the precedence graph (edge w→v for every
// v ∈ pred[w], meaning "v before w" reversed; any directed cycle in
// either orientation witnesses non-serializability). It returns a
// cycle's node list, or nil.
func findCycle(pred map[int]map[int]bool) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int)
	var stack []int
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		stack = append(stack, u)
		for v := range pred[u] {
			switch color[v] {
			case gray:
				// Extract the cycle from the stack.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == v {
						break
					}
				}
				return true
			case white:
				if dfs(v) {
					return true
				}
			}
		}
		color[u] = black
		stack = stack[:len(stack)-1]
		return false
	}
	for u := range pred {
		if color[u] == white {
			if dfs(u) {
				return cycle
			}
		}
	}
	return nil
}

// Reader abstracts "read the final state" over any backend.
type Reader interface {
	ReadList(q extent.List, atomic bool) ([]byte, error)
}

// CheckCalls reads the union of all call extents through the reader
// and checks serializability of the observed outcome.
func CheckCalls(r Reader, calls []Call) error {
	var union extent.List
	for _, c := range calls {
		union = union.Union(c.Extents)
	}
	if len(union) == 0 {
		return nil
	}
	bound := union.Bounding()
	data, err := r.ReadList(union, true)
	if err != nil {
		return fmt.Errorf("verify: read final state: %w", err)
	}
	// Materialize the image over the bounding range.
	image := make([]byte, bound.Length)
	vec := extent.Vec{Extents: union, Buf: data}
	vec.ScatterInto(image, bound.Offset)
	return CheckSerializable(image, bound.Offset, calls)
}
