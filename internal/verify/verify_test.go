package verify

import (
	"errors"
	"testing"

	"repro/internal/extent"
)

func TestMakeVec(t *testing.T) {
	v, err := MakeVec(Call{ID: 3, Extents: extent.List{{Offset: 0, Length: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range v.Buf {
		if b != 3 {
			t.Fatalf("stamp = %v", v.Buf)
		}
	}
	if _, err := MakeVec(Call{ID: 0}); err == nil {
		t.Fatal("ID 0 must fail")
	}
	if _, err := MakeVec(Call{ID: 256}); err == nil {
		t.Fatal("ID 256 must fail")
	}
}

func TestSerialOutcomePasses(t *testing.T) {
	// Call 1 writes [0,10), call 2 writes [5,15): image applying 1 then 2.
	image := []byte{1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2}
	calls := []Call{
		{ID: 1, Extents: extent.List{{Offset: 0, Length: 10}}},
		{ID: 2, Extents: extent.List{{Offset: 5, Length: 10}}},
	}
	if err := CheckSerializable(image, 0, calls); err != nil {
		t.Fatal(err)
	}
	// And the opposite order.
	image2 := []byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2}
	for i := 0; i < 10; i++ {
		image2[i] = 1
	}
	if err := CheckSerializable(image2, 0, calls); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedOutcomeFails(t *testing.T) {
	// Two calls covering the same two regions, with the overlap split
	// between them: region A shows call 1, region B shows call 2 —
	// impossible under any serial order.
	calls := []Call{
		{ID: 1, Extents: extent.List{{Offset: 0, Length: 4}, {Offset: 8, Length: 4}}},
		{ID: 2, Extents: extent.List{{Offset: 0, Length: 4}, {Offset: 8, Length: 4}}},
	}
	image := []byte{1, 1, 1, 1, 0, 0, 0, 0, 2, 2, 2, 2}
	err := CheckSerializable(image, 0, calls)
	if !errors.Is(err, ErrNotSerializable) {
		t.Fatalf("err = %v, want ErrNotSerializable", err)
	}
}

func TestForeignDataFails(t *testing.T) {
	calls := []Call{{ID: 1, Extents: extent.List{{Offset: 0, Length: 4}}}}
	image := []byte{1, 1, 9, 1}
	err := CheckSerializable(image, 0, calls)
	if !errors.Is(err, ErrForeignData) {
		t.Fatalf("err = %v, want ErrForeignData", err)
	}
}

func TestUncoveredBytesIgnored(t *testing.T) {
	calls := []Call{{ID: 1, Extents: extent.List{{Offset: 10, Length: 2}}}}
	image := make([]byte, 20)
	image[10], image[11] = 1, 1
	image[0] = 99 // uncovered garbage is fine
	if err := CheckSerializable(image, 0, calls); err != nil {
		t.Fatal(err)
	}
}

func TestBaseOffsetHandling(t *testing.T) {
	calls := []Call{{ID: 5, Extents: extent.List{{Offset: 1000, Length: 3}}}}
	image := []byte{5, 5, 5}
	if err := CheckSerializable(image, 1000, calls); err != nil {
		t.Fatal(err)
	}
}

func TestThreeWayCycleDetected(t *testing.T) {
	// Pairwise overlaps: 1-2 overlap in X, 2-3 in Y, 3-1 in Z.
	// Winners: X→2 over 1, Y→3 over 2, Z→1 over 3: cycle 1<2<3<1.
	calls := []Call{
		{ID: 1, Extents: extent.List{{Offset: 0, Length: 2}, {Offset: 4, Length: 2}}},
		{ID: 2, Extents: extent.List{{Offset: 0, Length: 2}, {Offset: 2, Length: 2}}},
		{ID: 3, Extents: extent.List{{Offset: 2, Length: 2}, {Offset: 4, Length: 2}}},
	}
	image := []byte{2, 2, 3, 3, 1, 1}
	err := CheckSerializable(image, 0, calls)
	if !errors.Is(err, ErrNotSerializable) {
		t.Fatalf("err = %v, want ErrNotSerializable", err)
	}
}

func TestThreeWaySerialPasses(t *testing.T) {
	calls := []Call{
		{ID: 1, Extents: extent.List{{Offset: 0, Length: 2}, {Offset: 4, Length: 2}}},
		{ID: 2, Extents: extent.List{{Offset: 0, Length: 2}, {Offset: 2, Length: 2}}},
		{ID: 3, Extents: extent.List{{Offset: 2, Length: 2}, {Offset: 4, Length: 2}}},
	}
	// Order 1, 2, 3: [0,2)=2, [2,4)=3, [4,6)=3.
	image := []byte{2, 2, 3, 3, 3, 3}
	if err := CheckSerializable(image, 0, calls); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	calls := []Call{
		{ID: 1, Extents: extent.List{{Offset: 0, Length: 1}}},
		{ID: 1, Extents: extent.List{{Offset: 1, Length: 1}}},
	}
	if err := CheckSerializable([]byte{1, 1}, 0, calls); err == nil {
		t.Fatal("duplicate IDs must be rejected")
	}
}

func TestInvalidIDRejected(t *testing.T) {
	calls := []Call{{ID: 300, Extents: extent.List{{Offset: 0, Length: 1}}}}
	if err := CheckSerializable([]byte{0}, 0, calls); err == nil {
		t.Fatal("ID out of range must be rejected")
	}
}

// fakeReader serves a fixed image.
type fakeReader struct {
	image []byte
}

func (f *fakeReader) ReadList(q extent.List, _ bool) ([]byte, error) {
	out := make([]byte, q.TotalLength())
	vec := extent.Vec{Extents: q, Buf: out}
	vec.GatherFrom(f.image, 0)
	return out, nil
}

func TestCheckCalls(t *testing.T) {
	image := make([]byte, 32)
	for i := 0; i < 8; i++ {
		image[i] = 1
	}
	for i := 8; i < 16; i++ {
		image[i] = 2
	}
	calls := []Call{
		{ID: 1, Extents: extent.List{{Offset: 0, Length: 8}}},
		{ID: 2, Extents: extent.List{{Offset: 8, Length: 8}}},
	}
	if err := CheckCalls(&fakeReader{image: image}, calls); err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte inside call 2's region.
	image[9] = 77
	if err := CheckCalls(&fakeReader{image: image}, calls); err == nil {
		t.Fatal("corruption must be detected")
	}
}

func TestCheckCallsEmpty(t *testing.T) {
	if err := CheckCalls(&fakeReader{}, nil); err != nil {
		t.Fatal(err)
	}
}
