// Package metrics is a dependency-free, race-safe metrics registry:
// counters, gauges and fixed-bucket latency histograms with
// Prometheus-text exposition. It exists so every stage of the write and
// read paths (ticket, commit, publish, chunk put/get, cache, repair,
// reap) can be timed and counted without pulling an external client
// library into the build.
//
// Handles returned by Counter/Gauge/Histogram are nil-tolerant: methods
// on a nil handle are no-ops, so components instrument unconditionally
// and callers that never call SetMetrics pay a single nil check per
// operation.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name/value pair attached to a series.
type Label struct {
	Key   string
	Value string
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing int64. The zero value is ready
// to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Negative n is ignored: counters are monotone.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an int64 that can go up and down. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value. Zero on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram of float64 observations
// (latencies are observed in seconds). Observations and snapshots are
// serialized by a per-histogram mutex, so a snapshot is always
// internally consistent: Count == sum of bucket counts and Sum reflects
// exactly the observations counted. A nil *Histogram is a no-op.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, strictly increasing; implicit +Inf last
	counts []uint64  // len(bounds)+1; last is the +Inf overflow bucket
	sum    float64
	count  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// ObserveSince records the wall-clock seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// HistogramSnapshot is a consistent point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds; the final overflow bucket is +Inf
	Counts []uint64  // per-bucket (not cumulative); len(Bounds)+1
	Sum    float64
	Count  uint64
}

// Snapshot returns a consistent copy. The zero snapshot on nil.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.count,
	}
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the containing bucket. Returns 0 for an empty
// histogram. Values in the overflow bucket report the highest finite
// bound (the histogram cannot resolve beyond it).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if rank <= next && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			if i >= len(s.Bounds) { // overflow bucket: no finite upper bound
				return lo
			}
			hi := s.Bounds[i]
			frac := 0.0
			if c > 0 {
				frac = (rank - cum) / float64(c)
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	if len(s.Bounds) > 0 {
		return s.Bounds[len(s.Bounds)-1]
	}
	return 0
}

// ExponentialBuckets returns n upper bounds start, start*factor,
// start*factor^2, ... for use as histogram bounds.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		return nil
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// LatencyBuckets is the default bound set for wall-clock latency
// histograms, in seconds: 1µs up to ~4.2s in powers of four.
func LatencyBuckets() []float64 { return ExponentialBuckets(1e-6, 4, 12) }

// series is one (name, labels) time series.
type series struct {
	labels string // canonical rendered form, e.g. `a="x",b="y"`; "" if none
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type family struct {
	name   string
	kind   kind
	series map[string]*series // keyed by canonical label string
	order  []string           // insertion order of label keys for stable-ish output
}

// Registry holds named metric families. All methods are safe for
// concurrent use. A nil *Registry hands out nil handles, so an
// un-wired component degrades to no-ops throughout.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

func (r *Registry) getSeries(name string, k kind, bounds []float64, labels []Label) *series {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: k, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, k))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		switch k {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			if bounds == nil {
				bounds = LatencyBuckets()
			}
			s.h = &Histogram{
				bounds: append([]float64(nil), bounds...),
				counts: make([]uint64, len(bounds)+1),
			}
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns (creating if needed) the counter series name{labels}.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.getSeries(name, kindCounter, nil, labels).c
}

// Gauge returns (creating if needed) the gauge series name{labels}.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.getSeries(name, kindGauge, nil, labels).g
}

// Histogram returns (creating if needed) the histogram series
// name{labels}. bounds is used only when the series is first created;
// pass nil to use LatencyBuckets.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.getSeries(name, kindHistogram, bounds, labels).h
}

// flatFamily is a lock-free view of one family: stable series pointers
// collected under the registry lock, values read afterwards.
type flatFamily struct {
	name   string
	kind   kind
	series []*series
}

func (r *Registry) flatten() []flatFamily {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]flatFamily, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		ff := flatFamily{name: f.name, kind: f.kind}
		for _, key := range f.order {
			ff.series = append(ff.series, f.series[key])
		}
		out = append(out, ff)
	}
	return out
}

// Snapshot flattens every series into a map for tests and assertions.
// Counters and gauges appear under `name` or `name{labels}`; histograms
// are expanded Prometheus-style into `name_count`, `name_sum` and
// cumulative `name_bucket{le="..."}` entries (including le="+Inf").
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	for _, f := range r.flatten() {
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				out[seriesName(f.name, s.labels)] = float64(s.c.Value())
			case kindGauge:
				out[seriesName(f.name, s.labels)] = float64(s.g.Value())
			case kindHistogram:
				hs := s.h.Snapshot()
				out[seriesName(f.name+"_count", s.labels)] = float64(hs.Count)
				out[seriesName(f.name+"_sum", s.labels)] = hs.Sum
				var cum uint64
				for i, c := range hs.Counts {
					cum += c
					le := "+Inf"
					if i < len(hs.Bounds) {
						le = formatFloat(hs.Bounds[i])
					}
					out[seriesName(f.name+"_bucket", joinLabels(s.labels, `le=`+fmt.Sprintf("%q", le)))] = float64(cum)
				}
			}
		}
	}
	return out
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format, families sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.flatten() {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name, s.labels), s.c.Value()); err != nil {
					return err
				}
			case kindGauge:
				if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name, s.labels), s.g.Value()); err != nil {
					return err
				}
			case kindHistogram:
				hs := s.h.Snapshot()
				var cum uint64
				for i, c := range hs.Counts {
					cum += c
					le := "+Inf"
					if i < len(hs.Bounds) {
						le = formatFloat(hs.Bounds[i])
					}
					ser := seriesName(f.name+"_bucket", joinLabels(s.labels, `le=`+fmt.Sprintf("%q", le)))
					if _, err := fmt.Fprintf(w, "%s %d\n", ser, cum); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s %g\n", seriesName(f.name+"_sum", s.labels), hs.Sum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name+"_count", s.labels), hs.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
