package metrics

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", nil)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(0.5)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatalf("nil handles must read as zero")
	}
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil registry snapshot must be empty, got %v", snap)
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reads_total", Label{"kind", "hot"})
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if again := r.Counter("reads_total", Label{"kind", "hot"}); again != c {
		t.Fatalf("same name+labels must return the same handle")
	}
	if other := r.Counter("reads_total", Label{"kind", "cold"}); other == c {
		t.Fatalf("different labels must return a different series")
	}
	g := r.Gauge("depth")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", Label{"a", "1"}, Label{"b", "2"})
	b := r.Counter("c", Label{"b", "2"}, Label{"a", "1"})
	if a != b {
		t.Fatalf("label order must not distinguish series")
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	var sum uint64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
	want := []uint64{1, 2, 1, 1}
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, c, want[i], s.Counts)
		}
	}
	if got := s.Quantile(0.5); got <= 1 || got > 2 {
		t.Fatalf("p50 = %g, want in (1,2]", got)
	}
	// Overflow-bucket quantile reports the highest finite bound.
	if got := s.Quantile(1.0); got != 4 {
		t.Fatalf("p100 = %g, want 4", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1e-6, 4, 3)
	want := []float64{1e-6, 4e-6, 16e-6}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-18 {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
	if ExponentialBuckets(0, 4, 3) != nil || ExponentialBuckets(1, 1, 3) != nil || ExponentialBuckets(1, 2, 0) != nil {
		t.Fatalf("degenerate bucket specs must return nil")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("bs_cache_hits_total").Add(7)
	r.Gauge("bs_heal_queue_depth").Set(3)
	h := r.Histogram("bs_vm_ticket_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE bs_cache_hits_total counter\nbs_cache_hits_total 7\n",
		"# TYPE bs_heal_queue_depth gauge\nbs_heal_queue_depth 3\n",
		"# TYPE bs_vm_ticket_seconds histogram\n",
		`bs_vm_ticket_seconds_bucket{le="0.001"} 1`,
		`bs_vm_ticket_seconds_bucket{le="0.01"} 1`,
		`bs_vm_ticket_seconds_bucket{le="+Inf"} 2`,
		"bs_vm_ticket_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}
	// Families must be sorted by name.
	if strings.Index(text, "bs_cache_hits_total") > strings.Index(text, "bs_heal_queue_depth") {
		t.Fatalf("families not sorted:\n%s", text)
	}
}

func TestSnapshotFlattening(t *testing.T) {
	r := NewRegistry()
	r.Counter("gets_total", Label{"locality", "local"}).Add(4)
	h := r.Histogram("lat", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	snap := r.Snapshot()
	if got := snap[`gets_total{locality="local"}`]; got != 4 {
		t.Fatalf("flattened counter = %g, want 4", got)
	}
	if got := snap["lat_count"]; got != 2 {
		t.Fatalf("lat_count = %g, want 2", got)
	}
	if got := snap[`lat_bucket{le="1"}`]; got != 1 {
		t.Fatalf(`lat_bucket{le="1"} = %g, want 1`, got)
	}
	if got := snap[`lat_bucket{le="+Inf"}`]; got != 2 {
		t.Fatalf(`lat_bucket{le="+Inf"} = %g, want 2`, got)
	}
}

// TestConcurrentSnapshotConsistency is the registry torture test: many
// writers hammer a simulated cache (each lookup increments exactly one
// of hits/misses and observes a latency histogram) while a reader takes
// mid-churn snapshots. Every snapshot must be internally consistent —
// histogram count equals the sum of its buckets, cumulative buckets are
// monotone in le, counters never decrease between snapshots — and at
// quiescence hits+misses must equal the exact number of lookups issued.
// Run under -race this also proves the registry itself is race-free.
func TestConcurrentSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const opsPerWorker = 5000

	hits := r.Counter("cache_hits_total")
	misses := r.Counter("cache_misses_total")
	depth := r.Gauge("queue_depth")
	lat := r.Histogram("lookup_seconds", []float64{1e-6, 1e-5, 1e-4, 1e-3})

	var issued atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				if (i+w)%3 == 0 {
					misses.Inc()
				} else {
					hits.Inc()
				}
				lat.Observe(float64(i%7) * 1e-6)
				depth.Add(1)
				depth.Add(-1)
				issued.Add(1)
			}
		}(w)
	}

	// Snapshot reader: runs concurrently with the writers.
	var prev map[string]float64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			checkConsistent(t, snap, prev)
			prev = snap
		}
	}()

	wg.Wait()
	close(stop)
	<-done
	if t.Failed() {
		return
	}

	// Quiescent totals: hits+misses == lookups issued, histogram saw
	// every lookup, gauge drained to zero.
	final := r.Snapshot()
	total := final["cache_hits_total"] + final["cache_misses_total"]
	if want := float64(issued.Load()); total != want {
		t.Fatalf("hits+misses = %g, want %g lookups", total, want)
	}
	if got := final["lookup_seconds_count"]; got != float64(issued.Load()) {
		t.Fatalf("histogram count = %g, want %d", got, issued.Load())
	}
	if got := final["queue_depth"]; got != 0 {
		t.Fatalf("drained gauge = %g, want 0", got)
	}
}

// checkConsistent asserts the internal invariants of one snapshot and
// monotonicity of counters/histogram counts against the previous one.
func checkConsistent(t *testing.T, snap, prev map[string]float64) {
	t.Helper()
	// Histogram: the +Inf cumulative bucket must equal _count (count ==
	// sum of buckets), and cumulative buckets must be monotone.
	if c, ok := snap["lookup_seconds_count"]; ok {
		inf := snap[`lookup_seconds_bucket{le="+Inf"}`]
		if inf != c {
			t.Errorf("bucket sum %g != count %g", inf, c)
		}
		var last float64
		for _, le := range []string{`1e-06`, `1e-05`, `0.0001`, `0.001`, `+Inf`} {
			v := snap[`lookup_seconds_bucket{le="`+le+`"}`]
			if v < last {
				t.Errorf("cumulative bucket le=%s decreased: %g < %g", le, v, last)
			}
			last = v
		}
	}
	if prev == nil {
		return
	}
	for _, name := range []string{"cache_hits_total", "cache_misses_total", "lookup_seconds_count"} {
		if snap[name] < prev[name] {
			t.Errorf("%s went backwards: %g -> %g", name, prev[name], snap[name])
		}
	}
}
