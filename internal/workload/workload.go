// Package workload generates the deterministic access patterns used by
// the paper's evaluation: the dense-overlap non-contiguous pattern of
// the scalability experiment, the MPI-tile-IO tile pattern, the
// ghost-cell halo pattern of the motivating applications, and the
// skewed hot/cold read pattern of the read-tier experiment. All
// generators are pure functions of their spec (pickers of their spec
// and seed), so every experiment is reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/datatype"
	"repro/internal/extent"
)

// OverlapSpec describes the synthetic Experiment-1 pattern: every
// client writes Regions non-contiguous regions of RegionSize bytes;
// adjacent clients' regions overlap by OverlapFraction of a region.
//
// Layout: the file is divided into Regions stripes; within stripe i,
// client w's region starts at i*stripeLen + w*shift with
// shift = RegionSize*(1-OverlapFraction). OverlapFraction 1 makes all
// clients write identical extent lists (total overlap, the paper's
// "extreme case"); 0 makes them disjoint.
type OverlapSpec struct {
	Clients         int
	Regions         int
	RegionSize      int64
	OverlapFraction float64
}

// Validate checks the spec.
func (s OverlapSpec) Validate() error {
	if s.Clients < 1 || s.Regions < 1 || s.RegionSize < 1 {
		return fmt.Errorf("workload: overlap spec needs positive clients/regions/size, got %+v", s)
	}
	if s.OverlapFraction < 0 || s.OverlapFraction > 1 {
		return fmt.Errorf("workload: overlap fraction %v out of [0,1]", s.OverlapFraction)
	}
	return nil
}

// shift is the per-client offset within a stripe.
func (s OverlapSpec) shift() int64 {
	sh := int64(float64(s.RegionSize) * (1 - s.OverlapFraction))
	if s.OverlapFraction < 1 && sh == 0 {
		sh = 1 // keep distinct clients distinct unless fully overlapped
	}
	return sh
}

// stripeLen is the file distance between consecutive region slots.
func (s OverlapSpec) stripeLen() int64 {
	return int64(s.Clients)*s.shift() + s.RegionSize
}

// ExtentsFor returns client w's extent list.
func (s OverlapSpec) ExtentsFor(client int) extent.List {
	out := make(extent.List, 0, s.Regions)
	for i := 0; i < s.Regions; i++ {
		off := int64(i)*s.stripeLen() + int64(client)*s.shift()
		out = append(out, extent.Extent{Offset: off, Length: s.RegionSize})
	}
	return out
}

// BytesPerClient is the payload size of one client's write call.
func (s OverlapSpec) BytesPerClient() int64 {
	return int64(s.Regions) * s.RegionSize
}

// FileSpan is the total byte range the pattern touches.
func (s OverlapSpec) FileSpan() int64 {
	return int64(s.Regions-1)*s.stripeLen() + int64(s.Clients-1)*s.shift() + s.RegionSize
}

// HotColdSpec describes the skewed read pattern of the read-tier
// experiment: a keyspace of Chunks chunk indices where the front
// HotFraction of the keyspace (the hot set) receives HotProb of all
// picks and the remaining cold tail shares the rest — the classic
// 90/10 shape of visualization readers re-fetching the frame they are
// rendering while occasionally paging history.
type HotColdSpec struct {
	// Chunks is the keyspace size: picks are chunk indices in
	// [0, Chunks).
	Chunks int
	// HotFraction is the fraction of the keyspace that is hot
	// (rounded up to at least one chunk).
	HotFraction float64
	// HotProb is the probability a pick lands in the hot set.
	HotProb float64
}

// Validate checks the spec.
func (s HotColdSpec) Validate() error {
	if s.Chunks < 1 {
		return fmt.Errorf("workload: hot/cold spec needs a positive keyspace, got %+v", s)
	}
	if s.HotFraction <= 0 || s.HotFraction > 1 {
		return fmt.Errorf("workload: hot fraction %v out of (0,1]", s.HotFraction)
	}
	if s.HotProb < 0 || s.HotProb > 1 {
		return fmt.Errorf("workload: hot probability %v out of [0,1]", s.HotProb)
	}
	return nil
}

// HotChunks is the hot-set size in chunks (at least one). A fractional
// boundary rounds up, matching the HotFraction doc: 15 chunks at 0.1
// give a 2-chunk hot set, not 1.
func (s HotColdSpec) HotChunks() int {
	hot := int(math.Ceil(float64(s.Chunks) * s.HotFraction))
	if hot < 1 {
		hot = 1
	}
	if hot > s.Chunks {
		hot = s.Chunks
	}
	return hot
}

// Picker returns a deterministic chunk-index generator seeded per
// reader: equal (spec, seed) pairs produce equal pick sequences, so a
// measured hit rate replays exactly.
func (s HotColdSpec) Picker(seed int64) func() int {
	rng := rand.New(rand.NewSource(seed))
	hot := s.HotChunks()
	cold := s.Chunks - hot
	return func() int {
		if cold == 0 || rng.Float64() < s.HotProb {
			return rng.Intn(hot)
		}
		return hot + rng.Intn(cold)
	}
}

// TileSpec describes the MPI-tile-IO pattern: a TilesX × TilesY grid
// of tiles, each TileX × TileY elements of ElementSize bytes, where
// adjacent tiles share OverlapX columns / OverlapY rows — the ghost
// regions that make the concurrent writes overlap.
type TileSpec struct {
	TilesX, TilesY     int
	TileX, TileY       int
	ElementSize        int64
	OverlapX, OverlapY int
}

// Validate checks the spec.
func (s TileSpec) Validate() error {
	if s.TilesX < 1 || s.TilesY < 1 || s.TileX < 1 || s.TileY < 1 || s.ElementSize < 1 {
		return fmt.Errorf("workload: tile spec needs positive dims, got %+v", s)
	}
	if s.OverlapX < 0 || s.OverlapX >= s.TileX || s.OverlapY < 0 || s.OverlapY >= s.TileY {
		return fmt.Errorf("workload: overlap (%d,%d) must be within tile (%d,%d)",
			s.OverlapX, s.OverlapY, s.TileX, s.TileY)
	}
	return nil
}

// Ranks is the number of processes the pattern needs.
func (s TileSpec) Ranks() int { return s.TilesX * s.TilesY }

// ArrayDims returns the global array size in elements (width, height).
func (s TileSpec) ArrayDims() (w, h int) {
	w = s.TilesX*(s.TileX-s.OverlapX) + s.OverlapX
	h = s.TilesY*(s.TileY-s.OverlapY) + s.OverlapY
	return w, h
}

// TileOrigin returns the element coordinates of rank's tile origin.
func (s TileSpec) TileOrigin(rank int) (x, y int) {
	tx := rank % s.TilesX
	ty := rank / s.TilesX
	return tx * (s.TileX - s.OverlapX), ty * (s.TileY - s.OverlapY)
}

// Subarray returns the MPI subarray datatype describing rank's tile in
// the global array, usable directly as an MPI-I/O filetype.
func (s TileSpec) Subarray(rank int) datatype.Subarray {
	w, h := s.ArrayDims()
	x, y := s.TileOrigin(rank)
	return datatype.Subarray{
		Sizes:    []int{h, w},
		Subsizes: []int{s.TileY, s.TileX},
		Starts:   []int{y, x},
		Elem:     datatype.Elementary{Width: s.ElementSize},
	}
}

// ExtentsFor returns rank's file extent list (one extent per tile row,
// merged where rows happen to be contiguous).
func (s TileSpec) ExtentsFor(rank int) extent.List {
	return s.Subarray(rank).Flatten()
}

// BytesPerRank is the payload of one tile write.
func (s TileSpec) BytesPerRank() int64 {
	return int64(s.TileX) * int64(s.TileY) * s.ElementSize
}

// FileBytes is the size of the global array in bytes.
func (s TileSpec) FileBytes() int64 {
	w, h := s.ArrayDims()
	return int64(w) * int64(h) * s.ElementSize
}

// HaloSpec describes the ghost-cell pattern of domain-decomposition
// simulations: a PX × PY process grid over a global 2D domain; each
// process owns a CoreX × CoreY block and writes it *including* a halo
// of Halo cells on every side, so neighbouring writes overlap by
// 2*Halo cells.
type HaloSpec struct {
	PX, PY       int
	CoreX, CoreY int
	Halo         int
	ElementSize  int64
}

// Validate checks the spec.
func (s HaloSpec) Validate() error {
	if s.PX < 1 || s.PY < 1 || s.CoreX < 1 || s.CoreY < 1 || s.ElementSize < 1 {
		return fmt.Errorf("workload: halo spec needs positive dims, got %+v", s)
	}
	if s.Halo < 0 || s.Halo > s.CoreX || s.Halo > s.CoreY {
		return fmt.Errorf("workload: halo %d larger than core (%d,%d)", s.Halo, s.CoreX, s.CoreY)
	}
	return nil
}

// Ranks is the number of processes.
func (s HaloSpec) Ranks() int { return s.PX * s.PY }

// DomainDims returns the global domain in elements.
func (s HaloSpec) DomainDims() (w, h int) {
	return s.PX * s.CoreX, s.PY * s.CoreY
}

// Block returns rank's written block in element coordinates
// (x, y, width, height), clipped to the domain.
func (s HaloSpec) Block(rank int) (x, y, w, h int) {
	px := rank % s.PX
	py := rank / s.PX
	dw, dh := s.DomainDims()
	x0 := px*s.CoreX - s.Halo
	y0 := py*s.CoreY - s.Halo
	x1 := (px+1)*s.CoreX + s.Halo
	y1 := (py+1)*s.CoreY + s.Halo
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > dw {
		x1 = dw
	}
	if y1 > dh {
		y1 = dh
	}
	return x0, y0, x1 - x0, y1 - y0
}

// Subarray returns the datatype for rank's halo-extended block.
func (s HaloSpec) Subarray(rank int) datatype.Subarray {
	dw, dh := s.DomainDims()
	x, y, w, h := s.Block(rank)
	return datatype.Subarray{
		Sizes:    []int{dh, dw},
		Subsizes: []int{h, w},
		Starts:   []int{y, x},
		Elem:     datatype.Elementary{Width: s.ElementSize},
	}
}

// ExtentsFor returns rank's file extent list.
func (s HaloSpec) ExtentsFor(rank int) extent.List {
	return s.Subarray(rank).Flatten()
}

// BytesPerRank is the payload of rank's write.
func (s HaloSpec) BytesPerRank(rank int) int64 {
	_, _, w, h := s.Block(rank)
	return int64(w) * int64(h) * s.ElementSize
}

// CheckpointSpec describes the N-1 strided checkpoint pattern of
// defensive-I/O applications: every one of Ranks processes dumps
// Segments segments of SegmentSize bytes into one shared file, with
// the segments of all ranks interleaved round-robin — segment s of
// rank r lands at offset (s*Ranks + r) * SegmentSize. Each epoch
// rewrites the same extents, so consecutive checkpoints contend on
// the same chunks and old epochs become garbage the moment retention
// drops them.
type CheckpointSpec struct {
	// Ranks is the number of writer processes sharing the file.
	Ranks int
	// Segments is the number of strided segments each rank writes per
	// checkpoint epoch.
	Segments int
	// SegmentSize is the bytes per segment.
	SegmentSize int64
}

// Validate checks the spec.
func (s CheckpointSpec) Validate() error {
	if s.Ranks < 1 || s.Segments < 1 || s.SegmentSize < 1 {
		return fmt.Errorf("workload: checkpoint spec needs positive ranks/segments/size, got %+v", s)
	}
	return nil
}

// ExtentsFor returns rank's strided extent list for one epoch. The
// lists of distinct ranks are disjoint and interleave exactly; the
// same rank writes the same extents every epoch.
func (s CheckpointSpec) ExtentsFor(rank int) extent.List {
	out := make(extent.List, 0, s.Segments)
	for seg := 0; seg < s.Segments; seg++ {
		off := (int64(seg)*int64(s.Ranks) + int64(rank)) * s.SegmentSize
		out = append(out, extent.Extent{Offset: off, Length: s.SegmentSize})
	}
	return out
}

// BytesPerRank is the payload of one rank's checkpoint write.
func (s CheckpointSpec) BytesPerRank() int64 {
	return int64(s.Segments) * s.SegmentSize
}

// FileSpan is the shared file size: all ranks' segments tile it with
// no holes.
func (s CheckpointSpec) FileSpan() int64 {
	return int64(s.Ranks) * int64(s.Segments) * s.SegmentSize
}
