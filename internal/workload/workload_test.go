package workload

import (
	"testing"

	"repro/internal/extent"
)

func TestOverlapSpecValidate(t *testing.T) {
	good := OverlapSpec{Clients: 4, Regions: 8, RegionSize: 64, OverlapFraction: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []OverlapSpec{
		{Clients: 0, Regions: 1, RegionSize: 1},
		{Clients: 1, Regions: 0, RegionSize: 1},
		{Clients: 1, Regions: 1, RegionSize: 0},
		{Clients: 1, Regions: 1, RegionSize: 1, OverlapFraction: -0.1},
		{Clients: 1, Regions: 1, RegionSize: 1, OverlapFraction: 1.1},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Fatalf("case %d must fail", i)
		}
	}
}

func TestOverlapFullOverlapIdenticalLists(t *testing.T) {
	s := OverlapSpec{Clients: 4, Regions: 3, RegionSize: 100, OverlapFraction: 1}
	l0 := s.ExtentsFor(0)
	for w := 1; w < 4; w++ {
		if !s.ExtentsFor(w).Equal(l0) {
			t.Fatalf("full overlap: client %d differs: %v vs %v", w, s.ExtentsFor(w), l0)
		}
	}
}

func TestOverlapZeroOverlapDisjoint(t *testing.T) {
	s := OverlapSpec{Clients: 4, Regions: 3, RegionSize: 100, OverlapFraction: 0}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			if s.ExtentsFor(a).Overlaps(s.ExtentsFor(b)) {
				t.Fatalf("zero overlap: clients %d,%d overlap", a, b)
			}
		}
	}
}

func TestOverlapPartial(t *testing.T) {
	s := OverlapSpec{Clients: 2, Regions: 1, RegionSize: 100, OverlapFraction: 0.5}
	l0, l1 := s.ExtentsFor(0), s.ExtentsFor(1)
	inter := l0.Intersect(l1)
	if got := inter.TotalLength(); got != 50 {
		t.Fatalf("overlap bytes = %d, want 50", got)
	}
}

func TestOverlapRegionsNonContiguousPerClient(t *testing.T) {
	s := OverlapSpec{Clients: 4, Regions: 8, RegionSize: 64, OverlapFraction: 0.75}
	l := s.ExtentsFor(2)
	if len(l) != 8 {
		t.Fatalf("regions = %d", len(l))
	}
	if !l.IsNormalized() {
		t.Fatalf("list not sorted/disjoint: %v", l)
	}
	if s.BytesPerClient() != 8*64 {
		t.Fatalf("BytesPerClient = %d", s.BytesPerClient())
	}
	// All extents must fit in the declared span.
	if l[len(l)-1].End() > s.FileSpan() {
		t.Fatalf("extent %v beyond FileSpan %d", l[len(l)-1], s.FileSpan())
	}
}

func TestTileSpecValidate(t *testing.T) {
	good := TileSpec{TilesX: 2, TilesY: 2, TileX: 8, TileY: 8, ElementSize: 4, OverlapX: 2, OverlapY: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := TileSpec{TilesX: 2, TilesY: 2, TileX: 8, TileY: 8, ElementSize: 4, OverlapX: 8}
	if bad.Validate() == nil {
		t.Fatal("overlap >= tile must fail")
	}
}

func TestTileArrayDims(t *testing.T) {
	s := TileSpec{TilesX: 3, TilesY: 2, TileX: 10, TileY: 8, ElementSize: 1, OverlapX: 2, OverlapY: 1}
	w, h := s.ArrayDims()
	if w != 3*8+2 || h != 2*7+1 {
		t.Fatalf("dims = %dx%d", w, h)
	}
	if s.Ranks() != 6 {
		t.Fatalf("ranks = %d", s.Ranks())
	}
}

func TestTileNeighboursOverlap(t *testing.T) {
	s := TileSpec{TilesX: 2, TilesY: 1, TileX: 8, TileY: 4, ElementSize: 1, OverlapX: 2, OverlapY: 0}
	l0, l1 := s.ExtentsFor(0), s.ExtentsFor(1)
	inter := l0.Intersect(l1)
	// Overlap = 2 columns × 4 rows = 8 elements.
	if got := inter.TotalLength(); got != 8 {
		t.Fatalf("tile overlap bytes = %d, want 8", got)
	}
}

func TestTileNoOverlapDisjoint(t *testing.T) {
	s := TileSpec{TilesX: 2, TilesY: 2, TileX: 4, TileY: 4, ElementSize: 2, OverlapX: 0, OverlapY: 0}
	for a := 0; a < s.Ranks(); a++ {
		for b := a + 1; b < s.Ranks(); b++ {
			if s.ExtentsFor(a).Overlaps(s.ExtentsFor(b)) {
				t.Fatalf("tiles %d,%d overlap", a, b)
			}
		}
	}
	// Union of all tiles covers the whole array exactly.
	var union extent.List
	for r := 0; r < s.Ranks(); r++ {
		union = union.Union(s.ExtentsFor(r))
	}
	if got, want := union.TotalLength(), s.FileBytes(); got != want {
		t.Fatalf("union = %d bytes, want %d", got, want)
	}
}

func TestTileUnionCoversArrayWithOverlap(t *testing.T) {
	s := TileSpec{TilesX: 3, TilesY: 3, TileX: 6, TileY: 6, ElementSize: 4, OverlapX: 2, OverlapY: 2}
	var union extent.List
	for r := 0; r < s.Ranks(); r++ {
		union = union.Union(s.ExtentsFor(r))
	}
	if got, want := union.TotalLength(), s.FileBytes(); got != want {
		t.Fatalf("union = %d bytes, want full array %d", got, want)
	}
	if s.BytesPerRank() != 6*6*4 {
		t.Fatalf("BytesPerRank = %d", s.BytesPerRank())
	}
}

func TestTileOrigins(t *testing.T) {
	s := TileSpec{TilesX: 2, TilesY: 2, TileX: 8, TileY: 8, ElementSize: 1, OverlapX: 2, OverlapY: 2}
	cases := map[int][2]int{
		0: {0, 0}, 1: {6, 0}, 2: {0, 6}, 3: {6, 6},
	}
	for rank, want := range cases {
		x, y := s.TileOrigin(rank)
		if x != want[0] || y != want[1] {
			t.Fatalf("rank %d origin = (%d,%d), want %v", rank, x, y, want)
		}
	}
}

func TestHaloSpec(t *testing.T) {
	s := HaloSpec{PX: 2, PY: 2, CoreX: 8, CoreY: 8, Halo: 1, ElementSize: 1}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Ranks() != 4 {
		t.Fatalf("ranks = %d", s.Ranks())
	}
	// Corner rank 0: halo clipped at domain edges.
	x, y, w, h := s.Block(0)
	if x != 0 || y != 0 || w != 9 || h != 9 {
		t.Fatalf("block 0 = (%d,%d,%d,%d)", x, y, w, h)
	}
	// Rank 3 (bottom right): starts at core-halo.
	x, y, w, h = s.Block(3)
	if x != 7 || y != 7 || w != 9 || h != 9 {
		t.Fatalf("block 3 = (%d,%d,%d,%d)", x, y, w, h)
	}
	// Horizontal neighbours overlap by 2*halo columns.
	inter := s.ExtentsFor(0).Intersect(s.ExtentsFor(1))
	if got := inter.TotalLength(); got != 2*9 {
		t.Fatalf("halo overlap = %d, want %d", got, 2*9)
	}
	if s.BytesPerRank(0) != 81 {
		t.Fatalf("BytesPerRank = %d", s.BytesPerRank(0))
	}
}

func TestHaloValidate(t *testing.T) {
	bad := HaloSpec{PX: 1, PY: 1, CoreX: 4, CoreY: 4, Halo: 5, ElementSize: 1}
	if bad.Validate() == nil {
		t.Fatal("halo > core must fail")
	}
	if (HaloSpec{}).Validate() == nil {
		t.Fatal("zero spec must fail")
	}
}

func TestHaloZeroDisjoint(t *testing.T) {
	s := HaloSpec{PX: 3, PY: 3, CoreX: 4, CoreY: 4, Halo: 0, ElementSize: 2}
	for a := 0; a < s.Ranks(); a++ {
		for b := a + 1; b < s.Ranks(); b++ {
			if s.ExtentsFor(a).Overlaps(s.ExtentsFor(b)) {
				t.Fatalf("halo-0 blocks %d,%d overlap", a, b)
			}
		}
	}
}

func TestHotColdValidate(t *testing.T) {
	good := HotColdSpec{Chunks: 100, HotFraction: 0.1, HotProb: 0.9}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []HotColdSpec{
		{Chunks: 0, HotFraction: 0.1, HotProb: 0.9},
		{Chunks: 10, HotFraction: 0, HotProb: 0.9},
		{Chunks: 10, HotFraction: 1.1, HotProb: 0.9},
		{Chunks: 10, HotFraction: 0.1, HotProb: -0.1},
		{Chunks: 10, HotFraction: 0.1, HotProb: 1.1},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Fatalf("case %d must fail", i)
		}
	}
}

func TestHotColdPickerDeterministicAndSkewed(t *testing.T) {
	s := HotColdSpec{Chunks: 200, HotFraction: 0.1, HotProb: 0.9}
	if got := s.HotChunks(); got != 20 {
		t.Fatalf("hot set = %d, want 20", got)
	}
	a, b := s.Picker(7), s.Picker(7)
	other := s.Picker(8)
	hot, diff := 0, false
	const picks = 10000
	for i := 0; i < picks; i++ {
		x := a()
		if x != b() {
			t.Fatalf("pick %d diverged between equal seeds", i)
		}
		if x < 0 || x >= s.Chunks {
			t.Fatalf("pick %d out of keyspace: %d", i, x)
		}
		if x < s.HotChunks() {
			hot++
		}
		if x != other() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical sequences")
	}
	// 90% of picks target the hot 10% of the keyspace (binomial noise
	// over 10k picks stays well inside +-3%).
	if frac := float64(hot) / picks; frac < 0.87 || frac > 0.93 {
		t.Fatalf("hot fraction %.3f, want ~0.90", frac)
	}
}

func TestHotColdAllHot(t *testing.T) {
	// A fully hot keyspace must never index past the end.
	s := HotColdSpec{Chunks: 3, HotFraction: 1, HotProb: 0.5}
	pick := s.Picker(1)
	for i := 0; i < 1000; i++ {
		if x := pick(); x < 0 || x >= 3 {
			t.Fatalf("pick out of range: %d", x)
		}
	}
}

func TestHotColdHotChunksRoundsUp(t *testing.T) {
	// Regression: the hot-set boundary used to truncate, so 15 chunks
	// at HotFraction 0.1 gave a 1-chunk hot set despite the documented
	// round-up. It must be ceil(15*0.1) = 2.
	cases := []struct {
		chunks int
		frac   float64
		want   int
	}{
		{15, 0.1, 2},
		{10, 0.1, 1},    // exact boundary stays exact
		{100, 0.25, 25}, // exact boundary stays exact
		{7, 0.5, 4},     // 3.5 rounds up
		{3, 0.01, 1},    // floor of at least one chunk
		{4, 1, 4},       // never exceeds the keyspace
	}
	for _, c := range cases {
		s := HotColdSpec{Chunks: c.chunks, HotFraction: c.frac, HotProb: 0.9}
		if got := s.HotChunks(); got != c.want {
			t.Errorf("HotChunks(%d, %v) = %d, want %d", c.chunks, c.frac, got, c.want)
		}
	}
}

func TestCheckpointSpecTilesFile(t *testing.T) {
	s := CheckpointSpec{Ranks: 4, Segments: 3, SegmentSize: 100}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// All ranks' extents together tile [0, FileSpan) exactly once.
	covered := map[int64]int{}
	for r := 0; r < s.Ranks; r++ {
		l := s.ExtentsFor(r)
		if int64(len(l)) != int64(s.Segments) {
			t.Fatalf("rank %d extents = %d, want %d", r, len(l), s.Segments)
		}
		var bytes int64
		for _, e := range l {
			if e.Offset%s.SegmentSize != 0 {
				t.Fatalf("rank %d extent %v not segment-aligned", r, e)
			}
			covered[e.Offset]++
			bytes += e.Length
		}
		if bytes != s.BytesPerRank() {
			t.Fatalf("rank %d bytes = %d, want %d", r, bytes, s.BytesPerRank())
		}
	}
	want := s.FileSpan() / s.SegmentSize
	if int64(len(covered)) != want {
		t.Fatalf("covered %d segment slots, want %d", len(covered), want)
	}
	for off, n := range covered {
		if n != 1 {
			t.Fatalf("offset %d covered %d times", off, n)
		}
	}
	// The stride interleaves ranks: rank 1's first segment sits one
	// segment after rank 0's.
	if got := s.ExtentsFor(1)[0].Offset; got != 100 {
		t.Fatalf("rank 1 first offset = %d, want 100", got)
	}
	if got := s.ExtentsFor(0)[1].Offset; got != 400 {
		t.Fatalf("rank 0 second offset = %d, want 400 (stride Ranks*SegmentSize)", got)
	}
}

func TestCheckpointSpecValidate(t *testing.T) {
	for _, bad := range []CheckpointSpec{
		{Ranks: 0, Segments: 1, SegmentSize: 1},
		{Ranks: 1, Segments: 0, SegmentSize: 1},
		{Ranks: 1, Segments: 1, SegmentSize: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("Validate(%+v) = nil, want error", bad)
		}
	}
}
