package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 || s.Max != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s.String() != "n=0" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]time.Duration{ms(1), ms(3), ms(2), ms(4)})
	if s.Count != 4 || s.Min != ms(1) || s.Max != ms(4) {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != ms(10)/4 {
		t.Fatalf("mean = %v", s.Mean)
	}
	// P50 of [1,2,3,4]ms with interpolation = 2.5ms.
	if s.P50 != ms(5)/2 {
		t.Fatalf("p50 = %v", s.P50)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []time.Duration{ms(3), ms(1), ms(2)}
	Summarize(in)
	if in[0] != ms(3) || in[1] != ms(1) || in[2] != ms(2) {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestQuantileEdges(t *testing.T) {
	sorted := []time.Duration{ms(10), ms(20), ms(30)}
	if Quantile(sorted, 0) != ms(10) || Quantile(sorted, 1) != ms(30) {
		t.Fatal("extreme quantiles wrong")
	}
	if Quantile(sorted, 0.5) != ms(20) {
		t.Fatalf("median = %v", Quantile(sorted, 0.5))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile must be 0")
	}
	if Quantile(sorted, -1) != ms(10) || Quantile(sorted, 2) != ms(30) {
		t.Fatal("out-of-range q must clamp")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	sorted := []time.Duration{ms(0), ms(100)}
	if got := Quantile(sorted, 0.25); got != ms(25) {
		t.Fatalf("q0.25 = %v, want 25ms", got)
	}
}

func TestStringContainsFields(t *testing.T) {
	s := Summarize([]time.Duration{ms(5), ms(6)})
	out := s.String()
	for _, want := range []string{"n=2", "mean=", "p99=", "max="} {
		if !strings.Contains(out, want) {
			t.Fatalf("String %q missing %q", out, want)
		}
	}
}

// TestPropQuantilesMonotone: quantiles are monotone in q and bounded
// by min/max.
func TestPropQuantilesMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(50) + 1
		samples := make([]time.Duration, n)
		for i := range samples {
			samples[i] = time.Duration(r.Intn(1000)) * time.Microsecond
		}
		sorted := make([]time.Duration, n)
		copy(sorted, samples)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(sorted, q)
			if v < prev || v < sorted[0] || v > sorted[n-1] {
				return false
			}
			prev = v
		}
		s := Summarize(samples)
		return s.Min == sorted[0] && s.Max == sorted[n-1] && s.P50 >= s.Min && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeMeanDoesNotOverflow(t *testing.T) {
	// Regression: the mean used to be computed by summing samples into
	// a time.Duration, which overflows int64 nanoseconds once the
	// naive sum passes ~292 years — four samples of 100 years each
	// wrapped negative. The incremental mean must survive sample sets
	// whose naive sum overflows.
	century := 100 * 365 * 24 * time.Hour
	samples := []time.Duration{century, century, century, century}
	var naive time.Duration
	for _, d := range samples {
		naive += d
	}
	if naive > 0 {
		t.Fatalf("test premise broken: naive sum %v did not overflow", naive)
	}
	s := Summarize(samples)
	if s.Mean != century {
		t.Fatalf("mean = %v, want %v", s.Mean, century)
	}
	if s.Min != century || s.Max != century || s.P50 != century {
		t.Fatalf("summary = %+v", s)
	}

	// And a long skewed set whose sum also overflows: mean must land
	// between min and max with only float rounding error.
	mixed := make([]time.Duration, 0, 400)
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			mixed = append(mixed, century)
		} else {
			mixed = append(mixed, time.Millisecond)
		}
	}
	m := Summarize(mixed)
	want := century / 2
	if diff := m.Mean - want; diff < -time.Second || diff > time.Second {
		t.Fatalf("mixed mean = %v, want ~%v", m.Mean, want)
	}
}
