// Package stats provides the small statistical helpers the benchmark
// harness reports: summaries with mean/min/max and quantiles over
// latency samples.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary describes a sample set of durations.
type Summary struct {
	Count int
	Mean  time.Duration
	Min   time.Duration
	Max   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Summarize computes a Summary; an empty input yields a zero Summary.
func Summarize(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Incremental mean: a plain `total += d` accumulator overflows
	// int64 nanoseconds once count*mean exceeds ~292 years, which a
	// sustained blaster run's sample set can reach.
	var mean float64
	for i, d := range sorted {
		mean += (float64(d) - mean) / float64(i+1)
	}
	return Summary{
		Count: len(sorted),
		Mean:  time.Duration(mean),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   Quantile(sorted, 0.50),
		P95:   Quantile(sorted, 0.95),
		P99:   Quantile(sorted, 0.99),
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of an ASCENDING-sorted
// sample set using linear interpolation between closest ranks.
func Quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// String renders the summary compactly for table cells.
func (s Summary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, round(s.Mean), round(s.P50), round(s.P95), round(s.P99), round(s.Max))
}

// round trims sub-microsecond noise for display.
func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
