package metadata

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/segtree"
)

func leafNode(fill int) *segtree.Node {
	return &segtree.Node{
		Leaf: true,
		Frags: []segtree.Fragment{{
			Ext: extent.Extent{Offset: int64(fill), Length: 8},
			Ref: chunk.Ref{Key: chunk.Key{Blob: 1, Version: uint64(fill)}, Length: 8},
		}},
	}
}

func TestPutGetNode(t *testing.T) {
	s := NewStore(4, iosim.CostModel{})
	key := segtree.NodeKey{Version: 1, Offset: 0, Size: 64}
	if err := s.PutNode(1, key, leafNode(3)); err != nil {
		t.Fatal(err)
	}
	n, err := s.GetNode(1, key)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Leaf || len(n.Frags) != 1 || n.Frags[0].Ext.Offset != 3 {
		t.Fatalf("node = %+v", n)
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestGetMissing(t *testing.T) {
	s := NewStore(2, iosim.CostModel{})
	_, err := s.GetNode(1, segtree.NodeKey{Version: 9})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	n, ok, err := s.TryGetNode(1, segtree.NodeKey{Version: 9})
	if n != nil || ok || err != nil {
		t.Fatalf("TryGetNode = %v %v %v", n, ok, err)
	}
}

func TestDoublePutFails(t *testing.T) {
	s := NewStore(2, iosim.CostModel{})
	key := segtree.NodeKey{Version: 1, Size: 64}
	if err := s.PutNode(1, key, leafNode(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutNode(1, key, leafNode(2)); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestBlobsAreIsolated(t *testing.T) {
	s := NewStore(2, iosim.CostModel{})
	key := segtree.NodeKey{Version: 1, Size: 64}
	if err := s.PutNode(1, key, leafNode(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutNode(2, key, leafNode(2)); err != nil {
		t.Fatal(err)
	}
	n1, _ := s.GetNode(1, key)
	n2, _ := s.GetNode(2, key)
	if n1.Frags[0].Ext.Offset == n2.Frags[0].Ext.Offset {
		t.Fatal("blobs must not share nodes")
	}
}

func TestNodesAreDeepCopied(t *testing.T) {
	s := NewStore(1, iosim.CostModel{})
	key := segtree.NodeKey{Version: 1, Size: 64}
	orig := leafNode(1)
	if err := s.PutNode(1, key, orig); err != nil {
		t.Fatal(err)
	}
	orig.Frags[0].Ext.Offset = 99 // caller mutates after put
	got, _ := s.GetNode(1, key)
	if got.Frags[0].Ext.Offset != 1 {
		t.Fatal("store aliased caller slice")
	}
	got.Frags[0].Ext.Offset = 77 // reader mutates
	got2, _ := s.GetNode(1, key)
	if got2.Frags[0].Ext.Offset != 1 {
		t.Fatal("store aliased reader slice")
	}
}

func TestShardingDistributes(t *testing.T) {
	s := NewStore(4, iosim.CostModel{})
	for v := uint64(1); v <= 64; v++ {
		key := segtree.NodeKey{Version: v, Offset: int64(v) * 64, Size: 64}
		if err := s.PutNode(1, key, leafNode(int(v))); err != nil {
			t.Fatal(err)
		}
	}
	if s.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d", s.ShardCount())
	}
	nonEmpty := 0
	for _, m := range s.Meters() {
		if m.Stats().Ops > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 3 {
		t.Fatalf("only %d shards used; hashing not distributing", nonEmpty)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore(4, iosim.CostModel{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := segtree.NodeKey{Version: uint64(g*1000 + i + 1), Size: 64}
				if err := s.PutNode(1, key, leafNode(i)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if _, err := s.GetNode(1, key); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Count() != 400 {
		t.Fatalf("Count = %d, want 400", s.Count())
	}
}

func TestMinimumOneShard(t *testing.T) {
	s := NewStore(0, iosim.CostModel{})
	if s.ShardCount() != 1 {
		t.Fatalf("ShardCount = %d, want 1", s.ShardCount())
	}
}

func ExampleStore() {
	s := NewStore(2, iosim.CostModel{})
	key := segtree.NodeKey{Version: 1, Offset: 0, Size: 128}
	_ = s.PutNode(7, key, &segtree.Node{Left: segtree.NodeKey{Version: 1, Size: 64}})
	n, _ := s.GetNode(7, key)
	fmt.Println(n.Leaf, n.Left.Version)
	// Output: false 1
}
