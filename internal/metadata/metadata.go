// Package metadata implements the metadata providers: the distributed
// store holding segment-tree nodes. Nodes are immutable and keyed by
// (blob, version, offset, size); the store shards them across several
// metadata providers by key hash, each provider metered independently,
// mirroring BlobSeer's DHT-style metadata layer.
package metadata

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/iosim"
	"repro/internal/segtree"
)

// ErrNotFound is returned when a requested node is absent.
var ErrNotFound = errors.New("metadata: node not found")

// ErrExists is returned when an immutable node is stored twice with
// different content; identical re-puts are idempotent no-ops.
var ErrExists = errors.New("metadata: node already exists")

// nodeID is the full key of a node within the store.
type nodeID struct {
	blob uint64
	key  segtree.NodeKey
}

// shard is one metadata provider.
type shard struct {
	mu    sync.RWMutex
	nodes map[nodeID]*segtree.Node
	meter *iosim.Meter
}

// Store is a sharded in-memory node store implementing
// segtree.NodeStore. It is safe for concurrent use.
type Store struct {
	shards []*shard
}

var _ segtree.NodeStore = (*Store)(nil)

// NewStore creates a store with n shards, each charged with the given
// cost model (zero model for unmetered unit tests).
func NewStore(n int, model iosim.CostModel) *Store {
	if n < 1 {
		n = 1
	}
	s := &Store{shards: make([]*shard, n)}
	for i := range s.shards {
		s.shards[i] = &shard{
			nodes: make(map[nodeID]*segtree.Node),
			meter: iosim.NewMeter(model, true),
		}
	}
	return s
}

// Meters returns the per-shard meters for inspection.
func (s *Store) Meters() []*iosim.Meter {
	out := make([]*iosim.Meter, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.meter
	}
	return out
}

// ShardCount returns the number of metadata providers.
func (s *Store) ShardCount() int { return len(s.shards) }

func (s *Store) shardFor(id nodeID) *shard {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(id.blob)
	put(id.key.Version)
	put(uint64(id.key.Offset))
	put(uint64(id.key.Size))
	return s.shards[h.Sum64()%uint64(len(s.shards))]
}

// nodeSize approximates the wire size of a node for metering.
func nodeSize(n *segtree.Node) int64 {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return int64(len(n.Frags))*52 + 24
	}
	return 48
}

// PutNode implements segtree.NodeStore.
func (s *Store) PutNode(blob uint64, key segtree.NodeKey, n *segtree.Node) error {
	id := nodeID{blob: blob, key: key}
	sh := s.shardFor(id)
	sh.mu.Lock()
	if _, dup := sh.nodes[id]; dup {
		sh.mu.Unlock()
		// Immutable nodes: duplicate puts of the same key are a
		// protocol error (a version ticket is used exactly once).
		return fmt.Errorf("%w: blob %d %s", ErrExists, blob, key)
	}
	sh.nodes[id] = cloneNode(n)
	sh.mu.Unlock()
	sh.meter.Charge(nodeSize(n))
	return nil
}

// GetNode implements segtree.NodeStore.
func (s *Store) GetNode(blob uint64, key segtree.NodeKey) (*segtree.Node, error) {
	id := nodeID{blob: blob, key: key}
	sh := s.shardFor(id)
	sh.mu.RLock()
	n, ok := sh.nodes[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: blob %d %s", ErrNotFound, blob, key)
	}
	sh.meter.Charge(nodeSize(n))
	return cloneNode(n), nil
}

// TryGetNode implements segtree.NodeStore.
func (s *Store) TryGetNode(blob uint64, key segtree.NodeKey) (*segtree.Node, bool, error) {
	id := nodeID{blob: blob, key: key}
	sh := s.shardFor(id)
	sh.mu.RLock()
	n, ok := sh.nodes[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	sh.meter.Charge(nodeSize(n))
	return cloneNode(n), true, nil
}

// Count returns the total number of stored nodes across shards.
func (s *Store) Count() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		total += len(sh.nodes)
		sh.mu.RUnlock()
	}
	return total
}

// cloneNode deep-copies a node so callers never share fragment slices.
func cloneNode(n *segtree.Node) *segtree.Node {
	cp := *n
	if n.Frags != nil {
		cp.Frags = make([]segtree.Fragment, len(n.Frags))
		copy(cp.Frags, n.Frags)
	}
	return &cp
}
