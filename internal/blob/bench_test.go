package blob

import (
	"fmt"
	"testing"

	"repro/internal/extent"
)

// BenchmarkWriteList measures end-to-end unmetered write cost for
// varying region counts (ticket + chunk stores + metadata build +
// publication).
func BenchmarkWriteList(b *testing.B) {
	for _, regions := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("regions=%d", regions), func(b *testing.B) {
			blob, err := Create(testServices(), 1, segtreeGeometry(1<<26, 64<<10))
			if err != nil {
				b.Fatal(err)
			}
			var l extent.List
			for i := 0; i < regions; i++ {
				l = append(l, extent.Extent{Offset: int64(i) * 128 << 10, Length: 32 << 10})
			}
			buf := make([]byte, l.TotalLength())
			b.SetBytes(int64(len(buf)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vec, _ := extent.NewVec(l, buf)
				if _, err := blob.WriteList(vec, WriteOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReadList measures snapshot reads over a versioned blob.
func BenchmarkReadList(b *testing.B) {
	blob, err := Create(testServices(), 1, segtreeGeometry(1<<24, 64<<10))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4<<20)
	v, err := blob.Write(0, buf, WriteOptions{})
	if err != nil {
		b.Fatal(err)
	}
	q := extent.List{{Offset: 0, Length: 4 << 20}}
	b.SetBytes(4 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blob.ReadList(v, q); err != nil {
			b.Fatal(err)
		}
	}
}
