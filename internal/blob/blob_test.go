package blob

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

func testServices() Services {
	mgr, _ := provider.NewPool(4, iosim.CostModel{})
	return Services{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(4, iosim.CostModel{}),
		Data: provider.NewRouter(mgr),
	}
}

func testBlob(t *testing.T) *Blob {
	t.Helper()
	b, err := Create(testServices(), 1, segtree.Geometry{Capacity: 1 << 20, Page: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func fillVec(t *testing.T, l extent.List, fill byte) extent.Vec {
	t.Helper()
	buf := make([]byte, l.TotalLength())
	for i := range buf {
		buf[i] = fill
	}
	v, err := extent.NewVec(l, buf)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCreateOpen(t *testing.T) {
	svc := testServices()
	geo := segtree.Geometry{Capacity: 1 << 16, Page: 512}
	b1, err := Create(svc, 7, geo)
	if err != nil {
		t.Fatal(err)
	}
	if b1.ID() != 7 || b1.Geometry() != geo {
		t.Fatalf("handle = %d %+v", b1.ID(), b1.Geometry())
	}
	b2, err := Open(svc, 7)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Geometry() != geo {
		t.Fatalf("Open geometry = %+v", b2.Geometry())
	}
	if _, err := Open(svc, 99); !errors.Is(err, vmanager.ErrUnknownBlob) {
		t.Fatalf("Open unknown err = %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	b := testBlob(t)
	data := []byte("the paper's storage backend")
	v, err := b.Write(4000, data, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadAt(v, 4000, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read = %q", got)
	}
}

func TestWriteListNonContiguous(t *testing.T) {
	b := testBlob(t)
	l := extent.List{{Offset: 0, Length: 100}, {Offset: 5000, Length: 200}, {Offset: 100000, Length: 300}}
	v, err := b.WriteList(fillVec(t, l, 0xC3), WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadList(v, l)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range got {
		if x != 0xC3 {
			t.Fatalf("byte %d = %x", i, x)
		}
	}
	// Gap must be zero.
	gap, err := b.ReadAt(v, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range gap {
		if x != 0 {
			t.Fatalf("gap byte %d = %x", i, x)
		}
	}
}

func TestWriteListValidation(t *testing.T) {
	b := testBlob(t)
	// Self-overlapping write vector is rejected.
	l := extent.List{{Offset: 0, Length: 100}, {Offset: 50, Length: 100}}
	buf := make([]byte, l.TotalLength())
	if _, err := b.WriteList(extent.Vec{Extents: l, Buf: buf}, WriteOptions{}); err == nil {
		t.Fatal("self-overlapping write must fail")
	}
	// Mismatched buffer.
	if _, err := b.WriteList(extent.Vec{Extents: extent.List{{Offset: 0, Length: 10}}, Buf: make([]byte, 5)}, WriteOptions{}); err == nil {
		t.Fatal("bad buffer must fail")
	}
	// Empty write.
	if _, err := b.WriteList(extent.Vec{}, WriteOptions{}); !errors.Is(err, vmanager.ErrEmptyWrite) {
		t.Fatalf("empty write err = %v", err)
	}
}

func TestVersionsAccumulate(t *testing.T) {
	b := testBlob(t)
	for i := 0; i < 5; i++ {
		if _, err := b.Write(int64(i)*100, []byte{byte(i)}, WriteOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	vs, err := b.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 6 { // versions 0..5
		t.Fatalf("versions = %v", vs)
	}
	info, err := b.Latest()
	if err != nil || info.Version != 5 {
		t.Fatalf("latest = %+v, %v", info, err)
	}
}

func TestSizeTracking(t *testing.T) {
	b := testBlob(t)
	v1, _ := b.Write(100, make([]byte, 50), WriteOptions{})
	if sz, _ := b.Size(v1); sz != 150 {
		t.Fatalf("size v1 = %d", sz)
	}
	v2, _ := b.Write(0, make([]byte, 10), WriteOptions{})
	if sz, _ := b.Size(v2); sz != 150 {
		t.Fatalf("size v2 = %d (must not shrink)", sz)
	}
}

func TestOldSnapshotsSurviveNewWrites(t *testing.T) {
	b := testBlob(t)
	v1, _ := b.Write(0, []byte{1, 1, 1, 1}, WriteOptions{})
	v2, _ := b.Write(1, []byte{2, 2}, WriteOptions{})
	got1, err := b.ReadAt(v1, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, []byte{1, 1, 1, 1}) {
		t.Fatalf("v1 = %v", got1)
	}
	got2, err := b.ReadAt(v2, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, []byte{1, 2, 2, 1}) {
		t.Fatalf("v2 = %v", got2)
	}
}

func TestReadLatest(t *testing.T) {
	b := testBlob(t)
	b.Write(0, []byte{9}, WriteOptions{})
	data, v, err := b.ReadLatest(extent.List{{Offset: 0, Length: 1}})
	if err != nil || v != 1 || data[0] != 9 {
		t.Fatalf("ReadLatest = %v v%d %v", data, v, err)
	}
}

func TestReadUnpublishedVersionFails(t *testing.T) {
	b := testBlob(t)
	if _, err := b.ReadAt(3, 0, 1); !errors.Is(err, vmanager.ErrUnknownVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestNoWaitEventuallyPublishes(t *testing.T) {
	b := testBlob(t)
	v, err := b.Write(0, []byte{5}, WriteOptions{NoWait: true})
	if err != nil {
		t.Fatal(err)
	}
	// A single writer's version is published as soon as Complete ran,
	// which happened before WriteList returned.
	got, err := b.ReadAt(v, 0, 1)
	if err != nil || got[0] != 5 {
		t.Fatalf("read = %v, %v", got, err)
	}
}

// TestConcurrentOverlappingWriteList is the core atomicity smoke test:
// many goroutines concurrently write overlapping non-contiguous
// vectors; each published snapshot must equal one writer's data in the
// overlap (no interleaving), and the final snapshot must equal the
// last-published writer's pattern across its whole vector.
func TestConcurrentOverlappingWriteList(t *testing.T) {
	b := testBlob(t)
	const writers = 16
	// All writers use the same extent list => total overlap.
	l := extent.List{{Offset: 0, Length: 512}, {Offset: 2048, Length: 512}, {Offset: 8192, Length: 512}}
	versions := make([]uint64, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, l.TotalLength())
			for i := range buf {
				buf[i] = byte(w + 1)
			}
			vec, _ := extent.NewVec(l, buf)
			v, err := b.WriteList(vec, WriteOptions{})
			if err != nil {
				t.Error(err)
				return
			}
			versions[w] = v
		}(w)
	}
	wg.Wait()

	// Every snapshot 1..writers must be entirely one writer's bytes.
	byVersion := make(map[uint64]byte)
	for w, v := range versions {
		byVersion[v] = byte(w + 1)
	}
	for v := uint64(1); v <= writers; v++ {
		got, err := b.ReadList(v, l)
		if err != nil {
			t.Fatal(err)
		}
		// Within the written extents, snapshot v must show the bytes
		// of the writer holding ticket v (full overlap => last write
		// wins for the whole list).
		want := byVersion[v]
		for i, x := range got {
			if x != want {
				t.Fatalf("snapshot %d byte %d = %d, want %d (interleaved write!)", v, i, x, want)
			}
		}
	}
}

// TestConcurrentDisjointWriters checks that concurrent writers to
// disjoint regions all land intact.
func TestConcurrentDisjointWriters(t *testing.T) {
	b := testBlob(t)
	const writers = 8
	const span = 4096
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, span)
			for i := range buf {
				buf[i] = byte(w + 1)
			}
			if _, err := b.Write(int64(w)*span, buf, WriteOptions{}); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	info, _ := b.Latest()
	got, err := b.ReadAt(info.Version, 0, writers*span)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < span; i++ {
			if got[w*span+i] != byte(w+1) {
				t.Fatalf("writer %d byte %d = %d", w, i, got[w*span+i])
			}
		}
	}
}

func TestStripingAcrossProviders(t *testing.T) {
	mgr, _ := provider.NewPool(4, iosim.CostModel{})
	svc := Services{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(2, iosim.CostModel{}),
		Data: provider.NewRouter(mgr),
	}
	b, err := Create(svc, 1, segtree.Geometry{Capacity: 1 << 16, Page: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// 8 pages of data must spread over all 4 providers.
	if _, err := b.Write(0, make([]byte, 8*1024), WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, p := range mgr.Providers() {
		if p.Store().Count() != 2 {
			t.Fatalf("provider %d holds %d chunks, want 2", p.ID(), p.Store().Count())
		}
	}
}

// segtreeGeometry is a bench/test helper constructing a geometry.
func segtreeGeometry(capacity, page int64) segtree.Geometry {
	return segtree.Geometry{Capacity: capacity, Page: page}
}

func TestDiffAPI(t *testing.T) {
	b := testBlob(t)
	v1, _ := b.Write(0, []byte{1, 1, 1, 1}, WriteOptions{})
	v2, _ := b.Write(2, []byte{2, 2}, WriteOptions{})
	d, err := b.Diff(v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	changed := extent.List{{Offset: 2, Length: 2}}
	if !changed.CoveredBy(d) {
		t.Fatalf("diff %v does not cover the change", d)
	}
	// Diff against an unpublished version fails.
	if _, err := b.Diff(v1, 99); err == nil {
		t.Fatal("diff of unknown version must fail")
	}
}

// replicatedServices builds a deployment with replication degree R,
// returning the manager so tests can kill providers.
func replicatedServices(r int) (Services, *provider.Manager) {
	mgr, _ := provider.NewPool(4, iosim.CostModel{})
	router := provider.NewRouter(mgr)
	router.SetReplicas(r)
	return Services{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(4, iosim.CostModel{}),
		Data: router,
	}, mgr
}

func TestWriteRecordsReplicaSets(t *testing.T) {
	svc, _ := replicatedServices(2)
	b, err := Create(svc, 1, segtree.Geometry{Capacity: 1 << 16, Page: 512})
	if err != nil {
		t.Fatal(err)
	}
	// A write spanning several pages stores several chunks; every leaf
	// ref must carry a 2-provider replica set.
	v, err := b.Write(0, make([]byte, 2048), WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := b.svc.VM.Snapshot(1, v)
	if err != nil {
		t.Fatal(err)
	}
	frags, _, err := b.tree.Resolve(info.Root, extent.List{{Offset: 0, Length: 2048}})
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) == 0 {
		t.Fatal("no fragments resolved")
	}
	for _, f := range frags {
		if len(f.Ref.Replicas) != 2 {
			t.Fatalf("ref %v carries %d replicas, want 2", f.Ref.Key, len(f.Ref.Replicas))
		}
		if f.Ref.Replicas[0] == f.Ref.Replicas[1] {
			t.Fatalf("ref %v replicas not distinct: %v", f.Ref.Key, f.Ref.Replicas)
		}
	}
}

func TestReadFailsOverAcrossReplicas(t *testing.T) {
	svc, mgr := replicatedServices(2)
	b, err := Create(svc, 1, segtree.Geometry{Capacity: 1 << 16, Page: 512})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 3000)
	v, err := b.Write(100, payload, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Whichever single provider dies, every byte stays readable.
	for id := 0; id < 4; id++ {
		if err := mgr.SetDown(provider.ID(id), true); err != nil {
			t.Fatal(err)
		}
		got, err := b.ReadAt(v, 100, 3000)
		if err != nil {
			t.Fatalf("provider %d down: %v", id, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("provider %d down: corrupt read", id)
		}
		if err := mgr.SetDown(provider.ID(id), false); err != nil {
			t.Fatal(err)
		}
	}
}
