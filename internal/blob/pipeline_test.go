package blob

import (
	"bytes"
	"testing"

	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

// TestPipelinedWriteMatchesBuffered checks a pipelined write produces
// snapshots indistinguishable from buffered ones, including partial
// overwrites that exercise leaf shadowing across both paths.
func TestPipelinedWriteMatchesBuffered(t *testing.T) {
	b := testBlob(t)
	base := fillVec(t, extent.List{{Offset: 0, Length: 8000}}, 1)
	if _, err := b.WriteList(base, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	over := fillVec(t, extent.List{{Offset: 500, Length: 300}, {Offset: 3000, Length: 2500}}, 2)
	v, err := b.WriteList(over, WriteOptions{Pipelined: true, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadAt(v, 0, 8000)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{1}, 8000)
	copy(want[500:], bytes.Repeat([]byte{2}, 300))
	copy(want[3000:], bytes.Repeat([]byte{2}, 2500))
	if !bytes.Equal(got, want) {
		t.Fatal("pipelined overwrite diverges from expected image")
	}
}

// TestPipelinedWriteFailureRetiresTicket checks the failure path: a
// chunk-store fault mid-write must not publish the version, must not
// stall publication of later writes, and must leave earlier snapshots
// readable. The pipelined builder has stored nodes by then, so
// retirement goes through Abort rather than a tombstone.
func TestPipelinedWriteFailureRetiresTicket(t *testing.T) {
	mgr, faults := provider.NewFaultPool(1, iosim.CostModel{})
	svc := Services{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(4, iosim.CostModel{}),
		Data: provider.NewRouter(mgr),
	}
	b, err := Create(svc, 1, segtree.Geometry{Capacity: 1 << 20, Page: 1024})
	if err != nil {
		t.Fatal(err)
	}
	good := fillVec(t, extent.List{{Offset: 0, Length: 4096}}, 1)
	v1, err := b.WriteList(good, WriteOptions{Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}

	faults[0].FailNextPuts(100)
	bad := fillVec(t, extent.List{{Offset: 0, Length: 4096}}, 2)
	if _, err := b.WriteList(bad, WriteOptions{Pipelined: true}); err == nil {
		t.Fatal("write through injected faults must fail")
	}
	faults[0].FailNextPuts(0)

	// The failed version is invisible and later writes publish fine.
	next := fillVec(t, extent.List{{Offset: 1024, Length: 1024}}, 3)
	v3, err := b.WriteList(next, WriteOptions{Pipelined: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.ReadAt(v3, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{1}, 4096)
	copy(want[1024:], bytes.Repeat([]byte{3}, 1024))
	if !bytes.Equal(got, want) {
		t.Fatal("snapshot after failed pipelined write diverges (torn write published?)")
	}
	old, err := b.ReadAt(v1, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old, bytes.Repeat([]byte{1}, 4096)) {
		t.Fatal("earlier snapshot corrupted by failed pipelined write")
	}
}
