// Package blob implements the BlobSeer-equivalent versioning data
// service client: it orchestrates the version manager, the metadata
// providers and the data providers to offer versioned, striped,
// non-contiguous reads and writes of huge binary objects.
//
// A write never blocks on other writers: it stores its chunks (striped
// round-robin across data providers, R copies each when the data layer
// replicates), builds shadowed metadata using the borrow answers
// obtained with its ticket, and hands the new root to the version
// manager, which publishes snapshots strictly in ticket order. A read
// runs against one immutable published snapshot and therefore needs no
// synchronization at all; when a data provider is down it fails over
// to the surviving replicas recorded in each chunk ref.
package blob

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/chunk"
	"repro/internal/extent"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

// VersionService is the version-manager API the client depends on. It
// is implemented by *vmanager.Manager in-process and by the RPC client
// for distributed deployments.
type VersionService interface {
	CreateBlob(blob uint64, geo segtree.Geometry) error
	Geometry(blob uint64) (segtree.Geometry, error)
	AssignTicket(blob uint64, e extent.List) (vmanager.Ticket, error)
	Complete(blob, v uint64, root segtree.NodeKey) error
	Abort(blob, v uint64) error
	WaitPublished(blob, v uint64) error
	LatestPublished(blob uint64) (vmanager.SnapshotInfo, error)
	Snapshot(blob, v uint64) (vmanager.SnapshotInfo, error)
	Versions(blob uint64) ([]uint64, error)

	// Version lifecycle (vmanager/lifecycle.go): retention policy,
	// reader pins, and the garbage collector's bookkeeping.
	Retain(blob uint64, keepLast int) ([]uint64, error)
	DropVersion(blob, v uint64) error
	Pin(blob, v uint64) error
	Unpin(blob, v uint64) error
	GCInfo(blob uint64) (vmanager.GCInfo, error)
	MarkReclaimed(blob, v uint64) error
}

var (
	_ VersionService = (*vmanager.Manager)(nil)
	_ VersionService = (*vmanager.Sharded)(nil)
)

// DataService is the data-provider API: store and fetch immutable
// chunks. Implemented by *provider.Router in-process and by the RPC
// client remotely. Put returns the replica set — the providers that
// hold a copy — which writers record in metadata (chunk.Ref.Replicas)
// so readers can fail over across copies; GetFrom is the replica-aware
// read that tries that set first. When the hinted set could not serve
// the read (stale after a repair moved the copies) GetFrom serves from
// authoritative placement instead and returns the current replica set
// as fresh; the blob caches it so later reads skip the dead hint.
type DataService interface {
	Put(key chunk.Key, data []byte) ([]provider.ID, error)
	Get(key chunk.Key, off, length int64) ([]byte, error)
	GetFrom(replicas []provider.ID, key chunk.Key, off, length int64) (data []byte, fresh []provider.ID, err error)
}

var _ DataService = (*provider.Router)(nil)

// Services bundles the service endpoints a client talks to.
type Services struct {
	VM   VersionService
	Meta segtree.NodeStore
	Data DataService

	// Cache, when set, is the deployment's shared read cache
	// (cluster.Env.ReadCache wires the router's): blob handles consult
	// it for fresh replica-set hints, so a hint corrected by one handle
	// benefits every handle, and the router invalidates it on placement
	// changes. When nil each handle falls back to a small private
	// hint-only cache — still bounded, unlike the per-handle map it
	// replaced, but invalidated only by capacity.
	Cache *provider.ReadCache
}

// privateHintCacheBytes bounds the per-handle fallback hint cache used
// when no shared cache is wired: a few thousand hint entries, enough
// for a handle's working set, nothing like the old unbounded map.
const privateHintCacheBytes = 256 << 10

// Blob is a handle to one versioned binary object.
type Blob struct {
	svc  Services
	id   uint64
	geo  segtree.Geometry
	tree *segtree.Tree

	// hints caches fresh replica sets learned from stale-hint reads:
	// metadata refs are immutable, so after a repair moves a chunk's
	// copies the ref's replica list goes stale forever. The first read
	// through a stale hint falls back to the placement map and returns
	// the current set; caching it makes every later read of the same
	// chunk go straight to the live copies. Either the shared
	// Services.Cache (placement-invalidated) or a private bounded
	// hint-only cache.
	hints *provider.ReadCache
}

// WriteOptions tunes one write call.
type WriteOptions struct {
	// NoWait returns as soon as the snapshot is complete, without
	// waiting for in-order publication. The returned version may then
	// not be visible to readers yet (eventual read-your-writes).
	NoWait bool
	// Parallelism bounds concurrent chunk stores; 0 means one inflight
	// request per data provider piece (fully parallel).
	Parallelism int
	// Pipelined overlaps chunk upload with segment-tree construction:
	// inner metadata nodes are stored while the first chunks are still
	// in flight, and each leaf is stored as soon as the chunks covering
	// it land (segtree.Builder), instead of store-all-then-build. Same
	// atomicity and publication semantics — the version is invisible
	// until Complete — but large writes hide most of the metadata
	// latency behind the uploads.
	Pipelined bool
	// Window bounds in-flight chunk stores in pipelined mode (<= 0
	// means DefaultWindow). The window is what keeps memory and
	// provider queueing bounded while still keeping the upload pipe
	// full.
	Window int
}

// DefaultWindow is the pipelined write path's default in-flight chunk
// bound.
const DefaultWindow = 8

// Create registers a new blob with the given geometry and returns its
// handle.
func Create(svc Services, id uint64, geo segtree.Geometry) (*Blob, error) {
	if err := svc.VM.CreateBlob(id, geo); err != nil {
		return nil, err
	}
	return newBlob(svc, id, geo), nil
}

// Open returns a handle to an existing blob.
func Open(svc Services, id uint64) (*Blob, error) {
	geo, err := svc.VM.Geometry(id)
	if err != nil {
		return nil, err
	}
	return newBlob(svc, id, geo), nil
}

func newBlob(svc Services, id uint64, geo segtree.Geometry) *Blob {
	hints := svc.Cache
	if hints == nil {
		hints = provider.NewReadCache(provider.ReadCacheConfig{
			Shards:   4,
			MaxBytes: privateHintCacheBytes,
		})
	}
	return &Blob{
		svc:   svc,
		id:    id,
		geo:   geo,
		tree:  &segtree.Tree{Blob: id, Geo: geo, Store: svc.Meta},
		hints: hints,
	}
}

// FreshHint returns the cached fresh replica set for a chunk whose
// metadata hint was observed stale, if any.
func (b *Blob) FreshHint(key chunk.Key) ([]provider.ID, bool) {
	return b.hints.Hint(key)
}

// cacheHint records a fresh replica set for a stale-hinted chunk.
func (b *Blob) cacheHint(key chunk.Key, ids []provider.ID) {
	b.hints.FillHint(key, ids)
}

// ID returns the blob identifier.
func (b *Blob) ID() uint64 { return b.id }

// Geometry returns the blob's tree geometry.
func (b *Blob) Geometry() segtree.Geometry { return b.geo }

// WriteList atomically writes a non-contiguous vector of extents,
// producing one new snapshot, and returns its version. This is the
// primitive the paper adds to the storage backend: the whole vector is
// applied as a single transaction, so concurrent overlapping WriteList
// calls never interleave within the overlap (MPI atomicity).
func (b *Blob) WriteList(vec extent.Vec, opts WriteOptions) (uint64, error) {
	norm := vec.Extents.Normalize()
	if int64(len(vec.Buf)) != vec.Extents.TotalLength() {
		return 0, fmt.Errorf("blob: buffer length %d != extent total %d", len(vec.Buf), vec.Extents.TotalLength())
	}
	if norm.TotalLength() != vec.Extents.TotalLength() {
		return 0, errors.New("blob: write extents overlap each other")
	}
	if len(norm) == 0 {
		return 0, vmanager.ErrEmptyWrite
	}

	// Step 1: ticket + borrow answers (the only serialized step).
	tk, err := b.svc.VM.AssignTicket(b.id, norm)
	if err != nil {
		return 0, err
	}

	// Steps 2+3: store page-aligned chunks across the data providers
	// and build the shadowed metadata — sequentially by default,
	// overlapped when the write is pipelined.
	var root segtree.NodeKey
	if opts.Pipelined {
		var dirty bool
		root, dirty, err = b.writePipelined(tk, vec, opts.Window)
		if err != nil {
			if dirty {
				// The builder already stored nodes under this ticket; a
				// tombstone build would collide with them, so retire via
				// Abort directly.
				_ = b.svc.VM.Abort(b.id, tk.Version)
			} else {
				b.retireTicket(tk, norm)
			}
			return 0, err
		}
	} else {
		placed, err := b.storeChunks(tk.Version, vec, opts.Parallelism)
		if err != nil {
			b.retireTicket(tk, norm)
			return 0, err
		}
		root, err = b.tree.Build(tk.Version, placed, tk.Borrows)
		if err != nil {
			b.retireTicket(tk, norm)
			return 0, err
		}
	}

	// Step 4: hand the snapshot to the version manager for in-order
	// publication.
	if err := b.svc.VM.Complete(b.id, tk.Version, root); err != nil {
		return 0, err
	}
	if !opts.NoWait {
		if err := b.svc.VM.WaitPublished(b.id, tk.Version); err != nil {
			return 0, err
		}
	}
	return tk.Version, nil
}

// Write is the contiguous convenience form of WriteList.
func (b *Blob) Write(off int64, data []byte, opts WriteOptions) (uint64, error) {
	vec, err := extent.NewVec(extent.List{{Offset: off, Length: int64(len(data))}}, data)
	if err != nil {
		return 0, err
	}
	return b.WriteList(vec, opts)
}

// retireTicket cleans up after a failed write: it publishes tombstone
// metadata (an empty overlay) under the ticket so that later writers'
// borrow references to this version resolve and publication is not
// stalled. If even the tombstone cannot be written (metadata service
// unreachable), the ticket is aborted at the version manager, which at
// least unblocks publication.
func (b *Blob) retireTicket(tk vmanager.Ticket, touched extent.List) {
	root, err := b.tree.BuildEmpty(tk.Version, touched, tk.Borrows)
	if err == nil {
		err = b.svc.VM.Complete(b.id, tk.Version, root)
	}
	if err != nil {
		// Last resort; see vmanager.Abort for the residual caveats.
		_ = b.svc.VM.Abort(b.id, tk.Version)
	}
}

// piece is one page-aligned slice of a write vector: a stripe unit,
// stored as one chunk and referenced by one tree leaf.
type piece struct {
	ext  extent.Extent
	data []byte
}

// splitPieces cuts the write vector at page boundaries so each piece
// maps to one stripe unit / tree leaf.
func (b *Blob) splitPieces(vec extent.Vec) []piece {
	var pieces []piece
	var start int64
	for _, e := range vec.Extents {
		data := vec.Buf[start : start+e.Length]
		start += e.Length
		off := e.Offset
		for len(data) > 0 {
			boundary := (off/b.geo.Page + 1) * b.geo.Page
			n := int64(len(data))
			if boundary-off < n {
				n = boundary - off
			}
			pieces = append(pieces, piece{ext: extent.Extent{Offset: off, Length: n}, data: data[:n]})
			off += n
			data = data[n:]
		}
	}
	return pieces
}

// storeChunks splits the write into page-aligned pieces, stores each as
// one immutable chunk and returns the placement list sorted by offset.
func (b *Blob) storeChunks(version uint64, vec extent.Vec, parallelism int) ([]segtree.Placed, error) {
	pieces := b.splitPieces(vec)
	placed := make([]segtree.Placed, len(pieces))
	if parallelism <= 0 || parallelism > len(pieces) {
		parallelism = len(pieces)
	}
	sem := make(chan struct{}, parallelism)
	errs := make(chan error, len(pieces))
	var wg sync.WaitGroup
	for i, p := range pieces {
		wg.Add(1)
		go func(i int, p piece) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			key := chunk.Key{Blob: b.id, Version: version, Index: uint32(i)}
			ids, err := b.svc.Data.Put(key, p.data)
			if err != nil {
				errs <- err
				return
			}
			replicas := make([]uint32, len(ids))
			for j, id := range ids {
				replicas[j] = uint32(id)
			}
			placed[i] = segtree.Placed{
				Ext: p.ext,
				Ref: chunk.Ref{Key: key, Offset: 0, Length: p.ext.Length, Replicas: replicas},
			}
		}(i, p)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, fmt.Errorf("blob: store chunks: %w", err)
	}
	return placed, nil
}

// writePipelined is the overlapped form of storeChunks + tree.Build:
// a segtree.Builder plans the whole tree up front and stores inner
// nodes immediately, while chunk uploads proceed under a bounded
// in-flight window, each completed upload releasing its tree leaf. The
// returned dirty flag reports whether any metadata node was stored
// under the ticket — it decides between tombstone retirement and Abort
// on failure (see WriteList).
func (b *Blob) writePipelined(tk vmanager.Ticket, vec extent.Vec, window int) (root segtree.NodeKey, dirty bool, err error) {
	pieces := b.splitPieces(vec)
	exts := make([]extent.Extent, len(pieces))
	for i, p := range pieces {
		exts[i] = p.ext
	}
	builder, err := b.tree.NewBuilder(tk.Version, exts, tk.Borrows)
	if err != nil {
		return segtree.NodeKey{}, false, err
	}
	if window <= 0 {
		window = DefaultWindow
	}
	if window > len(pieces) {
		window = len(pieces)
	}
	sem := make(chan struct{}, window)
	errs := make(chan error, len(pieces))
	var wg sync.WaitGroup
	for i, p := range pieces {
		wg.Add(1)
		go func(i int, p piece) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			key := chunk.Key{Blob: b.id, Version: tk.Version, Index: uint32(i)}
			ids, perr := b.svc.Data.Put(key, p.data)
			if perr != nil {
				errs <- perr
				return
			}
			replicas := make([]uint32, len(ids))
			for j, id := range ids {
				replicas[j] = uint32(id)
			}
			builder.SetPiece(i, chunk.Ref{Key: key, Offset: 0, Length: p.ext.Length, Replicas: replicas})
		}(i, p)
	}
	wg.Wait()
	close(errs)
	storeErr := <-errs
	// Finish drains the builder's in-flight node stores either way; on
	// the failure path some leaves never completed and were never
	// attempted — only what WAS attempted matters for Dirty.
	root, buildErr := builder.Finish()
	dirty = builder.Dirty()
	if storeErr != nil {
		return segtree.NodeKey{}, dirty, fmt.Errorf("blob: store chunks: %w", storeErr)
	}
	if buildErr != nil {
		return segtree.NodeKey{}, dirty, buildErr
	}
	return root, dirty, nil
}

// WaitPublished blocks until version v is published, making it visible
// to ReadLatest. Pipelined writers use this to flush a train of NoWait
// writes with one wait on the train's last version (publication is in
// ticket order, so waiting on the last covers them all).
func (b *Blob) WaitPublished(v uint64) error {
	return b.svc.VM.WaitPublished(b.id, v)
}

// ReadList atomically reads a non-contiguous vector of extents from the
// snapshot with the given version, filling and returning a buffer laid
// out in list order. Unwritten bytes read as zero.
func (b *Blob) ReadList(version uint64, q extent.List) ([]byte, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	info, err := b.svc.VM.Snapshot(b.id, version)
	if err != nil {
		return nil, err
	}
	// Resolve on the normalized query, then gather into the caller's
	// (possibly overlapping / unsorted) layout.
	norm := q.Normalize()
	frags, _, err := b.tree.Resolve(info.Root, norm)
	if err != nil {
		return nil, err
	}

	// Fetch fragments in parallel. Refs carry the replica set recorded
	// at write time: GetFrom fails over across those copies when a
	// provider is down, falling back to the router's placement map when
	// the hint has gone stale (a repair moved the copies). A cached
	// fresh hint from an earlier stale read overrides the metadata
	// hint, and any newly learned fresh set is cached for next time.
	data := make([][]byte, len(frags))
	errs := make(chan error, len(frags))
	var wg sync.WaitGroup
	for i, f := range frags {
		wg.Add(1)
		go func(i int, f segtree.Fragment) {
			defer wg.Done()
			replicas, ok := b.FreshHint(f.Ref.Key)
			if !ok {
				replicas = make([]provider.ID, len(f.Ref.Replicas))
				for j, id := range f.Ref.Replicas {
					replicas[j] = provider.ID(id)
				}
			}
			d, fresh, err := b.svc.Data.GetFrom(replicas, f.Ref.Key, f.Ref.Offset, f.Ref.Length)
			if err != nil {
				errs <- err
				return
			}
			if fresh != nil {
				b.cacheHint(f.Ref.Key, fresh)
			}
			data[i] = d
		}(i, f)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, fmt.Errorf("blob: fetch chunks: %w", err)
	}

	// Assemble: scatter fragments into a bounding image, then gather
	// the caller's layout from it.
	bound := q.Bounding()
	image := make([]byte, bound.Length)
	for i, f := range frags {
		copy(image[f.Ext.Offset-bound.Offset:], data[i])
	}
	out := make([]byte, q.TotalLength())
	vec := extent.Vec{Extents: q, Buf: out}
	vec.GatherFrom(image, bound.Offset)
	return out, nil
}

// ReadAt is the contiguous convenience form of ReadList.
func (b *Blob) ReadAt(version uint64, off, length int64) ([]byte, error) {
	return b.ReadList(version, extent.List{{Offset: off, Length: length}})
}

// ReadLatest reads against the newest published snapshot and returns
// the data along with the version it came from.
func (b *Blob) ReadLatest(q extent.List) ([]byte, uint64, error) {
	info, err := b.svc.VM.LatestPublished(b.id)
	if err != nil {
		return nil, 0, err
	}
	data, err := b.ReadList(info.Version, q)
	return data, info.Version, err
}

// Latest returns the newest published snapshot descriptor.
func (b *Blob) Latest() (vmanager.SnapshotInfo, error) {
	return b.svc.VM.LatestPublished(b.id)
}

// Size returns the size of the given published snapshot.
func (b *Blob) Size(version uint64) (int64, error) {
	info, err := b.svc.VM.Snapshot(b.id, version)
	if err != nil {
		return 0, err
	}
	return info.Size, nil
}

// Versions lists all published versions of the blob.
func (b *Blob) Versions() ([]uint64, error) {
	return b.svc.VM.Versions(b.id)
}

// ChunkRefs enumerates the chunk references a published snapshot is
// assembled from, by resolving its metadata over the full snapshot
// extent. The background scrubber walks these to verify that every
// chunk a published version depends on still has its full replica set.
func (b *Blob) ChunkRefs(version uint64) ([]chunk.Ref, error) {
	info, err := b.svc.VM.Snapshot(b.id, version)
	if err != nil {
		return nil, err
	}
	if info.Size == 0 {
		return nil, nil
	}
	frags, _, err := b.tree.Resolve(info.Root, extent.List{{Offset: 0, Length: info.Size}})
	if err != nil {
		return nil, err
	}
	refs := make([]chunk.Ref, 0, len(frags))
	for _, f := range frags {
		refs = append(refs, f.Ref)
	}
	return refs, nil
}

// Retain applies the retention policy: drop every published version
// older than the newest keepLast, skipping pinned versions. Returns
// the versions newly dropped (they become pending reclamation).
func (b *Blob) Retain(keepLast int) ([]uint64, error) {
	return b.svc.VM.Retain(b.id, keepLast)
}

// DropVersion removes one published version from the readable set and
// queues it for chunk reclamation. The latest version, version 0 and
// pinned versions are refused.
func (b *Blob) DropVersion(v uint64) error {
	return b.svc.VM.DropVersion(b.id, v)
}

// Pin protects a published version from retention until Unpin —
// readers holding an old snapshot open pin it so the reaper can never
// reclaim the bytes under them.
func (b *Blob) Pin(v uint64) error { return b.svc.VM.Pin(b.id, v) }

// Unpin releases one Pin.
func (b *Blob) Unpin(v uint64) error { return b.svc.VM.Unpin(b.id, v) }

// GCInfo returns the blob's version-lifecycle snapshot.
func (b *Blob) GCInfo() (vmanager.GCInfo, error) {
	return b.svc.VM.GCInfo(b.id)
}

// MarkReclaimed records that the collector finished deleting a pending
// version's exclusive chunks.
func (b *Blob) MarkReclaimed(v uint64) error {
	return b.svc.VM.MarkReclaimed(b.id, v)
}

// ExclusiveChunks computes the chunk keys referenced by the pending
// dropped version v but by no retained version — the set the reaper
// may delete. The walk (segtree.ExclusiveChunks) skips subtrees the
// dropped version shares with any retained snapshot, so the cost is
// proportional to the metadata that distinguishes it from its
// retained neighbors.
func (b *Blob) ExclusiveChunks(v uint64) ([]chunk.Key, error) {
	info, err := b.GCInfo()
	if err != nil {
		return nil, err
	}
	var root segtree.NodeKey
	found := false
	for _, p := range info.Pending {
		if p.Version == v {
			root, found = p.Root, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %d", vmanager.ErrNotPending, v)
	}
	if root.IsZero() {
		return nil, nil // empty or fully aborted snapshot
	}
	keep := make([]segtree.NodeKey, 0, len(info.Retained))
	for _, rv := range info.Retained {
		snap, err := b.svc.VM.Snapshot(b.id, rv)
		if err != nil {
			// A retained version listed at GCInfo time may have been
			// dropped since; a version that is no longer retained
			// protects nothing — its own pending entry will guard its
			// chunks — so skip it rather than fail the walk.
			if errors.Is(err, vmanager.ErrVersionDropped) {
				continue
			}
			return nil, err
		}
		if !snap.Root.IsZero() {
			keep = append(keep, snap.Root)
		}
	}
	return b.tree.ExclusiveChunks(root, keep)
}

// Diff returns the byte ranges whose contents may differ between two
// published snapshots, at a cost proportional to the changed metadata
// (shared subtrees are skipped thanks to shadowing). Conservative:
// every changed byte is reported; reported bytes may compare equal if
// rewritten with identical data.
func (b *Blob) Diff(va, vb uint64) (extent.List, error) {
	ia, err := b.svc.VM.Snapshot(b.id, va)
	if err != nil {
		return nil, err
	}
	ib, err := b.svc.VM.Snapshot(b.id, vb)
	if err != nil {
		return nil, err
	}
	return b.tree.Diff(ia.Root, ib.Root)
}
