package blob

import (
	"errors"
	"testing"

	"repro/internal/extent"
	"repro/internal/vmanager"
)

func TestLifecycleThroughBlobHandle(t *testing.T) {
	b := testBlob(t)
	// Three versions rewriting the same page: v1's chunk becomes
	// exclusive once v2 fully overwrites it.
	for i := 0; i < 3; i++ {
		if _, err := b.WriteList(fillVec(t, extent.List{{Offset: 0, Length: 1024}}, byte(i+1)), WriteOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.DropVersion(1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ReadAt(1, 0, 1024); !errors.Is(err, vmanager.ErrVersionDropped) {
		t.Fatalf("read of dropped version = %v, want ErrVersionDropped", err)
	}
	vs, err := b.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 { // 0, 2, 3
		t.Fatalf("versions = %v", vs)
	}
	keys, err := b.ExclusiveChunks(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0].Version != 1 {
		t.Fatalf("exclusive chunks of v1 = %v, want its one overwritten chunk", keys)
	}
	// v2 is still live even though overwritten by v3? Its chunk is
	// exclusive to it, but v2 is retained, so nothing else may claim
	// it: ExclusiveChunks of a non-pending version errors.
	if _, err := b.ExclusiveChunks(2); !errors.Is(err, vmanager.ErrNotPending) {
		t.Fatalf("exclusive of retained version = %v, want ErrNotPending", err)
	}
	if err := b.MarkReclaimed(1); err != nil {
		t.Fatal(err)
	}
	info, err := b.GCInfo()
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Pending) != 0 || info.Reclaimed != 1 {
		t.Fatalf("gc info = %+v", info)
	}
}
