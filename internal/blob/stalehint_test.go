package blob

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

// recordingData wraps a DataService and records the replica hint each
// GetFrom call carried, so tests can see which hint the blob used.
type recordingData struct {
	DataService
	mu    sync.Mutex
	hints [][]provider.ID
}

func (r *recordingData) GetFrom(replicas []provider.ID, key chunk.Key, off, length int64) ([]byte, []provider.ID, error) {
	r.mu.Lock()
	r.hints = append(r.hints, append([]provider.ID(nil), replicas...))
	r.mu.Unlock()
	return r.DataService.GetFrom(replicas, key, off, length)
}

// TestStaleHintFallbackAndRefresh is the stale-hint window regression
// test: after Repair moves a chunk's copies, metadata refs still point
// at the old replica set forever (refs are immutable). A read through
// the stale hint must succeed via the placement-map fallback, learn
// the fresh replica set, and cache it so the NEXT read goes straight
// to the live copies instead of re-walking the dead hint.
func TestStaleHintFallbackAndRefresh(t *testing.T) {
	mgr, _ := provider.NewPool(4, iosim.CostModel{})
	router := provider.NewRouter(mgr)
	router.SetReplicas(2)
	rec := &recordingData{DataService: router}
	svc := Services{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(2, iosim.CostModel{}),
		Data: rec,
	}
	b, err := Create(svc, 1, segtree.Geometry{Capacity: 64 << 10, Page: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("stale-hint"), 100)
	v, err := b.Write(0, payload, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// The write produced one chunk on two providers; that set is baked
	// into the metadata ref.
	keys := router.Keys()
	if len(keys) != 1 {
		t.Fatalf("expected 1 placed chunk, got %d", len(keys))
	}
	key := keys[0]
	orig, _ := router.Locate(key)
	if len(orig) != 2 {
		t.Fatalf("replica set %v, want 2 copies", orig)
	}

	// Lose one holder, repair (copies move to a new provider), then
	// lose the second original holder: every provider named by the
	// metadata hint is now dead, but the data is alive elsewhere.
	if err := mgr.SetDown(orig[0], true); err != nil {
		t.Fatal(err)
	}
	if st := router.Repair(); st.Repaired != st.Degraded || st.Lost > 0 {
		t.Fatalf("repair: %+v", st)
	}
	if err := mgr.SetDown(orig[1], true); err != nil {
		t.Fatal(err)
	}
	fresh, _ := router.Locate(key)

	// Read 1: stale hint -> placement fallback must serve it.
	got, err := b.ReadAt(v, 0, int64(len(payload)))
	if err != nil {
		t.Fatalf("read via stale hint: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("stale-hint read returned wrong data")
	}
	// ... and the fresh set must now be cached on the blob handle.
	cached, ok := b.FreshHint(key)
	if !ok || fmt.Sprint(cached) != fmt.Sprint(fresh) {
		t.Fatalf("cached hint = %v,%v, want %v", cached, ok, fresh)
	}

	// Read 2: must be served with the refreshed hint, not the stale
	// metadata one.
	if _, err := b.ReadAt(v, 0, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.hints) != 2 {
		t.Fatalf("expected 2 GetFrom calls, saw %d", len(rec.hints))
	}
	staleHint, refreshedHint := rec.hints[0], rec.hints[1]
	if fmt.Sprint(staleHint) != fmt.Sprint(orig) {
		t.Fatalf("first read used hint %v, want the metadata (stale) set %v", staleHint, orig)
	}
	if fmt.Sprint(refreshedHint) != fmt.Sprint(fresh) {
		t.Fatalf("second read used hint %v, want the refreshed set %v", refreshedHint, fresh)
	}
}

// TestSharedCacheHintLifecycle covers the shared-cache replacement for
// the old per-handle hint maps: two handles on the same blob share one
// deployment cache, so a hint one handle learns serves the other; a
// placement change invalidates it for both; and the cache's byte bound
// holds however many hints the handles learn.
func TestSharedCacheHintLifecycle(t *testing.T) {
	mgr, _ := provider.NewPool(4, iosim.CostModel{})
	router := provider.NewRouter(mgr)
	router.SetReplicas(2)
	cache := provider.NewReadCache(provider.ReadCacheConfig{Shards: 4, MaxBytes: 256 << 10})
	router.SetReadCache(cache)
	svc := Services{
		VM:    vmanager.New(iosim.CostModel{}),
		Meta:  metadata.NewStore(2, iosim.CostModel{}),
		Data:  router,
		Cache: cache,
	}
	b1, err := Create(svc, 1, segtree.Geometry{Capacity: 64 << 10, Page: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("shared"), 512)
	v, err := b1.Write(0, payload, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Open(svc, 1)
	if err != nil {
		t.Fatal(err)
	}

	keys := router.Keys()
	if len(keys) != 1 {
		t.Fatalf("expected 1 placed chunk, got %d", len(keys))
	}
	key := keys[0]
	orig, _ := router.Locate(key)

	// Rot the metadata hint: kill one holder, repair, kill the other.
	if err := mgr.SetDown(orig[0], true); err != nil {
		t.Fatal(err)
	}
	if st := router.Repair(); st.Repaired != st.Degraded || st.Lost > 0 {
		t.Fatalf("repair: %+v", st)
	}
	if err := mgr.SetDown(orig[1], true); err != nil {
		t.Fatal(err)
	}
	fresh, _ := router.Locate(key)

	// Handle 1 reads through the stale metadata hint and learns the
	// fresh set; because the hint store is the SHARED cache, handle 2
	// sees it without ever having read.
	if _, err := b1.ReadAt(v, 0, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	if cached, ok := b2.FreshHint(key); !ok || fmt.Sprint(cached) != fmt.Sprint(fresh) {
		t.Fatalf("handle 2 hint = %v,%v, want shared %v", cached, ok, fresh)
	}

	// The next placement change invalidates the shared hint for both
	// handles at once — the rot the per-handle maps used to keep.
	if err := mgr.SetDown(fresh[0], true); err != nil {
		t.Fatal(err)
	}
	if st := router.Repair(); st.Lost > 0 {
		t.Fatalf("repair: %+v", st)
	}
	if _, ok := b1.FreshHint(key); ok {
		t.Fatal("handle 1 still holds a hint the repair invalidated")
	}
	if _, ok := b2.FreshHint(key); ok {
		t.Fatal("handle 2 still holds a hint the repair invalidated")
	}
	// ... and reads keep working through the re-learned placement.
	got, err := b2.ReadAt(v, 0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("post-invalidation read returned wrong data")
	}
}

// TestPrivateHintCacheBounded covers the no-shared-cache fallback: a
// handle built without Services.Cache stores its learned hints in a
// private BOUNDED cache — the unbounded per-handle map this replaced
// grew one entry per chunk ever read, forever.
func TestPrivateHintCacheBounded(t *testing.T) {
	mgr, _ := provider.NewPool(4, iosim.CostModel{})
	router := provider.NewRouter(mgr)
	router.SetReplicas(2)
	svc := Services{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(2, iosim.CostModel{}),
		Data: router,
	}
	b, err := Create(svc, 1, segtree.Geometry{Capacity: 64 << 10, Page: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Flood the private store with far more hints than its byte budget
	// holds: the bound must win.
	var key chunk.Key
	for i := 0; i < 100000; i++ {
		key = chunk.Key{Blob: 1, Version: uint64(i), Index: uint32(i)}
		b.cacheHint(key, []provider.ID{0, 1})
	}
	if b.hints.Bytes() > privateHintCacheBytes {
		t.Fatalf("private hint cache grew to %d bytes, bound is %d", b.hints.Bytes(), privateHintCacheBytes)
	}
	if st := b.hints.Stats(); st.Evictions == 0 {
		t.Fatalf("100k hints never evicted: %+v", st)
	}
	// The most recent hint survives the flood.
	if _, ok := b.FreshHint(key); !ok {
		t.Fatal("freshest hint evicted")
	}
}
