package blob

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/chunk"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/vmanager"
)

// recordingData wraps a DataService and records the replica hint each
// GetFrom call carried, so tests can see which hint the blob used.
type recordingData struct {
	DataService
	mu    sync.Mutex
	hints [][]provider.ID
}

func (r *recordingData) GetFrom(replicas []provider.ID, key chunk.Key, off, length int64) ([]byte, []provider.ID, error) {
	r.mu.Lock()
	r.hints = append(r.hints, append([]provider.ID(nil), replicas...))
	r.mu.Unlock()
	return r.DataService.GetFrom(replicas, key, off, length)
}

// TestStaleHintFallbackAndRefresh is the stale-hint window regression
// test: after Repair moves a chunk's copies, metadata refs still point
// at the old replica set forever (refs are immutable). A read through
// the stale hint must succeed via the placement-map fallback, learn
// the fresh replica set, and cache it so the NEXT read goes straight
// to the live copies instead of re-walking the dead hint.
func TestStaleHintFallbackAndRefresh(t *testing.T) {
	mgr, _ := provider.NewPool(4, iosim.CostModel{})
	router := provider.NewRouter(mgr)
	router.SetReplicas(2)
	rec := &recordingData{DataService: router}
	svc := Services{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(2, iosim.CostModel{}),
		Data: rec,
	}
	b, err := Create(svc, 1, segtree.Geometry{Capacity: 64 << 10, Page: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("stale-hint"), 100)
	v, err := b.Write(0, payload, WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// The write produced one chunk on two providers; that set is baked
	// into the metadata ref.
	keys := router.Keys()
	if len(keys) != 1 {
		t.Fatalf("expected 1 placed chunk, got %d", len(keys))
	}
	key := keys[0]
	orig, _ := router.Locate(key)
	if len(orig) != 2 {
		t.Fatalf("replica set %v, want 2 copies", orig)
	}

	// Lose one holder, repair (copies move to a new provider), then
	// lose the second original holder: every provider named by the
	// metadata hint is now dead, but the data is alive elsewhere.
	if err := mgr.SetDown(orig[0], true); err != nil {
		t.Fatal(err)
	}
	if st := router.Repair(); st.Repaired != st.Degraded || st.Lost > 0 {
		t.Fatalf("repair: %+v", st)
	}
	if err := mgr.SetDown(orig[1], true); err != nil {
		t.Fatal(err)
	}
	fresh, _ := router.Locate(key)

	// Read 1: stale hint -> placement fallback must serve it.
	got, err := b.ReadAt(v, 0, int64(len(payload)))
	if err != nil {
		t.Fatalf("read via stale hint: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("stale-hint read returned wrong data")
	}
	// ... and the fresh set must now be cached on the blob handle.
	cached, ok := b.FreshHint(key)
	if !ok || fmt.Sprint(cached) != fmt.Sprint(fresh) {
		t.Fatalf("cached hint = %v,%v, want %v", cached, ok, fresh)
	}

	// Read 2: must be served with the refreshed hint, not the stale
	// metadata one.
	if _, err := b.ReadAt(v, 0, int64(len(payload))); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.hints) != 2 {
		t.Fatalf("expected 2 GetFrom calls, saw %d", len(rec.hints))
	}
	staleHint, refreshedHint := rec.hints[0], rec.hints[1]
	if fmt.Sprint(staleHint) != fmt.Sprint(orig) {
		t.Fatalf("first read used hint %v, want the metadata (stale) set %v", staleHint, orig)
	}
	if fmt.Sprint(refreshedHint) != fmt.Sprint(fresh) {
		t.Fatalf("second read used hint %v, want the refreshed set %v", refreshedHint, fresh)
	}
}
