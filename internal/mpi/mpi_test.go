package mpi

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunBasics(t *testing.T) {
	var count atomic.Int32
	err := Run(8, func(c *Comm) error {
		if c.Size() != 8 {
			t.Errorf("size = %d", c.Size())
		}
		count.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 8 {
		t.Fatalf("ran %d ranks", count.Load())
	}
}

func TestRunValidation(t *testing.T) {
	if err := Run(0, func(c *Comm) error { return nil }); err == nil {
		t.Fatal("size 0 must fail")
	}
}

func TestRunCollectsErrors(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 2 {
			return errRank2
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2 failed") {
		t.Fatalf("err = %v", err)
	}
}

var errRank2 = errorString("rank 2 failed")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestRunRecoversPanics(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestSendRecv(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, 42)
		}
		v, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if v.(int) != 42 {
			t.Errorf("recv = %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvTagMatching(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, "tag1")
			c.Send(1, 2, "tag2")
			return nil
		}
		// Receive in opposite tag order.
		v2, _ := c.Recv(0, 2)
		v1, _ := c.Recv(0, 1)
		if v1.(string) != "tag1" || v2.(string) != "tag2" {
			t.Errorf("tag matching broken: %v %v", v1, v2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvFIFOPerTag(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		const n = 100
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 0, i)
			}
			return nil
		}
		for i := 0; i < n; i++ {
			v, _ := c.Recv(0, 0)
			if v.(int) != i {
				t.Errorf("message %d arrived as %v", i, v)
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvValidation(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if err := c.Send(5, 0, 1); err == nil {
			t.Error("send to invalid rank must fail")
		}
		if err := c.Send(0, -3, 1); err == nil {
			t.Error("negative tag must fail")
		}
		if _, err := c.Recv(9, 0); err == nil {
			t.Error("recv from invalid rank must fail")
		}
		if _, err := c.Recv(0, -1); err == nil {
			t.Error("negative recv tag must fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	var before, after atomic.Int32
	err := Run(8, func(c *Comm) error {
		if c.Rank() == 0 {
			time.Sleep(50 * time.Millisecond)
		}
		before.Add(1)
		c.Barrier()
		// At this point every rank must have passed `before`.
		if got := before.Load(); got != 8 {
			t.Errorf("rank %d: before = %d at barrier exit", c.Rank(), got)
		}
		after.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReusable(t *testing.T) {
	var sum atomic.Int64
	err := Run(4, func(c *Comm) error {
		for round := 0; round < 20; round++ {
			sum.Add(1)
			c.Barrier()
			want := int64((round + 1) * 4)
			if got := sum.Load(); got != want {
				t.Errorf("round %d: sum = %d, want %d", round, got, want)
				return nil
			}
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		var v any
		if c.Rank() == 2 {
			v = "payload"
		}
		got := c.Bcast(2, v)
		if got.(string) != "payload" {
			t.Errorf("rank %d: bcast = %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastSingleRank(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if got := c.Bcast(0, 5); got.(int) != 5 {
			t.Errorf("bcast = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		vals := c.Gather(3, c.Rank()*10)
		if c.Rank() != 3 {
			if vals != nil {
				t.Errorf("non-root got %v", vals)
			}
			return nil
		}
		for r, v := range vals {
			if v.(int) != r*10 {
				t.Errorf("vals[%d] = %v", r, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	err := Run(5, func(c *Comm) error {
		vals := c.Allgather(c.Rank() + 100)
		if len(vals) != 5 {
			t.Errorf("len = %d", len(vals))
			return nil
		}
		for r, v := range vals {
			if v.(int) != r+100 {
				t.Errorf("vals[%d] = %v", r, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		var vals []any
		if c.Rank() == 0 {
			vals = []any{"a", "b", "c", "d"}
		}
		v, err := c.Scatter(0, vals)
		if err != nil {
			return err
		}
		want := string(rune('a' + c.Rank()))
		if v.(string) != want {
			t.Errorf("rank %d got %v, want %s", c.Rank(), v, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterValidation(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Scatter(0, []any{1}); err == nil {
				t.Error("short scatter must fail")
			}
			// Unblock rank 1 with a proper scatter.
			_, err := c.Scatter(0, []any{1, 2})
			return err
		}
		_, err := c.Scatter(0, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduce(t *testing.T) {
	err := Run(6, func(c *Comm) error {
		if got := c.Allreduce(int64(c.Rank()), OpSum); got != 15 {
			t.Errorf("sum = %d", got)
		}
		if got := c.Allreduce(int64(c.Rank()), OpMax); got != 5 {
			t.Errorf("max = %d", got)
		}
		if got := c.Allreduce(int64(c.Rank()+1), OpMin); got != 1 {
			t.Errorf("min = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceFloat(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		got := c.AllreduceFloat(0.5)
		if got != 2.0 {
			t.Errorf("sum = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldCommValidation(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Comm(2); err == nil {
		t.Fatal("out-of-range rank must fail")
	}
	if _, err := w.Comm(-1); err == nil {
		t.Fatal("negative rank must fail")
	}
}

func TestManyRanksStress(t *testing.T) {
	err := Run(32, func(c *Comm) error {
		for round := 0; round < 5; round++ {
			vals := c.Allgather(int64(c.Rank()))
			var sum int64
			for _, v := range vals {
				sum += v.(int64)
			}
			if sum != 31*32/2 {
				t.Errorf("round %d sum = %d", round, sum)
			}
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		vals := make([]any, 4)
		for r := 0; r < 4; r++ {
			vals[r] = c.Rank()*10 + r
		}
		got, err := c.Alltoall(vals)
		if err != nil {
			return err
		}
		for sender, v := range got {
			if v.(int) != sender*10+c.Rank() {
				t.Errorf("rank %d from %d: %v", c.Rank(), sender, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallValidation(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Alltoall([]any{1}); err == nil {
				t.Error("short alltoall must fail")
			}
			// Unblock rank 1 with a proper exchange.
			_, err := c.Alltoall([]any{1, 2})
			return err
		}
		_, err := c.Alltoall([]any{3, 4})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}
