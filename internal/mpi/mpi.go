// Package mpi provides an in-process MPI runtime: ranks run as
// goroutines inside one world and communicate through typed mailboxes
// and collectives (barrier, broadcast, gather, allgather, allreduce).
// It exists so that the MPI-I/O layer and the paper's benchmarks
// (MPI-tile-IO, the ghost-cell workloads) can run with the exact
// communication structure of their MPI originals — per-rank
// concurrency, synchronizing collectives, two-phase data exchange —
// without an external MPI installation.
package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// World owns the shared communication state of one MPI job.
type World struct {
	size    int
	mu      sync.Mutex
	boxes   map[msgKey]*mailbox
	barrier *barrier
}

type msgKey struct {
	src, dst, tag int
}

// mailbox is an unbounded FIFO queue for one (src, dst, tag) stream.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []any
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(v any) {
	m.mu.Lock()
	m.q = append(m.q, v)
	m.cond.Signal()
	m.mu.Unlock()
}

func (m *mailbox) take() any {
	m.mu.Lock()
	for len(m.q) == 0 {
		m.cond.Wait()
	}
	v := m.q[0]
	m.q = m.q[1:]
	m.mu.Unlock()
	return v
}

// barrier is a reusable n-party barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: world size %d must be >= 1", size)
	}
	return &World{
		size:    size,
		boxes:   make(map[msgKey]*mailbox),
		barrier: newBarrier(size),
	}, nil
}

// Comm is one rank's communicator handle.
type Comm struct {
	w    *World
	rank int
}

// Comm returns the communicator for a rank.
func (w *World) Comm(rank int) (*Comm, error) {
	if rank < 0 || rank >= w.size {
		return nil, fmt.Errorf("mpi: rank %d out of range [0,%d)", rank, w.size)
	}
	return &Comm{w: w, rank: rank}, nil
}

// Run spawns size ranks, invokes fn in each, and waits for all to
// finish. Every rank's error (and recovered panic) is collected; the
// joined error is returned.
func Run(size int, fn func(c *Comm) error) error {
	w, err := NewWorld(size)
	if err != nil {
		return err
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("mpi: rank %d panicked: %v", r, p)
				}
			}()
			c, err := w.Comm(r)
			if err != nil {
				errs[r] = err
				return
			}
			errs[r] = fn(c)
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// Reserved internal tags for collectives; user tags must be >= 0.
const (
	tagBcast = -1 - iota
	tagGather
	tagAllgather
	tagReduce
	tagScatter
	tagAlltoall
)

func (w *World) box(src, dst, tag int) *mailbox {
	k := msgKey{src: src, dst: dst, tag: tag}
	w.mu.Lock()
	b, ok := w.boxes[k]
	if !ok {
		b = newMailbox()
		w.boxes[k] = b
	}
	w.mu.Unlock()
	return b
}

// Send delivers v to rank dst under the given tag (non-blocking with
// unbounded buffering, like an eager-protocol MPI_Send).
func (c *Comm) Send(dst, tag int, v any) error {
	if dst < 0 || dst >= c.w.size {
		return fmt.Errorf("mpi: send to invalid rank %d", dst)
	}
	if tag < 0 {
		return fmt.Errorf("mpi: user tags must be >= 0, got %d", tag)
	}
	c.w.box(c.rank, dst, tag).put(v)
	return nil
}

// Recv blocks until a message from src with the given tag arrives.
func (c *Comm) Recv(src, tag int) (any, error) {
	if src < 0 || src >= c.w.size {
		return nil, fmt.Errorf("mpi: recv from invalid rank %d", src)
	}
	if tag < 0 {
		return nil, fmt.Errorf("mpi: user tags must be >= 0, got %d", tag)
	}
	return c.w.box(src, c.rank, tag).take(), nil
}

// send/recv on the internal tag space (no validation).
func (c *Comm) isend(dst, tag int, v any) { c.w.box(c.rank, dst, tag).put(v) }
func (c *Comm) irecv(src, tag int) any    { return c.w.box(src, c.rank, tag).take() }

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() { c.w.barrier.wait() }

// Bcast distributes root's value to every rank and returns it.
func (c *Comm) Bcast(root int, v any) any {
	if c.w.size == 1 {
		return v
	}
	if c.rank == root {
		for r := 0; r < c.w.size; r++ {
			if r != root {
				c.isend(r, tagBcast, v)
			}
		}
		return v
	}
	return c.irecv(root, tagBcast)
}

// Gather collects one value per rank at root. Root receives the full
// slice indexed by rank; other ranks receive nil.
func (c *Comm) Gather(root int, v any) []any {
	if c.rank != root {
		c.isend(root, tagGather, v)
		return nil
	}
	out := make([]any, c.w.size)
	out[c.rank] = v
	for r := 0; r < c.w.size; r++ {
		if r != root {
			out[r] = c.irecv(r, tagGather)
		}
	}
	return out
}

// Allgather collects one value per rank at every rank.
func (c *Comm) Allgather(v any) []any {
	// Gather at rank 0, then broadcast the slice.
	gathered := c.Gather(0, v)
	res := c.Bcast(0, any(gathered))
	return res.([]any)
}

// Scatter distributes vals[r] from root to each rank r and returns the
// local element. Only root's vals argument is consulted.
func (c *Comm) Scatter(root int, vals []any) (any, error) {
	if c.rank == root {
		if len(vals) != c.w.size {
			return nil, fmt.Errorf("mpi: scatter of %d values to %d ranks", len(vals), c.w.size)
		}
		for r := 0; r < c.w.size; r++ {
			if r != root {
				c.isend(r, tagScatter, vals[r])
			}
		}
		return vals[root], nil
	}
	return c.irecv(root, tagScatter), nil
}

// Alltoall sends vals[r] to rank r and returns the values received
// from every rank, indexed by sender (MPI_Alltoall). The caller must
// supply exactly one value per rank.
func (c *Comm) Alltoall(vals []any) ([]any, error) {
	if len(vals) != c.w.size {
		return nil, fmt.Errorf("mpi: alltoall of %d values on %d ranks", len(vals), c.w.size)
	}
	for r := 0; r < c.w.size; r++ {
		c.isend(r, tagAlltoall, vals[r])
	}
	out := make([]any, c.w.size)
	for r := 0; r < c.w.size; r++ {
		out[r] = c.irecv(r, tagAlltoall)
	}
	return out, nil
}

// ReduceOp is a binary associative reduction operator on int64.
type ReduceOp func(a, b int64) int64

// Predefined reduction operators.
var (
	OpSum ReduceOp = func(a, b int64) int64 { return a + b }
	OpMax ReduceOp = func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin ReduceOp = func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
)

// Allreduce combines one int64 per rank with op and returns the result
// on every rank.
func (c *Comm) Allreduce(v int64, op ReduceOp) int64 {
	vals := c.Allgather(v)
	acc := vals[0].(int64)
	for _, x := range vals[1:] {
		acc = op(acc, x.(int64))
	}
	return acc
}

// AllreduceFloat combines one float64 per rank (sum only, which is all
// the benchmarks need) and returns the result on every rank.
func (c *Comm) AllreduceFloat(v float64) float64 {
	vals := c.Allgather(v)
	var acc float64
	for _, x := range vals {
		acc += x.(float64)
	}
	return acc
}
