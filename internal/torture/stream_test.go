package torture

import (
	"fmt"
	"testing"
)

// TestStreamTornUploads is the torn-upload half of the streaming
// schedule: at R=1, seed-planned mid-stream tears must fail the killed
// writes cleanly — no partial chunk at any store, every version that
// did publish intact byte-for-byte.
func TestStreamTornUploads(t *testing.T) {
	for _, seed := range seeds(t) {
		rep, err := RunStream(StreamConfig{Seed: seed, Replicas: 1})
		if err != nil {
			t.Fatalf("replay with REPRO_TORTURE_SEED=%d: %v", seed, err)
		}
		if rep.Torn == 0 {
			t.Fatalf("seed %d: no stream torn", seed)
		}
		if rep.Verified != rep.Published {
			t.Fatalf("seed %d: %d of %d published versions verified", seed, rep.Verified, rep.Published)
		}
		if rep.Published+rep.Torn != 4*6 {
			t.Fatalf("seed %d: %d published + %d torn != 24 writes", seed, rep.Published, rep.Torn)
		}
	}
}

// TestStreamDegradedReads is the failover half: at R=2 the victim dies
// mid-workload holding live chunks, yet every write commits and every
// published version reconstructs from the surviving replicas while the
// victim is still down.
func TestStreamDegradedReads(t *testing.T) {
	for _, seed := range seeds(t) {
		rep, err := RunStream(StreamConfig{Seed: seed, Replicas: 2})
		if err != nil {
			t.Fatalf("replay with REPRO_TORTURE_SEED=%d: %v", seed, err)
		}
		if rep.Torn != 0 {
			t.Fatalf("seed %d: %d writes failed at R=2", seed, rep.Torn)
		}
		if rep.Published != 4*6 || rep.Verified != rep.Published {
			t.Fatalf("seed %d: published %d, verified %d", seed, rep.Published, rep.Verified)
		}
		if rep.VictimChunks == 0 {
			t.Fatalf("seed %d: victim held no chunks", seed)
		}
	}
}

// TestStreamDiskBackend runs the torn-upload schedule with real files
// behind the providers: the temp+rename protocol, not a memory map, is
// what must keep the torn chunk invisible.
func TestStreamDiskBackend(t *testing.T) {
	rep, err := RunStream(StreamConfig{
		Seed:     1,
		Replicas: 1,
		StoreURL: fmt.Sprintf("disk://%s", t.TempDir()),
	})
	if err != nil {
		t.Fatalf("replay with REPRO_TORTURE_SEED=1: %v", err)
	}
	if rep.Torn == 0 || rep.Verified != rep.Published {
		t.Fatalf("disk run: %+v", rep)
	}
}

// TestStreamPlanDeterminism: equal seeds must derive equal schedules,
// the first kill must land in the middle half, every tear must fall
// strictly inside a chunk, and schedules must vary with the seed.
func TestStreamPlanDeterminism(t *testing.T) {
	cfg := StreamConfig{Seed: 5}.withDefaults()
	a, b := cfg.Plan(), cfg.Plan()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed planned %+v vs %+v", a, b)
	}
	total := cfg.Writers * cfg.ObjectsPerWriter
	if a.AfterObjects < total/4 || a.AfterObjects > total/2 {
		t.Fatalf("kill point %d outside the middle half of %d writes", a.AfterObjects, total)
	}
	for _, n := range a.Torn {
		if n < 1 || n >= cfg.ChunkSize {
			t.Fatalf("tear at byte %d could land on a chunk boundary (chunk size %d)", n, cfg.ChunkSize)
		}
	}
	seen := map[string]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		seen[fmt.Sprint(StreamConfig{Seed: seed}.Plan())] = true
	}
	if len(seen) < 2 {
		t.Fatal("schedules do not vary with the seed")
	}
}
