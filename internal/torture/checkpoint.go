package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/provider"
	"repro/internal/vmanager"
	"repro/internal/workload"
)

// CheckpointConfig parameterizes one checkpoint-blaster torture run:
// Ranks writers checkpoint the strided N-1 pattern epoch after epoch
// through write pipes while restore readers pin and re-read old
// epochs, the retention policy feeds the reaper continuously, a
// seed-scheduled provider dies at the store level mid-run, and a
// watcher asserts the metrics registry stays monotone and internally
// consistent under all of it.
type CheckpointConfig struct {
	// Seed drives the kill schedule and the readers' version picks.
	Seed int64
	// Ranks is the number of checkpoint writers (default 4).
	Ranks int
	// Epochs is how many checkpoints every rank writes (default 6).
	// Ranks*Epochs must stay <= 255 (stamp bytes).
	Epochs int
	// Segments and SegmentSize shape each rank's strided list
	// (defaults 4 and 4 KiB).
	Segments    int
	SegmentSize int64
	// Providers and Replicas shape the pool (defaults 8 and 2;
	// Replicas must be >= 2 — the schedule kills a provider).
	Providers int
	Replicas  int
	// KeepLast is the retention window (default 2).
	KeepLast int
	// Readers is the number of concurrent restore readers (default 2).
	Readers int
	// MaxTicks bounds the post-workload convergence loop (default 600).
	MaxTicks int
}

func (c CheckpointConfig) withDefaults() CheckpointConfig {
	if c.Ranks <= 0 {
		c.Ranks = 4
	}
	if c.Epochs <= 0 {
		c.Epochs = 6
	}
	if c.Segments <= 0 {
		c.Segments = 4
	}
	if c.SegmentSize <= 0 {
		c.SegmentSize = 4 << 10
	}
	if c.Providers <= 0 {
		c.Providers = 8
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.KeepLast <= 0 {
		c.KeepLast = 2
	}
	if c.Readers <= 0 {
		c.Readers = 2
	}
	if c.MaxTicks <= 0 {
		c.MaxTicks = 600
	}
	return c
}

// Validate checks the configuration.
func (c CheckpointConfig) Validate() error {
	c = c.withDefaults()
	if c.Replicas < 2 {
		return errors.New("torture: checkpoint schedule needs R >= 2 (it kills a provider)")
	}
	if c.Ranks*c.Epochs > 255 {
		return fmt.Errorf("torture: %d rank-epochs exceed the 255 stamp-byte limit", c.Ranks*c.Epochs)
	}
	return nil
}

// CheckpointPlan is the seed-derived schedule: Victim's store dies
// once AfterEpoch epochs have been published.
type CheckpointPlan struct {
	Victim     provider.ID
	AfterEpoch int
}

// Plan derives the schedule from the seed, on its own stream.
func (c CheckpointConfig) Plan() CheckpointPlan {
	c = c.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed ^ 0x636b70742d736368)) // "ckpt-sch"
	return CheckpointPlan{
		Victim:     provider.ID(rng.Intn(c.Providers)),
		AfterEpoch: 1 + c.Epochs/3 + rng.Intn(c.Epochs/3+1),
	}
}

// stamp encodes (rank, epoch) in one nonzero payload byte; epoch is
// 1-based. stampRank/stampEpoch invert it.
func (c CheckpointConfig) stamp(rank, epoch int) byte {
	return byte(1 + (epoch-1)*c.Ranks + rank)
}

func (c CheckpointConfig) stampRank(b byte) int  { return int(b-1) % c.Ranks }
func (c CheckpointConfig) stampEpoch(b byte) int { return int(b-1)/c.Ranks + 1 }

// CheckpointReport summarizes one checkpoint-blaster torture run.
type CheckpointReport struct {
	Plan         CheckpointPlan
	FailedWrites int // must be 0
	Restores     int // restore reads completed (each fully verified)
	HealTicks    int // ticks to full re-replication after the workload
	Detected     bool
	MetricChecks int     // mid-churn registry snapshots verified
	PublishTotal float64 // bs_vm_publish_total at the end
	Repaired     int64   // bs_repair_total{outcome="repaired"}
	ReapDeleted  int64   // bs_reap_deleted_total
	Stats        string  // reaper stats (diagnostics)
}

// checkpointEnv pins the deployment: self-heal with a small queue,
// continuous retention, fault injection for the store-level kill, and
// the read cache on so restores exercise it.
func checkpointEnv(cfg CheckpointConfig) cluster.Env {
	env := cluster.Default()
	env.Providers = cfg.Providers
	env.Replicas = cfg.Replicas
	env.SelfHeal = true
	env.FaultInjection = true
	env.FailThreshold = 2
	env.Probation = 30 * time.Second
	env.ScrubRate = 32
	env.RepairRate = 8
	env.RepairQueue = 64
	env.GC = true
	env.RetainLast = cfg.KeepLast
	env.GCRate = 8
	env.GCQueue = 64
	env.ReadCache = true
	return env
}

// monotoneSnapshot checks one registry snapshot against the previous
// one: counters and histogram counts/buckets never decrease, and every
// histogram's +Inf bucket equals its count WITHIN the same snapshot
// (the per-histogram lock makes that an invariant any observer must
// see). Returns the error and the new baseline.
func monotoneSnapshot(prev, snap map[string]float64) error {
	for name, v := range snap {
		if !strings.HasSuffix(name, "_total") && !strings.HasSuffix(name, "_count") &&
			!strings.Contains(name, "_bucket{") {
			continue // gauges may move both ways
		}
		if p, ok := prev[name]; ok && v < p {
			return fmt.Errorf("counter %s went backward: %g -> %g", name, p, v)
		}
	}
	for name, count := range snap {
		base, ok := strings.CutSuffix(name, "_count")
		if !ok {
			continue
		}
		inf, ok := snap[base+`_bucket{le="+Inf"}`]
		if !ok {
			continue
		}
		if inf != count {
			return fmt.Errorf("histogram %s torn mid-churn: +Inf bucket %g != count %g", base, inf, count)
		}
	}
	return nil
}

// RunCheckpoint executes the checkpoint-blaster schedule. The
// contract:
//
//   - Every checkpoint write commits through the store-level kill and
//     the continuous retain/reap traffic — zero failures at R >= 2.
//   - Every restore read of a pinned version is whole: each rank's
//     region decodes to that rank and to exactly one epoch across all
//     its segments (a mixed-epoch region is a torn atomic write).
//   - The victim is detected from errors alone and full replication
//     returns within MaxTicks.
//   - The metrics registry never lies: counters are monotone across
//     mid-churn snapshots, every histogram's +Inf bucket equals its
//     count in every snapshot, and at quiescence bs_vm_publish_total
//     equals the versions actually published while the repair and
//     reap counters prove both background loops really ran.
func RunCheckpoint(cfg CheckpointConfig) (CheckpointReport, error) {
	if err := cfg.Validate(); err != nil {
		return CheckpointReport{}, err
	}
	cfg = cfg.withDefaults()
	plan := cfg.Plan()
	report := CheckpointReport{Plan: plan}
	spec := workload.CheckpointSpec{Ranks: cfg.Ranks, Segments: cfg.Segments, SegmentSize: cfg.SegmentSize}

	svc, err := cluster.NewVersioning(checkpointEnv(cfg))
	if err != nil {
		return report, err
	}
	be, err := svc.Backend(1, spec.FileSpan())
	if err != nil {
		return report, err
	}
	b := be.Blob()

	// Virtual clock: one healer tick = one virtual second.
	var vsec atomic.Int64
	svc.Health.SetClock(func() time.Time { return time.Unix(vsec.Load(), 0) })
	tick := func() {
		vsec.Add(1)
		svc.Healer.Tick()
		svc.Reaper.Tick()
	}
	stopTicker := make(chan struct{})
	var tickerWG sync.WaitGroup
	tickerWG.Add(1)
	go func() {
		defer tickerWG.Done()
		for {
			select {
			case <-stopTicker:
				return
			default:
				tick()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	defer func() {
		select {
		case <-stopTicker:
		default:
			close(stopTicker)
		}
		tickerWG.Wait()
	}()

	// The metrics watcher: snapshot the registry mid-churn and hold it
	// to the monotonicity and self-consistency contract.
	watchErr := make(chan error, 1)
	stopWatch := make(chan struct{})
	var watchWG sync.WaitGroup
	var metricChecks atomic.Int64
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		prev := map[string]float64{}
		for {
			select {
			case <-stopWatch:
				return
			default:
			}
			snap := svc.Metrics.Snapshot()
			if err := monotoneSnapshot(prev, snap); err != nil {
				select {
				case watchErr <- err:
				default:
				}
				return
			}
			prev = snap
			metricChecks.Add(1)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Restore readers: pin a retained version, read one rank's strided
	// region, and verify the stamps — rank must match, and all of the
	// rank's segments must carry the SAME epoch (its writes are atomic)
	// in [1, Epochs].
	readErr := make(chan error, 1)
	stopReaders := make(chan struct{})
	var readersWG sync.WaitGroup
	var restoreCount atomic.Int64
	for i := 0; i < cfg.Readers; i++ {
		readersWG.Add(1)
		go func(i int) {
			defer readersWG.Done()
			rng := rand.New(rand.NewSource(cfg.Seed ^ int64(0x72647273+i))) // "rdrs"+i
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				vs, err := b.Versions()
				if err != nil {
					select {
					case readErr <- err:
					default:
					}
					return
				}
				if len(vs) == 0 {
					continue
				}
				v := vs[rng.Intn(len(vs))]
				if v == 0 {
					continue
				}
				if err := b.Pin(v); err != nil {
					if errors.Is(err, vmanager.ErrVersionDropped) {
						continue // retention raced the pick
					}
					select {
					case readErr <- err:
					default:
					}
					return
				}
				rank := rng.Intn(cfg.Ranks)
				got, rerr := be.ReadListAt(core.Version(v), spec.ExtentsFor(rank))
				b.Unpin(v)
				if rerr != nil {
					select {
					case readErr <- fmt.Errorf("restore of pinned v%d rank %d failed: %w", v, rank, rerr):
					default:
					}
					return
				}
				verr := func() error {
					epoch := 0
					for s := 0; s < cfg.Segments; s++ {
						segment := got[int64(s)*cfg.SegmentSize : int64(s+1)*cfg.SegmentSize]
						first := segment[0]
						for _, x := range segment {
							if x != first {
								return fmt.Errorf("v%d rank %d segment %d torn: mixed bytes", v, rank, s)
							}
						}
						if first == 0 {
							// This rank had not checkpointed yet at v;
							// then NO segment of it may be written.
							if epoch > 0 {
								return fmt.Errorf("v%d rank %d segment %d unwritten after written segments", v, rank, s)
							}
							epoch = -1
							continue
						}
						if r := cfg.stampRank(first); r != rank {
							return fmt.Errorf("v%d rank %d segment %d stamped by rank %d", v, rank, s, r)
						}
						e := cfg.stampEpoch(first)
						if e < 1 || e > cfg.Epochs {
							return fmt.Errorf("v%d rank %d segment %d epoch %d out of range", v, rank, s, e)
						}
						switch epoch {
						case 0:
							epoch = e
						case -1:
							return fmt.Errorf("v%d rank %d segment %d written after unwritten segments", v, rank, s)
						default:
							if e != epoch {
								return fmt.Errorf("v%d rank %d mixes epochs %d and %d — torn checkpoint", v, rank, epoch, e)
							}
						}
					}
					return nil
				}()
				if verr != nil {
					select {
					case readErr <- verr:
					default:
					}
					return
				}
				restoreCount.Add(1)
			}
		}(i)
	}

	// The blaster: per-rank write pipes, one flush per epoch, the
	// victim store-killed after AfterEpoch epochs.
	pipes := make([]*core.WritePipe, cfg.Ranks)
	for r := range pipes {
		pipes[r] = be.NewPipe(2)
	}
	var failures []error
	var mu sync.Mutex
	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		if epoch == plan.AfterEpoch {
			svc.Faults[plan.Victim].SetDown(true)
		}
		var wg sync.WaitGroup
		for r := 0; r < cfg.Ranks; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				exts := spec.ExtentsFor(r)
				buf := make([]byte, exts.TotalLength())
				for i := range buf {
					buf[i] = cfg.stamp(r, epoch)
				}
				vec, err := extent.NewVec(exts, buf)
				if err == nil {
					if err = pipes[r].Submit(vec); err == nil {
						_, err = pipes[r].Flush()
					}
				}
				if err != nil {
					mu.Lock()
					failures = append(failures, fmt.Errorf("epoch %d rank %d: %w", epoch, r, err))
					mu.Unlock()
				}
			}(r)
		}
		wg.Wait()
	}
	close(stopReaders)
	readersWG.Wait()
	report.FailedWrites = len(failures)
	report.Restores = int(restoreCount.Load())
	if len(failures) > 0 {
		return report, fmt.Errorf("torture(seed=%d): checkpoint writes failed under kill+GC: %w",
			cfg.Seed, errors.Join(failures...))
	}
	select {
	case err := <-readErr:
		return report, fmt.Errorf("torture(seed=%d): restore reader: %w", cfg.Seed, err)
	default:
	}
	if report.Restores == 0 {
		return report, fmt.Errorf("torture(seed=%d): no restore completed — schedule lost its teeth", cfg.Seed)
	}
	close(stopTicker)
	tickerWG.Wait()

	// Converge: drain the retention backlog (dropped versions are not
	// published, so the healer will not touch their chunks), then heal
	// to full replication.
	drained := false
	for t := 0; t < cfg.MaxTicks && !drained; t++ {
		tick()
		info, err := b.GCInfo()
		if err != nil {
			return report, err
		}
		drained = len(info.Pending) == 0
	}
	st := svc.Reaper.Stats()
	report.Stats = fmt.Sprintf("%+v", st)
	if !drained {
		return report, fmt.Errorf("torture(seed=%d): pending versions not reclaimed in %d ticks: %+v",
			cfg.Seed, cfg.MaxTicks, st)
	}
	healed := -1
	for t := 1; t <= cfg.MaxTicks; t++ {
		tick()
		if svc.Healer.QueueLen() == 0 && svc.Router.UnderReplicated() == 0 {
			healed = t
			break
		}
	}
	report.HealTicks = healed
	if healed < 0 {
		return report, fmt.Errorf("torture(seed=%d): %d under-replicated chunks after %d ticks (victim %d)",
			cfg.Seed, svc.Router.UnderReplicated(), cfg.MaxTicks, plan.Victim)
	}
	report.Detected = svc.Health.State(plan.Victim) == provider.Down
	if !report.Detected {
		return report, fmt.Errorf("torture(seed=%d): victim %d never detected (state %s)",
			cfg.Seed, plan.Victim, svc.Health.State(plan.Victim))
	}

	// Stop the watcher and surface anything it caught.
	close(stopWatch)
	watchWG.Wait()
	report.MetricChecks = int(metricChecks.Load())
	select {
	case err := <-watchErr:
		return report, fmt.Errorf("torture(seed=%d): metrics watcher: %w", cfg.Seed, err)
	default:
	}
	if report.MetricChecks == 0 {
		return report, fmt.Errorf("torture(seed=%d): watcher never snapshotted — schedule lost its teeth", cfg.Seed)
	}

	// Final registry self-consistency: publish count matches the
	// versions the run actually published, the final snapshot is
	// internally consistent, and both background loops left tracks.
	final := svc.Metrics.Snapshot()
	if err := monotoneSnapshot(nil, final); err != nil {
		return report, fmt.Errorf("torture(seed=%d): final snapshot: %w", cfg.Seed, err)
	}
	report.PublishTotal = final["bs_vm_publish_total"]
	if want := float64(cfg.Ranks * cfg.Epochs); report.PublishTotal != want {
		return report, fmt.Errorf("torture(seed=%d): bs_vm_publish_total = %g, want %g",
			cfg.Seed, report.PublishTotal, want)
	}
	report.Repaired = int64(final[`bs_repair_total{outcome="repaired"}`])
	if report.Repaired == 0 {
		return report, fmt.Errorf("torture(seed=%d): kill left no bs_repair_total{outcome=\"repaired\"} tracks", cfg.Seed)
	}
	report.ReapDeleted = int64(final["bs_reap_deleted_total"])
	if report.ReapDeleted == 0 {
		return report, fmt.Errorf("torture(seed=%d): retention left no bs_reap_deleted_total tracks", cfg.Seed)
	}
	if final["bs_cache_hits_total"]+final["bs_cache_misses_total"] == 0 {
		return report, fmt.Errorf("torture(seed=%d): restores never touched the read cache", cfg.Seed)
	}
	return report, nil
}
