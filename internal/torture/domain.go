package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/mpiio"
	"repro/internal/provider"
	"repro/internal/verify"
)

// DomainConfig parameterizes one correlated-loss torture run: the
// usual overlap-heavy workload on a replicated deployment whose
// providers are split into failure domains, except the seed-scheduled
// loss takes out EVERY provider of one whole domain at once — the
// rack/zone failure independent-loss replication cannot survive. The
// kill is store-level with self-heal on: nobody calls SetDown or
// Repair, detection and domain-aware re-replication must be
// autonomous.
type DomainConfig struct {
	CrashConfig
	// Domains is the failure-domain count (must exceed Replicas so a
	// whole-domain loss leaves enough domains for the spread
	// invariant; default 4).
	Domains int
	// MaxTicks bounds the healer ticks allowed to restore full
	// replication AND full domain spread after the kill (default 400).
	MaxTicks int
}

// DomainPlan is the seed-derived schedule: every provider of
// VictimDomain dies at once after AfterCalls atomic writes. Victims
// lists them (the contiguous block cluster.Env.Domains carves out).
type DomainPlan struct {
	VictimDomain int
	AfterCalls   int
	Victims      []provider.ID
}

// Plan derives the schedule from the seed, on its own stream so it is
// independent of the call generator and of the other schedule
// families.
func (c DomainConfig) Plan() DomainPlan {
	providers := c.Providers
	if providers <= 0 {
		providers = 8
	}
	domains := c.Domains
	if domains <= 0 {
		domains = 4
	}
	rng := rand.New(rand.NewSource(c.Seed ^ 0x646f6d61696e2d31)) // "domain-1"
	total := c.Writers * c.CallsPerWriter
	victim := rng.Intn(domains)
	plan := DomainPlan{
		VictimDomain: victim,
		AfterCalls:   total/4 + rng.Intn(total/2+1),
	}
	label := fmt.Sprintf("zone%d", victim)
	for i := 0; i < providers; i++ {
		if provider.DomainLabel(i, providers, domains) == label {
			plan.Victims = append(plan.Victims, provider.ID(i))
		}
	}
	return plan
}

// DomainReport summarizes one correlated-loss run.
type DomainReport struct {
	Plan        DomainPlan
	FailedCalls int   // writes that failed (must be 0 at R >= 2 with spread)
	Detected    int   // victims the monitor flagged down from errors alone
	Ticks       int   // healer ticks to full re-replication AND full spread
	Scrubbed    int   // versions read back in full after the heal
	SpreadFound int64 // spread violations the scrubber fed into repair
	Enqueued    int64 // chunks that entered the repair queue
	Dropped     int64 // enqueues shed by the bounded queue
}

// domainEnv pins the same self-heal knobs as the heal schedule (see
// healEnv) plus the failure-domain split under test.
func domainEnv(cfg DomainConfig) cluster.Env {
	env := cluster.Default()
	env.Providers = cfg.Providers
	env.Replicas = cfg.Replicas
	env.Domains = cfg.Domains
	env.SelfHeal = true
	env.FaultInjection = true
	env.FailThreshold = 2
	env.Probation = 30 * time.Second
	env.ScrubRate = 32
	env.RepairRate = 8
	env.RepairQueue = 64
	return env
}

// RunDomain executes the correlated-loss schedule with domain-spread
// placement. The contract it checks:
//
//   - Writes keep committing through the loss of a whole failure
//     domain (spread placement puts at most one replica of any chunk
//     there; the write quorum absorbs that one), with zero failures at
//     R >= 2, and the outcome stays serializable.
//   - With NO operator action the monitor deduces every victim is
//     down, and the healer re-replicates every chunk into the
//     SURVIVING domains — restoring the distinct-domain spread, not
//     just the count — within MaxTicks virtual-time ticks.
//   - Every published snapshot then scrubs clean and no chunk's
//     replicas share a failure domain (the next domain loss is
//     survivable too).
func RunDomain(cfg DomainConfig) (DomainReport, error) {
	if cfg.Replicas < 2 {
		return DomainReport{}, errors.New("torture: RunDomain needs R >= 2")
	}
	if cfg.Providers <= 0 {
		cfg.Providers = 8
	}
	if cfg.Domains <= 0 {
		cfg.Domains = 4
	}
	if cfg.Domains <= cfg.Replicas {
		return DomainReport{}, fmt.Errorf("torture: RunDomain needs Domains > Replicas (got %d <= %d): a domain loss must leave enough domains for the spread invariant",
			cfg.Domains, cfg.Replicas)
	}
	if cfg.MaxTicks <= 0 {
		cfg.MaxTicks = 400
	}
	perWriter, err := cfg.Calls()
	if err != nil {
		return DomainReport{}, err
	}
	plan := cfg.Plan()
	report := DomainReport{Plan: plan}

	svc, err := cluster.NewVersioning(domainEnv(cfg))
	if err != nil {
		return report, err
	}
	be, err := svc.Backend(1, cfg.Span())
	if err != nil {
		return report, err
	}
	d := &mpiio.VersioningDriver{Backend: be}

	// Virtual clock: one healer tick = one virtual second.
	var vsec atomic.Int64
	svc.Health.SetClock(func() time.Time { return time.Unix(vsec.Load(), 0) })
	tick := func() {
		vsec.Add(1)
		svc.Healer.Tick()
	}

	// The workload, racing the whole-domain store-level kill. No
	// SetDown, no Repair — ever.
	var completed atomic.Int64
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			for _, id := range plan.Victims {
				svc.Faults[id].SetDown(true)
			}
		})
	}
	var mu sync.Mutex
	okCalls := make([]verify.Call, 0, cfg.Writers*cfg.CallsPerWriter)
	var failures []error
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, call := range perWriter[w] {
				vec, err := verify.MakeVec(call)
				if err == nil {
					err = d.WriteList(vec, true)
				}
				mu.Lock()
				if err != nil {
					failures = append(failures, fmt.Errorf("call %d: %w", call.ID, err))
				} else {
					okCalls = append(okCalls, call)
				}
				mu.Unlock()
				if int(completed.Add(1)) >= plan.AfterCalls {
					kill()
				}
			}
		}(w)
	}
	wg.Wait()
	kill()

	report.FailedCalls = len(failures)
	if len(failures) > 0 {
		return report, fmt.Errorf("torture(seed=%d): R=%d writes failed despite domain spread + quorum: %w",
			cfg.Seed, cfg.Replicas, errors.Join(failures...))
	}

	// Atomicity survives the correlated loss (degraded reads fail over
	// to the replicas in surviving domains and feed read-repair).
	if err := verify.CheckCalls(reader{d}, okCalls); err != nil {
		return report, fmt.Errorf("torture(seed=%d): %w", cfg.Seed, err)
	}

	// Autonomous healing: converged means the repair queue is drained,
	// every chunk is back at full degree, AND no chunk's replicas
	// share a failure domain — count and spread both restored.
	report.Ticks = -1
	for t := 1; t <= cfg.MaxTicks; t++ {
		tick()
		if svc.Healer.QueueLen() == 0 && svc.Router.UnderReplicated() == 0 && len(svc.Router.SpreadAudit()) == 0 {
			report.Ticks = t
			break
		}
	}
	if report.Ticks < 0 {
		return report, fmt.Errorf("torture(seed=%d): %d under-replicated / %d spread-violated chunks remain after %d ticks (domain %d = %v): %+v",
			cfg.Seed, svc.Router.UnderReplicated(), len(svc.Router.SpreadAudit()), cfg.MaxTicks,
			plan.VictimDomain, plan.Victims, svc.Healer.Stats())
	}
	for _, id := range plan.Victims {
		if svc.Health.State(id) == provider.Down {
			report.Detected++
		}
	}
	if report.Detected != len(plan.Victims) {
		return report, fmt.Errorf("torture(seed=%d): only %d of %d domain victims detected down: %v",
			cfg.Seed, report.Detected, len(plan.Victims), plan.Victims)
	}
	// No replica may remain placed in the dead domain: its stores are
	// gone, so a reference there is a latent read failure.
	deadLabel := fmt.Sprintf("zone%d", plan.VictimDomain)
	for _, key := range svc.Router.Keys() {
		ids, _ := svc.Router.Locate(key)
		for _, id := range ids {
			if svc.Providers.DomainOf(id) == deadLabel {
				return report, fmt.Errorf("torture(seed=%d): chunk %s still placed in dead domain %s: %v",
					cfg.Seed, key, deadLabel, ids)
			}
		}
	}
	n, err := be.Scrub()
	report.Scrubbed = n
	if err != nil {
		return report, fmt.Errorf("torture(seed=%d): snapshot unreadable after domain loss healed: %w", cfg.Seed, err)
	}

	st := svc.Healer.Stats()
	report.SpreadFound = st.SpreadFound
	report.Enqueued = st.Enqueued
	report.Dropped = st.Dropped
	return report, nil
}

// FlatReport summarizes the flat-placement control run.
type FlatReport struct {
	Plan       DomainPlan
	LostChunks int // chunks with no surviving copy (must be > 0: the exposure)
	LossSeen   bool
}

// RunDomainFlat is the control experiment: the SAME seed, workload and
// whole-domain kill, but on a flat single-domain pool — placement is
// free to co-locate a chunk's replicas on machines that fail together.
// It witnesses the data loss that domain-spread placement prevents:
// the run fails unless at least one published chunk loses every copy
// and a snapshot read reports the loss.
func RunDomainFlat(cfg DomainConfig) (FlatReport, error) {
	if cfg.Replicas < 2 {
		return FlatReport{}, errors.New("torture: RunDomainFlat needs R >= 2 (R=1 loss is RunCrash's witness)")
	}
	if cfg.Providers <= 0 {
		cfg.Providers = 8
	}
	if cfg.Domains <= 0 {
		cfg.Domains = 4
	}
	perWriter, err := cfg.Calls()
	if err != nil {
		return FlatReport{}, err
	}
	plan := cfg.Plan()
	report := FlatReport{Plan: plan}

	env := cluster.Default()
	env.Providers = cfg.Providers
	env.Replicas = cfg.Replicas
	env.FaultInjection = true
	// No Domains, no SelfHeal: the pre-spread deployment.
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		return report, err
	}
	be, err := svc.Backend(1, cfg.Span())
	if err != nil {
		return report, err
	}
	d := &mpiio.VersioningDriver{Backend: be}

	var completed atomic.Int64
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			for _, id := range plan.Victims {
				svc.Faults[id].SetDown(true)
			}
		})
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, call := range perWriter[w] {
				// Failures are expected here: with both copies of a
				// chunk allocated inside the dying block, the quorum
				// itself is unsatisfiable. The control run measures
				// loss, not availability.
				if vec, err := verify.MakeVec(call); err == nil {
					_ = d.WriteList(vec, true)
				}
				if int(completed.Add(1)) >= plan.AfterCalls {
					kill()
				}
			}
		}(w)
	}
	wg.Wait()
	kill()

	// Count chunks with no surviving copy: every recorded replica's
	// store is dead.
	byID := make(map[provider.ID]*provider.Provider, cfg.Providers)
	for _, p := range svc.Providers.Providers() {
		byID[p.ID()] = p
	}
	for _, key := range svc.Router.Keys() {
		ids, _ := svc.Router.Locate(key)
		survivors := 0
		for _, id := range ids {
			if p := byID[id]; p != nil {
				if _, err := p.Store().Len(key); err == nil {
					survivors++
				}
			}
		}
		if survivors == 0 {
			report.LostChunks++
		}
	}
	if _, err := be.Scrub(); err != nil {
		report.LossSeen = true
	}
	if report.LostChunks == 0 || !report.LossSeen {
		return report, fmt.Errorf("torture(seed=%d): flat control lost nothing (lost=%d, scrubFailed=%v) — the exposure the domain schedule exists to witness did not occur",
			cfg.Seed, report.LostChunks, report.LossSeen)
	}
	return report, nil
}
