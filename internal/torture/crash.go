package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/chunk"
	"repro/internal/cluster"
	"repro/internal/mpiio"
	"repro/internal/provider"
	"repro/internal/verify"
)

// CrashConfig parameterizes one provider-crash torture run: the usual
// overlap-heavy workload, executed on a versioning deployment with
// replication degree Replicas over Providers data providers, while a
// seed-scheduled provider dies mid-workload.
type CrashConfig struct {
	Config
	// Replicas is the replication degree R (>= 1).
	Replicas int
	// Providers is the data-provider pool size (default 8).
	Providers int
}

// CrashPlan is the seed-derived crash schedule: Victim dies once
// AfterCalls atomic writes have completed. Both values come from the
// config's seed alone, so a failing run replays exactly.
type CrashPlan struct {
	Victim     provider.ID
	AfterCalls int
}

// Plan derives the crash schedule from the seed. The kill lands in the
// middle half of the workload so writes race it from both sides.
func (c CrashConfig) Plan() CrashPlan {
	providers := c.Providers
	if providers <= 0 {
		providers = 8
	}
	// A distinct stream from the call generator: same seed, different
	// constant, so schedule and calls stay independently replayable.
	rng := rand.New(rand.NewSource(c.Seed ^ 0x63726173682d7631)) // "crash-v1"
	total := c.Writers * c.CallsPerWriter
	return CrashPlan{
		Victim:     provider.ID(rng.Intn(providers)),
		AfterCalls: total/4 + rng.Intn(total/2+1),
	}
}

// CrashReport summarizes one crash run.
type CrashReport struct {
	Plan        CrashPlan
	FailedCalls int  // writes that failed (possible only at R=1)
	DataLoss    bool // a published snapshot lost bytes (R=1 only)
	Scrubbed    int  // versions read back in full after the crash
	Repair      provider.RepairStats
	PostRepair  int // versions scrubbed after repair plus a second kill
}

// RunCrash executes the crash schedule against a replicated versioning
// deployment and checks the suite's durability contract:
//
//   - Writes keep committing: allocation routes around the dead
//     provider, and the write quorum absorbs a mid-flight loss. With
//     R >= 2 every call must succeed; with R = 1 calls racing the
//     crash may fail (and are excluded from the serializability
//     check), which is the exposure replication removes.
//   - The final state is serializable over the successful calls (MPI
//     atomicity survives the crash).
//   - With R >= 2 every published snapshot remains fully readable via
//     replica failover, a repair pass restores full replication
//     degree, and after a second provider loss every snapshot is
//     still readable — committed data survives any single machine
//     loss, repeatedly, as long as repairs run between losses.
//   - With R = 1 a detected data loss is reported, not failed: it is
//     the motivating deficiency, asserted by its test.
func RunCrash(cfg CrashConfig) (CrashReport, error) {
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Providers <= 0 {
		cfg.Providers = 8
	}
	perWriter, err := cfg.Calls()
	if err != nil {
		return CrashReport{}, err
	}
	plan := cfg.Plan()
	report := CrashReport{Plan: plan}

	env := cluster.Default()
	env.Providers = cfg.Providers
	env.Replicas = cfg.Replicas
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		return report, err
	}
	be, err := svc.Backend(1, cfg.Span())
	if err != nil {
		return report, err
	}
	d := &mpiio.VersioningDriver{Backend: be}

	var completed atomic.Int64
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() { _ = svc.Providers.SetDown(plan.Victim, true) })
	}

	var mu sync.Mutex
	okCalls := make([]verify.Call, 0, cfg.Writers*cfg.CallsPerWriter)
	var failures []error
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, call := range perWriter[w] {
				vec, err := verify.MakeVec(call)
				if err == nil {
					err = d.WriteList(vec, true)
				}
				mu.Lock()
				if err != nil {
					failures = append(failures, fmt.Errorf("call %d: %w", call.ID, err))
				} else {
					okCalls = append(okCalls, call)
				}
				mu.Unlock()
				if int(completed.Add(1)) >= plan.AfterCalls {
					kill()
				}
			}
		}(w)
	}
	wg.Wait()
	kill() // schedules past the workload end still kill before checking

	report.FailedCalls = len(failures)
	if cfg.Replicas >= 2 && len(failures) > 0 {
		return report, fmt.Errorf("torture(seed=%d): R=%d writes failed despite quorum: %w",
			cfg.Seed, cfg.Replicas, errors.Join(failures...))
	}
	for _, err := range failures {
		// At R=1 only crash-induced failures are tolerated.
		if !errors.Is(err, provider.ErrProviderDown) && !errors.Is(err, provider.ErrInsufficientProviders) {
			return report, fmt.Errorf("torture(seed=%d): unexpected write failure: %w", cfg.Seed, err)
		}
	}

	// MPI atomicity over the calls that committed.
	if err := verify.CheckCalls(reader{d}, okCalls); err != nil {
		if cfg.Replicas == 1 && isLossErr(err) {
			report.DataLoss = true
			return report, nil
		}
		return report, fmt.Errorf("torture(seed=%d): %w", cfg.Seed, err)
	}

	if cfg.Replicas == 1 {
		// Snapshots referencing chunks on the dead provider may or may
		// not exist; nothing further to assert.
		return report, nil
	}

	// Durability: every published snapshot fully readable via failover.
	n, err := be.Scrub()
	report.Scrubbed = n
	if err != nil {
		return report, fmt.Errorf("torture(seed=%d): snapshot lost after single provider crash: %w", cfg.Seed, err)
	}

	// Repair restores full degree...
	report.Repair = svc.Router.Repair()
	if report.Repair.Lost > 0 || report.Repair.Failed > 0 || report.Repair.Repaired != report.Repair.Degraded {
		return report, fmt.Errorf("torture(seed=%d): repair incomplete: %+v", cfg.Seed, report.Repair)
	}
	// ...so a second, different provider loss is also survivable.
	second := provider.ID((int(plan.Victim) + 1) % cfg.Providers)
	if err := svc.Providers.SetDown(second, true); err != nil {
		return report, err
	}
	n, err = be.Scrub()
	report.PostRepair = n
	if err != nil {
		return report, fmt.Errorf("torture(seed=%d): snapshot lost after repair + second crash: %w", cfg.Seed, err)
	}
	return report, nil
}

// isLossErr reports whether a verification failure traces back to an
// unreadable (dead) provider rather than an atomicity violation.
func isLossErr(err error) bool {
	return errors.Is(err, provider.ErrProviderDown) || errors.Is(err, chunk.ErrDown)
}
