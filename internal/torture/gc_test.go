package torture

import (
	"fmt"
	"testing"
)

// gcConfig is the standard version-lifecycle schedule shape: the usual
// torture workload over 8 providers, keep-newest-3 retention running
// continuously, and a store-level kill mid-run.
func gcConfig(seed int64, replicas int) GCConfig {
	return GCConfig{
		CrashConfig: CrashConfig{
			Config:    tortureConfig(seed),
			Replicas:  replicas,
			Providers: 8,
		},
		KeepLast: 3,
	}
}

// TestGCSchedule is the version-lifecycle torture suite: concurrent
// writers, a reader pinned to an early version, one provider store
// killed mid-run with self-heal enabled, and the retention policy plus
// reaper running continuously. Every retained version must scrub
// clean, the pinned reader must never observe corruption or a missing
// chunk, and once the pin is released the version's exclusive chunks
// must be removed from every live replica while shared chunks survive.
func TestGCSchedule(t *testing.T) {
	for _, r := range []int{2, 3} {
		t.Run(fmt.Sprintf("R=%d", r), func(t *testing.T) {
			for _, seed := range seeds(t) {
				rep, err := RunGC(gcConfig(seed, r))
				if err != nil {
					t.Fatalf("replay with REPRO_TORTURE_SEED=%d: %v", seed, err)
				}
				if rep.FailedCalls != 0 {
					t.Fatalf("seed %d: %d writes failed at R=%d", seed, rep.FailedCalls, r)
				}
				if !rep.Detected {
					t.Fatalf("seed %d: victim never detected: %+v", seed, rep)
				}
				if rep.PinnedReads == 0 || rep.Scrubbed == 0 {
					t.Fatalf("seed %d: schedule lost its teeth: %+v", seed, rep)
				}
				if rep.Reclaimed == 0 || rep.DeletedBytes == 0 {
					t.Fatalf("seed %d: nothing reclaimed: %+v", seed, rep)
				}
				t.Logf("seed %d R=%d: pinned v%d read %d times under fire; healed in %d ticks; dropped %d versions, reclaimed %d (%d bytes, %d exclusive chunks of the pinned version verified gone)",
					seed, r, rep.PinnedVersion, rep.PinnedReads, rep.HealTicks,
					rep.DroppedTotal, rep.Reclaimed, rep.DeletedBytes, rep.Exclusive)
			}
		})
	}
}

// TestGCPlanDeterminism: equal seeds derive equal schedules, schedules
// vary with the seed, and the GC stream is independent of the crash
// and heal streams.
func TestGCPlanDeterminism(t *testing.T) {
	a := gcConfig(5, 2).Plan()
	b := gcConfig(5, 2).Plan()
	if a != b {
		t.Fatalf("same seed planned %+v vs %+v", a, b)
	}
	seen := map[GCPlan]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		p := gcConfig(seed, 2).Plan()
		total := gcConfig(seed, 2).Writers * gcConfig(seed, 2).CallsPerWriter
		if p.AfterCalls < total/4 || p.AfterCalls > 3*total/4 {
			t.Fatalf("seed %d: kill point %d outside the middle half of %d calls", seed, p.AfterCalls, total)
		}
		seen[p] = true
	}
	if len(seen) < 2 {
		t.Fatal("schedules do not vary with the seed")
	}
	if gp, hp := gcConfig(5, 2).Plan(), healConfig(5, 2).Plan(); gp.Victim == hp.Victim && gp.AfterCalls == hp.AfterCalls {
		t.Fatalf("gc plan %+v collides with heal plan %+v — streams not independent", gp, hp)
	}
}

// TestGCRejectsUnreplicated: the schedule kills a provider, so R=1
// would conflate data loss with reclamation; refuse it.
func TestGCRejectsUnreplicated(t *testing.T) {
	if _, err := RunGC(gcConfig(1, 1)); err == nil {
		t.Fatal("RunGC accepted R=1")
	}
}
