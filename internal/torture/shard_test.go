package torture

import (
	"testing"

	"repro/internal/vmanager"
)

// TestShardKillSchedule is the control-plane atomicity suite: a
// seed-scheduled version-manager shard dies mid-batch while writers
// hammer blobs across all shards. RunShard asserts the contract
// (survivors unaffected, ErrShardDown means not committed, the
// interrupted batch aborts whole, no cross-shard leakage); the test
// additionally pins the teeth recorded in the report so a schedule
// that degenerates — never killing mid-batch, never failing a write —
// cannot pass silently.
func TestShardKillSchedule(t *testing.T) {
	for _, seed := range seeds(t) {
		rep, err := RunShard(ShardConfig{Seed: seed})
		if err != nil {
			t.Fatalf("replay with REPRO_TORTURE_SEED=%d: %v", seed, err)
		}
		if rep.AppliedAtKill < 1 {
			t.Fatalf("seed %d: kill fired with no batch in flight: %+v", seed, rep)
		}
		if rep.DoomedBatch < rep.AppliedAtKill {
			t.Fatalf("seed %d: report inconsistent, %d applied of a %d-request batch", seed, rep.AppliedAtKill, rep.DoomedBatch)
		}
		if rep.AbortsOnRestart < 1 {
			t.Fatalf("seed %d: restart witnessed no aborts: %+v", seed, rep)
		}
		if rep.FailedCalls < 1 {
			t.Fatalf("seed %d: shard death cost no writes — schedule lost its teeth: %+v", seed, rep)
		}
		if rep.OKCalls < 1 {
			t.Fatalf("seed %d: nothing committed: %+v", seed, rep)
		}
	}
}

// TestShardPlanDeterminism: equal seeds must derive equal kill
// schedules, the doomed shard must carry traffic, and the threshold
// must be reachable.
func TestShardPlanDeterminism(t *testing.T) {
	cfg := ShardConfig{Seed: 7}
	a, b := cfg.Plan(), cfg.Plan()
	if a != b {
		t.Fatalf("same seed planned %+v vs %+v", a, b)
	}
	cfg.applyDefaults()
	if a.Doomed < 0 || a.Doomed >= cfg.Shards {
		t.Fatalf("doomed shard %d out of range [0, %d)", a.Doomed, cfg.Shards)
	}
	owned := 0
	for bl := 1; bl <= cfg.Blobs; bl++ {
		if vmanager.ShardIndex(uint64(bl), cfg.Shards) == a.Doomed {
			owned++
		}
	}
	if owned == 0 {
		t.Fatalf("doomed shard %d owns no blobs; the kill could never fire", a.Doomed)
	}
	if a.KillAfter < 1 || a.KillAfter > cfg.CallsPerBlob*owned {
		t.Fatalf("kill-after %d unreachable for %d doomed publishes", a.KillAfter, cfg.CallsPerBlob*owned)
	}
}
