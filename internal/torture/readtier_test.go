package torture

import (
	"fmt"
	"testing"
)

// readTierConfig is the standard read-tier schedule shape: the
// correlated-loss workload over 8 providers in 4 domains with
// zone-local selection and the shared read cache on, plus 4 skewed
// readers per phase.
func readTierConfig(seed int64, replicas int) ReadTierConfig {
	return ReadTierConfig{
		DomainConfig: domainConfig(seed, replicas),
		Readers:      4,
	}
}

// TestReadTierSchedule is the read-tier torture suite: hot/cold
// readers race the writers and a whole-domain store kill with the
// cache and zone-local selection enabled, then re-read the unhealed
// degraded cluster on a cache primed with pre-kill placements, then
// again after autonomous healing moved every placement out of the dead
// domain. Zero failed reads anywhere, serializability verified through
// the cache, hits and invalidations both demonstrably non-zero.
func TestReadTierSchedule(t *testing.T) {
	for _, r := range []int{2, 3} {
		t.Run(fmt.Sprintf("R=%d", r), func(t *testing.T) {
			for _, seed := range seeds(t) {
				rep, err := RunReadTier(readTierConfig(seed, r))
				if err != nil {
					t.Fatalf("replay with REPRO_TORTURE_SEED=%d: %v", seed, err)
				}
				if rep.FailedCalls != 0 {
					t.Fatalf("seed %d: %d writes failed at R=%d", seed, rep.FailedCalls, r)
				}
				if rep.Scrubbed == 0 {
					t.Fatalf("seed %d: nothing scrubbed after heal: %+v", seed, rep)
				}
				t.Logf("seed %d R=%d: %d reads (zero failed), %d cache hits, %d invalidations, domain %d healed in %d ticks",
					seed, r, rep.Reads, rep.CacheHits, rep.Invalidated, rep.Plan.VictimDomain, rep.Ticks)
			}
		})
	}
}

// TestReadTierRejectsBadShapes: the schedule refuses shapes whose
// guarantees it cannot check.
func TestReadTierRejectsBadShapes(t *testing.T) {
	if _, err := RunReadTier(readTierConfig(1, 1)); err == nil {
		t.Fatal("RunReadTier accepted R=1")
	}
	cfg := readTierConfig(1, 2)
	cfg.Domains = 2
	if _, err := RunReadTier(cfg); err == nil {
		t.Fatal("RunReadTier accepted Domains <= Replicas")
	}
}
