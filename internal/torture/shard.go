package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/extent"
	"repro/internal/mpiio"
	"repro/internal/verify"
	"repro/internal/vmanager"
)

// ShardConfig parameterizes one shard-kill torture run: concurrent
// writers over many blobs on a sharded control plane, while a
// seed-scheduled version-manager shard is killed in the middle of a
// group-commit batch. The run checks the sharding contract end to end:
// surviving shards keep committing with zero failed writes, every
// failure on the doomed shard is ErrShardDown (definitely not
// committed), the interrupted batch is never torn — every ticket in it
// is observably aborted on restart — and no blob leaks across shards.
type ShardConfig struct {
	// Seed drives all randomness; equal seeds replay the whole run,
	// including which shard dies and when.
	Seed int64
	// Shards is the control-plane shard count (default 4, minimum 2 —
	// a kill with no survivors proves nothing).
	Shards int
	// Blobs is the number of blobs, each driven by its own writer
	// goroutine (default 12). Blob IDs are 1..Blobs.
	Blobs int
	// CallsPerBlob is the number of atomic writes per blob (default 8,
	// maximum 254 — call IDs are per-blob stamp bytes and the
	// post-restart probe needs CallsPerBlob+1).
	CallsPerBlob int
	// Window is the contested byte range per blob (default 256 KiB).
	Window int64
	// MaxExtents bounds the extents per call (default 3).
	MaxExtents int
	// MaxExtentLen bounds each extent's length (default 8 KiB).
	MaxExtentLen int64
	// Batch is each shard's group-commit configuration. MaxBatch must
	// be >= 2 (the crashpoint lives on the batched publish path);
	// the zero value defaults to {MaxBatch: 8, MaxDelay: 200µs}.
	Batch vmanager.BatchConfig
}

func (c *ShardConfig) applyDefaults() {
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.Blobs == 0 {
		c.Blobs = 12
	}
	if c.CallsPerBlob == 0 {
		c.CallsPerBlob = 8
	}
	if c.Window == 0 {
		c.Window = 256 << 10
	}
	if c.MaxExtents == 0 {
		c.MaxExtents = 3
	}
	if c.MaxExtentLen == 0 {
		c.MaxExtentLen = 8 << 10
	}
	if c.Batch == (vmanager.BatchConfig{}) {
		c.Batch = vmanager.BatchConfig{MaxBatch: 8, MaxDelay: 200 * time.Microsecond}
	}
}

// Validate checks the configuration (after defaults).
func (c ShardConfig) Validate() error {
	if c.Shards < 2 {
		return fmt.Errorf("torture: shard kill needs >= 2 shards, got %d", c.Shards)
	}
	if c.Blobs < 2 {
		return fmt.Errorf("torture: shard kill needs >= 2 blobs, got %d", c.Blobs)
	}
	if c.CallsPerBlob < 1 || c.CallsPerBlob > 254 {
		return fmt.Errorf("torture: calls per blob must be in [1, 254], got %d", c.CallsPerBlob)
	}
	if c.Batch.MaxBatch < 2 {
		return fmt.Errorf("torture: shard kill needs group commit (MaxBatch >= 2), got %d", c.Batch.MaxBatch)
	}
	return nil
}

// ShardPlan is the seed-derived kill schedule. Doomed is picked by
// first drawing a blob and taking its owning shard, so the doomed
// shard always carries live traffic. KillAfter counts publish
// applications at the doomed shard: the kill fires during the batch
// whose application crosses the threshold, mid-application, so the
// batch is genuinely in flight when the shard dies. The threshold
// lands in the middle half of the doomed shard's expected publishes so
// writes race the kill from both sides.
type ShardPlan struct {
	Doomed    int
	KillAfter int
}

// Plan derives the kill schedule from the seed and the shard mapping.
func (c ShardConfig) Plan() ShardPlan {
	c.applyDefaults()
	// A distinct stream from the per-blob call generators: same seed,
	// different constant, so schedule and calls replay independently.
	rng := rand.New(rand.NewSource(c.Seed ^ 0x73686172642d7631)) // "shard-v1"
	doomedBlob := uint64(1 + rng.Intn(c.Blobs))
	doomed := vmanager.ShardIndex(doomedBlob, c.Shards)
	owned := 0
	for b := 1; b <= c.Blobs; b++ {
		if vmanager.ShardIndex(uint64(b), c.Shards) == doomed {
			owned++
		}
	}
	total := c.CallsPerBlob * owned
	after := total/4 + rng.Intn(total/2+1)
	if after < 1 {
		after = 1
	}
	return ShardPlan{Doomed: doomed, KillAfter: after}
}

// ShardReport summarizes one shard-kill run.
type ShardReport struct {
	Plan            ShardPlan
	DoomedBlobs     []uint64 // blobs owned by the killed shard
	OKCalls         int      // writes that committed (across all blobs)
	FailedCalls     int      // writes that failed (all ErrShardDown, all on doomed blobs)
	DoomedBatch     int      // size of the batch interrupted by the kill
	AppliedAtKill   int      // requests of that batch already applied (and rolled back)
	AbortsOnRestart int      // tickets recovery-aborted when the shard restarted
}

// blobCalls returns blob b's deterministic call list. Each blob gets
// its own generator stream so call sets are independent per blob but
// still derive from the run seed alone.
func (c ShardConfig) blobCalls(b uint64) ([]verify.Call, error) {
	gen := Config{
		Seed:           c.Seed ^ int64(b*0x9E3779B97F4A7C15),
		Writers:        1,
		CallsPerWriter: c.CallsPerBlob,
		Window:         c.Window,
		MaxExtents:     c.MaxExtents,
		MaxExtentLen:   c.MaxExtentLen,
	}
	perWriter, err := gen.Calls()
	if err != nil {
		return nil, err
	}
	return perWriter[0], nil
}

// RunShard executes the shard-kill schedule and checks the control
// plane's partitioning contract:
//
//   - Surviving shards keep committing: every write to a blob owned by
//     a live shard succeeds — a shard death is invisible outside its
//     partition.
//   - ErrShardDown means not committed: every failed write is on a
//     doomed-shard blob, fails with ErrShardDown, and its stamps never
//     appear in the final state (the serializability check would flag
//     them as foreign data).
//   - The interrupted batch is never torn: the kill fires mid-batch
//     (a control assertion proves requests were already applied), the
//     applied prefix is rolled back, and on restart every ticket of
//     that batch is recovery-aborted — observably, via the returned
//     refs — never half-published.
//   - No cross-shard leakage: each blob is registered on exactly its
//     owning shard, and recovery aborts name only doomed-shard blobs.
//   - Version conservation: per blob, the published counter equals
//     committed writes plus recovery aborts — no version vanishes or
//     is double-counted across the kill/restart cycle.
//   - The restarted shard serves writes again (a probe write per
//     doomed blob succeeds), and every blob's final state remains
//     serializable over its committed calls.
func RunShard(cfg ShardConfig) (ShardReport, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return ShardReport{}, err
	}
	plan := cfg.Plan()
	report := ShardReport{Plan: plan}

	owner := func(b uint64) int { return vmanager.ShardIndex(b, cfg.Shards) }
	var doomedBlobs, survivorBlobs []uint64
	for b := uint64(1); b <= uint64(cfg.Blobs); b++ {
		if owner(b) == plan.Doomed {
			doomedBlobs = append(doomedBlobs, b)
		} else {
			survivorBlobs = append(survivorBlobs, b)
		}
	}
	report.DoomedBlobs = doomedBlobs
	if len(doomedBlobs) == 0 || len(survivorBlobs) == 0 {
		return report, fmt.Errorf("torture(seed=%d): schedule lost its teeth: doomed shard %d owns %d of %d blobs (need both victims and survivors)",
			cfg.Seed, plan.Doomed, len(doomedBlobs), cfg.Blobs)
	}

	calls := make(map[uint64][]verify.Call, cfg.Blobs)
	for b := uint64(1); b <= uint64(cfg.Blobs); b++ {
		cs, err := cfg.blobCalls(b)
		if err != nil {
			return report, err
		}
		calls[b] = cs
	}

	env := cluster.Default()
	env.VMShards = cfg.Shards
	env.VMBatch = cfg.Batch
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		return report, err
	}
	drivers := make(map[uint64]*mpiio.VersioningDriver, cfg.Blobs)
	for b := uint64(1); b <= uint64(cfg.Blobs); b++ {
		be, err := svc.Backend(b, cfg.Window)
		if err != nil {
			return report, err
		}
		drivers[b] = &mpiio.VersioningDriver{Backend: be}
	}

	// The crashpoint runs under the doomed shard's lock, once before
	// each request application and once after the last. cum counts
	// fully applied batches; the kill fires during the first batch
	// whose application crosses KillAfter — after at least one of its
	// requests applied, so the rollback path genuinely has work.
	var cpMu sync.Mutex
	var fired bool
	var cum, appliedAtKill int
	var doomedBatch []vmanager.PublishRequest
	svc.VM.Shard(plan.Doomed).SetCrashpoint(func(reqs []vmanager.PublishRequest, applied int) bool {
		cpMu.Lock()
		defer cpMu.Unlock()
		if fired {
			return false
		}
		if applied >= 1 && cum+applied >= plan.KillAfter {
			fired = true
			doomedBatch = append([]vmanager.PublishRequest(nil), reqs...)
			appliedAtKill = applied
			return true
		}
		if applied == len(reqs) {
			cum += applied
		}
		return false
	})

	var mu sync.Mutex
	okCalls := make(map[uint64][]verify.Call, cfg.Blobs)
	failures := make(map[uint64][]error)
	var wg sync.WaitGroup
	for b := uint64(1); b <= uint64(cfg.Blobs); b++ {
		wg.Add(1)
		go func(b uint64) {
			defer wg.Done()
			d := drivers[b]
			for _, call := range calls[b] {
				vec, err := verify.MakeVec(call)
				if err == nil {
					err = d.WriteList(vec, true)
				}
				mu.Lock()
				if err != nil {
					failures[b] = append(failures[b], fmt.Errorf("blob %d call %d: %w", b, call.ID, err))
				} else {
					okCalls[b] = append(okCalls[b], call)
				}
				mu.Unlock()
			}
		}(b)
	}
	wg.Wait()

	cpMu.Lock()
	report.DoomedBatch = len(doomedBatch)
	report.AppliedAtKill = appliedAtKill
	killFired, appliedTotal := fired, cum
	cpMu.Unlock()

	// Control assertions first: a schedule that never kills, or kills
	// between batches, tests nothing.
	if !killFired {
		return report, fmt.Errorf("torture(seed=%d): schedule lost its teeth: crashpoint never fired (kill-after=%d, doomed shard applied %d publishes)",
			cfg.Seed, plan.KillAfter, appliedTotal)
	}
	if report.AppliedAtKill < 1 {
		return report, fmt.Errorf("torture(seed=%d): schedule lost its teeth: kill fired with no applied requests in flight", cfg.Seed)
	}
	if !svc.VM.Shard(plan.Doomed).Down() {
		return report, fmt.Errorf("torture(seed=%d): crashpoint fired but shard %d is not down", cfg.Seed, plan.Doomed)
	}

	// Failure confinement: survivors commit everything; doomed blobs
	// fail only with ErrShardDown.
	for _, b := range survivorBlobs {
		if n := len(failures[b]); n > 0 {
			return report, fmt.Errorf("torture(seed=%d): blob %d on surviving shard %d had %d failed writes: %w",
				cfg.Seed, b, owner(b), n, errors.Join(failures[b]...))
		}
	}
	total := 0
	for _, b := range doomedBlobs {
		for _, err := range failures[b] {
			if !errors.Is(err, vmanager.ErrShardDown) {
				return report, fmt.Errorf("torture(seed=%d): doomed-shard write failed with a non-shard-down error: %w", cfg.Seed, err)
			}
		}
		total += len(failures[b])
	}
	report.FailedCalls = total
	if total < 1 {
		return report, fmt.Errorf("torture(seed=%d): schedule lost its teeth: shard died but no write observed it", cfg.Seed)
	}

	// Restart: the interrupted batch must surface as recovery aborts.
	aborted := svc.VM.RestartShard(plan.Doomed)
	report.AbortsOnRestart = len(aborted)
	if len(aborted) < 1 {
		return report, fmt.Errorf("torture(seed=%d): schedule lost its teeth: restart witnessed no aborts (batch of %d with %d applied was in flight)",
			cfg.Seed, report.DoomedBatch, report.AppliedAtKill)
	}
	abortedSet := make(map[vmanager.VersionRef]bool, len(aborted))
	abortsByBlob := make(map[uint64]int)
	for _, ref := range aborted {
		if owner(ref.Blob) != plan.Doomed {
			return report, fmt.Errorf("torture(seed=%d): restart of shard %d aborted blob %d owned by shard %d",
				cfg.Seed, plan.Doomed, ref.Blob, owner(ref.Blob))
		}
		abortedSet[ref] = true
		abortsByBlob[ref.Blob]++
	}
	for _, r := range doomedBatch {
		if !abortedSet[vmanager.VersionRef{Blob: r.Blob, Version: r.Version}] {
			return report, fmt.Errorf("torture(seed=%d): torn batch: blob %d version %d was in the killed batch but not aborted on restart",
				cfg.Seed, r.Blob, r.Version)
		}
	}

	// The restarted shard serves writes again.
	probe := extent.List{{Offset: 0, Length: min64(cfg.Window, 4096)}}
	for _, b := range doomedBlobs {
		call := verify.Call{ID: cfg.CallsPerBlob + 1, Extents: probe}
		vec, err := verify.MakeVec(call)
		if err == nil {
			err = drivers[b].WriteList(vec, true)
		}
		if err != nil {
			return report, fmt.Errorf("torture(seed=%d): probe write to blob %d failed after restart: %w", cfg.Seed, b, err)
		}
		okCalls[b] = append(okCalls[b], call)
	}

	// Per-blob MPI atomicity over exactly the calls that committed. A
	// failed call whose bytes leaked into the final state shows up here
	// as foreign data — this is the ErrShardDown-means-not-committed
	// check.
	for b := uint64(1); b <= uint64(cfg.Blobs); b++ {
		if err := verify.CheckCalls(reader{drivers[b]}, okCalls[b]); err != nil {
			return report, fmt.Errorf("torture(seed=%d): blob %d: %w", cfg.Seed, b, err)
		}
		report.OKCalls += len(okCalls[b])
	}

	// No cross-shard leakage: each blob is registered on exactly its
	// owning shard, and the per-shard blob sets partition the run's.
	for b := uint64(1); b <= uint64(cfg.Blobs); b++ {
		for i := 0; i < cfg.Shards; i++ {
			_, err := svc.VM.Shard(i).Geometry(b)
			switch {
			case i == owner(b) && err != nil:
				return report, fmt.Errorf("torture(seed=%d): blob %d missing from its owning shard %d: %w", cfg.Seed, b, i, err)
			case i != owner(b) && !errors.Is(err, vmanager.ErrUnknownBlob):
				return report, fmt.Errorf("torture(seed=%d): blob %d leaked onto shard %d (owner %d): err=%v", cfg.Seed, b, i, owner(b), err)
			}
		}
	}
	var union []uint64
	for i := 0; i < cfg.Shards; i++ {
		union = append(union, svc.VM.Shard(i).Blobs()...)
	}
	sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
	if len(union) != cfg.Blobs {
		return report, fmt.Errorf("torture(seed=%d): per-shard blob sets do not partition the run's %d blobs: %v", cfg.Seed, cfg.Blobs, union)
	}
	for i, b := range union {
		if b != uint64(i+1) {
			return report, fmt.Errorf("torture(seed=%d): per-shard blob sets do not partition the run's %d blobs: %v", cfg.Seed, cfg.Blobs, union)
		}
	}

	// Version conservation: every assigned ticket either committed or
	// was recovery-aborted; the published counter accounts for both.
	for b := uint64(1); b <= uint64(cfg.Blobs); b++ {
		info, err := svc.VM.LatestPublished(b)
		if err != nil {
			return report, err
		}
		want := uint64(len(okCalls[b]) + abortsByBlob[b])
		if info.Version != want {
			return report, fmt.Errorf("torture(seed=%d): blob %d published counter %d != %d committed + %d aborted",
				cfg.Seed, b, info.Version, len(okCalls[b]), abortsByBlob[b])
		}
	}
	return report, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
