package torture

import (
	"fmt"
	"testing"
)

// crashConfig is the standard crash-schedule shape: the usual torture
// workload over 8 providers with a seed-scheduled kill mid-run.
func crashConfig(seed int64, replicas int) CrashConfig {
	return CrashConfig{
		Config:    tortureConfig(seed),
		Replicas:  replicas,
		Providers: 8,
	}
}

// TestCrashScheduleReplicated is the durability torture suite: at every
// replication degree, a random provider dies mid-workload (schedule
// derived from the seed), and the run must keep its guarantees — all
// writes commit via quorum, the final state stays serializable, every
// published snapshot scrubs clean through failover, and repair restores
// the degree well enough to survive a second loss.
func TestCrashScheduleReplicated(t *testing.T) {
	for _, r := range []int{2, 3} {
		t.Run(fmt.Sprintf("R=%d", r), func(t *testing.T) {
			for _, seed := range seeds(t) {
				rep, err := RunCrash(crashConfig(seed, r))
				if err != nil {
					t.Fatalf("replay with REPRO_TORTURE_SEED=%d: %v", seed, err)
				}
				if rep.FailedCalls != 0 {
					t.Fatalf("seed %d: %d writes failed at R=%d", seed, rep.FailedCalls, r)
				}
				if rep.Scrubbed == 0 || rep.PostRepair < rep.Scrubbed {
					t.Fatalf("seed %d: scrub coverage shrank: %+v", seed, rep)
				}
				if rep.Repair.Degraded == 0 {
					t.Fatalf("seed %d: crash after %d calls degraded nothing — schedule lost its teeth (victim %d)",
						seed, rep.Plan.AfterCalls, rep.Plan.Victim)
				}
			}
		})
	}
}

// TestCrashScheduleUnreplicated pins the motivating exposure: at R=1 a
// provider loss mid-workload must at some seed cost committed data
// (detected as a data-loss report, never as an atomicity violation or
// an unexpected error kind).
func TestCrashScheduleUnreplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("needs several seeds to witness a loss")
	}
	witnessed := false
	for seed := int64(1); seed <= 10; seed++ {
		rep, err := RunCrash(crashConfig(seed, 1))
		if err != nil {
			t.Fatalf("replay with REPRO_TORTURE_SEED=%d: %v", seed, err)
		}
		if rep.DataLoss {
			witnessed = true
			break
		}
	}
	if !witnessed {
		t.Fatal("R=1 survived 10 provider-crash seeds intact; crash schedule too tame to demonstrate the exposure")
	}
}

// TestCrashPlanDeterminism: equal seeds must derive equal schedules,
// and the schedule stream must be independent of the call stream.
func TestCrashPlanDeterminism(t *testing.T) {
	a := crashConfig(5, 2).Plan()
	b := crashConfig(5, 2).Plan()
	if a != b {
		t.Fatalf("same seed planned %+v vs %+v", a, b)
	}
	total := crashConfig(5, 2).Writers * crashConfig(5, 2).CallsPerWriter
	if a.AfterCalls < total/4 || a.AfterCalls > 3*total/4 {
		t.Fatalf("kill point %d outside the middle half of %d calls", a.AfterCalls, total)
	}
	seen := map[CrashPlan]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		seen[crashConfig(seed, 2).Plan()] = true
	}
	if len(seen) < 2 {
		t.Fatal("schedules do not vary with the seed")
	}
}
